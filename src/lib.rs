//! `fistful` — a reproduction of *A Fistful of Bitcoins: Characterizing
//! Payments Among Men with No Names* (Meiklejohn et al., IMC 2013).
//!
//! This facade crate re-exports the workspace's public API:
//!
//! * [`crypto`] — from-scratch SHA-256 / RIPEMD-160 / Base58Check /
//!   secp256k1 ECDSA.
//! * [`chain`] — a Bitcoin-style block-chain substrate (transactions,
//!   blocks, UTXO set, consensus validation).
//! * [`net`] — a discrete-event simulator of the Bitcoin P2P gossip network.
//! * [`sim`] — a Bitcoin economy simulator with ground-truth ownership,
//!   modelling the service categories and idioms of use the paper studies.
//! * [`core`] — the paper's contribution: address clustering (Heuristics 1
//!   and 2 with all refinements), tagging and cluster naming.
//! * [`flow`] — flow analysis: peeling chains, movement classification,
//!   balance time series and theft tracking.
//! * [`serve`] — the concurrent TCP query service (and its client) that
//!   answers address/cluster/taint/balance queries from the frozen
//!   snapshot and graph artifacts.
//!
//! See `examples/quickstart.rs` for an end-to-end tour.

pub use fistful_chain as chain;
pub use fistful_core as core;
pub use fistful_crypto as crypto;
pub use fistful_flow as flow;
pub use fistful_net as net;
pub use fistful_serve as serve;
pub use fistful_sim as sim;
pub use fistful_store as store;

//! The §4.2 refinement ladder: how each safety refinement drives the
//! change-heuristic false-positive estimate down — and what the *true*
//! error rates are, which the paper could not measure.
//!
//! Run with: `cargo run --release --example fp_refinement`

use fistful::core::change::{self, ChangeConfig, BLOCKS_PER_DAY, BLOCKS_PER_WEEK};
use fistful::core::cluster::Clusterer;
use fistful::core::metrics::score_change_labels;
use fistful::core::naming::name_clusters;
use fistful::core::tagdb::{Tag, TagDb, TagSource};
use fistful::core::fp;
use fistful::sim::{generate_tags, Economy, RawTagSource, SimConfig};
use std::collections::HashSet;

fn main() {
    println!("simulating the economy ...");
    let eco = Economy::run(SimConfig::default());
    let chain = eco.chain.resolved();
    let gt = eco.gt.to_id_space(chain);

    // Identify gambling addresses the way the paper did: H1 clusters named
    // by tags, take every address in gambling-category clusters.
    let mut db = TagDb::new();
    for raw in generate_tags(&eco) {
        if let Some(address) = chain.address_id(&raw.address) {
            let source = match raw.source {
                RawTagSource::OwnTransaction => TagSource::OwnTransaction,
                RawTagSource::SelfSubmitted => TagSource::SelfSubmitted,
                RawTagSource::Forum => TagSource::Forum,
            };
            db.add(Tag { address, service: raw.service, category: raw.category, source });
        }
    }
    let h1 = Clusterer::h1_only().run(chain);
    let names = name_clusters(&h1, &db);
    let mut dice = HashSet::new();
    for (addr, &c) in h1.assignment.iter().enumerate() {
        if names.categories.get(&c).map(String::as_str) == Some("gambling") {
            dice.insert(addr as u32);
        }
    }
    println!("{} addresses sit in gambling-named clusters", dice.len());

    let mut dice_cfg = ChangeConfig::naive();
    dice_cfg.dice_exception = true;
    dice_cfg.dice_addresses = dice;

    println!("\n{:<28} {:>10} {:>10} {:>12}", "configuration", "labels", "est. FP%", "true prec.");
    let show = |name: &str, cfg: &ChangeConfig, estimator: &ChangeConfig| {
        let labels = change::identify(chain, cfg);
        let est = fp::estimate(chain, &labels, estimator);
        let truth = score_change_labels(chain, &labels, &gt.change_vout);
        println!(
            "{:<28} {:>10} {:>9.2}% {:>11.4}",
            name,
            labels.labels,
            est.rate() * 100.0,
            truth.precision()
        );
    };

    let naive = ChangeConfig::naive();
    show("naive (conditions 1-4)", &naive, &naive);
    show("+ dice exception", &naive, &dice_cfg);
    let mut day = dice_cfg.clone();
    day.wait_blocks = Some(BLOCKS_PER_DAY);
    show("+ wait one day", &day, &dice_cfg);
    let mut week = dice_cfg.clone();
    week.wait_blocks = Some(BLOCKS_PER_WEEK);
    show("+ wait one week", &week, &dice_cfg);
    let refined = ChangeConfig::refined(dice_cfg.dice_addresses.clone());
    show("fully refined (paper §4.2)", &refined, &dice_cfg);

    println!("\n(the paper's ladder: 13% -> 1% -> 0.28% -> 0.17%)");
}

//! Silk Road trace: simulate the economy, then follow the `1DkyBEKt`
//! dissolution through its three peeling chains and report which services
//! the peels reached — Table 2 of the paper.
//!
//! Run with: `cargo run --release --example silkroad_trace`

use fistful::core::change::{self, ChangeConfig};
use fistful::core::cluster::Clusterer;
use fistful::core::naming::name_clusters;
use fistful::core::tagdb::{Tag, TagDb, TagSource};
use fistful::flow::{follow_chain, service_arrivals, AddressDirectory, FollowStrategy};
use fistful::sim::{generate_tags, Economy, RawTagSource, SimConfig};

fn main() {
    println!("simulating the economy ...");
    let eco = Economy::run(SimConfig::default());
    let chain = eco.chain.resolved();

    let sr = eco
        .script_report
        .silk_road
        .as_ref()
        .expect("Silk Road script enabled by default");
    println!("big address {} received {}", sr.big_address, sr.total_received);
    println!(
        "dissolved via {} withdrawals, split into 3 chains, {:?} hops each",
        sr.dissolution_txids.len(),
        sr.hops_done
    );

    // Build the analysis exactly as the paper would: tags → clusters →
    // names → change labels → chain traversal.
    let mut db = TagDb::new();
    for raw in generate_tags(&eco) {
        if let Some(address) = chain.address_id(&raw.address) {
            let source = match raw.source {
                RawTagSource::OwnTransaction => TagSource::OwnTransaction,
                RawTagSource::SelfSubmitted => TagSource::SelfSubmitted,
                RawTagSource::Forum => TagSource::Forum,
            };
            db.add(Tag { address, service: raw.service, category: raw.category, source });
        }
    }
    let clustering = Clusterer::with_h2(ChangeConfig::naive()).run(chain);
    let names = name_clusters(&clustering, &db);
    let directory = AddressDirectory::from_naming(&clustering, &names);
    let labels = change::identify(chain, &ChangeConfig::naive());

    let chains: Vec<_> = sr
        .chain_first_hops
        .iter()
        .filter_map(|txid| chain.tx_by_txid(txid).map(|(id, _)| id))
        .map(|start| follow_chain(chain, &labels, start, 100, FollowStrategy::LargestFallback))
        .collect();

    println!("\npeels to known services:");
    for row in service_arrivals(&chains, &directory) {
        println!(
            "  {:<20} [{:<9}] {:>3} peels, {}",
            row.service,
            row.category,
            row.total_peels(),
            row.total_value()
        );
    }
}

//! Network propagation: the mechanics of Figure 1 — a payment floods the
//! gossip network, a miner confirms it, and the block floods back.
//!
//! Run with: `cargo run --release --example network_propagation`

use fistful::chain::address::Address;
use fistful::chain::amount::Amount;
use fistful::chain::block::{Block, BlockHeader};
use fistful::chain::builder::TransactionBuilder;
use fistful::chain::transaction::OutPoint;
use fistful::crypto::hash::Hash256;
use fistful::net::{Network, NetworkConfig};

fn main() {
    let mut net = Network::new(NetworkConfig {
        nodes: 500,
        out_degree: 8,
        latency_lo: 10_000,
        latency_hi: 250_000,
        miner_fraction: 0.04,
        processing_delay: 2_000,
        seed: 2013,
    });

    // (1)-(4): the merchant hands the user an address; the user broadcasts
    // the payment.
    let merchant_addr = Address::from_seed(7);
    let tx = TransactionBuilder::new()
        .input(OutPoint::null())
        .output(merchant_addr, Amount::from_sat(70_000_000))
        .build_unsigned();
    let txid = net.submit_tx(0, tx.clone());
    net.run_to_quiescence();

    let prop = net.propagation(&txid).unwrap();
    println!("transaction {} flooded {} nodes", txid, prop.reached);
    for (pct, label) in [(0.5, "50%"), (0.9, "90%"), (1.0, "100%")] {
        println!(
            "  {}: {:.0} ms",
            label,
            prop.coverage_time(pct).unwrap() as f64 / 1000.0
        );
    }

    // (5)-(6): a miner incorporates the tx into a block, floods it.
    let miner = net.miners()[0];
    let mut block = Block {
        header: BlockHeader {
            version: 1,
            prev_hash: Hash256::ZERO,
            merkle_root: Hash256::ZERO,
            time: 1,
            nonce: 0,
        },
        transactions: vec![tx],
    };
    block.header.merkle_root = block.computed_merkle_root();
    let hash = net.submit_block(miner, block);
    net.run_to_quiescence();

    let bprop = net.propagation(&hash).unwrap();
    println!("block {} flooded {} nodes", hash, bprop.reached);
    for (pct, label) in [(0.5, "50%"), (0.9, "90%"), (1.0, "100%")] {
        println!(
            "  {}: {:.0} ms",
            label,
            bprop.coverage_time(pct).unwrap() as f64 / 1000.0
        );
    }
    println!(
        "total: {} messages, {} kB of inv traffic",
        net.messages_delivered,
        net.bytes_sent.get("invtx").copied().unwrap_or(0) / 1000,
    );
    // Every node now agrees on the tip.
    assert!((0..500).all(|i| net.node(i).tip == Some(hash)));
    println!("all {} nodes converged on the new tip", 500);
}

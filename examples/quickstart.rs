//! Quickstart: build a small chain by hand, cluster it with both
//! heuristics, and name the clusters with tags.
//!
//! Run with: `cargo run --example quickstart`

use fistful::chain::address::Address;
use fistful::chain::amount::Amount;
use fistful::chain::builder::{BlockBuilder, TransactionBuilder};
use fistful::chain::chainstate::ChainState;
use fistful::chain::params::Params;
use fistful::chain::transaction::OutPoint;
use fistful::core::change::ChangeConfig;
use fistful::core::cluster::Clusterer;
use fistful::core::naming::name_clusters;
use fistful::core::tagdb::{Tag, TagDb, TagSource};

fn main() {
    let params = Params::regtest();
    let mut chain = ChainState::new(params.clone());

    // Alice mines two blocks to two different addresses.
    let alice_1 = Address::from_seed(1);
    let alice_2 = Address::from_seed(2);
    let exchange_hot = Address::from_seed(100);

    let b0 = BlockBuilder::new(&params)
        .coinbase_to(alice_1, 0, chain.next_subsidy())
        .build_on(&chain);
    let cb0 = b0.transactions[0].txid();
    chain.accept_block(b0).unwrap();

    // The exchange's hot address earns part of this block's coinbase, so
    // it has appeared on chain before Alice pays it (otherwise Heuristic 2
    // would see two fresh outputs and stay silent).
    let b1 = BlockBuilder::new(&params)
        .coinbase_multi(
            1,
            vec![
                (alice_2, Amount::from_btc(40)),
                (exchange_hot, Amount::from_btc(10)),
            ],
        )
        .build_on(&chain);
    let cb1 = b1.transactions[0].txid();
    chain.accept_block(b1).unwrap();

    // Alice pays the exchange 70 BTC, co-spending both coinbases
    // (Heuristic 1 links her addresses) with change to a fresh address
    // (Heuristic 2 links that too).
    let alice_change = Address::from_seed(3);
    let deposit = TransactionBuilder::new()
        .input(OutPoint { txid: cb0, vout: 0 })
        .input(OutPoint { txid: cb1, vout: 0 })
        .output(exchange_hot, Amount::from_btc(70))
        .output(alice_change, Amount::from_btc(20))
        .build_unsigned();
    let b2 = BlockBuilder::new(&params)
        .coinbase_to(Address::from_seed(99), 2, chain.next_subsidy())
        .tx(deposit)
        .build_on(&chain);
    chain.accept_block(b2).unwrap();

    // Cluster with Heuristic 1 + naive Heuristic 2.
    let resolved = chain.resolved();
    let clustering = Clusterer::with_h2(ChangeConfig::naive()).run(resolved);
    println!(
        "{} addresses form {} clusters",
        resolved.address_count(),
        clustering.cluster_count()
    );

    let id = |a: &Address| resolved.address_id(a).unwrap();
    assert_eq!(
        clustering.cluster_of(id(&alice_1)),
        clustering.cluster_of(id(&alice_2)),
        "H1 links Alice's co-spent inputs"
    );
    assert_eq!(
        clustering.cluster_of(id(&alice_1)),
        clustering.cluster_of(id(&alice_change)),
        "H2 links Alice's change"
    );
    assert_ne!(
        clustering.cluster_of(id(&alice_1)),
        clustering.cluster_of(id(&exchange_hot)),
        "the exchange is a different user"
    );

    // One tag names Alice's whole cluster.
    let mut tags = TagDb::new();
    tags.add(Tag {
        address: id(&alice_1),
        service: "Alice".into(),
        category: "user".into(),
        source: TagSource::OwnTransaction,
    });
    let names = name_clusters(&clustering, &tags);
    println!(
        "tagging one address names a cluster of {} addresses",
        names.named_addresses
    );
    for addr in [&alice_1, &alice_2, &alice_change] {
        let c = clustering.cluster_of(id(addr));
        println!("  {addr} -> {}", names.name_of_cluster(c).unwrap());
    }
}

//! Theft tracking: simulate the economy with its seven scripted thefts,
//! then re-derive Table 3 — how the loot moved (A/P/S/F) and whether it
//! reached an exchange.
//!
//! Run with: `cargo run --release --example theft_tracking`

use fistful::core::change::{self, ChangeConfig};
use fistful::core::cluster::Clusterer;
use fistful::core::naming::name_clusters;
use fistful::core::tagdb::{Tag, TagDb, TagSource};
use fistful::flow::{track_theft, AddressDirectory};
use fistful::sim::{generate_tags, Economy, RawTagSource, SimConfig};

fn main() {
    println!("simulating the economy ...");
    let eco = Economy::run(SimConfig::default());
    let chain = eco.chain.resolved();

    let mut db = TagDb::new();
    for raw in generate_tags(&eco) {
        if let Some(address) = chain.address_id(&raw.address) {
            let source = match raw.source {
                RawTagSource::OwnTransaction => TagSource::OwnTransaction,
                RawTagSource::SelfSubmitted => TagSource::SelfSubmitted,
                RawTagSource::Forum => TagSource::Forum,
            };
            db.add(Tag { address, service: raw.service, category: raw.category, source });
        }
    }
    let clustering = Clusterer::with_h2(ChangeConfig::naive()).run(chain);
    let names = name_clusters(&clustering, &db);
    let directory = AddressDirectory::from_naming(&clustering, &names);
    let labels = change::identify(chain, &ChangeConfig::naive());

    for theft in &eco.script_report.thefts {
        let loot_ids: Vec<u32> = theft
            .loot_addresses
            .iter()
            .filter_map(|a| chain.address_id(a))
            .collect();
        let mut loot = Vec::new();
        for txid in &theft.theft_txids {
            if let Some((t, rtx)) = chain.tx_by_txid(txid) {
                for (v, o) in rtx.outputs.iter().enumerate() {
                    if loot_ids.contains(&o.address) {
                        loot.push((t, v as u32));
                    }
                }
            }
        }
        if loot.is_empty() {
            continue;
        }
        let trace = track_theft(chain, &loot, &labels, &directory, 5_000);
        println!(
            "{:<18} stole {:>14}  moved {:<8} reached exchanges: {}",
            theft.name,
            theft.stolen.to_string(),
            trace.pattern,
            if trace.reached_exchange() {
                format!("yes, {} services ({})", trace.exchanges_reached, trace.to_exchanges)
            } else {
                format!("no ({} still dormant)", trace.dormant)
            }
        );
    }
}

//! The query service end to end: simulate a small economy, freeze the
//! serving artifacts (snapshot + graph + labels + balance series), start
//! the TCP server on an ephemeral port, and issue one of every request
//! type through the typed client.
//!
//! Run with: `cargo run --release --example serve_roundtrip`

use fistful::serve::{Client, ServeConfig, Server};
use fistful::sim::SimConfig;
use fistful_bench::{serve_artifacts, theft_loots, Workbench};
use std::sync::Arc;

fn main() {
    println!("simulating the economy and freezing the serving artifacts ...");
    let wb = Workbench::build(SimConfig::tiny());
    let artifacts = Arc::new(serve_artifacts(&wb));
    let loots = theft_loots(wb.eco.chain.resolved(), &wb.eco.script_report.thefts);

    let config = ServeConfig { addr: "127.0.0.1:0".to_string(), workers: 2, ..Default::default() };
    let server = Server::start(config, Arc::clone(&artifacts)).expect("start server");
    println!("serving on {}", server.local_addr());
    let mut client = Client::connect(server.local_addr()).expect("connect");

    // Ping: liveness.
    client.ping().expect("ping");
    println!("ping: pong");

    // AddressInfo: who owns an address, and what do we know about them?
    let probe = (artifacts.snapshot.address_count() / 2) as u32;
    let info = client.address_info(probe).expect("address_info").expect("covered");
    println!(
        "address {probe}: cluster {} (size {}, received {}, service {})",
        info.cluster,
        info.info.size,
        info.info.received,
        info.info.name.as_deref().unwrap_or("-")
    );

    // ClusterSummary: the biggest cluster's aggregates.
    let (largest, _) = artifacts.snapshot.largest_cluster().expect("clusters exist");
    let summary = client.cluster_summary(largest).expect("cluster_summary").expect("exists");
    println!(
        "largest cluster {largest}: {} addresses, received {}, spent {}",
        summary.info.size, summary.info.received, summary.info.spent
    );

    // TaintTrace: where did the first scripted theft's loot go?
    let (name, loot) = loots.first().expect("tiny scale scripts thefts");
    let trace = client.taint_trace(loot, 5_000).expect("taint_trace");
    println!(
        "theft {name}: pattern {}, {} movements, exchanges reached: {}",
        if trace.pattern.is_empty() { "-" } else { &trace.pattern },
        trace.movements.len(),
        trace.exchanges_reached
    );

    // BalancePoint: the category balances at the chain tip.
    let tip = artifacts.snapshot.tip_height();
    let point = client.balance_point(tip).expect("balance_point").expect("tip sampled");
    println!(
        "balances at height {}: active {}, {} categories tracked",
        point.height,
        point.active(),
        point.balances.len()
    );

    // Stats: the server's own counters.
    let stats = client.stats().expect("stats");
    println!(
        "server stats: {} requests, cache {}/{} hit/miss, {} workers",
        stats.requests, stats.cache_hits, stats.cache_misses, stats.workers
    );

    server.shutdown();
    println!("server drained and shut down cleanly");
}

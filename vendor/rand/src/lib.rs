//! Offline stand-in for the `rand` crate, exposing exactly the surface the
//! workspace uses: `rngs::StdRng`, the [`Rng`] and [`SeedableRng`] traits,
//! `gen_range` over half-open / inclusive ranges, and `gen::<f64>()`.
//!
//! The generator is SplitMix64-seeded xoshiro256++ — deterministic for a
//! given seed on every platform, which is all the simulators require (they
//! never ask for cryptographic randomness). This crate exists because the
//! build environment has no registry access; the API is call-compatible with
//! `rand 0.8` for the subset used here. Like the real crate, range sampling
//! is generic over one [`SampleUniform`] trait so integer-literal inference
//! (`gen_range(0..2)` as a `usize` index) resolves the same way.

pub mod rngs {
    /// A deterministic, seedable RNG (xoshiro256++) standing in for
    /// `rand::rngs::StdRng`.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl StdRng {
        pub(crate) fn from_state(mut seed: u64) -> StdRng {
            // SplitMix64 expansion of the seed into the xoshiro state,
            // as recommended by the xoshiro authors.
            let mut next = || {
                seed = seed.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = seed;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            let s = [next(), next(), next(), next()];
            StdRng { s }
        }

        #[inline]
        pub(crate) fn next_u64_impl(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0]
                .wrapping_add(s[3])
                .rotate_left(23)
                .wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }

        /// Uniform draw in `[0, 1)` with 53 mantissa bits.
        #[inline]
        pub(crate) fn unit_f64(&mut self) -> f64 {
            (self.next_u64_impl() >> 11) as f64 / (1u64 << 53) as f64
        }
    }
}

use rngs::StdRng;

/// Types that can be drawn uniformly from a range. One generic impl per
/// range shape keeps literal inference open (`0..2` as a `usize` index),
/// exactly like `rand::distributions::uniform::SampleUniform`.
pub trait SampleUniform: Copy + PartialOrd {
    fn sample_half_open(lo: Self, hi: Self, rng: &mut StdRng) -> Self;
    fn sample_inclusive(lo: Self, hi: Self, rng: &mut StdRng) -> Self;
}

macro_rules! impl_sample_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            #[inline]
            fn sample_half_open(lo: $t, hi: $t, rng: &mut StdRng) -> $t {
                let span = (hi as i128 - lo as i128) as u128;
                (lo as i128 + ((rng.next_u64_impl() as u128) % span) as i128) as $t
            }

            #[inline]
            fn sample_inclusive(lo: $t, hi: $t, rng: &mut StdRng) -> $t {
                let span = (hi as i128 - lo as i128) as u128 + 1;
                (lo as i128 + ((rng.next_u64_impl() as u128) % span) as i128) as $t
            }
        }
    )*};
}

impl_sample_uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleUniform for f64 {
    #[inline]
    fn sample_half_open(lo: f64, hi: f64, rng: &mut StdRng) -> f64 {
        lo + rng.unit_f64() * (hi - lo)
    }

    #[inline]
    fn sample_inclusive(lo: f64, hi: f64, rng: &mut StdRng) -> f64 {
        // The endpoint has measure zero; half-open is indistinguishable.
        lo + rng.unit_f64() * (hi - lo)
    }
}

/// Types usable as the argument of [`Rng::gen_range`].
pub trait SampleRange<T> {
    fn sample_from(self, rng: &mut StdRng) -> T;
}

impl<T: SampleUniform> SampleRange<T> for core::ops::Range<T> {
    #[inline]
    fn sample_from(self, rng: &mut StdRng) -> T {
        assert!(self.start < self.end, "cannot sample empty range");
        T::sample_half_open(self.start, self.end, rng)
    }
}

impl<T: SampleUniform> SampleRange<T> for core::ops::RangeInclusive<T> {
    #[inline]
    fn sample_from(self, rng: &mut StdRng) -> T {
        let (lo, hi) = self.into_inner();
        assert!(lo <= hi, "cannot sample empty range");
        T::sample_inclusive(lo, hi, rng)
    }
}

/// Types producible by [`Rng::gen`] (the `Standard` distribution).
pub trait StandardValue {
    fn standard(rng: &mut StdRng) -> Self;
}

impl StandardValue for f64 {
    #[inline]
    fn standard(rng: &mut StdRng) -> f64 {
        rng.unit_f64()
    }
}

impl StandardValue for bool {
    #[inline]
    fn standard(rng: &mut StdRng) -> bool {
        rng.next_u64_impl() & 1 == 1
    }
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl StandardValue for $t {
            #[inline]
            fn standard(rng: &mut StdRng) -> $t {
                rng.next_u64_impl() as $t
            }
        }
    )*};
}

impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Internal helper so the provided `Rng` methods can reach the concrete
/// generator.
pub trait AsStdRng {
    fn as_std_rng(&mut self) -> &mut StdRng;
}

impl AsStdRng for StdRng {
    #[inline]
    fn as_std_rng(&mut self) -> &mut StdRng {
        self
    }
}

/// Subset of `rand::Rng` used by the workspace.
pub trait Rng: AsStdRng {
    #[inline]
    fn next_u64(&mut self) -> u64 {
        self.as_std_rng().next_u64_impl()
    }

    #[inline]
    fn gen<T: StandardValue>(&mut self) -> T {
        T::standard(self.as_std_rng())
    }

    #[inline]
    fn gen_bool(&mut self, p: f64) -> bool {
        self.as_std_rng().unit_f64() < p
    }

    #[inline]
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T {
        range.sample_from(self.as_std_rng())
    }
}

impl Rng for StdRng {}

/// Subset of `rand::SeedableRng` used by the workspace.
pub trait SeedableRng: Sized {
    fn seed_from_u64(seed: u64) -> Self;
}

impl SeedableRng for StdRng {
    #[inline]
    fn seed_from_u64(seed: u64) -> Self {
        StdRng::from_state(seed)
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_for_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(8);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn gen_range_bounds() {
        let mut r = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let x: u64 = r.gen_range(10..20);
            assert!((10..20).contains(&x));
            let y: usize = r.gen_range(0..=3);
            assert!(y <= 3);
            let f: f64 = r.gen_range(f64::EPSILON..1.0);
            assert!(f > 0.0 && f < 1.0);
        }
    }

    #[test]
    fn literal_inference_resolves_to_index_type() {
        // Mirrors `wallet[rng.gen_range(0..2)]` in the simulator.
        let mut r = StdRng::seed_from_u64(3);
        let items = [10u8, 20];
        let picked = items[r.gen_range(0..2)];
        assert!(picked == 10 || picked == 20);
    }

    #[test]
    fn f64_is_roughly_uniform() {
        let mut r = StdRng::seed_from_u64(42);
        let mean: f64 =
            (0..10_000).map(|_| r.gen::<f64>()).sum::<f64>() / 10_000.0;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean}");
    }
}

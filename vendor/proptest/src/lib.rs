//! Offline stand-in for the `proptest` crate.
//!
//! Implements the subset of the proptest 1.x API the workspace's property
//! tests use: the `proptest!` macro (with an optional
//! `#![proptest_config(..)]` inner attribute), `any::<T>()`, integer-range
//! and tuple strategies, `prop_map`, `collection::vec`, and the
//! `prop_assert*` macros. Cases are generated from a deterministic RNG
//! seeded by the test name, so failures reproduce exactly; there is no
//! shrinking — the failing inputs are printed instead. This crate exists
//! because the build environment has no registry access.

pub mod test_runner {
    use std::fmt;

    /// Configuration accepted by `#![proptest_config(..)]`.
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of generated cases per property.
        pub cases: u32,
    }

    impl ProptestConfig {
        pub fn with_cases(cases: u32) -> ProptestConfig {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> ProptestConfig {
            ProptestConfig { cases: 256 }
        }
    }

    /// A failed property case (what `prop_assert*` returns).
    #[derive(Debug)]
    pub struct TestCaseError {
        message: String,
    }

    impl TestCaseError {
        pub fn fail(message: impl Into<String>) -> TestCaseError {
            TestCaseError { message: message.into() }
        }
    }

    impl fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str(&self.message)
        }
    }

    /// Deterministic generator (SplitMix64) seeded from the test name.
    #[derive(Debug, Clone)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        pub fn deterministic(name: &str) -> TestRng {
            // FNV-1a over the test name → stable per-test seed.
            let mut h: u64 = 0xcbf2_9ce4_8422_2325;
            for b in name.bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x0000_0100_0000_01B3);
            }
            TestRng { state: h }
        }

        #[inline]
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }
}

pub mod strategy {
    use crate::test_runner::TestRng;

    /// A source of generated values. Unlike real proptest there is no value
    /// tree / shrinking; `new_value` draws a fresh value per case.
    pub trait Strategy {
        type Value;

        fn new_value(&self, rng: &mut TestRng) -> Self::Value;

        fn prop_map<U, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> U,
        {
            Map { inner: self, f }
        }
    }

    /// Strategy returned by [`Strategy::prop_map`].
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
        type Value = U;

        fn new_value(&self, rng: &mut TestRng) -> U {
            (self.f)(self.inner.new_value(rng))
        }
    }

    macro_rules! impl_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for core::ops::Range<$t> {
                type Value = $t;

                fn new_value(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as u128) - (self.start as u128);
                    (self.start as u128 + (rng.next_u64() as u128) % span) as $t
                }
            }
            impl Strategy for core::ops::RangeInclusive<$t> {
                type Value = $t;

                fn new_value(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "empty range strategy");
                    let span = (hi as u128) - (lo as u128) + 1;
                    (lo as u128 + (rng.next_u64() as u128) % span) as $t
                }
            }
        )*};
    }

    impl_range_strategy!(u8, u16, u32, u64, usize);

    macro_rules! impl_tuple_strategy {
        ($($name:ident),+) => {
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);

                #[allow(non_snake_case)]
                fn new_value(&self, rng: &mut TestRng) -> Self::Value {
                    let ($($name,)+) = self;
                    ($($name.new_value(rng),)+)
                }
            }
        };
    }

    impl_tuple_strategy!(A);
    impl_tuple_strategy!(A, B);
    impl_tuple_strategy!(A, B, C);
    impl_tuple_strategy!(A, B, C, D);
    impl_tuple_strategy!(A, B, C, D, E);
}

pub mod arbitrary {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::marker::PhantomData;

    /// Types with a canonical full-range strategy.
    pub trait Arbitrary {
        fn generate(rng: &mut TestRng) -> Self;
    }

    macro_rules! impl_arbitrary_int {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                #[inline]
                fn generate(rng: &mut TestRng) -> $t {
                    rng.next_u64() as $t
                }
            }
        )*};
    }

    impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Arbitrary for bool {
        #[inline]
        fn generate(rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    impl<const N: usize> Arbitrary for [u8; N] {
        fn generate(rng: &mut TestRng) -> [u8; N] {
            let mut out = [0u8; N];
            for chunk in out.chunks_mut(8) {
                let bytes = rng.next_u64().to_le_bytes();
                let n = chunk.len();
                chunk.copy_from_slice(&bytes[..n]);
            }
            out
        }
    }

    /// Strategy returned by [`any`].
    pub struct Any<T>(PhantomData<T>);

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;

        fn new_value(&self, rng: &mut TestRng) -> T {
            T::generate(rng)
        }
    }

    /// The canonical strategy for `T`, mirroring `proptest::prelude::any`.
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(PhantomData)
    }
}

pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Strategy for `Vec<S::Value>` with a length drawn from `size`.
    pub struct VecStrategy<S> {
        element: S,
        size: core::ops::Range<usize>,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn new_value(&self, rng: &mut TestRng) -> Vec<S::Value> {
            assert!(self.size.start < self.size.end, "empty size range");
            let span = (self.size.end - self.size.start) as u64;
            let len = self.size.start + (rng.next_u64() % span) as usize;
            (0..len).map(|_| self.element.new_value(rng)).collect()
        }
    }

    /// Mirrors `proptest::collection::vec`.
    pub fn vec<S: Strategy>(element: S, size: core::ops::Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, size }
    }
}

pub mod prelude {
    pub use crate::arbitrary::any;
    pub use crate::strategy::Strategy;
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};
}

/// Mirrors `proptest::proptest!`: wraps each property fn into a `#[test]`
/// that runs `config.cases` generated cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_each! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_each! { ($crate::test_runner::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_each {
    (($cfg:expr) $($(#[$meta:meta])* fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::test_runner::ProptestConfig = $cfg;
                let mut rng = $crate::test_runner::TestRng::deterministic(stringify!($name));
                for case in 0..config.cases {
                    let result = (|| -> ::std::result::Result<(), $crate::test_runner::TestCaseError> {
                        $(let $arg = $crate::strategy::Strategy::new_value(&($strat), &mut rng);)+
                        $body
                        ::std::result::Result::Ok(())
                    })();
                    if let ::std::result::Result::Err(e) = result {
                        panic!(
                            "property `{}` failed at case {} of {}: {}",
                            stringify!($name), case, config.cases, e
                        );
                    }
                }
            }
        )*
    };
}

/// Mirrors `proptest::prop_assert!`.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::std::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(format!($($fmt)*)),
            );
        }
    };
}

/// Mirrors `proptest::prop_assert_eq!`.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let l = $left;
        let r = $right;
        $crate::prop_assert!(
            l == r,
            "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
            stringify!($left), stringify!($right), l, r
        );
    }};
}

/// Mirrors `proptest::prop_assert_ne!`.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let l = $left;
        let r = $right;
        $crate::prop_assert!(
            l != r,
            "assertion failed: `{} != {}`\n  both: {:?}",
            stringify!($left), stringify!($right), l
        );
    }};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #[test]
        fn ranges_stay_in_bounds(x in 3u64..17, y in 0usize..5) {
            prop_assert!((3..17).contains(&x));
            prop_assert!(y < 5);
        }

        #[test]
        fn vec_respects_size(v in crate::collection::vec(any::<u8>(), 2..6)) {
            prop_assert!(v.len() >= 2 && v.len() < 6);
        }

        #[test]
        fn tuples_and_map(pair in (any::<u32>(), 1u64..9).prop_map(|(a, b)| (a as u64, b))) {
            prop_assert!(pair.1 >= 1 && pair.1 < 9);
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(8))]

        #[test]
        fn config_attribute_parses(b in any::<bool>()) {
            prop_assert!((b as u8) <= 1);
        }
    }
}

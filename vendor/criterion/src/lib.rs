//! Offline stand-in for the `criterion` benchmark harness.
//!
//! Implements the subset of the criterion 0.5 API the workspace benches use
//! (`criterion_group!` / `criterion_main!`, `Criterion::benchmark_group`,
//! `bench_function`, `bench_with_input`, `iter`, `iter_batched`,
//! `Throughput`, `BenchmarkId`, `BatchSize`, `sample_size`) with a simple
//! wall-clock measurement loop: each benchmark is warmed up once, then timed
//! over `sample_size` samples and reported as median ns/iter (plus
//! throughput when declared). Good enough to compare hot-path variants
//! locally; swap in real criterion when registry access is available.

use std::fmt;
use std::time::{Duration, Instant};

/// How batched inputs are sized; accepted and ignored (every batch is one
/// input here).
#[derive(Debug, Clone, Copy)]
pub enum BatchSize {
    SmallInput,
    LargeInput,
    PerIteration,
}

/// Declared per-iteration work, used to report throughput.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    Elements(u64),
    Bytes(u64),
}

/// A benchmark id made of a function name and a parameter, printed as
/// `name/param`.
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    pub fn new(function_name: impl Into<String>, parameter: impl fmt::Display) -> BenchmarkId {
        BenchmarkId { id: format!("{}/{}", function_name.into(), parameter) }
    }

    pub fn from_parameter(parameter: impl fmt::Display) -> BenchmarkId {
        BenchmarkId { id: parameter.to_string() }
    }
}

/// Anything usable as a benchmark name: `&str`, `String` or [`BenchmarkId`].
pub trait IntoBenchmarkId {
    fn into_id(self) -> String;
}

impl IntoBenchmarkId for BenchmarkId {
    fn into_id(self) -> String {
        self.id
    }
}

impl IntoBenchmarkId for &str {
    fn into_id(self) -> String {
        self.to_string()
    }
}

impl IntoBenchmarkId for String {
    fn into_id(self) -> String {
        self
    }
}

/// Re-export of `std::hint::black_box` under criterion's traditional name.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// The timing loop handed to benchmark closures.
pub struct Bencher {
    samples: usize,
    /// Median nanoseconds per iteration, filled in by the measurement loop.
    median_ns: f64,
}

impl Bencher {
    fn measure<R>(&mut self, mut once: impl FnMut() -> R) {
        // Warm-up plus a quick calibration: aim for samples that are neither
        // instant (timer noise) nor endless (economy builds take ~seconds).
        black_box(once());
        let mut per_sample = Vec::with_capacity(self.samples);
        for _ in 0..self.samples {
            let start = Instant::now();
            black_box(once());
            per_sample.push(start.elapsed());
        }
        per_sample.sort();
        self.median_ns = per_sample[per_sample.len() / 2].as_nanos() as f64;
    }

    /// Times `routine` as one iteration per sample.
    pub fn iter<R>(&mut self, routine: impl FnMut() -> R) {
        self.measure(routine);
    }

    /// Times `routine` over inputs produced by `setup`; setup time is
    /// excluded from the measurement.
    pub fn iter_batched<I, R>(
        &mut self,
        mut setup: impl FnMut() -> I,
        mut routine: impl FnMut(I) -> R,
        _size: BatchSize,
    ) {
        black_box(routine(setup()));
        let mut per_sample = Vec::with_capacity(self.samples);
        for _ in 0..self.samples {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            per_sample.push(start.elapsed());
        }
        per_sample.sort();
        self.median_ns = per_sample[per_sample.len() / 2].as_nanos() as f64;
    }
}

fn report(id: &str, median_ns: f64, throughput: Option<Throughput>) {
    let human = if median_ns >= 1e9 {
        format!("{:.3} s", median_ns / 1e9)
    } else if median_ns >= 1e6 {
        format!("{:.3} ms", median_ns / 1e6)
    } else if median_ns >= 1e3 {
        format!("{:.3} µs", median_ns / 1e3)
    } else {
        format!("{median_ns:.0} ns")
    };
    let rate = match throughput {
        Some(Throughput::Elements(n)) if median_ns > 0.0 => {
            format!("  ({:.2} Melem/s)", n as f64 / median_ns * 1e3)
        }
        Some(Throughput::Bytes(n)) if median_ns > 0.0 => {
            format!("  ({:.2} MiB/s)", n as f64 / median_ns * 1e3 / 1.048_576)
        }
        _ => String::new(),
    };
    println!("bench: {id:<48} {human:>12}/iter{rate}");
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    throughput: Option<Throughput>,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    pub fn warm_up_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    pub fn bench_function<F>(&mut self, id: impl IntoBenchmarkId, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let full = format!("{}/{}", self.name, id.into_id());
        let mut b = Bencher { samples: self.sample_size, median_ns: 0.0 };
        f(&mut b);
        report(&full, b.median_ns, self.throughput);
        self
    }

    pub fn bench_with_input<I, F>(
        &mut self,
        id: impl IntoBenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let full = format!("{}/{}", self.name, id.into_id());
        let mut b = Bencher { samples: self.sample_size, median_ns: 0.0 };
        f(&mut b, input);
        report(&full, b.median_ns, self.throughput);
        self
    }

    pub fn finish(&mut self) {}
}

/// The harness entry point, mirroring `criterion::Criterion`.
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Criterion {
        Criterion { sample_size: 10 }
    }
}

impl Criterion {
    pub fn sample_size(mut self, n: usize) -> Criterion {
        self.sample_size = n.max(1);
        self
    }

    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: self.sample_size,
            throughput: None,
            _criterion: self,
        }
    }

    pub fn bench_function<F>(&mut self, id: impl IntoBenchmarkId, mut f: F) -> &mut Criterion
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into_id();
        let mut b = Bencher { samples: self.sample_size, median_ns: 0.0 };
        f(&mut b);
        report(&id, b.median_ns, None);
        self
    }
}

/// Mirrors `criterion::criterion_group!`: defines a function running each
/// benchmark in sequence against one `Criterion`.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

/// Mirrors `criterion::criterion_main!`: the `main` for a
/// `harness = false` bench target.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            // `cargo bench` forwards harness flags (e.g. --bench); accept and
            // ignore them like criterion does.
            $($group();)+
        }
    };
}

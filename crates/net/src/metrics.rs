//! Propagation measurements.

use crate::event::Time;

/// How one item (transaction or block) spread through the network.
#[derive(Debug, Clone)]
pub struct PropagationReport {
    /// First-seen time per node (None = never).
    pub node_times: Vec<Option<Time>>,
    /// Nodes reached.
    pub reached: usize,
    /// Injection time (minimum first-seen).
    pub origin_time: Time,
}

impl PropagationReport {
    /// Builds from a first-seen vector.
    pub fn from_first_seen(seen: &[Option<Time>]) -> PropagationReport {
        let reached = seen.iter().filter(|t| t.is_some()).count();
        let origin_time = seen.iter().flatten().copied().min().unwrap_or(0);
        PropagationReport { node_times: seen.to_vec(), reached, origin_time }
    }

    /// Time (relative to injection) until `fraction` of all nodes had the
    /// item; `None` if coverage never reached it.
    pub fn coverage_time(&self, fraction: f64) -> Option<Time> {
        assert!((0.0..=1.0).contains(&fraction));
        let needed = ((self.node_times.len() as f64) * fraction).ceil() as usize;
        if needed == 0 {
            return Some(0);
        }
        let mut times: Vec<Time> = self.node_times.iter().flatten().copied().collect();
        if times.len() < needed {
            return None;
        }
        times.sort_unstable();
        Some(times[needed - 1] - self.origin_time)
    }

    /// Time until every node had the item.
    pub fn full_coverage_time(&self) -> Option<Time> {
        self.coverage_time(1.0)
    }

    /// The coverage curve: `(time since injection, fraction covered)`,
    /// one point per node reached — the series behind Figure-1-style plots.
    pub fn coverage_curve(&self) -> Vec<(Time, f64)> {
        let mut times: Vec<Time> = self.node_times.iter().flatten().copied().collect();
        times.sort_unstable();
        let n = self.node_times.len() as f64;
        times
            .iter()
            .enumerate()
            .map(|(i, &t)| (t - self.origin_time, (i + 1) as f64 / n))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn coverage_math() {
        let seen = vec![Some(100), Some(150), Some(200), None];
        let r = PropagationReport::from_first_seen(&seen);
        assert_eq!(r.reached, 3);
        assert_eq!(r.origin_time, 100);
        assert_eq!(r.coverage_time(0.5), Some(50)); // 2 of 4 nodes by t=150
        assert_eq!(r.coverage_time(0.75), Some(100));
        assert_eq!(r.full_coverage_time(), None); // one node never saw it
    }

    #[test]
    fn curve_is_monotonic() {
        let seen = vec![Some(10), Some(30), Some(20)];
        let r = PropagationReport::from_first_seen(&seen);
        let curve = r.coverage_curve();
        assert_eq!(curve.len(), 3);
        assert!(curve.windows(2).all(|w| w[0].0 <= w[1].0 && w[0].1 < w[1].1));
        assert_eq!(curve.last().unwrap().1, 1.0);
    }

    #[test]
    fn empty_coverage() {
        let r = PropagationReport::from_first_seen(&[]);
        assert_eq!(r.reached, 0);
        assert_eq!(r.coverage_time(1.0), Some(0));
    }
}

//! A network node: mempool, block store, and gossip relay policy.

use crate::message::Message;
use fistful_chain::block::Block;
use fistful_chain::transaction::Transaction;
use fistful_crypto::hash::Hash256;
use std::collections::{HashMap, HashSet};
use std::sync::Arc;

/// Node identifier (index into the network's node table).
pub type NodeId = u32;

/// An outbound action produced by a node's message handler.
#[derive(Debug, Clone)]
pub enum Action {
    /// Send a message to one peer.
    Send(NodeId, Message),
    /// Announce to all peers except the given one (flood).
    Broadcast(Option<NodeId>, Message),
}

/// A gossip node.
pub struct Node {
    /// This node's id.
    pub id: NodeId,
    /// Peers (filled from the topology).
    pub peers: Vec<NodeId>,
    /// Transactions known (in mempool or in blocks).
    known_txs: HashSet<Hash256>,
    /// The mempool: valid transactions not yet in a block.
    pub mempool: HashMap<Hash256, Arc<Transaction>>,
    /// Blocks known, by hash.
    pub blocks: HashMap<Hash256, Arc<Block>>,
    /// Height of each known block (genesis = 0).
    heights: HashMap<Hash256, u64>,
    /// The best (highest) block hash.
    pub tip: Option<Hash256>,
    /// True if this node mines.
    pub is_miner: bool,
}

impl Node {
    /// A fresh node with no knowledge.
    pub fn new(id: NodeId, is_miner: bool) -> Node {
        Node {
            id,
            peers: Vec::new(),
            known_txs: HashSet::new(),
            mempool: HashMap::new(),
            blocks: HashMap::new(),
            heights: HashMap::new(),
            tip: None,
            is_miner,
        }
    }

    /// Height of the current tip (None before any block).
    pub fn tip_height(&self) -> Option<u64> {
        self.tip.map(|h| self.heights[&h])
    }

    /// True if the node has seen this transaction.
    pub fn knows_tx(&self, txid: &Hash256) -> bool {
        self.known_txs.contains(txid)
    }

    /// True if the node has this block.
    pub fn knows_block(&self, hash: &Hash256) -> bool {
        self.blocks.contains_key(hash)
    }

    /// Injects a locally-originated transaction (wallet broadcast).
    /// Returns the announcement actions.
    pub fn originate_tx(&mut self, tx: Arc<Transaction>) -> Vec<Action> {
        let txid = tx.txid();
        if !self.known_txs.insert(txid) {
            return Vec::new();
        }
        self.mempool.insert(txid, tx);
        vec![Action::Broadcast(None, Message::InvTx(txid))]
    }

    /// Accepts a locally-mined block. Returns announcement actions.
    pub fn originate_block(&mut self, block: Arc<Block>) -> Vec<Action> {
        let hash = block.hash();
        self.store_block(block);
        vec![Action::Broadcast(None, Message::InvBlock(hash))]
    }

    fn store_block(&mut self, block: Arc<Block>) {
        let hash = block.hash();
        if self.blocks.contains_key(&hash) {
            return;
        }
        // Height = parent height + 1 (orphans treated as height 0 bases;
        // the simulator delivers parents first in practice).
        let height = self
            .heights
            .get(&block.header.prev_hash)
            .map(|h| h + 1)
            .unwrap_or(0);
        self.heights.insert(hash, height);
        // Remove included transactions from the mempool.
        for tx in &block.transactions {
            let txid = tx.txid();
            self.known_txs.insert(txid);
            self.mempool.remove(&txid);
        }
        self.blocks.insert(hash, block);
        // Longest-chain rule (first-seen wins ties).
        let better = match self.tip {
            None => true,
            Some(t) => height > self.heights[&t],
        };
        if better {
            self.tip = Some(hash);
        }
    }

    /// Handles an incoming message, returning follow-up actions.
    pub fn handle(&mut self, from: NodeId, msg: Message) -> Vec<Action> {
        match msg {
            Message::InvTx(txid) => {
                if self.knows_tx(&txid) {
                    Vec::new()
                } else {
                    vec![Action::Send(from, Message::GetTx(txid))]
                }
            }
            Message::GetTx(txid) => match self.mempool.get(&txid) {
                Some(tx) => vec![Action::Send(from, Message::Tx(Arc::clone(tx)))],
                None => Vec::new(),
            },
            Message::Tx(tx) => {
                let txid = tx.txid();
                if !self.known_txs.insert(txid) {
                    return Vec::new();
                }
                self.mempool.insert(txid, tx);
                vec![Action::Broadcast(Some(from), Message::InvTx(txid))]
            }
            Message::InvBlock(hash) => {
                if self.knows_block(&hash) {
                    Vec::new()
                } else {
                    vec![Action::Send(from, Message::GetBlock(hash))]
                }
            }
            Message::GetBlock(hash) => match self.blocks.get(&hash) {
                Some(b) => vec![Action::Send(from, Message::Block(Arc::clone(b)))],
                None => Vec::new(),
            },
            Message::Block(block) => {
                let hash = block.hash();
                if self.knows_block(&hash) {
                    return Vec::new();
                }
                self.store_block(block);
                vec![Action::Broadcast(Some(from), Message::InvBlock(hash))]
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fistful_chain::address::Address;
    use fistful_chain::amount::Amount;
    use fistful_chain::block::BlockHeader;
    use fistful_chain::transaction::{OutPoint, TxIn, TxOut};

    fn tx(tag: u64) -> Arc<Transaction> {
        Arc::new(Transaction {
            version: 1,
            inputs: vec![TxIn { prevout: OutPoint::null(), witness: tag.to_le_bytes().to_vec() }],
            outputs: vec![TxOut { value: Amount::from_btc(1), address: Address::from_seed(tag) }],
            lock_time: 0,
        })
    }

    fn block(prev: Hash256, tag: u64) -> Arc<Block> {
        let mut b = Block {
            header: BlockHeader {
                version: 1,
                prev_hash: prev,
                merkle_root: Hash256::ZERO,
                time: tag,
                nonce: 0,
            },
            transactions: vec![(*tx(tag)).clone()],
        };
        b.header.merkle_root = b.computed_merkle_root();
        Arc::new(b)
    }

    #[test]
    fn inv_getdata_tx_dance() {
        let mut n = Node::new(0, false);
        let t = tx(1);
        let txid = t.txid();

        // Unknown inv → getdata.
        let actions = n.handle(5, Message::InvTx(txid));
        assert!(matches!(actions[0], Action::Send(5, Message::GetTx(h)) if h == txid));

        // Receiving the tx → stores and floods.
        let actions = n.handle(5, Message::Tx(Arc::clone(&t)));
        assert!(n.knows_tx(&txid));
        assert!(matches!(&actions[0], Action::Broadcast(Some(5), Message::InvTx(h)) if *h == txid));

        // Duplicate inv → silence.
        assert!(n.handle(6, Message::InvTx(txid)).is_empty());
        // Duplicate tx → silence.
        assert!(n.handle(6, Message::Tx(t)).is_empty());
    }

    #[test]
    fn serves_mempool_txs() {
        let mut n = Node::new(0, false);
        let t = tx(2);
        let txid = t.txid();
        n.originate_tx(Arc::clone(&t));
        let actions = n.handle(3, Message::GetTx(txid));
        assert!(matches!(&actions[0], Action::Send(3, Message::Tx(_))));
        // Unknown getdata → nothing.
        assert!(n.handle(3, Message::GetTx(Hash256::ZERO)).is_empty());
    }

    #[test]
    fn blocks_update_tip_and_clear_mempool() {
        let mut n = Node::new(0, false);
        let b0 = block(Hash256::ZERO, 1);
        let contained_txid = b0.transactions[0].txid();
        n.originate_tx(Arc::new(b0.transactions[0].clone()));
        assert!(n.mempool.contains_key(&contained_txid));

        n.handle(1, Message::Block(Arc::clone(&b0)));
        assert_eq!(n.tip, Some(b0.hash()));
        assert_eq!(n.tip_height(), Some(0));
        assert!(!n.mempool.contains_key(&contained_txid), "mined tx evicted");

        let b1 = block(b0.hash(), 2);
        n.handle(1, Message::Block(Arc::clone(&b1)));
        assert_eq!(n.tip, Some(b1.hash()));
        assert_eq!(n.tip_height(), Some(1));
    }

    #[test]
    fn longest_chain_wins_ties_first_seen() {
        let mut n = Node::new(0, false);
        let b0 = block(Hash256::ZERO, 1);
        let fork_a = block(b0.hash(), 2);
        let fork_b = block(b0.hash(), 3);
        n.handle(1, Message::Block(b0));
        n.handle(1, Message::Block(Arc::clone(&fork_a)));
        n.handle(2, Message::Block(fork_b));
        // Same height: first seen (fork_a) stays tip.
        assert_eq!(n.tip, Some(fork_a.hash()));
    }
}

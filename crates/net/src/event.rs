//! The deterministic event queue at the heart of the simulator.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// Virtual time in microseconds.
pub type Time = u64;

/// A scheduled event carrying a payload.
#[derive(Debug, Clone)]
pub struct Event<T> {
    /// Delivery time.
    pub at: Time,
    /// Tie-break sequence number (FIFO among simultaneous events).
    pub seq: u64,
    /// The payload.
    pub payload: T,
}

impl<T> PartialEq for Event<T> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl<T> Eq for Event<T> {}

impl<T> Ord for Event<T> {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reversed: BinaryHeap is a max-heap, we want earliest-first.
        other
            .at
            .cmp(&self.at)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

impl<T> PartialOrd for Event<T> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// A priority queue of timed events with FIFO tie-breaking.
pub struct EventQueue<T> {
    heap: BinaryHeap<Event<T>>,
    next_seq: u64,
    now: Time,
}

impl<T> Default for EventQueue<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T> EventQueue<T> {
    /// An empty queue at time zero.
    pub fn new() -> Self {
        EventQueue { heap: BinaryHeap::new(), next_seq: 0, now: 0 }
    }

    /// The current virtual time (time of the last popped event).
    pub fn now(&self) -> Time {
        self.now
    }

    /// Schedules `payload` for delivery at absolute time `at`. Events in
    /// the past are clamped to "now".
    pub fn schedule(&mut self, at: Time, payload: T) {
        let at = at.max(self.now);
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Event { at, seq, payload });
    }

    /// Schedules `payload` after a relative delay.
    pub fn schedule_in(&mut self, delay: Time, payload: T) {
        self.schedule(self.now + delay, payload);
    }

    /// Pops the earliest event, advancing virtual time.
    pub fn pop(&mut self) -> Option<Event<T>> {
        let event = self.heap.pop()?;
        self.now = event.at;
        Some(event)
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// True if no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn earliest_first() {
        let mut q = EventQueue::new();
        q.schedule(30, "c");
        q.schedule(10, "a");
        q.schedule(20, "b");
        assert_eq!(q.pop().unwrap().payload, "a");
        assert_eq!(q.now(), 10);
        assert_eq!(q.pop().unwrap().payload, "b");
        assert_eq!(q.pop().unwrap().payload, "c");
        assert!(q.pop().is_none());
        assert_eq!(q.now(), 30);
    }

    #[test]
    fn fifo_among_simultaneous() {
        let mut q = EventQueue::new();
        q.schedule(5, 1);
        q.schedule(5, 2);
        q.schedule(5, 3);
        assert_eq!(q.pop().unwrap().payload, 1);
        assert_eq!(q.pop().unwrap().payload, 2);
        assert_eq!(q.pop().unwrap().payload, 3);
    }

    #[test]
    fn past_events_clamped_to_now() {
        let mut q = EventQueue::new();
        q.schedule(100, "later");
        q.pop();
        q.schedule(50, "stale");
        let e = q.pop().unwrap();
        assert_eq!(e.at, 100, "clamped to now");
    }

    #[test]
    fn relative_scheduling() {
        let mut q = EventQueue::new();
        q.schedule(100, ());
        q.pop();
        q.schedule_in(25, ());
        assert_eq!(q.pop().unwrap().at, 125);
    }
}

//! Network topologies: who peers with whom, and at what latency.

use crate::node::NodeId;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::HashSet;

/// An undirected peer graph with per-edge latency.
#[derive(Debug, Clone)]
pub struct Topology {
    /// Adjacency lists (symmetric).
    pub peers: Vec<Vec<NodeId>>,
    /// Latency in microseconds for edge `(min(a,b), max(a,b))`.
    latency: std::collections::HashMap<(NodeId, NodeId), u64>,
}

impl Topology {
    /// Builds a random graph: every node initiates `out_degree` connections
    /// to distinct random peers (like Bitcoin's 8 outbound connections);
    /// latencies are uniform in `[lat_lo, lat_hi]` microseconds.
    ///
    /// Panics if `nodes < 2`.
    pub fn random(nodes: usize, out_degree: usize, lat_lo: u64, lat_hi: u64, seed: u64) -> Topology {
        assert!(nodes >= 2, "need at least two nodes");
        assert!(lat_lo <= lat_hi);
        let mut rng = StdRng::seed_from_u64(seed);
        let mut edge_set: HashSet<(NodeId, NodeId)> = HashSet::new();
        for a in 0..nodes {
            let mut made = 0;
            let mut attempts = 0;
            while made < out_degree.min(nodes - 1) && attempts < nodes * 10 {
                attempts += 1;
                let b = rng.gen_range(0..nodes);
                if b == a {
                    continue;
                }
                let key = (a.min(b) as NodeId, a.max(b) as NodeId);
                if edge_set.insert(key) {
                    made += 1;
                }
            }
        }
        // Ensure connectivity with a ring backbone (cheap and sufficient).
        for a in 0..nodes {
            let b = (a + 1) % nodes;
            edge_set.insert((a.min(b) as NodeId, a.max(b) as NodeId));
        }

        // Sort the edges before drawing latencies: HashSet iteration order
        // is randomized per process, and latencies must be a deterministic
        // function of the seed alone.
        let mut edges: Vec<(NodeId, NodeId)> = edge_set.into_iter().collect();
        edges.sort_unstable();

        let mut peers = vec![Vec::new(); nodes];
        let mut latency = std::collections::HashMap::new();
        for &(a, b) in &edges {
            peers[a as usize].push(b);
            peers[b as usize].push(a);
            let l = if lat_lo == lat_hi { lat_lo } else { rng.gen_range(lat_lo..=lat_hi) };
            latency.insert((a, b), l);
        }
        for p in &mut peers {
            p.sort_unstable();
        }
        Topology { peers, latency }
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.peers.len()
    }

    /// True if there are no nodes.
    pub fn is_empty(&self) -> bool {
        self.peers.is_empty()
    }

    /// The latency of the edge between `a` and `b` (must be peers).
    pub fn latency(&self, a: NodeId, b: NodeId) -> u64 {
        self.latency[&(a.min(b), a.max(b))]
    }

    /// Total number of undirected edges.
    pub fn edge_count(&self) -> usize {
        self.latency.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn graph_is_symmetric_and_connected() {
        let t = Topology::random(50, 4, 10_000, 200_000, 7);
        assert_eq!(t.len(), 50);
        for (a, peers) in t.peers.iter().enumerate() {
            for &b in peers {
                assert!(t.peers[b as usize].contains(&(a as NodeId)), "symmetry");
                assert!(t.latency(a as NodeId, b) >= 10_000);
                assert!(t.latency(a as NodeId, b) <= 200_000);
            }
        }
        // Connectivity via BFS.
        let mut seen = [false; 50];
        let mut queue = vec![0 as NodeId];
        seen[0] = true;
        while let Some(n) = queue.pop() {
            for &p in &t.peers[n as usize] {
                if !seen[p as usize] {
                    seen[p as usize] = true;
                    queue.push(p);
                }
            }
        }
        assert!(seen.iter().all(|&s| s), "connected");
    }

    #[test]
    fn deterministic_under_seed() {
        let a = Topology::random(30, 3, 1000, 5000, 42);
        let b = Topology::random(30, 3, 1000, 5000, 42);
        assert_eq!(a.peers, b.peers);
        let c = Topology::random(30, 3, 1000, 5000, 43);
        assert_ne!(a.peers, c.peers);
    }

    #[test]
    #[should_panic(expected = "at least two")]
    fn rejects_single_node() {
        Topology::random(1, 2, 0, 0, 0);
    }
}

//! A discrete-event simulator of the Bitcoin peer-to-peer gossip network.
//!
//! Reproduces the mechanism of Figure 1 in the paper: a user broadcasts a
//! transaction to their peers; inv/getdata gossip floods it across the
//! network; a miner incorporates it into a block; the block floods back,
//! and the merchant learns the payment is settled.
//!
//! Following the guidance for CPU-bound simulation (and smoltcp's design
//! ethos), the simulator is synchronous and deterministic: a single
//! [`event::EventQueue`] orders message deliveries by virtual time, nodes
//! are plain state machines, and everything derives from one RNG seed.

#![warn(missing_docs)]

pub mod event;
pub mod message;
pub mod metrics;
pub mod miner;
pub mod network;
pub mod node;
pub mod topology;

pub use message::Message;
pub use metrics::PropagationReport;
pub use miner::{run_session, MiningReport};
pub use network::{Network, NetworkConfig};
pub use node::NodeId;
pub use topology::Topology;

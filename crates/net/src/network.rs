//! The network driver: couples nodes, topology and the event queue.

use crate::event::{EventQueue, Time};
use crate::message::Message;
use crate::metrics::PropagationReport;
use crate::node::{Action, Node, NodeId};
use crate::topology::Topology;
use fistful_chain::block::Block;
use fistful_chain::transaction::Transaction;
use fistful_crypto::hash::Hash256;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::HashMap;
use std::sync::Arc;

/// Network configuration.
#[derive(Debug, Clone)]
pub struct NetworkConfig {
    /// Number of nodes.
    pub nodes: usize,
    /// Outbound connections per node (Bitcoin uses 8).
    pub out_degree: usize,
    /// Minimum link latency (µs).
    pub latency_lo: u64,
    /// Maximum link latency (µs).
    pub latency_hi: u64,
    /// Fraction of nodes that mine.
    pub miner_fraction: f64,
    /// Per-node processing delay before relaying (µs).
    pub processing_delay: u64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for NetworkConfig {
    fn default() -> Self {
        NetworkConfig {
            nodes: 200,
            out_degree: 8,
            latency_lo: 10_000,   // 10 ms
            latency_hi: 300_000,  // 300 ms
            miner_fraction: 0.05,
            processing_delay: 2_000,
            seed: 0xBEEF,
        }
    }
}

/// A scheduled delivery.
struct Delivery {
    from: NodeId,
    to: NodeId,
    msg: Message,
}

/// The running network.
pub struct Network {
    /// Configuration.
    pub config: NetworkConfig,
    topology: Topology,
    nodes: Vec<Node>,
    queue: EventQueue<Delivery>,
    /// First time each node learned each item (txid or block hash).
    first_seen: HashMap<Hash256, Vec<Option<Time>>>,
    /// Total bytes sent, by message kind.
    pub bytes_sent: HashMap<&'static str, u64>,
    /// Total messages delivered.
    pub messages_delivered: u64,
}

impl Network {
    /// Builds a network with a random topology.
    pub fn new(config: NetworkConfig) -> Network {
        let topology = Topology::random(
            config.nodes,
            config.out_degree,
            config.latency_lo,
            config.latency_hi,
            config.seed,
        );
        let mut rng = StdRng::seed_from_u64(config.seed ^ 0xA5A5);
        let nodes = (0..config.nodes)
            .map(|i| {
                let is_miner = rng.gen::<f64>() < config.miner_fraction;
                let mut n = Node::new(i as NodeId, is_miner);
                n.peers = topology.peers[i].clone();
                n
            })
            .collect();
        Network {
            config,
            topology,
            nodes,
            queue: EventQueue::new(),
            first_seen: HashMap::new(),
            bytes_sent: HashMap::new(),
            messages_delivered: 0,
        }
    }

    /// Current virtual time (µs).
    pub fn now(&self) -> Time {
        self.queue.now()
    }

    /// Read access to a node.
    pub fn node(&self, id: NodeId) -> &Node {
        &self.nodes[id as usize]
    }

    /// Ids of all miner nodes.
    pub fn miners(&self) -> Vec<NodeId> {
        self.nodes
            .iter()
            .filter(|n| n.is_miner)
            .map(|n| n.id)
            .collect()
    }

    fn note_seen(&mut self, item: Hash256, node: NodeId, at: Time) {
        let slot = self
            .first_seen
            .entry(item)
            .or_insert_with(|| vec![None; self.nodes.len()]);
        let cell = &mut slot[node as usize];
        if cell.is_none() {
            *cell = Some(at);
        }
    }

    /// Injects a transaction at `origin`, as a wallet broadcast.
    pub fn submit_tx(&mut self, origin: NodeId, tx: Transaction) -> Hash256 {
        let tx = Arc::new(tx);
        let txid = tx.txid();
        let at = self.now();
        self.note_seen(txid, origin, at);
        let actions = self.nodes[origin as usize].originate_tx(tx);
        self.execute(origin, actions);
        txid
    }

    /// Injects a freshly mined block at `miner`.
    pub fn submit_block(&mut self, miner: NodeId, block: Block) -> Hash256 {
        let block = Arc::new(block);
        let hash = block.hash();
        let at = self.now();
        self.note_seen(hash, miner, at);
        let actions = self.nodes[miner as usize].originate_block(block);
        self.execute(miner, actions);
        hash
    }

    fn execute(&mut self, origin: NodeId, actions: Vec<Action>) {
        for action in actions {
            match action {
                Action::Send(to, msg) => self.send(origin, to, msg),
                Action::Broadcast(except, msg) => {
                    let peers = self.nodes[origin as usize].peers.clone();
                    for p in peers {
                        if Some(p) != except {
                            self.send(origin, p, msg.clone());
                        }
                    }
                }
            }
        }
    }

    fn send(&mut self, from: NodeId, to: NodeId, msg: Message) {
        *self.bytes_sent.entry(msg.kind()).or_default() += msg.wire_size() as u64;
        let delay = self.topology.latency(from, to) + self.config.processing_delay;
        self.queue.schedule_in(delay, Delivery { from, to, msg });
    }

    /// Runs until the queue drains or `until` (µs) is reached. Returns the
    /// number of deliveries processed.
    pub fn run(&mut self, until: Time) -> u64 {
        let mut processed = 0;
        while let Some(event) = self.queue.pop() {
            if event.at > until {
                // Put it back conceptually: we simply stop (determinism is
                // preserved because `pop` advanced time to the event; we
                // re-schedule it for identical delivery).
                let Delivery { from, to, msg } = event.payload;
                self.queue.schedule(event.at, Delivery { from, to, msg });
                break;
            }
            processed += 1;
            self.messages_delivered += 1;
            let Delivery { from, to, msg } = event.payload;
            // Record first sight of payloads.
            match &msg {
                Message::Tx(tx) => self.note_seen(tx.txid(), to, event.at),
                Message::Block(b) => self.note_seen(b.hash(), to, event.at),
                _ => {}
            }
            let actions = self.nodes[to as usize].handle(from, msg);
            self.execute(to, actions);
        }
        processed
    }

    /// Runs until the queue is fully drained.
    pub fn run_to_quiescence(&mut self) -> u64 {
        self.run(Time::MAX)
    }

    /// Propagation report for an item (txid or block hash).
    pub fn propagation(&self, item: &Hash256) -> Option<PropagationReport> {
        let seen = self.first_seen.get(item)?;
        Some(PropagationReport::from_first_seen(seen))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fistful_chain::address::Address;
    use fistful_chain::amount::Amount;
    use fistful_chain::transaction::{OutPoint, TxIn, TxOut};

    fn test_tx(tag: u64) -> Transaction {
        Transaction {
            version: 1,
            inputs: vec![TxIn { prevout: OutPoint::null(), witness: tag.to_le_bytes().to_vec() }],
            outputs: vec![TxOut { value: Amount::from_btc(1), address: Address::from_seed(tag) }],
            lock_time: 0,
        }
    }

    fn small_net() -> Network {
        Network::new(NetworkConfig {
            nodes: 40,
            out_degree: 4,
            latency_lo: 10_000,
            latency_hi: 50_000,
            miner_fraction: 0.1,
            processing_delay: 1_000,
            seed: 11,
        })
    }

    #[test]
    fn tx_floods_every_node() {
        let mut net = small_net();
        let txid = net.submit_tx(0, test_tx(1));
        net.run_to_quiescence();
        for i in 0..40 {
            assert!(net.node(i).knows_tx(&txid), "node {i} missing tx");
        }
        let report = net.propagation(&txid).unwrap();
        assert_eq!(report.reached, 40);
        assert!(report.full_coverage_time().unwrap() > 0);
    }

    #[test]
    fn propagation_time_grows_with_coverage() {
        let mut net = small_net();
        let txid = net.submit_tx(0, test_tx(2));
        net.run_to_quiescence();
        let report = net.propagation(&txid).unwrap();
        let t50 = report.coverage_time(0.5).unwrap();
        let t90 = report.coverage_time(0.9).unwrap();
        let t100 = report.full_coverage_time().unwrap();
        assert!(t50 <= t90);
        assert!(t90 <= t100);
    }

    #[test]
    fn deterministic_runs() {
        let run = || {
            let mut net = small_net();
            let txid = net.submit_tx(3, test_tx(9));
            net.run_to_quiescence();
            (net.messages_delivered, net.propagation(&txid).unwrap().full_coverage_time())
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn time_bounded_run_stops_early() {
        let mut net = small_net();
        let txid = net.submit_tx(0, test_tx(3));
        net.run(15_000); // one hop's worth of time
        let report = net.propagation(&txid).unwrap();
        assert!(report.reached < 40, "flood incomplete at t=15ms");
        net.run_to_quiescence();
        assert_eq!(net.propagation(&txid).unwrap().reached, 40);
    }

    #[test]
    fn block_floods_and_updates_tips() {
        use fistful_chain::block::BlockHeader;
        let mut net = small_net();
        let mut block = Block {
            header: BlockHeader {
                version: 1,
                prev_hash: Hash256::ZERO,
                merkle_root: Hash256::ZERO,
                time: 0,
                nonce: 0,
            },
            transactions: vec![test_tx(7)],
        };
        block.header.merkle_root = block.computed_merkle_root();
        let hash = net.submit_block(5, block);
        net.run_to_quiescence();
        for i in 0..40 {
            assert_eq!(net.node(i).tip, Some(hash), "node {i} tip");
        }
    }
}

//! Wire messages of the gossip protocol (a faithful subset of Bitcoin's:
//! inv / getdata / tx / block).

use fistful_chain::block::Block;
use fistful_chain::transaction::Transaction;
use fistful_crypto::hash::Hash256;
use std::sync::Arc;

/// A protocol message. Payloads are `Arc`-shared: the simulator models
/// propagation, not serialization cost (sizes are accounted separately).
#[derive(Debug, Clone)]
pub enum Message {
    /// "I have transaction `txid`."
    InvTx(Hash256),
    /// "Send me transaction `txid`."
    GetTx(Hash256),
    /// The transaction itself.
    Tx(Arc<Transaction>),
    /// "I have block `hash`."
    InvBlock(Hash256),
    /// "Send me block `hash`."
    GetBlock(Hash256),
    /// The block itself.
    Block(Arc<Block>),
}

impl Message {
    /// Approximate wire size in bytes (for bandwidth accounting).
    pub fn wire_size(&self) -> usize {
        use fistful_chain::encode::Encodable;
        match self {
            Message::InvTx(_) | Message::InvBlock(_) => 37,
            Message::GetTx(_) | Message::GetBlock(_) => 37,
            Message::Tx(tx) => tx.encode_to_vec().len() + 24,
            Message::Block(b) => b.encode_to_vec().len() + 24,
        }
    }

    /// Short label for tracing.
    pub fn kind(&self) -> &'static str {
        match self {
            Message::InvTx(_) => "invtx",
            Message::GetTx(_) => "gettx",
            Message::Tx(_) => "tx",
            Message::InvBlock(_) => "invblock",
            Message::GetBlock(_) => "getblock",
            Message::Block(_) => "block",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fistful_chain::address::Address;
    use fistful_chain::amount::Amount;
    use fistful_chain::transaction::{OutPoint, TxIn, TxOut};

    #[test]
    fn wire_sizes_ordered() {
        let tx = Arc::new(Transaction {
            version: 1,
            inputs: vec![TxIn::unsigned(OutPoint::null())],
            outputs: vec![TxOut { value: Amount::from_btc(1), address: Address::from_seed(1) }],
            lock_time: 0,
        });
        let inv = Message::InvTx(tx.txid());
        let full = Message::Tx(tx);
        assert!(inv.wire_size() < full.wire_size());
        assert_eq!(inv.kind(), "invtx");
        assert_eq!(full.kind(), "tx");
    }
}

//! Mining dynamics: Poisson block discovery over the gossip network.
//!
//! Drives a [`Network`] through a mining session: block discoveries arrive
//! as a Poisson process split across miners proportionally to hash power;
//! each discovery builds on the discovering node's current tip, so slow
//! propagation produces real forks — the race Figure 1's step (5)–(6)
//! glosses over, measured here.

use crate::network::Network;
use crate::node::NodeId;
use fistful_chain::block::{Block, BlockHeader};
use fistful_chain::transaction::Transaction;
use fistful_crypto::hash::Hash256;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::HashSet;

/// Outcome of a mining session.
#[derive(Debug, Clone)]
pub struct MiningReport {
    /// Blocks discovered in total.
    pub blocks_found: usize,
    /// Height of the best chain at the end (on the first miner's view).
    pub best_height: u64,
    /// Discoveries that did not end up on the best chain (stale/orphaned).
    pub stale_blocks: usize,
    /// Stale rate in [0, 1].
    pub stale_rate: f64,
}

/// Runs a mining session: `blocks` discoveries with exponential
/// inter-arrival times (mean `mean_interval_us`), assigned to random
/// miners. Returns the fork statistics.
///
/// Each block carries one unique marker transaction so hashes differ even
/// when two miners race from the same parent.
pub fn run_session(
    net: &mut Network,
    blocks: usize,
    mean_interval_us: u64,
    seed: u64,
) -> MiningReport {
    let miners = net.miners();
    assert!(!miners.is_empty(), "network has no miners");
    let mut rng = StdRng::seed_from_u64(seed);
    let mut found = Vec::with_capacity(blocks);

    for i in 0..blocks {
        // Exponential inter-arrival via inverse CDF.
        let u: f64 = rng.gen_range(f64::EPSILON..1.0);
        let wait = (-u.ln() * mean_interval_us as f64) as u64;
        // Let gossip progress until the discovery moment.
        let until = net.now() + wait.max(1);
        net.run(until);

        let miner: NodeId = miners[rng.gen_range(0..miners.len())];
        let parent = net.node(miner).tip.unwrap_or(Hash256::ZERO);
        let marker = marker_tx(i as u64, seed);
        let mut block = Block {
            header: BlockHeader {
                version: 1,
                prev_hash: parent,
                merkle_root: Hash256::ZERO,
                time: net.now(),
                nonce: i as u64,
            },
            transactions: vec![marker],
        };
        block.header.merkle_root = block.computed_merkle_root();
        let hash = net.submit_block(miner, block);
        found.push(hash);
    }
    net.run_to_quiescence();

    // Walk the best chain back from the first miner's tip.
    let view = net.node(miners[0]);
    let mut on_chain: HashSet<Hash256> = HashSet::new();
    let mut cursor = view.tip;
    while let Some(h) = cursor {
        on_chain.insert(h);
        cursor = view
            .blocks
            .get(&h)
            .map(|b| b.header.prev_hash)
            .filter(|p| *p != Hash256::ZERO);
    }
    let stale = found.iter().filter(|h| !on_chain.contains(h)).count();
    MiningReport {
        blocks_found: blocks,
        best_height: view.tip_height().unwrap_or(0),
        stale_blocks: stale,
        stale_rate: stale as f64 / blocks.max(1) as f64,
    }
}

fn marker_tx(i: u64, seed: u64) -> Transaction {
    use fistful_chain::address::Address;
    use fistful_chain::amount::Amount;
    use fistful_chain::transaction::{OutPoint, TxIn, TxOut};
    let mut witness = Vec::with_capacity(16);
    witness.extend_from_slice(&i.to_le_bytes());
    witness.extend_from_slice(&seed.to_le_bytes());
    Transaction {
        version: 1,
        inputs: vec![TxIn { prevout: OutPoint::null(), witness }],
        outputs: vec![TxOut {
            value: Amount::from_btc(50),
            address: Address::from_seed2(seed, i),
        }],
        lock_time: 0,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::network::NetworkConfig;

    fn net(seed: u64) -> Network {
        Network::new(NetworkConfig {
            nodes: 60,
            out_degree: 4,
            latency_lo: 20_000,
            latency_hi: 120_000,
            miner_fraction: 0.2,
            processing_delay: 1_000,
            seed,
        })
    }

    #[test]
    fn slow_blocks_rarely_fork() {
        let mut n = net(1);
        // Mean interval 60 s >> propagation time: forks should be rare.
        let report = run_session(&mut n, 30, 60_000_000, 7);
        assert_eq!(report.blocks_found, 30);
        assert!(
            report.stale_rate < 0.2,
            "stale rate {} too high for slow blocks",
            report.stale_rate
        );
        assert!(report.best_height as usize >= 30 - report.stale_blocks - 1);
    }

    #[test]
    fn fast_blocks_fork_more() {
        let mut slow = net(2);
        let slow_report = run_session(&mut slow, 40, 60_000_000, 9);
        let mut fast = net(2);
        // Mean interval comparable to propagation time: racing discoveries.
        let fast_report = run_session(&mut fast, 40, 400_000, 9);
        assert!(
            fast_report.stale_rate >= slow_report.stale_rate,
            "fast {} vs slow {}",
            fast_report.stale_rate,
            slow_report.stale_rate
        );
        assert!(fast_report.stale_blocks > 0, "fast blocks must race");
    }

    #[test]
    fn all_nodes_converge_after_session() {
        let mut n = net(3);
        run_session(&mut n, 20, 10_000_000, 11);
        let tip = n.node(0).tip;
        assert!(tip.is_some());
        for i in 0..60 {
            assert_eq!(n.node(i).tip_height(), n.node(0).tip_height(), "node {i}");
        }
    }

    #[test]
    fn deterministic_sessions() {
        let run = |seed| {
            let mut n = net(4);
            let r = run_session(&mut n, 15, 5_000_000, seed);
            (r.best_height, r.stale_blocks)
        };
        assert_eq!(run(5), run(5));
    }
}

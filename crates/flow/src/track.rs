//! Attributing peels to named services — the machinery behind Table 2.

use crate::categories::ServiceResolver;
use crate::graph::TxGraph;
use crate::peel::{follow_chains_indexed, FollowStrategy, PeelChain};
use fistful_chain::amount::Amount;
use fistful_chain::resolve::TxId;
use fistful_core::change::ChangeLabels;
use std::collections::BTreeMap;

/// One row of a Table-2-style report: peels seen to one service along one
/// or more chains.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ArrivalRow {
    /// Service name.
    pub service: String,
    /// Service category.
    pub category: String,
    /// Number of peels per chain (indexed like the input chains).
    pub peels: Vec<usize>,
    /// Total value per chain.
    pub value: Vec<Amount>,
}

impl ArrivalRow {
    /// Total peels across all chains.
    pub fn total_peels(&self) -> usize {
        self.peels.iter().sum()
    }

    /// Total value across all chains.
    pub fn total_value(&self) -> Amount {
        self.value.iter().copied().sum()
    }
}

/// Summarizes where the peels of several chains went, per service.
///
/// `directory` is any [`ServiceResolver`] — a live
/// [`AddressDirectory`](crate::categories::AddressDirectory) or a frozen
/// [`ClusterSnapshot`](fistful_core::snapshot::ClusterSnapshot).
/// Unattributed peels (addresses with no resolved service) are not listed —
/// exactly like the paper, which could only report flows to *known*
/// services.
pub fn service_arrivals(
    chains: &[PeelChain],
    directory: &impl ServiceResolver,
) -> Vec<ArrivalRow> {
    let mut rows: BTreeMap<String, ArrivalRow> = BTreeMap::new();
    for (ci, chain) in chains.iter().enumerate() {
        for hop in &chain.hops {
            for &(addr, value) in &hop.peels {
                let Some(service) = directory.service(addr) else {
                    continue;
                };
                let category = directory.category(addr).unwrap_or("unknown").to_string();
                let row = rows.entry(service.to_string()).or_insert_with(|| ArrivalRow {
                    service: service.to_string(),
                    category,
                    peels: vec![0; chains.len()],
                    value: vec![Amount::ZERO; chains.len()],
                });
                row.peels[ci] += 1;
                row.value[ci] = row.value[ci].checked_add(value).expect("value overflow");
            }
        }
    }
    let mut out: Vec<ArrivalRow> = rows.into_values().collect();
    // Category first (exchanges, then the rest), then by total value
    // descending — the shape of Table 2.
    out.sort_by(|a, b| {
        let rank = |c: &str| match c {
            "exchange" => 0,
            "wallet" => 1,
            "gambling" => 2,
            "vendor" => 3,
            _ => 4,
        };
        rank(&a.category)
            .cmp(&rank(&b.category))
            .then(b.total_value().cmp(&a.total_value()))
    });
    out
}

/// The graph-first form of the Table-2 pipeline: follows every start
/// transaction's peeling chain over the shared [`TxGraph`] index
/// ([`follow_chains_indexed`]) and attributes the peels per service
/// ([`service_arrivals`]). Returns the traversed chains alongside the rows
/// so callers can also report hop counts and totals.
pub fn service_arrivals_indexed(
    graph: &TxGraph,
    labels: &ChangeLabels,
    starts: &[TxId],
    max_hops: usize,
    strategy: FollowStrategy,
    directory: &impl ServiceResolver,
) -> (Vec<PeelChain>, Vec<ArrivalRow>) {
    let chains = follow_chains_indexed(graph, labels, starts, max_hops, strategy);
    let rows = service_arrivals(&chains, directory);
    (chains, rows)
}

/// Fraction of attributed peels that went to a given category.
pub fn category_share(rows: &[ArrivalRow], category: &str) -> f64 {
    let total: usize = rows.iter().map(|r| r.total_peels()).sum();
    if total == 0 {
        return 0.0;
    }
    let hits: usize = rows
        .iter()
        .filter(|r| r.category == category)
        .map(|r| r.total_peels())
        .sum();
    hits as f64 / total as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::categories::AddressDirectory;
    use crate::peel::{Hop, StopReason};

    fn chain_with_peels(peels: Vec<Vec<(u32, u64)>>) -> PeelChain {
        PeelChain {
            hops: peels
                .into_iter()
                .enumerate()
                .map(|(i, p)| Hop {
                    tx: i as u32,
                    change_vout: 0,
                    peels: p
                        .into_iter()
                        .map(|(a, v)| (a, Amount::from_sat(v)))
                        .collect(),
                    fallback: false,
                })
                .collect(),
            stopped: StopReason::HopLimit,
        }
    }

    fn directory() -> AddressDirectory {
        AddressDirectory::from_pairs(vec![
            (Some("Mt. Gox".into()), Some("exchange".into())), // addr 0
            (Some("Instawallet".into()), Some("wallet".into())), // addr 1
            (None, None),                                      // addr 2 (a user)
            (Some("Bitzino".into()), Some("gambling".into())), // addr 3
        ])
    }

    #[test]
    fn arrivals_grouped_per_service_and_chain() {
        let c1 = chain_with_peels(vec![vec![(0, 100)], vec![(1, 50)], vec![(2, 10)]]);
        let c2 = chain_with_peels(vec![vec![(0, 200), (0, 25)], vec![(3, 5)]]);
        let rows = service_arrivals(&[c1, c2], &directory());
        assert_eq!(rows.len(), 3); // user peel unattributed

        let gox = rows.iter().find(|r| r.service == "Mt. Gox").unwrap();
        assert_eq!(gox.peels, vec![1, 2]);
        assert_eq!(gox.value[0], Amount::from_sat(100));
        assert_eq!(gox.value[1], Amount::from_sat(225));
        assert_eq!(gox.total_peels(), 3);

        // Exchanges sort first.
        assert_eq!(rows[0].service, "Mt. Gox");
    }

    #[test]
    fn indexed_pipeline_matches_manual_composition() {
        use crate::peel::follow_chain;
        use fistful_core::change::{identify, ChangeConfig};
        use fistful_core::testutil::TestChain;

        let mut t = TestChain::new();
        let funding = t.coinbase(1, 1000);
        let _gox = t.coinbase(100, 5);
        let hop1 = t.tx(&[(funding, 0)], &[(100, 10), (10, 990)]);
        let _hop2 = t.tx(&[(hop1, 1)], &[(100, 20), (11, 970)]);
        let labels = identify(&t.chain, &ChangeConfig::naive());
        let graph = TxGraph::build(&t.chain);
        let mut pairs = vec![(None, None); t.chain.address_count()];
        pairs[t.id(100) as usize] = (Some("Mt. Gox".into()), Some("exchange".into()));
        let dir = AddressDirectory::from_pairs(pairs);

        let (chains, rows) = service_arrivals_indexed(
            &graph,
            &labels,
            &[hop1 as u32],
            100,
            FollowStrategy::Strict,
            &dir,
        );
        let legacy = follow_chain(&t.chain, &labels, hop1 as u32, 100, FollowStrategy::Strict);
        assert_eq!(chains, vec![legacy.clone()]);
        assert_eq!(rows, service_arrivals(&[legacy], &dir));
        assert_eq!(rows[0].service, "Mt. Gox");
        assert_eq!(rows[0].total_peels(), 2);
    }

    #[test]
    fn category_share_counts_peels() {
        let c1 = chain_with_peels(vec![vec![(0, 100)], vec![(1, 50)], vec![(3, 10)]]);
        let rows = service_arrivals(&[c1], &directory());
        let share = category_share(&rows, "exchange");
        assert!((share - 1.0 / 3.0).abs() < 1e-9);
        assert_eq!(category_share(&[], "exchange"), 0.0);
    }
}

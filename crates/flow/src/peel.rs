//! Peeling-chain traversal.
//!
//! §5 of the paper: "at each hop, we look at the two output addresses in
//! the transaction. If one of these output addresses is a change address,
//! we can follow the chain to the next hop by following the change address
//! (i.e., the next hop is the transaction in which this change address
//! spends its bitcoins), and can identify the meaningful recipient in the
//! transaction as the other output address (the 'peel')."

use crate::graph::TxGraph;
use fistful_chain::amount::Amount;
use fistful_chain::resolve::{AddressId, ResolvedChain, TxId};
use fistful_core::change::ChangeLabels;

/// How to pick the change output at each hop.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FollowStrategy {
    /// Only follow Heuristic-2 change labels; stop at unlabelled hops.
    Strict,
    /// Follow H2 labels; when a hop is unlabelled (e.g. both outputs
    /// fresh), fall back to the largest output — peels are small relative
    /// to the remainder. Among equal-value outputs the lowest vout wins
    /// (an explicit, deterministic tie-break). Fallback hops are flagged
    /// in the result.
    LargestFallback,
}

/// One hop of a peeling chain.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Hop {
    /// The transaction at this hop.
    pub tx: TxId,
    /// The change output index followed to the next hop.
    pub change_vout: u32,
    /// The peel outputs: everything except the change.
    pub peels: Vec<(AddressId, Amount)>,
    /// True if this hop used the largest-output fallback.
    pub fallback: bool,
}

/// A traversed peeling chain.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct PeelChain {
    /// Hops in order.
    pub hops: Vec<Hop>,
    /// Why the traversal stopped.
    pub stopped: StopReason,
}

/// Why a chain traversal ended.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum StopReason {
    /// The hop limit was reached.
    #[default]
    HopLimit,
    /// The change output is unspent (chain still live / parked).
    UnspentChange,
    /// No change output could be identified (strict mode).
    NoChangeIdentified,
    /// The transaction had no outputs to follow (should not happen on a
    /// validated chain).
    Malformed,
}

impl PeelChain {
    /// Total value peeled off across all hops.
    pub fn total_peeled(&self) -> Amount {
        self.hops
            .iter()
            .flat_map(|h| h.peels.iter().map(|(_, v)| *v))
            .sum()
    }

    /// Number of hops that needed the fallback.
    pub fn fallback_hops(&self) -> usize {
        self.hops.iter().filter(|h| h.fallback).count()
    }
}

/// Follows a peeling chain starting at transaction `start`, for at most
/// `max_hops` hops.
pub fn follow_chain(
    chain: &ResolvedChain,
    labels: &ChangeLabels,
    start: TxId,
    max_hops: usize,
    strategy: FollowStrategy,
) -> PeelChain {
    let mut out = PeelChain::default();
    let mut tx_id = start;
    for _ in 0..max_hops {
        let tx = &chain.txs[tx_id as usize];
        if tx.outputs.is_empty() {
            out.stopped = StopReason::Malformed;
            return out;
        }
        // Identify the change output.
        let (change_vout, fallback) = match labels.change_vout(tx_id) {
            Some(v) => (v, false),
            None => match strategy {
                FollowStrategy::Strict => {
                    out.stopped = StopReason::NoChangeIdentified;
                    return out;
                }
                FollowStrategy::LargestFallback => {
                    // `max_by_key` would return the *last* maximum, making
                    // the choice among equal-value outputs depend on output
                    // order. Tie-break explicitly: the lowest vout wins.
                    let (v, _) = tx
                        .outputs
                        .iter()
                        .enumerate()
                        .rev()
                        .max_by_key(|(_, o)| o.value)
                        .expect("non-empty outputs");
                    (v as u32, true)
                }
            },
        };
        let peels = tx
            .outputs
            .iter()
            .enumerate()
            .filter(|(v, _)| *v as u32 != change_vout)
            .map(|(_, o)| (o.address, o.value))
            .collect();
        out.hops.push(Hop { tx: tx_id, change_vout, peels, fallback });

        // Next hop: the transaction in which the change is spent.
        match tx.outputs[change_vout as usize].spent_by {
            Some(next) => tx_id = next,
            None => {
                out.stopped = StopReason::UnspentChange;
                return out;
            }
        }
    }
    out.stopped = StopReason::HopLimit;
    out
}

/// [`follow_chain`] over the columnar [`TxGraph`] index: hop-for-hop
/// identical output (same hops, same peels, same stop reason — proven by
/// the differential tests), but every hop is a handful of flat-array reads
/// instead of a `Vec`-of-structs walk through the resolver.
///
/// Build the graph once ([`TxGraph::build`]) and reuse it across queries;
/// this is the traversal `repro tab2` and the batch taint engine run on.
pub fn follow_chain_indexed(
    graph: &TxGraph,
    labels: &ChangeLabels,
    start: TxId,
    max_hops: usize,
    strategy: FollowStrategy,
) -> PeelChain {
    let mut out = PeelChain::default();
    let mut tx_id = start;
    for _ in 0..max_hops {
        let outputs = graph.outputs(tx_id);
        if outputs.is_empty() {
            out.stopped = StopReason::Malformed;
            return out;
        }
        // Identify the change output.
        let (change_vout, fallback) = match labels.change_vout(tx_id) {
            Some(v) => (v, false),
            None => match strategy {
                FollowStrategy::Strict => {
                    out.stopped = StopReason::NoChangeIdentified;
                    return out;
                }
                FollowStrategy::LargestFallback => {
                    // Same explicit tie-break as the legacy path: among
                    // equal-value outputs the lowest vout wins.
                    let flat = outputs
                        .clone()
                        .rev()
                        .max_by_key(|&f| graph.value_of(f))
                        .expect("non-empty outputs");
                    (flat - outputs.start, true)
                }
            },
        };
        let change_flat = outputs.start + change_vout;
        let peels = outputs
            .clone()
            .filter(|&f| f != change_flat)
            .map(|f| (graph.address_of(f), graph.value_of(f)))
            .collect();
        out.hops.push(Hop { tx: tx_id, change_vout, peels, fallback });

        // Next hop: the transaction in which the change is spent.
        match graph.spender_of(change_flat) {
            Some(next) => tx_id = next,
            None => {
                out.stopped = StopReason::UnspentChange;
                return out;
            }
        }
    }
    out.stopped = StopReason::HopLimit;
    out
}

/// Follows many peeling chains over one shared index — the multi-source
/// form `repro tab2` uses for the three Silk Road dissolution chains.
pub fn follow_chains_indexed(
    graph: &TxGraph,
    labels: &ChangeLabels,
    starts: &[TxId],
    max_hops: usize,
    strategy: FollowStrategy,
) -> Vec<PeelChain> {
    starts
        .iter()
        .map(|&s| follow_chain_indexed(graph, labels, s, max_hops, strategy))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use fistful_core::change::{identify, ChangeConfig};
    use fistful_core::testutil::TestChain;

    /// Builds a 3-hop peeling chain: 1000 → peel 10 → peel 20 → peel 30.
    /// Recipients are pre-seeded (seen) addresses 100-102; change cascades
    /// through fresh addresses.
    fn peeling_chain() -> (TestChain, usize) {
        let mut t = TestChain::new();
        let funding = t.coinbase(1, 1000);
        let _r0 = t.coinbase(100, 5);
        let _r1 = t.coinbase(101, 5);
        let _r2 = t.coinbase(102, 5);
        let hop1 = t.tx(&[(funding, 0)], &[(100, 10), (10, 990)]);
        let hop2 = t.tx(&[(hop1, 1)], &[(101, 20), (11, 970)]);
        let _hop3 = t.tx(&[(hop2, 1)], &[(102, 30), (12, 940)]);
        (t, hop1)
    }

    #[test]
    fn follows_labelled_chain() {
        let (t, start) = peeling_chain();
        let labels = identify(&t.chain, &ChangeConfig::naive());
        let chain = follow_chain(&t.chain, &labels, start as u32, 100, FollowStrategy::Strict);
        assert_eq!(chain.hops.len(), 3);
        assert_eq!(chain.stopped, StopReason::UnspentChange);
        assert_eq!(chain.fallback_hops(), 0);
        // Peels: 10 + 20 + 30 BTC.
        assert_eq!(chain.total_peeled(), fistful_chain::amount::Amount::from_btc(60));
        // Each hop's peel recipient is the seen address.
        assert_eq!(chain.hops[0].peels[0].0, t.id(100));
        assert_eq!(chain.hops[1].peels[0].0, t.id(101));
        assert_eq!(chain.hops[2].peels[0].0, t.id(102));
    }

    #[test]
    fn hop_limit_respected() {
        let (t, start) = peeling_chain();
        let labels = identify(&t.chain, &ChangeConfig::naive());
        let chain = follow_chain(&t.chain, &labels, start as u32, 2, FollowStrategy::Strict);
        assert_eq!(chain.hops.len(), 2);
        assert_eq!(chain.stopped, StopReason::HopLimit);
    }

    #[test]
    fn strict_stops_at_ambiguous_hop() {
        let mut t = TestChain::new();
        let funding = t.coinbase(1, 1000);
        let _r0 = t.coinbase(100, 5);
        let hop1 = t.tx(&[(funding, 0)], &[(100, 10), (10, 990)]);
        // Ambiguous hop: both outputs fresh.
        let hop2 = t.tx(&[(hop1, 1)], &[(200, 20), (11, 970)]);
        let _ = hop2;
        let labels = identify(&t.chain, &ChangeConfig::naive());
        let chain = follow_chain(&t.chain, &labels, hop1 as u32, 100, FollowStrategy::Strict);
        assert_eq!(chain.hops.len(), 1);
        assert_eq!(chain.stopped, StopReason::NoChangeIdentified);
    }

    #[test]
    fn fallback_follows_largest_output() {
        let mut t = TestChain::new();
        let funding = t.coinbase(1, 1000);
        let _r0 = t.coinbase(100, 5);
        let hop1 = t.tx(&[(funding, 0)], &[(100, 10), (10, 990)]);
        // Ambiguous hop (both fresh), remainder is larger.
        let hop2 = t.tx(&[(hop1, 1)], &[(200, 20), (11, 970)]);
        // Chain continues from the remainder.
        let _hop3 = t.tx(&[(hop2, 1)], &[(100, 30), (12, 940)]);
        let labels = identify(&t.chain, &ChangeConfig::naive());
        let chain =
            follow_chain(&t.chain, &labels, hop1 as u32, 100, FollowStrategy::LargestFallback);
        assert_eq!(chain.hops.len(), 3);
        assert_eq!(chain.fallback_hops(), 1);
        assert!(chain.hops[1].fallback);
        assert_eq!(chain.hops[1].peels[0].0, t.id(200));
    }

    #[test]
    fn fallback_tie_breaks_to_lowest_vout() {
        let mut t = TestChain::new();
        let funding = t.coinbase(1, 1000);
        // Both outputs fresh (no label) and equal-value: the fallback must
        // deterministically follow vout 0, not whichever sorts last.
        let hop1 = t.tx(&[(funding, 0)], &[(10, 495), (11, 495)]);
        let labels = identify(&t.chain, &ChangeConfig::naive());
        let chain =
            follow_chain(&t.chain, &labels, hop1 as u32, 100, FollowStrategy::LargestFallback);
        assert_eq!(chain.hops.len(), 1);
        assert!(chain.hops[0].fallback);
        assert_eq!(chain.hops[0].change_vout, 0);
        assert_eq!(chain.hops[0].peels, vec![(t.id(11), Amount::from_btc(495))]);
    }

    #[test]
    fn indexed_matches_legacy_hop_for_hop() {
        let (t, _) = peeling_chain();
        let labels = identify(&t.chain, &ChangeConfig::naive());
        let graph = TxGraph::build_with_threads(&t.chain, 2);
        for start in 0..t.chain.tx_count() as u32 {
            for strategy in [FollowStrategy::Strict, FollowStrategy::LargestFallback] {
                for max_hops in [0, 1, 2, 100] {
                    let legacy = follow_chain(&t.chain, &labels, start, max_hops, strategy);
                    let indexed =
                        follow_chain_indexed(&graph, &labels, start, max_hops, strategy);
                    assert_eq!(legacy, indexed, "start {start} {strategy:?} {max_hops}");
                }
            }
        }
    }

    #[test]
    fn indexed_fallback_tie_breaks_to_lowest_vout() {
        let mut t = TestChain::new();
        let funding = t.coinbase(1, 1000);
        let hop1 = t.tx(&[(funding, 0)], &[(10, 495), (11, 495)]);
        let labels = identify(&t.chain, &ChangeConfig::naive());
        let graph = TxGraph::build(&t.chain);
        let chain = follow_chain_indexed(
            &graph,
            &labels,
            hop1 as u32,
            100,
            FollowStrategy::LargestFallback,
        );
        assert_eq!(chain.hops[0].change_vout, 0);
        assert_eq!(chain.hops[0].peels, vec![(t.id(11), Amount::from_btc(495))]);
    }

    #[test]
    fn follow_chains_indexed_covers_every_start() {
        let (t, start) = peeling_chain();
        let labels = identify(&t.chain, &ChangeConfig::naive());
        let graph = TxGraph::build(&t.chain);
        let starts = [start as u32, start as u32 + 1];
        let chains =
            follow_chains_indexed(&graph, &labels, &starts, 100, FollowStrategy::Strict);
        assert_eq!(chains.len(), 2);
        assert_eq!(chains[0].hops.len(), 3);
        assert_eq!(chains[1].hops.len(), 2);
    }

    #[test]
    fn multi_output_peel_collects_all_non_change() {
        let mut t = TestChain::new();
        let funding = t.coinbase(1, 1000);
        let _r0 = t.coinbase(100, 5);
        let _r1 = t.coinbase(101, 5);
        // One tx pays two seen recipients plus fresh change.
        let hop1 = t.tx(&[(funding, 0)], &[(100, 10), (101, 15), (10, 975)]);
        let labels = identify(&t.chain, &ChangeConfig::naive());
        let chain = follow_chain(&t.chain, &labels, hop1 as u32, 100, FollowStrategy::Strict);
        assert_eq!(chain.hops[0].peels.len(), 2);
        assert_eq!(chain.total_peeled(), fistful_chain::amount::Amount::from_btc(25));
    }
}

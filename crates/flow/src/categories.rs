//! Address → service/category resolution.
//!
//! Flow analysis needs to answer "who received this output?". The paper
//! answers via cluster naming; the simulator can also answer from ground
//! truth. [`AddressDirectory`] abstracts both.

use fistful_chain::resolve::AddressId;
use fistful_core::cluster::Clustering;
use fistful_core::naming::NamingReport;

/// Per-address service name and category, resolved once up front.
#[derive(Debug, Clone, Default)]
pub struct AddressDirectory {
    service: Vec<Option<String>>,
    category: Vec<Option<String>>,
}

impl AddressDirectory {
    /// Builds from a clustering plus its naming report — the paper's
    /// pipeline: an address inherits its cluster's name.
    pub fn from_naming(clustering: &Clustering, names: &NamingReport) -> AddressDirectory {
        let n = clustering.assignment.len();
        let mut dir = AddressDirectory {
            service: vec![None; n],
            category: vec![None; n],
        };
        for (addr, &cluster) in clustering.assignment.iter().enumerate() {
            if let Some(name) = names.names.get(&cluster) {
                dir.service[addr] = Some(name.clone());
                dir.category[addr] = names.categories.get(&cluster).cloned();
            }
        }
        dir
    }

    /// Builds from explicit per-address `(service, category)` pairs
    /// (e.g. simulator ground truth).
    pub fn from_pairs(pairs: Vec<(Option<String>, Option<String>)>) -> AddressDirectory {
        let (service, category) = pairs.into_iter().unzip();
        AddressDirectory { service, category }
    }

    /// The service name an address resolves to, if any.
    pub fn service(&self, addr: AddressId) -> Option<&str> {
        self.service.get(addr as usize)?.as_deref()
    }

    /// The category an address resolves to, if any.
    pub fn category(&self, addr: AddressId) -> Option<&str> {
        self.category.get(addr as usize)?.as_deref()
    }

    /// Number of addresses covered.
    pub fn len(&self) -> usize {
        self.service.len()
    }

    /// True if no addresses are covered.
    pub fn is_empty(&self) -> bool {
        self.service.is_empty()
    }

    /// Count of addresses with a resolved service.
    pub fn resolved_count(&self) -> usize {
        self.service.iter().filter(|s| s.is_some()).count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_pairs_lookup() {
        let dir = AddressDirectory::from_pairs(vec![
            (Some("Mt. Gox".into()), Some("exchange".into())),
            (None, None),
        ]);
        assert_eq!(dir.service(0), Some("Mt. Gox"));
        assert_eq!(dir.category(0), Some("exchange"));
        assert_eq!(dir.service(1), None);
        assert_eq!(dir.resolved_count(), 1);
        assert_eq!(dir.len(), 2);
        // Out of range is None, not a panic.
        assert_eq!(dir.service(99), None);
    }
}

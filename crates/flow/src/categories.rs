//! Address → service/category resolution.
//!
//! Flow analysis needs to answer "who received this output?". The paper
//! answers via cluster naming; the simulator can also answer from ground
//! truth; a serving deployment answers from a frozen
//! [`ClusterSnapshot`]. The [`ServiceResolver`] trait abstracts all three,
//! so the balance/theft/track entry points run unchanged against a live
//! [`AddressDirectory`] or a reloaded snapshot artifact.

use fistful_chain::resolve::AddressId;
use fistful_core::cluster::Clustering;
use fistful_core::naming::NamingReport;
use fistful_core::snapshot::ClusterSnapshot;

/// Anything that can resolve an address to a service name and category.
///
/// Implemented by [`AddressDirectory`] (dense per-address tables built from
/// naming or ground truth) and by [`ClusterSnapshot`] (two array reads into
/// the frozen artifact). Every flow entry point that needs attribution —
/// [`balance_series`](crate::balance::balance_series),
/// [`track_theft`](crate::theft::track_theft),
/// [`service_arrivals`](crate::track::service_arrivals) — takes
/// `&impl ServiceResolver`, so a decoded snapshot can be queried directly
/// without rebuilding any per-address table.
pub trait ServiceResolver {
    /// The service name an address resolves to, if any.
    fn service(&self, addr: AddressId) -> Option<&str>;

    /// The category an address resolves to, if any.
    fn category(&self, addr: AddressId) -> Option<&str>;
}

impl ServiceResolver for ClusterSnapshot {
    fn service(&self, addr: AddressId) -> Option<&str> {
        self.service_of(addr)
    }

    fn category(&self, addr: AddressId) -> Option<&str> {
        self.category_of(addr)
    }
}

/// Per-address service name and category, resolved once up front.
///
/// The `(service, category)` strings are *interned*: each distinct pair is
/// stored once in an entry table, and every address carries only a `u32`
/// slot into it. A directory covering millions of addresses named after a
/// few thousand clusters therefore holds a few thousand strings, not
/// millions — and construction from a snapshot or naming report clones one
/// string pair per *cluster*, never per address. Resolution is two array
/// reads and never allocates.
#[derive(Debug, Clone, Default)]
pub struct AddressDirectory {
    /// Distinct `(service, category)` pairs, in first-interned order.
    entries: Vec<(Option<String>, Option<String>)>,
    /// Per address: index into `entries`, or [`UNRESOLVED`].
    slots: Vec<u32>,
}

/// Slot value for addresses with neither a service nor a category.
const UNRESOLVED: u32 = u32::MAX;

/// Interning helper used by the constructors: maps each distinct pair to
/// its entry slot, creating entries on first sight.
#[derive(Default)]
struct Interner {
    entries: Vec<(Option<String>, Option<String>)>,
    index: std::collections::HashMap<(Option<String>, Option<String>), u32>,
}

impl Interner {
    fn slot(&mut self, pair: (Option<String>, Option<String>)) -> u32 {
        if pair == (None, None) {
            return UNRESOLVED;
        }
        if let Some(&slot) = self.index.get(&pair) {
            return slot;
        }
        let slot = self.entries.len() as u32;
        assert!(slot != UNRESOLVED, "entry table full");
        self.entries.push(pair.clone());
        self.index.insert(pair, slot);
        slot
    }
}

impl AddressDirectory {
    /// Builds from a clustering plus its naming report — the paper's
    /// pipeline: an address inherits its cluster's name. Each named
    /// cluster's strings are interned once; addresses share the entry.
    pub fn from_naming(clustering: &Clustering, names: &NamingReport) -> AddressDirectory {
        let mut interner = Interner::default();
        let mut cluster_slot: std::collections::HashMap<u32, u32> =
            std::collections::HashMap::new();
        let slots = clustering
            .assignment
            .iter()
            .map(|&cluster| {
                *cluster_slot.entry(cluster).or_insert_with(|| {
                    match names.names.get(&cluster) {
                        Some(name) => interner.slot((
                            Some(name.clone()),
                            names.categories.get(&cluster).cloned(),
                        )),
                        None => UNRESOLVED,
                    }
                })
            })
            .collect();
        AddressDirectory { entries: interner.entries, slots }
    }

    /// Materializes a dense directory from a frozen snapshot. Prefer
    /// passing the snapshot itself to the flow entry points (it implements
    /// [`ServiceResolver`]); this copy is for callers that need an owned
    /// per-address table. The snapshot already stores each cluster's
    /// strings once, and so does the directory: one interned entry per
    /// distinct named pair, one `u32` per address.
    pub fn from_snapshot(snapshot: &ClusterSnapshot) -> AddressDirectory {
        let mut interner = Interner::default();
        // One slot per cluster, cloned from the snapshot exactly once.
        let cluster_slots: Vec<u32> = (0..snapshot.cluster_count() as u32)
            .map(|c| {
                let info = snapshot.info(c).expect("cluster id in range");
                interner.slot((info.name.clone(), info.category.clone()))
            })
            .collect();
        let slots = (0..snapshot.address_count() as AddressId)
            .map(|addr| {
                snapshot
                    .cluster_of(addr)
                    .map_or(UNRESOLVED, |c| cluster_slots[c as usize])
            })
            .collect();
        AddressDirectory { entries: interner.entries, slots }
    }

    /// Builds from explicit per-address `(service, category)` pairs
    /// (e.g. simulator ground truth). Repeated pairs are interned to one
    /// entry.
    pub fn from_pairs(pairs: Vec<(Option<String>, Option<String>)>) -> AddressDirectory {
        let mut interner = Interner::default();
        let slots = pairs.into_iter().map(|pair| interner.slot(pair)).collect();
        AddressDirectory { entries: interner.entries, slots }
    }

    fn entry(&self, addr: AddressId) -> Option<&(Option<String>, Option<String>)> {
        let slot = *self.slots.get(addr as usize)?;
        self.entries.get(slot as usize)
    }

    /// The service name an address resolves to, if any. Two array reads;
    /// never allocates.
    pub fn service(&self, addr: AddressId) -> Option<&str> {
        self.entry(addr)?.0.as_deref()
    }

    /// The category an address resolves to, if any. Two array reads; never
    /// allocates.
    pub fn category(&self, addr: AddressId) -> Option<&str> {
        self.entry(addr)?.1.as_deref()
    }

    /// Number of addresses covered.
    pub fn len(&self) -> usize {
        self.slots.len()
    }

    /// True if no addresses are covered.
    pub fn is_empty(&self) -> bool {
        self.slots.is_empty()
    }

    /// Count of addresses with a resolved service.
    pub fn resolved_count(&self) -> usize {
        self.slots
            .iter()
            .filter(|&&s| {
                self.entries
                    .get(s as usize)
                    .is_some_and(|(service, _)| service.is_some())
            })
            .count()
    }

    /// Number of distinct interned `(service, category)` entries — bounded
    /// by the number of distinct named clusters, not by the address count.
    pub fn interned_entries(&self) -> usize {
        self.entries.len()
    }
}

impl ServiceResolver for AddressDirectory {
    fn service(&self, addr: AddressId) -> Option<&str> {
        AddressDirectory::service(self, addr)
    }

    fn category(&self, addr: AddressId) -> Option<&str> {
        AddressDirectory::category(self, addr)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fistful_core::cluster::Clusterer;
    use fistful_core::naming::name_clusters;
    use fistful_core::tagdb::{Tag, TagDb, TagSource};
    use fistful_core::testutil::TestChain;

    #[test]
    fn from_pairs_lookup() {
        let dir = AddressDirectory::from_pairs(vec![
            (Some("Mt. Gox".into()), Some("exchange".into())),
            (None, None),
        ]);
        assert_eq!(dir.service(0), Some("Mt. Gox"));
        assert_eq!(dir.category(0), Some("exchange"));
        assert_eq!(dir.service(1), None);
        assert_eq!(dir.resolved_count(), 1);
        assert_eq!(dir.len(), 2);
        // Out of range is None, not a panic.
        assert_eq!(dir.service(99), None);
    }

    #[test]
    fn from_pairs_interns_repeated_entries() {
        let gox = || (Some("Mt. Gox".to_string()), Some("exchange".to_string()));
        let dir = AddressDirectory::from_pairs(vec![gox(), (None, None), gox(), gox()]);
        assert_eq!(dir.len(), 4);
        assert_eq!(dir.resolved_count(), 3);
        // Three resolved addresses, one stored string pair.
        assert_eq!(dir.interned_entries(), 1);
        // All three resolve to the *same allocation*: resolution hands out
        // borrowed interned strings, it never clones per address or per
        // call.
        let a = dir.service(0).unwrap();
        let b = dir.service(2).unwrap();
        let c = dir.service(3).unwrap();
        assert!(std::ptr::eq(a, b) && std::ptr::eq(b, c));
        assert!(std::ptr::eq(dir.category(0).unwrap(), dir.category(3).unwrap()));
    }

    #[test]
    fn from_snapshot_clones_per_cluster_not_per_address() {
        let mut t = TestChain::new();
        let cb1 = t.coinbase(1, 50);
        let cb2 = t.coinbase(2, 50);
        let cb3 = t.coinbase(3, 50);
        // H1 cluster {1,2,3} (co-spent inputs): tagged. Addresses 4-9 pad
        // the address space.
        t.tx(&[(cb1, 0), (cb2, 0), (cb3, 0)], &[(4, 150)]);
        for a in 5..10 {
            t.coinbase(a, 1);
        }
        let clustering = Clusterer::h1_only().run(&t.chain);
        let mut db = TagDb::new();
        db.add(Tag {
            address: t.id(1),
            service: "Mt. Gox".into(),
            category: "exchange".into(),
            source: TagSource::OwnTransaction,
        });
        let names = name_clusters(&clustering, &db);
        let snapshot = ClusterSnapshot::build(&t.chain, &clustering, &names);
        let dir = AddressDirectory::from_snapshot(&snapshot);

        assert_eq!(dir.len(), snapshot.address_count());
        // The entry table is bounded by the cluster count, not the address
        // count — the old implementation cloned a String pair per address.
        assert!(dir.interned_entries() <= snapshot.named_cluster_count());
        assert_eq!(dir.interned_entries(), 1);
        // Every address of the tagged cluster borrows the same allocation.
        let s1 = dir.service(t.id(1)).unwrap();
        let s2 = dir.service(t.id(2)).unwrap();
        assert!(std::ptr::eq(s1, s2));
        assert_eq!(dir.resolved_count(), 3);
    }

    #[test]
    fn snapshot_resolves_like_the_directory_it_froze() {
        let mut t = TestChain::new();
        let cb1 = t.coinbase(1, 50);
        let cb2 = t.coinbase(2, 50);
        t.tx(&[(cb1, 0), (cb2, 0)], &[(3, 100)]);
        let clustering = Clusterer::h1_only().run(&t.chain);
        let mut db = TagDb::new();
        db.add(Tag {
            address: t.id(1),
            service: "Mt. Gox".into(),
            category: "exchange".into(),
            source: TagSource::OwnTransaction,
        });
        let names = name_clusters(&clustering, &db);
        let snapshot = ClusterSnapshot::build(&t.chain, &clustering, &names);
        let from_naming = AddressDirectory::from_naming(&clustering, &names);
        let from_snapshot = AddressDirectory::from_snapshot(&snapshot);

        for addr in 0..t.chain.address_count() as AddressId {
            // The snapshot as a resolver, the materialized copy, and the
            // naming-built directory all agree.
            assert_eq!(ServiceResolver::service(&snapshot, addr), from_naming.service(addr));
            assert_eq!(from_snapshot.service(addr), from_naming.service(addr));
            assert_eq!(ServiceResolver::category(&snapshot, addr), from_naming.category(addr));
            assert_eq!(from_snapshot.category(addr), from_naming.category(addr));
        }
        // The co-spending cluster {1,2} carries the tag; 3 is unnamed.
        assert_eq!(ServiceResolver::service(&snapshot, t.id(2)), Some("Mt. Gox"));
        assert_eq!(ServiceResolver::service(&snapshot, t.id(3)), None);
    }
}

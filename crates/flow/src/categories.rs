//! Address → service/category resolution.
//!
//! Flow analysis needs to answer "who received this output?". The paper
//! answers via cluster naming; the simulator can also answer from ground
//! truth; a serving deployment answers from a frozen
//! [`ClusterSnapshot`]. The [`ServiceResolver`] trait abstracts all three,
//! so the balance/theft/track entry points run unchanged against a live
//! [`AddressDirectory`] or a reloaded snapshot artifact.

use fistful_chain::resolve::AddressId;
use fistful_core::cluster::Clustering;
use fistful_core::naming::NamingReport;
use fistful_core::snapshot::ClusterSnapshot;

/// Anything that can resolve an address to a service name and category.
///
/// Implemented by [`AddressDirectory`] (dense per-address tables built from
/// naming or ground truth) and by [`ClusterSnapshot`] (two array reads into
/// the frozen artifact). Every flow entry point that needs attribution —
/// [`balance_series`](crate::balance::balance_series),
/// [`track_theft`](crate::theft::track_theft),
/// [`service_arrivals`](crate::track::service_arrivals) — takes
/// `&impl ServiceResolver`, so a decoded snapshot can be queried directly
/// without rebuilding any per-address table.
pub trait ServiceResolver {
    /// The service name an address resolves to, if any.
    fn service(&self, addr: AddressId) -> Option<&str>;

    /// The category an address resolves to, if any.
    fn category(&self, addr: AddressId) -> Option<&str>;
}

impl ServiceResolver for ClusterSnapshot {
    fn service(&self, addr: AddressId) -> Option<&str> {
        self.service_of(addr)
    }

    fn category(&self, addr: AddressId) -> Option<&str> {
        self.category_of(addr)
    }
}

/// Per-address service name and category, resolved once up front.
#[derive(Debug, Clone, Default)]
pub struct AddressDirectory {
    service: Vec<Option<String>>,
    category: Vec<Option<String>>,
}

impl AddressDirectory {
    /// Builds from a clustering plus its naming report — the paper's
    /// pipeline: an address inherits its cluster's name.
    pub fn from_naming(clustering: &Clustering, names: &NamingReport) -> AddressDirectory {
        let n = clustering.assignment.len();
        let mut dir = AddressDirectory {
            service: vec![None; n],
            category: vec![None; n],
        };
        for (addr, &cluster) in clustering.assignment.iter().enumerate() {
            if let Some(name) = names.names.get(&cluster) {
                dir.service[addr] = Some(name.to_string());
                dir.category[addr] = names.categories.get(&cluster).cloned();
            }
        }
        dir
    }

    /// Materializes a dense directory from a frozen snapshot. Prefer
    /// passing the snapshot itself to the flow entry points (it implements
    /// [`ServiceResolver`]); this copy is for callers that need an owned
    /// per-address table.
    pub fn from_snapshot(snapshot: &ClusterSnapshot) -> AddressDirectory {
        let n = snapshot.address_count();
        let mut dir = AddressDirectory {
            service: vec![None; n],
            category: vec![None; n],
        };
        for addr in 0..n as AddressId {
            if let Some(info) = snapshot.info_of_address(addr) {
                dir.service[addr as usize] = info.name.clone();
                dir.category[addr as usize] = info.category.clone();
            }
        }
        dir
    }

    /// Builds from explicit per-address `(service, category)` pairs
    /// (e.g. simulator ground truth).
    pub fn from_pairs(pairs: Vec<(Option<String>, Option<String>)>) -> AddressDirectory {
        let (service, category) = pairs.into_iter().unzip();
        AddressDirectory { service, category }
    }

    /// The service name an address resolves to, if any.
    pub fn service(&self, addr: AddressId) -> Option<&str> {
        self.service.get(addr as usize)?.as_deref()
    }

    /// The category an address resolves to, if any.
    pub fn category(&self, addr: AddressId) -> Option<&str> {
        self.category.get(addr as usize)?.as_deref()
    }

    /// Number of addresses covered.
    pub fn len(&self) -> usize {
        self.service.len()
    }

    /// True if no addresses are covered.
    pub fn is_empty(&self) -> bool {
        self.service.is_empty()
    }

    /// Count of addresses with a resolved service.
    pub fn resolved_count(&self) -> usize {
        self.service.iter().filter(|s| s.is_some()).count()
    }
}

impl ServiceResolver for AddressDirectory {
    fn service(&self, addr: AddressId) -> Option<&str> {
        AddressDirectory::service(self, addr)
    }

    fn category(&self, addr: AddressId) -> Option<&str> {
        AddressDirectory::category(self, addr)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fistful_core::cluster::Clusterer;
    use fistful_core::naming::name_clusters;
    use fistful_core::tagdb::{Tag, TagDb, TagSource};
    use fistful_core::testutil::TestChain;

    #[test]
    fn from_pairs_lookup() {
        let dir = AddressDirectory::from_pairs(vec![
            (Some("Mt. Gox".into()), Some("exchange".into())),
            (None, None),
        ]);
        assert_eq!(dir.service(0), Some("Mt. Gox"));
        assert_eq!(dir.category(0), Some("exchange"));
        assert_eq!(dir.service(1), None);
        assert_eq!(dir.resolved_count(), 1);
        assert_eq!(dir.len(), 2);
        // Out of range is None, not a panic.
        assert_eq!(dir.service(99), None);
    }

    #[test]
    fn snapshot_resolves_like_the_directory_it_froze() {
        let mut t = TestChain::new();
        let cb1 = t.coinbase(1, 50);
        let cb2 = t.coinbase(2, 50);
        t.tx(&[(cb1, 0), (cb2, 0)], &[(3, 100)]);
        let clustering = Clusterer::h1_only().run(&t.chain);
        let mut db = TagDb::new();
        db.add(Tag {
            address: t.id(1),
            service: "Mt. Gox".into(),
            category: "exchange".into(),
            source: TagSource::OwnTransaction,
        });
        let names = name_clusters(&clustering, &db);
        let snapshot = ClusterSnapshot::build(&t.chain, &clustering, &names);
        let from_naming = AddressDirectory::from_naming(&clustering, &names);
        let from_snapshot = AddressDirectory::from_snapshot(&snapshot);

        for addr in 0..t.chain.address_count() as AddressId {
            // The snapshot as a resolver, the materialized copy, and the
            // naming-built directory all agree.
            assert_eq!(ServiceResolver::service(&snapshot, addr), from_naming.service(addr));
            assert_eq!(from_snapshot.service(addr), from_naming.service(addr));
            assert_eq!(ServiceResolver::category(&snapshot, addr), from_naming.category(addr));
            assert_eq!(from_snapshot.category(addr), from_naming.category(addr));
        }
        // The co-spending cluster {1,2} carries the tag; 3 is unnamed.
        assert_eq!(ServiceResolver::service(&snapshot, t.id(2)), Some("Mt. Gox"));
        assert_eq!(ServiceResolver::service(&snapshot, t.id(3)), None);
    }
}

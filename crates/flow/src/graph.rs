//! Columnar (CSR) transaction-graph index — every multi-hop flow question
//! answered from flat arrays.
//!
//! The paper's headline analyses (the Table 2 peeling chains, the §7 theft
//! case studies) are all multi-hop traversals of the transaction graph:
//! "who spends this output, and what does that transaction look like?".
//! Walking a [`ResolvedChain`] answers each hop by chasing per-transaction
//! `Vec`s and hashing `(tx, vout)` pairs into `HashSet`s — fine for one
//! query, wasteful when the same chain is interrogated thousands of times.
//!
//! [`TxGraph`] takes the graph-first formulation instead (the scalable one
//! in Reid & Harrigan's and Fleder et al.'s transaction-graph analyses):
//! one pass over the chain produces a compressed-sparse-row adjacency
//! structure —
//!
//! * `out_start` — per transaction, the range of its outputs within three
//!   flat arrays (`out_address`, `out_value`, `out_spender`). The *flat
//!   output id* `out_start[tx] + vout` names every outpoint with a single
//!   `u32`, so taint frontiers become bitmaps instead of hash sets;
//! * `in_start` / `in_source` — per transaction, the flat output ids its
//!   inputs spend, which makes "how many inputs are tainted?" a handful of
//!   array reads;
//! * per-address `first_seen` / `last_spent` — the liveness interval of
//!   every address, lifted from the resolver's event lists.
//!
//! Construction shards the fill across block-aligned ranges with
//! [`std::thread::scope`], the same way `fistful_core::heuristic1`'s
//! parallel pass shards Heuristic 1. The result is immutable, `Send +
//! Sync`, and shareable via [`Arc`](std::sync::Arc): the batch taint engine
//! ([`track_thefts_batch`](crate::theft::track_thefts_batch)) runs N theft
//! walks concurrently over one graph with per-thread frontiers.
//!
//! # Example: build once, batch-track thefts
//!
//! ```
//! use fistful_core::change::{identify, ChangeConfig};
//! use fistful_core::testutil::TestChain;
//! use fistful_flow::graph::TxGraph;
//! use fistful_flow::theft::track_thefts_batch;
//! use fistful_flow::AddressDirectory;
//!
//! // Two thefts; the first aggregates its loot and peels 30 BTC to an
//! // exchange address, the second's loot never moves.
//! let mut t = TestChain::new();
//! let c1 = t.coinbase(1, 100);
//! let c2 = t.coinbase(2, 100);
//! let _gox = t.coinbase(50, 5); // exchange address, pre-seeded
//! let theft1 = t.tx(&[(c1, 0)], &[(10, 80), (1, 20)]);
//! let theft2 = t.tx(&[(c2, 0)], &[(11, 90), (2, 10)]);
//! let _peel = t.tx(&[(theft1, 0)], &[(50, 30), (12, 50)]);
//!
//! // One pass builds the index; it is reused for every query thereafter.
//! let graph = TxGraph::build(&t.chain);
//! assert_eq!(graph.tx_count(), t.chain.tx_count());
//!
//! let labels = identify(&t.chain, &ChangeConfig::naive());
//! let mut pairs = vec![(None, None); t.chain.address_count()];
//! pairs[t.id(50) as usize] = (Some("Mt. Gox".into()), Some("exchange".into()));
//! let directory = AddressDirectory::from_pairs(pairs);
//!
//! // N thefts, one shared graph, per-thread frontiers.
//! let thefts = vec![vec![(theft1 as u32, 0)], vec![(theft2 as u32, 0)]];
//! let traces = track_thefts_batch(&graph, &thefts, &labels, &directory, 100, 2);
//! assert!(traces[0].reached_exchange());
//! assert_eq!(traces[0].pattern, "P");
//! assert!(!traces[1].reached_exchange());
//! ```

use fistful_chain::amount::Amount;
use fistful_chain::resolve::{AddressId, ResolvedChain, TxId};
use std::collections::VecDeque;
use std::ops::Range;

/// Sentinel flat value for "no transaction" in the spender / event arrays.
const NO_TX: TxId = TxId::MAX;

/// The columnar transaction-graph index. See the [module docs](self) for
/// the layout and the construction strategy.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TxGraph {
    /// Per transaction: first flat output id; length `tx_count + 1`.
    out_start: Vec<u32>,
    /// Per flat output: receiving address.
    out_address: Vec<AddressId>,
    /// Per flat output: value.
    out_value: Vec<Amount>,
    /// Per flat output: spending transaction, or [`NO_TX`] if unspent.
    out_spender: Vec<TxId>,
    /// Per transaction: first input slot; length `tx_count + 1`.
    in_start: Vec<u32>,
    /// Per input slot: the flat output id this input spends.
    in_source: Vec<u32>,
    /// Per address: first transaction it appeared in (input or output).
    first_seen: Vec<TxId>,
    /// Per address: last transaction it spent in, or [`NO_TX`].
    last_spent: Vec<TxId>,
}

impl TxGraph {
    /// Builds the index from a resolved chain, sharding the fill across
    /// all available cores.
    pub fn build(chain: &ResolvedChain) -> TxGraph {
        let threads = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
        TxGraph::build_with_threads(chain, threads)
    }

    /// Builds the index with an explicit worker-thread count.
    ///
    /// One sequential O(txs) pass computes the CSR prefix arrays; the flat
    /// per-output and per-input fills are then sharded over block-aligned
    /// transaction ranges via [`std::thread::scope`] (each worker writes a
    /// disjoint slice, so no synchronization is needed); the per-address
    /// liveness arrays come straight from the resolver's height-sorted
    /// event lists.
    pub fn build_with_threads(chain: &ResolvedChain, threads: usize) -> TxGraph {
        let n_tx = chain.tx_count();
        let n_addr = chain.address_count();

        // Pass 1 (sequential): prefix sums of output/input counts.
        let mut out_start = Vec::with_capacity(n_tx + 1);
        let mut in_start = Vec::with_capacity(n_tx + 1);
        let (mut outs, mut ins) = (0u64, 0u64);
        out_start.push(0u32);
        in_start.push(0u32);
        for tx in &chain.txs {
            outs += tx.outputs.len() as u64;
            ins += tx.inputs.len() as u64;
            assert!(
                outs < u64::from(u32::MAX) && ins < u64::from(u32::MAX),
                "chain exceeds the u32 flat-index space of TxGraph"
            );
            out_start.push(outs as u32);
            in_start.push(ins as u32);
        }

        // Pass 2 (parallel): fill the flat arrays over disjoint tx ranges.
        let mut out_address = vec![0 as AddressId; outs as usize];
        let mut out_value = vec![Amount::ZERO; outs as usize];
        let mut out_spender = vec![NO_TX; outs as usize];
        let mut in_source = vec![0u32; ins as usize];
        {
            let chunks = block_aligned_chunks(chain, threads);
            let mut addr_rest: &mut [AddressId] = &mut out_address;
            let mut val_rest: &mut [Amount] = &mut out_value;
            let mut spend_rest: &mut [TxId] = &mut out_spender;
            let mut src_rest: &mut [u32] = &mut in_source;
            let out_start = &out_start;
            let in_start = &in_start;
            std::thread::scope(|s| {
                for range in chunks {
                    let out_len =
                        (out_start[range.end] - out_start[range.start]) as usize;
                    let in_len = (in_start[range.end] - in_start[range.start]) as usize;
                    let (addr_part, rest) = addr_rest.split_at_mut(out_len);
                    addr_rest = rest;
                    let (val_part, rest) = val_rest.split_at_mut(out_len);
                    val_rest = rest;
                    let (spend_part, rest) = spend_rest.split_at_mut(out_len);
                    spend_rest = rest;
                    let (src_part, rest) = src_rest.split_at_mut(in_len);
                    src_rest = rest;
                    s.spawn(move || {
                        let (mut o, mut i) = (0usize, 0usize);
                        for tx in &chain.txs[range] {
                            for out in &tx.outputs {
                                addr_part[o] = out.address;
                                val_part[o] = out.value;
                                spend_part[o] = out.spent_by.unwrap_or(NO_TX);
                                o += 1;
                            }
                            for input in &tx.inputs {
                                src_part[i] =
                                    out_start[input.prev_tx as usize] + input.prev_vout;
                                i += 1;
                            }
                        }
                    });
                }
            });
        }

        // Per-address liveness, straight from the resolver's accessors.
        let first_seen = (0..n_addr as AddressId).map(|a| chain.first_seen(a)).collect();
        let last_spent = (0..n_addr as AddressId)
            .map(|a| chain.last_spent_in(a).unwrap_or(NO_TX))
            .collect();

        TxGraph {
            out_start,
            out_address,
            out_value,
            out_spender,
            in_start,
            in_source,
            first_seen,
            last_spent,
        }
    }

    /// Builds the index over only the first `tx_end` transactions of
    /// `chain` — the graph the live hot-swap pipeline pairs with a
    /// mid-ingest `ClusterSnapshot::build_at` export
    /// (`fistful_core::snapshot`). Outputs whose spender sits at or past
    /// `tx_end` count as unspent, and the liveness arrays cover only the
    /// addresses the prefix has interned (addresses are interned in
    /// first-appearance order, so the prefix covers a dense id range).
    /// With `tx_end == chain.tx_count()` the result is identical to
    /// [`TxGraph::build`].
    pub fn build_at(chain: &ResolvedChain, tx_end: usize) -> TxGraph {
        assert!(tx_end <= chain.tx_count(), "tx_end exceeds the chain");
        let mut graph = TxGraph {
            out_start: vec![0u32],
            out_address: Vec::new(),
            out_value: Vec::new(),
            out_spender: Vec::new(),
            in_start: vec![0u32],
            in_source: Vec::new(),
            first_seen: Vec::new(),
            last_spent: Vec::new(),
        };
        graph.extend_to(chain, tx_end);
        graph
    }

    /// Grows a prefix graph forward to cover the first `tx_end`
    /// transactions, reusing every already-filled array: new transactions
    /// append their outputs and inputs, previously-unspent outputs now
    /// spent get their `out_spender` patched in place, and the liveness
    /// arrays extend to the prefix's address range. The result is
    /// identical to [`TxGraph::build_at`] from scratch at `tx_end`, which
    /// the differential tests assert — this is the O(new blocks) path the
    /// live ingest thread takes at each epoch publish.
    ///
    /// Panics if `tx_end` exceeds the chain or precedes the graph's
    /// current coverage (graphs only extend forward), or if the graph was
    /// built over a different chain's prefix.
    pub fn extend_to(&mut self, chain: &ResolvedChain, tx_end: usize) {
        assert!(tx_end <= chain.tx_count(), "tx_end exceeds the chain");
        let old_end = self.tx_count();
        assert!(old_end <= tx_end, "graphs only extend forward");
        let tx_end_id = tx_end as TxId;

        // The prefix's address range: ids are dense in first-appearance
        // order, so binary search for the first address born at or past
        // `tx_end`.
        let (mut lo, mut hi) = (self.address_count(), chain.address_count());
        while lo < hi {
            let mid = lo + (hi - lo) / 2;
            if chain.first_seen(mid as AddressId) < tx_end_id {
                lo = mid + 1;
            } else {
                hi = mid;
            }
        }
        let n_addr = lo;
        for a in self.address_count() as AddressId..n_addr as AddressId {
            self.first_seen.push(chain.first_seen(a));
            self.last_spent.push(NO_TX);
        }

        for (off, tx) in chain.txs[old_end..tx_end].iter().enumerate() {
            let t = (old_end + off) as TxId;
            for out in &tx.outputs {
                self.out_address.push(out.address);
                self.out_value.push(out.value);
                // A spender at or past the prefix end is invisible here;
                // a later extend_to patches it in when it arrives.
                self.out_spender.push(match out.spent_by {
                    Some(s) if s < tx_end_id => s,
                    _ => NO_TX,
                });
            }
            for input in &tx.inputs {
                let src = self.out_start[input.prev_tx as usize] + input.prev_vout;
                self.in_source.push(src);
                self.out_spender[src as usize] = t;
                self.last_spent[self.out_address[src as usize] as usize] = t;
            }
            assert!(
                self.out_address.len() < u32::MAX as usize
                    && self.in_source.len() < u32::MAX as usize,
                "chain exceeds the u32 flat-index space of TxGraph"
            );
            self.out_start.push(self.out_address.len() as u32);
            self.in_start.push(self.in_source.len() as u32);
        }
    }

    /// Number of transactions indexed.
    pub fn tx_count(&self) -> usize {
        self.out_start.len() - 1
    }

    /// Number of addresses covered by the liveness arrays.
    pub fn address_count(&self) -> usize {
        self.first_seen.len()
    }

    /// Total number of outputs (the length of the flat output arrays).
    pub fn output_count(&self) -> usize {
        *self.out_start.last().expect("out_start never empty") as usize
    }

    /// Total number of inputs across all transactions.
    pub fn input_count(&self) -> usize {
        *self.in_start.last().expect("in_start never empty") as usize
    }

    /// The flat output ids of transaction `tx`, in vout order.
    pub fn outputs(&self, tx: TxId) -> Range<u32> {
        self.out_start[tx as usize]..self.out_start[tx as usize + 1]
    }

    /// Number of outputs of transaction `tx`.
    pub fn num_outputs(&self, tx: TxId) -> usize {
        self.outputs(tx).len()
    }

    /// Number of inputs of transaction `tx` (zero for coinbases).
    pub fn num_inputs(&self, tx: TxId) -> usize {
        (self.in_start[tx as usize + 1] - self.in_start[tx as usize]) as usize
    }

    /// The flat output ids spent by transaction `tx`'s inputs, in input
    /// order.
    pub fn inputs(&self, tx: TxId) -> &[u32] {
        &self.in_source[self.in_start[tx as usize] as usize..self.in_start[tx as usize + 1] as usize]
    }

    /// The flat output id of outpoint `(tx, vout)`.
    pub fn flat(&self, tx: TxId, vout: u32) -> u32 {
        debug_assert!((vout as usize) < self.num_outputs(tx), "vout out of range");
        self.out_start[tx as usize] + vout
    }

    /// The `(tx, vout)` outpoint of a flat output id (binary search over
    /// the prefix array; the forward mapping [`flat`](Self::flat) is O(1)).
    pub fn outpoint(&self, flat: u32) -> (TxId, u32) {
        let tx = self.out_start.partition_point(|&s| s <= flat) - 1;
        (tx as TxId, flat - self.out_start[tx])
    }

    /// The receiving address of a flat output.
    pub fn address_of(&self, flat: u32) -> AddressId {
        self.out_address[flat as usize]
    }

    /// The value of a flat output.
    pub fn value_of(&self, flat: u32) -> Amount {
        self.out_value[flat as usize]
    }

    /// The transaction spending a flat output, if any.
    pub fn spender_of(&self, flat: u32) -> Option<TxId> {
        match self.out_spender[flat as usize] {
            NO_TX => None,
            t => Some(t),
        }
    }

    /// The transaction spending outpoint `(tx, vout)`, if any — the
    /// columnar equivalent of `ResolvedOutput::spent_by`.
    pub fn spender(&self, tx: TxId, vout: u32) -> Option<TxId> {
        self.spender_of(self.flat(tx, vout))
    }

    /// The first transaction in which `addr` appeared (as input or
    /// output), or `None` for an address id the graph has never seen.
    pub fn first_seen(&self, addr: AddressId) -> Option<TxId> {
        match self.first_seen.get(addr as usize) {
            Some(&t) if t != NO_TX => Some(t),
            _ => None,
        }
    }

    /// The last transaction in which `addr` spent an input, or `None` if
    /// the address never spent (a *sink* in the paper's terminology).
    pub fn last_spent(&self, addr: AddressId) -> Option<TxId> {
        match self.last_spent.get(addr as usize) {
            Some(&t) if t != NO_TX => Some(t),
            _ => None,
        }
    }

    // ----- columnar store format -----

    /// Adds the graph to a columnar container, one segment per CSR array
    /// (`graph/out_start`, `graph/out_address`, …) plus a `graph/meta`
    /// segment of cross-check counts, so [`TxGraph::read_store`] can
    /// reconstruct the graph with bulk reads into pre-sized buffers — no
    /// per-element decode, and no rebuild pass over the chain.
    pub fn write_store(&self, out: &mut fistful_store::StoreWriter) {
        use fistful_chain::encode::Writer;
        let mut meta = Writer::new();
        meta.u64(self.tx_count() as u64);
        meta.u64(self.address_count() as u64);
        meta.u64(self.output_count() as u64);
        meta.u64(self.input_count() as u64);
        out.segment("graph/meta", meta.into_bytes());
        let col = |vs: &[u32]| {
            let mut w = Writer::new();
            w.u32_slice(vs);
            w.into_bytes()
        };
        out.segment("graph/out_start", col(&self.out_start));
        out.segment("graph/out_address", col(&self.out_address));
        let sats: Vec<u64> = self.out_value.iter().map(|a| a.to_sat()).collect();
        let mut w = Writer::new();
        w.u64_slice(&sats);
        out.segment("graph/out_value", w.into_bytes());
        out.segment("graph/out_spender", col(&self.out_spender));
        out.segment("graph/in_start", col(&self.in_start));
        out.segment("graph/in_source", col(&self.in_source));
        out.segment("graph/first_seen", col(&self.first_seen));
        out.segment("graph/last_spent", col(&self.last_spent));
    }

    /// Reads a graph back from a columnar container, validating the CSR
    /// invariants (monotone prefix arrays, cross-referencing flat ids and
    /// transaction ids in range) before exposing any accessor — the
    /// accessors index unchecked, so a corrupt file must fail here.
    pub fn read_store(
        store: &mut fistful_store::Store,
    ) -> Result<TxGraph, fistful_store::StoreError> {
        use fistful_store::StoreError;
        let meta = store.bytes("graph/meta")?;
        let mut r = fistful_chain::encode::Reader::new(&meta);
        let tx_count = r.u64()? as usize;
        let addr_count = r.u64()? as usize;
        let output_count = r.u64()? as usize;
        let input_count = r.u64()? as usize;
        r.finish()?;

        let out_start = store.u32s("graph/out_start")?;
        let out_address = store.u32s("graph/out_address")?;
        let out_value: Vec<Amount> =
            store.u64s("graph/out_value")?.into_iter().map(Amount::from_sat).collect();
        let out_spender = store.u32s("graph/out_spender")?;
        let in_start = store.u32s("graph/in_start")?;
        let in_source = store.u32s("graph/in_source")?;
        let first_seen = store.u32s("graph/first_seen")?;
        let last_spent = store.u32s("graph/last_spent")?;

        let check_prefix = |starts: &[u32], flat_len: usize, what: &'static str| {
            if starts.len() != tx_count + 1 {
                return Err(StoreError::Inconsistent("graph prefix array has wrong length"));
            }
            if starts[0] != 0 || starts.windows(2).any(|w| w[0] > w[1]) {
                return Err(StoreError::Inconsistent(what));
            }
            if *starts.last().expect("non-empty") as usize != flat_len {
                return Err(StoreError::Inconsistent(
                    "graph prefix array disagrees with its flat column",
                ));
            }
            Ok(())
        };
        check_prefix(&out_start, output_count, "graph out_start is not monotone from zero")?;
        check_prefix(&in_start, input_count, "graph in_start is not monotone from zero")?;
        if out_address.len() != output_count
            || out_value.len() != output_count
            || out_spender.len() != output_count
        {
            return Err(StoreError::Inconsistent("graph output columns disagree on length"));
        }
        if in_source.len() != input_count {
            return Err(StoreError::Inconsistent("graph input column disagrees on length"));
        }
        if first_seen.len() != addr_count || last_spent.len() != addr_count {
            return Err(StoreError::Inconsistent("graph liveness columns disagree on length"));
        }
        if in_source.iter().any(|&f| f as usize >= output_count) {
            return Err(StoreError::Inconsistent("graph input references a flat id out of range"));
        }
        if out_address.iter().any(|&a| a as usize >= addr_count) {
            return Err(StoreError::Inconsistent(
                "graph output references an address id out of range",
            ));
        }
        let tx_ok = |&t: &u32| t == NO_TX || (t as usize) < tx_count;
        if !out_spender.iter().all(tx_ok)
            || !first_seen.iter().all(tx_ok)
            || !last_spent.iter().all(tx_ok)
        {
            return Err(StoreError::Inconsistent(
                "graph references a transaction id out of range",
            ));
        }
        Ok(TxGraph {
            out_start,
            out_address,
            out_value,
            out_spender,
            in_start,
            in_source,
            first_seen,
            last_spent,
        })
    }
}

/// Partitions `0..tx_count` into at most `threads` contiguous ranges cut
/// on block boundaries, each covering roughly equal transaction counts.
fn block_aligned_chunks(chain: &ResolvedChain, threads: usize) -> Vec<Range<usize>> {
    let n_tx = chain.tx_count();
    if n_tx == 0 {
        return Vec::new();
    }
    let target = n_tx.div_ceil(threads.max(1)).max(1);
    let mut chunks = Vec::new();
    let mut start = 0usize;
    for block in chain.blocks() {
        let end = block.tx_end() as usize;
        if end - start >= target {
            chunks.push(start..end);
            start = end;
        }
    }
    if start < n_tx {
        chunks.push(start..n_tx);
    }
    chunks
}

/// An open-addressed set of `u32` keys with multiplicative (Fibonacci)
/// hashing — the taint frontier's working set.
///
/// Taint walks touch a few hundred outputs of a multi-million-output
/// graph, so the frontier must cost O(walk), not O(chain): a bitmap over
/// all flat ids would spend more time being allocated and zeroed than the
/// walk itself, and the standard library's `HashSet` pays SipHash on every
/// probe. This table hashes with one multiply, probes linearly, keeps a
/// power-of-two capacity, and clears in O(capacity) — where capacity is
/// proportional to the largest walk this scratch has seen, not to the
/// chain.
///
/// Keys must be below `u32::MAX` (the empty-slot sentinel); the graph
/// builder guarantees that for flat output ids and transaction ids alike.
#[derive(Debug, Clone)]
pub(crate) struct FlatSet {
    /// Power-of-two table of keys; `EMPTY` marks free slots.
    table: Vec<u32>,
    /// Number of keys present.
    len: usize,
}

/// Free-slot marker.
const EMPTY: u32 = u32::MAX;

impl FlatSet {
    /// A set with room for a small walk; grows on demand.
    pub(crate) fn new() -> FlatSet {
        FlatSet { table: vec![EMPTY; 64], len: 0 }
    }

    #[inline]
    fn slot(&self, key: u32) -> usize {
        // Fibonacci hashing: multiply by 2^32/φ and keep the HIGH bits —
        // the low bits of the product are just `key % len` (the odd
        // multiplier is invertible mod 2^32), which would cluster strided
        // keys into one probe chain. The table length is a power of two,
        // so the shift yields an in-range index.
        let h = key.wrapping_mul(0x9E37_79B9);
        (h >> (32 - self.table.len().trailing_zeros())) as usize
    }

    /// True if `key` is present.
    #[inline]
    pub(crate) fn contains(&self, key: u32) -> bool {
        let mut i = self.slot(key);
        loop {
            match self.table[i] {
                EMPTY => return false,
                k if k == key => return true,
                _ => i = (i + 1) & (self.table.len() - 1),
            }
        }
    }

    /// Inserts `key`; returns true if it was newly added.
    #[inline]
    pub(crate) fn insert(&mut self, key: u32) -> bool {
        debug_assert!(key != EMPTY, "u32::MAX is the empty sentinel");
        if self.len * 4 >= self.table.len() * 3 {
            self.grow();
        }
        let mut i = self.slot(key);
        loop {
            match self.table[i] {
                EMPTY => {
                    self.table[i] = key;
                    self.len += 1;
                    return true;
                }
                k if k == key => return false,
                _ => i = (i + 1) & (self.table.len() - 1),
            }
        }
    }

    /// Removes every key, keeping the capacity for the next walk.
    pub(crate) fn clear(&mut self) {
        if self.len > 0 {
            self.table.fill(EMPTY);
            self.len = 0;
        }
    }

    fn grow(&mut self) {
        let old = std::mem::replace(&mut self.table, vec![EMPTY; 0]);
        self.table = vec![EMPTY; old.len() * 2];
        self.len = 0;
        for key in old {
            if key != EMPTY {
                self.insert(key);
            }
        }
    }
}

/// Reusable per-thread walk state for taint traversals over a [`TxGraph`]:
/// the tainted-output and visited-transaction sets (sparse
/// open-addressed tables over flat ids — O(walk) memory regardless of
/// chain size) plus the FIFO work queue.
///
/// One scratch per worker thread is the memory model of the batch engine
/// ([`track_thefts_batch`](crate::theft::track_thefts_batch)): the tables
/// are allocated once per thread and reused across every theft that worker
/// picks up, so steady-state walks allocate nothing beyond their own
/// result records.
#[derive(Debug, Clone)]
pub struct TaintScratch {
    /// Tainted flat output ids.
    pub(crate) tainted: FlatSet,
    /// Visited transaction ids.
    pub(crate) visited: FlatSet,
    /// FIFO frontier of tainted flat output ids.
    pub(crate) queue: VecDeque<u32>,
}

impl TaintScratch {
    /// Allocates an empty scratch for walks over `graph`. The parameter
    /// only anchors the scratch to a graph conceptually — state is sized
    /// by the walks, not the chain, and grows on demand.
    pub fn for_graph(_graph: &TxGraph) -> TaintScratch {
        TaintScratch {
            tainted: FlatSet::new(),
            visited: FlatSet::new(),
            queue: VecDeque::new(),
        }
    }

    /// Clears all walk state, keeping capacity for the next walk.
    pub fn reset(&mut self) {
        self.tainted.clear();
        self.visited.clear();
        self.queue.clear();
    }

    /// Marks a flat output tainted; returns whether it was newly tainted.
    #[inline]
    pub(crate) fn taint(&mut self, flat: u32) -> bool {
        self.tainted.insert(flat)
    }

    /// Marks a transaction visited; returns whether it was newly visited.
    #[inline]
    pub(crate) fn visit(&mut self, tx: TxId) -> bool {
        self.visited.insert(tx)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fistful_core::testutil::TestChain;

    /// A small chain exercising multi-block, multi-output shapes.
    fn sample() -> TestChain {
        let mut t = TestChain::new();
        let c1 = t.coinbase(1, 100);
        let c2 = t.coinbase(2, 50);
        let a = t.tx(&[(c1, 0)], &[(3, 60), (1, 40)]);
        let _b = t.tx(&[(a, 0), (c2, 0)], &[(4, 50), (5, 30), (6, 30)]);
        t
    }

    #[test]
    fn csr_shape_matches_chain() {
        let t = sample();
        for threads in [1, 2, 4] {
            let g = TxGraph::build_with_threads(&t.chain, threads);
            assert_eq!(g.tx_count(), t.chain.tx_count());
            assert_eq!(g.address_count(), t.chain.address_count());
            assert_eq!(g.output_count(), t.chain.total_output_count());
            assert_eq!(g.input_count(), t.chain.total_input_count());
            for (tx_id, tx) in t.chain.txs.iter().enumerate() {
                let tx_id = tx_id as TxId;
                assert_eq!(g.num_outputs(tx_id), tx.outputs.len());
                assert_eq!(g.num_inputs(tx_id), tx.inputs.len());
                for (v, o) in tx.outputs.iter().enumerate() {
                    let flat = g.flat(tx_id, v as u32);
                    assert_eq!(g.address_of(flat), o.address);
                    assert_eq!(g.value_of(flat), o.value);
                    assert_eq!(g.spender_of(flat), o.spent_by);
                    assert_eq!(g.spender(tx_id, v as u32), o.spent_by);
                    assert_eq!(g.outpoint(flat), (tx_id, v as u32));
                }
                for (slot, input) in tx.inputs.iter().enumerate() {
                    assert_eq!(
                        g.inputs(tx_id)[slot],
                        g.flat(input.prev_tx, input.prev_vout)
                    );
                }
            }
        }
    }

    #[test]
    fn liveness_matches_resolver() {
        let t = sample();
        let g = TxGraph::build_with_threads(&t.chain, 2);
        for a in 0..t.chain.address_count() as AddressId {
            assert_eq!(g.first_seen(a), Some(t.chain.first_seen(a)));
            assert_eq!(g.last_spent(a), t.chain.last_spent_in(a));
        }
        // Out-of-range ids resolve to None, not a panic.
        assert_eq!(g.first_seen(u32::MAX), None);
        assert_eq!(g.last_spent(u32::MAX), None);
        // Address 1 spent in the first non-coinbase tx; address 4 never.
        assert_eq!(g.last_spent(t.id(1)), Some(2));
        assert_eq!(g.last_spent(t.id(4)), None);
    }

    #[test]
    fn store_round_trips_losslessly() {
        let t = sample();
        let g = TxGraph::build_with_threads(&t.chain, 2);
        let mut w = fistful_store::StoreWriter::new();
        g.write_store(&mut w);
        let mut store = fistful_store::Store::open_bytes(w.to_bytes()).unwrap();
        let restored = TxGraph::read_store(&mut store).unwrap();
        assert_eq!(restored, g);
        // And the empty graph.
        let g = TxGraph::build(&TestChain::new().chain);
        let mut w = fistful_store::StoreWriter::new();
        g.write_store(&mut w);
        let mut store = fistful_store::Store::open_bytes(w.to_bytes()).unwrap();
        assert_eq!(TxGraph::read_store(&mut store).unwrap(), g);
    }

    #[test]
    fn store_read_rejects_semantic_corruption() {
        let t = sample();
        let g = TxGraph::build_with_threads(&t.chain, 2);
        // Re-encode the container with one column replaced, for each
        // corruption that must be caught by the semantic validator (the
        // container layer cannot see it: checksums are recomputed).
        type Corruption = (&'static str, Box<dyn Fn(&mut TxGraph)>);
        let cases: Vec<Corruption> = vec![
            ("non-monotone out_start", Box::new(|g| g.out_start[1] = u32::MAX)),
            ("prefix/flat disagreement", Box::new(|g| *g.out_start.last_mut().unwrap() += 1)),
            ("in_source out of range", Box::new(|g| g.in_source[0] = u32::MAX - 1)),
            ("out_address out of range", Box::new(|g| g.out_address[0] = u32::MAX - 1)),
            ("out_spender out of range", Box::new(|g| g.out_spender[0] = 1 << 20)),
            ("short liveness", Box::new(|g| { g.first_seen.pop(); })),
            ("wrong prefix length", Box::new(|g| { g.out_start.pop(); })),
        ];
        for (what, corrupt) in cases {
            let mut bad = g.clone();
            corrupt(&mut bad);
            let mut w = fistful_store::StoreWriter::new();
            bad.write_store(&mut w);
            let mut store = fistful_store::Store::open_bytes(w.to_bytes()).unwrap();
            assert!(
                matches!(
                    TxGraph::read_store(&mut store),
                    Err(fistful_store::StoreError::Inconsistent(_))
                ),
                "corruption not caught: {what}"
            );
        }
    }

    #[test]
    fn build_at_full_prefix_equals_build() {
        let t = sample();
        let g = TxGraph::build(&t.chain);
        assert_eq!(TxGraph::build_at(&t.chain, t.chain.tx_count()), g);
    }

    #[test]
    fn build_at_prefix_clamps_future_spends() {
        let t = sample();
        // Prefix of 3 txs: the final co-spend (tx 3) is invisible, so the
        // outputs it spends (a's output 0 and c2's) must read unspent.
        let g = TxGraph::build_at(&t.chain, 3);
        assert_eq!(g.tx_count(), 3);
        assert_eq!(g.spender(2, 0), None);
        assert_eq!(g.spender(1, 0), None);
        // Within the prefix the spend of c1 by tx 2 is still visible.
        assert_eq!(g.spender(0, 0), Some(2));
        // Liveness stops at the prefix: address 2 only spends in tx 3.
        assert_eq!(g.last_spent(t.id(2)), None);
        assert_eq!(g.last_spent(t.id(1)), Some(2));
        // Addresses born by tx 3 (4, 5, 6) are not covered.
        assert!(g.address_count() < t.chain.address_count());
        assert_eq!(g.first_seen(t.id(4)), None);
    }

    #[test]
    fn extend_to_matches_build_at_at_every_cut() {
        let t = sample();
        let n = t.chain.tx_count();
        for start in 0..=n {
            let mut g = TxGraph::build_at(&t.chain, start);
            for end in start..=n {
                let mut step = g.clone();
                step.extend_to(&t.chain, end);
                assert_eq!(step, TxGraph::build_at(&t.chain, end), "{start}->{end}");
            }
            // And growing one cut at a time lands on the same arrays.
            for end in start..=n {
                g.extend_to(&t.chain, end);
            }
            assert_eq!(g, TxGraph::build(&t.chain), "{start}->full");
        }
    }

    #[test]
    fn empty_chain_builds() {
        let t = TestChain::new();
        let g = TxGraph::build(&t.chain);
        assert_eq!(g.tx_count(), 0);
        assert_eq!(g.output_count(), 0);
        assert_eq!(g.input_count(), 0);
        assert_eq!(g.address_count(), 0);
    }

    #[test]
    fn chunks_cover_and_align() {
        let t = sample();
        for threads in [1, 2, 3, 8] {
            let chunks = block_aligned_chunks(&t.chain, threads);
            // Chunks partition 0..tx_count without gaps or overlaps.
            let mut next = 0usize;
            for c in &chunks {
                assert_eq!(c.start, next);
                assert!(c.end > c.start);
                next = c.end;
            }
            assert_eq!(next, t.chain.tx_count());
            // Every boundary except the last is a block boundary.
            let starts: Vec<usize> =
                t.chain.blocks().map(|b| b.tx_start() as usize).collect();
            for c in chunks.iter().take(chunks.len().saturating_sub(1)) {
                assert!(starts.contains(&c.end) || c.end == t.chain.tx_count());
            }
        }
        assert!(block_aligned_chunks(&TestChain::new().chain, 4).is_empty());
    }

    #[test]
    fn scratch_reset_is_complete() {
        let t = sample();
        let g = TxGraph::build(&t.chain);
        let mut s = TaintScratch::for_graph(&g);
        assert!(s.taint(0));
        assert!(!s.taint(0), "double taint reports false");
        assert!(s.visit(1));
        assert!(!s.visit(1), "double visit reports false");
        s.queue.push_back(0);
        s.reset();
        assert!(!s.tainted.contains(0));
        assert!(!s.visited.contains(1));
        assert!(s.queue.is_empty());
        // Reset state behaves like new: the same walk replays identically.
        assert!(s.taint(0) && s.visit(1));
    }

    /// The frontier set must behave exactly like a `HashSet<u32>` through
    /// growth, duplicate inserts, collisions and clears.
    #[test]
    fn flat_set_matches_std_hashset() {
        let mut ours = FlatSet::new();
        let mut std_set = std::collections::HashSet::new();
        // A mix of clustered and scattered keys, far beyond the initial
        // capacity so the table grows several times; many collide modulo
        // small powers of two.
        let keys: Vec<u32> = (0..2_000u32)
            .map(|i| i.wrapping_mul(64).wrapping_add(i % 3))
            .chain((0..500).map(|i| i * 7919))
            .collect();
        for &k in &keys {
            assert_eq!(ours.insert(k), std_set.insert(k), "insert {k}");
        }
        for k in 0..200_000u32 {
            assert_eq!(ours.contains(k), std_set.contains(&k), "contains {k}");
        }
        ours.clear();
        assert!(!ours.contains(keys[0]));
        assert!(ours.insert(keys[0]), "insert after clear");
    }
}

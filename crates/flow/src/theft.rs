//! End-to-end theft tracking: Table 3 of the paper.
//!
//! For each theft, the paper reports how much was stolen, how the money
//! moved (A/P/S/F), and whether any of it reached a known exchange. This
//! module derives all three from the chain, the loot outputs, and an
//! address directory.

use crate::categories::ServiceResolver;
use crate::movement::{classify_movements, pattern_string, TaintedTx};
use fistful_chain::amount::Amount;
use fistful_chain::resolve::{ResolvedChain, TxId};
use fistful_core::change::ChangeLabels;

/// The derived trace of one theft.
#[derive(Debug, Clone)]
pub struct TheftTrace {
    /// Transactions the walk visited, classified.
    pub movements: Vec<TaintedTx>,
    /// The paper-style pattern string, e.g. "A/P/S".
    pub pattern: String,
    /// Total value that departed to exchange-category addresses.
    pub to_exchanges: Amount,
    /// Number of distinct exchange services reached.
    pub exchanges_reached: usize,
    /// Value still sitting unspent in the loot outputs themselves
    /// (never moved — the trojan case).
    pub dormant: Amount,
}

impl TheftTrace {
    /// Whether any loot reached an exchange (Table 3's last column).
    pub fn reached_exchange(&self) -> bool {
        self.exchanges_reached > 0
    }
}

/// Tracks a theft from its loot outputs (`(tx, vout)` pairs).
///
/// `directory` is any [`ServiceResolver`] — a live
/// [`AddressDirectory`](crate::categories::AddressDirectory) or a frozen
/// [`ClusterSnapshot`](fistful_core::snapshot::ClusterSnapshot).
pub fn track_theft(
    chain: &ResolvedChain,
    loot: &[(TxId, u32)],
    labels: &ChangeLabels,
    directory: &impl ServiceResolver,
    max_txs: usize,
) -> TheftTrace {
    let movements = classify_movements(chain, loot, labels, max_txs);
    let pattern = pattern_string(&movements);

    // Exchange arrivals: departures landing on exchange-category addresses.
    let mut to_exchanges = Amount::ZERO;
    let mut exchange_services = std::collections::HashSet::new();
    for m in &movements {
        for &(addr, value) in &m.departures {
            if directory.category(addr) == Some("exchange") {
                to_exchanges = to_exchanges.checked_add(value).expect("overflow");
                if let Some(s) = directory.service(addr) {
                    exchange_services.insert(s.to_string());
                }
            }
        }
    }

    // Dormant loot: loot outputs never spent.
    let mut dormant = Amount::ZERO;
    for &(t, v) in loot {
        let out = &chain.txs[t as usize].outputs[v as usize];
        if out.spent_by.is_none() {
            dormant = dormant.checked_add(out.value).expect("overflow");
        }
    }

    TheftTrace {
        movements,
        pattern,
        to_exchanges,
        exchanges_reached: exchange_services.len(),
        dormant,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::categories::AddressDirectory;
    use fistful_core::change::{identify, ChangeConfig};
    use fistful_core::testutil::TestChain;

    /// Builds: two thefts → folding aggregation (one clean input) → a peel
    /// to an exchange address (when `with_peel`).
    fn theft_chain(with_peel: bool) -> (TestChain, (u32, u32), (u32, u32)) {
        let mut t = TestChain::new();
        let c1 = t.coinbase(1, 100);
        let c2 = t.coinbase(2, 100);
        let c3 = t.coinbase(3, 100); // thief's clean side funds
        let _gox = t.coinbase(50, 5); // exchange address, pre-seeded
        let theft = t.tx(&[(c1, 0)], &[(10, 80), (1, 20)]);
        let theft2 = t.tx(&[(c2, 0)], &[(11, 90), (2, 10)]);
        // Fold: both loots plus the clean funds.
        let agg = t.tx(&[(theft, 0), (theft2, 0), (c3, 0)], &[(12, 270)]);
        if with_peel {
            let _peel = t.tx(&[(agg, 0)], &[(50, 30), (13, 240)]);
        }
        (t, (theft as u32, 0), (theft2 as u32, 0))
    }

    fn exchange_dir(t: &TestChain) -> AddressDirectory {
        let n = t.chain.address_count();
        let mut pairs = vec![(None, None); n];
        pairs[t.id(50) as usize] = (Some("Mt. Gox".into()), Some("exchange".into()));
        AddressDirectory::from_pairs(pairs)
    }

    #[test]
    fn traces_theft_to_exchange() {
        let (t, a, b) = theft_chain(true);
        let dir = exchange_dir(&t);
        let labels = identify(&t.chain, &ChangeConfig::naive());
        let trace = track_theft(&t.chain, &[a, b], &labels, &dir, 100);
        assert!(trace.reached_exchange());
        assert_eq!(trace.to_exchanges, Amount::from_btc(30));
        assert_eq!(trace.exchanges_reached, 1);
        assert_eq!(trace.pattern, "F/P");
    }

    #[test]
    fn no_exchange_without_peel() {
        let (t, a, b) = theft_chain(false);
        let dir = exchange_dir(&t);
        let labels = identify(&t.chain, &ChangeConfig::naive());
        let trace = track_theft(&t.chain, &[a, b], &labels, &dir, 100);
        assert!(!trace.reached_exchange());
        assert_eq!(trace.to_exchanges, Amount::ZERO);
        assert_eq!(trace.pattern, "F");
    }

    #[test]
    fn dormant_loot_counted() {
        let mut t = TestChain::new();
        let c1 = t.coinbase(1, 100);
        let theft = t.tx(&[(c1, 0)], &[(10, 80), (1, 20)]);
        // Nothing moves.
        let dir = AddressDirectory::from_pairs(vec![(None, None); t.chain.address_count()]);
        let labels = identify(&t.chain, &ChangeConfig::naive());
        let trace = track_theft(&t.chain, &[(theft as u32, 0)], &labels, &dir, 100);
        assert_eq!(trace.movements.len(), 0);
        assert_eq!(trace.pattern, "");
        // Only the loot output (80) counts as dormant; the victim's change
        // is theirs.
        assert_eq!(trace.dormant, Amount::from_btc(80));
        assert!(!trace.reached_exchange());
    }
}

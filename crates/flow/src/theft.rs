//! End-to-end theft tracking: Table 3 of the paper.
//!
//! For each theft, the paper reports how much was stolen, how the money
//! moved (A/P/S/F), and whether any of it reached a known exchange. This
//! module derives all three from the chain, the loot outputs, and an
//! address directory.

use crate::categories::ServiceResolver;
use crate::graph::{TaintScratch, TxGraph};
use crate::movement::{
    classify_movements, classify_movements_with_scratch, pattern_string, TaintedTx,
};
use fistful_chain::amount::Amount;
use fistful_chain::resolve::{ResolvedChain, TxId};
use fistful_core::change::ChangeLabels;

/// The derived trace of one theft.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TheftTrace {
    /// Transactions the walk visited, classified.
    pub movements: Vec<TaintedTx>,
    /// The paper-style pattern string, e.g. "A/P/S".
    pub pattern: String,
    /// Total value that departed to exchange-category addresses.
    pub to_exchanges: Amount,
    /// Number of distinct exchange services reached.
    pub exchanges_reached: usize,
    /// Value still sitting unspent in the loot outputs themselves
    /// (never moved — the trojan case).
    pub dormant: Amount,
}

impl TheftTrace {
    /// Whether any loot reached an exchange (Table 3's last column).
    pub fn reached_exchange(&self) -> bool {
        self.exchanges_reached > 0
    }
}

/// Tracks a theft from its loot outputs (`(tx, vout)` pairs).
///
/// `directory` is any [`ServiceResolver`] — a live
/// [`AddressDirectory`](crate::categories::AddressDirectory) or a frozen
/// [`ClusterSnapshot`](fistful_core::snapshot::ClusterSnapshot).
pub fn track_theft(
    chain: &ResolvedChain,
    loot: &[(TxId, u32)],
    labels: &ChangeLabels,
    directory: &impl ServiceResolver,
    max_txs: usize,
) -> TheftTrace {
    let movements = classify_movements(chain, loot, labels, max_txs);
    let mut dormant = Amount::ZERO;
    for &(t, v) in loot {
        let out = &chain.txs[t as usize].outputs[v as usize];
        if out.spent_by.is_none() {
            dormant = dormant.checked_add(out.value).expect("overflow");
        }
    }
    summarize(movements, dormant, directory)
}

/// [`track_theft`] over the columnar [`TxGraph`] index: identical trace
/// (movements, pattern, exchange arrivals, dormant loot — proven by the
/// differential tests), with the walk running on flat arrays and the
/// caller-supplied reusable [`TaintScratch`].
pub fn track_theft_indexed(
    graph: &TxGraph,
    loot: &[(TxId, u32)],
    labels: &ChangeLabels,
    directory: &impl ServiceResolver,
    max_txs: usize,
    scratch: &mut TaintScratch,
) -> TheftTrace {
    let movements = classify_movements_with_scratch(graph, loot, labels, max_txs, scratch);
    let mut dormant = Amount::ZERO;
    for &(t, v) in loot {
        let flat = graph.flat(t, v);
        if graph.spender_of(flat).is_none() {
            dormant = dormant.checked_add(graph.value_of(flat)).expect("overflow");
        }
    }
    summarize(movements, dormant, directory)
}

/// The batch multi-source taint engine: tracks `thefts.len()` independent
/// thefts concurrently over one shared graph.
///
/// Workers are spawned with [`std::thread::scope`]; each owns one
/// [`TaintScratch`] (allocated once, reset per theft) and pulls theft
/// indices from a shared atomic counter, so an expensive case does not
/// stall the rest of the batch. Results land in input order. With
/// `threads <= 1` this degrades to a sequential loop that still reuses a
/// single scratch — the right mode on one core, and still well ahead of
/// per-theft legacy re-walks (see `bench_graph`).
///
/// The graph, labels, and directory are shared immutably across workers —
/// wrap the graph in an [`Arc`](std::sync::Arc) if the caller also needs
/// it on `'static` threads elsewhere.
pub fn track_thefts_batch(
    graph: &TxGraph,
    thefts: &[Vec<(TxId, u32)>],
    labels: &ChangeLabels,
    directory: &(impl ServiceResolver + Sync),
    max_txs: usize,
    threads: usize,
) -> Vec<TheftTrace> {
    let workers = threads.max(1).min(thefts.len().max(1));
    if workers <= 1 {
        let mut scratch = TaintScratch::for_graph(graph);
        return thefts
            .iter()
            .map(|loot| track_theft_indexed(graph, loot, labels, directory, max_txs, &mut scratch))
            .collect();
    }

    let next = std::sync::atomic::AtomicUsize::new(0);
    let mut done: Vec<(usize, TheftTrace)> = std::thread::scope(|s| {
        let handles: Vec<_> = (0..workers)
            .map(|_| {
                let next = &next;
                s.spawn(move || {
                    let mut scratch = TaintScratch::for_graph(graph);
                    let mut produced = Vec::new();
                    loop {
                        let i = next.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                        let Some(loot) = thefts.get(i) else { break };
                        let trace = track_theft_indexed(
                            graph, loot, labels, directory, max_txs, &mut scratch,
                        );
                        produced.push((i, trace));
                    }
                    produced
                })
            })
            .collect();
        handles
            .into_iter()
            .flat_map(|h| h.join().expect("taint worker panicked"))
            .collect()
    });
    done.sort_by_key(|&(i, _)| i);
    debug_assert_eq!(done.len(), thefts.len());
    done.into_iter().map(|(_, trace)| trace).collect()
}

/// Folds a movement list plus the dormant total into a [`TheftTrace`] —
/// the one copy of the exchange-arrival accounting, shared by the legacy
/// and indexed paths.
fn summarize(
    movements: Vec<TaintedTx>,
    dormant: Amount,
    directory: &impl ServiceResolver,
) -> TheftTrace {
    let pattern = pattern_string(&movements);

    // Exchange arrivals: departures landing on exchange-category addresses.
    let mut to_exchanges = Amount::ZERO;
    let mut exchange_services = std::collections::HashSet::new();
    for m in &movements {
        for &(addr, value) in &m.departures {
            if directory.category(addr) == Some("exchange") {
                to_exchanges = to_exchanges.checked_add(value).expect("overflow");
                if let Some(s) = directory.service(addr) {
                    exchange_services.insert(s.to_string());
                }
            }
        }
    }

    TheftTrace {
        movements,
        pattern,
        to_exchanges,
        exchanges_reached: exchange_services.len(),
        dormant,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::categories::AddressDirectory;
    use fistful_core::change::{identify, ChangeConfig};
    use fistful_core::testutil::TestChain;

    /// Builds: two thefts → folding aggregation (one clean input) → a peel
    /// to an exchange address (when `with_peel`).
    fn theft_chain(with_peel: bool) -> (TestChain, (u32, u32), (u32, u32)) {
        let mut t = TestChain::new();
        let c1 = t.coinbase(1, 100);
        let c2 = t.coinbase(2, 100);
        let c3 = t.coinbase(3, 100); // thief's clean side funds
        let _gox = t.coinbase(50, 5); // exchange address, pre-seeded
        let theft = t.tx(&[(c1, 0)], &[(10, 80), (1, 20)]);
        let theft2 = t.tx(&[(c2, 0)], &[(11, 90), (2, 10)]);
        // Fold: both loots plus the clean funds.
        let agg = t.tx(&[(theft, 0), (theft2, 0), (c3, 0)], &[(12, 270)]);
        if with_peel {
            let _peel = t.tx(&[(agg, 0)], &[(50, 30), (13, 240)]);
        }
        (t, (theft as u32, 0), (theft2 as u32, 0))
    }

    fn exchange_dir(t: &TestChain) -> AddressDirectory {
        let n = t.chain.address_count();
        let mut pairs = vec![(None, None); n];
        pairs[t.id(50) as usize] = (Some("Mt. Gox".into()), Some("exchange".into()));
        AddressDirectory::from_pairs(pairs)
    }

    #[test]
    fn traces_theft_to_exchange() {
        let (t, a, b) = theft_chain(true);
        let dir = exchange_dir(&t);
        let labels = identify(&t.chain, &ChangeConfig::naive());
        let trace = track_theft(&t.chain, &[a, b], &labels, &dir, 100);
        assert!(trace.reached_exchange());
        assert_eq!(trace.to_exchanges, Amount::from_btc(30));
        assert_eq!(trace.exchanges_reached, 1);
        assert_eq!(trace.pattern, "F/P");
    }

    #[test]
    fn no_exchange_without_peel() {
        let (t, a, b) = theft_chain(false);
        let dir = exchange_dir(&t);
        let labels = identify(&t.chain, &ChangeConfig::naive());
        let trace = track_theft(&t.chain, &[a, b], &labels, &dir, 100);
        assert!(!trace.reached_exchange());
        assert_eq!(trace.to_exchanges, Amount::ZERO);
        assert_eq!(trace.pattern, "F");
    }

    #[test]
    fn indexed_and_batch_match_legacy() {
        let (t, a, b) = theft_chain(true);
        let dir = exchange_dir(&t);
        let labels = identify(&t.chain, &ChangeConfig::naive());
        let graph = TxGraph::build_with_threads(&t.chain, 2);

        let legacy = track_theft(&t.chain, &[a, b], &labels, &dir, 100);
        let mut scratch = TaintScratch::for_graph(&graph);
        let indexed = track_theft_indexed(&graph, &[a, b], &labels, &dir, 100, &mut scratch);
        assert_eq!(legacy, indexed);

        // The batch engine agrees case-for-case at every thread count,
        // including more workers than thefts.
        let thefts = vec![vec![a, b], vec![a], vec![b]];
        let expected: Vec<TheftTrace> = thefts
            .iter()
            .map(|loot| track_theft(&t.chain, loot, &labels, &dir, 100))
            .collect();
        for threads in [1, 2, 4, 8] {
            let batch = track_thefts_batch(&graph, &thefts, &labels, &dir, 100, threads);
            assert_eq!(batch, expected, "threads {threads}");
        }
    }

    #[test]
    fn batch_handles_empty_input() {
        let (t, ..) = theft_chain(false);
        let dir = exchange_dir(&t);
        let labels = identify(&t.chain, &ChangeConfig::naive());
        let graph = TxGraph::build(&t.chain);
        assert!(track_thefts_batch(&graph, &[], &labels, &dir, 100, 4).is_empty());
    }

    #[test]
    fn dormant_loot_counted() {
        let mut t = TestChain::new();
        let c1 = t.coinbase(1, 100);
        let theft = t.tx(&[(c1, 0)], &[(10, 80), (1, 20)]);
        // Nothing moves.
        let dir = AddressDirectory::from_pairs(vec![(None, None); t.chain.address_count()]);
        let labels = identify(&t.chain, &ChangeConfig::naive());
        let trace = track_theft(&t.chain, &[(theft as u32, 0)], &labels, &dir, 100);
        assert_eq!(trace.movements.len(), 0);
        assert_eq!(trace.pattern, "");
        // Only the loot output (80) counts as dormant; the victim's change
        // is theirs.
        assert_eq!(trace.dormant, Amount::from_btc(80));
        assert!(!trace.reached_exchange());
    }
}

//! Movement classification for stolen funds (Table 3's A/P/S/F notation).
//!
//! The paper manually classified how loot moved after each theft:
//! *aggregations* (many addresses into one), *peeling chains*, *splits*
//! (one amount over several addresses), and *folding* (aggregations mixing
//! in coins not clearly associated with the theft). This module re-derives
//! the classification automatically by walking forward from the loot
//! outputs.
//!
//! Taint propagation follows the *thief-controlled* side of each
//! transaction, as the paper's manual analysis did: through every output
//! of aggregations and splits (the thief shuffling their own coins), but
//! only through the change side of a peeling hop — the peel itself has
//! left the thief's control and is recorded as a recipient, not followed.

use crate::graph::{TaintScratch, TxGraph};
use fistful_chain::amount::Amount;
use fistful_chain::resolve::{AddressId, ResolvedChain, TxId};
use fistful_core::change::ChangeLabels;
use std::collections::{HashSet, VecDeque};

/// One movement kind, as in Table 3.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MovementKind {
    /// Aggregation: several tainted inputs into one or two outputs.
    Aggregation,
    /// Peeling chain: a run of small-fan-out hops spending prior change.
    Peel,
    /// Split: one or two inputs fanned out over ≥3 outputs.
    Split,
    /// Folding: an aggregation whose inputs are not all tainted.
    Fold,
    /// Anything else (simple transfers).
    Transfer,
}

impl MovementKind {
    /// The paper's single-letter notation.
    pub fn letter(self) -> &'static str {
        match self {
            MovementKind::Aggregation => "A",
            MovementKind::Peel => "P",
            MovementKind::Split => "S",
            MovementKind::Fold => "F",
            MovementKind::Transfer => "T",
        }
    }
}

/// The taint walk's per-transaction record.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TaintedTx {
    /// The transaction.
    pub tx: TxId,
    /// Classification.
    pub kind: MovementKind,
    /// Number of tainted inputs.
    pub tainted_inputs: usize,
    /// Total inputs.
    pub total_inputs: usize,
    /// Value that left the thief's control at this hop
    /// (peel outputs), as `(address, value)`.
    pub departures: Vec<(AddressId, Amount)>,
}

/// Classifies a transaction shape from its input/output counts — the one
/// copy of the A/P/S/F decision table, shared by the legacy
/// [`classify_tx`] and the graph-indexed walk so the two paths cannot
/// drift.
pub fn classify_counts(ins: usize, outs: usize, tainted_inputs: usize) -> MovementKind {
    if ins >= 3 && outs <= 2 {
        if tainted_inputs < ins {
            MovementKind::Fold
        } else {
            MovementKind::Aggregation
        }
    } else if ins <= 2 && outs >= 3 {
        MovementKind::Split
    } else if ins == 1 && outs == 2 {
        MovementKind::Peel
    } else {
        MovementKind::Transfer
    }
}

/// Classifies a single transaction given which of its inputs are tainted.
pub fn classify_tx(chain: &ResolvedChain, tx: TxId, tainted_inputs: usize) -> MovementKind {
    let t = &chain.txs[tx as usize];
    classify_counts(t.inputs.len(), t.outputs.len(), tainted_inputs)
}

/// Walks forward from specific loot outputs (`(tx, vout)` pairs) for up to
/// `max_txs` transactions, classifying each and recording departures.
///
/// `labels` (Heuristic 2) picks the change side at peeling hops; when a hop
/// is unlabelled, the largest output is followed (the remainder).
pub fn classify_movements(
    chain: &ResolvedChain,
    loot: &[(TxId, u32)],
    labels: &ChangeLabels,
    max_txs: usize,
) -> Vec<TaintedTx> {
    // Tainted outpoints, as (tx, vout).
    let mut tainted: HashSet<(TxId, u32)> = loot.iter().copied().collect();
    let mut queue: VecDeque<(TxId, u32)> = loot.iter().copied().collect();
    let mut visited_txs: HashSet<TxId> = HashSet::new();
    let mut out = Vec::new();

    while let Some((tx, vout)) = queue.pop_front() {
        if out.len() >= max_txs {
            break;
        }
        // Who spends this tainted output?
        let Some(next) = chain.txs[tx as usize].outputs[vout as usize].spent_by else {
            continue;
        };
        if !visited_txs.insert(next) {
            continue;
        }
        let t = &chain.txs[next as usize];
        let tainted_inputs = t
            .inputs
            .iter()
            .filter(|i| tainted.contains(&(i.prev_tx, i.prev_vout)))
            .count();
        let kind = classify_tx(chain, next, tainted_inputs);

        // Decide which outputs stay under the thief's control.
        let followed: Vec<u32> = match kind {
            MovementKind::Aggregation | MovementKind::Fold | MovementKind::Split
            | MovementKind::Transfer => (0..t.outputs.len() as u32).collect(),
            MovementKind::Peel => {
                let change = labels.change_vout(next).unwrap_or_else(|| {
                    // Fall back to the largest output (the remainder).
                    t.outputs
                        .iter()
                        .enumerate()
                        .max_by_key(|(_, o)| o.value)
                        .map(|(v, _)| v as u32)
                        .unwrap_or(0)
                });
                vec![change]
            }
        };
        let departures: Vec<(AddressId, Amount)> = (0..t.outputs.len() as u32)
            .filter(|v| !followed.contains(v))
            .map(|v| {
                let o = &t.outputs[v as usize];
                (o.address, o.value)
            })
            .collect();

        for v in followed {
            tainted.insert((next, v));
            queue.push_back((next, v));
        }
        out.push(TaintedTx {
            tx: next,
            kind,
            tainted_inputs,
            total_inputs: t.inputs.len(),
            departures,
        });
    }
    // Chain order for a readable narrative.
    out.sort_by_key(|t| t.tx);
    out
}

/// [`classify_movements`] over the columnar [`TxGraph`] index: identical
/// movement records (same transactions, same classifications, same
/// departures — proven by the differential tests), with the taint frontier
/// kept as a bitmap over flat output ids instead of a hash set of
/// `(tx, vout)` pairs.
pub fn classify_movements_indexed(
    graph: &TxGraph,
    loot: &[(TxId, u32)],
    labels: &ChangeLabels,
    max_txs: usize,
) -> Vec<TaintedTx> {
    let mut scratch = TaintScratch::for_graph(graph);
    classify_movements_with_scratch(graph, loot, labels, max_txs, &mut scratch)
}

/// The scratch-reusing form of [`classify_movements_indexed`], for callers
/// that run many walks over one graph (the batch taint engine hands each
/// worker thread its own [`TaintScratch`] and amortizes the bitmap
/// allocations across every theft that worker processes).
pub fn classify_movements_with_scratch(
    graph: &TxGraph,
    loot: &[(TxId, u32)],
    labels: &ChangeLabels,
    max_txs: usize,
    scratch: &mut TaintScratch,
) -> Vec<TaintedTx> {
    scratch.reset();
    for &(tx, vout) in loot {
        let flat = graph.flat(tx, vout);
        scratch.taint(flat);
        scratch.queue.push_back(flat);
    }
    let mut out = Vec::new();

    while let Some(flat) = scratch.queue.pop_front() {
        if out.len() >= max_txs {
            break;
        }
        // Who spends this tainted output?
        let Some(next) = graph.spender_of(flat) else {
            continue;
        };
        if !scratch.visit(next) {
            continue;
        }
        let tainted_inputs = graph
            .inputs(next)
            .iter()
            .filter(|&&src| scratch.tainted.contains(src))
            .count();
        let total_inputs = graph.num_inputs(next);
        let outputs = graph.outputs(next);
        let kind = classify_counts(total_inputs, outputs.len(), tainted_inputs);

        // Decide which outputs stay under the thief's control, mirroring
        // the legacy walk exactly (including its peel fallback, which
        // keeps the *last* maximum among equal-value outputs).
        let mut departures: Vec<(AddressId, Amount)> = Vec::new();
        match kind {
            MovementKind::Aggregation | MovementKind::Fold | MovementKind::Split
            | MovementKind::Transfer => {
                for f in outputs {
                    scratch.taint(f);
                    scratch.queue.push_back(f);
                }
            }
            MovementKind::Peel => {
                let change_flat = match labels.change_vout(next) {
                    Some(v) => outputs.start + v,
                    None => outputs
                        .clone()
                        .max_by_key(|&f| graph.value_of(f))
                        .unwrap_or(outputs.start),
                };
                for f in outputs {
                    if f == change_flat {
                        scratch.taint(f);
                        scratch.queue.push_back(f);
                    } else {
                        departures.push((graph.address_of(f), graph.value_of(f)));
                    }
                }
            }
        }
        out.push(TaintedTx {
            tx: next,
            kind,
            tainted_inputs,
            total_inputs,
            departures,
        });
    }
    // Chain order for a readable narrative.
    out.sort_by_key(|t| t.tx);
    out
}

/// Collapses a movement list into the paper's pattern string, e.g. "A/P/S".
/// Transfers are skipped; consecutive identical kinds collapse.
pub fn pattern_string(movements: &[TaintedTx]) -> String {
    let mut letters: Vec<&str> = Vec::new();
    for m in movements {
        if m.kind == MovementKind::Transfer {
            continue;
        }
        let l = m.kind.letter();
        if letters.last() != Some(&l) {
            letters.push(l);
        }
    }
    letters.join("/")
}

#[cfg(test)]
mod tests {
    use super::*;
    use fistful_core::change::{identify, ChangeConfig};
    use fistful_core::testutil::TestChain;

    fn labels_for(t: &TestChain) -> ChangeLabels {
        identify(&t.chain, &ChangeConfig::naive())
    }

    #[test]
    fn classify_shapes() {
        let mut t = TestChain::new();
        let c1 = t.coinbase(1, 50);
        let c2 = t.coinbase(2, 50);
        let c3 = t.coinbase(3, 50);
        // Aggregation: 3 inputs → 1 output.
        let agg = t.tx(&[(c1, 0), (c2, 0), (c3, 0)], &[(4, 150)]);
        assert_eq!(classify_tx(&t.chain, agg as u32, 3), MovementKind::Aggregation);
        assert_eq!(classify_tx(&t.chain, agg as u32, 2), MovementKind::Fold);

        // Split: 1 input → 3 outputs.
        let split = t.tx(&[(agg, 0)], &[(5, 50), (6, 50), (7, 50)]);
        assert_eq!(classify_tx(&t.chain, split as u32, 1), MovementKind::Split);

        // Peel: 1 input → 2 outputs.
        let peel = t.tx(&[(split, 0)], &[(8, 10), (9, 40)]);
        assert_eq!(classify_tx(&t.chain, peel as u32, 1), MovementKind::Peel);
    }

    #[test]
    fn taint_walk_follows_thief_side_only() {
        let mut t = TestChain::new();
        let c1 = t.coinbase(1, 50);
        let c2 = t.coinbase(2, 50);
        let c3 = t.coinbase(3, 50);
        let _r = t.coinbase(100, 5);
        // The "theft": victim pays the thief (vout 0), keeps change.
        let theft = t.tx(&[(c1, 0)], &[(10, 30), (1, 20)]);
        // Thief folds with other funds.
        let agg = t.tx(&[(theft, 0), (c2, 0), (c3, 0)], &[(11, 130)]);
        // Then peels: recipient 100 (seen), change cascades.
        let p1 = t.tx(&[(agg, 0)], &[(100, 10), (12, 120)]);
        let p2 = t.tx(&[(p1, 1)], &[(100, 10), (13, 110)]);
        // The VICTIM's change also moves — must NOT be followed.
        let _victim_spend = t.tx(&[(theft, 1)], &[(100, 10), (14, 10)]);

        let victim_spend = t.chain.tx_count() as u32 - 1;
        let labels = labels_for(&t);
        let movements = classify_movements(&t.chain, &[(theft as u32, 0)], &labels, 100);
        let txs: Vec<u32> = movements.iter().map(|m| m.tx).collect();
        assert!(txs.contains(&(agg as u32)));
        assert!(txs.contains(&(p1 as u32)));
        assert!(txs.contains(&(p2 as u32)));
        assert!(
            !txs.contains(&victim_spend),
            "victim change spend not followed: {txs:?}"
        );
        assert_eq!(movements.len(), 3);
        assert_eq!(pattern_string(&movements), "F/P");

        // Departures recorded at the peel hops.
        let p1_m = movements.iter().find(|m| m.tx == p1 as u32).unwrap();
        assert_eq!(p1_m.departures.len(), 1);
        assert_eq!(p1_m.departures[0].0, t.id(100));
    }

    #[test]
    fn peel_follows_change_label_not_peel() {
        let mut t = TestChain::new();
        let c1 = t.coinbase(1, 1000);
        let _r = t.coinbase(100, 5);
        let theft = t.tx(&[(c1, 0)], &[(10, 900), (1, 100)]);
        // Peel hop: recipient 100 seen, change fresh (labelled).
        let p1 = t.tx(&[(theft, 0)], &[(100, 10), (11, 890)]);
        // The recipient spends their peel — NOT part of the thief walk.
        let _recipient_spend = t.tx(&[(p1, 0)], &[(100, 10)]);
        // The thief continues from the change.
        let p2 = t.tx(&[(p1, 1)], &[(100, 10), (12, 880)]);

        let labels = labels_for(&t);
        let movements = classify_movements(&t.chain, &[(theft as u32, 0)], &labels, 100);
        let txs: Vec<u32> = movements.iter().map(|m| m.tx).collect();
        assert!(txs.contains(&(p1 as u32)));
        assert!(txs.contains(&(p2 as u32)));
        assert_eq!(movements.len(), 2, "recipient's spend excluded: {txs:?}");
    }

    /// Random-ish hand-built shapes where legacy and indexed walks must
    /// agree record-for-record, including the max_txs bound.
    #[test]
    fn indexed_matches_legacy_walk() {
        let mut t = TestChain::new();
        let c1 = t.coinbase(1, 50);
        let c2 = t.coinbase(2, 50);
        let c3 = t.coinbase(3, 50);
        let _r = t.coinbase(100, 5);
        let theft = t.tx(&[(c1, 0)], &[(10, 30), (1, 20)]);
        let agg = t.tx(&[(theft, 0), (c2, 0), (c3, 0)], &[(11, 130)]);
        let split = t.tx(&[(agg, 0)], &[(12, 40), (13, 40), (14, 50)]);
        let p1 = t.tx(&[(split, 2)], &[(100, 10), (15, 40)]);
        let _p2 = t.tx(&[(p1, 1)], &[(100, 10), (16, 30)]);
        let labels = labels_for(&t);
        let graph = TxGraph::build_with_threads(&t.chain, 2);
        let loot = [(theft as u32, 0)];
        for max_txs in [0, 1, 2, 3, 100] {
            let legacy = classify_movements(&t.chain, &loot, &labels, max_txs);
            let indexed = classify_movements_indexed(&graph, &loot, &labels, max_txs);
            assert_eq!(legacy, indexed, "max_txs {max_txs}");
        }
        let movements = classify_movements_indexed(&graph, &loot, &labels, 100);
        assert_eq!(pattern_string(&movements), "F/S/P");
    }

    /// A reused scratch must leave no state behind between walks.
    #[test]
    fn scratch_reuse_is_stateless() {
        let mut t = TestChain::new();
        let c1 = t.coinbase(1, 100);
        let _r = t.coinbase(100, 5);
        let theft = t.tx(&[(c1, 0)], &[(10, 90), (1, 10)]);
        let p1 = t.tx(&[(theft, 0)], &[(100, 10), (11, 80)]);
        let _p2 = t.tx(&[(p1, 1)], &[(100, 10), (12, 70)]);
        let labels = labels_for(&t);
        let graph = TxGraph::build(&t.chain);
        let mut scratch = crate::graph::TaintScratch::for_graph(&graph);
        let loot = [(theft as u32, 0)];
        let first =
            classify_movements_with_scratch(&graph, &loot, &labels, 100, &mut scratch);
        let second =
            classify_movements_with_scratch(&graph, &loot, &labels, 100, &mut scratch);
        assert_eq!(first, second);
        assert_eq!(first, classify_movements(&t.chain, &loot, &labels, 100));
    }

    #[test]
    fn pattern_collapses_runs() {
        let mut t = TestChain::new();
        let c1 = t.coinbase(1, 1000);
        let _r = t.coinbase(100, 5);
        let theft = t.tx(&[(c1, 0)], &[(10, 900), (1, 100)]);
        let mut prev = (theft, 0u32);
        let mut rem = 900;
        for _ in 0..5 {
            rem -= 10;
            let h = t.tx(&[(prev.0, prev.1)], &[(100, 10), (11, rem)]);
            prev = (h, 1);
        }
        let labels = labels_for(&t);
        let movements = classify_movements(&t.chain, &[(theft as u32, 0)], &labels, 100);
        assert_eq!(pattern_string(&movements), "P");
        assert_eq!(movements.len(), 5);
    }

    #[test]
    fn max_txs_bounds_walk() {
        let mut t = TestChain::new();
        let c1 = t.coinbase(1, 1000);
        let _r = t.coinbase(100, 5);
        let theft = t.tx(&[(c1, 0)], &[(10, 900), (1, 100)]);
        let mut prev = (theft, 0u32);
        let mut rem = 900;
        for _ in 0..10 {
            rem -= 10;
            let h = t.tx(&[(prev.0, prev.1)], &[(100, 10), (11, rem)]);
            prev = (h, 1);
        }
        let labels = labels_for(&t);
        let movements = classify_movements(&t.chain, &[(theft as u32, 0)], &labels, 3);
        assert!(movements.len() <= 4);
    }
}

//! Flow analysis: following money through the transaction graph.
//!
//! Implements §5 of the paper:
//!
//! * [`peel`] — systematic traversal of *peeling chains* by following
//!   Heuristic-2 change links hop by hop;
//! * [`track`] — attributing the "peels" to named services
//!   (Table 2: tracking the Silk Road `1DkyBEKt` dissolution);
//! * [`movement`] — classifying how stolen money moves: aggregation,
//!   peeling, splits, folding (Table 3's A/P/S/F notation);
//! * [`theft`] — end-to-end theft tracking: did the loot reach an
//!   exchange? (Table 3);
//! * [`balance`] — per-category balance time series as a percentage of
//!   active (non-sink) bitcoins (Figure 2);
//! * [`categories`] — address → category/service resolution, either from
//!   cluster naming (as the paper had to), from simulator ground truth, or
//!   from a frozen
//!   [`ClusterSnapshot`](fistful_core::snapshot::ClusterSnapshot)
//!   (the [`categories::ServiceResolver`] trait abstracts all three, so
//!   every entry point here runs against the reloaded artifact without
//!   replaying the chain).

#![warn(missing_docs)]

pub mod balance;
pub mod categories;
pub mod movement;
pub mod peel;
pub mod theft;
pub mod track;

pub use balance::{balance_series, BalancePoint};
pub use categories::{AddressDirectory, ServiceResolver};
pub use movement::{classify_movements, MovementKind};
pub use peel::{follow_chain, FollowStrategy, Hop, PeelChain};
pub use theft::{track_theft, TheftTrace};
pub use track::{service_arrivals, ArrivalRow};

//! Flow analysis: following money through the transaction graph.
//!
//! Implements §5 of the paper:
//!
//! * [`graph`] — the columnar (CSR) transaction-graph index
//!   ([`graph::TxGraph`]): one parallel pass over the chain produces flat
//!   adjacency arrays that every multi-hop traversal below runs on,
//!   instead of re-resolving spenders hop by hop per query;
//! * [`peel`] — systematic traversal of *peeling chains* by following
//!   Heuristic-2 change links hop by hop;
//! * [`track`] — attributing the "peels" to named services
//!   (Table 2: tracking the Silk Road `1DkyBEKt` dissolution);
//! * [`movement`] — classifying how stolen money moves: aggregation,
//!   peeling, splits, folding (Table 3's A/P/S/F notation);
//! * [`theft`] — end-to-end theft tracking: did the loot reach an
//!   exchange? (Table 3), including the batch engine
//!   ([`theft::track_thefts_batch`]) that tracks N thefts concurrently
//!   over one shared graph with per-thread frontiers;
//! * [`balance`] — per-category balance time series as a percentage of
//!   active (non-sink) bitcoins (Figure 2);
//! * [`categories`] — address → category/service resolution, either from
//!   cluster naming (as the paper had to), from simulator ground truth, or
//!   from a frozen
//!   [`ClusterSnapshot`](fistful_core::snapshot::ClusterSnapshot)
//!   (the [`categories::ServiceResolver`] trait abstracts all three, so
//!   every entry point here runs against the reloaded artifact without
//!   replaying the chain).

#![warn(missing_docs)]

pub mod balance;
pub mod categories;
pub mod graph;
pub mod movement;
pub mod peel;
pub mod theft;
pub mod track;

pub use balance::{balance_series, balance_series_at, point_at, BalancePoint};
pub use categories::{AddressDirectory, ServiceResolver};
pub use graph::{TaintScratch, TxGraph};
pub use movement::{classify_movements, classify_movements_indexed, MovementKind};
pub use peel::{
    follow_chain, follow_chain_indexed, follow_chains_indexed, FollowStrategy, Hop, PeelChain,
};
pub use theft::{track_theft, track_theft_indexed, track_thefts_batch, TheftTrace};
pub use track::{service_arrivals, service_arrivals_indexed, ArrivalRow};

//! Per-category balance time series — Figure 2 of the paper.
//!
//! "The balance of each major category, represented as a percentage of
//! total active bitcoins; i.e., the bitcoins that are not held in sink
//! addresses." A *sink* address is one that has never spent (over the
//! whole observation window).

use crate::categories::ServiceResolver;
use fistful_chain::amount::Amount;
use fistful_chain::resolve::{AddressId, ResolvedChain};
use std::collections::BTreeMap;

/// One sampled point of the balance series.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BalancePoint {
    /// Block height of the sample.
    pub height: u64,
    /// Unix time of the sample.
    pub time: u64,
    /// Balance per category (absolute).
    pub balances: BTreeMap<String, Amount>,
    /// Total supply at the sample.
    pub supply: Amount,
    /// Supply held by sink addresses at the sample.
    pub sink_held: Amount,
}

impl BalancePoint {
    /// Active supply: total minus sink-held.
    pub fn active(&self) -> Amount {
        self.supply.saturating_sub(self.sink_held)
    }

    /// A category's balance as a percentage of active supply.
    pub fn percent_of_active(&self, category: &str) -> f64 {
        let active = self.active().to_sat();
        if active == 0 {
            return 0.0;
        }
        let bal = self
            .balances
            .get(category)
            .copied()
            .unwrap_or(Amount::ZERO)
            .to_sat();
        bal as f64 * 100.0 / active as f64
    }
}

/// The last sampled point at or before `height`, or `None` when `height`
/// precedes the first sample.
///
/// `series` must be height-sorted, which [`balance_series`] guarantees
/// (it samples in chain order). This is the serving-path lookup behind the
/// query service's `BalancePoint` request: one binary search over the
/// precomputed series, no chain access.
pub fn point_at(series: &[BalancePoint], height: u64) -> Option<&BalancePoint> {
    let idx = series.partition_point(|p| p.height <= height);
    idx.checked_sub(1).map(|i| &series[i])
}

/// Computes the balance series, sampling every `every` blocks.
///
/// `directory` assigns addresses to categories — any
/// [`ServiceResolver`]: a live [`AddressDirectory`](crate::categories::AddressDirectory)
/// (cluster naming, as the paper did, or ground truth) or a frozen
/// [`ClusterSnapshot`](fistful_core::snapshot::ClusterSnapshot). Category
/// balances count only *active* coins — coins on addresses that spend at
/// some point in the window — making them directly comparable to the
/// active-supply denominator (sink-held coins are excluded from both).
pub fn balance_series(
    chain: &ResolvedChain,
    directory: &impl ServiceResolver,
    every: u64,
) -> Vec<BalancePoint> {
    balance_series_at(chain, chain.tx_count(), directory, every)
}

/// [`balance_series`] over only the first `tx_end` transactions of the
/// chain — the mid-ingest rebuild the live hot-swap pipeline runs at each
/// epoch publish.
///
/// Sink flags are scanned over the *prefix* window: an address whose only
/// spends sit at or past `tx_end` has never spent as far as this window
/// knows, exactly as if the chain ended there. With
/// `tx_end == chain.tx_count()` the result is identical to
/// [`balance_series`].
pub fn balance_series_at(
    chain: &ResolvedChain,
    tx_end: usize,
    directory: &impl ServiceResolver,
    every: u64,
) -> Vec<BalancePoint> {
    assert!(every > 0, "sampling interval must be positive");
    assert!(tx_end <= chain.tx_count(), "tx_end exceeds the chain");

    // Sink flags: addresses that never spend within the window. The
    // per-address spend lists are chain-ordered, so "no spend before
    // tx_end" is one partition_point.
    let n = chain.address_count();
    let sink: Vec<bool> = (0..n as AddressId)
        .map(|a| chain.spent_in(a).partition_point(|&t| (t as usize) < tx_end) == 0)
        .collect();

    let mut balances: Vec<u64> = vec![0; n]; // per-address, in satoshis
    let mut per_category: BTreeMap<String, u64> = BTreeMap::new();
    let mut supply: u64 = 0;
    let mut sink_held: u64 = 0;

    let mut out = Vec::new();
    let mut last_height: Option<u64> = None;

    let mut push_sample = |height: u64,
                           time: u64,
                           per_category: &BTreeMap<String, u64>,
                           supply: u64,
                           sink_held: u64| {
        out.push(BalancePoint {
            height,
            time,
            balances: per_category
                .iter()
                .map(|(k, &v)| (k.clone(), Amount::from_sat(v)))
                .collect(),
            supply: Amount::from_sat(supply),
            sink_held: Amount::from_sat(sink_held),
        });
    };

    for tx in &chain.txs[..tx_end] {
        // Sample boundary crossings before applying this tx.
        if let Some(prev) = last_height {
            if tx.height / every != prev / every {
                push_sample(prev, tx.time, &per_category, supply, sink_held);
            }
        }
        last_height = Some(tx.height);

        for input in &tx.inputs {
            let a = input.address as usize;
            let v = input.value.to_sat();
            balances[a] -= v;
            supply -= v;
            debug_assert!(!sink[a], "sinks never spend");
            if let Some(cat) = directory.category(input.address) {
                *per_category.get_mut(cat).expect("category seen before") -= v;
            }
        }
        for out_ in &tx.outputs {
            let a = out_.address as usize;
            let v = out_.value.to_sat();
            balances[a] += v;
            supply += v;
            if sink[a] {
                sink_held += v;
            } else if let Some(cat) = directory.category(out_.address) {
                *per_category.entry(cat.to_string()).or_insert(0) += v;
            }
        }
    }
    if let Some(h) = last_height {
        let t = chain.txs[..tx_end].last().map(|t| t.time).unwrap_or(0);
        push_sample(h, t, &per_category, supply, sink_held);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::categories::AddressDirectory;
    use fistful_core::testutil::TestChain;

    #[test]
    fn tracks_category_balances_over_time() {
        let mut t = TestChain::new();
        // addr 1 = "Mt. Gox" (exchange), addr 2 = user (uncategorized).
        let cb = t.coinbase(1, 50);
        let _cb2 = t.coinbase(2, 50);
        // Exchange pays 20 to the user at height 2, keeps 29 change at
        // address 3 (also Mt. Gox's).
        t.tx(&[(cb, 0)], &[(2, 20), (3, 29)]);

        let n = t.chain.address_count();
        let mut pairs = vec![(None, None); n];
        pairs[t.id(1) as usize] = (Some("Mt. Gox".into()), Some("exchange".into()));
        pairs[t.id(3) as usize] = (Some("Mt. Gox".into()), Some("exchange".into()));
        let dir = AddressDirectory::from_pairs(pairs);

        let series = balance_series(&t.chain, &dir, 1);
        assert!(!series.is_empty());
        let last = series.last().unwrap();
        // Address 3 never spends, so its 29 BTC is sink-held and excluded
        // from the category balance (consistent with the active-supply
        // denominator).
        assert_eq!(
            last.balances.get("exchange").copied().unwrap_or(Amount::ZERO),
            Amount::ZERO
        );
        assert!(last.sink_held >= Amount::from_btc(29));
        // Outputs sum to 49 vs 50 input: 1 BTC went to fees → supply 99.
        assert_eq!(last.supply, Amount::from_btc(99));
    }

    #[test]
    fn sink_exclusion() {
        let mut t = TestChain::new();
        let cb1 = t.coinbase(1, 50);
        let _cb2 = t.coinbase(2, 50); // addr 2 never spends → sink
        t.tx(&[(cb1, 0)], &[(3, 50)]); // addr 3 never spends → sink too

        let dir = AddressDirectory::from_pairs(vec![(None, None); t.chain.address_count()]);
        let series = balance_series(&t.chain, &dir, 1);
        let last = series.last().unwrap();
        // addr 1 spent (not a sink); addrs 2, 3 are sinks holding 100.
        assert_eq!(last.sink_held, Amount::from_btc(100));
        assert_eq!(last.active(), Amount::ZERO);
    }

    #[test]
    fn percent_of_active() {
        let mut t = TestChain::new();
        let cb1 = t.coinbase(1, 50);
        let cb2 = t.coinbase(2, 50);
        // Both spend so neither is a sink; addr 1's funds move to 4 (gox),
        // addr 2's to 5 (user). 4 and 5 then churn once so they are not
        // sinks either.
        let t1 = t.tx(&[(cb1, 0)], &[(4, 50)]);
        let t2 = t.tx(&[(cb2, 0)], &[(5, 50)]);
        let _t3 = t.tx(&[(t1, 0)], &[(4, 25), (5, 25)]);
        let _t4 = t.tx(&[(t2, 0)], &[(5, 50)]);

        let n = t.chain.address_count();
        let mut pairs = vec![(None, None); n];
        pairs[t.id(4) as usize] = (Some("Mt. Gox".into()), Some("exchange".into()));
        let dir = AddressDirectory::from_pairs(pairs);
        let series = balance_series(&t.chain, &dir, 1);
        let last = series.last().unwrap();
        // Every address spent at least once, so nothing is a sink: active
        // supply is the full 100 BTC, of which Mt. Gox (addr 4) holds 25.
        assert_eq!(last.active(), Amount::from_btc(100));
        assert!((last.percent_of_active("exchange") - 25.0).abs() < 1e-9);
    }

    #[test]
    fn point_at_finds_the_sample_at_or_before_a_height() {
        let mut t = TestChain::new();
        let cb = t.coinbase(1, 50);
        t.tx(&[(cb, 0)], &[(2, 20), (3, 29)]);
        let dir = AddressDirectory::from_pairs(vec![(None, None); t.chain.address_count()]);
        let series = balance_series(&t.chain, &dir, 1);
        assert!(series.len() >= 2);

        let first = series.first().unwrap().height;
        let last = series.last().unwrap().height;
        assert!(point_at(&series, first.wrapping_sub(1)).is_none() || first == 0);
        assert_eq!(point_at(&series, first).unwrap().height, first);
        // Past the end clamps to the last sample.
        assert_eq!(point_at(&series, last + 1_000).unwrap().height, last);
        // Every sampled height finds exactly itself.
        for p in &series {
            assert_eq!(point_at(&series, p.height).unwrap().height, p.height);
        }
        assert!(point_at(&[], 5).is_none());
    }

    #[test]
    fn balance_series_at_prefix_rescans_sinks() {
        let mut t = TestChain::new();
        let cb1 = t.coinbase(1, 50);
        let _cb2 = t.coinbase(2, 50);
        t.tx(&[(cb1, 0)], &[(3, 50)]); // addr 1 spends only in tx 2
        let dir = AddressDirectory::from_pairs(vec![(None, None); t.chain.address_count()]);

        // Full prefix is byte-for-byte the whole-chain series.
        let full = balance_series(&t.chain, &dir, 1);
        assert_eq!(balance_series_at(&t.chain, t.chain.tx_count(), &dir, 1), full);

        // At the 2-tx prefix, address 1 has not spent yet: within that
        // window it is a sink holding its coinbase, unlike the whole-chain
        // view where its later spend disqualifies it.
        let prefix = balance_series_at(&t.chain, 2, &dir, 1);
        let last = prefix.last().unwrap();
        assert_eq!(last.sink_held, Amount::from_btc(100));
        assert_eq!(last.active(), Amount::ZERO);
        assert_eq!(last.supply, Amount::from_btc(100));

        // The empty prefix yields no samples at all.
        assert!(balance_series_at(&t.chain, 0, &dir, 1).is_empty());
    }

    #[test]
    #[should_panic(expected = "sampling interval")]
    fn zero_interval_rejected() {
        let t = TestChain::new();
        let dir = AddressDirectory::default();
        balance_series(&t.chain, &dir, 0);
    }
}

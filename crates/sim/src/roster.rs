//! The service roster, mirroring Table 1 of the paper.
//!
//! Every service the authors transacted with is present, with the
//! behavioural kind that drives its transaction idioms. A few extra
//! services appear because the analysis needs them: the theft victims of
//! Table 3 (MyBitcoin, Betcoin) and the investment schemes of Figure 2
//! (Bitcoinica, Bitcoin Savings & Trust).

use crate::entity::Category;

/// Behavioural archetype of a service.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum KindSpec {
    /// Mining pool: mines blocks, pays members in multi-output batches.
    Pool,
    /// Deposit-taking service (real-time exchange or wallet service):
    /// fresh deposit addresses, consolidation sweeps, peeling-chain
    /// withdrawals, spread over `subwallets` internal key groups.
    Bank {
        /// Number of internally disjoint key groups (Mt. Gox ≈ 20).
        subwallets: usize,
    },
    /// Fixed-rate exchange: one-time conversions, no accounts.
    FixedExchange,
    /// Vendor selling goods; optionally paid via a gateway.
    Vendor {
        /// Index into the roster of the payment gateway, if any.
        uses_gateway: bool,
    },
    /// Payment gateway (BitPay, WalletBit): receives on behalf of vendors,
    /// settles in aggregated batches.
    Gateway,
    /// Satoshi-Dice-style game: instant bets, payout returned to the
    /// betting address, heavily reused house addresses, self-change.
    Dice,
    /// Deposit-based gambling (poker sites): bank-lite mechanics.
    Casino,
    /// Mix/laundry: pays out unrelated coins after a delay. `honest: false`
    /// models BitMix, which simply stole the coins.
    Mix {
        /// Whether deposits are ever paid back.
        honest: bool,
    },
    /// Investment scheme: pays periodic "returns" from new deposits until
    /// a collapse height (Ponzi dynamics).
    Investment,
    /// Miscellaneous: donation targets, faucets, advertisers.
    Misc,
}

/// A service template.
#[derive(Debug, Clone, Copy)]
pub struct ServiceSpec {
    /// Display name (as in Table 1).
    pub name: &'static str,
    /// Category for tags and Figure 2.
    pub category: Category,
    /// Behaviour.
    pub kind: KindSpec,
}

const fn pool(name: &'static str) -> ServiceSpec {
    ServiceSpec { name, category: Category::Mining, kind: KindSpec::Pool }
}
const fn bank(name: &'static str, subwallets: usize) -> ServiceSpec {
    ServiceSpec { name, category: Category::Exchange, kind: KindSpec::Bank { subwallets } }
}
const fn wallet(name: &'static str, subwallets: usize) -> ServiceSpec {
    ServiceSpec { name, category: Category::Wallet, kind: KindSpec::Bank { subwallets } }
}
const fn fixed(name: &'static str) -> ServiceSpec {
    ServiceSpec { name, category: Category::FixedExchange, kind: KindSpec::FixedExchange }
}
const fn vendor(name: &'static str, uses_gateway: bool) -> ServiceSpec {
    ServiceSpec { name, category: Category::Vendor, kind: KindSpec::Vendor { uses_gateway } }
}
const fn gateway(name: &'static str) -> ServiceSpec {
    ServiceSpec { name, category: Category::Vendor, kind: KindSpec::Gateway }
}
const fn dice(name: &'static str) -> ServiceSpec {
    ServiceSpec { name, category: Category::Gambling, kind: KindSpec::Dice }
}
const fn casino(name: &'static str) -> ServiceSpec {
    ServiceSpec { name, category: Category::Gambling, kind: KindSpec::Casino }
}
const fn mix(name: &'static str, honest: bool) -> ServiceSpec {
    ServiceSpec { name, category: Category::Mix, kind: KindSpec::Mix { honest } }
}
const fn investment(name: &'static str) -> ServiceSpec {
    ServiceSpec { name, category: Category::Investment, kind: KindSpec::Investment }
}
const fn misc(name: &'static str) -> ServiceSpec {
    ServiceSpec { name, category: Category::Misc, kind: KindSpec::Misc }
}

/// The full roster (Table 1, plus analysis-required extras).
pub fn full_roster() -> Vec<ServiceSpec> {
    vec![
        // ---- Mining pools (11) ----
        pool("50 BTC"),
        pool("ABC Pool"),
        pool("Bitclockers"),
        pool("Bitminter"),
        pool("BTC Guild"),
        pool("Deepbit"),
        pool("EclipseMC"),
        pool("Eligius"),
        pool("Itzod"),
        pool("Ozcoin"),
        pool("Slush"),
        // ---- Wallet services (10) ----
        wallet("Bitcoin Faucet", 1),
        wallet("My Wallet", 2),
        wallet("Coinbase", 2),
        wallet("Easycoin", 1),
        wallet("Easywallet", 1),
        wallet("Flexcoin", 1),
        wallet("Instawallet", 3),
        wallet("Paytunia", 1),
        wallet("Strongcoin", 1),
        wallet("WalletBit Wallet", 1),
        // ---- Bank exchanges (18) ----
        bank("Bitcoin 24", 2),
        bank("Bitcoin Central", 2),
        bank("Bitcoin.de", 2),
        bank("Bitcurex", 1),
        bank("Bitfloor", 2),
        bank("Bitmarket", 1),
        bank("Bitme", 1),
        bank("Bitstamp", 3),
        bank("BTC China", 2),
        bank("BTC-e", 3),
        bank("CampBX", 1),
        bank("CA VirtEx", 2),
        bank("ICBit", 1),
        bank("Mercado Bitcoin", 1),
        bank("Mt. Gox", 20),
        bank("The Rock", 1),
        bank("Vircurex", 1),
        bank("Virwox", 1),
        // ---- Non-bank (fixed-rate) exchanges (8) ----
        fixed("Aurum Xchange"),
        fixed("BitInstant"),
        fixed("Bitcoin Nordic"),
        fixed("BTC Quick"),
        fixed("FastCash4Bitcoins"),
        fixed("Lilion Transfer"),
        fixed("Nanaimo Gold"),
        fixed("OKPay"),
        // ---- Vendors & gateways (Table 1 vendors) ----
        gateway("BitPay"),
        gateway("WalletBit"),
        vendor("ABU Games", false),
        vendor("Bitbrew", true),
        vendor("Bitdomain", false),
        vendor("Bitmit", false),
        vendor("Bit Usenet", true),
        vendor("BTC Buy", false),
        vendor("BTC Gadgets", true),
        vendor("Casascius", false),
        vendor("Coinabul", true),
        vendor("CoinDL", false),
        vendor("Etsy", true),
        vendor("HealthRX", false),
        vendor("JJ Games", true),
        vendor("NZBs R Us", false),
        vendor("Medsforbitcoin", false),
        vendor("Silk Road", false),
        vendor("Yoku", true),
        // ---- Gambling (13) ----
        dice("Satoshi Dice"),
        dice("Clone Dice"),
        dice("BTC Lucky"),
        dice("BTC Griffin"),
        dice("Gold Game Land"),
        dice("Bit Elfin"),
        casino("Bitcoin 24/7"),
        casino("Bitcoin Darts"),
        casino("Bitcoin Kamikaze"),
        casino("Bitcoin Minefield"),
        casino("BitZino"),
        casino("BTC on Tilt"),
        casino("Seals with Clubs"),
        // ---- Mixes & miscellaneous ----
        mix("Bitcoin Laundry", true),
        mix("Bitlaundry", true),
        mix("Bitfog", true),
        mix("BitMix", false), // stole our deposit, per the paper
        misc("Bit Visitor"),
        misc("Bitcoin Advertisers"),
        misc("CoinAd"),
        misc("Coinapult"),
        misc("Wikileaks"),
        // ---- Analysis-required extras (thefts, Figure 2) ----
        wallet("MyBitcoin", 1),
        casino("Betcoin"),
        investment("Bitcoinica"),
        investment("Bitcoin Savings & Trust"),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn roster_names_unique() {
        let roster = full_roster();
        let names: HashSet<_> = roster.iter().map(|s| s.name).collect();
        assert_eq!(names.len(), roster.len());
    }

    #[test]
    fn table1_counts() {
        let roster = full_roster();
        let count = |c: Category| roster.iter().filter(|s| s.category == c).count();
        assert_eq!(count(Category::Mining), 11);
        // 10 wallet services from Table 1 plus the MyBitcoin theft victim.
        assert_eq!(count(Category::Wallet), 11);
        assert_eq!(count(Category::Exchange), 18);
        assert_eq!(count(Category::FixedExchange), 8);
        assert_eq!(count(Category::Gambling), 14); // 13 + Betcoin
        assert_eq!(count(Category::Mix), 4);
        assert_eq!(count(Category::Investment), 2);
    }

    #[test]
    fn mt_gox_has_many_subwallets() {
        let roster = full_roster();
        let gox = roster.iter().find(|s| s.name == "Mt. Gox").unwrap();
        assert!(matches!(gox.kind, KindSpec::Bank { subwallets: 20 }));
    }

    #[test]
    fn key_services_present() {
        let roster = full_roster();
        for name in ["Satoshi Dice", "Silk Road", "BitPay", "Instawallet", "Bitfloor", "Betcoin"] {
            assert!(roster.iter().any(|s| s.name == name), "{name} missing");
        }
    }
}

//! Scripted storylines: the Silk Road `1DkyBEKt` lifecycle (§5, Table 2)
//! and the seven thefts of Table 3.
//!
//! Each script is a state machine advanced once per block by the engine.
//! Amounts are scaled from the paper's values by the size of the simulated
//! economy, but the *structure* — aggregate deposits with up to 128 inputs,
//! the 20k/19k/60k/100k/100k/150k/158k dissolution, the three peeling
//! chains, the A/P/S/F theft movements — matches the paper.

use crate::engine::{ChangeTarget, Economy, WalletId};
use crate::entity::{Category, OwnerId};
use fistful_chain::address::Address;
use fistful_chain::amount::Amount;
use fistful_crypto::hash::Hash256;

/// What the scripts produced, for the flow experiments.
#[derive(Debug, Clone, Default)]
pub struct ScriptReport {
    /// The Silk Road storyline, if enabled.
    pub silk_road: Option<SilkRoadReport>,
    /// One report per theft.
    pub thefts: Vec<TheftReport>,
}

/// Ground truth about the Silk Road storyline.
#[derive(Debug, Clone)]
pub struct SilkRoadReport {
    /// The big aggregation address (the `1DkyBEKt` analogue).
    pub big_address: Address,
    /// Total deposited into it.
    pub total_received: Amount,
    /// Txids of the dissolution withdrawals (20k/19k/60k/100k/100k/150k).
    pub dissolution_txids: Vec<Hash256>,
    /// The final withdrawal (158,336-analogue) txid.
    pub final_withdrawal: Option<Hash256>,
    /// The 3-way split transaction that seeds the peeling chains.
    pub split_txid: Option<Hash256>,
    /// First hop txid of each peeling chain.
    pub chain_first_hops: Vec<Hash256>,
    /// Hops actually executed per chain.
    pub hops_done: [u32; 3],
}

/// Ground truth about one theft.
#[derive(Debug, Clone)]
pub struct TheftReport {
    /// Case name (Table 3 row).
    pub name: String,
    /// Victim service name.
    pub victim: String,
    /// Amount stolen.
    pub stolen: Amount,
    /// Height of the theft transaction.
    pub theft_height: u64,
    /// The theft transaction(s) — several for the trojan's many victims.
    pub theft_txids: Vec<Hash256>,
    /// The addresses the loot was paid to.
    pub loot_addresses: Vec<Address>,
    /// The thief's owner id (ground truth).
    pub thief_owner: OwnerId,
    /// Movement pattern in the paper's notation (e.g. "A/P/S").
    pub pattern: String,
    /// Whether the paper saw funds reach exchanges for this case.
    pub expect_exchange: bool,
}

/// One movement of stolen money (Table 3 notation).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Movement {
    /// Aggregation: many addresses into one.
    Aggregate,
    /// Peeling chain with this many hops.
    Peel(u32),
    /// Split into several addresses.
    Split,
    /// Folding: aggregation mixing in coins not from the theft.
    Fold,
}

impl Movement {
    fn letter(self) -> &'static str {
        match self {
            Movement::Aggregate => "A",
            Movement::Peel(_) => "P",
            Movement::Split => "S",
            Movement::Fold => "F",
        }
    }
}

/// Phases of the Silk Road storyline.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum SrPhase {
    Accumulating,
    Dissolving(usize),
    Splitting,
    Peeling,
    Done,
}

struct SilkRoadScript {
    hot_wallet: Option<WalletId>,
    big_address: Option<Address>,
    phase: SrPhase,
    /// Per-chain wallets (each chain's change cascades within one wallet).
    chain_wallets: Vec<WalletId>,
    report: SilkRoadReport,
    max_hops: u32,
}

/// A theft storyline.
struct TheftScript {
    name: &'static str,
    victim: &'static str,
    /// Height (fraction of the run) at which the hack happens.
    steal_frac: f64,
    /// Fraction of the victim's balance taken.
    take_frac: f64,
    /// Blocks the loot sits before moving (Betcoin waited ~a year).
    dormancy: u64,
    movements: Vec<Movement>,
    expect_exchange: bool,
    /// `true` for the trojan: most of the loot never moves.
    mostly_dormant: bool,
    // runtime state
    thief: Option<(OwnerId, WalletId)>,
    stage: usize,
    peel_hops_left: u32,
    started_moving: bool,
    done: bool,
    theft_txids: Vec<Hash256>,
    loot_addresses: Vec<Address>,
    stolen: Amount,
    theft_height: u64,
}

/// All scripts, stepped once per block.
pub struct Scripts {
    silk_road: Option<SilkRoadScript>,
    thefts: Vec<TheftScript>,
    total_blocks: u64,
}

impl Scripts {
    /// Configures scripts per the simulation config.
    pub fn new(cfg: &crate::config::SimConfig) -> Scripts {
        let silk_road = cfg.enable_silk_road.then(|| SilkRoadScript {
            hot_wallet: None,
            big_address: None,
            phase: SrPhase::Accumulating,
            chain_wallets: Vec::new(),
            report: SilkRoadReport {
                big_address: Address::default(),
                total_received: Amount::ZERO,
                dissolution_txids: Vec::new(),
                final_withdrawal: None,
                split_txid: None,
                chain_first_hops: Vec::new(),
                hops_done: [0; 3],
            },
            max_hops: 100,
        });
        let thefts = if cfg.enable_thefts {
            vec![
                TheftScript::new("MyBitcoin", "MyBitcoin", 0.45, 0.8, 2,
                    vec![Movement::Aggregate, Movement::Peel(12), Movement::Split], true, false),
                TheftScript::new("Linode", "Bitcoinica", 0.35, 0.7, 2,
                    vec![Movement::Aggregate, Movement::Peel(15), Movement::Fold], true, false),
                TheftScript::new("Betcoin", "Betcoin", 0.30, 0.9, 0,
                    vec![Movement::Fold, Movement::Aggregate, Movement::Peel(20)], true, false),
                TheftScript::new("Bitcoinica (May)", "Bitcoinica", 0.45, 0.5, 2,
                    vec![Movement::Peel(12), Movement::Aggregate], true, false),
                TheftScript::new("Bitcoinica (Jul)", "Bitcoinica", 0.55, 0.6, 2,
                    vec![Movement::Peel(10), Movement::Aggregate, Movement::Split], true, false),
                TheftScript::new("Bitfloor", "Bitfloor", 0.60, 0.6, 2,
                    vec![Movement::Peel(10), Movement::Aggregate, Movement::Peel(12)], true, false),
                TheftScript::new("Trojan", "", 0.50, 0.0, 4,
                    vec![Movement::Fold, Movement::Aggregate], false, true),
            ]
        } else {
            Vec::new()
        };
        Scripts { silk_road, thefts, total_blocks: cfg.blocks }
    }

    /// Advances every script by one block.
    pub fn step(&mut self, eco: &mut Economy) {
        let total = self.total_blocks;
        if let Some(sr) = &mut self.silk_road {
            sr.step(eco, total);
            eco.script_report.silk_road = Some(sr.report.clone());
        }
        for theft in &mut self.thefts {
            theft.step(eco, total);
        }
        // Publish theft reports (refresh each block; cheap).
        eco.script_report.thefts = self
            .thefts
            .iter()
            .filter_map(|t| t.report())
            .collect();
    }
}

impl SilkRoadScript {
    fn ensure_setup(&mut self, eco: &mut Economy) {
        if self.hot_wallet.is_some() {
            return;
        }
        let sr = eco.service_index("Silk Road").expect("Silk Road in roster");
        let owner = eco.services[sr].owner;
        let hot = eco.new_wallet_for(owner);
        self.hot_wallet = Some(hot);
        let big = eco.fresh_address(hot);
        self.big_address = Some(big);
        self.report.big_address = big;
    }

    fn step(&mut self, eco: &mut Economy, total_blocks: u64) {
        self.ensure_setup(eco);
        let h = eco.current_height();
        let hot = self.hot_wallet.unwrap();
        let big = self.big_address.unwrap();
        let sr = eco.service_index("Silk Road").unwrap();
        let revenue_wallet = eco.service_wallet(sr);

        let acc_start = total_blocks * 15 / 100;
        let dissolve_at = total_blocks * 60 / 100;

        match self.phase {
            SrPhase::Accumulating => {
                if h >= dissolve_at {
                    self.phase = SrPhase::Dissolving(0);
                    return;
                }
                if h >= acc_start && h % 4 == 0 {
                    // Aggregate sale revenue into the big address ("the
                    // funds of 128 addresses were combined").
                    if let Some(_txid) = eco.aggregate(revenue_wallet, 2, 128, big) {
                        self.report.total_received = eco
                            .wallet(hot)
                            .utxos()
                            .iter()
                            .filter(|u| u.address == big)
                            .map(|u| u.value)
                            .sum();
                    }
                }
            }
            SrPhase::Dissolving(step) => {
                // Withdraw the paper's proportions of the big balance:
                // 20k/19k/60k/100k/100k/150k out of 613,326, then the
                // remaining ≈158,336 to the chain seed.
                const FRACTIONS: [(u64, u64); 6] = [
                    (20_000, 613_326),
                    (19_000, 613_326),
                    (60_000, 613_326),
                    (100_000, 613_326),
                    (100_000, 613_326),
                    (150_000, 613_326),
                ];
                let balance = eco.wallet(hot).balance();
                if step < FRACTIONS.len() {
                    let (num, den) = FRACTIONS[step];
                    let amount =
                        Amount::from_sat((self.report.total_received.to_sat() / den) * num);
                    let to = eco.fresh_address(hot);
                    if amount > Amount::ZERO && balance > amount {
                        if let Some(txid) =
                            eco.pay(hot, &[(to, amount)], ChangeTarget::Fresh)
                        {
                            self.report.dissolution_txids.push(txid);
                        }
                    }
                    self.phase = SrPhase::Dissolving(step + 1);
                } else {
                    // Final: sweep what's left of the big address into the
                    // chain-seed wallet.
                    let seed_wallet = eco.new_wallet_for(eco.services[sr].owner);
                    let to = eco.fresh_address(seed_wallet);
                    if let Some(txid) = eco.aggregate(hot, 1, 256, to) {
                        self.report.final_withdrawal = Some(txid);
                        self.chain_wallets.push(seed_wallet);
                        self.phase = SrPhase::Splitting;
                    } else {
                        self.phase = SrPhase::Done;
                    }
                }
            }
            SrPhase::Splitting => {
                // 50,000 / 50,000 / 58,336 proportions.
                let seed = self.chain_wallets[0];
                if let Some(txid) = eco.split_weighted(seed, &[50_000, 50_000, 58_336]) {
                    self.report.split_txid = Some(txid);
                    // Move each piece into its own chain wallet.
                    let owner = eco.wallet(seed).owner;
                    let utxos = eco.wallet_mut(seed).take_all();
                    self.chain_wallets.clear();
                    for u in utxos {
                        let w = eco.new_wallet_for(owner);
                        eco.wallet_mut(w).credit(u);
                        self.chain_wallets.push(w);
                    }
                    self.phase = SrPhase::Peeling;
                } else {
                    self.phase = SrPhase::Done;
                }
            }
            SrPhase::Peeling => {
                let mut all_done = true;
                for ci in 0..self.chain_wallets.len().min(3) {
                    if self.report.hops_done[ci] >= self.max_hops {
                        continue;
                    }
                    all_done = false;
                    let w = self.chain_wallets[ci];
                    if let Some(txid) = peel_hop(eco, w, true) {
                        if self.report.hops_done[ci] == 0 {
                            self.report.chain_first_hops.push(txid);
                        }
                        self.report.hops_done[ci] += 1;
                    } else {
                        self.report.hops_done[ci] = self.max_hops; // exhausted
                    }
                }
                if all_done {
                    self.phase = SrPhase::Done;
                }
            }
            SrPhase::Done => {}
        }
    }
}

/// One hop of a peeling chain from `wallet`: peel a small amount to a
/// sampled recipient, remainder to a fresh change address. Returns the hop
/// txid, or `None` when the chain is exhausted.
///
/// Recipient mix (matching Table 2's shape): mostly exchanges (Mt. Gox
/// heaviest), some wallet services, occasional gambling/vendors, and
/// ordinary users.
pub fn peel_hop(eco: &mut Economy, wallet: WalletId, service_heavy: bool) -> Option<Hash256> {
    let balance = eco.wallet(wallet).balance();
    if balance.to_sat() < 1_000_000 {
        return None;
    }
    // Peel 0.5%–2% of the remainder.
    let basis = balance.to_sat();
    let peel = Amount::from_sat((basis / 200).max(200_000) + (basis % 97) * 1_000);
    let peel = peel.min(Amount::from_sat(basis / 10).max(Amount::from_sat(200_000)));

    let owner = eco.wallet(wallet).owner;
    let roll = eco.roll(100);
    let to = if service_heavy {
        // Mix matching Table 2's shape: exchanges dominate the *attributed*
        // peels (Mt. Gox heaviest) but most peels go to unknown users.
        match roll {
            0..=11 => bank_recipient(eco, "Mt. Gox", owner, peel),
            12..=19 => bank_recipient_any(eco, owner, peel),
            20..=24 => bank_recipient(eco, "Instawallet", owner, peel),
            25..=26 => service_recipient(eco, "Satoshi Dice"),
            27..=28 => service_recipient(eco, "Coinabul"),
            29..=30 => service_recipient(eco, "Medsforbitcoin"),
            _ => user_recipient(eco, roll),
        }
    } else {
        match roll {
            0..=14 => bank_recipient_any(eco, owner, peel),
            _ => user_recipient(eco, roll),
        }
    };
    let to = to?;
    eco.pay(wallet, &[(to, peel)], ChangeTarget::Fresh)
}

fn bank_recipient(eco: &mut Economy, name: &str, owner: OwnerId, amount: Amount) -> Option<Address> {
    let si = eco.service_index(name)?;
    eco.bank_deposit_address(si, owner, amount)
}

fn bank_recipient_any(eco: &mut Economy, owner: OwnerId, amount: Amount) -> Option<Address> {
    // Rotate over a fixed set of popular exchanges (Table 2's roster).
    const BANKS: [&str; 8] = [
        "Bitstamp",
        "BTC-e",
        "Bitcoin 24",
        "CA VirtEx",
        "Bitcoin Central",
        "Mercado Bitcoin",
        "OKPay",
        "Bitcoin.de",
    ];
    let i = (eco.current_height() as usize) % BANKS.len();
    let name = BANKS[i];
    // OKPay is a fixed exchange in our roster; fall back to a plain
    // service address when the name is not bank-like.
    let si = eco.service_index(name)?;
    match eco.bank_deposit_address(si, owner, amount) {
        Some(a) => Some(a),
        None => {
            let w = eco.service_wallet(si);
            Some(eco.fresh_address(w))
        }
    }
}

fn service_recipient(eco: &mut Economy, name: &str) -> Option<Address> {
    let si = eco.service_index(name)?;
    let w = eco.service_wallet(si);
    Some(eco.fresh_address(w))
}

fn user_recipient(eco: &mut Economy, salt: usize) -> Option<Address> {
    // A pseudo-random user's receive address; reuse their habits.
    let ui = salt % eco.user_count();
    Some(eco.user_receive_address(ui))
}

impl TheftScript {
    #[allow(clippy::too_many_arguments)]
    fn new(
        name: &'static str,
        victim: &'static str,
        steal_frac: f64,
        take_frac: f64,
        dormancy: u64,
        movements: Vec<Movement>,
        expect_exchange: bool,
        mostly_dormant: bool,
    ) -> TheftScript {
        TheftScript {
            name,
            victim,
            steal_frac,
            take_frac,
            dormancy,
            movements,
            expect_exchange,
            mostly_dormant,
            thief: None,
            stage: 0,
            peel_hops_left: 0,
            started_moving: false,
            done: false,
            theft_txids: Vec::new(),
            loot_addresses: Vec::new(),
            stolen: Amount::ZERO,
            theft_height: 0,
        }
    }

    fn pattern_string(&self) -> String {
        self.movements
            .iter()
            .map(|m| m.letter())
            .collect::<Vec<_>>()
            .join("/")
    }

    fn report(&self) -> Option<TheftReport> {
        let (owner, _) = self.thief?;
        Some(TheftReport {
            name: self.name.to_string(),
            victim: self.victim.to_string(),
            stolen: self.stolen,
            theft_height: self.theft_height,
            theft_txids: self.theft_txids.clone(),
            loot_addresses: self.loot_addresses.clone(),
            thief_owner: owner,
            pattern: self.pattern_string(),
            expect_exchange: self.expect_exchange,
        })
    }

    fn step(&mut self, eco: &mut Economy, total_blocks: u64) {
        if self.done {
            return;
        }
        let h = eco.current_height();
        let steal_at = (total_blocks as f64 * self.steal_frac) as u64;

        // Phase 0: the hack.
        if self.thief.is_none() {
            if h < steal_at {
                return;
            }
            let (owner, wallet) = eco.new_actor(&format!("thief-{}", self.name), Category::Thief);
            self.thief = Some((owner, wallet));
            self.theft_height = h;

            if self.mostly_dormant {
                // Trojan: steal small amounts from many users directly.
                let mut total = Amount::ZERO;
                let loot_addr = eco.fresh_address(wallet);
                self.loot_addresses.push(loot_addr);
                for ui in 0..eco.user_count().min(12) {
                    let uw = eco.user_wallet_id(ui);
                    let bal = eco.wallet(uw).balance();
                    if bal.to_sat() < 50_000_000 {
                        continue;
                    }
                    let amt = Amount::from_sat(bal.to_sat() / 3);
                    if let Some(txid) = eco.pay(uw, &[(loot_addr, amt)], ChangeTarget::Fresh) {
                        total = total.checked_add(amt).unwrap();
                        self.theft_txids.push(txid);
                    }
                }
                self.stolen = total;
            } else {
                let vi = eco.service_index(self.victim).unwrap_or(0);
                let vw = eco.service_wallet(vi);
                let bal = eco.wallet(vw).balance();
                let amt = Amount::from_sat((bal.to_sat() as f64 * self.take_frac) as u64);
                if amt.to_sat() < 1_000_000 {
                    // Victim too poor this block; retry later.
                    self.thief = None;
                    return;
                }
                // Loot lands across three thief addresses (hot-wallet
                // drains hit several addresses), so aggregations later are
                // true multi-input movements.
                let loot_addr = eco.fresh_address(wallet);
                let loot2 = eco.fresh_address(wallet);
                let loot3 = eco.fresh_address(wallet);
                self.loot_addresses.extend([loot_addr, loot2, loot3]);
                let third = Amount::from_sat(amt.to_sat() / 3);
                let rest = amt.checked_sub(third).unwrap().checked_sub(third).unwrap();
                let Some(txid) = eco.pay(
                    vw,
                    &[(loot_addr, rest), (loot2, third), (loot3, third)],
                    ChangeTarget::Fresh,
                ) else {
                    self.thief = None;
                    return;
                };
                self.theft_txids.push(txid);
                self.stolen = amt;
            }
            return;
        }

        // Dormancy.
        if !self.started_moving {
            if h < self.theft_height + self.dormancy {
                return;
            }
            self.started_moving = true;
        }

        // Trojan: most of the loot never moves — stop after the first fold.
        let (_, wallet) = self.thief.unwrap();
        if self.stage >= self.movements.len() {
            self.done = true;
            return;
        }
        match self.movements[self.stage] {
            Movement::Aggregate => {
                let to = eco.fresh_address(wallet);
                eco.aggregate(wallet, 2, 64, to);
                self.stage += 1;
            }
            Movement::Fold => {
                // Acquire small clean side funds, then aggregate them with
                // part of the loot ("addresses not clearly associated with
                // the theft").
                for k in 0..2 {
                    let ui = (10 + k) % eco.user_count();
                    let uw = eco.user_wallet_id(ui);
                    let side = eco.fresh_address(wallet);
                    if eco.wallet(uw).balance().to_sat() > 100_000_000 {
                        eco.pay(uw, &[(side, Amount::from_sat(30_000_000))],
                            ChangeTarget::Fresh);
                    }
                }
                let to = eco.fresh_address(wallet);
                eco.aggregate(wallet, 2, 6, to);
                if self.mostly_dormant {
                    // The trojan folds only this slice; the rest sits
                    // ("2,857 of 3,257 BTC never moved").
                    self.stage = self.movements.len(); // stop here
                } else {
                    self.stage += 1;
                }
            }
            Movement::Split => {
                eco.split(wallet, 3);
                self.stage += 1;
            }
            Movement::Peel(hops) => {
                if self.peel_hops_left == 0 {
                    self.peel_hops_left = hops;
                }
                let heavy = self.expect_exchange;
                if peel_hop(eco, wallet, heavy).is_none() {
                    self.peel_hops_left = 1; // chain exhausted
                }
                self.peel_hops_left -= 1;
                if self.peel_hops_left == 0 {
                    self.stage += 1;
                }
            }
        }
    }
}

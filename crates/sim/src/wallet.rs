//! Simulated wallets: UTXO tracking, coin selection and change policy.

use crate::entity::OwnerId;
use fistful_chain::address::Address;
use fistful_chain::amount::Amount;
use fistful_chain::transaction::OutPoint;

/// How a wallet handles change.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ChangePolicy {
    /// A fresh, internal, never-re-used change address — the client idiom
    /// Heuristic 2 targets.
    Fresh,
    /// Change back to the first input address (the paper's "self-change",
    /// 23% of 2013 transactions).
    SelfChange,
}

/// An unspent output a wallet controls.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OwnedUtxo {
    /// The outpoint.
    pub outpoint: OutPoint,
    /// The value.
    pub value: Amount,
    /// The receiving address (one of the wallet's).
    pub address: Address,
}

/// A wallet: a set of spendable outputs plus key-derivation state.
///
/// Wallets are deliberately dumb; the engine (which owns the RNG, ground
/// truth and address routing) drives them.
#[derive(Debug, Clone)]
pub struct SimWallet {
    /// The ground-truth owner.
    pub owner: OwnerId,
    /// Next key-derivation index.
    next_key: u64,
    /// Spendable outputs.
    utxos: Vec<OwnedUtxo>,
    /// The last change address handed out (for modelling sloppy reuse).
    pub last_change: Option<Address>,
    /// A stable receiving address for owners that reuse one.
    pub reused_receive: Option<Address>,
}

impl SimWallet {
    /// An empty wallet for `owner`.
    pub fn new(owner: OwnerId) -> SimWallet {
        SimWallet {
            owner,
            next_key: 0,
            utxos: Vec::new(),
            last_change: None,
            reused_receive: None,
        }
    }

    /// Derives the next address (deterministic in owner and index). The
    /// caller must register it with ground truth and routing tables.
    pub fn derive_address(&mut self, wallet_salt: u64) -> Address {
        let a = Address::from_seed2(((self.owner as u64) << 20) | wallet_salt, self.next_key);
        self.next_key += 1;
        a
    }

    /// Total spendable balance.
    pub fn balance(&self) -> Amount {
        self.utxos.iter().map(|u| u.value).sum()
    }

    /// Number of spendable outputs.
    pub fn utxo_count(&self) -> usize {
        self.utxos.len()
    }

    /// Read-only view of the UTXOs.
    pub fn utxos(&self) -> &[OwnedUtxo] {
        &self.utxos
    }

    /// Adds a confirmed (or same-block) output.
    pub fn credit(&mut self, utxo: OwnedUtxo) {
        self.utxos.push(utxo);
    }

    /// Selects outputs worth at least `target`, largest-first (fewest
    /// inputs). Returns `None` if the balance is insufficient; on success
    /// the selected outputs are removed from the wallet.
    pub fn select(&mut self, target: Amount) -> Option<Vec<OwnedUtxo>> {
        if self.balance() < target {
            return None;
        }
        // Largest-first keeps input counts small.
        self.utxos.sort_by_key(|u| std::cmp::Reverse(u.value));
        let mut picked = Vec::new();
        let mut total = Amount::ZERO;
        while total < target {
            let u = self.utxos.remove(0);
            total = total.checked_add(u.value).expect("wallet balance overflow");
            picked.push(u);
        }
        Some(picked)
    }

    /// Removes and returns the single largest output, if any.
    pub fn take_largest(&mut self) -> Option<OwnedUtxo> {
        if self.utxos.is_empty() {
            return None;
        }
        let (i, _) = self
            .utxos
            .iter()
            .enumerate()
            .max_by_key(|(_, u)| u.value)?;
        Some(self.utxos.swap_remove(i))
    }

    /// Removes and returns up to `max` smallest outputs (for consolidation
    /// sweeps). Returns an empty vec if fewer than `min` are available.
    pub fn take_small(&mut self, min: usize, max: usize) -> Vec<OwnedUtxo> {
        if self.utxos.len() < min {
            return Vec::new();
        }
        self.utxos.sort_by_key(|u| u.value);
        let k = max.min(self.utxos.len());
        self.utxos.drain(..k).collect()
    }

    /// Removes and returns every output.
    pub fn take_all(&mut self) -> Vec<OwnedUtxo> {
        std::mem::take(&mut self.utxos)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fistful_crypto::hash::Hash256;

    fn utxo(tag: u8, sat: u64) -> OwnedUtxo {
        OwnedUtxo {
            outpoint: OutPoint { txid: Hash256([tag; 32]), vout: 0 },
            value: Amount::from_sat(sat),
            address: Address::from_seed(tag as u64),
        }
    }

    #[test]
    fn balance_and_credit() {
        let mut w = SimWallet::new(1);
        assert_eq!(w.balance(), Amount::ZERO);
        w.credit(utxo(1, 100));
        w.credit(utxo(2, 250));
        assert_eq!(w.balance(), Amount::from_sat(350));
        assert_eq!(w.utxo_count(), 2);
    }

    #[test]
    fn select_largest_first() {
        let mut w = SimWallet::new(1);
        w.credit(utxo(1, 100));
        w.credit(utxo(2, 500));
        w.credit(utxo(3, 50));
        let picked = w.select(Amount::from_sat(450)).unwrap();
        assert_eq!(picked.len(), 1);
        assert_eq!(picked[0].value, Amount::from_sat(500));
        assert_eq!(w.utxo_count(), 2);
    }

    #[test]
    fn select_insufficient_returns_none_and_keeps_utxos() {
        let mut w = SimWallet::new(1);
        w.credit(utxo(1, 100));
        assert!(w.select(Amount::from_sat(200)).is_none());
        assert_eq!(w.utxo_count(), 1);
    }

    #[test]
    fn select_accumulates_multiple() {
        let mut w = SimWallet::new(1);
        w.credit(utxo(1, 100));
        w.credit(utxo(2, 100));
        w.credit(utxo(3, 100));
        let picked = w.select(Amount::from_sat(250)).unwrap();
        assert_eq!(picked.len(), 3);
        assert_eq!(w.utxo_count(), 0);
    }

    #[test]
    fn take_small_respects_min() {
        let mut w = SimWallet::new(1);
        w.credit(utxo(1, 100));
        assert!(w.take_small(2, 5).is_empty());
        w.credit(utxo(2, 50));
        w.credit(utxo(3, 70));
        let taken = w.take_small(2, 2);
        assert_eq!(taken.len(), 2);
        // Smallest first: 50, 70.
        assert_eq!(taken[0].value, Amount::from_sat(50));
        assert_eq!(w.utxo_count(), 1);
    }

    #[test]
    fn derive_addresses_unique() {
        let mut w = SimWallet::new(7);
        let a = w.derive_address(0);
        let b = w.derive_address(0);
        assert_ne!(a, b);
        let mut w2 = SimWallet::new(8);
        assert_ne!(w2.derive_address(0), a);
    }

    #[test]
    fn take_largest() {
        let mut w = SimWallet::new(1);
        assert!(w.take_largest().is_none());
        w.credit(utxo(1, 10));
        w.credit(utxo(2, 99));
        assert_eq!(w.take_largest().unwrap().value, Amount::from_sat(99));
        assert_eq!(w.utxo_count(), 1);
    }
}

//! A Bitcoin economy simulator with complete ground truth.
//!
//! This crate substitutes for the real 2013 block chain (see DESIGN.md):
//! it drives the service categories of Table 1 — mining pools, wallet
//! services, bank and fixed-rate exchanges, vendors and payment gateways,
//! dice games, mixes, investment schemes — plus ordinary users, through
//! behavioural models that reproduce the *idioms of use* the paper's
//! heuristics exploit:
//!
//! * client-generated one-time change addresses (and 23% self-change);
//! * multi-input consolidation sweeps (Heuristic 1 evidence);
//! * per-account long-lived deposit addresses;
//! * Satoshi-Dice pay-back-to-sender with house self-change;
//! * peeling-chain withdrawals, with occasional sloppy change reuse
//!   (the super-cluster failure mode of §4.2);
//! * the Silk Road `1DkyBEKt` lifecycle (Table 2) and the seven thefts of
//!   Table 3 (aggregation / peeling / split / folding movements).
//!
//! Every address has a ground-truth owner and every transaction's true
//! change output is recorded, so the clustering heuristics can be scored
//! exactly — which the paper itself could not do.
//!
//! # Example
//!
//! ```
//! use fistful_sim::config::SimConfig;
//! use fistful_sim::engine::Economy;
//!
//! let eco = Economy::run(SimConfig::tiny());
//! assert!(eco.chain.resolved().tx_count() > 100);
//! ```

#![warn(missing_docs)]

pub mod config;
pub mod engine;
pub mod entity;
pub mod ground_truth;
pub mod roster;
pub mod scripts;
pub mod tags;
pub mod wallet;

pub use config::SimConfig;
pub use engine::Economy;
pub use entity::{Category, OwnerId, OwnerInfo};
pub use ground_truth::{GroundTruth, GroundTruthIds};
pub use tags::{generate_tags, RawTag, RawTagSource};

//! The economy engine: drives users, services and scripts block by block,
//! producing a validated chain with complete ground truth.

use crate::config::SimConfig;
use crate::entity::{Category, OwnerId};
use crate::ground_truth::GroundTruth;
use crate::roster::{full_roster, KindSpec};
use crate::scripts::{ScriptReport, Scripts};
use crate::wallet::{OwnedUtxo, SimWallet};
use fistful_chain::address::Address;
use fistful_chain::amount::Amount;
use fistful_chain::builder::BlockBuilder;
use fistful_chain::chainstate::ChainState;
use fistful_chain::params::Params;
use fistful_chain::transaction::{OutPoint, Transaction, TxIn, TxOut};
use fistful_crypto::hash::Hash256;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::{HashMap, VecDeque};

/// Index into the engine's wallet table.
pub type WalletId = usize;

/// Outputs below this are folded into the fee instead of creating change.
const DUST: u64 = 5_000;

/// Where a transaction's change should go.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ChangeTarget {
    /// A fresh, never-seen address of the spending wallet (the idiom
    /// Heuristic 2 exploits).
    Fresh,
    /// Back to the first input address (self-change).
    SelfChange,
    /// A specific address (sloppy reuse, scripted behaviour).
    Explicit(Address),
}

/// A pending withdrawal from a bank-like service.
#[derive(Debug, Clone)]
pub struct Withdrawal {
    user: OwnerId,
    amount: Amount,
    due: u64,
    /// Marks researcher withdrawals so their inputs get probe-tagged.
    probe: bool,
}

/// Behavioural state of one service.
pub struct Service {
    /// Ground-truth owner id.
    pub owner: OwnerId,
    /// Display name.
    pub name: String,
    /// Category.
    pub category: Category,
    /// Behaviour-specific state.
    pub kind: Kind,
}

/// Behaviour-specific service state.
pub enum Kind {
    /// Mining pool.
    Pool {
        /// Wallet receiving coinbases.
        wallet: WalletId,
        /// Pool members (paid at payouts).
        members: Vec<OwnerId>,
        /// Relative mining power.
        weight: u32,
        /// Blocks between payout batches.
        payout_every: u64,
    },
    /// Deposit-taking service (exchange / wallet service / casino).
    Bank {
        /// Internally disjoint key groups.
        subwallets: Vec<WalletId>,
        /// Round-robin cursor for assigning new accounts to subwallets.
        rr: usize,
        /// Account balances.
        balances: HashMap<OwnerId, Amount>,
        /// Per-account deposit addresses (the 2013-era idiom: one
        /// long-lived deposit address per account, as Mt. Gox used).
        deposit_addrs: HashMap<OwnerId, Address>,
        /// Pending withdrawals.
        queue: VecDeque<Withdrawal>,
        /// Pending bill payments the service makes on users' behalf:
        /// (account owner, vendor service index, amount, due height).
        bills: VecDeque<(OwnerId, usize, Amount, u64)>,
    },
    /// Fixed-rate exchange: immediate conversions from a pot.
    Fixed {
        /// The working pot.
        wallet: WalletId,
    },
    /// Vendor; `gateway` is the roster index of its payment processor.
    Vendor {
        /// Revenue wallet.
        wallet: WalletId,
        /// Gateway service index, if payments go through one.
        gateway: Option<usize>,
        /// The exchange this vendor settles revenue to (fixed, like a real
        /// merchant's single exchange account).
        settle_bank: usize,
    },
    /// Payment gateway: receives for vendors, settles in batches.
    Gateway {
        /// Float wallet.
        wallet: WalletId,
        /// Vendors settled to (service indices).
        vendors: Vec<usize>,
    },
    /// Dice game with pay-back-to-sender behaviour.
    Dice {
        /// Bankroll wallet.
        wallet: WalletId,
        /// The heavily reused bet-target address.
        bet_address: Address,
        /// Scheduled payouts: (bettor's address, amount, due height, probe).
        pending: Vec<(Address, Amount, u64, bool)>,
    },
    /// Mix / laundry.
    Mix {
        /// Pool wallet.
        wallet: WalletId,
        /// Whether deposits are ever returned.
        honest: bool,
        /// Scheduled payouts: (recipient, amount, due height).
        pending: Vec<(Address, Amount, u64)>,
    },
    /// Ponzi-style investment scheme.
    Investment {
        /// Scheme wallet.
        wallet: WalletId,
        /// Investors and their principal.
        investors: Vec<(OwnerId, Amount)>,
    },
    /// Miscellaneous (donation targets etc.).
    Misc {
        /// Receiving wallet.
        wallet: WalletId,
    },
}

/// Per-user behavioural traits.
#[derive(Debug, Clone, Copy)]
struct UserTraits {
    /// Wallet mints fresh receive addresses (vs reusing one).
    fresh_receive: bool,
    /// This user's client uses self-change rather than fresh change.
    self_change: bool,
    /// This user's wallet sends change to an already-used receive address.
    reuse_change: bool,
}

/// A probe observation: an address positively identified as belonging to a
/// service by transacting with it (§3.1).
#[derive(Debug, Clone)]
pub struct ProbeObservation {
    /// The observed address.
    pub address: Address,
    /// Index into [`Economy::services`].
    pub service: usize,
}

/// The running economy.
pub struct Economy {
    /// Configuration.
    pub cfg: SimConfig,
    rng: StdRng,
    /// The validated chain.
    pub chain: ChainState,
    /// Ground truth.
    pub gt: GroundTruth,
    wallets: Vec<SimWallet>,
    wallet_of_addr: HashMap<Address, WalletId>,
    /// All services, in roster order.
    pub services: Vec<Service>,
    users: Vec<OwnerId>,
    user_wallet: Vec<WalletId>,
    user_traits: Vec<UserTraits>,
    user_banks: Vec<[usize; 2]>,
    pending: Vec<Transaction>,
    pending_fees: Amount,
    height: u64,
    // Cached service-index lists.
    pool_idx: Vec<usize>,
    bank_idx: Vec<usize>,
    dice_idx: Vec<usize>,
    mix_idx: Vec<usize>,
    vendor_idx: Vec<usize>,
    fixed_idx: Vec<usize>,
    invest_idx: Vec<usize>,
    /// The researcher's owner id and wallet (when probing is on).
    pub probe_owner: Option<OwnerId>,
    probe_wallet: Option<WalletId>,
    probe_cursor: usize,
    /// Addresses positively identified by transacting (§3.1).
    pub probe_observations: Vec<ProbeObservation>,
    /// Script (Silk Road / theft) machinery.
    scripts: Option<Scripts>,
    /// Report produced by scripts for the flow experiments.
    pub script_report: ScriptReport,
}

impl Economy {
    /// Builds the economy: roster, users, researcher — no blocks yet.
    pub fn new(cfg: SimConfig) -> Economy {
        let rng = StdRng::seed_from_u64(cfg.seed);
        let mut eco = Economy {
            rng,
            chain: ChainState::new(Params::regtest()),
            gt: GroundTruth::new(),
            wallets: Vec::new(),
            wallet_of_addr: HashMap::new(),
            services: Vec::new(),
            users: Vec::new(),
            user_wallet: Vec::new(),
            user_traits: Vec::new(),
            user_banks: Vec::new(),
            pending: Vec::new(),
            pending_fees: Amount::ZERO,
            height: 0,
            pool_idx: Vec::new(),
            bank_idx: Vec::new(),
            dice_idx: Vec::new(),
            mix_idx: Vec::new(),
            vendor_idx: Vec::new(),
            fixed_idx: Vec::new(),
            invest_idx: Vec::new(),
            probe_owner: None,
            probe_wallet: None,
            probe_cursor: 0,
            probe_observations: Vec::new(),
            scripts: None,
            script_report: ScriptReport::default(),
            cfg,
        };
        eco.setup_services();
        eco.setup_users();
        if eco.cfg.enable_probe {
            eco.setup_probe();
        }
        eco.scripts = Some(Scripts::new(&eco.cfg));
        eco
    }

    /// Runs the configured number of blocks and returns self for analysis.
    pub fn run(cfg: SimConfig) -> Economy {
        let mut eco = Economy::new(cfg);
        for _ in 0..eco.cfg.blocks {
            eco.step_block();
        }
        eco
    }

    // ----- construction helpers -----

    fn new_wallet(&mut self, owner: OwnerId) -> WalletId {
        let id = self.wallets.len();
        self.wallets.push(SimWallet::new(owner));
        id
    }

    fn setup_services(&mut self) {
        let roster = full_roster();
        // Gateways must be resolvable by roster index for vendors.
        let gateway_indices: Vec<usize> = roster
            .iter()
            .enumerate()
            .filter(|(_, s)| matches!(s.kind, KindSpec::Gateway))
            .map(|(i, _)| i)
            .collect();

        for (idx, spec) in roster.iter().enumerate() {
            let owner = self.gt.new_owner(spec.name, spec.category);
            let kind = match spec.kind {
                KindSpec::Pool => {
                    let wallet = self.new_wallet(owner);
                    Kind::Pool {
                        wallet,
                        members: Vec::new(),
                        weight: 1 + (idx as u32 % 5),
                        payout_every: 4 + (idx as u64 % 4),
                    }
                }
                KindSpec::Bank { subwallets } => {
                    let subs = (0..subwallets).map(|_| self.new_wallet(owner)).collect();
                    Kind::Bank {
                        subwallets: subs,
                        rr: 0,
                        balances: HashMap::new(),
                        deposit_addrs: HashMap::new(),
                        queue: VecDeque::new(),
                        bills: VecDeque::new(),
                    }
                }
                KindSpec::FixedExchange => Kind::Fixed { wallet: self.new_wallet(owner) },
                KindSpec::Vendor { uses_gateway } => {
                    let gateway = if uses_gateway && !gateway_indices.is_empty() {
                        Some(gateway_indices[idx % gateway_indices.len()])
                    } else {
                        None
                    };
                    Kind::Vendor { wallet: self.new_wallet(owner), gateway, settle_bank: idx % 7 }
                }
                KindSpec::Gateway => Kind::Gateway { wallet: self.new_wallet(owner), vendors: Vec::new() },
                KindSpec::Dice => {
                    let wallet = self.new_wallet(owner);
                    let bet_address = self.fresh_address(wallet);
                    Kind::Dice { wallet, bet_address, pending: Vec::new() }
                }
                KindSpec::Casino => {
                    let sub = self.new_wallet(owner);
                    Kind::Bank {
                        subwallets: vec![sub],
                        rr: 0,
                        balances: HashMap::new(),
                        deposit_addrs: HashMap::new(),
                        queue: VecDeque::new(),
                        bills: VecDeque::new(),
                    }
                }
                KindSpec::Mix { honest } => Kind::Mix {
                    wallet: self.new_wallet(owner),
                    honest,
                    pending: Vec::new(),
                },
                KindSpec::Investment => Kind::Investment {
                    wallet: self.new_wallet(owner),
                    investors: Vec::new(),
                },
                KindSpec::Misc => Kind::Misc { wallet: self.new_wallet(owner) },
            };
            self.services.push(Service {
                owner,
                name: spec.name.to_string(),
                category: spec.category,
                kind,
            });
        }

        // Wire gateways to the vendors they settle for.
        let vendor_links: Vec<(usize, usize)> = self
            .services
            .iter()
            .enumerate()
            .filter_map(|(i, s)| match s.kind {
                Kind::Vendor { gateway: Some(g), .. } => Some((g, i)),
                _ => None,
            })
            .collect();
        for (g, v) in vendor_links {
            if let Kind::Gateway { vendors, .. } = &mut self.services[g].kind {
                vendors.push(v);
            }
        }

        // Index caches.
        for (i, s) in self.services.iter().enumerate() {
            match s.kind {
                Kind::Pool { .. } => self.pool_idx.push(i),
                Kind::Bank { .. } => self.bank_idx.push(i),
                Kind::Dice { .. } => self.dice_idx.push(i),
                Kind::Mix { .. } => self.mix_idx.push(i),
                Kind::Vendor { .. } => self.vendor_idx.push(i),
                Kind::Fixed { .. } => self.fixed_idx.push(i),
                Kind::Investment { .. } => self.invest_idx.push(i),
                _ => {}
            }
        }
    }

    fn setup_users(&mut self) {
        for i in 0..self.cfg.users {
            let owner = self.gt.new_owner(format!("user-{i}"), Category::User);
            let wallet = self.new_wallet(owner);
            self.users.push(owner);
            self.user_wallet.push(wallet);
            let fresh_receive = self.rng.gen::<f64>() >= self.cfg.reuse_receive_rate;
            let self_change = self.rng.gen::<f64>() < self.cfg.self_change_rate;
            let reuse_change =
                !self_change && self.rng.gen::<f64>() < self.cfg.reuse_change_rate;
            self.user_traits.push(UserTraits { fresh_receive, self_change, reuse_change });
            let b1 = self.pick_bank();
            let b2 = self.pick_bank();
            self.user_banks.push([b1, b2]);
        }
        // Distribute users among pools as members.
        let pool_count = self.pool_idx.len().max(1);
        for (i, &owner) in self.users.iter().enumerate() {
            let p = self.pool_idx[i % pool_count];
            if let Kind::Pool { members, .. } = &mut self.services[p].kind {
                members.push(owner);
            }
        }
    }

    /// Picks a bank with market-share weighting: Mt. Gox dominated the
    /// era's exchange volume, followed by Bitstamp and BTC-e.
    fn pick_bank(&mut self) -> usize {
        let roll = self.rng.gen::<f64>();
        let named = |eco: &Self, name: &str| {
            eco.services.iter().position(|s| s.name == name)
        };
        if roll < 0.35 {
            if let Some(i) = named(self, "Mt. Gox") {
                return i;
            }
        } else if roll < 0.45 {
            if let Some(i) = named(self, "Bitstamp") {
                return i;
            }
        } else if roll < 0.55 {
            if let Some(i) = named(self, "BTC-e") {
                return i;
            }
        }
        self.bank_idx[self.rng.gen_range(0..self.bank_idx.len())]
    }

    fn setup_probe(&mut self) {
        let owner = self.gt.new_owner("researcher", Category::User);
        let wallet = self.new_wallet(owner);
        self.probe_owner = Some(owner);
        self.probe_wallet = Some(wallet);
        // The researcher joins every pool ("we mined with 11 pools").
        for &p in &self.pool_idx.clone() {
            if let Kind::Pool { members, .. } = &mut self.services[p].kind {
                members.push(owner);
            }
        }
    }

    // ----- address & payment primitives -----

    /// Mints a fresh address for `wallet`, registering ownership/routing.
    pub fn fresh_address(&mut self, wallet: WalletId) -> Address {
        let owner = self.wallets[wallet].owner;
        let a = self.wallets[wallet].derive_address(wallet as u64);
        self.gt.register(a, owner);
        self.wallet_of_addr.insert(a, wallet);
        a
    }

    /// The address a wallet hands out for receiving, honouring reuse
    /// habits: `fresh == false` reuses a stable receive address.
    pub fn receive_address(&mut self, wallet: WalletId, fresh: bool) -> Address {
        if !fresh {
            if let Some(a) = self.wallets[wallet].reused_receive {
                return a;
            }
        }
        let a = self.fresh_address(wallet);
        if !fresh {
            self.wallets[wallet].reused_receive = Some(a);
        }
        a
    }

    /// Builds, records and queues a payment from `from`. Returns the txid,
    /// or `None` if the wallet cannot cover `outputs` + fee.
    ///
    /// Outputs are credited to recipient wallets immediately (spending
    /// unconfirmed outputs within the same block is allowed, as in
    /// Bitcoin); the transaction lands in the block under construction.
    pub fn pay(
        &mut self,
        from: WalletId,
        outputs: &[(Address, Amount)],
        change: ChangeTarget,
    ) -> Option<Hash256> {
        let fee = Amount::from_sat(self.cfg.fee_sat);
        let needed = outputs
            .iter()
            .map(|(_, v)| *v)
            .try_fold(fee, |a, v| a.checked_add(v))?;
        let selected = self.wallets[from].select(needed)?;
        let selected_total: Amount = selected.iter().map(|u| u.value).sum();
        let mut change_amt = selected_total
            .checked_sub(needed)
            .expect("selection shortfall");

        let mut outs: Vec<(Address, Amount)> = outputs.to_vec();
        let mut change_vout: Option<usize> = None;
        if change_amt.to_sat() < DUST {
            // Fold dust into the fee.
            change_amt = Amount::ZERO;
        }
        if change_amt > Amount::ZERO {
            let change_addr = match change {
                ChangeTarget::Fresh => self.fresh_address(from),
                ChangeTarget::SelfChange => selected[0].address,
                ChangeTarget::Explicit(a) => a,
            };
            // Clients of the era placed change at a random output position.
            let pos = self.rng.gen_range(0..=outs.len());
            outs.insert(pos, (change_addr, change_amt));
            change_vout = Some(pos);
            self.wallets[from].last_change = Some(change_addr);
        }

        let tx = Transaction {
            version: 1,
            inputs: selected
                .iter()
                .map(|u| TxIn::unsigned(u.outpoint))
                .collect(),
            outputs: outs
                .iter()
                .map(|&(address, value)| TxOut { value, address })
                .collect(),
            lock_time: 0,
        };
        let txid = tx.txid();

        // Ground truth + credit recipients (0-conf).
        if let Some(v) = change_vout {
            self.gt.note_change(txid, v as u32);
        }
        for (vout, &(address, value)) in outs.iter().enumerate() {
            let Some(&w) = self.wallet_of_addr.get(&address) else {
                continue;
            };
            self.wallets[w].credit(OwnedUtxo {
                outpoint: OutPoint { txid, vout: vout as u32 },
                value,
                address,
            });
        }

        self.pending_fees = self
            .pending_fees
            .checked_add(selected_total.checked_sub(outs.iter().map(|o| o.1).sum()).unwrap())
            .unwrap();
        self.pending.push(tx);
        Some(txid)
    }

    /// Aggregates up to `max_inputs` of `from`'s smallest outputs into a
    /// single destination address (no change). Returns the txid if at least
    /// `min_inputs` outputs were available.
    pub fn aggregate(
        &mut self,
        from: WalletId,
        min_inputs: usize,
        max_inputs: usize,
        to: Address,
    ) -> Option<Hash256> {
        let taken = self.wallets[from].take_small(min_inputs, max_inputs);
        if taken.is_empty() {
            return None;
        }
        let total: Amount = taken.iter().map(|u| u.value).sum();
        let fee = Amount::from_sat(self.cfg.fee_sat.min(total.to_sat() / 2));
        let value = total.checked_sub(fee).unwrap();
        let tx = Transaction {
            version: 1,
            inputs: taken.iter().map(|u| TxIn::unsigned(u.outpoint)).collect(),
            outputs: vec![TxOut { value, address: to }],
            lock_time: 0,
        };
        let txid = tx.txid();
        // A self-sweep's output is ground-truth "change": it stays with the
        // owner of the inputs (vault consolidations, loot aggregation).
        let from_owner = self.wallets[from].owner;
        if self.gt.owner_of(&to) == Some(from_owner) {
            self.gt.note_change(txid, 0);
        }
        if let Some(&w) = self.wallet_of_addr.get(&to) {
            self.wallets[w].credit(OwnedUtxo {
                outpoint: OutPoint { txid, vout: 0 },
                value,
                address: to,
            });
        }
        self.pending_fees = self.pending_fees.checked_add(fee).unwrap();
        self.pending.push(tx);
        Some(txid)
    }

    // ----- block production -----

    /// Runs one block: users act, services process, scripts advance, the
    /// block is mined and accepted.
    pub fn step_block(&mut self) {
        self.step_users();
        self.step_services();
        if self.cfg.enable_probe {
            self.step_probe();
        }
        // Scripts are taken out to allow &mut Economy access.
        if let Some(mut scripts) = self.scripts.take() {
            scripts.step(self);
            self.scripts = Some(scripts);
        }
        self.finish_block();
    }

    fn finish_block(&mut self) {
        let height = self.chain.next_height();
        let reward = self
            .chain
            .next_subsidy()
            .checked_add(self.pending_fees)
            .unwrap();

        // Choose the miner: early blocks are seeded round-robin to services
        // that need working capital (dice, mixes, fixed exchanges, misc,
        // investment) and the researcher; afterwards, weighted pools.
        let coinbase_wallet = self.choose_miner(height);
        let coinbase_addr = self.fresh_address(coinbase_wallet);

        let txs = std::mem::take(&mut self.pending);
        let block = BlockBuilder::new(&Params::regtest())
            .coinbase_to(coinbase_addr, height, reward)
            .txs(txs)
            .build_on(&self.chain);
        let cb_txid = block.transactions[0].txid();

        self.chain
            .accept_block(block)
            .unwrap_or_else(|e| panic!("engine produced invalid block at {height}: {e}"));

        self.wallets[coinbase_wallet].credit(OwnedUtxo {
            outpoint: OutPoint { txid: cb_txid, vout: 0 },
            value: reward,
            address: coinbase_addr,
        });
        self.pending_fees = Amount::ZERO;
        self.height = self.chain.next_height();
    }

    fn choose_miner(&mut self, height: u64) -> WalletId {
        // Seed round: dice/mix/fixed/invest/misc services and the
        // researcher each mine a couple of early blocks.
        let mut seed_wallets: Vec<WalletId> = Vec::new();
        for s in &self.services {
            match s.kind {
                Kind::Dice { wallet, .. }
                | Kind::Mix { wallet, .. }
                | Kind::Fixed { wallet }
                | Kind::Investment { wallet, .. }
                | Kind::Misc { wallet } => seed_wallets.push(wallet),
                _ => {}
            }
        }
        if let Some(w) = self.probe_wallet {
            seed_wallets.push(w);
            seed_wallets.push(w); // "we mined with an AMD Radeon HD 7970"
        }
        let seed_rounds = seed_wallets.len() as u64 * 2;
        if height < seed_rounds {
            return seed_wallets[(height % seed_wallets.len() as u64) as usize];
        }

        // Weighted pool choice.
        let total: u32 = self
            .pool_idx
            .iter()
            .map(|&p| match self.services[p].kind {
                Kind::Pool { weight, .. } => weight,
                _ => 0,
            })
            .sum();
        let mut pick = self.rng.gen_range(0..total.max(1));
        for &p in &self.pool_idx {
            if let Kind::Pool { weight, wallet, .. } = self.services[p].kind {
                if pick < weight {
                    return wallet;
                }
                pick -= weight;
            }
        }
        unreachable!("weighted choice exhausted");
    }

    // ----- user behaviour -----

    fn user_change(&mut self, ui: usize) -> ChangeTarget {
        if self.user_traits[ui].self_change {
            ChangeTarget::SelfChange
        } else if self.user_traits[ui].reuse_change {
            // Change parked on the wallet's (already-seen) receive address.
            let w = self.user_wallet[ui];
            let a = self.receive_address(w, false);
            ChangeTarget::Explicit(a)
        } else {
            ChangeTarget::Fresh
        }
    }

    fn step_users(&mut self) {
        let n = self.users.len();
        for ui in 0..n {
            if self.rng.gen::<f64>() >= self.cfg.user_activity {
                continue;
            }
            let wallet = self.user_wallet[ui];
            let balance = self.wallets[wallet].balance();
            if balance.to_sat() < 2_000_000 {
                continue; // below 0.02 BTC, sit tight
            }
            let roll = self.rng.gen::<f64>();
            let dice_w = self.cfg.dice_weight;
            if roll < dice_w {
                self.user_bet(ui, false);
            } else if roll < dice_w + 0.20 {
                self.user_p2p(ui);
            } else if roll < dice_w + 0.32 {
                self.user_deposit(ui, false);
            } else if roll < dice_w + 0.42 {
                self.user_withdraw(ui, false);
            } else if roll < dice_w + 0.52 {
                self.user_purchase(ui, false);
            } else if roll < dice_w + 0.56 {
                self.user_mix(ui);
            } else if roll < dice_w + 0.59 {
                self.user_invest(ui);
            } else if roll < dice_w + 0.62 {
                self.user_fixed_cashout(ui);
            } else if roll < dice_w + 0.62 + self.cfg.bill_pay_weight {
                self.user_bill_pay(ui);
            }
            // otherwise: hodl this block
        }
    }

    fn rand_amount(&mut self, lo_sat: u64, hi_sat: u64, cap: Amount) -> Amount {
        let hi = hi_sat.min(cap.to_sat());
        if hi <= lo_sat {
            return Amount::from_sat(hi.max(1));
        }
        Amount::from_sat(self.rng.gen_range(lo_sat..hi))
    }

    fn user_bet(&mut self, ui: usize, probe: bool) {
        if self.dice_idx.is_empty() {
            return;
        }
        let wallet = if probe { self.probe_wallet.unwrap() } else { self.user_wallet[ui] };
        let d = self.dice_idx[self.rng.gen_range(0..self.dice_idx.len())];
        let balance = self.wallets[wallet].balance();
        let amount = self.rand_amount(1_000_000, 100_000_000, balance / 3);
        let (bet_address, service_owner_wallet) = match &self.services[d].kind {
            Kind::Dice { bet_address, wallet, .. } => (*bet_address, *wallet),
            Kind::Bank { subwallets, .. } => {
                // Casinos take deposits instead of instant bets.
                let _ = subwallets;
                let owner = self.services[d].owner;
                let _ = owner;
                return self.user_deposit_into(ui, d, probe);
            }
            _ => return,
        };
        let _ = service_owner_wallet;
        let change = if probe { ChangeTarget::Fresh } else { self.user_change(ui) };
        // Remember which address "sent" the bet: the first selected input.
        // We must know it to pay winnings back; peek by doing the payment
        // and reading the transaction we just queued.
        let before = self.pending.len();
        let Some(_txid) = self.pay(wallet, &[(bet_address, amount)], change) else {
            return;
        };
        let bettor_addr = {
            let tx = &self.pending[before];
            // First input's address: recover via ground truth routing.
            let op = tx.inputs[0].prevout;
            // The spent output's address: search the wallet? Simpler: the
            // engine recorded it pre-selection; recover from chain's utxo
            // view is gone (0-conf). Track via outpoint→address map.
            self.outpoint_addr(&op)
        };
        let Some(bettor_addr) = bettor_addr else { return };
        // Schedule the payout: SatoshiDice paid even losers a token amount.
        let win = self.rng.gen::<f64>() < 0.485;
        let payout = if win {
            Amount::from_sat((amount.to_sat() as f64 * 1.92) as u64)
        } else {
            Amount::from_sat((amount.to_sat() / 200).max(DUST * 2))
        };
        let due = self.height + 1;
        if let Kind::Dice { pending, .. } = &mut self.services[d].kind {
            pending.push((bettor_addr, payout, due, probe));
        }
    }

    /// The address that a queued (not yet mined) or mined outpoint pays to.
    fn outpoint_addr(&self, op: &OutPoint) -> Option<Address> {
        // Check the chain first, then the pending set.
        if let Some(entry) = self.chain.utxos().get(op) {
            return Some(entry.address);
        }
        for tx in &self.pending {
            if tx.txid() == op.txid {
                return tx.outputs.get(op.vout as usize).map(|o| o.address);
            }
        }
        // Spent outputs: look in the resolved view.
        let (_, rtx) = self.chain.resolved().tx_by_txid(&op.txid)?;
        let out = rtx.outputs.get(op.vout as usize)?;
        Some(self.chain.resolved().address(out.address))
    }

    fn user_p2p(&mut self, ui: usize) {
        let n = self.users.len();
        if n < 2 {
            return;
        }
        let mut vi = self.rng.gen_range(0..n);
        if vi == ui {
            vi = (vi + 1) % n;
        }
        let to_wallet = self.user_wallet[vi];
        let fresh = self.user_traits[vi].fresh_receive;
        let to = self.receive_address(to_wallet, fresh);
        let wallet = self.user_wallet[ui];
        let balance = self.wallets[wallet].balance();
        let amount = self.rand_amount(5_000_000, 500_000_000, balance / 2);
        let change = self.user_change(ui);
        self.pay(wallet, &[(to, amount)], change);
    }

    fn user_deposit(&mut self, ui: usize, probe: bool) {
        if self.bank_idx.is_empty() {
            return;
        }
        let b = if probe {
            self.bank_idx[self.rng.gen_range(0..self.bank_idx.len())]
        } else {
            self.user_banks[ui][self.rng.gen_range(0..2)]
        };
        self.user_deposit_into(ui, b, probe);
    }

    fn user_deposit_into(&mut self, ui: usize, b: usize, probe: bool) {
        let (wallet, owner) = if probe {
            (self.probe_wallet.unwrap(), self.probe_owner.unwrap())
        } else {
            (self.user_wallet[ui], self.users[ui])
        };
        let balance = self.wallets[wallet].balance();
        let amount = self.rand_amount(10_000_000, 2_000_000_000, balance / 2);
        let Some(deposit_addr) = self.bank_deposit_address(b, owner, amount) else {
            return;
        };
        let change = if probe { ChangeTarget::Fresh } else { self.user_change(ui) };
        if self.pay(wallet, &[(deposit_addr, amount)], change).is_none() {
            // Roll the account credit back; the wallet couldn't cover it.
            if let Kind::Bank { balances, .. } = &mut self.services[b].kind {
                if let Some(bal) = balances.get_mut(&owner) {
                    *bal = bal.saturating_sub(amount);
                }
            }
        } else if probe {
            self.probe_observations.push(ProbeObservation { address: deposit_addr, service: b });
        }
    }

    fn user_withdraw(&mut self, ui: usize, probe: bool) {
        let owner = if probe { self.probe_owner.unwrap() } else { self.users[ui] };
        let height = self.height;
        let mut rng_amt = None;
        let mut candidates: Vec<usize> = Vec::new();
        for &b in &self.bank_idx {
            if let Kind::Bank { balances, .. } = &self.services[b].kind {
                if balances.get(&owner).copied().unwrap_or(Amount::ZERO).to_sat() > DUST * 10 {
                    candidates.push(b);
                }
            }
        }
        if candidates.is_empty() {
            return;
        }
        let b = candidates[self.rng.gen_range(0..candidates.len())];
        if let Kind::Bank { balances, queue, .. } = &mut self.services[b].kind {
            let bal = balances[&owner];
            let amount = Amount::from_sat(bal.to_sat() / 2).max(Amount::from_sat(DUST * 10));
            rng_amt = Some(amount);
            *balances.get_mut(&owner).unwrap() = bal.saturating_sub(amount);
            queue.push_back(Withdrawal { user: owner, amount, due: height + 1, probe });
        }
        let _ = rng_amt;
    }

    fn user_purchase(&mut self, ui: usize, probe: bool) {
        if self.vendor_idx.is_empty() {
            return;
        }
        let v = self.vendor_idx[self.rng.gen_range(0..self.vendor_idx.len())];
        let wallet = if probe { self.probe_wallet.unwrap() } else { self.user_wallet[ui] };
        let balance = self.wallets[wallet].balance();
        let amount = self.rand_amount(5_000_000, 300_000_000, balance / 2);
        // Payment goes to the vendor or to its gateway.
        let (pay_service, pay_wallet) = match self.services[v].kind {
            Kind::Vendor { wallet: vw, gateway: Some(g), .. } => {
                let _ = vw;
                match self.services[g].kind {
                    Kind::Gateway { wallet: gw, .. } => (g, gw),
                    _ => (v, vw),
                }
            }
            Kind::Vendor { wallet: vw, gateway: None, .. } => (v, vw),
            _ => return,
        };
        let to = self.fresh_address(pay_wallet);
        let change = if probe { ChangeTarget::Fresh } else { self.user_change(ui) };
        if self.pay(wallet, &[(to, amount)], change).is_some() && probe {
            self.probe_observations.push(ProbeObservation { address: to, service: pay_service });
        }
    }

    fn user_mix(&mut self, ui: usize) {
        if self.mix_idx.is_empty() {
            return;
        }
        let m = self.mix_idx[self.rng.gen_range(0..self.mix_idx.len())];
        let wallet = self.user_wallet[ui];
        let balance = self.wallets[wallet].balance();
        let amount = self.rand_amount(20_000_000, 1_000_000_000, balance / 2);
        let (mix_wallet, honest) = match self.services[m].kind {
            Kind::Mix { wallet, honest, .. } => (wallet, honest),
            _ => return,
        };
        let to = self.fresh_address(mix_wallet);
        let change = self.user_change(ui);
        if self.pay(wallet, &[(to, amount)], change).is_some() && honest {
            let back = self.fresh_address(wallet);
            let due = self.height + self.rng.gen_range(3..10);
            let out = Amount::from_sat(amount.to_sat() * 97 / 100);
            if let Kind::Mix { pending, .. } = &mut self.services[m].kind {
                pending.push((back, out, due));
            }
        }
        // Dishonest mixes (BitMix) simply keep the coins.
    }

    fn user_invest(&mut self, ui: usize) {
        if self.invest_idx.is_empty() {
            return;
        }
        let s = self.invest_idx[self.rng.gen_range(0..self.invest_idx.len())];
        let wallet = self.user_wallet[ui];
        let balance = self.wallets[wallet].balance();
        let amount = self.rand_amount(50_000_000, 2_000_000_000, balance / 2);
        let (inv_wallet, owner) = match self.services[s].kind {
            Kind::Investment { wallet, .. } => (wallet, self.users[ui]),
            _ => return,
        };
        let to = self.fresh_address(inv_wallet);
        let change = self.user_change(ui);
        if self.pay(wallet, &[(to, amount)], change).is_some() {
            if let Kind::Investment { investors, .. } = &mut self.services[s].kind {
                investors.push((owner, amount));
            }
        }
    }

    /// Asks a wallet service to pay a vendor from the user's account (the
    /// service spends its own coins on the user's behalf).
    fn user_bill_pay(&mut self, ui: usize) {
        if self.bank_idx.is_empty() || self.vendor_idx.is_empty() {
            return;
        }
        let owner = self.users[ui];
        let height = self.height;
        let mut candidates: Vec<usize> = Vec::new();
        for &b in &self.bank_idx {
            if let Kind::Bank { balances, .. } = &self.services[b].kind {
                if balances.get(&owner).copied().unwrap_or(Amount::ZERO).to_sat() > 50_000_000 {
                    candidates.push(b);
                }
            }
        }
        if candidates.is_empty() {
            return;
        }
        let b = candidates[self.rng.gen_range(0..candidates.len())];
        let v = self.vendor_idx[self.rng.gen_range(0..self.vendor_idx.len())];
        if let Kind::Bank { balances, bills, .. } = &mut self.services[b].kind {
            let bal = balances[&owner];
            let amount = Amount::from_sat((bal.to_sat() / 3).clamp(10_000_000, 500_000_000));
            if bal < amount {
                return;
            }
            *balances.get_mut(&owner).unwrap() = bal.saturating_sub(amount);
            bills.push_back((owner, v, amount, height + 1));
        }
    }

    fn user_fixed_cashout(&mut self, ui: usize) {
        if self.fixed_idx.is_empty() {
            return;
        }
        let f = self.fixed_idx[self.rng.gen_range(0..self.fixed_idx.len())];
        let wallet = self.user_wallet[ui];
        let balance = self.wallets[wallet].balance();
        let amount = self.rand_amount(10_000_000, 1_000_000_000, balance / 2);
        let fw = match self.services[f].kind {
            Kind::Fixed { wallet } => wallet,
            _ => return,
        };
        let to = self.fresh_address(fw);
        let change = self.user_change(ui);
        self.pay(wallet, &[(to, amount)], change);
    }

    // ----- service behaviour -----

    fn step_services(&mut self) {
        let height = self.height;
        for si in 0..self.services.len() {
            match &self.services[si].kind {
                Kind::Pool { .. } => self.step_pool(si, height),
                Kind::Bank { .. } => self.step_bank(si, height),
                Kind::Dice { .. } => self.step_dice(si, height),
                Kind::Mix { .. } => self.step_mix(si, height),
                Kind::Gateway { .. } => self.step_gateway(si, height),
                Kind::Vendor { .. } => self.step_vendor(si, height),
                Kind::Investment { .. } => self.step_investment(si, height),
                Kind::Fixed { .. } | Kind::Misc { .. } => {}
            }
        }
    }

    fn step_pool(&mut self, si: usize, height: u64) {
        let (wallet, members, payout_every) = match &self.services[si].kind {
            Kind::Pool { wallet, members, payout_every, .. } => {
                (*wallet, members.clone(), *payout_every)
            }
            _ => unreachable!(),
        };
        if members.is_empty() || height % payout_every != si as u64 % payout_every {
            return;
        }
        let balance = self.wallets[wallet].balance();
        if balance.to_sat() < 1_000_000_000 {
            return; // accumulate at least 10 BTC before paying out
        }
        // Sweep accumulated coinbases together first (Heuristic 1 links
        // the pool's reward addresses).
        if self.wallets[wallet].utxo_count() >= 2 {
            let staging = self.fresh_address(wallet);
            self.aggregate(wallet, 2, 48, staging);
        }
        // Pay a batch of members proportional shares (one multi-output tx —
        // the pool-payout idiom the paper calls out for Heuristic 2's
        // predecessor work).
        let distributable = Amount::from_sat(balance.to_sat() * 8 / 10);
        let k = members.len().min(12);
        let share = distributable / (k as u64);
        if share.to_sat() < DUST * 4 {
            return;
        }
        let mut outs = Vec::with_capacity(k);
        let start = self.rng.gen_range(0..members.len());
        let probe_owner = self.probe_owner;
        let mut probe_in_batch = false;
        for j in 0..k {
            let m = members[(start + j) % members.len()];
            if Some(m) == probe_owner {
                probe_in_batch = true;
            }
            let to = self.owner_receive_address(m);
            outs.push((to, share));
        }
        let before = self.pending.len();
        if self.pay(wallet, &outs, ChangeTarget::Fresh).is_some() && probe_in_batch {
            // "For each payout transaction, we labeled the input addresses
            // as belonging to the pool."
            let inputs: Vec<OutPoint> =
                self.pending[before].inputs.iter().map(|i| i.prevout).collect();
            for op in inputs {
                if let Some(addr) = self.outpoint_addr(&op) {
                    self.probe_observations.push(ProbeObservation { address: addr, service: si });
                }
            }
        }
    }

    /// A receive address for any owner, honouring user reuse habits
    /// (services and the researcher always hand out fresh addresses).
    fn owner_receive_address(&mut self, owner: OwnerId) -> Address {
        if let Some(pos) = self.users.iter().position(|&u| u == owner) {
            return self.user_receive_address(pos);
        }
        let w = self.wallet_of_owner(owner);
        self.fresh_address(w)
    }

    fn wallet_of_owner(&self, owner: OwnerId) -> WalletId {
        if Some(owner) == self.probe_owner {
            return self.probe_wallet.unwrap();
        }
        // Users are created contiguously; services store their own wallets.
        if let Some(pos) = self.users.iter().position(|&u| u == owner) {
            return self.user_wallet[pos];
        }
        // Fall back to a service's first wallet.
        for s in &self.services {
            if s.owner == owner {
                return match &s.kind {
                    Kind::Pool { wallet, .. }
                    | Kind::Fixed { wallet }
                    | Kind::Vendor { wallet, .. }
                    | Kind::Gateway { wallet, .. }
                    | Kind::Dice { wallet, .. }
                    | Kind::Mix { wallet, .. }
                    | Kind::Investment { wallet, .. }
                    | Kind::Misc { wallet } => *wallet,
                    Kind::Bank { subwallets, .. } => subwallets[0],
                };
            }
        }
        panic!("unknown owner {owner}");
    }

    fn step_bank(&mut self, si: usize, height: u64) {
        // 1. Consolidation sweeps: each subwallet with many small outputs
        //    aggregates them (Heuristic 1 evidence linking deposit addrs).
        let subwallets = match &self.services[si].kind {
            Kind::Bank { subwallets, .. } => subwallets.clone(),
            _ => unreachable!(),
        };
        // Busy exchanges swept continuously; sweep whenever a few outputs
        // have accumulated so deposits join the hot-wallet cluster quickly.
        for &sub in &subwallets {
            if self.wallets[sub].utxo_count() >= 3 {
                let vault = self.fresh_address(sub);
                self.aggregate(sub, 2, 64, vault);
            }
        }

        // 2. Bill payments: the service pays a vendor's fresh invoice
        //    address from its own coins. Combined with sloppy change reuse
        //    this is the §4.2 super-cluster mechanism: the fresh invoice
        //    address gets mislabelled as the service's change.
        loop {
            let job = match &mut self.services[si].kind {
                Kind::Bank { bills, .. } => {
                    if bills.front().map(|b| b.3 <= height).unwrap_or(false) {
                        bills.pop_front()
                    } else {
                        None
                    }
                }
                _ => None,
            };
            let Some((_owner, vendor_si, amount, _)) = job else { break };
            let invoice = {
                let (pay_si, pay_wallet) = match self.services[vendor_si].kind {
                    Kind::Vendor { wallet: vw, gateway: Some(g), .. } => match self.services[g].kind {
                        Kind::Gateway { wallet: gw, .. } => (g, gw),
                        _ => (vendor_si, vw),
                    },
                    Kind::Vendor { wallet: vw, gateway: None, .. } => (vendor_si, vw),
                    _ => break,
                };
                let _ = pay_si;
                self.fresh_address(pay_wallet)
            };
            let sub = subwallets[self.rng.gen_range(0..subwallets.len())];
            let sloppy = self.rng.gen::<f64>() < self.cfg.service_sloppy_change_rate;
            let change = match (sloppy, self.wallets[sub].last_change) {
                (true, Some(prev)) => ChangeTarget::Explicit(prev),
                _ => ChangeTarget::Fresh,
            };
            self.pay(sub, &[(invoice, amount)], change);
        }

        // 3. Withdrawals due this block, paid as peels off the subwallet's
        //    largest output: [user, change]. Sloppy processors occasionally
        //    reuse the previous change address — the super-cluster source.
        loop {
            let job = match &mut self.services[si].kind {
                Kind::Bank { queue, .. } => {
                    if queue.front().map(|w| w.due <= height).unwrap_or(false) {
                        queue.pop_front()
                    } else {
                        None
                    }
                }
                _ => None,
            };
            let Some(job) = job else { break };
            let sub = subwallets[self.rng.gen_range(0..subwallets.len())];
            let to = self.owner_receive_address(job.user);
            let sloppy = self.rng.gen::<f64>() < self.cfg.service_sloppy_change_rate;
            let change = match (sloppy, self.wallets[sub].last_change) {
                (true, Some(prev)) => ChangeTarget::Explicit(prev),
                _ => ChangeTarget::Fresh,
            };
            let before = self.pending.len();
            if self.pay(sub, &[(to, job.amount)], change).is_some() && job.probe {
                // Withdrawal observed: the inputs belong to the service,
                // and so does the non-researcher output (its change).
                let inputs: Vec<OutPoint> =
                    self.pending[before].inputs.iter().map(|i| i.prevout).collect();
                for op in inputs {
                    if let Some(addr) = self.outpoint_addr(&op) {
                        self.probe_observations.push(ProbeObservation { address: addr, service: si });
                    }
                }
                let change_addrs: Vec<Address> = self.pending[before]
                    .outputs
                    .iter()
                    .map(|o| o.address)
                    .filter(|a| *a != to)
                    .collect();
                for addr in change_addrs {
                    self.probe_observations.push(ProbeObservation { address: addr, service: si });
                }
            }
        }
    }

    fn step_dice(&mut self, si: usize, height: u64) {
        let (wallet, due): (WalletId, Vec<(Address, Amount, u64, bool)>) =
            match &mut self.services[si].kind {
                Kind::Dice { wallet, pending, .. } => {
                    let w = *wallet;
                    let (ready, later): (Vec<_>, Vec<_>) =
                        pending.drain(..).partition(|(_, _, d, _)| *d <= height);
                    *pending = later;
                    (w, ready)
                }
                _ => unreachable!(),
            };
        for (bettor, amount, _, probe) in due {
            // Payout straight back to the bettor's sending address, change
            // back to the house's own (input) address — Satoshi Dice's
            // self-change idiom.
            let before = self.pending.len();
            if self.pay(wallet, &[(bettor, amount)], ChangeTarget::SelfChange).is_some() && probe {
                let inputs: Vec<OutPoint> =
                    self.pending[before].inputs.iter().map(|i| i.prevout).collect();
                for op in inputs {
                    if let Some(addr) = self.outpoint_addr(&op) {
                        self.probe_observations.push(ProbeObservation { address: addr, service: si });
                    }
                }
                let change_addrs: Vec<Address> = self.pending[before]
                    .outputs
                    .iter()
                    .map(|o| o.address)
                    .filter(|a| *a != bettor)
                    .collect();
                for addr in change_addrs {
                    self.probe_observations.push(ProbeObservation { address: addr, service: si });
                }
            }
        }
    }

    fn step_mix(&mut self, si: usize, height: u64) {
        let (wallet, due): (WalletId, Vec<(Address, Amount, u64)>) =
            match &mut self.services[si].kind {
                Kind::Mix { wallet, pending, .. } => {
                    let w = *wallet;
                    let (ready, later): (Vec<_>, Vec<_>) =
                        pending.drain(..).partition(|(_, _, d)| *d <= height);
                    *pending = later;
                    (w, ready)
                }
                _ => unreachable!(),
            };
        for (to, amount, _) in due {
            // Best effort: if the pool can't cover it, retry next block.
            if self.pay(wallet, &[(to, amount)], ChangeTarget::Fresh).is_none() {
                if let Kind::Mix { pending, .. } = &mut self.services[si].kind {
                    pending.push((to, amount, height + 2));
                }
            }
        }
    }

    fn step_gateway(&mut self, si: usize, height: u64) {
        if height % 6 != 0 {
            return;
        }
        let (wallet, vendors) = match &self.services[si].kind {
            Kind::Gateway { wallet, vendors } => (*wallet, vendors.clone()),
            _ => unreachable!(),
        };
        if vendors.is_empty() {
            return;
        }
        let balance = self.wallets[wallet].balance();
        if balance.to_sat() < 100_000_000 {
            return;
        }
        // Settle the float to a vendor by sweeping received invoice
        // outputs together — the aggregation is what hands Heuristic 1 the
        // evidence linking the gateway's invoice addresses. Settlement goes
        // to the vendor's *stable* settlement address (merchants configured
        // a fixed payout address with their gateway).
        let v = vendors[self.rng.gen_range(0..vendors.len())];
        let vw = match self.services[v].kind {
            Kind::Vendor { wallet, .. } => wallet,
            _ => return,
        };
        let to = self.receive_address(vw, false);
        self.aggregate(wallet, 2, 64, to);
    }

    fn step_vendor(&mut self, si: usize, height: u64) {
        if height % 12 != si as u64 % 12 {
            return;
        }
        let (wallet, settle_bank) = match self.services[si].kind {
            Kind::Vendor { wallet, settle_bank, .. } => (wallet, settle_bank),
            _ => unreachable!(),
        };
        let balance = self.wallets[wallet].balance();
        if balance.to_sat() < 200_000_000 || self.bank_idx.is_empty() {
            return;
        }
        // Settle revenue into the vendor's fixed exchange account by
        // sweeping invoice outputs together — Heuristic 1 evidence for the
        // vendor, and a stable (re-used) deposit destination.
        let b = self.bank_idx[settle_bank % self.bank_idx.len()];
        let owner = self.services[si].owner;
        let Some(deposit_addr) = self.bank_deposit_address(b, owner, Amount::ZERO) else {
            return;
        };
        let before = self.wallets[wallet].balance();
        if self.aggregate(wallet, 2, 64, deposit_addr).is_some() {
            let moved = before.saturating_sub(self.wallets[wallet].balance());
            if let Kind::Bank { balances, .. } = &mut self.services[b].kind {
                let e = balances.entry(owner).or_insert(Amount::ZERO);
                *e = e.checked_add(moved).unwrap();
            }
        }
    }

    fn step_investment(&mut self, si: usize, height: u64) {
        // Ponzi: pay 5% "interest" every 12 blocks until the collapse point
        // (70% of the run), then go silent.
        if height % 12 != 0 || height > self.cfg.blocks * 7 / 10 {
            return;
        }
        let (wallet, investors) = match &self.services[si].kind {
            Kind::Investment { wallet, investors } => (*wallet, investors.clone()),
            _ => unreachable!(),
        };
        for (owner, principal) in investors {
            let interest = Amount::from_sat(principal.to_sat() / 20);
            if interest.to_sat() < DUST * 2 {
                continue;
            }
            let to = self.owner_receive_address(owner);
            // Best effort: Ponzis fail to pay when reserves run dry.
            self.pay(wallet, &[(to, interest)], ChangeTarget::Fresh);
        }
    }

    // ----- researcher probe -----

    fn step_probe(&mut self) {
        // Spread `probe_quota` round-robin visits per service across the
        // whole run (the paper's 344 transactions over §3.1's roster).
        let total_visits = self.services.len() * self.cfg.probe_quota;
        if self.probe_cursor >= total_visits {
            return;
        }
        let interval = (self.cfg.blocks as usize / total_visits.max(1)).max(1);
        let per_block = (total_visits / self.cfg.blocks as usize).max(1);
        if self.height as usize % interval != 0 {
            return;
        }
        let wallet = self.probe_wallet.unwrap();
        for _ in 0..per_block {
            if self.wallets[wallet].balance().to_sat() < 50_000_000 {
                return;
            }
            let si = self.probe_cursor % self.services.len();
            self.probe_cursor += 1;
            self.probe_one(si);
        }
    }

    fn probe_one(&mut self, si: usize) {
        let wallet = self.probe_wallet.unwrap();
        match self.services[si].kind {
            Kind::Pool { .. } => {
                // Mining probes happen passively via payout observation.
            }
            Kind::Bank { .. } => {
                self.user_deposit_into(0, si, true);
                self.user_withdraw(0, true); // queues a probe withdrawal
            }
            Kind::Dice { .. } => self.probe_bet(si),
            Kind::Vendor { .. } => self.probe_purchase(si),
            Kind::Gateway { .. } => {} // observed via vendors that use it
            Kind::Fixed { wallet: fw } => {
                let to = self.fresh_address(fw);
                let amount = Amount::from_sat(30_000_000);
                if self.pay(wallet, &[(to, amount)], ChangeTarget::Fresh).is_some() {
                    self.probe_observations.push(ProbeObservation { address: to, service: si });
                }
            }
            Kind::Mix { wallet: mw, honest, .. } => {
                let to = self.fresh_address(mw);
                let amount = Amount::from_sat(40_000_000);
                if self.pay(wallet, &[(to, amount)], ChangeTarget::Fresh).is_some() {
                    self.probe_observations.push(ProbeObservation { address: to, service: si });
                    if honest {
                        let back = self.fresh_address(wallet);
                        let due = self.height + 4;
                        if let Kind::Mix { pending, .. } = &mut self.services[si].kind {
                            pending.push((back, Amount::from_sat(38_000_000), due));
                        }
                    }
                }
            }
            Kind::Investment { wallet: iw, .. } => {
                let to = self.fresh_address(iw);
                let amount = Amount::from_sat(50_000_000);
                let owner = self.probe_owner.unwrap();
                if self.pay(wallet, &[(to, amount)], ChangeTarget::Fresh).is_some() {
                    self.probe_observations.push(ProbeObservation { address: to, service: si });
                    if let Kind::Investment { investors, .. } = &mut self.services[si].kind {
                        investors.push((owner, amount));
                    }
                }
            }
            Kind::Misc { wallet: ow } => {
                let to = self.fresh_address(ow);
                let amount = Amount::from_sat(10_000_000);
                if self.pay(wallet, &[(to, amount)], ChangeTarget::Fresh).is_some() {
                    self.probe_observations.push(ProbeObservation { address: to, service: si });
                }
            }
        }
    }

    fn probe_bet(&mut self, si: usize) {
        let wallet = self.probe_wallet.unwrap();
        let (bet_address, _) = match &self.services[si].kind {
            Kind::Dice { bet_address, wallet, .. } => (*bet_address, *wallet),
            _ => return,
        };
        let amount = Amount::from_sat(20_000_000);
        let before = self.pending.len();
        if self.pay(wallet, &[(bet_address, amount)], ChangeTarget::Fresh).is_some() {
            self.probe_observations.push(ProbeObservation { address: bet_address, service: si });
            let op = self.pending[before].inputs[0].prevout;
            if let Some(bettor) = self.outpoint_addr(&op) {
                let due = self.height + 1;
                if let Kind::Dice { pending, .. } = &mut self.services[si].kind {
                    pending.push((bettor, Amount::from_sat(10_000_000), due, true));
                }
            }
        }
    }

    fn probe_purchase(&mut self, si: usize) {
        let wallet = self.probe_wallet.unwrap();
        let (pay_service, pay_wallet) = match self.services[si].kind {
            Kind::Vendor { wallet: vw, gateway: Some(g), .. } => match self.services[g].kind {
                Kind::Gateway { wallet: gw, .. } => (g, gw),
                _ => (si, vw),
            },
            Kind::Vendor { wallet: vw, gateway: None, .. } => (si, vw),
            _ => return,
        };
        let to = self.fresh_address(pay_wallet);
        let amount = Amount::from_sat(25_000_000);
        if self.pay(wallet, &[(to, amount)], ChangeTarget::Fresh).is_some() {
            self.probe_observations.push(ProbeObservation { address: to, service: pay_service });
        }
    }

    // ----- accessors for scripts and analysis -----

    /// Current block height being constructed.
    pub fn current_height(&self) -> u64 {
        self.height
    }

    /// The wallet id of a service's primary wallet.
    pub fn service_wallet(&self, si: usize) -> WalletId {
        match &self.services[si].kind {
            Kind::Pool { wallet, .. }
            | Kind::Fixed { wallet }
            | Kind::Vendor { wallet, .. }
            | Kind::Gateway { wallet, .. }
            | Kind::Dice { wallet, .. }
            | Kind::Mix { wallet, .. }
            | Kind::Investment { wallet, .. }
            | Kind::Misc { wallet } => *wallet,
            Kind::Bank { subwallets, .. } => subwallets[0],
        }
    }

    /// Looks up a service by name.
    pub fn service_index(&self, name: &str) -> Option<usize> {
        self.services.iter().position(|s| s.name == name)
    }

    /// Number of ordinary users.
    pub fn user_count(&self) -> usize {
        self.users.len()
    }

    /// The wallet id of user `ui`.
    pub fn user_wallet_id(&self, ui: usize) -> WalletId {
        self.user_wallet[ui]
    }

    /// A receive address for user `ui`, honouring their reuse habits.
    pub fn user_receive_address(&mut self, ui: usize) -> Address {
        let fresh = self.user_traits[ui].fresh_receive;
        let w = self.user_wallet[ui];
        self.receive_address(w, fresh)
    }

    /// A uniform random draw in `0..n` from the engine's seeded RNG
    /// (used by scripts so their choices stay deterministic per seed).
    pub fn roll(&mut self, n: usize) -> usize {
        self.rng.gen_range(0..n)
    }

    /// Registers a brand-new owner with a wallet (used by theft scripts).
    pub fn new_actor(&mut self, name: &str, category: Category) -> (OwnerId, WalletId) {
        let owner = self.gt.new_owner(name, category);
        let wallet = self.new_wallet(owner);
        (owner, wallet)
    }

    /// Read access to a wallet.
    pub fn wallet(&self, id: WalletId) -> &SimWallet {
        &self.wallets[id]
    }

    /// Mutable access to a wallet (scripts move funds around).
    pub fn wallet_mut(&mut self, id: WalletId) -> &mut SimWallet {
        &mut self.wallets[id]
    }

    /// The deposit address for `owner`'s account at a bank, crediting the
    /// account by `amount`. Accounts keep one long-lived deposit address
    /// (the 2013-era idiom); the first deposit mints it.
    pub fn bank_deposit_address(
        &mut self,
        bank_si: usize,
        owner: OwnerId,
        amount: Amount,
    ) -> Option<Address> {
        let existing = match &mut self.services[bank_si].kind {
            Kind::Bank { balances, deposit_addrs, .. } => {
                let e = balances.entry(owner).or_insert(Amount::ZERO);
                *e = e.checked_add(amount).unwrap();
                deposit_addrs.get(&owner).copied()
            }
            _ => return None,
        };
        if let Some(a) = existing {
            return Some(a);
        }
        // New account: assign a subwallet round-robin and mint the address.
        let sub = match &mut self.services[bank_si].kind {
            Kind::Bank { subwallets, rr, .. } => {
                let w = subwallets[*rr % subwallets.len()];
                *rr += 1;
                w
            }
            _ => unreachable!(),
        };
        let a = self.fresh_address(sub);
        if let Kind::Bank { deposit_addrs, .. } = &mut self.services[bank_si].kind {
            deposit_addrs.insert(owner, a);
        }
        Some(a)
    }

    /// Creates an additional wallet for an existing owner (e.g. the Silk
    /// Road hot wallet, separate from its vendor revenue wallet).
    pub fn new_wallet_for(&mut self, owner: OwnerId) -> WalletId {
        self.new_wallet(owner)
    }

    /// Splits the wallet's largest output into `k` equal fresh outputs
    /// (scripted "split" movement). Returns the txid.
    pub fn split(&mut self, from: WalletId, k: usize) -> Option<Hash256> {
        self.split_weighted(from, &vec![1; k.max(1)])
    }

    /// Splits the wallet's largest output into outputs proportional to
    /// `weights`, each to a fresh address of the same wallet.
    pub fn split_weighted(&mut self, from: WalletId, weights: &[u64]) -> Option<Hash256> {
        assert!(!weights.is_empty());
        let utxo = self.wallets[from].take_largest()?;
        let fee = Amount::from_sat(self.cfg.fee_sat.min(utxo.value.to_sat() / 2));
        let pot = utxo.value.checked_sub(fee)?.to_sat();
        let total_w: u64 = weights.iter().sum();
        if total_w == 0 || pot / total_w == 0 {
            // Not splittable; put it back.
            self.wallets[from].credit(utxo);
            return None;
        }
        let mut outs: Vec<(Address, Amount)> = Vec::with_capacity(weights.len());
        let mut assigned = 0u64;
        for (i, &w) in weights.iter().enumerate() {
            let v = if i + 1 == weights.len() {
                pot - assigned
            } else {
                pot * w / total_w
            };
            assigned += v;
            let a = self.fresh_address(from);
            outs.push((a, Amount::from_sat(v)));
        }
        let tx = Transaction {
            version: 1,
            inputs: vec![TxIn::unsigned(utxo.outpoint)],
            outputs: outs
                .iter()
                .map(|&(address, value)| TxOut { value, address })
                .collect(),
            lock_time: 0,
        };
        let txid = tx.txid();
        for (vout, &(address, value)) in outs.iter().enumerate() {
            self.wallets[from].credit(OwnedUtxo {
                outpoint: OutPoint { txid, vout: vout as u32 },
                value,
                address,
            });
        }
        self.pending_fees = self.pending_fees.checked_add(fee).unwrap();
        self.pending.push(tx);
        Some(txid)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tiny_economy_runs_and_validates() {
        let eco = Economy::run(SimConfig::tiny());
        let rc = eco.chain.resolved();
        assert_eq!(eco.chain.height(), Some(SimConfig::tiny().blocks - 1));
        assert!(rc.tx_count() > SimConfig::tiny().blocks as usize, "has non-coinbase txs");
        assert!(rc.address_count() > 100);
    }

    #[test]
    fn deterministic_under_seed() {
        let a = Economy::run(SimConfig::tiny());
        let b = Economy::run(SimConfig::tiny());
        assert_eq!(a.chain.tip_hash(), b.chain.tip_hash());
        let mut cfg = SimConfig::tiny();
        cfg.seed ^= 1;
        let c = Economy::run(cfg);
        assert_ne!(a.chain.tip_hash(), c.chain.tip_hash());
    }

    #[test]
    fn every_address_has_ground_truth_owner() {
        let eco = Economy::run(SimConfig::tiny());
        let rc = eco.chain.resolved();
        for id in 0..rc.address_count() as u32 {
            let addr = rc.address(id);
            assert!(
                eco.gt.owner_of(&addr).is_some(),
                "address {addr} lacks an owner"
            );
        }
    }

    #[test]
    fn supply_conservation() {
        let eco = Economy::run(SimConfig::tiny());
        // Total UTXO value == sum of claimed coinbase values (subsidy+fees
        // recirculate; nothing is created or destroyed beyond that).
        let expected: Amount = (0..SimConfig::tiny().blocks)
            .map(|h| eco.chain.params().subsidy_at(h))
            .sum::<Amount>()
            .checked_add(Amount::ZERO)
            .unwrap();
        let total = eco.chain.utxos().total_value();
        // Fees recirculate into coinbases, so totals match subsidies exactly.
        assert_eq!(total, expected);
    }

    #[test]
    fn ground_truth_change_outputs_are_real() {
        let eco = Economy::run(SimConfig::tiny());
        let rc = eco.chain.resolved();
        let gt = eco.gt.to_id_space(rc);
        let mut with_change = 0;
        for (t, tx) in rc.txs.iter().enumerate() {
            if let Some(v) = gt.change_vout[t] {
                with_change += 1;
                assert!((v as usize) < tx.outputs.len(), "change vout in range");
                // The change output's owner equals the first input's owner.
                let change_owner = gt.owner_of[tx.outputs[v as usize].address as usize];
                let input_owner = gt.owner_of[tx.inputs[0].address as usize];
                assert_eq!(change_owner, input_owner, "change stays with the spender");
            }
        }
        assert!(with_change > 50, "enough change outputs to analyze");
    }

    #[test]
    fn probe_observations_point_at_right_owner() {
        let eco = Economy::run(SimConfig::tiny());
        assert!(!eco.probe_observations.is_empty());
        for obs in &eco.probe_observations {
            let owner = eco.gt.owner_of(&obs.address).unwrap();
            assert_eq!(
                owner, eco.services[obs.service].owner,
                "probe tag for {} points at the wrong owner",
                eco.services[obs.service].name
            );
        }
    }

    #[test]
    fn self_change_rate_visible_in_chain() {
        let eco = Economy::run(SimConfig::tiny());
        let rc = eco.chain.resolved();
        let mut self_change = 0usize;
        let mut spends = 0usize;
        for tx in &rc.txs {
            if tx.is_coinbase {
                continue;
            }
            spends += 1;
            let ins: std::collections::HashSet<_> =
                tx.inputs.iter().map(|i| i.address).collect();
            if tx.outputs.iter().any(|o| ins.contains(&o.address)) {
                self_change += 1;
            }
        }
        let rate = self_change as f64 / spends as f64;
        assert!(rate > 0.05, "self-change present (rate {rate:.3})");
        assert!(rate < 0.6, "self-change not dominant (rate {rate:.3})");
    }
}

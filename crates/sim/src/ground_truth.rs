//! Ground truth: who really owns every address, and which output of every
//! transaction is really the change.
//!
//! This is the simulator's superpower over the real 2013 block chain: the
//! paper could only estimate error rates by watching behaviour over time,
//! while we can score the heuristics exactly.

use crate::entity::{Category, OwnerId, OwnerInfo};
use fistful_chain::address::Address;
use fistful_chain::resolve::ResolvedChain;
use fistful_crypto::hash::Hash256;
use std::collections::HashMap;

/// Ground-truth registry, keyed by concrete addresses and txids while the
/// simulation runs; convert to dense id space with
/// [`GroundTruth::to_id_space`] afterwards.
#[derive(Debug, Clone, Default)]
pub struct GroundTruth {
    /// All owners.
    pub owners: Vec<OwnerInfo>,
    owner_of_addr: HashMap<Address, OwnerId>,
    true_change: HashMap<Hash256, u32>,
}

impl GroundTruth {
    /// An empty registry.
    pub fn new() -> GroundTruth {
        GroundTruth::default()
    }

    /// Registers a new owner and returns its id.
    pub fn new_owner(&mut self, name: impl Into<String>, category: Category) -> OwnerId {
        let id = self.owners.len() as OwnerId;
        self.owners.push(OwnerInfo { name: name.into(), category });
        id
    }

    /// Records that `addr` belongs to `owner`. Panics if the address is
    /// already claimed by a different owner (addresses are never shared).
    pub fn register(&mut self, addr: Address, owner: OwnerId) {
        if let Some(prev) = self.owner_of_addr.insert(addr, owner) {
            assert_eq!(prev, owner, "address registered to two owners");
        }
    }

    /// The true owner of an address, if known.
    pub fn owner_of(&self, addr: &Address) -> Option<OwnerId> {
        self.owner_of_addr.get(addr).copied()
    }

    /// Metadata for an owner.
    pub fn owner(&self, id: OwnerId) -> &OwnerInfo {
        &self.owners[id as usize]
    }

    /// Records the true change output of a transaction.
    pub fn note_change(&mut self, txid: Hash256, vout: u32) {
        self.true_change.insert(txid, vout);
    }

    /// The true change output of a transaction, if it has one.
    pub fn change_of(&self, txid: &Hash256) -> Option<u32> {
        self.true_change.get(txid).copied()
    }

    /// Number of registered addresses.
    pub fn address_count(&self) -> usize {
        self.owner_of_addr.len()
    }

    /// Owners of a given category.
    pub fn owners_in(&self, category: Category) -> Vec<OwnerId> {
        (0..self.owners.len() as OwnerId)
            .filter(|&o| self.owners[o as usize].category == category)
            .collect()
    }

    /// Converts to dense id space aligned with a resolved chain.
    pub fn to_id_space(&self, chain: &ResolvedChain) -> GroundTruthIds {
        let mut owner_of = vec![None; chain.address_count()];
        for (addr, owner) in &self.owner_of_addr {
            if let Some(id) = chain.address_id(addr) {
                owner_of[id as usize] = Some(*owner);
            }
        }
        let mut change_vout = vec![None; chain.tx_count()];
        for (t, tx) in chain.txs.iter().enumerate() {
            change_vout[t] = self.true_change.get(&tx.txid).copied();
        }
        GroundTruthIds { owner_of, change_vout, owners: self.owners.clone() }
    }
}

/// Ground truth in dense id space (aligned with a [`ResolvedChain`]).
#[derive(Debug, Clone)]
pub struct GroundTruthIds {
    /// True owner per [`AddressId`](fistful_chain::resolve::AddressId).
    pub owner_of: Vec<Option<OwnerId>>,
    /// True change vout per [`TxId`](fistful_chain::resolve::TxId).
    pub change_vout: Vec<Option<u32>>,
    /// Owner metadata (indexed by `OwnerId`).
    pub owners: Vec<OwnerInfo>,
}

impl GroundTruthIds {
    /// The category of the owner of an address, if known.
    pub fn category_of_address(&self, addr: u32) -> Option<Category> {
        self.owner_of[addr as usize].map(|o| self.owners[o as usize].category)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn owner_registry() {
        let mut gt = GroundTruth::new();
        let gox = gt.new_owner("Mt. Gox", Category::Exchange);
        let user = gt.new_owner("user-0", Category::User);
        assert_eq!(gt.owner(gox).name, "Mt. Gox");
        let a = Address::from_seed(1);
        gt.register(a, gox);
        gt.register(a, gox); // idempotent
        assert_eq!(gt.owner_of(&a), Some(gox));
        assert_eq!(gt.owner_of(&Address::from_seed(2)), None);
        assert_eq!(gt.owners_in(Category::Exchange), vec![gox]);
        assert_eq!(gt.owners_in(Category::User), vec![user]);
    }

    #[test]
    #[should_panic(expected = "two owners")]
    fn double_registration_panics() {
        let mut gt = GroundTruth::new();
        let a = gt.new_owner("a", Category::User);
        let b = gt.new_owner("b", Category::User);
        let addr = Address::from_seed(1);
        gt.register(addr, a);
        gt.register(addr, b);
    }

    #[test]
    fn change_notes() {
        let mut gt = GroundTruth::new();
        let txid = Hash256::from_hex(&"ab".repeat(32)).unwrap();
        assert_eq!(gt.change_of(&txid), None);
        gt.note_change(txid, 1);
        assert_eq!(gt.change_of(&txid), Some(1));
    }
}

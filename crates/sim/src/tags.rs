//! Tag generation: converting probe observations and synthetic public tags
//! into a list compatible with `fistful_core`'s `TagDb` (the sim crate
//! cannot link it: core depends the other way).
//!
//! Mirrors §3 of the paper: the researcher's own transactions yield
//! high-confidence tags (§3.1); `blockchain.info/tags`-style self-submitted
//! and forum tags are more plentiful but noisier (§3.2) — a configurable
//! fraction of them are simply wrong.

use crate::engine::Economy;
use fistful_chain::resolve::ResolvedChain;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A produced tag, in concrete address space (convert via the resolved
/// chain for the clustering crate).
#[derive(Debug, Clone)]
pub struct RawTag {
    /// The tagged address.
    pub address: fistful_chain::address::Address,
    /// The claimed service name.
    pub service: String,
    /// The claimed category label.
    pub category: String,
    /// Provenance class (matching `fistful_core::TagSource` semantics).
    pub source: RawTagSource,
    /// Whether the tag is actually correct (ground truth; for evaluating
    /// due-diligence logic).
    pub correct: bool,
}

/// Provenance of a raw tag.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RawTagSource {
    /// From the researcher's own transactions.
    OwnTransaction,
    /// Self-submitted (signature/blockchain.info style).
    SelfSubmitted,
    /// Scraped from forums.
    Forum,
}

/// Builds the full tag list for a finished economy.
///
/// Own-transaction tags come from the probe observations; public tags are
/// sampled from service-owned addresses that actually appear on chain, with
/// `cfg.public_tag_error_rate` of them deliberately mislabelled.
pub fn generate_tags(eco: &Economy) -> Vec<RawTag> {
    let mut out = Vec::new();

    // §3.1 — own transactions.
    for obs in &eco.probe_observations {
        let svc = &eco.services[obs.service];
        out.push(RawTag {
            address: obs.address,
            service: svc.name.clone(),
            category: svc.category.label().to_string(),
            source: RawTagSource::OwnTransaction,
            correct: true,
        });
    }

    // §3.2 — noisy public tags, sampled from on-chain service addresses.
    let chain: &ResolvedChain = eco.chain.resolved();
    let mut rng = StdRng::seed_from_u64(eco.cfg.seed ^ 0x7A65);
    let service_names: Vec<(String, String)> = eco
        .services
        .iter()
        .map(|s| (s.name.clone(), s.category.label().to_string()))
        .collect();

    let mut produced = 0usize;
    let mut attempts = 0usize;
    while produced < eco.cfg.public_tags && attempts < eco.cfg.public_tags * 50 {
        attempts += 1;
        let id = rng.gen_range(0..chain.address_count() as u32);
        let addr = chain.address(id);
        let Some(owner) = eco.gt.owner_of(&addr) else { continue };
        let info = eco.gt.owner(owner);
        if !info.category.is_service() {
            continue;
        }
        let wrong = rng.gen::<f64>() < eco.cfg.public_tag_error_rate;
        let (service, category, correct) = if wrong {
            let (n, c) = &service_names[rng.gen_range(0..service_names.len())];
            (n.clone(), c.clone(), *n == info.name)
        } else {
            (info.name.clone(), info.category.label().to_string(), true)
        };
        let source = if rng.gen::<f64>() < 0.6 {
            RawTagSource::SelfSubmitted
        } else {
            RawTagSource::Forum
        };
        out.push(RawTag { address: addr, service, category, source, correct });
        produced += 1;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::SimConfig;
    use crate::engine::Economy;

    #[test]
    fn own_tags_are_correct_and_cover_many_services() {
        let eco = Economy::run(SimConfig::tiny());
        let tags = generate_tags(&eco);
        let own: Vec<_> = tags
            .iter()
            .filter(|t| t.source == RawTagSource::OwnTransaction)
            .collect();
        assert!(!own.is_empty());
        assert!(own.iter().all(|t| t.correct));
        let services: std::collections::HashSet<_> =
            own.iter().map(|t| t.service.as_str()).collect();
        assert!(services.len() >= 10, "probed {} services", services.len());
    }

    #[test]
    fn public_tags_have_configured_noise() {
        let mut cfg = SimConfig::tiny();
        cfg.public_tags = 200;
        cfg.public_tag_error_rate = 0.5;
        let eco = Economy::run(cfg);
        let tags = generate_tags(&eco);
        let public: Vec<_> = tags
            .iter()
            .filter(|t| t.source != RawTagSource::OwnTransaction)
            .collect();
        assert!(public.len() >= 100);
        let wrong = public.iter().filter(|t| !t.correct).count();
        let rate = wrong as f64 / public.len() as f64;
        assert!(rate > 0.2 && rate < 0.7, "noise rate {rate}");
    }

    #[test]
    fn tags_deterministic() {
        let a = generate_tags(&Economy::run(SimConfig::tiny()));
        let b = generate_tags(&Economy::run(SimConfig::tiny()));
        assert_eq!(a.len(), b.len());
        assert!(a
            .iter()
            .zip(&b)
            .all(|(x, y)| x.address == y.address && x.service == y.service));
    }
}

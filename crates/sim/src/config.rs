//! Simulation configuration.

/// Tunable parameters of the simulated economy.
///
/// Defaults produce a chain of a few tens of thousands of transactions in
/// well under a second — big enough for every experiment's shape to emerge,
/// small enough for tests. The `repro` harness scales `blocks` and `users`
/// up.
#[derive(Debug, Clone)]
pub struct SimConfig {
    /// RNG seed; everything downstream is deterministic in this.
    pub seed: u64,
    /// Number of blocks to simulate.
    pub blocks: u64,
    /// Number of ordinary users.
    pub users: usize,
    /// Probability a user acts in a given block.
    pub user_activity: f64,
    /// Fraction of user-created transactions that use a self-change address
    /// (the paper measures 23% in the first half of 2013).
    pub self_change_rate: f64,
    /// Fraction of users whose wallet reuses a receiving address instead of
    /// minting fresh ones. High by default: 2012-13 clients displayed one
    /// static receive address (fresh-per-receive arrived with HD wallets).
    pub reuse_receive_rate: f64,
    /// Fraction of users whose wallet sends change to an already-used
    /// receiving address (bad hygiene; a genuine Heuristic 2 error source
    /// the paper's refinements cannot fully remove).
    pub reuse_change_rate: f64,
    /// Probability that a service's withdrawal processor sloppily reuses
    /// the previous change address (the super-cluster generator, §4.2).
    pub service_sloppy_change_rate: f64,
    /// Probability a user pays a vendor *from their wallet-service account*
    /// (the service spends on their behalf — the paper-era Instawallet /
    /// My Wallet pattern that welds service clusters when combined with
    /// sloppy change).
    pub bill_pay_weight: f64,
    /// Relative weight of dice bets among user actions (Satoshi Dice
    /// dominated 2012-13 transaction volume).
    pub dice_weight: f64,
    /// Whether to run the Silk Road `1DkyBEKt` lifecycle script.
    pub enable_silk_road: bool,
    /// Whether to run the Table 3 theft scripts.
    pub enable_thefts: bool,
    /// Whether the researcher probe user transacts with every service
    /// (produces the own-transaction tags of §3.1).
    pub enable_probe: bool,
    /// Probe interactions per service (the paper's 344 transactions over
    /// ~70 services ≈ 4-5 each).
    pub probe_quota: usize,
    /// Number of noisy public tags (§3.2) to synthesize.
    pub public_tags: usize,
    /// Fraction of public tags that are wrong.
    pub public_tag_error_rate: f64,
    /// Fee per transaction, in satoshis.
    pub fee_sat: u64,
}

impl Default for SimConfig {
    fn default() -> Self {
        SimConfig {
            seed: 0xF157F01,
            blocks: 600,
            users: 120,
            user_activity: 0.55,
            self_change_rate: 0.23,
            reuse_receive_rate: 0.70,
            reuse_change_rate: 0.06,
            service_sloppy_change_rate: 0.05,
            bill_pay_weight: 0.05,
            dice_weight: 0.35,
            enable_silk_road: true,
            enable_thefts: true,
            enable_probe: true,
            probe_quota: 5,
            public_tags: 600,
            public_tag_error_rate: 0.05,
            fee_sat: 10_000,
        }
    }
}

impl SimConfig {
    /// A small, fast configuration for unit tests.
    pub fn tiny() -> SimConfig {
        SimConfig {
            blocks: 120,
            users: 30,
            public_tags: 60,
            ..Default::default()
        }
    }

    /// The full-scale configuration used by the `repro` harness.
    pub fn paper_scale() -> SimConfig {
        SimConfig {
            blocks: 3000,
            users: 600,
            public_tags: 2500,
            ..Default::default()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_sane() {
        let c = SimConfig::default();
        assert!(c.blocks > 0);
        assert!(c.users > 0);
        assert!((0.0..=1.0).contains(&c.user_activity));
        assert!((0.0..=1.0).contains(&c.self_change_rate));
        assert!((0.0..=1.0).contains(&c.public_tag_error_rate));
    }

    #[test]
    fn presets_scale() {
        assert!(SimConfig::tiny().blocks < SimConfig::default().blocks);
        assert!(SimConfig::paper_scale().blocks > SimConfig::default().blocks);
    }
}

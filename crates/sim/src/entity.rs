//! Identities: owners and service categories.

/// A ground-truth owner of addresses (user, service, or thief).
pub type OwnerId = u32;

/// The service categories the paper studies (Table 1 / Figure 2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Category {
    /// Mining pools.
    Mining,
    /// Wallet services.
    Wallet,
    /// Real-time ("bank") exchanges.
    Exchange,
    /// Fixed-rate (non-bank) exchanges.
    FixedExchange,
    /// Online vendors.
    Vendor,
    /// Dice games, poker, lotteries.
    Gambling,
    /// Investment schemes (incl. Ponzis).
    Investment,
    /// Mix / laundry services.
    Mix,
    /// Everything else (faucets, advertisers, donation targets).
    Misc,
    /// Ordinary individual users.
    User,
    /// Thieves (theft case studies, Table 3).
    Thief,
}

impl Category {
    /// Canonical lower-case label, used in tags and reports.
    pub fn label(self) -> &'static str {
        match self {
            Category::Mining => "mining",
            Category::Wallet => "wallet",
            Category::Exchange => "exchange",
            Category::FixedExchange => "fixed",
            Category::Vendor => "vendor",
            Category::Gambling => "gambling",
            Category::Investment => "investment",
            Category::Mix => "mix",
            Category::Misc => "misc",
            Category::User => "user",
            Category::Thief => "thief",
        }
    }

    /// True for the named service categories (not users/thieves).
    pub fn is_service(self) -> bool {
        !matches!(self, Category::User | Category::Thief)
    }

    /// The categories shown in Figure 2's balance plot.
    pub fn figure2_categories() -> [Category; 7] {
        [
            Category::Exchange,
            Category::Mining,
            Category::Wallet,
            Category::Gambling,
            Category::Vendor,
            Category::FixedExchange,
            Category::Investment,
        ]
    }
}

/// Descriptive record for an owner.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct OwnerInfo {
    /// Display name ("Mt. Gox", "user-17", …).
    pub name: String,
    /// Category.
    pub category: Category,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn labels_are_distinct() {
        use std::collections::HashSet;
        let all = [
            Category::Mining,
            Category::Wallet,
            Category::Exchange,
            Category::FixedExchange,
            Category::Vendor,
            Category::Gambling,
            Category::Investment,
            Category::Mix,
            Category::Misc,
            Category::User,
            Category::Thief,
        ];
        let labels: HashSet<_> = all.iter().map(|c| c.label()).collect();
        assert_eq!(labels.len(), all.len());
    }

    #[test]
    fn service_predicate() {
        assert!(Category::Exchange.is_service());
        assert!(Category::Mix.is_service());
        assert!(!Category::User.is_service());
        assert!(!Category::Thief.is_service());
    }

    #[test]
    fn figure2_has_seven_categories() {
        assert_eq!(Category::figure2_categories().len(), 7);
    }
}

//! Shared experiment harness: builds the simulated economy once and
//! derives everything the paper's tables and figures need.

pub mod cli;
pub mod json;
pub mod servebench;

use fistful_chain::resolve::AddressId;
use fistful_core::change::ChangeConfig;
use fistful_core::cluster::{Clusterer, Clustering};
use fistful_core::naming::{name_clusters, NamingReport};
use fistful_core::snapshot::ClusterSnapshot;
use fistful_core::tagdb::{Tag, TagDb, TagSource};
use fistful_flow::AddressDirectory;
use fistful_sim::{generate_tags, Economy, RawTagSource, SimConfig};
use std::collections::HashSet;

/// A fully prepared experiment context.
pub struct Workbench {
    /// The finished economy (chain + ground truth + script reports).
    pub eco: Economy,
    /// All tags (own-transaction + public).
    pub tagdb: TagDb,
    /// Gambling-cluster addresses (for the Satoshi-Dice exception).
    pub dice: HashSet<AddressId>,
    /// Heuristic 1 clustering.
    pub h1: Clustering,
    /// Naming of the H1 clustering.
    pub h1_names: NamingReport,
}

impl Workbench {
    /// Runs the economy and prepares clustering + tags.
    pub fn build(cfg: SimConfig) -> Workbench {
        let eco = Economy::run(cfg);
        let tagdb = build_tagdb(&eco);
        let h1 = Clusterer::h1_only().run(eco.chain.resolved());
        let h1_names = name_clusters(&h1, &tagdb);
        let dice = dice_addresses(&h1, &h1_names);
        Workbench { eco, tagdb, dice, h1, h1_names }
    }

    /// The refined Heuristic-2 configuration for this chain.
    pub fn refined_config(&self) -> ChangeConfig {
        ChangeConfig::refined(self.dice.clone())
    }

    /// Runs H1+H2 clustering with a given H2 configuration.
    pub fn cluster_with(&self, cfg: ChangeConfig) -> Clustering {
        Clusterer::with_h2(cfg).run(self.eco.chain.resolved())
    }

    /// Address directory via cluster naming (the paper's route).
    pub fn directory_for(&self, clustering: &Clustering) -> AddressDirectory {
        let names = name_clusters(clustering, &self.tagdb);
        AddressDirectory::from_naming(clustering, &names)
    }

    /// The frozen serving artifact: refined H1+H2 clustering, tag naming,
    /// and per-cluster aggregates fused into a [`ClusterSnapshot`].
    pub fn snapshot(&self) -> ClusterSnapshot {
        let refined = self.cluster_with(self.refined_config());
        let names = name_clusters(&refined, &self.tagdb);
        ClusterSnapshot::build(self.eco.chain.resolved(), &refined, &names)
    }

    /// Count of distinct hand-tagged (own-transaction) addresses.
    pub fn hand_tagged(&self) -> usize {
        self.tagdb
            .tags_from(TagSource::OwnTransaction)
            .map(|t| t.address)
            .collect::<HashSet<_>>()
            .len()
    }
}

/// Derives the query service's full serving bundle from a finished
/// workbench: the frozen snapshot, the transaction-graph index, the
/// refined Heuristic-2 change labels, and the precomputed balance series
/// (sampled like `repro fig2`). Shared by `repro serve`, `repro
/// serve-bench`, `bench_serve`, and the socket integration suite.
///
/// The refined clustering is run once and its own change labels
/// (`Clustering::change_labels`) are reused for the taint handlers —
/// identical to a fresh `change::identify` pass with the same
/// configuration, without paying the O(chain) scan twice.
pub fn serve_artifacts(wb: &Workbench) -> fistful_serve::ServeArtifacts {
    let chain = wb.eco.chain.resolved();
    let mut refined = wb.cluster_with(wb.refined_config());
    let labels = refined
        .change_labels
        .take()
        .expect("with_h2 clustering keeps its change labels");
    let names = name_clusters(&refined, &wb.tagdb);
    let snapshot = ClusterSnapshot::build(chain, &refined, &names);
    let every = (wb.eco.cfg.blocks / 24).max(1);
    let balances = fistful_flow::balance_series(chain, &snapshot, every);
    let graph = fistful_flow::graph::TxGraph::build(chain);
    fistful_serve::ServeArtifacts::new(snapshot, graph, labels, balances)
        .expect("artifacts all derive from one chain")
}

/// Converts the simulator's raw tags into an interned [`TagDb`].
pub fn build_tagdb(eco: &Economy) -> TagDb {
    let chain = eco.chain.resolved();
    let mut db = TagDb::new();
    for raw in generate_tags(eco) {
        let Some(address) = chain.address_id(&raw.address) else { continue };
        let source = match raw.source {
            RawTagSource::OwnTransaction => TagSource::OwnTransaction,
            RawTagSource::SelfSubmitted => TagSource::SelfSubmitted,
            RawTagSource::Forum => TagSource::Forum,
        };
        db.add(Tag { address, service: raw.service, category: raw.category, source });
    }
    db
}

/// Addresses in clusters named with the gambling category — the paper's
/// route to the Satoshi-Dice exception set.
pub fn dice_addresses(clustering: &Clustering, names: &NamingReport) -> HashSet<AddressId> {
    let mut dice = HashSet::new();
    for (addr, &cluster) in clustering.assignment.iter().enumerate() {
        if names.categories.get(&cluster).map(String::as_str) == Some("gambling") {
            dice.insert(addr as AddressId);
        }
    }
    dice
}

/// Formats a satoshi amount as whole bitcoins (rounded), Table-2 style.
pub fn btc_round(amount: fistful_chain::amount::Amount) -> u64 {
    (amount.to_sat() + 50_000_000) / 100_000_000
}

/// Resolves each scripted theft's loot outputs to `(name, [(tx, vout)])`
/// pairs — the input shape of the batch taint engine. Thefts whose loot
/// cannot be located on the chain (script disabled at tiny scales) are
/// omitted. Shared by `repro tab3`, `repro taint`, and `bench_graph`.
pub fn theft_loots(
    chain: &fistful_chain::resolve::ResolvedChain,
    thefts: &[fistful_sim::scripts::TheftReport],
) -> Vec<(String, Vec<(fistful_chain::resolve::TxId, u32)>)> {
    let mut out = Vec::new();
    for theft in thefts {
        let loot_ids: Vec<AddressId> = theft
            .loot_addresses
            .iter()
            .filter_map(|a| chain.address_id(a))
            .collect();
        let mut loot = Vec::new();
        for txid in &theft.theft_txids {
            let Some((t, rtx)) = chain.tx_by_txid(txid) else { continue };
            for (v, o) in rtx.outputs.iter().enumerate() {
                if loot_ids.contains(&o.address) {
                    loot.push((t, v as u32));
                }
            }
        }
        if !loot.is_empty() {
            out.push((theft.name.clone(), loot));
        }
    }
    out
}

/// Resolves the Silk Road dissolution's peeling-chain first hops to
/// transaction ids — the start set for Table 2's multi-chain traversal.
pub fn silk_road_starts(
    chain: &fistful_chain::resolve::ResolvedChain,
    report: &fistful_sim::scripts::SilkRoadReport,
) -> Vec<fistful_chain::resolve::TxId> {
    report
        .chain_first_hops
        .iter()
        .filter_map(|txid| chain.tx_by_txid(txid).map(|(id, _)| id))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn workbench_builds_and_is_consistent() {
        let wb = Workbench::build(SimConfig::tiny());
        assert!(wb.tagdb.len() > 100);
        assert!(!wb.dice.is_empty(), "dice clusters identified");
        assert!(wb.h1.cluster_count() > 100);
        assert!(wb.hand_tagged() > 50);
        let refined = wb.cluster_with(wb.refined_config());
        assert!(refined.cluster_count() <= wb.h1.cluster_count());
    }
}

//! `repro` — regenerates every table and figure of the paper, writes /
//! serves frozen cluster snapshots, batch-tracks thefts over the
//! transaction-graph index, and runs / load-tests the TCP query service.
//!
//! Usage: `repro [--scale tiny|default|paper] [--json] [--out FILE]
//! [experiment...]` where each `experiment` is one of `fig1 tab1 h1 fp
//! super h2 fig2 tab2 tab3` (default: `all`). Repeated experiments run
//! once; `all` must stand alone; `--json` additionally emits one
//! machine-readable timing object per experiment. `repro snapshot save
//! <file>` clusters the simulated economy once and writes the
//! [`ClusterSnapshot`] artifact; `repro snapshot query <file>` reloads it
//! and answers address → cluster lookups without replaying the chain.
//! `repro taint` builds the columnar [`TxGraph`] once and tracks the
//! scripted thefts concurrently over it, cross-checking the batch result
//! against the legacy per-theft walk. `repro ingest` replays the economy
//! block by block through the sharded ingest pipeline across a sweep of
//! shard counts, asserting each sweep point reproduces the batch
//! clustering exactly and timing per-block cost. `repro serve` starts the
//! `fistful-serve` query server over the simulated economy; `repro
//! serve-bench` drives a closed-loop load generator against it, sweeping
//! worker counts with the response cache on and off. Parsing lives in
//! [`fistful_bench::cli`].

use fistful_bench::cli::{self, CliOutcome, Command, RunPlan, DEFAULT_SERVE_CACHE};
use fistful_bench::json::Json;
use fistful_bench::servebench::{self, RequestKind, RequestPools};
use fistful_bench::{btc_round, serve_artifacts, silk_road_starts, theft_loots, Workbench};
use fistful_chain::amount::Amount;
use fistful_core::change::{self, ChangeConfig, BLOCKS_PER_DAY, BLOCKS_PER_WEEK};
use fistful_core::cluster::{Clusterer, Clustering};
use fistful_core::fp;
use fistful_core::incremental::sharded::{IngestConfig, ShardedIngest};
use fistful_core::incremental::IncrementalClusterer;
use fistful_core::metrics::{amplification, score_change_labels, score_clustering};
use fistful_core::naming::name_clusters;
use fistful_core::snapshot::ClusterSnapshot;
use fistful_flow::graph::TxGraph;
use fistful_flow::{
    balance_series, service_arrivals_indexed, track_theft, track_thefts_batch, FollowStrategy,
};
use fistful_core::snapshot::SnapshotDelta;
use fistful_net::{Network, NetworkConfig};
use fistful_serve::store::{
    delta_file_name, delta_files, CHAIN_FILE, GRAPH_FILE, SERVE_FILE, SNAPSHOT_FILE,
};
use fistful_serve::ServeArtifacts;
use fistful_sim::{Category, SimConfig};
use fistful_store::{read_chain, write_chain, Store, StoreWriter};
use std::path::Path;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let command = match cli::parse(&args) {
        Ok(command) => command,
        Err(CliOutcome::Help) => {
            println!("{}", cli::usage());
            return;
        }
        Err(CliOutcome::Error(msg)) => {
            eprintln!("repro: {msg}\n{}", cli::usage());
            std::process::exit(2);
        }
    };
    match command {
        Command::Run(plan) => run_experiments(&plan),
        Command::SnapshotSave { scale, path } => snapshot_save(&scale, &path),
        Command::SnapshotQuery { path, addresses, top } => snapshot_query(&path, &addresses, top),
        Command::Taint { scale, thefts, threads, max_txs, json, out } => {
            taint(&scale, &thefts, threads, max_txs, json, out.as_deref())
        }
        Command::Ingest { scale, shards, epoch, json, out } => {
            ingest(&scale, &shards, epoch, json, out.as_deref())
        }
        Command::StoreSave { scale, dir, json, out } => {
            store_save(&scale, &dir, json, out.as_deref())
        }
        Command::StoreOpen { dir, verify_scale, json, out } => {
            store_open(&dir, verify_scale.as_deref(), json, out.as_deref())
        }
        Command::StoreAppend { scale, dir, epochs, shards, json, out } => {
            store_append(&scale, &dir, epochs, shards, json, out.as_deref())
        }
        Command::Serve {
            scale,
            port,
            metrics_port,
            workers,
            cache,
            live,
            store,
            epoch,
            shards,
            event_loop,
        } => serve(
            &scale,
            port,
            metrics_port,
            workers,
            cache,
            live,
            store.as_deref(),
            epoch,
            shards,
            event_loop,
        ),
        Command::ServeBench {
            scale,
            threads,
            connections,
            idle,
            requests,
            mix,
            event_loop,
            json,
            out,
        } => serve_bench(
            &scale,
            &threads,
            connections,
            idle,
            requests,
            &mix,
            event_loop,
            json,
            out.as_deref(),
        ),
    }
}

/// Collects `--json` output lines and delivers them at exit: to stdout
/// (after the human-readable output) or to the `--out` file.
struct JsonSink {
    enabled: bool,
    out: Option<String>,
    lines: Vec<String>,
}

impl JsonSink {
    fn new(enabled: bool, out: Option<&str>) -> JsonSink {
        JsonSink { enabled, out: out.map(str::to_string), lines: Vec::new() }
    }

    fn push(&mut self, object: Json) {
        if self.enabled {
            self.lines.push(object.emit());
        }
    }

    fn finish(self) {
        if !self.enabled {
            return;
        }
        match self.out {
            None => {
                for line in &self.lines {
                    println!("{line}");
                }
            }
            Some(path) => {
                let mut body = self.lines.join("\n");
                body.push('\n');
                if let Err(e) = std::fs::write(&path, body) {
                    eprintln!("repro: cannot write `{path}`: {e}");
                    std::process::exit(1);
                }
                eprintln!("# wrote {} JSON object(s) to {path}", self.lines.len());
            }
        }
    }
}

/// Maps a `--scale` name to its simulator configuration.
fn sim_config(scale: &str) -> SimConfig {
    match scale {
        "tiny" => SimConfig::tiny(),
        "paper" => SimConfig::paper_scale(),
        _ => SimConfig::default(),
    }
}

fn run_experiments(plan: &RunPlan) {
    let cfg = sim_config(&plan.scale);
    let want = |name: &str| plan.experiments.iter().any(|e| e == name);
    let mut sink = JsonSink::new(plan.json, plan.out.as_deref());
    // One timing object per experiment: the stable perf-trajectory record
    // (schema `fistful.repro.run/1`) a BENCH_*.json file accumulates
    // across PRs.
    let record = |sink: &mut JsonSink, experiment: &str, scale: &str, seconds: f64| {
        sink.push(Json::obj(vec![
            ("schema", "fistful.repro.run/1".into()),
            ("experiment", experiment.into()),
            ("scale", scale.into()),
            ("seconds", seconds.into()),
        ]));
    };

    // Figure 1 needs no economy.
    if want("fig1") {
        let t = std::time::Instant::now();
        fig1();
        record(&mut sink, "fig1", &plan.scale, t.elapsed().as_secs_f64());
    }

    // Everything except fig1 runs over the simulated economy.
    if plan.experiments.iter().any(|e| e != "fig1") {
        eprintln!(
            "# building economy (scale={}, blocks={}, users={}) ...",
            plan.scale, cfg.blocks, cfg.users
        );
        let t0 = std::time::Instant::now();
        let wb = Workbench::build(cfg);
        eprintln!(
            "# economy ready in {:.1?}: {} txs, {} addresses",
            t0.elapsed(),
            wb.eco.chain.resolved().tx_count(),
            wb.eco.chain.resolved().address_count()
        );
        record(&mut sink, "economy", &plan.scale, t0.elapsed().as_secs_f64());
        // The graph-backed experiments share one index, built once.
        let graph = plan
            .experiments
            .iter()
            .any(|e| e == "tab2" || e == "tab3")
            .then(|| TxGraph::build(wb.eco.chain.resolved()));
        for exp in &plan.experiments {
            let t = std::time::Instant::now();
            match exp.as_str() {
                "fig1" => continue, // already ran, economy-free
                "tab1" => tab1(&wb),
                "h1" => h1_stats(&wb),
                "fp" => fp_ladder(&wb),
                "super" => super_cluster(&wb),
                "h2" => h2_stats(&wb),
                "fig2" => fig2(&wb),
                "tab2" => tab2(&wb, graph.as_ref().expect("graph built for tab2")),
                "tab3" => tab3(&wb, graph.as_ref().expect("graph built for tab3")),
                other => unreachable!("cli::parse admitted unknown experiment `{other}`"),
            }
            record(&mut sink, exp, &plan.scale, t.elapsed().as_secs_f64());
        }
    }
    sink.finish();
}

/// Either serving engine behind one handle: the threaded
/// connection-per-worker loop or the poll(2) event loop. Both speak the
/// same wire protocol, expose the same stats, and accept the same
/// hot-swap publisher, so `serve` and `serve-bench` stay engine-agnostic
/// past startup.
enum Engine {
    Threaded(fistful_serve::Server),
    Event(fistful_serve::EventServer),
}

impl Engine {
    fn name(&self) -> &'static str {
        match self {
            Engine::Threaded(_) => "threaded",
            Engine::Event(_) => "event",
        }
    }

    fn local_addr(&self) -> std::net::SocketAddr {
        match self {
            Engine::Threaded(s) => s.local_addr(),
            Engine::Event(s) => s.local_addr(),
        }
    }

    fn stats(&self) -> fistful_serve::ServerStats {
        match self {
            Engine::Threaded(s) => s.stats(),
            Engine::Event(s) => s.stats(),
        }
    }

    fn publisher(&self) -> fistful_serve::Publisher {
        match self {
            Engine::Threaded(s) => s.publisher(),
            Engine::Event(s) => s.publisher(),
        }
    }

    fn metrics_handle(&self) -> fistful_serve::MetricsHandle {
        match self {
            Engine::Threaded(s) => s.metrics_handle(),
            Engine::Event(s) => s.metrics_handle(),
        }
    }

    fn shutdown(self) {
        match self {
            Engine::Threaded(s) => s.shutdown(),
            Engine::Event(s) => s.shutdown(),
        }
    }
}

/// `serve`: bind the port and report the address first, then build the
/// serving artifacts and answer the binary query protocol until the
/// process is killed. With `--live`, serve a warm-up prefix immediately
/// and stream the rest of the economy through the sharded ingest
/// pipeline in the background, hot-swapping fresh artifacts every epoch.
/// With `--event-loop`, all connection I/O runs on the poll(2) readiness
/// loop instead of a thread per worker. With `--metrics-port`, a second
/// listener answers `GET /metrics` with the Prometheus text exposition.
#[allow(clippy::too_many_arguments)]
fn serve(
    scale: &str,
    port: u16,
    metrics_port: Option<u16>,
    workers: usize,
    cache: usize,
    live: bool,
    store: Option<&str>,
    epoch: usize,
    shards: usize,
    event_loop: bool,
) {
    // Bind before the (potentially long) artifact build so callers can
    // learn the address — crucial with `--port 0` — and start connecting;
    // the kernel backlog holds their connections until workers spin up.
    let config = fistful_serve::ServeConfig {
        addr: format!("127.0.0.1:{port}"),
        workers,
        cache_entries: cache,
        max_taint_txs: cli::DEFAULT_TAINT_MAX_TXS,
    };
    let listener = match std::net::TcpListener::bind(&config.addr) {
        Ok(listener) => listener,
        Err(e) => {
            eprintln!("repro: cannot bind {}: {e}", config.addr);
            std::process::exit(1);
        }
    };
    let bound = listener.local_addr().expect("bound listener has an address");
    println!("listening on {bound} (building artifacts ...)");
    // The scrape listener binds (and is announced) before the artifact
    // build too, so monitoring can point at the port immediately; the
    // exporter itself starts once the engine exists.
    let metrics_listener = metrics_port.map(|mp| {
        let addr = format!("127.0.0.1:{mp}");
        match std::net::TcpListener::bind(&addr) {
            Ok(listener) => {
                let bound = listener.local_addr().expect("bound listener has an address");
                println!("metrics on http://{bound}/metrics");
                listener
            }
            Err(e) => {
                eprintln!("repro: cannot bind metrics port {addr}: {e}");
                std::process::exit(1);
            }
        }
    });

    let cfg = sim_config(scale);
    eprintln!(
        "# building economy (scale={scale}, blocks={}, users={}) ...",
        cfg.blocks, cfg.users
    );
    let t0 = std::time::Instant::now();
    let wb = Workbench::build(cfg);
    eprintln!("# economy ready in {:.1?}; clustering + indexing ...", t0.elapsed());
    let t1 = std::time::Instant::now();

    let start_server = |artifacts| {
        let started = if event_loop {
            fistful_serve::EventServer::start_with_listener(
                listener,
                fistful_serve::EventServeConfig::from(config),
                artifacts,
            )
            .map(Engine::Event)
        } else {
            fistful_serve::Server::start_with_listener(listener, config, artifacts)
                .map(Engine::Threaded)
        };
        match started {
            Ok(server) => server,
            Err(e) => {
                eprintln!("repro: cannot start server: {e}");
                std::process::exit(1);
            }
        }
    };
    // Kept alive for the life of the process: dropping the handle would
    // stop and join the background ingest thread.
    let mut _live_handle = None;
    let server = if live {
        let chain = std::sync::Arc::new(wb.eco.chain.resolved().clone());
        let mut live_config = fistful_serve::LiveConfig::new(wb.refined_config());
        live_config.shards = shards;
        live_config.epoch_blocks = epoch;
        // Match `serve_artifacts` so the final hot-swapped generation is
        // identical to what the batch path would have served.
        live_config.balance_every = (wb.eco.cfg.blocks / 24).max(1);
        live_config.store_dir = store.map(std::path::PathBuf::from);
        let mut pipeline =
            fistful_serve::LivePipeline::new(chain, wb.tagdb.clone(), live_config);
        let artifacts = match pipeline.bootstrap() {
            Ok(artifacts) => artifacts,
            Err(e) => {
                eprintln!("repro: cannot bootstrap live ingest: {e}");
                std::process::exit(1);
            }
        };
        eprintln!(
            "# live bootstrap ready in {:.1?} (epoch {}); ingesting in background ...",
            t1.elapsed(),
            pipeline.epoch()
        );
        let server = start_server(artifacts);
        _live_handle = Some(pipeline.spawn(server.publisher()));
        server
    } else {
        let artifacts = std::sync::Arc::new(serve_artifacts(&wb));
        eprintln!("# serving artifacts ready in {:.1?}", t1.elapsed());
        start_server(artifacts)
    };
    // Kept alive for the life of the process: dropping the exporter
    // would stop answering scrapes.
    let _metrics_exporter = metrics_listener.map(|ml| {
        match fistful_serve::MetricsExporter::start_with_listener(ml, server.metrics_handle()) {
            Ok(exporter) => exporter,
            Err(e) => {
                eprintln!("repro: cannot start metrics exporter: {e}");
                std::process::exit(1);
            }
        }
    });
    let stats = server.stats();
    println!(
        "serving {} addresses / {} clusters / {} txs on {} with {} {} workers (cache: {})",
        stats.address_count,
        stats.cluster_count,
        stats.tx_count,
        server.local_addr(),
        stats.workers,
        server.name(),
        if cache > 0 { format!("{cache} entries") } else { "off".to_string() }
    );
    println!("query it with fistful_serve::Client; stop with ctrl-c");
    loop {
        std::thread::sleep(std::time::Duration::from_secs(3600));
    }
}

/// `serve-bench`: sweep server worker counts with the response cache on
/// and off, driving the closed-loop load generator against each. With
/// `--idle N`, each run additionally parks N unmeasured keep-alive
/// connections on the server (the high-connection-count mode); with
/// `--event-loop`, the poll(2) engine serves instead of the threaded one.
#[allow(clippy::too_many_arguments)]
fn serve_bench(
    scale: &str,
    threads: &[usize],
    connections: usize,
    idle: usize,
    requests: usize,
    mix: &[(String, u32)],
    event_loop: bool,
    json: bool,
    out: Option<&str>,
) {
    let cfg = sim_config(scale);
    eprintln!(
        "# building economy (scale={scale}, blocks={}, users={}) ...",
        cfg.blocks, cfg.users
    );
    let wb = Workbench::build(cfg);
    let artifacts = std::sync::Arc::new(serve_artifacts(&wb));
    let loots: Vec<Vec<(u32, u32)>> =
        theft_loots(wb.eco.chain.resolved(), &wb.eco.script_report.thefts)
            .into_iter()
            .map(|(_, loot)| loot)
            .collect();
    let pools = RequestPools::build(&artifacts, &loots, 256, cli::DEFAULT_TAINT_MAX_TXS as u32);
    let mix: Vec<(RequestKind, u32)> = mix
        .iter()
        .map(|(name, weight)| {
            (RequestKind::from_name(name).expect("cli validated mix kinds"), *weight)
        })
        .collect();

    let mut sink = JsonSink::new(json, out);
    for &workers in threads {
        for cache_entries in [DEFAULT_SERVE_CACHE, 0] {
            let config = fistful_serve::ServeConfig {
                addr: "127.0.0.1:0".to_string(),
                workers,
                cache_entries,
                max_taint_txs: cli::DEFAULT_TAINT_MAX_TXS,
            };
            let started = if event_loop {
                fistful_serve::EventServer::start(
                    fistful_serve::EventServeConfig::from(config),
                    std::sync::Arc::clone(&artifacts),
                )
                .map(Engine::Event)
            } else {
                fistful_serve::Server::start(config, std::sync::Arc::clone(&artifacts))
                    .map(Engine::Threaded)
            };
            let server = match started {
                Ok(server) => server,
                Err(e) => {
                    eprintln!("repro: cannot start bench server: {e}");
                    std::process::exit(1);
                }
            };
            let engine = server.name();
            let before = server.stats();
            let measured = servebench::run_load(
                server.local_addr(),
                &pools,
                &mix,
                connections,
                idle,
                requests,
            );
            let after = server.stats();
            // Scrape the fresh-per-run engine over the binary protocol
            // before it shuts down: its per-type counters must equal the
            // load generator's issued counts exactly (requests are
            // counted at dispatch entry, before the cache is consulted).
            let metrics = fistful_serve::Client::connect(server.local_addr())
                .and_then(|mut c| c.metrics_dump())
                .unwrap_or_else(|e| {
                    eprintln!("repro: cannot scrape bench server metrics: {e}");
                    std::process::exit(1);
                });
            server.shutdown();
            let summary = servebench::summarize(
                measured,
                engine,
                workers,
                cache_entries,
                connections,
                requests,
                &before,
                &after,
                &metrics,
            );
            for t in &summary.types {
                assert_eq!(
                    t.server_count,
                    t.count as u64,
                    "server-side {} counter disagrees with the load generator",
                    t.kind.label()
                );
            }
            print_serve_bench_run(&summary);
            sink.push(summary.to_json(scale));
        }
    }
    sink.finish();
}

/// Human-readable report of one serve-bench run.
fn print_serve_bench_run(s: &servebench::RunSummary) {
    println!(
        "\n== serve-bench: {} engine, {} worker(s), cache {}{} ==",
        s.engine,
        s.workers,
        if s.cache_entries > 0 { format!("on ({} entries)", s.cache_entries) } else { "off".to_string() },
        if s.idle_connections > 0 {
            format!(", {} idle conn(s)", s.idle_connections)
        } else {
            String::new()
        }
    );
    println!(
        "{} connection(s) x {} requests = {} total in {:.2}s ({:.0} req/s); cache {} hits / {} misses",
        s.connections,
        s.requests_per_connection,
        s.total_requests,
        s.elapsed_secs,
        s.rps,
        s.cache_hits,
        s.cache_misses
    );
    println!(
        "{:<10} {:>8} {:>8} {:>10} {:>10} {:>10}",
        "type", "count", "served", "req/s", "p50 us", "p99 us"
    );
    for t in &s.types {
        println!(
            "{:<10} {:>8} {:>8} {:>10.0} {:>10.1} {:>10.1}",
            t.kind.label(),
            t.count,
            t.server_count,
            t.rps,
            t.p50_us,
            t.p99_us
        );
    }
}

/// `snapshot save`: cluster once (refined H2 + naming), freeze, write.
fn snapshot_save(scale: &str, path: &str) {
    let cfg = sim_config(scale);
    eprintln!(
        "# building economy (scale={scale}, blocks={}, users={}) ...",
        cfg.blocks, cfg.users
    );
    let t0 = std::time::Instant::now();
    let wb = Workbench::build(cfg);
    eprintln!("# economy ready in {:.1?}; clustering ...", t0.elapsed());
    let t1 = std::time::Instant::now();
    let snapshot = wb.snapshot();
    eprintln!("# clustered + aggregated in {:.1?}; encoding ...", t1.elapsed());
    let t2 = std::time::Instant::now();
    let bytes = snapshot.to_bytes();
    if let Err(e) = std::fs::write(path, &bytes) {
        eprintln!("repro: cannot write `{path}`: {e}");
        std::process::exit(1);
    }
    println!(
        "wrote {path}: {} bytes, {} addresses, {} clusters ({} named), tip height {}, encoded in {:.1?}",
        bytes.len(),
        snapshot.address_count(),
        snapshot.cluster_count(),
        snapshot.named_cluster_count(),
        snapshot.tip_height(),
        t2.elapsed()
    );
}

/// `snapshot query`: reload the frozen artifact and serve lookups.
fn snapshot_query(path: &str, addresses: &[u32], top: usize) {
    let bytes = match std::fs::read(path) {
        Ok(bytes) => bytes,
        Err(e) => {
            eprintln!("repro: cannot read `{path}`: {e}");
            std::process::exit(1);
        }
    };
    let t0 = std::time::Instant::now();
    let snapshot = match ClusterSnapshot::from_bytes(&bytes) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("repro: `{path}` is not a valid snapshot: {e}");
            std::process::exit(1);
        }
    };
    println!(
        "snapshot {path}: {} bytes, decoded + verified in {:.1?}",
        bytes.len(),
        t0.elapsed()
    );
    println!(
        "addresses: {}  clusters: {}  named: {} (covering {} addresses)  tip height: {}  txs: {}",
        snapshot.address_count(),
        snapshot.cluster_count(),
        snapshot.named_cluster_count(),
        snapshot.named_address_count(),
        snapshot.tip_height(),
        snapshot.tx_count()
    );

    println!("\ntop clusters by size:");
    println!(
        "{:<8} {:>8} {:>12} {:>12}  {:<20} category",
        "cluster", "size", "received", "spent", "service"
    );
    for &c in snapshot.clusters_by_size().iter().take(top) {
        let info = snapshot.info(c).expect("id from clusters_by_size");
        println!(
            "{:<8} {:>8} {:>12} {:>12}  {:<20} {}",
            c,
            info.size,
            btc_round(info.received),
            btc_round(info.spent),
            info.name.as_deref().unwrap_or("-"),
            info.category.as_deref().unwrap_or("-")
        );
    }

    for &addr in addresses {
        match snapshot.info_of_address(addr) {
            Some(info) => println!(
                "address {addr}: cluster {} (size {}, received {} BTC, spent {} BTC, service {}, category {})",
                snapshot.cluster_of(addr).expect("info implies cluster"),
                info.size,
                btc_round(info.received),
                btc_round(info.spent),
                info.name.as_deref().unwrap_or("-"),
                info.category.as_deref().unwrap_or("-")
            ),
            None => println!(
                "address {addr}: not covered (snapshot spans {} addresses)",
                snapshot.address_count()
            ),
        }
    }
}

/// `taint`: the batch multi-theft engine over the transaction-graph index,
/// cross-checked against (and timed versus) the legacy per-theft walks.
fn taint(scale: &str, names: &[String], threads: usize, max_txs: usize, json: bool, out: Option<&str>) {
    let cfg = sim_config(scale);
    eprintln!(
        "# building economy (scale={scale}, blocks={}, users={}) ...",
        cfg.blocks, cfg.users
    );
    let wb = Workbench::build(cfg);
    let chain = wb.eco.chain.resolved();
    let labels = change::identify(chain, &wb.refined_config());
    let snapshot = wb.snapshot();

    // Select the scripted thefts, by name when asked.
    let mut cases = theft_loots(chain, &wb.eco.script_report.thefts);
    if !names.is_empty() {
        for want in names {
            if !cases.iter().any(|(name, _)| name == want) {
                let known: Vec<&str> = cases.iter().map(|(n, _)| n.as_str()).collect();
                eprintln!("repro: unknown theft `{want}` (known: {})", known.join(", "));
                std::process::exit(2);
            }
        }
        cases.retain(|(name, _)| names.iter().any(|w| w == name));
    }
    if cases.is_empty() {
        eprintln!("repro: no scripted thefts on this chain (scale too small?)");
        std::process::exit(1);
    }

    let t0 = std::time::Instant::now();
    let graph = TxGraph::build(chain);
    let built = t0.elapsed();
    assert!(
        snapshot.pairs_with_chain(graph.address_count(), graph.tx_count() as u64),
        "snapshot and graph describe different chains"
    );
    println!(
        "graph: {} txs, {} outputs, {} inputs, built in {built:.1?}",
        graph.tx_count(),
        graph.output_count(),
        graph.input_count()
    );

    let workers = if threads == 0 {
        std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1)
    } else {
        threads
    };
    let loots: Vec<Vec<(u32, u32)>> = cases.iter().map(|(_, loot)| loot.clone()).collect();

    // Warm both paths once (first touches page in each structure cold),
    // then time the steady state the serving workload actually runs in.
    let legacy_walk = || -> Vec<_> {
        loots
            .iter()
            .map(|loot| track_theft(chain, loot, &labels, &snapshot, max_txs))
            .collect()
    };
    let traces = track_thefts_batch(&graph, &loots, &labels, &snapshot, max_txs, workers);
    let warm = legacy_walk();
    assert_eq!(traces, warm, "batch and legacy traces diverged");

    let t1 = std::time::Instant::now();
    let traces = track_thefts_batch(&graph, &loots, &labels, &snapshot, max_txs, workers);
    let batch = t1.elapsed();
    let t2 = std::time::Instant::now();
    let legacy = legacy_walk();
    let sequential = t2.elapsed();
    assert_eq!(traces, legacy, "batch and legacy traces diverged");

    println!(
        "{:<18} {:>6} {:<12} {:>14} {:>10}",
        "Theft", "Txs", "Pattern", "Exchanges?", "Dormant"
    );
    for ((name, _), trace) in cases.iter().zip(&traces) {
        println!(
            "{:<18} {:>6} {:<12} {:>14} {:>10}",
            name,
            trace.movements.len(),
            if trace.pattern.is_empty() { "-" } else { &trace.pattern },
            if trace.reached_exchange() {
                format!("Yes ({:.1} BTC)", trace.to_exchanges.to_btc())
            } else {
                "No".to_string()
            },
            btc_round(trace.dormant)
        );
    }
    println!(
        "tracked {} thefts: batch over index ({workers} threads) {batch:.1?} vs legacy \
         sequential {sequential:.1?} ({:.1}x); results identical",
        cases.len(),
        sequential.as_secs_f64() / batch.as_secs_f64().max(1e-9)
    );

    // One perf-trajectory record per theft plus a timing summary (schema
    // `fistful.repro.taint/1`) for BENCH_*.json files.
    let mut sink = JsonSink::new(json, out);
    for ((name, _), trace) in cases.iter().zip(&traces) {
        sink.push(Json::obj(vec![
            ("schema", "fistful.repro.taint/1".into()),
            ("scale", scale.into()),
            ("theft", name.as_str().into()),
            ("txs", (trace.movements.len() as u64).into()),
            ("pattern", trace.pattern.as_str().into()),
            ("to_exchanges_btc", trace.to_exchanges.to_btc().into()),
            ("dormant_btc", trace.dormant.to_btc().into()),
        ]));
    }
    sink.push(Json::obj(vec![
        ("schema", "fistful.repro.taint/1".into()),
        ("scale", scale.into()),
        ("thefts", (cases.len() as u64).into()),
        ("threads", (workers as u64).into()),
        ("graph_build_seconds", built.as_secs_f64().into()),
        ("batch_seconds", batch.as_secs_f64().into()),
        ("legacy_seconds", sequential.as_secs_f64().into()),
    ]));
    sink.finish();
}

/// `ingest`: the sharded ingest sweep. Replays the economy block by block
/// through [`ShardedIngest`] at every requested shard count (plus the
/// batch and per-block incremental engines as baselines), asserts each
/// sweep point lands on exactly the batch clustering, and reports
/// per-block ingest cost per engine.
fn ingest(scale: &str, shards: &[usize], epoch: usize, json: bool, out: Option<&str>) {
    let cfg = sim_config(scale);
    eprintln!(
        "# building economy (scale={scale}, blocks={}, users={}) ...",
        cfg.blocks, cfg.users
    );
    let wb = Workbench::build(cfg);
    let chain = wb.eco.chain.resolved();
    let h2 = wb.refined_config();
    let blocks = chain.block_count();
    let txs = chain.tx_count();
    println!(
        "chain: {} blocks, {} txs, {} addresses; epoch = {epoch} block(s)",
        blocks,
        txs,
        chain.address_count()
    );

    let mut sink = JsonSink::new(json, out);
    let record = |sink: &mut JsonSink, engine: &str, n_shards: u64, seconds: f64, clusters: usize| {
        sink.push(Json::obj(vec![
            ("schema", "fistful.repro.ingest/1".into()),
            ("scale", scale.into()),
            ("engine", engine.into()),
            ("shards", n_shards.into()),
            ("epoch_blocks", (epoch as u64).into()),
            ("blocks", (blocks as u64).into()),
            ("txs", (txs as u64).into()),
            ("seconds", seconds.into()),
            ("us_per_block", (seconds * 1e6 / blocks.max(1) as f64).into()),
            ("clusters", (clusters as u64).into()),
        ]));
    };
    println!(
        "{:<14} {:>7} {:>10} {:>12} {:>10}",
        "engine", "shards", "seconds", "us/block", "clusters"
    );
    let row = |engine: &str, n_shards: u64, seconds: f64, clusters: usize| {
        println!(
            "{:<14} {:>7} {:>10.3} {:>12.1} {:>10}",
            engine,
            n_shards,
            seconds,
            seconds * 1e6 / blocks.max(1) as f64,
            clusters
        );
    };

    // Baseline 1: the one-pass batch clusterer (ground truth).
    let t = std::time::Instant::now();
    let batch = Clusterer::with_h2(h2.clone()).run(chain);
    let batch_secs = t.elapsed().as_secs_f64();
    row("batch", 0, batch_secs, batch.cluster_count());
    record(&mut sink, "batch", 0, batch_secs, batch.cluster_count());

    // Baseline 2: the single-threaded per-block incremental engine.
    let t = std::time::Instant::now();
    let mut inc = IncrementalClusterer::with_h2(h2.clone());
    for block in chain.blocks() {
        inc.ingest_block(&block);
    }
    inc.flush(chain);
    let inc_snapshot = inc.snapshot();
    let inc_secs = t.elapsed().as_secs_f64();
    assert_clusterings_match("incremental", &inc_snapshot, &batch);
    row("incremental", 0, inc_secs, inc_snapshot.cluster_count());
    record(&mut sink, "incremental", 0, inc_secs, inc_snapshot.cluster_count());

    // The sweep: the sharded pipeline at every requested shard count. On a
    // single-core box this proves correctness scaling (identical output at
    // every width), not wall-clock speedup.
    for &n in shards {
        let t = std::time::Instant::now();
        let mut pipe = ShardedIngest::new(IngestConfig::with_h2(n, epoch, h2.clone()));
        for block in chain.blocks() {
            pipe.ingest_block(&block);
        }
        pipe.flush(chain);
        let clustering = pipe.snapshot();
        let secs = t.elapsed().as_secs_f64();
        assert_clusterings_match(&format!("sharded x{n}"), &clustering, &batch);
        row("sharded", n as u64, secs, clustering.cluster_count());
        record(&mut sink, "sharded", n as u64, secs, clustering.cluster_count());
    }
    println!(
        "every engine reproduced the batch clustering exactly ({} clusters)",
        batch.cluster_count()
    );
    sink.finish();
}

/// Hard equality between an ingest engine's output and the batch ground
/// truth: same partition, same H2 labels, same skip accounting.
fn assert_clusterings_match(engine: &str, got: &Clustering, batch: &Clustering) {
    assert_eq!(got.assignment, batch.assignment, "{engine}: assignment diverged");
    assert_eq!(got.sizes, batch.sizes, "{engine}: cluster sizes diverged");
    match (&got.change_labels, &batch.change_labels) {
        (Some(a), Some(b)) => {
            assert_eq!(a.vout_of, b.vout_of, "{engine}: change vouts diverged");
            assert_eq!(a.labels, b.labels, "{engine}: change label count diverged");
            assert_eq!(a.skip_counts, b.skip_counts, "{engine}: skip accounting diverged");
        }
        (None, None) => {}
        _ => panic!("{engine}: H2 ran on one side only"),
    }
}

/// Exits with the CLI's runtime-failure convention (exit 1, `repro:`
/// prefix) on a store error.
fn store_or_die<T>(what: &str, result: Result<T, fistful_store::StoreError>) -> T {
    match result {
        Ok(value) => value,
        Err(e) => {
            eprintln!("repro: {what}: {e}");
            std::process::exit(1);
        }
    }
}

/// `store save`: build every serving artifact once and write the columnar
/// store directory (`chain.fst` + the serving bundle).
fn store_save(scale: &str, dir: &str, json: bool, out: Option<&str>) {
    let cfg = sim_config(scale);
    eprintln!(
        "# building economy (scale={scale}, blocks={}, users={}) ...",
        cfg.blocks, cfg.users
    );
    let t0 = std::time::Instant::now();
    let wb = Workbench::build(cfg);
    eprintln!("# economy ready in {:.1?}; clustering + indexing ...", t0.elapsed());
    let t1 = std::time::Instant::now();
    let artifacts = serve_artifacts(&wb);
    let built = t1.elapsed();

    let dir_path = Path::new(dir);
    if let Err(e) = std::fs::create_dir_all(dir_path) {
        eprintln!("repro: cannot create `{dir}`: {e}");
        std::process::exit(1);
    }
    let t2 = std::time::Instant::now();
    let mut w = StoreWriter::new();
    write_chain(wb.eco.chain.resolved(), &mut w);
    let chain_bytes = store_or_die("cannot write chain.fst", w.write_to(&dir_path.join(CHAIN_FILE)));
    let bundle_bytes = store_or_die("cannot write serving bundle", artifacts.save_dir(dir_path));
    let encoded = t2.elapsed();

    println!(
        "wrote {dir}: {} bytes ({chain_bytes} chain + {bundle_bytes} serving bundle) in {encoded:.1?}",
        chain_bytes + bundle_bytes
    );
    for file in [CHAIN_FILE, GRAPH_FILE, SNAPSHOT_FILE, SERVE_FILE] {
        let len = std::fs::metadata(dir_path.join(file)).map(|m| m.len()).unwrap_or(0);
        println!("  {file:<14} {len:>12} bytes");
    }
    println!(
        "reopen it with `repro store open {dir}` — no chain replay, no re-clustering"
    );

    let mut sink = JsonSink::new(json, out);
    sink.push(Json::obj(vec![
        ("schema", "fistful.repro.store/1".into()),
        ("op", "save".into()),
        ("scale", scale.into()),
        ("chain_bytes", chain_bytes.into()),
        ("bundle_bytes", bundle_bytes.into()),
        ("total_bytes", (chain_bytes + bundle_bytes).into()),
        ("build_seconds", built.as_secs_f64().into()),
        ("encode_seconds", encoded.as_secs_f64().into()),
    ]));
    sink.finish();
}

/// `store open`: reopen a store directory without replaying the chain,
/// optionally differentially verified against an in-RAM rebuild.
fn store_open(dir: &str, verify_scale: Option<&str>, json: bool, out: Option<&str>) {
    let dir_path = Path::new(dir);
    let deltas = store_or_die("cannot list store directory", delta_files(dir_path)).len();
    let t0 = std::time::Instant::now();
    let mut store = store_or_die("cannot open chain.fst", Store::open(&dir_path.join(CHAIN_FILE)));
    let chain = store_or_die("chain.fst is not a valid chain container", read_chain(&mut store));
    let artifacts =
        store_or_die("cannot reopen serving bundle", ServeArtifacts::open_dir(dir_path));
    let opened = t0.elapsed();
    println!(
        "opened {dir} in {opened:.1?}: {} addresses, {} clusters, {} txs ({deltas} delta(s) folded)",
        artifacts.snapshot.address_count(),
        artifacts.snapshot.cluster_count(),
        artifacts.graph.tx_count(),
    );

    let mut record = vec![
        ("schema", Json::from("fistful.repro.store/1")),
        ("op", "open".into()),
        ("open_seconds", opened.as_secs_f64().into()),
        ("addresses", (artifacts.snapshot.address_count() as u64).into()),
        ("clusters", (artifacts.snapshot.cluster_count() as u64).into()),
        ("txs", (artifacts.graph.tx_count() as u64).into()),
        ("deltas_folded", (deltas as u64).into()),
        ("verified", verify_scale.is_some().into()),
    ];
    if let Some(scale) = verify_scale {
        let cfg = sim_config(scale);
        eprintln!(
            "# rebuilding in RAM for verification (scale={scale}, blocks={}, users={}) ...",
            cfg.blocks, cfg.users
        );
        let t1 = std::time::Instant::now();
        let wb = Workbench::build(cfg);
        let rebuilt = serve_artifacts(&wb);
        let rebuilt_secs = t1.elapsed();

        // Byte-identity, not just logical equality: both chains re-encoded
        // into containers, both snapshots into their wire frames.
        let mut a = StoreWriter::new();
        write_chain(&chain, &mut a);
        let mut b = StoreWriter::new();
        write_chain(wb.eco.chain.resolved(), &mut b);
        assert_eq!(a.to_bytes(), b.to_bytes(), "reopened chain diverged from rebuild");
        assert_eq!(
            artifacts.snapshot.to_bytes(),
            rebuilt.snapshot.to_bytes(),
            "reopened snapshot diverged from rebuild"
        );
        assert_eq!(artifacts.graph, rebuilt.graph, "reopened graph diverged from rebuild");
        assert_eq!(artifacts.labels.vout_of, rebuilt.labels.vout_of, "change labels diverged");
        assert_eq!(artifacts.labels.skip_counts, rebuilt.labels.skip_counts);
        assert_eq!(artifacts.labels.labels, rebuilt.labels.labels);
        assert_eq!(artifacts.balances, rebuilt.balances, "balance series diverged");
        let speedup = rebuilt_secs.as_secs_f64() / opened.as_secs_f64().max(1e-9);
        println!(
            "verified byte-identical to an in-RAM rebuild: open {opened:.1?} vs rebuild \
             {rebuilt_secs:.1?} ({speedup:.1}x)"
        );
        record.push(("rebuild_seconds", rebuilt_secs.as_secs_f64().into()));
        record.push(("speedup", speedup.into()));
    }
    let mut sink = JsonSink::new(json, out);
    sink.push(Json::obj(record));
    sink.finish();
}

/// `store append`: replay the economy through the sharded ingest pipeline,
/// writing the base snapshot at the first epoch boundary and one delta
/// container per later boundary — then prove the on-disk base + deltas
/// materialize to exactly the full batch export, byte for byte.
fn store_append(scale: &str, dir: &str, epochs: usize, shards: usize, json: bool, out: Option<&str>) {
    let cfg = sim_config(scale);
    eprintln!(
        "# building economy (scale={scale}, blocks={}, users={}) ...",
        cfg.blocks, cfg.users
    );
    let wb = Workbench::build(cfg);
    let chain = wb.eco.chain.resolved();
    let blocks = chain.block_count();
    let epoch_blocks = (blocks.div_ceil(epochs)).max(1);
    println!(
        "chain: {blocks} blocks, {} txs; {epochs} epoch(s) of {epoch_blocks} block(s), \
         {shards} shard(s)",
        chain.tx_count()
    );
    let dir_path = Path::new(dir);
    if let Err(e) = std::fs::create_dir_all(dir_path) {
        eprintln!("repro: cannot create `{dir}`: {e}");
        std::process::exit(1);
    }
    // A fresh append resets the delta base, like ServeArtifacts::save_dir.
    for stale in store_or_die("cannot list store directory", delta_files(dir_path)) {
        if let Err(e) = std::fs::remove_file(&stale) {
            eprintln!("repro: cannot remove stale `{}`: {e}", stale.display());
            std::process::exit(1);
        }
    }

    let mut sink = JsonSink::new(json, out);
    let t0 = std::time::Instant::now();
    let mut pipe = ShardedIngest::new(IngestConfig::with_h2(shards, epoch_blocks, wb.refined_config()));
    let mut prev: Option<ClusterSnapshot> = None;
    let mut base_bytes = 0u64;
    let mut delta_bytes = 0u64;
    let mut delta_no = 0usize;
    let mut last_reconciled = 0;
    // At each epoch boundary (reconciled prefix advanced): the first export
    // is the on-disk base; every later one becomes a delta container whose
    // size is proportional to what the epoch changed, not to the chain.
    let mut on_boundary = |pipe: &mut ShardedIngest,
                           prev: &mut Option<ClusterSnapshot>,
                           delta_no: &mut usize,
                           sink: &mut JsonSink| {
        match prev.take() {
            None => {
                let snap = pipe.export_snapshot(chain, &wb.tagdb);
                let mut w = StoreWriter::new();
                snap.write_store(&mut w);
                base_bytes = store_or_die(
                    "cannot write base snapshot",
                    w.write_to(&dir_path.join(SNAPSHOT_FILE)),
                );
                println!(
                    "boundary 1: base {SNAPSHOT_FILE} at tx {} — {base_bytes} bytes",
                    pipe.reconciled_txs()
                );
                *prev = Some(snap);
            }
            Some(p) => {
                let (snap, delta) = pipe.export_delta(chain, &wb.tagdb, &p);
                // The final flush may resolve pending cross-shard merges
                // without advancing the reconciled prefix; only a boundary
                // that actually changed the snapshot earns a delta file.
                if snap.to_bytes() == p.to_bytes() {
                    *prev = Some(p);
                    return;
                }
                *delta_no += 1;
                let file = delta_file_name(*delta_no);
                let mut w = StoreWriter::new();
                delta.write_store(&mut w);
                let bytes =
                    store_or_die("cannot write delta", w.write_to(&dir_path.join(&file)));
                delta_bytes += bytes;
                println!(
                    "boundary {}: delta {file} at tx {} — {bytes} bytes ({} assignments, {} clusters)",
                    *delta_no + 1,
                    pipe.reconciled_txs(),
                    delta.assign.len(),
                    delta.clusters.len()
                );
                sink.push(Json::obj(vec![
                    ("schema", "fistful.repro.store/1".into()),
                    ("op", "append-delta".into()),
                    ("scale", scale.into()),
                    ("epoch", (*delta_no as u64 + 1).into()),
                    ("bytes", bytes.into()),
                    ("assign_entries", (delta.assign.len() as u64).into()),
                    ("cluster_entries", (delta.clusters.len() as u64).into()),
                ]));
                *prev = Some(snap);
            }
        }
    };
    for block in chain.blocks() {
        pipe.ingest_block(&block);
        if pipe.reconciled_txs() != last_reconciled {
            last_reconciled = pipe.reconciled_txs();
            on_boundary(&mut pipe, &mut prev, &mut delta_no, &mut sink);
        }
    }
    // The flush can both process a final partial epoch and resolve pending
    // cross-shard merges; either way the state may have moved past the last
    // export, so always offer one more boundary (it no-ops when nothing
    // changed).
    pipe.flush(chain);
    on_boundary(&mut pipe, &mut prev, &mut delta_no, &mut sink);
    let elapsed = t0.elapsed();
    let full = prev.expect("at least one epoch boundary on a non-empty chain");

    // Prove the persisted files are the snapshot: fold base + deltas back
    // from disk and compare byte-for-byte against both the pipeline's own
    // full export and the batch clusterer's (they must all agree).
    let mut store =
        store_or_die("cannot reopen base snapshot", Store::open(&dir_path.join(SNAPSHOT_FILE)));
    let mut materialized = store_or_die(
        "base snapshot is not a valid container",
        ClusterSnapshot::read_store(&mut store),
    );
    for path in store_or_die("cannot list deltas", delta_files(dir_path)) {
        let mut store = store_or_die("cannot open delta", Store::open(&path));
        let delta =
            store_or_die("delta is not a valid container", SnapshotDelta::read_store(&mut store));
        materialized = match materialized.apply_delta(&delta) {
            Ok(snap) => snap,
            Err(e) => {
                eprintln!("repro: delta `{}` failed to apply: {e}", path.display());
                std::process::exit(1);
            }
        };
    }
    assert_eq!(
        materialized.to_bytes(),
        full.to_bytes(),
        "base + deltas diverged from the full export"
    );
    assert_eq!(
        full.to_bytes(),
        wb.snapshot().to_bytes(),
        "incremental export diverged from the batch snapshot"
    );
    let mut w = StoreWriter::new();
    full.write_store(&mut w);
    let full_export_bytes = w.to_bytes().len() as u64;
    println!(
        "base + {delta_no} delta(s) materialize byte-for-byte to the batch snapshot \
         ({} addresses, {} clusters) in {elapsed:.1?}",
        full.address_count(),
        full.cluster_count()
    );
    println!(
        "append cost: {delta_bytes} delta bytes total vs {full_export_bytes} per full re-export \
         (deltas shrink toward O(new blocks) when epochs are merge-free; cross-epoch merges \
         cascade cluster renumbering and grow them)"
    );
    sink.push(Json::obj(vec![
        ("schema", "fistful.repro.store/1".into()),
        ("op", "append".into()),
        ("scale", scale.into()),
        ("epochs", (epochs as u64).into()),
        ("boundaries", (delta_no as u64 + 1).into()),
        ("shards", (shards as u64).into()),
        ("base_bytes", base_bytes.into()),
        ("delta_bytes", delta_bytes.into()),
        ("full_export_bytes", full_export_bytes.into()),
        ("seconds", elapsed.as_secs_f64().into()),
    ]));
    sink.finish();
}

/// Figure 1: how a transaction propagates, gets mined, and settles.
fn fig1() {
    println!("\n== Figure 1: transaction broadcast, mining, confirmation ==");
    let mut net = Network::new(NetworkConfig::default());
    let miners = net.miners();
    let user = 0u32;
    let merchant = 1u32;

    // (3)-(4): the user forms and broadcasts the payment (0.7 BTC, as in
    // the figure).
    let tx = fistful_chain::builder::TransactionBuilder::new()
        .input(fistful_chain::transaction::OutPoint::null())
        .output(
            fistful_chain::address::Address::from_seed(42),
            Amount::from_sat(70_000_000),
        )
        .build_unsigned();
    let txid = net.submit_tx(user, tx.clone());
    net.run_to_quiescence();
    let tx_prop = net.propagation(&txid).unwrap();

    // (5): the first miner to see it mines a block containing it.
    let miner = *miners.first().expect("some miners");
    let t_miner = tx_prop.node_times[miner as usize].unwrap();
    let mut block = fistful_chain::block::Block {
        header: fistful_chain::block::BlockHeader {
            version: 1,
            prev_hash: fistful_crypto::hash::Hash256::ZERO,
            merkle_root: fistful_crypto::hash::Hash256::ZERO,
            time: 1,
            nonce: 0,
        },
        transactions: vec![tx],
    };
    block.header.merkle_root = block.computed_merkle_root();
    // (6): the block floods; the merchant accepts the payment.
    let hash = net.submit_block(miner, block);
    net.run_to_quiescence();
    let block_prop = net.propagation(&hash).unwrap();
    let t_merchant = block_prop.node_times[merchant as usize].unwrap();

    println!(
        "nodes={} out_degree={} latency={}..{}ms",
        net.config.nodes,
        net.config.out_degree,
        net.config.latency_lo / 1000,
        net.config.latency_hi / 1000
    );
    println!("t=0.000s        user broadcasts tx {txid}");
    println!(
        "t={:.3}s        first miner (node {miner}) has the tx",
        t_miner as f64 / 1e6
    );
    for pct in [50, 90, 100] {
        let t = tx_prop.coverage_time(pct as f64 / 100.0).unwrap();
        println!("tx reaches {pct:>3}% of nodes after {:.3}s", t as f64 / 1e6);
    }
    for pct in [50, 90, 100] {
        let t = block_prop.coverage_time(pct as f64 / 100.0).unwrap();
        println!("block reaches {pct:>3}% of nodes after {:.3}s", t as f64 / 1e6);
    }
    println!(
        "t={:.3}s        merchant (node {merchant}) sees the confirming block",
        t_merchant as f64 / 1e6
    );
    println!("messages delivered: {}", net.messages_delivered);
}

/// Table 1: the service roster, by category, with probe interaction counts.
fn tab1(wb: &Workbench) {
    println!("\n== Table 1: services interacted with, by category ==");
    let mut per_cat: std::collections::BTreeMap<&str, Vec<&str>> = Default::default();
    for s in &wb.eco.services {
        per_cat.entry(s.category.label()).or_default().push(&s.name);
    }
    let probe_txs = wb.eco.probe_observations.len();
    for (cat, services) in &per_cat {
        println!("[{cat}] ({} services)", services.len());
        let mut line = String::new();
        for s in services {
            if line.len() + s.len() > 72 {
                println!("  {line}");
                line.clear();
            }
            if !line.is_empty() {
                line.push_str(", ");
            }
            line.push_str(s);
        }
        if !line.is_empty() {
            println!("  {line}");
        }
    }
    println!(
        "probe observations: {probe_txs} (hand-tagged addresses: {})",
        wb.hand_tagged()
    );
}

/// §4.1: Heuristic 1 statistics.
fn h1_stats(wb: &Workbench) {
    println!("\n== §4.1: Heuristic 1 (multi-input) clustering ==");
    let chain = wb.eco.chain.resolved();
    let cs = fistful_chain::stats::chain_stats(chain);
    println!(
        "self-change transactions: {:.1}% of spends (paper: 23% in H1 2013)",
        cs.self_change_rate() * 100.0
    );
    println!(
        "multi-input transactions: {} | address reuse: {:.1}%",
        cs.multi_input,
        cs.reuse_rate() * 100.0
    );
    let gt = wb.eco.gt.to_id_space(chain);
    let score = score_clustering(&wb.h1, &gt.owner_of);
    println!("addresses:                {}", chain.address_count());
    println!("H1 clusters:              {}", wb.h1.cluster_count());
    println!("  (paper: 5.5M clusters from 12M+ addresses)");
    println!("sink addresses:           {}", wb.h1.sink_count(chain));
    println!(
        "upper-bound users:        {} (paper: <=6,595,564)",
        wb.h1.cluster_count()
    );
    println!(
        "false merges (gt):        {} impure clusters (purity {:.4})",
        score.impure_clusters,
        score.purity()
    );
    let gox = wb.h1_names.clusters_of_service("Mt. Gox");
    println!("Mt. Gox spans:            {} H1 clusters (paper: ~20)", gox.len());
    println!("named clusters:           {}", wb.h1_names.named_clusters);
    println!("named addresses:          {}", wb.h1_names.named_addresses);
    println!(
        "amplification:            {:.0}x over {} hand-tagged (paper: ~1,600x)",
        amplification(wb.hand_tagged(), wb.h1_names.named_addresses),
        wb.hand_tagged()
    );
}

/// §4.2: the false-positive refinement ladder.
fn fp_ladder(wb: &Workbench) {
    println!("\n== §4.2: Heuristic 2 false-positive ladder ==");
    let chain = wb.eco.chain.resolved();
    let naive_labels = change::identify(chain, &ChangeConfig::naive());
    println!("naive H2 change labels:   {} (paper: >4M)", naive_labels.labels);

    let est_naive = fp::estimate(chain, &naive_labels, &ChangeConfig::naive());
    println!(
        "FP rate, naive:           {:.2}%  (paper: 13%)",
        est_naive.rate() * 100.0
    );

    let mut dice_cfg = ChangeConfig::naive();
    dice_cfg.dice_exception = true;
    dice_cfg.dice_addresses = wb.dice.clone();
    let est_dice = fp::estimate(chain, &naive_labels, &dice_cfg);
    println!(
        "FP rate, dice exception:  {:.2}%  (paper: 1%)",
        est_dice.rate() * 100.0
    );

    let mut day = dice_cfg.clone();
    day.wait_blocks = Some(BLOCKS_PER_DAY);
    let day_labels = change::identify(chain, &day);
    let est_day = fp::estimate(chain, &day_labels, &dice_cfg);
    println!(
        "FP rate, wait a day:      {:.2}%  (paper: 0.28%)",
        est_day.rate() * 100.0
    );

    let mut week = dice_cfg.clone();
    week.wait_blocks = Some(BLOCKS_PER_WEEK);
    let week_labels = change::identify(chain, &week);
    let est_week = fp::estimate(chain, &week_labels, &dice_cfg);
    println!(
        "FP rate, wait a week:     {:.2}%  (paper: 0.17%)",
        est_week.rate() * 100.0
    );

    // Ground truth (unavailable to the paper).
    let gt = wb.eco.gt.to_id_space(chain);
    let s_naive = score_change_labels(chain, &naive_labels, &gt.change_vout);
    let refined_labels = change::identify(chain, &wb.refined_config());
    let s_refined = score_change_labels(chain, &refined_labels, &gt.change_vout);
    println!(
        "ground-truth precision:   naive {:.4}, refined {:.4}",
        s_naive.precision(),
        s_refined.precision()
    );
    println!(
        "ground-truth recall:      naive {:.4}, refined {:.4}",
        s_naive.recall(),
        s_refined.recall()
    );
}

/// §4.2: the super-cluster failure mode and its resolution.
fn super_cluster(wb: &Workbench) {
    println!("\n== §4.2: super-cluster formation (naive) vs refined H2 ==");
    let naive = wb.cluster_with(ChangeConfig::naive());
    let naive_names = name_clusters(&naive, &wb.tagdb);
    println!(
        "naive H2:  {} clusters, {} super-clusters",
        naive.cluster_count(),
        naive_names.super_clusters.len()
    );
    if let Some(sc) = naive_names.super_clusters.first() {
        println!(
            "  largest super-cluster: {} addresses welding {} services",
            sc.size,
            sc.services.len()
        );
        let preview: Vec<&str> = sc.services.iter().take(6).map(String::as_str).collect();
        println!("  services include: {} ...", preview.join(", "));
        println!("  (paper: 1.6M addresses welding Mt. Gox, Instawallet, BitPay, Silk Road)");
    }
    let refined = wb.cluster_with(wb.refined_config());
    let refined_names = name_clusters(&refined, &wb.tagdb);
    println!(
        "refined H2: {} clusters, {} super-clusters",
        refined.cluster_count(),
        refined_names.super_clusters.len()
    );
    let gt = wb.eco.gt.to_id_space(wb.eco.chain.resolved());
    let s_naive = score_clustering(&naive, &gt.owner_of);
    let s_refined = score_clustering(&refined, &gt.owner_of);
    println!(
        "cluster purity: naive {:.4}, refined {:.4}",
        s_naive.purity(),
        s_refined.purity()
    );
}

/// §4.2: refined Heuristic 2 headline numbers.
fn h2_stats(wb: &Workbench) {
    println!("\n== §4.2: refined Heuristic 2 clustering ==");
    let refined = wb.cluster_with(wb.refined_config());
    let labels = refined.change_labels.as_ref().unwrap();
    println!("change addresses found:   {} (paper: 3,540,831)", labels.labels);
    println!("clusters:                 {} (paper: 3,384,179)", refined.cluster_count());
    let names = name_clusters(&refined, &wb.tagdb);
    println!(
        "after tag collapse:       {} (paper: 3,383,904)",
        names.collapsed_cluster_count(refined.cluster_count())
    );
    println!("named clusters:           {} (paper: 2,197)", names.named_clusters);
    println!("named addresses:          {} (paper: >1.8M)", names.named_addresses);
    println!(
        "amplification:            {:.0}x over {} hand-tagged (paper: ~1,600x)",
        amplification(wb.hand_tagged(), names.named_addresses),
        wb.hand_tagged()
    );
}

/// Figure 2: category balances over time (% of active bitcoins).
///
/// Runs against the frozen [`ClusterSnapshot`] — the paper's
/// cluster-once-then-interrogate workflow.
fn fig2(wb: &Workbench) {
    println!("\n== Figure 2: balance per category, % of active bitcoins ==");
    let chain = wb.eco.chain.resolved();
    let snapshot = wb.snapshot();
    let every = (wb.eco.cfg.blocks / 24).max(1);
    let series = balance_series(chain, &snapshot, every);
    let cats: Vec<&str> = Category::figure2_categories()
        .iter()
        .map(|c| c.label())
        .collect();
    print!("{:>8}", "height");
    for c in &cats {
        print!("{c:>12}");
    }
    println!("{:>12}", "active BTC");
    for point in &series {
        print!("{:>8}", point.height);
        for c in &cats {
            print!("{:>11.2}%", point.percent_of_active(c));
        }
        println!("{:>12}", point.active().to_sat() / 100_000_000);
    }
}

/// Table 2: tracking the Silk Road dissolution along three peeling chains.
fn tab2(wb: &Workbench, graph: &TxGraph) {
    println!("\n== Table 2: tracking the 1DkyBEKt (Silk Road) dissolution ==");
    let Some(sr) = &wb.eco.script_report.silk_road else {
        println!("(Silk Road script disabled)");
        return;
    };
    let chain = wb.eco.chain.resolved();
    println!("big address:         {}", sr.big_address);
    println!(
        "total received:      {} (paper: 613,326 BTC; scaled economy)",
        sr.total_received
    );
    println!(
        "dissolution txs:     {} withdrawals + final sweep",
        sr.dissolution_txids.len()
    );
    println!("peel hops per chain: {:?} (paper: 100 each)", sr.hops_done);

    let labels = change::identify(chain, &wb.refined_config());
    let snapshot = wb.snapshot();

    // Follow all three dissolution chains over the shared columnar index.
    let starts = silk_road_starts(chain, sr);
    let (chains, rows) = service_arrivals_indexed(
        graph,
        &labels,
        &starts,
        100,
        FollowStrategy::LargestFallback,
        &snapshot,
    );
    for (i, c) in chains.iter().enumerate() {
        println!(
            "chain {}: {} hops followed ({} via fallback), {} peeled",
            i + 1,
            c.hops.len(),
            c.fallback_hops(),
            c.total_peeled()
        );
    }
    println!(
        "{:<20} {:>6} {:>8} {:>6} {:>8} {:>6} {:>8}",
        "Service", "P1", "BTC1", "P2", "BTC2", "P3", "BTC3"
    );
    let mut exchange_peels = 0usize;
    let mut attributed = 0usize;
    for row in &rows {
        let p = |i: usize| row.peels.get(i).copied().unwrap_or(0);
        let v = |i: usize| row.value.get(i).copied().map(btc_round).unwrap_or(0);
        println!(
            "{:<20} {:>6} {:>8} {:>6} {:>8} {:>6} {:>8}",
            row.service,
            p(0),
            v(0),
            p(1),
            v(1),
            p(2),
            v(2)
        );
        attributed += row.total_peels();
        if row.category == "exchange" {
            exchange_peels += row.total_peels();
        }
    }
    let total_peels: usize = chains.iter().map(|c| c.hops.iter().map(|h| h.peels.len()).sum::<usize>()).sum();
    println!(
        "peels to exchanges: {exchange_peels} of {total_peels} total ({attributed} attributed; paper: 54 of 300)"
    );
}

/// Table 3: tracking thefts.
fn tab3(wb: &Workbench, graph: &TxGraph) {
    println!("\n== Table 3: tracking thefts ==");
    let chain = wb.eco.chain.resolved();
    let labels = change::identify(chain, &wb.refined_config());
    let snapshot = wb.snapshot();

    // All thefts tracked in one batch over the shared graph index.
    let cases = theft_loots(chain, &wb.eco.script_report.thefts);
    let loots: Vec<Vec<(u32, u32)>> = cases.iter().map(|(_, loot)| loot.clone()).collect();
    let threads = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
    let traces = track_thefts_batch(graph, &loots, &labels, &snapshot, 5_000, threads);

    println!(
        "{:<18} {:>10} {:>8} {:<10} {:<10} {:>14}",
        "Theft", "BTC", "Height", "Scripted", "Observed", "Exchanges?"
    );
    for ((name, _), trace) in cases.iter().zip(&traces) {
        let theft = wb
            .eco
            .script_report
            .thefts
            .iter()
            .find(|t| &t.name == name)
            .expect("case name from report");
        println!(
            "{:<18} {:>10} {:>8} {:<10} {:<10} {:>14}",
            theft.name,
            btc_round(theft.stolen),
            theft.theft_height,
            theft.pattern,
            trace.pattern,
            if trace.reached_exchange() {
                format!("Yes ({:.1} BTC)", trace.to_exchanges.to_btc())
            } else {
                "No".to_string()
            }
        );
        if theft.name == "Trojan" {
            println!(
                "  trojan dormant loot: {} of {} never moved (paper: 2,857 of 3,257)",
                trace.dormant, theft.stolen
            );
        }
    }
}

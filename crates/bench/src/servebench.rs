//! The closed-loop load generator behind `repro serve-bench`.
//!
//! Each connection is one thread in a closed loop: send a request, block
//! for the response, record the latency, repeat. Requests are drawn from
//! a weighted mix over pre-encoded payload pools (so the measurement
//! covers the socket round trip, not client-side encoding), with keys
//! drawn from a deliberately small *hot set* — the repeated-key workload
//! that lets the server's response cache show its worth. All draws come
//! from a per-connection deterministic LCG, so runs are reproducible.

use crate::json::Json;
use fistful_serve::protocol::Request;
use fistful_serve::{Client, MetricsDump, ServeArtifacts, ServerStats};
use fistful_chain::encode::Encodable;
use std::net::{SocketAddr, TcpStream};
use std::time::{Duration, Instant};

/// The request kinds the mix can name.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RequestKind {
    /// `Ping` liveness probes.
    Ping,
    /// `Stats` counter reads.
    Stats,
    /// `AddressInfo` lookups.
    Addr,
    /// `ClusterSummary` lookups.
    Cluster,
    /// `TaintTrace` walks.
    Taint,
    /// `BalancePoint` samples.
    Balance,
}

impl RequestKind {
    /// Every kind, in presentation order.
    pub const ALL: [RequestKind; 6] = [
        RequestKind::Ping,
        RequestKind::Stats,
        RequestKind::Addr,
        RequestKind::Cluster,
        RequestKind::Taint,
        RequestKind::Balance,
    ];

    /// The name used in `--mix` specs and reports.
    pub fn label(self) -> &'static str {
        match self {
            RequestKind::Ping => "ping",
            RequestKind::Stats => "stats",
            RequestKind::Addr => "addr",
            RequestKind::Cluster => "cluster",
            RequestKind::Taint => "taint",
            RequestKind::Balance => "balance",
        }
    }

    /// Parses a `--mix` kind name.
    pub fn from_name(name: &str) -> Option<RequestKind> {
        RequestKind::ALL.into_iter().find(|k| k.label() == name)
    }

    fn index(self) -> usize {
        RequestKind::ALL.iter().position(|&k| k == self).expect("kind in ALL")
    }
}

/// Pre-encoded request payloads, one pool per kind, keys drawn from small
/// hot sets so repeated requests actually repeat.
pub struct RequestPools {
    pools: [Vec<Vec<u8>>; 6],
}

impl RequestPools {
    /// Builds the pools from the serving artifacts: `hot_keys` distinct
    /// addresses / clusters / heights (strided over each space), plus one
    /// taint request per supplied loot set.
    pub fn build(
        artifacts: &ServeArtifacts,
        loots: &[Vec<(u32, u32)>],
        hot_keys: usize,
        max_txs: u32,
    ) -> RequestPools {
        let hot = hot_keys.max(1) as u64;
        let addresses = artifacts.snapshot.address_count().max(1) as u64;
        let clusters = artifacts.snapshot.cluster_count().max(1) as u64;
        let tip = artifacts.snapshot.tip_height().max(1);
        let pool = |requests: Vec<Request>| -> Vec<Vec<u8>> {
            requests.iter().map(Encodable::encode_to_vec).collect()
        };
        let strided = |space: u64| -> Vec<u64> {
            (0..hot.min(space)).map(|i| i.wrapping_mul(2_654_435_761) % space).collect()
        };
        let taint: Vec<Request> = if loots.is_empty() {
            // No scripted thefts on this chain: fall back to output 0 of
            // transaction 0 so the mix kind still exercises the walk path.
            vec![Request::TaintTrace { loot: vec![(0, 0)], max_txs }]
        } else {
            loots
                .iter()
                .map(|loot| Request::TaintTrace { loot: loot.clone(), max_txs })
                .collect()
        };
        RequestPools {
            pools: [
                pool(vec![Request::Ping]),
                pool(vec![Request::Stats]),
                pool(strided(addresses).iter().map(|&a| Request::AddressInfo { address: a as u32 }).collect()),
                pool(strided(clusters).iter().map(|&c| Request::ClusterSummary { cluster: c as u32 }).collect()),
                pool(taint),
                pool((0..hot).map(|i| Request::BalancePoint { height: tip * (i + 1) / hot }).collect()),
            ],
        }
    }
}

/// The measured latencies of one run: nanoseconds per request, grouped by
/// kind (indexed like [`RequestKind::ALL`]), plus the wall-clock elapsed.
pub struct LoadMeasurement {
    /// Per-kind latencies in nanoseconds, unsorted.
    pub latencies_ns: [Vec<u64>; 6],
    /// Wall-clock time from first request to last response.
    pub elapsed: Duration,
    /// Idle keep-alive sockets actually held open for the run (the
    /// high-connection-count mode may establish fewer than requested
    /// against an engine that cannot accept them).
    pub idle_held: usize,
}

/// Opens up to `idle` keep-alive sockets that send nothing for the whole
/// run, in parallel batches, retrying under a shared deadline so an
/// engine whose accept queue is saturated (the threaded loop pins a
/// worker per served connection) degrades to "fewer idles held" instead
/// of hanging the benchmark. Returns the sockets to keep alive.
fn open_idle_pool(addr: SocketAddr, idle: usize) -> Vec<TcpStream> {
    const CONNECTORS: usize = 64;
    if idle == 0 {
        return Vec::new();
    }
    let deadline = Instant::now() + Duration::from_secs(5);
    let per = idle.div_ceil(CONNECTORS);
    std::thread::scope(|s| {
        let handles: Vec<_> = (0..idle.min(CONNECTORS))
            .map(|batch| {
                s.spawn(move || {
                    let want = per.min(idle.saturating_sub(batch * per));
                    let mut held = Vec::with_capacity(want);
                    while held.len() < want {
                        match TcpStream::connect_timeout(&addr, Duration::from_millis(250)) {
                            Ok(stream) => held.push(stream),
                            // Saturated backlog: let it drain, give up at
                            // the deadline with whatever connected.
                            Err(_) if Instant::now() < deadline => {
                                std::thread::sleep(Duration::from_millis(50));
                            }
                            Err(_) => break,
                        }
                    }
                    held
                })
            })
            .collect();
        handles
            .into_iter()
            .flat_map(|h| h.join().expect("idle connector panicked"))
            .collect()
    })
}

/// Drives `connections` closed-loop client threads, each issuing
/// `requests_per_connection` requests drawn from the weighted `mix`,
/// while `idle` additional keep-alive connections sit open and unmeasured
/// (the high-connection-count mode).
///
/// Panics if a response cannot be read or decodes to an error frame —
/// a load run against a healthy server must be error-free to mean
/// anything.
pub fn run_load(
    addr: SocketAddr,
    pools: &RequestPools,
    mix: &[(RequestKind, u32)],
    connections: usize,
    idle: usize,
    requests_per_connection: usize,
) -> LoadMeasurement {
    assert!(!mix.is_empty(), "mix must name at least one request kind");
    let total_weight: u64 = mix.iter().map(|&(_, w)| w as u64).sum();
    assert!(total_weight > 0, "mix weights must not all be zero");

    // Actives connect before the idle pool opens (so the threaded
    // engine's accept queue serves the measured loop first), but hold at
    // the barrier until the idles are parked — the measurement runs with
    // the idle pool fully in place, not racing it.
    let start_gate = std::sync::Barrier::new(connections + 1);
    let gate = &start_gate;
    let mut idle_held = 0usize;
    let mut elapsed = Duration::ZERO;
    let per_thread: Vec<Vec<(u8, u64)>> = std::thread::scope(|s| {
        let handles: Vec<_> = (0..connections)
            .map(|conn| {
                s.spawn(move || {
                    let mut client = Client::connect(addr).expect("connect to bench server");
                    gate.wait();
                    // Deterministic per-connection LCG (splitmix-style seed).
                    let mut state: u64 =
                        (conn as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ 0xD1B5_4A32_D192_ED03;
                    let mut lcg = move || {
                        state = state.wrapping_mul(6_364_136_223_846_793_005).wrapping_add(1_442_695_040_888_963_407);
                        state >> 33
                    };
                    let mut recorded = Vec::with_capacity(requests_per_connection);
                    for _ in 0..requests_per_connection {
                        // Weighted kind choice, then a hot key from its pool.
                        let mut pick = lcg() % total_weight;
                        let kind = mix
                            .iter()
                            .find(|&&(_, w)| {
                                if pick < w as u64 {
                                    true
                                } else {
                                    pick -= w as u64;
                                    false
                                }
                            })
                            .expect("weights cover the range")
                            .0;
                        let pool = &pools.pools[kind.index()];
                        let payload = &pool[(lcg() % pool.len() as u64) as usize];
                        let t0 = Instant::now();
                        let response = client.call_raw(payload).expect("bench request failed");
                        let nanos = t0.elapsed().as_nanos() as u64;
                        assert_ne!(response.first(), Some(&0xEE), "server answered an error frame");
                        recorded.push((kind.index() as u8, nanos));
                    }
                    recorded
                })
            })
            .collect();
        let idle_pool = if idle > 0 {
            // Let the actives reach the accept queue first.
            std::thread::sleep(Duration::from_millis(50));
            open_idle_pool(addr, idle)
        } else {
            Vec::new()
        };
        idle_held = idle_pool.len();
        let started = Instant::now();
        gate.wait();
        let measured: Vec<Vec<(u8, u64)>> =
            handles.into_iter().map(|h| h.join().expect("bench connection panicked")).collect();
        elapsed = started.elapsed();
        drop(idle_pool); // held open for the whole measured run
        measured
    });

    let mut latencies_ns: [Vec<u64>; 6] = Default::default();
    for thread in per_thread {
        for (kind, nanos) in thread {
            latencies_ns[kind as usize].push(nanos);
        }
    }
    LoadMeasurement { latencies_ns, elapsed, idle_held }
}

/// Per-request-type digest of one run.
#[derive(Debug, Clone)]
pub struct TypeSummary {
    /// Which request kind.
    pub kind: RequestKind,
    /// Requests of this kind issued.
    pub count: usize,
    /// Requests of this kind the *server's* metrics registry counted —
    /// scraped from the fresh-per-run engine after the load drains, so it
    /// must equal [`count`](TypeSummary::count) exactly (counted at
    /// dispatch entry, before the response cache is consulted).
    pub server_count: u64,
    /// Median latency in microseconds.
    pub p50_us: f64,
    /// 99th-percentile latency in microseconds.
    pub p99_us: f64,
    /// This kind's share of throughput, in requests per second.
    pub rps: f64,
}

/// The digest of one server configuration's run.
#[derive(Debug, Clone)]
pub struct RunSummary {
    /// Which serving engine ran: `"threaded"` or `"event"`.
    pub engine: &'static str,
    /// Server worker threads.
    pub workers: usize,
    /// Response-cache capacity (0 = disabled).
    pub cache_entries: usize,
    /// Concurrent client connections.
    pub connections: usize,
    /// Idle keep-alive connections held open, unmeasured, alongside the
    /// actives.
    pub idle_connections: usize,
    /// Requests issued per connection.
    pub requests_per_connection: usize,
    /// Total requests across all connections.
    pub total_requests: usize,
    /// Wall-clock seconds for the whole run.
    pub elapsed_secs: f64,
    /// Aggregate throughput in requests per second.
    pub rps: f64,
    /// Cache hits observed by the server during the run.
    pub cache_hits: u64,
    /// Cache misses observed by the server during the run.
    pub cache_misses: u64,
    /// Per-kind digests, only for kinds that ran.
    pub types: Vec<TypeSummary>,
}

/// The `q`-quantile (0..=1) of a latency set, in microseconds.
fn percentile_us(sorted_ns: &[u64], q: f64) -> f64 {
    if sorted_ns.is_empty() {
        return 0.0;
    }
    let rank = ((sorted_ns.len() - 1) as f64 * q).round() as usize;
    sorted_ns[rank] as f64 / 1_000.0
}

/// Folds a measurement plus the server's counter movement and the
/// post-run metrics scrape into the reportable digest.
#[allow(clippy::too_many_arguments)]
pub fn summarize(
    mut measured: LoadMeasurement,
    engine: &'static str,
    workers: usize,
    cache_entries: usize,
    connections: usize,
    requests_per_connection: usize,
    stats_before: &ServerStats,
    stats_after: &ServerStats,
    metrics: &MetricsDump,
) -> RunSummary {
    let elapsed_secs = measured.elapsed.as_secs_f64().max(1e-9);
    let total_requests: usize = measured.latencies_ns.iter().map(Vec::len).sum();
    let mut types = Vec::new();
    for kind in RequestKind::ALL {
        let lat = &mut measured.latencies_ns[kind.index()];
        if lat.is_empty() {
            continue;
        }
        lat.sort_unstable();
        let series = format!("fistful_requests_total{{type=\"{}\"}}", kind.label());
        types.push(TypeSummary {
            kind,
            count: lat.len(),
            server_count: metrics.counter(&series).unwrap_or(0),
            p50_us: percentile_us(lat, 0.50),
            p99_us: percentile_us(lat, 0.99),
            rps: lat.len() as f64 / elapsed_secs,
        });
    }
    RunSummary {
        engine,
        workers,
        cache_entries,
        connections,
        idle_connections: measured.idle_held,
        requests_per_connection,
        total_requests,
        elapsed_secs,
        rps: total_requests as f64 / elapsed_secs,
        cache_hits: stats_after.cache_hits - stats_before.cache_hits,
        cache_misses: stats_after.cache_misses - stats_before.cache_misses,
        types,
    }
}

impl RunSummary {
    /// The stable machine-readable form emitted under `--json`
    /// (schema `fistful.repro.serve-bench/3`, which added the per-type
    /// `server_count` scraped from the metrics registry to `/2`; `/2`
    /// added `engine` and `idle_connections` to `/1`).
    pub fn to_json(&self, scale: &str) -> Json {
        Json::obj(vec![
            ("schema", "fistful.repro.serve-bench/3".into()),
            ("scale", scale.into()),
            ("engine", self.engine.into()),
            ("workers", self.workers.into()),
            ("cache_entries", self.cache_entries.into()),
            ("connections", self.connections.into()),
            ("idle_connections", self.idle_connections.into()),
            ("requests_per_connection", self.requests_per_connection.into()),
            ("total_requests", self.total_requests.into()),
            ("elapsed_seconds", self.elapsed_secs.into()),
            ("throughput_rps", self.rps.into()),
            ("cache_hits", self.cache_hits.into()),
            ("cache_misses", self.cache_misses.into()),
            (
                "types",
                Json::Obj(
                    self.types
                        .iter()
                        .map(|t| {
                            (
                                t.kind.label().to_string(),
                                Json::obj(vec![
                                    ("count", t.count.into()),
                                    ("server_count", (t.server_count as usize).into()),
                                    ("p50_us", t.p50_us.into()),
                                    ("p99_us", t.p99_us.into()),
                                    ("rps", t.rps.into()),
                                ]),
                            )
                        })
                        .collect(),
                ),
            ),
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kind_names_round_trip() {
        for kind in RequestKind::ALL {
            assert_eq!(RequestKind::from_name(kind.label()), Some(kind));
        }
        assert_eq!(RequestKind::from_name("bogus"), None);
    }

    #[test]
    fn percentiles_pick_order_statistics() {
        let sorted: Vec<u64> = (1..=100).map(|i| i * 1_000).collect();
        assert!((percentile_us(&sorted, 0.5) - 50.0).abs() <= 1.0);
        assert!((percentile_us(&sorted, 0.99) - 99.0).abs() <= 1.0);
        assert_eq!(percentile_us(&[], 0.5), 0.0);
        assert_eq!(percentile_us(&[7_000], 0.99), 7.0);
    }

    #[test]
    fn summary_json_has_the_stable_schema() {
        let measured = LoadMeasurement {
            latencies_ns: [
                vec![1_000, 2_000],
                vec![],
                vec![3_000],
                vec![],
                vec![],
                vec![],
            ],
            elapsed: Duration::from_millis(10),
            idle_held: 48,
        };
        let before = ServerStats::default();
        let after = ServerStats { cache_hits: 5, cache_misses: 7, ..ServerStats::default() };
        let metrics = MetricsDump {
            counters: vec![
                ("fistful_requests_total{type=\"ping\"}".to_string(), 2),
                ("fistful_requests_total{type=\"addr\"}".to_string(), 1),
            ],
            ..MetricsDump::default()
        };
        let summary = summarize(measured, "event", 2, 64, 1, 3, &before, &after, &metrics);
        assert_eq!(summary.total_requests, 3);
        assert_eq!(summary.cache_hits, 5);
        assert_eq!(summary.idle_connections, 48);
        assert_eq!(summary.types.len(), 2);
        // The scraped per-type counters line up with the measured counts.
        for t in &summary.types {
            assert_eq!(t.server_count, t.count as u64, "{}", t.kind.label());
        }

        let json = summary.to_json("tiny");
        assert_eq!(json.get("schema").unwrap().as_str(), Some("fistful.repro.serve-bench/3"));
        assert_eq!(json.get("engine").unwrap().as_str(), Some("event"));
        assert_eq!(json.get("workers").unwrap().as_f64(), Some(2.0));
        assert_eq!(json.get("idle_connections").unwrap().as_f64(), Some(48.0));
        let types = json.get("types").unwrap();
        assert!(types.get("ping").is_some());
        assert_eq!(
            types.get("ping").unwrap().get("server_count").unwrap().as_f64(),
            Some(2.0)
        );
        assert!(types.get("addr").is_some());
        assert!(types.get("taint").is_none(), "kinds that never ran are omitted");
        // The emitted line parses back.
        assert_eq!(crate::json::parse(&json.emit()).unwrap(), json);
    }
}

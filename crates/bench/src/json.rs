//! A minimal JSON value type with a writer and a parser — no external
//! crates (the offline environment has no serde), just enough for the
//! `repro --json` machine-readable output and the tests that parse it
//! back.
//!
//! The writer emits compact, deterministic JSON (object keys in insertion
//! order, integers without a fractional part); the parser accepts any
//! standard JSON document. `emit` then `parse` round-trips every value
//! this module can represent.

use std::fmt::Write as _;

/// A JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any number (JSON does not distinguish integers).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object; keys keep insertion order.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Builds an object from key/value pairs.
    pub fn obj(pairs: Vec<(&str, Json)>) -> Json {
        Json::Obj(pairs.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
    }

    /// Member lookup on an object.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The numeric value, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The string value, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The elements, if this is an array.
    pub fn as_array(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// Serializes compactly.
    pub fn emit(&self) -> String {
        let mut out = String::new();
        self.emit_into(&mut out);
        out
    }

    fn emit_into(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Num(n) => {
                if n.fract() == 0.0 && n.abs() < 9e15 {
                    let _ = write!(out, "{}", *n as i64);
                } else {
                    let _ = write!(out, "{n}");
                }
            }
            Json::Str(s) => emit_string(s, out),
            Json::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.emit_into(out);
                }
                out.push(']');
            }
            Json::Obj(pairs) => {
                out.push('{');
                for (i, (k, v)) in pairs.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    emit_string(k, out);
                    out.push(':');
                    v.emit_into(out);
                }
                out.push('}');
            }
        }
    }
}

impl From<f64> for Json {
    fn from(n: f64) -> Json {
        Json::Num(n)
    }
}

impl From<u64> for Json {
    fn from(n: u64) -> Json {
        Json::Num(n as f64)
    }
}

impl From<usize> for Json {
    fn from(n: usize) -> Json {
        Json::Num(n as f64)
    }
}

impl From<bool> for Json {
    fn from(b: bool) -> Json {
        Json::Bool(b)
    }
}

impl From<&str> for Json {
    fn from(s: &str) -> Json {
        Json::Str(s.to_string())
    }
}

impl From<String> for Json {
    fn from(s: String) -> Json {
        Json::Str(s)
    }
}

fn emit_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// A parse failure: what was wrong and the byte offset it was noticed at.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    /// What went wrong.
    pub message: String,
    /// Byte offset in the input.
    pub at: usize,
}

impl std::fmt::Display for JsonError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{} at byte {}", self.message, self.at)
    }
}

impl std::error::Error for JsonError {}

/// Parses one complete JSON document (trailing whitespace allowed,
/// trailing content rejected).
pub fn parse(input: &str) -> Result<Json, JsonError> {
    let mut p = Parser { bytes: input.as_bytes(), pos: 0 };
    p.skip_ws();
    let value = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing content"));
    }
    Ok(value)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, message: &str) -> JsonError {
        JsonError { message: message.to_string(), at: self.pos }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), JsonError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected `{}`", b as char)))
        }
    }

    fn literal(&mut self, lit: &str, value: Json) -> Result<Json, JsonError> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(value)
        } else {
            Err(self.err(&format!("expected `{lit}`")))
        }
    }

    fn value(&mut self) -> Result<Json, JsonError> {
        match self.peek() {
            Some(b'n') => self.literal("null", Json::Null),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            _ => Err(self.err("expected a JSON value")),
        }
    }

    fn array(&mut self) -> Result<Json, JsonError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.err("expected `,` or `]`")),
            }
        }
    }

    fn object(&mut self) -> Result<Json, JsonError> {
        self.expect(b'{')?;
        let mut pairs = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(pairs));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            pairs.push((key, self.value()?));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(pairs));
                }
                _ => return Err(self.err("expected `,` or `}`")),
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            if self.pos + 5 > self.bytes.len() {
                                return Err(self.err("truncated \\u escape"));
                            }
                            let hex = &self.bytes[self.pos + 1..self.pos + 5];
                            let hex = std::str::from_utf8(hex)
                                .ok()
                                .and_then(|h| u32::from_str_radix(h, 16).ok())
                                .ok_or_else(|| self.err("bad \\u escape"))?;
                            // Surrogates and astral escapes are beyond what
                            // this writer ever emits; map unpaired
                            // surrogates to the replacement character.
                            out.push(char::from_u32(hex).unwrap_or('\u{fffd}'));
                            self.pos += 4;
                        }
                        _ => return Err(self.err("bad escape")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (input is a &str, so the
                    // boundaries are valid).
                    let rest = &self.bytes[self.pos..];
                    let s = unsafe { std::str::from_utf8_unchecked(rest) };
                    let c = s.chars().next().expect("non-empty");
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<Json, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
            self.pos += 1;
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ascii");
        text.parse::<f64>()
            .map(Json::Num)
            .map_err(|_| self.err("bad number"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn emit_parse_round_trips() {
        let value = Json::obj(vec![
            ("schema", "fistful.repro.run/1".into()),
            ("experiment", "h1".into()),
            ("seconds", Json::Num(1.25)),
            ("count", 42u64.into()),
            ("ok", true.into()),
            ("none", Json::Null),
            ("list", Json::Arr(vec![1u64.into(), Json::Str("two".into())])),
            ("nested", Json::obj(vec![("empty", Json::Arr(vec![]))])),
        ]);
        let text = value.emit();
        assert_eq!(parse(&text).unwrap(), value);
    }

    #[test]
    fn integers_emit_without_fraction() {
        assert_eq!(Json::Num(3.0).emit(), "3");
        assert_eq!(Json::Num(3.5).emit(), "3.5");
        assert_eq!(Json::Num(-7.0).emit(), "-7");
    }

    #[test]
    fn strings_escape_and_unescape() {
        let tricky = "quote \" backslash \\ newline \n tab \t unicode ☃ ctrl \u{1}";
        let emitted = Json::Str(tricky.into()).emit();
        assert_eq!(parse(&emitted).unwrap(), Json::Str(tricky.into()));
        // Standard escapes parse too.
        assert_eq!(
            parse(r#""aA\/b""#).unwrap(),
            Json::Str("aA/b".into())
        );
    }

    #[test]
    fn accessors_navigate_objects() {
        let v = parse(r#"{"a": {"b": [1, 2.5, "x"]}, "s": "hi"}"#).unwrap();
        let arr = v.get("a").unwrap().get("b").unwrap().as_array().unwrap();
        assert_eq!(arr[0].as_f64(), Some(1.0));
        assert_eq!(arr[1].as_f64(), Some(2.5));
        assert_eq!(arr[2].as_str(), Some("x"));
        assert_eq!(v.get("s").unwrap().as_str(), Some("hi"));
        assert!(v.get("missing").is_none());
    }

    #[test]
    fn malformed_documents_are_typed_errors() {
        for bad in [
            "", "{", "[1,", "{\"a\"}", "{\"a\":}", "tru", "\"unterminated",
            "1 2", "{\"a\":1,}", "[,]", "nul", "\"bad \\q escape\"",
        ] {
            assert!(parse(bad).is_err(), "`{bad}` should fail");
        }
    }

    #[test]
    fn whitespace_is_tolerated() {
        let v = parse(" \n\t{ \"a\" : [ 1 , 2 ] , \"b\" : null } \r\n").unwrap();
        assert_eq!(v.get("a").unwrap().as_array().unwrap().len(), 2);
        assert_eq!(v.get("b"), Some(&Json::Null));
    }
}

//! Argument parsing for the `repro` binary, factored out so the dedupe,
//! `all`-mixing, `snapshot` and `taint` subcommand rules are unit-testable
//! without spawning the binary.

/// Every experiment `repro` knows, in presentation order.
pub const EXPERIMENTS: [&str; 9] =
    ["fig1", "tab1", "h1", "fp", "super", "h2", "fig2", "tab2", "tab3"];

/// The simulation scales `--scale` accepts.
pub const SCALES: [&str; 3] = ["tiny", "default", "paper"];

/// Default number of top clusters printed by `snapshot query`.
pub const DEFAULT_QUERY_TOP: usize = 10;

/// Default taint-walk transaction bound for `repro taint` (the same bound
/// `tab3` uses).
pub const DEFAULT_TAINT_MAX_TXS: usize = 5_000;

/// The usage string printed by `--help` and on argument errors. Derives
/// the experiment and scale lists from [`EXPERIMENTS`] / [`SCALES`] so the
/// help text cannot drift from what the parser accepts.
pub fn usage() -> String {
    let scales = SCALES.join("|");
    format!(
        "usage: repro [--scale {scales}] [experiment...]\n\
         \x20      repro snapshot save <file> [--scale {scales}]\n\
         \x20      repro snapshot query <file> [address-id...] [--top N]\n\
         \x20      repro taint [--scale {scales}] [--thefts all|name,name,...]\n\
         \x20                  [--threads N] [--max-txs M]\n\
         experiments: all {} (default: all)\n\
         snapshot subcommands:\n\
         \x20 save  — cluster the simulated economy (refined H2 + naming) and\n\
         \x20         write the frozen ClusterSnapshot artifact to <file>\n\
         \x20 query — load <file> without re-clustering; print a summary, the\n\
         \x20         top clusters, and address-id lookups\n\
         taint — build the columnar transaction-graph index once and track\n\
         \x20        the scripted thefts concurrently over it (batch engine),\n\
         \x20        checked against and timed versus the legacy per-theft\n\
         \x20        walk; --thefts selects cases by name (default: all)",
        EXPERIMENTS.join(" ")
    )
}

/// A parsed experiment invocation: which scale, and which experiments to
/// run, in order, with duplicates removed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RunPlan {
    /// One of [`SCALES`].
    pub scale: String,
    /// Experiments to run, in first-mention order, deduplicated. Contains
    /// every experiment when `all` (or nothing) was requested.
    pub experiments: Vec<String>,
}

/// A fully parsed `repro` invocation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Command {
    /// Run paper experiments (the default mode).
    Run(RunPlan),
    /// `snapshot save <file>`: build the economy, cluster, and write the
    /// frozen snapshot artifact.
    SnapshotSave {
        /// One of [`SCALES`].
        scale: String,
        /// Output file path.
        path: String,
    },
    /// `snapshot query <file>`: reload the artifact and serve lookups
    /// without replaying the chain.
    SnapshotQuery {
        /// Input file path.
        path: String,
        /// Address ids to look up.
        addresses: Vec<u32>,
        /// How many top clusters to print.
        top: usize,
    },
    /// `taint`: batch multi-theft taint tracking over the transaction-graph
    /// index, differentially checked against the legacy walk.
    Taint {
        /// One of [`SCALES`].
        scale: String,
        /// Theft case names to track; empty means every scripted theft.
        thefts: Vec<String>,
        /// Worker threads for the batch engine; `0` means auto-detect.
        threads: usize,
        /// Per-theft taint-walk transaction bound.
        max_txs: usize,
    },
}

/// How a parse can end without a command.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CliOutcome {
    /// `--help` was requested; print [`usage`] and exit 0.
    Help,
    /// Bad arguments; print the message and exit 2.
    Error(String),
}

fn parse_scale(next: Option<&String>) -> Result<String, CliOutcome> {
    match next {
        Some(s) if SCALES.contains(&s.as_str()) => Ok(s.clone()),
        other => {
            let got = other.map(String::as_str).unwrap_or("<missing>");
            Err(CliOutcome::Error(format!("invalid --scale `{got}`")))
        }
    }
}

/// Parses `repro`'s arguments (without the program name).
///
/// Rules:
/// * duplicated experiments run once, keeping first-mention order
///   (`repro h1 fp h1` ⟹ `[h1, fp]`);
/// * `all` expands to every experiment but must stand alone — mixing it
///   with named experiments (`repro all h1`) is ambiguous (did the caller
///   want one experiment or a re-run of everything?) and is rejected;
/// * unknown experiments and bad `--scale` values are rejected;
/// * `snapshot save|query` selects the snapshot mode instead; `save` takes
///   an output path and an optional `--scale`, `query` takes an input path,
///   optional numeric address ids, and an optional `--top N`;
/// * `taint` selects the batch taint mode: optional `--scale`, `--threads`
///   and `--max-txs`, plus `--thefts` naming the cases to track (`all`, the
///   default, must stand alone — the same rule as the experiment list).
pub fn parse(args: &[String]) -> Result<Command, CliOutcome> {
    if args.first().map(String::as_str) == Some("snapshot") {
        return parse_snapshot(&args[1..]);
    }
    if args.first().map(String::as_str) == Some("taint") {
        return parse_taint(&args[1..]);
    }
    let mut scale = "default".to_string();
    let mut named: Vec<String> = Vec::new();
    let mut saw_all = false;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--scale" => scale = parse_scale(it.next())?,
            "--help" | "-h" => return Err(CliOutcome::Help),
            "all" => saw_all = true,
            other => {
                if !EXPERIMENTS.contains(&other) {
                    return Err(CliOutcome::Error(format!("unknown experiment `{other}`")));
                }
                if !named.contains(&other.to_string()) {
                    named.push(other.to_string());
                }
            }
        }
    }
    if saw_all && !named.is_empty() {
        return Err(CliOutcome::Error(
            "`all` cannot be combined with named experiments".to_string(),
        ));
    }
    let experiments = if saw_all || named.is_empty() {
        EXPERIMENTS.iter().map(|e| e.to_string()).collect()
    } else {
        named
    };
    Ok(Command::Run(RunPlan { scale, experiments }))
}

/// Parses the arguments after the `snapshot` keyword.
fn parse_snapshot(args: &[String]) -> Result<Command, CliOutcome> {
    let sub = match args.first() {
        Some(s) if s == "--help" || s == "-h" => return Err(CliOutcome::Help),
        Some(s) => s.as_str(),
        None => {
            return Err(CliOutcome::Error(
                "snapshot requires a subcommand: save | query".to_string(),
            ))
        }
    };
    match sub {
        "save" => {
            let mut path: Option<String> = None;
            let mut scale = "default".to_string();
            let mut it = args[1..].iter();
            while let Some(a) = it.next() {
                match a.as_str() {
                    "--scale" => scale = parse_scale(it.next())?,
                    "--help" | "-h" => return Err(CliOutcome::Help),
                    other if other.starts_with('-') => {
                        return Err(CliOutcome::Error(format!("unknown option `{other}`")))
                    }
                    other if path.is_none() => path = Some(other.to_string()),
                    other => {
                        return Err(CliOutcome::Error(format!(
                            "unexpected argument `{other}` after snapshot save path"
                        )))
                    }
                }
            }
            let path = path.ok_or_else(|| {
                CliOutcome::Error("snapshot save requires an output file".to_string())
            })?;
            Ok(Command::SnapshotSave { scale, path })
        }
        "query" => {
            let mut path: Option<String> = None;
            let mut addresses = Vec::new();
            let mut top = DEFAULT_QUERY_TOP;
            let mut it = args[1..].iter();
            while let Some(a) = it.next() {
                match a.as_str() {
                    "--top" => {
                        top = match it.next().and_then(|s| s.parse().ok()) {
                            Some(n) => n,
                            None => {
                                return Err(CliOutcome::Error("invalid --top value".to_string()))
                            }
                        };
                    }
                    "--help" | "-h" => return Err(CliOutcome::Help),
                    other if other.starts_with('-') => {
                        return Err(CliOutcome::Error(format!("unknown option `{other}`")))
                    }
                    other if path.is_none() => path = Some(other.to_string()),
                    other => match other.parse::<u32>() {
                        Ok(addr) => addresses.push(addr),
                        Err(_) => {
                            return Err(CliOutcome::Error(format!(
                                "invalid address id `{other}` (expected a number)"
                            )))
                        }
                    },
                }
            }
            let path = path.ok_or_else(|| {
                CliOutcome::Error("snapshot query requires an input file".to_string())
            })?;
            Ok(Command::SnapshotQuery { path, addresses, top })
        }
        other => Err(CliOutcome::Error(format!(
            "unknown snapshot subcommand `{other}` (expected save | query)"
        ))),
    }
}

/// Parses the arguments after the `taint` keyword.
fn parse_taint(args: &[String]) -> Result<Command, CliOutcome> {
    let mut scale = "default".to_string();
    let mut thefts: Vec<String> = Vec::new();
    let mut saw_all = false;
    let mut threads = 0usize;
    let mut max_txs = DEFAULT_TAINT_MAX_TXS;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--scale" => scale = parse_scale(it.next())?,
            "--help" | "-h" => return Err(CliOutcome::Help),
            "--threads" => {
                threads = match it.next().and_then(|s| s.parse().ok()) {
                    Some(n) => n,
                    None => return Err(CliOutcome::Error("invalid --threads value".to_string())),
                };
            }
            "--max-txs" => {
                max_txs = match it.next().and_then(|s| s.parse().ok()) {
                    Some(n) if n > 0 => n,
                    _ => return Err(CliOutcome::Error("invalid --max-txs value".to_string())),
                };
            }
            "--thefts" => {
                let Some(list) = it.next() else {
                    return Err(CliOutcome::Error("--thefts requires a value".to_string()));
                };
                for name in list.split(',') {
                    let name = name.trim();
                    if name.is_empty() {
                        return Err(CliOutcome::Error(format!(
                            "empty theft name in `--thefts {list}`"
                        )));
                    }
                    if name == "all" {
                        saw_all = true;
                    } else if !thefts.iter().any(|t| t == name) {
                        thefts.push(name.to_string());
                    }
                }
            }
            other => {
                return Err(CliOutcome::Error(format!(
                    "unknown taint option `{other}`"
                )))
            }
        }
    }
    if saw_all && !thefts.is_empty() {
        return Err(CliOutcome::Error(
            "`all` cannot be combined with named thefts".to_string(),
        ));
    }
    Ok(Command::Taint { scale, thefts, threads, max_txs })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(s: &[&str]) -> Vec<String> {
        s.iter().map(|a| a.to_string()).collect()
    }

    fn run_plan(args_in: &[&str]) -> RunPlan {
        match parse(&args(args_in)) {
            Ok(Command::Run(plan)) => plan,
            other => panic!("expected a run plan for {args_in:?}, got {other:?}"),
        }
    }

    #[test]
    fn defaults_to_all_at_default_scale() {
        let plan = run_plan(&[]);
        assert_eq!(plan.scale, "default");
        assert_eq!(plan.experiments, EXPERIMENTS.map(String::from).to_vec());
    }

    #[test]
    fn explicit_all_expands() {
        let plan = run_plan(&["--scale", "tiny", "all"]);
        assert_eq!(plan.scale, "tiny");
        assert_eq!(plan.experiments.len(), EXPERIMENTS.len());
    }

    #[test]
    fn duplicates_run_once_preserving_order() {
        let plan = run_plan(&["h1", "fp", "h1", "fp", "h1"]);
        assert_eq!(plan.experiments, vec!["h1", "fp"]);
        // Order is first-mention, not EXPERIMENTS order.
        let plan = run_plan(&["fp", "h1"]);
        assert_eq!(plan.experiments, vec!["fp", "h1"]);
    }

    #[test]
    fn all_mixed_with_named_is_rejected() {
        for mix in [&["all", "h1"][..], &["h1", "all"], &["h1", "all", "fp"]] {
            match parse(&args(mix)) {
                Err(CliOutcome::Error(msg)) => assert!(msg.contains("all"), "{msg}"),
                other => panic!("expected error for {mix:?}, got {other:?}"),
            }
        }
        // `all all` is just `all`.
        assert!(parse(&args(&["all", "all"])).is_ok());
    }

    #[test]
    fn unknown_experiment_and_bad_scale_are_rejected() {
        assert!(matches!(parse(&args(&["bogus"])), Err(CliOutcome::Error(_))));
        assert!(matches!(parse(&args(&["--scale", "huge"])), Err(CliOutcome::Error(_))));
        assert!(matches!(parse(&args(&["--scale"])), Err(CliOutcome::Error(_))));
    }

    #[test]
    fn help_short_circuits() {
        assert_eq!(parse(&args(&["-h"])), Err(CliOutcome::Help));
        assert_eq!(parse(&args(&["--help", "bogus"])), Err(CliOutcome::Help));
        assert_eq!(parse(&args(&["snapshot", "--help"])), Err(CliOutcome::Help));
        assert_eq!(parse(&args(&["snapshot", "save", "-h"])), Err(CliOutcome::Help));
        assert_eq!(parse(&args(&["snapshot", "query", "--help"])), Err(CliOutcome::Help));
    }

    #[test]
    fn snapshot_save_parses_path_and_scale() {
        assert_eq!(
            parse(&args(&["snapshot", "save", "out.snap"])).unwrap(),
            Command::SnapshotSave { scale: "default".into(), path: "out.snap".into() }
        );
        assert_eq!(
            parse(&args(&["snapshot", "save", "--scale", "tiny", "out.snap"])).unwrap(),
            Command::SnapshotSave { scale: "tiny".into(), path: "out.snap".into() }
        );
    }

    #[test]
    fn snapshot_query_parses_addresses_and_top() {
        assert_eq!(
            parse(&args(&["snapshot", "query", "out.snap"])).unwrap(),
            Command::SnapshotQuery {
                path: "out.snap".into(),
                addresses: vec![],
                top: DEFAULT_QUERY_TOP
            }
        );
        assert_eq!(
            parse(&args(&["snapshot", "query", "out.snap", "3", "17", "--top", "5"])).unwrap(),
            Command::SnapshotQuery {
                path: "out.snap".into(),
                addresses: vec![3, 17],
                top: 5
            }
        );
    }

    #[test]
    fn snapshot_errors_are_usage_errors() {
        for bad in [
            &["snapshot"][..],
            &["snapshot", "frobnicate"],
            &["snapshot", "save"],
            &["snapshot", "save", "a", "b"],
            &["snapshot", "save", "--scale", "huge", "a"],
            &["snapshot", "save", "--scael", "tiny", "a"],
            &["snapshot", "save", "--bogus"],
            &["snapshot", "query"],
            &["snapshot", "query", "a", "notanumber"],
            &["snapshot", "query", "a", "--top", "many"],
            &["snapshot", "query", "a", "--top"],
            &["snapshot", "query", "--tpo", "5", "a"],
        ] {
            assert!(
                matches!(parse(&args(bad)), Err(CliOutcome::Error(_))),
                "expected usage error for {bad:?}"
            );
        }
    }

    #[test]
    fn taint_defaults() {
        assert_eq!(
            parse(&args(&["taint"])).unwrap(),
            Command::Taint {
                scale: "default".into(),
                thefts: vec![],
                threads: 0,
                max_txs: DEFAULT_TAINT_MAX_TXS
            }
        );
        // `--thefts all` is the explicit spelling of the default.
        assert_eq!(
            parse(&args(&["taint", "--thefts", "all"])).unwrap(),
            parse(&args(&["taint"])).unwrap()
        );
    }

    #[test]
    fn taint_parses_every_option() {
        assert_eq!(
            parse(&args(&[
                "taint", "--scale", "tiny", "--thefts", "Betcoin,Bitfloor,Betcoin",
                "--threads", "4", "--max-txs", "99"
            ]))
            .unwrap(),
            Command::Taint {
                scale: "tiny".into(),
                // Duplicates collapse, first-mention order kept.
                thefts: vec!["Betcoin".into(), "Bitfloor".into()],
                threads: 4,
                max_txs: 99
            }
        );
    }

    #[test]
    fn taint_errors_are_usage_errors() {
        for bad in [
            &["taint", "--thefts"][..],
            &["taint", "--thefts", "a,,b"],
            &["taint", "--thefts", "all,Betcoin"],
            &["taint", "--threads", "many"],
            &["taint", "--threads"],
            &["taint", "--max-txs", "0"],
            &["taint", "--max-txs", "lots"],
            &["taint", "--scale", "huge"],
            &["taint", "stray"],
            &["taint", "--bogus"],
        ] {
            assert!(
                matches!(parse(&args(bad)), Err(CliOutcome::Error(_))),
                "expected usage error for {bad:?}"
            );
        }
        assert_eq!(parse(&args(&["taint", "--help"])), Err(CliOutcome::Help));
    }

    #[test]
    fn usage_lists_every_experiment_and_the_snapshot_subcommands() {
        let usage = usage();
        for exp in EXPERIMENTS {
            assert!(usage.contains(exp), "usage is missing experiment `{exp}`");
        }
        for scale in SCALES {
            assert!(usage.contains(scale), "usage is missing scale `{scale}`");
        }
        for needle in ["snapshot save", "snapshot query", "--top", "taint", "--thefts"] {
            assert!(usage.contains(needle), "usage is missing `{needle}`");
        }
    }
}

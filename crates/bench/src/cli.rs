//! Argument parsing for the `repro` binary, factored out so the dedupe,
//! `all`-mixing, `--json`, and `snapshot`/`taint`/`ingest`/`serve`/
//! `serve-bench` subcommand rules are unit-testable without spawning the
//! binary.

use crate::servebench::RequestKind;

/// Every experiment `repro` knows, in presentation order.
pub const EXPERIMENTS: [&str; 9] =
    ["fig1", "tab1", "h1", "fp", "super", "h2", "fig2", "tab2", "tab3"];

/// The simulation scales `--scale` accepts.
pub const SCALES: [&str; 3] = ["tiny", "default", "paper"];

/// Default number of top clusters printed by `snapshot query`.
pub const DEFAULT_QUERY_TOP: usize = 10;

/// Default taint-walk transaction bound for `repro taint` (the same bound
/// `tab3` uses).
pub const DEFAULT_TAINT_MAX_TXS: usize = 5_000;

/// Default port for `repro serve`.
pub const DEFAULT_SERVE_PORT: u16 = 7833;

/// Default response-cache capacity for `repro serve` and `serve-bench`.
pub const DEFAULT_SERVE_CACHE: usize = 4096;

/// Default shard-count sweep for `repro ingest`.
pub const DEFAULT_INGEST_SHARDS: [usize; 4] = [1, 2, 4, 8];

/// Default epoch length (blocks between reconciles) for `repro ingest`.
pub const DEFAULT_INGEST_EPOCH: usize = 16;

/// Default concurrent connections for `repro serve-bench`.
pub const DEFAULT_BENCH_CONNECTIONS: usize = 4;

/// Default requests per connection for `repro serve-bench`.
pub const DEFAULT_BENCH_REQUESTS: usize = 2_000;

/// Default server-worker sweep for `repro serve-bench`.
pub const DEFAULT_BENCH_THREADS: [usize; 4] = [1, 2, 4, 8];

/// Default request mix for `repro serve-bench`.
pub const DEFAULT_BENCH_MIX: &str = "addr:6,cluster:2,balance:1,taint:1";

/// Default epoch count for `repro store append`.
pub const DEFAULT_STORE_EPOCHS: usize = 4;

/// Default shard count for `repro store append`'s ingest replay.
pub const DEFAULT_STORE_SHARDS: usize = 4;

/// The usage string printed by `--help` and on argument errors. Derives
/// the experiment and scale lists from [`EXPERIMENTS`] / [`SCALES`] so the
/// help text cannot drift from what the parser accepts.
pub fn usage() -> String {
    let scales = SCALES.join("|");
    let mix_kinds = RequestKind::ALL.map(RequestKind::label).join("|");
    format!(
        "usage: repro [--scale {scales}] [--json] [--out FILE] [experiment...]\n\
         \x20      repro snapshot save <file> [--scale {scales}]\n\
         \x20      repro snapshot query <file> [address-id...] [--top N]\n\
         \x20      repro taint [--scale {scales}] [--thefts all|name,name,...]\n\
         \x20                  [--threads N] [--max-txs M] [--json] [--out FILE]\n\
         \x20      repro ingest [--scale {scales}] [--shards N,N,...] [--epoch K]\n\
         \x20                  [--json] [--out FILE]\n\
         \x20      repro store save <dir> [--scale {scales}] [--json] [--out FILE]\n\
         \x20      repro store open <dir> [--verify-scale {scales}] [--json] [--out FILE]\n\
         \x20      repro store append <dir> [--scale {scales}] [--epochs K] [--shards N]\n\
         \x20                  [--json] [--out FILE]\n\
         \x20      repro serve [--scale {scales}] [--port P] [--metrics-port P]\n\
         \x20                  [--workers N] [--cache N] [--event-loop] [--live]\n\
         \x20                  [--store DIR] [--epoch K] [--shards N]\n\
         \x20      repro serve-bench [--scale {scales}] [--threads N,N,...]\n\
         \x20                  [--connections M] [--idle I] [--requests R]\n\
         \x20                  [--mix kind:w,...] [--event-loop] [--json] [--out FILE]\n\
         experiments: all {} (default: all)\n\
         --json emits one machine-readable JSON object per experiment (to\n\
         \x20      stdout, or to FILE with --out, which implies --json)\n\
         snapshot subcommands:\n\
         \x20 save  — cluster the simulated economy (refined H2 + naming) and\n\
         \x20         write the frozen ClusterSnapshot artifact to <file>\n\
         \x20 query — load <file> without re-clustering; print a summary, the\n\
         \x20         top clusters, and address-id lookups\n\
         taint — build the columnar transaction-graph index once and track\n\
         \x20        the scripted thefts concurrently over it (batch engine),\n\
         \x20        checked against and timed versus the legacy per-theft\n\
         \x20        walk; --thefts selects cases by name (default: all)\n\
         ingest — replay the economy block by block through the sharded\n\
         \x20        ingest pipeline, sweeping --shards shard counts (comma\n\
         \x20        list, each > 0) with an --epoch-block reconcile cadence,\n\
         \x20        asserting every sweep point matches the batch clusterer\n\
         \x20        and reporting per-block ingest cost\n\
         store subcommands (the on-disk columnar artifact store):\n\
         \x20 save   — build every serving artifact once and write the store\n\
         \x20          directory (chain.fst, graph.fst, snapshot.fst, serve.fst)\n\
         \x20 open   — reopen a store directory without replaying the chain;\n\
         \x20          --verify-scale rebuilds in RAM and asserts the reopened\n\
         \x20          artifacts are byte-identical, reporting the speedup\n\
         \x20 append — replay the economy through the sharded ingest pipeline,\n\
         \x20          cutting it into --epochs reconcile epochs: the first\n\
         \x20          boundary writes the base snapshot, each later one a\n\
         \x20          per-epoch delta file, verified byte-for-byte against a\n\
         \x20          full re-export\n\
         serve — bind --port first (0 = ephemeral; the bound address is\n\
         \x20        printed before artifacts build), cluster once, build the\n\
         \x20        graph, and answer the binary query protocol until killed\n\
         \x20        (--workers 0 = one per core; --cache 0 disables the\n\
         \x20        response cache); --event-loop multiplexes every\n\
         \x20        connection on one poll(2) readiness loop (pipelining,\n\
         \x20        per-connection budgets, backpressure) instead of pinning\n\
         \x20        one worker per connection; --live streams the economy's blocks\n\
         \x20        through the sharded ingest pipeline in the background,\n\
         \x20        hot-swapping fresh artifacts every --epoch blocks across\n\
         \x20        --shards shards, persisting per-epoch deltas to --store\n\
         \x20        so a restart resumes from disk; --metrics-port binds a\n\
         \x20        second listener (must differ from --port; 0 = ephemeral)\n\
         \x20        answering GET /metrics with the Prometheus text exposition\n\
         serve-bench — closed-loop load generator against an in-process\n\
         \x20        server: sweeps --threads worker counts with the cache on\n\
         \x20        and off, reporting throughput and p50/p99 latency per\n\
         \x20        request type; --event-loop benches the poll-loop server,\n\
         \x20        --idle holds I extra unmeasured keep-alive connections\n\
         \x20        open for the whole run (the high-connection-count mode);\n\
         \x20        mix kinds: {mix_kinds}",
        EXPERIMENTS.join(" ")
    )
}

/// A parsed experiment invocation: which scale, and which experiments to
/// run, in order, with duplicates removed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RunPlan {
    /// One of [`SCALES`].
    pub scale: String,
    /// Experiments to run, in first-mention order, deduplicated. Contains
    /// every experiment when `all` (or nothing) was requested.
    pub experiments: Vec<String>,
    /// Emit one machine-readable JSON timing object per experiment.
    pub json: bool,
    /// Where the JSON objects go (`None` = stdout). Implies `json`.
    pub out: Option<String>,
}

/// A fully parsed `repro` invocation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Command {
    /// Run paper experiments (the default mode).
    Run(RunPlan),
    /// `snapshot save <file>`: build the economy, cluster, and write the
    /// frozen snapshot artifact.
    SnapshotSave {
        /// One of [`SCALES`].
        scale: String,
        /// Output file path.
        path: String,
    },
    /// `snapshot query <file>`: reload the artifact and serve lookups
    /// without replaying the chain.
    SnapshotQuery {
        /// Input file path.
        path: String,
        /// Address ids to look up.
        addresses: Vec<u32>,
        /// How many top clusters to print.
        top: usize,
    },
    /// `taint`: batch multi-theft taint tracking over the transaction-graph
    /// index, differentially checked against the legacy walk.
    Taint {
        /// One of [`SCALES`].
        scale: String,
        /// Theft case names to track; empty means every scripted theft.
        thefts: Vec<String>,
        /// Worker threads for the batch engine; `0` means auto-detect.
        threads: usize,
        /// Per-theft taint-walk transaction bound.
        max_txs: usize,
        /// Emit one machine-readable JSON object per tracked theft.
        json: bool,
        /// Where the JSON objects go (`None` = stdout). Implies `json`.
        out: Option<String>,
    },
    /// `ingest`: replay the economy through the sharded ingest pipeline
    /// across a sweep of shard counts, checking each against the batch
    /// clusterer and timing per-block cost.
    Ingest {
        /// One of [`SCALES`].
        scale: String,
        /// Shard counts to sweep, in order, each positive.
        shards: Vec<usize>,
        /// Blocks per reconcile epoch; positive.
        epoch: usize,
        /// Emit one machine-readable JSON object per sweep point.
        json: bool,
        /// Where the JSON objects go (`None` = stdout). Implies `json`.
        out: Option<String>,
    },
    /// `store save <dir>`: build every serving artifact once and write the
    /// columnar store directory.
    StoreSave {
        /// One of [`SCALES`].
        scale: String,
        /// Store directory path.
        dir: String,
        /// Emit machine-readable JSON records.
        json: bool,
        /// Where the JSON objects go (`None` = stdout). Implies `json`.
        out: Option<String>,
    },
    /// `store open <dir>`: reopen a store directory without replaying the
    /// chain, optionally verifying against an in-RAM rebuild.
    StoreOpen {
        /// Store directory path.
        dir: String,
        /// When set, rebuild the artifacts at this scale and assert the
        /// reopened ones are byte-identical.
        verify_scale: Option<String>,
        /// Emit machine-readable JSON records.
        json: bool,
        /// Where the JSON objects go (`None` = stdout). Implies `json`.
        out: Option<String>,
    },
    /// `store append <dir>`: replay the economy through the sharded ingest
    /// pipeline, writing a base snapshot at the first epoch boundary and a
    /// delta container per later boundary.
    StoreAppend {
        /// One of [`SCALES`].
        scale: String,
        /// Store directory path.
        dir: String,
        /// Number of reconcile epochs to cut the chain into; positive.
        epochs: usize,
        /// Shard count for the ingest replay; positive.
        shards: usize,
        /// Emit machine-readable JSON records.
        json: bool,
        /// Where the JSON objects go (`None` = stdout). Implies `json`.
        out: Option<String>,
    },
    /// `serve`: build the serving artifacts once and run the TCP query
    /// server until killed.
    Serve {
        /// One of [`SCALES`].
        scale: String,
        /// TCP port to listen on (`0` = ephemeral; the bound address is
        /// printed before the artifacts are built).
        port: u16,
        /// When set, also bind an HTTP listener on this port serving the
        /// Prometheus text exposition at `GET /metrics` (`0` =
        /// ephemeral). Must differ from `port`.
        metrics_port: Option<u16>,
        /// Worker threads; `0` means one per core.
        workers: usize,
        /// Response-cache capacity; `0` disables caching.
        cache: usize,
        /// Stream the economy through the live ingest pipeline,
        /// hot-swapping fresh artifacts into the running server at every
        /// reconcile epoch, instead of batch-building once up front.
        live: bool,
        /// Store directory for `--live` persistence (base save + per-epoch
        /// deltas); a restarted server resumes from it.
        store: Option<String>,
        /// Blocks per live reconcile epoch.
        epoch: usize,
        /// Shard count of the live ingest pipeline.
        shards: usize,
        /// Serve with the event-driven poll loop instead of the threaded
        /// connection-per-worker loop.
        event_loop: bool,
    },
    /// `serve-bench`: the closed-loop load generator over an in-process
    /// server, swept across worker counts with the cache on and off.
    ServeBench {
        /// One of [`SCALES`].
        scale: String,
        /// Server worker counts to sweep, in order.
        threads: Vec<usize>,
        /// Concurrent client connections driving the measured closed
        /// loop.
        connections: usize,
        /// Extra idle keep-alive connections held open (unmeasured) for
        /// the whole run — the high-connection-count mode.
        idle: usize,
        /// Requests per connection.
        requests: usize,
        /// Weighted request mix as `(kind, weight)` pairs.
        mix: Vec<(String, u32)>,
        /// Bench the event-driven poll loop instead of the threaded one.
        event_loop: bool,
        /// Emit one machine-readable JSON object per run.
        json: bool,
        /// Where the JSON objects go (`None` = stdout). Implies `json`.
        out: Option<String>,
    },
}

/// How a parse can end without a command.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CliOutcome {
    /// `--help` was requested; print [`usage`] and exit 0.
    Help,
    /// Bad arguments; print the message and exit 2.
    Error(String),
}

fn parse_scale(next: Option<&String>) -> Result<String, CliOutcome> {
    match next {
        Some(s) if SCALES.contains(&s.as_str()) => Ok(s.clone()),
        other => {
            let got = other.map(String::as_str).unwrap_or("<missing>");
            Err(CliOutcome::Error(format!("invalid --scale `{got}`")))
        }
    }
}

/// Parses `repro`'s arguments (without the program name).
///
/// Rules:
/// * duplicated experiments run once, keeping first-mention order
///   (`repro h1 fp h1` ⟹ `[h1, fp]`);
/// * `all` expands to every experiment but must stand alone — mixing it
///   with named experiments (`repro all h1`) is ambiguous (did the caller
///   want one experiment or a re-run of everything?) and is rejected;
/// * unknown experiments and bad `--scale` values are rejected;
/// * `snapshot save|query` selects the snapshot mode instead; `save` takes
///   an output path and an optional `--scale`, `query` takes an input path,
///   optional numeric address ids, and an optional `--top N`;
/// * `taint` selects the batch taint mode: optional `--scale`, `--threads`
///   and `--max-txs`, plus `--thefts` naming the cases to track (`all`, the
///   default, must stand alone — the same rule as the experiment list).
pub fn parse(args: &[String]) -> Result<Command, CliOutcome> {
    match args.first().map(String::as_str) {
        Some("snapshot") => return parse_snapshot(&args[1..]),
        Some("taint") => return parse_taint(&args[1..]),
        Some("ingest") => return parse_ingest(&args[1..]),
        Some("store") => return parse_store(&args[1..]),
        Some("serve") => return parse_serve(&args[1..]),
        Some("serve-bench") => return parse_serve_bench(&args[1..]),
        _ => {}
    }
    let mut scale = "default".to_string();
    let mut named: Vec<String> = Vec::new();
    let mut saw_all = false;
    let mut json = false;
    let mut out: Option<String> = None;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--scale" => scale = parse_scale(it.next())?,
            "--help" | "-h" => return Err(CliOutcome::Help),
            "--json" => json = true,
            "--out" => {
                let Some(path) = it.next() else {
                    return Err(CliOutcome::Error("--out requires a file path".to_string()));
                };
                out = Some(path.clone());
                json = true;
            }
            "all" => saw_all = true,
            other => {
                if !EXPERIMENTS.contains(&other) {
                    return Err(CliOutcome::Error(format!("unknown experiment `{other}`")));
                }
                if !named.contains(&other.to_string()) {
                    named.push(other.to_string());
                }
            }
        }
    }
    if saw_all && !named.is_empty() {
        return Err(CliOutcome::Error(
            "`all` cannot be combined with named experiments".to_string(),
        ));
    }
    let experiments = if saw_all || named.is_empty() {
        EXPERIMENTS.iter().map(|e| e.to_string()).collect()
    } else {
        named
    };
    Ok(Command::Run(RunPlan { scale, experiments, json, out }))
}

/// Parses a positive integer option value.
fn parse_count(flag: &str, next: Option<&String>) -> Result<usize, CliOutcome> {
    match next.and_then(|s| s.parse().ok()) {
        Some(n) if n > 0 => Ok(n),
        _ => Err(CliOutcome::Error(format!("invalid {flag} value"))),
    }
}

/// Parses the arguments after the `serve` keyword.
fn parse_serve(args: &[String]) -> Result<Command, CliOutcome> {
    let mut scale = "default".to_string();
    let mut port = DEFAULT_SERVE_PORT;
    let mut metrics_port: Option<u16> = None;
    let mut workers = 0usize;
    let mut cache = DEFAULT_SERVE_CACHE;
    let mut live = false;
    let mut event_loop = false;
    let mut store: Option<String> = None;
    let mut epoch = DEFAULT_INGEST_EPOCH;
    let mut shards = DEFAULT_STORE_SHARDS;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--scale" => scale = parse_scale(it.next())?,
            "--help" | "-h" => return Err(CliOutcome::Help),
            "--port" => {
                port = match it.next().and_then(|s| s.parse().ok()) {
                    Some(p) => p,
                    None => return Err(CliOutcome::Error("invalid --port value".to_string())),
                };
            }
            "--metrics-port" => {
                metrics_port = match it.next().and_then(|s| s.parse().ok()) {
                    Some(p) => Some(p),
                    None => {
                        return Err(CliOutcome::Error("invalid --metrics-port value".to_string()))
                    }
                };
            }
            "--workers" => {
                workers = match it.next().and_then(|s| s.parse().ok()) {
                    Some(n) => n,
                    None => return Err(CliOutcome::Error("invalid --workers value".to_string())),
                };
            }
            "--cache" => {
                cache = match it.next().and_then(|s| s.parse().ok()) {
                    Some(n) => n,
                    None => return Err(CliOutcome::Error("invalid --cache value".to_string())),
                };
            }
            "--live" => live = true,
            "--event-loop" => event_loop = true,
            "--store" => {
                let Some(dir) = it.next() else {
                    return Err(CliOutcome::Error("--store requires a directory".to_string()));
                };
                store = Some(dir.clone());
            }
            "--epoch" => epoch = parse_count("--epoch", it.next())?,
            "--shards" => shards = parse_count("--shards", it.next())?,
            other => return Err(CliOutcome::Error(format!("unknown serve option `{other}`"))),
        }
    }
    if !live && store.is_some() {
        return Err(CliOutcome::Error("--store requires --live".to_string()));
    }
    // An ephemeral metrics port (0) can never collide; two explicit equal
    // ports would fight over one bind, so reject up front.
    if metrics_port == Some(port) && port != 0 {
        return Err(CliOutcome::Error("--metrics-port must differ from --port".to_string()));
    }
    Ok(Command::Serve {
        scale,
        port,
        metrics_port,
        workers,
        cache,
        live,
        store,
        epoch,
        shards,
        event_loop,
    })
}

/// Parses a `--mix kind:weight,...` specification.
fn parse_mix(spec: &str) -> Result<Vec<(String, u32)>, CliOutcome> {
    let mut mix: Vec<(String, u32)> = Vec::new();
    for entry in spec.split(',') {
        let Some((kind, weight)) = entry.split_once(':') else {
            return Err(CliOutcome::Error(format!(
                "mix entry `{entry}` is not of the form kind:weight"
            )));
        };
        let kind = kind.trim();
        if RequestKind::from_name(kind).is_none() {
            let known = RequestKind::ALL.map(RequestKind::label).join(", ");
            return Err(CliOutcome::Error(format!(
                "unknown mix kind `{kind}` (known: {known})"
            )));
        }
        let weight: u32 = match weight.trim().parse() {
            Ok(w) if w > 0 => w,
            _ => {
                return Err(CliOutcome::Error(format!(
                    "mix weight for `{kind}` must be a positive integer"
                )))
            }
        };
        if mix.iter().any(|(k, _)| k == kind) {
            return Err(CliOutcome::Error(format!("mix names `{kind}` twice")));
        }
        mix.push((kind.to_string(), weight));
    }
    Ok(mix)
}

/// Parses the arguments after the `serve-bench` keyword.
fn parse_serve_bench(args: &[String]) -> Result<Command, CliOutcome> {
    let mut scale = "default".to_string();
    let mut threads: Vec<usize> = DEFAULT_BENCH_THREADS.to_vec();
    let mut connections = DEFAULT_BENCH_CONNECTIONS;
    let mut idle = 0usize;
    let mut requests = DEFAULT_BENCH_REQUESTS;
    let mut mix = parse_mix(DEFAULT_BENCH_MIX).expect("default mix parses");
    let mut event_loop = false;
    let mut json = false;
    let mut out: Option<String> = None;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--scale" => scale = parse_scale(it.next())?,
            "--help" | "-h" => return Err(CliOutcome::Help),
            "--threads" => {
                let Some(list) = it.next() else {
                    return Err(CliOutcome::Error("invalid --threads value".to_string()));
                };
                threads = Vec::new();
                for part in list.split(',') {
                    match part.trim().parse::<usize>() {
                        Ok(n) if n > 0 => {
                            if !threads.contains(&n) {
                                threads.push(n);
                            }
                        }
                        _ => {
                            return Err(CliOutcome::Error(format!(
                                "invalid worker count `{part}` in --threads"
                            )))
                        }
                    }
                }
                if threads.is_empty() {
                    return Err(CliOutcome::Error("--threads names no worker counts".to_string()));
                }
            }
            "--connections" => connections = parse_count("--connections", it.next())?,
            "--idle" => {
                // Unlike the other counts, zero idle connections is valid
                // (and the default).
                idle = match it.next().and_then(|s| s.parse().ok()) {
                    Some(n) => n,
                    None => return Err(CliOutcome::Error("invalid --idle value".to_string())),
                };
            }
            "--requests" => requests = parse_count("--requests", it.next())?,
            "--mix" => {
                let Some(spec) = it.next() else {
                    return Err(CliOutcome::Error("--mix requires a value".to_string()));
                };
                mix = parse_mix(spec)?;
            }
            "--event-loop" => event_loop = true,
            "--json" => json = true,
            "--out" => {
                let Some(path) = it.next() else {
                    return Err(CliOutcome::Error("--out requires a file path".to_string()));
                };
                out = Some(path.clone());
                json = true;
            }
            other => {
                return Err(CliOutcome::Error(format!("unknown serve-bench option `{other}`")))
            }
        }
    }
    Ok(Command::ServeBench { scale, threads, connections, idle, requests, mix, event_loop, json, out })
}

/// Parses the arguments after the `snapshot` keyword.
fn parse_snapshot(args: &[String]) -> Result<Command, CliOutcome> {
    let sub = match args.first() {
        Some(s) if s == "--help" || s == "-h" => return Err(CliOutcome::Help),
        Some(s) => s.as_str(),
        None => {
            return Err(CliOutcome::Error(
                "snapshot requires a subcommand: save | query".to_string(),
            ))
        }
    };
    match sub {
        "save" => {
            let mut path: Option<String> = None;
            let mut scale = "default".to_string();
            let mut it = args[1..].iter();
            while let Some(a) = it.next() {
                match a.as_str() {
                    "--scale" => scale = parse_scale(it.next())?,
                    "--help" | "-h" => return Err(CliOutcome::Help),
                    other if other.starts_with('-') => {
                        return Err(CliOutcome::Error(format!("unknown option `{other}`")))
                    }
                    other if path.is_none() => path = Some(other.to_string()),
                    other => {
                        return Err(CliOutcome::Error(format!(
                            "unexpected argument `{other}` after snapshot save path"
                        )))
                    }
                }
            }
            let path = path.ok_or_else(|| {
                CliOutcome::Error("snapshot save requires an output file".to_string())
            })?;
            Ok(Command::SnapshotSave { scale, path })
        }
        "query" => {
            let mut path: Option<String> = None;
            let mut addresses = Vec::new();
            let mut top = DEFAULT_QUERY_TOP;
            let mut it = args[1..].iter();
            while let Some(a) = it.next() {
                match a.as_str() {
                    "--top" => {
                        top = match it.next().and_then(|s| s.parse().ok()) {
                            Some(n) => n,
                            None => {
                                return Err(CliOutcome::Error("invalid --top value".to_string()))
                            }
                        };
                    }
                    "--help" | "-h" => return Err(CliOutcome::Help),
                    other if other.starts_with('-') => {
                        return Err(CliOutcome::Error(format!("unknown option `{other}`")))
                    }
                    other if path.is_none() => path = Some(other.to_string()),
                    other => match other.parse::<u32>() {
                        Ok(addr) => addresses.push(addr),
                        Err(_) => {
                            return Err(CliOutcome::Error(format!(
                                "invalid address id `{other}` (expected a number)"
                            )))
                        }
                    },
                }
            }
            let path = path.ok_or_else(|| {
                CliOutcome::Error("snapshot query requires an input file".to_string())
            })?;
            Ok(Command::SnapshotQuery { path, addresses, top })
        }
        other => Err(CliOutcome::Error(format!(
            "unknown snapshot subcommand `{other}` (expected save | query)"
        ))),
    }
}

/// Parses the arguments after the `taint` keyword.
fn parse_taint(args: &[String]) -> Result<Command, CliOutcome> {
    let mut scale = "default".to_string();
    let mut thefts: Vec<String> = Vec::new();
    let mut saw_all = false;
    let mut threads = 0usize;
    let mut max_txs = DEFAULT_TAINT_MAX_TXS;
    let mut json = false;
    let mut out: Option<String> = None;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--scale" => scale = parse_scale(it.next())?,
            "--help" | "-h" => return Err(CliOutcome::Help),
            "--threads" => {
                threads = match it.next().and_then(|s| s.parse().ok()) {
                    Some(n) => n,
                    None => return Err(CliOutcome::Error("invalid --threads value".to_string())),
                };
            }
            "--max-txs" => {
                max_txs = match it.next().and_then(|s| s.parse().ok()) {
                    Some(n) if n > 0 => n,
                    _ => return Err(CliOutcome::Error("invalid --max-txs value".to_string())),
                };
            }
            "--thefts" => {
                let Some(list) = it.next() else {
                    return Err(CliOutcome::Error("--thefts requires a value".to_string()));
                };
                for name in list.split(',') {
                    let name = name.trim();
                    if name.is_empty() {
                        return Err(CliOutcome::Error(format!(
                            "empty theft name in `--thefts {list}`"
                        )));
                    }
                    if name == "all" {
                        saw_all = true;
                    } else if !thefts.iter().any(|t| t == name) {
                        thefts.push(name.to_string());
                    }
                }
            }
            "--json" => json = true,
            "--out" => {
                let Some(path) = it.next() else {
                    return Err(CliOutcome::Error("--out requires a file path".to_string()));
                };
                out = Some(path.clone());
                json = true;
            }
            other => {
                return Err(CliOutcome::Error(format!(
                    "unknown taint option `{other}`"
                )))
            }
        }
    }
    if saw_all && !thefts.is_empty() {
        return Err(CliOutcome::Error(
            "`all` cannot be combined with named thefts".to_string(),
        ));
    }
    Ok(Command::Taint { scale, thefts, threads, max_txs, json, out })
}

/// Parses the arguments after the `ingest` keyword.
///
/// `--shards` takes a comma list of positive shard counts (duplicates
/// collapse, first-mention order kept); `--epoch` takes the positive number
/// of blocks between cross-shard reconciles. Zero is rejected for both —
/// a zero-shard pipeline has nowhere to put an address and a zero-block
/// epoch never reconciles.
fn parse_ingest(args: &[String]) -> Result<Command, CliOutcome> {
    let mut scale = "default".to_string();
    let mut shards: Vec<usize> = DEFAULT_INGEST_SHARDS.to_vec();
    let mut epoch = DEFAULT_INGEST_EPOCH;
    let mut json = false;
    let mut out: Option<String> = None;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--scale" => scale = parse_scale(it.next())?,
            "--help" | "-h" => return Err(CliOutcome::Help),
            "--shards" => {
                let Some(list) = it.next() else {
                    return Err(CliOutcome::Error("invalid --shards value".to_string()));
                };
                shards = Vec::new();
                for part in list.split(',') {
                    match part.trim().parse::<usize>() {
                        Ok(n) if n > 0 => {
                            if !shards.contains(&n) {
                                shards.push(n);
                            }
                        }
                        _ => {
                            return Err(CliOutcome::Error(format!(
                                "invalid shard count `{part}` in --shards (must be > 0)"
                            )))
                        }
                    }
                }
                if shards.is_empty() {
                    return Err(CliOutcome::Error("--shards names no shard counts".to_string()));
                }
            }
            "--epoch" => epoch = parse_count("--epoch", it.next())?,
            "--json" => json = true,
            "--out" => {
                let Some(path) = it.next() else {
                    return Err(CliOutcome::Error("--out requires a file path".to_string()));
                };
                out = Some(path.clone());
                json = true;
            }
            other => {
                return Err(CliOutcome::Error(format!("unknown ingest option `{other}`")))
            }
        }
    }
    Ok(Command::Ingest { scale, shards, epoch, json, out })
}

/// Parses the arguments after the `store` keyword.
///
/// All three subcommands take the store directory as a positional argument
/// (the `snapshot save <file>` convention). `save` and `append` take
/// `--scale`; `open` instead takes `--verify-scale`, because opening never
/// builds an economy unless asked to differentially verify one. `append`'s
/// `--epochs` and `--shards` must be positive — zero epochs cuts the chain
/// into nothing and a zero-shard pipeline has nowhere to put an address.
fn parse_store(args: &[String]) -> Result<Command, CliOutcome> {
    let sub = match args.first() {
        Some(s) if s == "--help" || s == "-h" => return Err(CliOutcome::Help),
        Some(s) => s.as_str(),
        None => {
            return Err(CliOutcome::Error(
                "store requires a subcommand: save | open | append".to_string(),
            ))
        }
    };
    if !matches!(sub, "save" | "open" | "append") {
        return Err(CliOutcome::Error(format!(
            "unknown store subcommand `{sub}` (expected save | open | append)"
        )));
    }
    let mut dir: Option<String> = None;
    let mut scale = "default".to_string();
    let mut verify_scale: Option<String> = None;
    let mut epochs = DEFAULT_STORE_EPOCHS;
    let mut shards = DEFAULT_STORE_SHARDS;
    let mut json = false;
    let mut out: Option<String> = None;
    let mut it = args[1..].iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--help" | "-h" => return Err(CliOutcome::Help),
            "--scale" if sub != "open" => scale = parse_scale(it.next())?,
            "--verify-scale" if sub == "open" => verify_scale = Some(parse_scale(it.next())?),
            "--epochs" if sub == "append" => epochs = parse_count("--epochs", it.next())?,
            "--shards" if sub == "append" => shards = parse_count("--shards", it.next())?,
            "--json" => json = true,
            "--out" => {
                let Some(path) = it.next() else {
                    return Err(CliOutcome::Error("--out requires a file path".to_string()));
                };
                out = Some(path.clone());
                json = true;
            }
            other if other.starts_with('-') => {
                return Err(CliOutcome::Error(format!("unknown store {sub} option `{other}`")))
            }
            other if dir.is_none() => dir = Some(other.to_string()),
            other => {
                return Err(CliOutcome::Error(format!(
                    "unexpected argument `{other}` after store {sub} directory"
                )))
            }
        }
    }
    let dir = dir.ok_or_else(|| {
        CliOutcome::Error(format!("store {sub} requires a store directory"))
    })?;
    Ok(match sub {
        "save" => Command::StoreSave { scale, dir, json, out },
        "open" => Command::StoreOpen { dir, verify_scale, json, out },
        _ => Command::StoreAppend { scale, dir, epochs, shards, json, out },
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(s: &[&str]) -> Vec<String> {
        s.iter().map(|a| a.to_string()).collect()
    }

    fn run_plan(args_in: &[&str]) -> RunPlan {
        match parse(&args(args_in)) {
            Ok(Command::Run(plan)) => plan,
            other => panic!("expected a run plan for {args_in:?}, got {other:?}"),
        }
    }

    #[test]
    fn defaults_to_all_at_default_scale() {
        let plan = run_plan(&[]);
        assert_eq!(plan.scale, "default");
        assert_eq!(plan.experiments, EXPERIMENTS.map(String::from).to_vec());
    }

    #[test]
    fn explicit_all_expands() {
        let plan = run_plan(&["--scale", "tiny", "all"]);
        assert_eq!(plan.scale, "tiny");
        assert_eq!(plan.experiments.len(), EXPERIMENTS.len());
    }

    #[test]
    fn duplicates_run_once_preserving_order() {
        let plan = run_plan(&["h1", "fp", "h1", "fp", "h1"]);
        assert_eq!(plan.experiments, vec!["h1", "fp"]);
        // Order is first-mention, not EXPERIMENTS order.
        let plan = run_plan(&["fp", "h1"]);
        assert_eq!(plan.experiments, vec!["fp", "h1"]);
    }

    #[test]
    fn all_mixed_with_named_is_rejected() {
        for mix in [&["all", "h1"][..], &["h1", "all"], &["h1", "all", "fp"]] {
            match parse(&args(mix)) {
                Err(CliOutcome::Error(msg)) => assert!(msg.contains("all"), "{msg}"),
                other => panic!("expected error for {mix:?}, got {other:?}"),
            }
        }
        // `all all` is just `all`.
        assert!(parse(&args(&["all", "all"])).is_ok());
    }

    #[test]
    fn unknown_experiment_and_bad_scale_are_rejected() {
        assert!(matches!(parse(&args(&["bogus"])), Err(CliOutcome::Error(_))));
        assert!(matches!(parse(&args(&["--scale", "huge"])), Err(CliOutcome::Error(_))));
        assert!(matches!(parse(&args(&["--scale"])), Err(CliOutcome::Error(_))));
    }

    #[test]
    fn help_short_circuits() {
        assert_eq!(parse(&args(&["-h"])), Err(CliOutcome::Help));
        assert_eq!(parse(&args(&["--help", "bogus"])), Err(CliOutcome::Help));
        assert_eq!(parse(&args(&["snapshot", "--help"])), Err(CliOutcome::Help));
        assert_eq!(parse(&args(&["snapshot", "save", "-h"])), Err(CliOutcome::Help));
        assert_eq!(parse(&args(&["snapshot", "query", "--help"])), Err(CliOutcome::Help));
    }

    #[test]
    fn snapshot_save_parses_path_and_scale() {
        assert_eq!(
            parse(&args(&["snapshot", "save", "out.snap"])).unwrap(),
            Command::SnapshotSave { scale: "default".into(), path: "out.snap".into() }
        );
        assert_eq!(
            parse(&args(&["snapshot", "save", "--scale", "tiny", "out.snap"])).unwrap(),
            Command::SnapshotSave { scale: "tiny".into(), path: "out.snap".into() }
        );
    }

    #[test]
    fn snapshot_query_parses_addresses_and_top() {
        assert_eq!(
            parse(&args(&["snapshot", "query", "out.snap"])).unwrap(),
            Command::SnapshotQuery {
                path: "out.snap".into(),
                addresses: vec![],
                top: DEFAULT_QUERY_TOP
            }
        );
        assert_eq!(
            parse(&args(&["snapshot", "query", "out.snap", "3", "17", "--top", "5"])).unwrap(),
            Command::SnapshotQuery {
                path: "out.snap".into(),
                addresses: vec![3, 17],
                top: 5
            }
        );
    }

    #[test]
    fn snapshot_errors_are_usage_errors() {
        for bad in [
            &["snapshot"][..],
            &["snapshot", "frobnicate"],
            &["snapshot", "save"],
            &["snapshot", "save", "a", "b"],
            &["snapshot", "save", "--scale", "huge", "a"],
            &["snapshot", "save", "--scael", "tiny", "a"],
            &["snapshot", "save", "--bogus"],
            &["snapshot", "query"],
            &["snapshot", "query", "a", "notanumber"],
            &["snapshot", "query", "a", "--top", "many"],
            &["snapshot", "query", "a", "--top"],
            &["snapshot", "query", "--tpo", "5", "a"],
        ] {
            assert!(
                matches!(parse(&args(bad)), Err(CliOutcome::Error(_))),
                "expected usage error for {bad:?}"
            );
        }
    }

    #[test]
    fn taint_defaults() {
        assert_eq!(
            parse(&args(&["taint"])).unwrap(),
            Command::Taint {
                scale: "default".into(),
                thefts: vec![],
                threads: 0,
                max_txs: DEFAULT_TAINT_MAX_TXS,
                json: false,
                out: None
            }
        );
        // `--thefts all` is the explicit spelling of the default.
        assert_eq!(
            parse(&args(&["taint", "--thefts", "all"])).unwrap(),
            parse(&args(&["taint"])).unwrap()
        );
    }

    #[test]
    fn taint_parses_every_option() {
        assert_eq!(
            parse(&args(&[
                "taint", "--scale", "tiny", "--thefts", "Betcoin,Bitfloor,Betcoin",
                "--threads", "4", "--max-txs", "99"
            ]))
            .unwrap(),
            Command::Taint {
                scale: "tiny".into(),
                // Duplicates collapse, first-mention order kept.
                thefts: vec!["Betcoin".into(), "Bitfloor".into()],
                threads: 4,
                max_txs: 99,
                json: false,
                out: None
            }
        );
        // --out implies --json, exactly like run mode.
        let Command::Taint { json, out, .. } =
            parse(&args(&["taint", "--out", "taint.json"])).unwrap()
        else {
            panic!("expected taint");
        };
        assert!(json, "--out implies --json");
        assert_eq!(out.as_deref(), Some("taint.json"));
    }

    #[test]
    fn taint_errors_are_usage_errors() {
        for bad in [
            &["taint", "--thefts"][..],
            &["taint", "--thefts", "a,,b"],
            &["taint", "--thefts", "all,Betcoin"],
            &["taint", "--threads", "many"],
            &["taint", "--threads"],
            &["taint", "--max-txs", "0"],
            &["taint", "--max-txs", "lots"],
            &["taint", "--scale", "huge"],
            &["taint", "stray"],
            &["taint", "--bogus"],
        ] {
            assert!(
                matches!(parse(&args(bad)), Err(CliOutcome::Error(_))),
                "expected usage error for {bad:?}"
            );
        }
        assert_eq!(parse(&args(&["taint", "--help"])), Err(CliOutcome::Help));
    }

    #[test]
    fn ingest_parses_defaults_and_overrides() {
        assert_eq!(
            parse(&args(&["ingest"])).unwrap(),
            Command::Ingest {
                scale: "default".into(),
                shards: DEFAULT_INGEST_SHARDS.to_vec(),
                epoch: DEFAULT_INGEST_EPOCH,
                json: false,
                out: None
            }
        );
        assert_eq!(
            parse(&args(&[
                "ingest", "--scale", "tiny", "--shards", "2,8,2", "--epoch", "7", "--json"
            ]))
            .unwrap(),
            Command::Ingest {
                scale: "tiny".into(),
                // Duplicate shard counts collapse, order kept.
                shards: vec![2, 8],
                epoch: 7,
                json: true,
                out: None
            }
        );
        // --out implies --json.
        let Command::Ingest { json, out, .. } =
            parse(&args(&["ingest", "--out", "ingest.json"])).unwrap()
        else {
            panic!("expected ingest");
        };
        assert!(json, "--out implies --json");
        assert_eq!(out.as_deref(), Some("ingest.json"));
    }

    #[test]
    fn ingest_rejects_zero_shards_and_zero_epoch() {
        // The tentpole's typed usage errors: a zero anywhere in --shards,
        // or a zero --epoch, is a hard parse error (exit 2), not a panic
        // deep in the pipeline.
        for bad in [
            &["ingest", "--shards", "0"][..],
            &["ingest", "--shards", "4,0"],
            &["ingest", "--shards", "x"],
            &["ingest", "--shards", ""],
            &["ingest", "--shards"],
            &["ingest", "--epoch", "0"],
            &["ingest", "--epoch", "soon"],
            &["ingest", "--epoch"],
            &["ingest", "--scale", "huge"],
            &["ingest", "--out"],
            &["ingest", "stray"],
            &["ingest", "--bogus"],
        ] {
            assert!(
                matches!(parse(&args(bad)), Err(CliOutcome::Error(_))),
                "expected usage error for {bad:?}"
            );
        }
        assert_eq!(parse(&args(&["ingest", "--help"])), Err(CliOutcome::Help));
    }

    #[test]
    fn usage_lists_every_experiment_and_the_snapshot_subcommands() {
        let usage = usage();
        for exp in EXPERIMENTS {
            assert!(usage.contains(exp), "usage is missing experiment `{exp}`");
        }
        for scale in SCALES {
            assert!(usage.contains(scale), "usage is missing scale `{scale}`");
        }
        for needle in [
            "snapshot save",
            "snapshot query",
            "--top",
            "taint",
            "--thefts",
            "ingest",
            "--shards",
            "--epoch",
            "store save",
            "store open",
            "store append",
            "--verify-scale",
            "--epochs",
            "serve",
            "serve-bench",
            "--json",
            "--out",
            "--connections",
            "--idle",
            "--event-loop",
            "--mix",
            "--metrics-port",
            "GET /metrics",
        ] {
            assert!(usage.contains(needle), "usage is missing `{needle}`");
        }
        for kind in RequestKind::ALL {
            assert!(usage.contains(kind.label()), "usage is missing mix kind `{}`", kind.label());
        }
    }

    #[test]
    fn store_parses_every_subcommand() {
        assert_eq!(
            parse(&args(&["store", "save", "art"])).unwrap(),
            Command::StoreSave { scale: "default".into(), dir: "art".into(), json: false, out: None }
        );
        assert_eq!(
            parse(&args(&["store", "save", "--scale", "tiny", "art", "--json"])).unwrap(),
            Command::StoreSave { scale: "tiny".into(), dir: "art".into(), json: true, out: None }
        );
        assert_eq!(
            parse(&args(&["store", "open", "art"])).unwrap(),
            Command::StoreOpen { dir: "art".into(), verify_scale: None, json: false, out: None }
        );
        assert_eq!(
            parse(&args(&["store", "open", "art", "--verify-scale", "tiny"])).unwrap(),
            Command::StoreOpen {
                dir: "art".into(),
                verify_scale: Some("tiny".into()),
                json: false,
                out: None
            }
        );
        assert_eq!(
            parse(&args(&["store", "append", "art"])).unwrap(),
            Command::StoreAppend {
                scale: "default".into(),
                dir: "art".into(),
                epochs: DEFAULT_STORE_EPOCHS,
                shards: DEFAULT_STORE_SHARDS,
                json: false,
                out: None
            }
        );
        // --out implies --json, exactly like run mode.
        let Command::StoreAppend { epochs, shards, json, out, .. } = parse(&args(&[
            "store", "append", "art", "--epochs", "7", "--shards", "2", "--out", "s.json",
        ]))
        .unwrap() else {
            panic!("expected store append");
        };
        assert_eq!((epochs, shards), (7, 2));
        assert!(json, "--out implies --json");
        assert_eq!(out.as_deref(), Some("s.json"));
    }

    #[test]
    fn store_errors_are_usage_errors() {
        for bad in [
            &["store"][..],
            &["store", "frobnicate"],
            &["store", "save"],
            &["store", "save", "a", "b"],
            &["store", "save", "--scale", "huge", "a"],
            // open builds no economy: --scale belongs to save/append only.
            &["store", "open", "a", "--scale", "tiny"],
            &["store", "open", "a", "--verify-scale", "huge"],
            &["store", "open", "a", "--verify-scale"],
            &["store", "append", "a", "--epochs", "0"],
            &["store", "append", "a", "--epochs", "soon"],
            &["store", "append", "a", "--shards", "0"],
            &["store", "append", "--epochs", "2"],
            &["store", "save", "a", "--verify-scale", "tiny"],
            &["store", "save", "--bogus"],
            &["store", "open", "--out"],
        ] {
            assert!(
                matches!(parse(&args(bad)), Err(CliOutcome::Error(_))),
                "expected usage error for {bad:?}"
            );
        }
        assert_eq!(parse(&args(&["store", "--help"])), Err(CliOutcome::Help));
        assert_eq!(parse(&args(&["store", "open", "-h"])), Err(CliOutcome::Help));
    }

    #[test]
    fn json_and_out_flags_parse_on_run_mode() {
        let plan = run_plan(&["--json", "fig1"]);
        assert!(plan.json);
        assert_eq!(plan.out, None);
        // --out implies --json.
        let plan = run_plan(&["--out", "results.json", "h1"]);
        assert!(plan.json);
        assert_eq!(plan.out.as_deref(), Some("results.json"));
        // Neither flag set by default.
        let plan = run_plan(&["fig1"]);
        assert!(!plan.json);
        assert!(plan.out.is_none());
        assert!(matches!(parse(&args(&["--out"])), Err(CliOutcome::Error(_))));
    }

    #[test]
    fn serve_parses_defaults_and_overrides() {
        assert_eq!(
            parse(&args(&["serve"])).unwrap(),
            Command::Serve {
                scale: "default".into(),
                port: DEFAULT_SERVE_PORT,
                metrics_port: None,
                workers: 0,
                cache: DEFAULT_SERVE_CACHE,
                live: false,
                store: None,
                epoch: DEFAULT_INGEST_EPOCH,
                shards: DEFAULT_STORE_SHARDS,
                event_loop: false
            }
        );
        assert_eq!(
            parse(&args(&[
                "serve", "--scale", "tiny", "--port", "9000", "--metrics-port", "9100",
                "--workers", "4", "--cache", "0", "--event-loop"
            ]))
            .unwrap(),
            Command::Serve {
                scale: "tiny".into(),
                port: 9000,
                metrics_port: Some(9100),
                workers: 4,
                cache: 0,
                live: false,
                store: None,
                epoch: DEFAULT_INGEST_EPOCH,
                shards: DEFAULT_STORE_SHARDS,
                event_loop: true
            }
        );
        assert_eq!(
            parse(&args(&[
                "serve", "--live", "--store", "/tmp/s", "--epoch", "8", "--shards", "2"
            ]))
            .unwrap(),
            Command::Serve {
                scale: "default".into(),
                port: DEFAULT_SERVE_PORT,
                metrics_port: None,
                workers: 0,
                cache: DEFAULT_SERVE_CACHE,
                live: true,
                store: Some("/tmp/s".into()),
                epoch: 8,
                shards: 2,
                event_loop: false
            }
        );
        // Two ephemeral ports never collide, so `0 0` stays legal.
        let Command::Serve { metrics_port, .. } =
            parse(&args(&["serve", "--port", "0", "--metrics-port", "0"])).unwrap()
        else {
            panic!("expected serve");
        };
        assert_eq!(metrics_port, Some(0));
        // The event loop composes with live ingest: hot swaps publish
        // into either serving loop.
        let Command::Serve { live, event_loop, .. } =
            parse(&args(&["serve", "--live", "--event-loop"])).unwrap()
        else {
            panic!("expected serve");
        };
        assert!(live && event_loop);
    }

    #[test]
    fn serve_errors_are_usage_errors() {
        for bad in [
            &["serve", "--port", "notaport"][..],
            &["serve", "--port", "99999"],
            &["serve", "--workers", "many"],
            &["serve", "--cache"],
            &["serve", "--scale", "huge"],
            &["serve", "stray"],
            &["serve", "--live", "--epoch", "0"],
            &["serve", "--live", "--shards", "0"],
            &["serve", "--live", "--store"],
            &["serve", "--store", "/tmp/s"], // --store without --live
            &["serve", "--metrics-port", "notaport"],
            &["serve", "--metrics-port"],
            // Binary and scrape listener on one explicit port.
            &["serve", "--port", "9000", "--metrics-port", "9000"],
        ] {
            assert!(
                matches!(parse(&args(bad)), Err(CliOutcome::Error(_))),
                "expected usage error for {bad:?}"
            );
        }
        assert_eq!(parse(&args(&["serve", "--help"])), Err(CliOutcome::Help));
    }

    #[test]
    fn serve_bench_parses_defaults_and_overrides() {
        let Command::ServeBench { scale, threads, connections, idle, requests, mix, event_loop, json, out } =
            parse(&args(&["serve-bench"])).unwrap()
        else {
            panic!("expected serve-bench");
        };
        assert_eq!(scale, "default");
        assert_eq!(threads, DEFAULT_BENCH_THREADS.to_vec());
        assert_eq!(connections, DEFAULT_BENCH_CONNECTIONS);
        assert_eq!(idle, 0);
        assert_eq!(requests, DEFAULT_BENCH_REQUESTS);
        assert_eq!(mix, parse_mix(DEFAULT_BENCH_MIX).unwrap());
        assert!(!event_loop);
        assert!(!json && out.is_none());

        let Command::ServeBench { threads, connections, idle, requests, mix, event_loop, json, out, .. } =
            parse(&args(&[
                "serve-bench",
                "--threads",
                "2,1,2",
                "--connections",
                "8",
                "--idle",
                "1008",
                "--requests",
                "100",
                "--mix",
                "ping:1,taint:3",
                "--event-loop",
                "--out",
                "bench.json",
            ]))
            .unwrap()
        else {
            panic!("expected serve-bench");
        };
        // Duplicate worker counts collapse, order kept.
        assert_eq!(threads, vec![2, 1]);
        assert_eq!(connections, 8);
        assert_eq!(idle, 1008);
        assert_eq!(requests, 100);
        assert_eq!(mix, vec![("ping".to_string(), 1), ("taint".to_string(), 3)]);
        assert!(event_loop);
        assert!(json, "--out implies --json");
        assert_eq!(out.as_deref(), Some("bench.json"));
    }

    #[test]
    fn serve_bench_errors_are_usage_errors() {
        for bad in [
            &["serve-bench", "--threads", "0"][..],
            &["serve-bench", "--threads", "1,x"],
            &["serve-bench", "--threads"],
            &["serve-bench", "--connections", "0"],
            &["serve-bench", "--idle", "nope"],
            &["serve-bench", "--idle"],
            &["serve-bench", "--requests", "none"],
            &["serve-bench", "--mix", "addr"],
            &["serve-bench", "--mix", "addr:0"],
            &["serve-bench", "--mix", "bogus:1"],
            &["serve-bench", "--mix", "addr:1,addr:2"],
            &["serve-bench", "--mix"],
            &["serve-bench", "--out"],
            &["serve-bench", "--bogus"],
        ] {
            assert!(
                matches!(parse(&args(bad)), Err(CliOutcome::Error(_))),
                "expected usage error for {bad:?}"
            );
        }
        assert_eq!(parse(&args(&["serve-bench", "-h"])), Err(CliOutcome::Help));
    }
}

//! Argument parsing for the `repro` binary, factored out so the dedupe and
//! `all`-mixing rules are unit-testable without spawning the binary.

/// Every experiment `repro` knows, in presentation order.
pub const EXPERIMENTS: [&str; 9] =
    ["fig1", "tab1", "h1", "fp", "super", "h2", "fig2", "tab2", "tab3"];

/// The usage string printed by `--help` and on argument errors.
pub fn usage() -> String {
    format!(
        "usage: repro [--scale tiny|default|paper] [experiment...]\n\
         experiments: all {} (default: all)",
        EXPERIMENTS.join(" ")
    )
}

/// A parsed invocation: which scale, and which experiments to run, in
/// order, with duplicates removed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RunPlan {
    /// One of `tiny`, `default`, `paper`.
    pub scale: String,
    /// Experiments to run, in first-mention order, deduplicated. Contains
    /// every experiment when `all` (or nothing) was requested.
    pub experiments: Vec<String>,
}

/// How a parse can end without a plan.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CliOutcome {
    /// `--help` was requested; print [`usage`] and exit 0.
    Help,
    /// Bad arguments; print the message and exit 2.
    Error(String),
}

/// Parses `repro`'s arguments (without the program name).
///
/// Rules:
/// * duplicated experiments run once, keeping first-mention order
///   (`repro h1 fp h1` ⟹ `[h1, fp]`);
/// * `all` expands to every experiment but must stand alone — mixing it
///   with named experiments (`repro all h1`) is ambiguous (did the caller
///   want one experiment or a re-run of everything?) and is rejected;
/// * unknown experiments and bad `--scale` values are rejected.
pub fn parse(args: &[String]) -> Result<RunPlan, CliOutcome> {
    let mut scale = "default".to_string();
    let mut named: Vec<String> = Vec::new();
    let mut saw_all = false;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--scale" => {
                scale = match it.next() {
                    Some(s) if ["tiny", "default", "paper"].contains(&s.as_str()) => s.clone(),
                    other => {
                        let got = other.map(String::as_str).unwrap_or("<missing>");
                        return Err(CliOutcome::Error(format!("invalid --scale `{got}`")));
                    }
                };
            }
            "--help" | "-h" => return Err(CliOutcome::Help),
            "all" => saw_all = true,
            other => {
                if !EXPERIMENTS.contains(&other) {
                    return Err(CliOutcome::Error(format!("unknown experiment `{other}`")));
                }
                if !named.contains(&other.to_string()) {
                    named.push(other.to_string());
                }
            }
        }
    }
    if saw_all && !named.is_empty() {
        return Err(CliOutcome::Error(
            "`all` cannot be combined with named experiments".to_string(),
        ));
    }
    let experiments = if saw_all || named.is_empty() {
        EXPERIMENTS.iter().map(|e| e.to_string()).collect()
    } else {
        named
    };
    Ok(RunPlan { scale, experiments })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(s: &[&str]) -> Vec<String> {
        s.iter().map(|a| a.to_string()).collect()
    }

    #[test]
    fn defaults_to_all_at_default_scale() {
        let plan = parse(&[]).unwrap();
        assert_eq!(plan.scale, "default");
        assert_eq!(plan.experiments, EXPERIMENTS.map(String::from).to_vec());
    }

    #[test]
    fn explicit_all_expands() {
        let plan = parse(&args(&["--scale", "tiny", "all"])).unwrap();
        assert_eq!(plan.scale, "tiny");
        assert_eq!(plan.experiments.len(), EXPERIMENTS.len());
    }

    #[test]
    fn duplicates_run_once_preserving_order() {
        let plan = parse(&args(&["h1", "fp", "h1", "fp", "h1"])).unwrap();
        assert_eq!(plan.experiments, vec!["h1", "fp"]);
        // Order is first-mention, not EXPERIMENTS order.
        let plan = parse(&args(&["fp", "h1"])).unwrap();
        assert_eq!(plan.experiments, vec!["fp", "h1"]);
    }

    #[test]
    fn all_mixed_with_named_is_rejected() {
        for mix in [&["all", "h1"][..], &["h1", "all"], &["h1", "all", "fp"]] {
            match parse(&args(mix)) {
                Err(CliOutcome::Error(msg)) => assert!(msg.contains("all"), "{msg}"),
                other => panic!("expected error for {mix:?}, got {other:?}"),
            }
        }
        // `all all` is just `all`.
        assert!(parse(&args(&["all", "all"])).is_ok());
    }

    #[test]
    fn unknown_experiment_and_bad_scale_are_rejected() {
        assert!(matches!(parse(&args(&["bogus"])), Err(CliOutcome::Error(_))));
        assert!(matches!(parse(&args(&["--scale", "huge"])), Err(CliOutcome::Error(_))));
        assert!(matches!(parse(&args(&["--scale"])), Err(CliOutcome::Error(_))));
    }

    #[test]
    fn help_short_circuits() {
        assert_eq!(parse(&args(&["-h"])), Err(CliOutcome::Help));
        assert_eq!(parse(&args(&["--help", "bogus"])), Err(CliOutcome::Help));
    }
}

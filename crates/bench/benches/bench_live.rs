//! Experiment `live`: what hot-swapping artifact generations costs a
//! running query server.
//!
//! Three claims under test:
//!
//! 1. **A swap is an `Arc` exchange behind one mutex — sub-microsecond.**
//!    Workers pin the generation per request, so a publish never blocks a
//!    query and a query never blocks a publish.
//! 2. **Query latency survives continuous swapping.** Socket round-trip
//!    p99 while a background thread publishes generations flat out must
//!    stay within 2x of the frozen-artifact baseline (asserted, not just
//!    reported).
//! 3. **A full live run is dominated by ingest, not by publishing.** The
//!    whole bootstrap → stream → reconcile → swap → terminal-flush
//!    pipeline over the tiny economy costs what the sharded ingest alone
//!    costs, per block.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use fistful_bench::{serve_artifacts, Workbench};
use fistful_chain::encode::Encodable;
use fistful_serve::{
    Client, LiveConfig, LivePipeline, Request, ServeArtifacts, ServeConfig, Server,
};
use fistful_sim::SimConfig;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, OnceLock};
use std::time::{Duration, Instant};

fn fixture() -> &'static (Workbench, Arc<ServeArtifacts>) {
    static FIX: OnceLock<(Workbench, Arc<ServeArtifacts>)> = OnceLock::new();
    FIX.get_or_init(|| {
        let wb = Workbench::build(SimConfig::tiny());
        let artifacts = Arc::new(serve_artifacts(&wb));
        (wb, artifacts)
    })
}

fn start_server(workers: usize, cache_entries: usize) -> Server {
    let (_, artifacts) = fixture();
    let config = ServeConfig {
        addr: "127.0.0.1:0".to_string(),
        workers,
        cache_entries,
        ..ServeConfig::default()
    };
    Server::start(config, Arc::clone(artifacts)).expect("start bench server")
}

/// Claim 1: the publish itself — swap latency as the worker pool sees it.
fn bench_swap_latency(c: &mut Criterion) {
    let (_, artifacts) = fixture();
    let server = start_server(1, 0);
    let publisher = server.publisher();
    let mut epoch = publisher.current_epoch();
    let mut g = c.benchmark_group("live/swap");
    g.bench_function("publish", |b| {
        b.iter(|| {
            epoch += 1;
            publisher.publish(Arc::clone(artifacts), epoch, true);
        })
    });
    g.finish();
    server.shutdown();
}

/// One closed-loop latency sample set: `n` address lookups over an open
/// connection, each individually timed.
fn sample_latencies(addr: std::net::SocketAddr, n_addr: u32, samples: usize) -> Vec<Duration> {
    let mut client = Client::connect(addr).expect("connect");
    client.ping().expect("ping");
    let mut out = Vec::with_capacity(samples);
    let mut a = 1u32;
    for _ in 0..samples {
        a = a.wrapping_mul(1_664_525).wrapping_add(1_013_904_223) % n_addr;
        let payload = Request::AddressInfo { address: a }.encode_to_vec();
        let t0 = Instant::now();
        std::hint::black_box(client.call_raw(&payload).expect("lookup"));
        out.push(t0.elapsed());
    }
    out
}

fn p99_of(mut samples: Vec<Duration>) -> Duration {
    samples.sort_unstable();
    samples[(samples.len() - 1) * 99 / 100]
}

/// Claim 2: query p99 under continuous publishing vs a frozen server,
/// measured over the live socket and asserted within 2x (plus a small
/// absolute allowance for scheduler noise on loaded machines).
fn bench_query_p99_during_swaps(c: &mut Criterion) {
    const SAMPLES: usize = 3_000;
    let (_, artifacts) = fixture();
    // Cache off: every request does real snapshot work, so the comparison
    // measures swap interference, not cache hits.
    let server = start_server(2, 0);
    let addr = server.local_addr();
    let n_addr = artifacts.snapshot.address_count() as u32;

    let frozen = p99_of(sample_latencies(addr, n_addr, SAMPLES));

    let stop = AtomicBool::new(false);
    let during = std::thread::scope(|s| {
        let publisher = server.publisher();
        let stop = &stop;
        s.spawn(move || {
            let mut epoch = publisher.current_epoch();
            while !stop.load(Ordering::Relaxed) {
                epoch += 1;
                publisher.publish(Arc::clone(artifacts), epoch, false);
                std::thread::sleep(Duration::from_micros(100));
            }
        });
        let during = p99_of(sample_latencies(addr, n_addr, SAMPLES));
        stop.store(true, Ordering::Relaxed);
        during
    });
    eprintln!("# live query p99: frozen {frozen:?}, during continuous swaps {during:?}");
    assert!(
        during <= frozen * 2 + Duration::from_micros(200),
        "query p99 during swaps ({during:?}) exceeds 2x the frozen baseline ({frozen:?})"
    );

    // For the criterion record: mean round-trip cost in both regimes.
    let mut g = c.benchmark_group("live/query");
    g.sample_size(10);
    let mut client = Client::connect(addr).expect("connect");
    let payload = Request::AddressInfo { address: 1 }.encode_to_vec();
    g.bench_function("addr_lookup_frozen", |b| {
        b.iter(|| std::hint::black_box(client.call_raw(&payload).expect("lookup")))
    });
    let stop = AtomicBool::new(false);
    std::thread::scope(|s| {
        let publisher = server.publisher();
        let stop = &stop;
        s.spawn(move || {
            let mut epoch = publisher.current_epoch();
            while !stop.load(Ordering::Relaxed) {
                epoch += 1;
                publisher.publish(Arc::clone(artifacts), epoch, false);
                std::thread::sleep(Duration::from_micros(100));
            }
        });
        g.bench_function("addr_lookup_during_swaps", |b| {
            b.iter(|| std::hint::black_box(client.call_raw(&payload).expect("lookup")))
        });
        stop.store(true, Ordering::Relaxed);
    });
    g.finish();
    drop(client);
    server.shutdown();
}

/// Claim 3: the whole live pipeline — bootstrap, stream, per-epoch
/// publishes into a live server, terminal flush — per block of the tiny
/// economy.
fn bench_full_live_run(c: &mut Criterion) {
    let (wb, _) = fixture();
    let chain = Arc::new(wb.eco.chain.resolved().clone());
    let blocks = chain.block_count() as u64;
    let mut g = c.benchmark_group("live/pipeline");
    g.sample_size(10);
    g.throughput(Throughput::Elements(blocks));
    g.bench_function("bootstrap_stream_flush_tiny", |b| {
        b.iter(|| {
            let mut config = LiveConfig::new(wb.refined_config());
            config.shards = 2;
            config.epoch_blocks = 16;
            let mut live =
                LivePipeline::new(Arc::clone(&chain), wb.tagdb.clone(), config);
            let artifacts = live.bootstrap().expect("bootstrap");
            let server = Server::start(
                ServeConfig {
                    addr: "127.0.0.1:0".to_string(),
                    workers: 1,
                    cache_entries: 0,
                    ..ServeConfig::default()
                },
                artifacts,
            )
            .expect("start server");
            let report =
                live.run(&server.publisher(), &AtomicBool::new(false)).expect("run");
            server.shutdown();
            std::hint::black_box(report)
        })
    });
    g.finish();
}

criterion_group!(benches, bench_swap_latency, bench_query_p99_during_swaps, bench_full_live_run);
criterion_main!(benches);

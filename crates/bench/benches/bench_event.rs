//! Experiment `event`: what the poll(2) event loop costs against the
//! threaded connection-per-worker loop.
//!
//! Three claims under test:
//!
//! 1. **The event loop matches the threaded loop on a plain round-trip.**
//!    One poll wakeup, one dispatch hop, and one ordered write per
//!    request should cost microseconds, like a threaded worker's blocking
//!    read/write pair.
//! 2. **Pipelining amortizes the wakeups.** A batch of N requests written
//!    as one blob crosses the socket in far fewer syscalls than N
//!    ping-pong round trips; throughput per request should rise with
//!    batch depth.
//! 3. **Idle connections are nearly free.** A round-trip measured while
//!    hundreds of idle keep-alive sockets sit in the poll set should cost
//!    about the same as one measured on an otherwise empty server.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use fistful_bench::{serve_artifacts, Workbench};
use fistful_chain::encode::Encodable;
use fistful_serve::{Client, EventServeConfig, EventServer, Request, ServeArtifacts};
use fistful_sim::SimConfig;
use std::net::TcpStream;
use std::sync::{Arc, OnceLock};

fn artifacts() -> &'static (Workbench, Arc<ServeArtifacts>) {
    static FIX: OnceLock<(Workbench, Arc<ServeArtifacts>)> = OnceLock::new();
    FIX.get_or_init(|| {
        let wb = Workbench::build(SimConfig::tiny());
        let artifacts = Arc::new(serve_artifacts(&wb));
        (wb, artifacts)
    })
}

fn start_server(workers: usize, cache_entries: usize) -> EventServer {
    let (_, artifacts) = artifacts();
    let config = EventServeConfig {
        addr: "127.0.0.1:0".to_string(),
        workers,
        cache_entries,
        ..EventServeConfig::default()
    };
    EventServer::start(config, Arc::clone(artifacts)).expect("start event bench server")
}

/// Claim 1: single-request round trips through the event loop.
fn bench_event_round_trip(c: &mut Criterion) {
    let (_, artifacts) = artifacts();
    let n = artifacts.snapshot.address_count() as u32;
    let server = start_server(2, 4096);
    let mut client = Client::connect(server.local_addr()).expect("connect");

    let mut g = c.benchmark_group("event/round_trip");
    g.sample_size(10);
    g.throughput(Throughput::Elements(1));
    let mut a = 1u32;
    g.bench_function("addr_lookup", |b| {
        b.iter(|| {
            a = a.wrapping_mul(1_664_525).wrapping_add(1_013_904_223) % n;
            let payload = Request::AddressInfo { address: a }.encode_to_vec();
            std::hint::black_box(client.call_raw(&payload).expect("lookup"))
        })
    });
    g.finish();
    drop(client);
    server.shutdown();
}

/// Claim 2: pipelined batches at depth 1/8/32, measured per request.
fn bench_event_pipelining(c: &mut Criterion) {
    let (_, artifacts) = artifacts();
    let n = artifacts.snapshot.address_count() as u32;
    let server = start_server(2, 4096);
    let addr = server.local_addr();

    let mut g = c.benchmark_group("event/pipeline_depth");
    g.sample_size(10);
    for depth in [1usize, 8, 32] {
        let mut client = Client::connect(addr).expect("connect");
        let mut a = 7u32;
        g.throughput(Throughput::Elements(depth as u64));
        g.bench_with_input(BenchmarkId::from_parameter(depth), &depth, |b, &depth| {
            b.iter(|| {
                let batch: Vec<Request> = (0..depth)
                    .map(|_| {
                        a = a.wrapping_mul(1_664_525).wrapping_add(1_013_904_223) % n;
                        Request::AddressInfo { address: a }
                    })
                    .collect();
                std::hint::black_box(client.pipeline(&batch).expect("pipelined batch"))
            })
        });
    }
    g.finish();
    server.shutdown();
}

/// Claim 3: a round-trip with 0 vs 512 idle keep-alive sockets parked in
/// the poll set.
fn bench_event_idle_pool(c: &mut Criterion) {
    let (_, artifacts) = artifacts();
    let n = artifacts.snapshot.address_count() as u32;

    let mut g = c.benchmark_group("event/idle_pool");
    g.sample_size(10);
    for idle in [0usize, 512] {
        let server = start_server(2, 4096);
        let addr = server.local_addr();
        let pool: Vec<TcpStream> =
            (0..idle).map(|_| TcpStream::connect(addr).expect("idle connect")).collect();
        let mut client = Client::connect(addr).expect("connect");
        let mut a = 3u32;
        g.throughput(Throughput::Elements(1));
        g.bench_with_input(BenchmarkId::from_parameter(idle), &idle, |b, _| {
            b.iter(|| {
                a = a.wrapping_mul(1_664_525).wrapping_add(1_013_904_223) % n;
                let payload = Request::AddressInfo { address: a }.encode_to_vec();
                std::hint::black_box(client.call_raw(&payload).expect("lookup"))
            })
        });
        drop(client);
        drop(pool);
        server.shutdown();
    }
    g.finish();
}

criterion_group!(benches, bench_event_round_trip, bench_event_pipelining, bench_event_idle_pool);
criterion_main!(benches);

//! Ablation `abl-uf`: union-find variants — sequential (path halving +
//! rank) vs the lock-free atomic variant at 1/2/4 threads.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use fistful_core::union_find::{AtomicUnionFind, UnionFind};

const N: usize = 100_000;

fn edges() -> Vec<(u32, u32)> {
    // Pseudo-random union workload with chains and rejoins.
    (0..N as u32)
        .map(|i| (i, i.wrapping_mul(2654435761) % N as u32))
        .collect()
}

fn bench_variants(c: &mut Criterion) {
    let mut g = c.benchmark_group("union_find");
    let es = edges();
    g.throughput(Throughput::Elements(N as u64));
    g.bench_function("sequential", |b| {
        b.iter(|| {
            let mut uf = UnionFind::new(N);
            for &(x, y) in &es {
                uf.union(x, y);
            }
            std::hint::black_box(uf.component_count())
        })
    });
    g.bench_function("atomic_1thread", |b| {
        b.iter(|| {
            let uf = AtomicUnionFind::new(N);
            for &(x, y) in &es {
                uf.union(x, y);
            }
            std::hint::black_box(uf.find(0))
        })
    });
    for threads in [2usize, 4] {
        g.bench_function(format!("atomic_{threads}threads"), |b| {
            b.iter(|| {
                let uf = AtomicUnionFind::new(N);
                let chunk = es.len().div_ceil(threads);
                std::thread::scope(|s| {
                    for part in es.chunks(chunk) {
                        let uf = &uf;
                        s.spawn(move || {
                            for &(x, y) in part {
                                uf.union(x, y);
                            }
                        });
                    }
                });
                std::hint::black_box(uf.find(0))
            })
        });
    }
    g.finish();
}

fn bench_query(c: &mut Criterion) {
    let mut g = c.benchmark_group("union_find_query");
    let es = edges();
    let mut uf = UnionFind::new(N);
    for &(x, y) in &es {
        uf.union(x, y);
    }
    g.throughput(Throughput::Elements(N as u64));
    g.bench_function("assignments", |b| {
        b.iter_batched(
            || uf.clone(),
            |mut uf| std::hint::black_box(uf.assignments()),
            criterion::BatchSize::SmallInput,
        )
    });
    g.finish();
}

criterion_group!(benches, bench_variants, bench_query);
criterion_main!(benches);

//! Experiment `tab2`: peeling-chain traversal and service attribution.

use criterion::{criterion_group, criterion_main, Criterion};
use fistful_bench::Workbench;
use fistful_core::change::{self, ChangeConfig};
use fistful_flow::{follow_chain, service_arrivals, FollowStrategy};
use fistful_sim::SimConfig;
use std::sync::OnceLock;

fn workbench() -> &'static Workbench {
    static WB: OnceLock<Workbench> = OnceLock::new();
    WB.get_or_init(|| Workbench::build(SimConfig::default()))
}

fn bench_follow(c: &mut Criterion) {
    let wb = workbench();
    let chain = wb.eco.chain.resolved();
    let labels = change::identify(chain, &ChangeConfig::naive());
    let sr = wb.eco.script_report.silk_road.as_ref().expect("script on");
    let starts: Vec<u32> = sr
        .chain_first_hops
        .iter()
        .filter_map(|t| chain.tx_by_txid(t).map(|(id, _)| id))
        .collect();
    assert!(!starts.is_empty());

    let mut g = c.benchmark_group("peel");
    g.bench_function("follow_3_chains_100_hops", |b| {
        b.iter(|| {
            for &s in &starts {
                std::hint::black_box(follow_chain(
                    chain,
                    &labels,
                    s,
                    100,
                    FollowStrategy::LargestFallback,
                ));
            }
        })
    });

    let chains: Vec<_> = starts
        .iter()
        .map(|&s| follow_chain(chain, &labels, s, 100, FollowStrategy::LargestFallback))
        .collect();
    let clustering = wb.cluster_with(wb.refined_config());
    let dir = wb.directory_for(&clustering);
    g.bench_function("service_arrivals", |b| {
        b.iter(|| std::hint::black_box(service_arrivals(&chains, &dir)))
    });
    g.finish();
}

criterion_group!(benches, bench_follow);
criterion_main!(benches);

//! Ablation `abl-chain`: chain substrate throughput — block validation,
//! UTXO application, consensus encode/decode round-trips.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use fistful_chain::address::Address;
use fistful_chain::amount::Amount;
use fistful_chain::builder::{BlockBuilder, TransactionBuilder};
use fistful_chain::chainstate::ChainState;
use fistful_chain::encode::{Decodable, Encodable};
use fistful_chain::params::Params;
use fistful_chain::transaction::OutPoint;

/// A chain with one funding block and a block of `n` chained spends.
fn spend_block(n: usize) -> (ChainState, fistful_chain::block::Block) {
    let params = Params::regtest();
    let mut chain = ChainState::new(params.clone());
    let miner = Address::from_seed(0);
    let b0 = BlockBuilder::new(&params)
        .coinbase_to(miner, 0, chain.next_subsidy())
        .build_on(&chain);
    let mut prev = (b0.transactions[0].txid(), 0u32);
    chain.accept_block(b0).unwrap();

    let mut value = Amount::from_btc(50);
    let mut txs = Vec::with_capacity(n);
    for i in 0..n {
        value = Amount::from_sat(value.to_sat() - 1000);
        let tx = TransactionBuilder::new()
            .input(OutPoint { txid: prev.0, vout: prev.1 })
            .output(Address::from_seed(i as u64 + 1), value)
            .build_unsigned();
        prev = (tx.txid(), 0);
        txs.push(tx);
    }
    let fees = Amount::from_sat(1000 * n as u64);
    let block = BlockBuilder::new(&params)
        .coinbase_to(miner, 1, chain.next_subsidy().checked_add(fees).unwrap())
        .txs(txs)
        .build_on(&chain);
    (chain, block)
}

fn bench_validation(c: &mut Criterion) {
    let mut g = c.benchmark_group("chain");
    g.sample_size(30);
    let n = 500;
    g.throughput(Throughput::Elements(n as u64));
    g.bench_function("validate_block_500tx", |b| {
        let (chain, block) = spend_block(n);
        b.iter(|| {
            fistful_chain::validate::check_block(
                std::hint::black_box(&block),
                &chain.tip_hash(),
                chain.utxos(),
                1,
                chain.params(),
            )
            .unwrap()
        })
    });
    g.bench_function("accept_block_500tx", |b| {
        b.iter_batched(
            || spend_block(n),
            |(mut chain, block)| chain.accept_block(block).unwrap(),
            criterion::BatchSize::SmallInput,
        )
    });
    g.finish();
}

fn bench_encoding(c: &mut Criterion) {
    let mut g = c.benchmark_group("encoding");
    let (_, block) = spend_block(500);
    let bytes = block.encode_to_vec();
    g.throughput(Throughput::Bytes(bytes.len() as u64));
    g.bench_function("encode_block_500tx", |b| b.iter(|| block.encode_to_vec()));
    g.bench_function("decode_block_500tx", |b| {
        b.iter(|| fistful_chain::block::Block::decode_all(std::hint::black_box(&bytes)).unwrap())
    });
    let tx = &block.transactions[1];
    g.bench_function("txid", |b| b.iter(|| std::hint::black_box(tx).txid()));
    g.finish();
}

fn bench_merkle(c: &mut Criterion) {
    let mut g = c.benchmark_group("merkle");
    let txids: Vec<_> = (0..1000u64)
        .map(|i| fistful_crypto::sha256::sha256d(&i.to_le_bytes()))
        .collect();
    g.throughput(Throughput::Elements(1000));
    g.bench_function("root_1000", |b| {
        b.iter(|| fistful_chain::merkle::merkle_root(std::hint::black_box(&txids)))
    });
    g.finish();
}

fn bench_signed_tx(c: &mut Criterion) {
    let mut g = c.benchmark_group("signed_tx");
    g.sample_size(20);
    let key = fistful_crypto::keys::KeyPair::from_seed(9);
    let addr = Address::from_public_key(key.public());
    let tx = TransactionBuilder::new()
        .input(OutPoint { txid: fistful_crypto::sha256::sha256d(b"prev"), vout: 0 })
        .output(Address::from_seed(5), Amount::from_btc(1))
        .build_signed(|_| key);
    g.bench_function("sign_input", |b| {
        b.iter_batched(
            || tx.clone(),
            |mut tx| tx.sign_input(0, &key),
            criterion::BatchSize::SmallInput,
        )
    });
    g.bench_function("verify_input", |b| {
        b.iter(|| assert!(tx.verify_input(0, std::hint::black_box(&addr))))
    });
    g.finish();
}

criterion_group!(benches, bench_validation, bench_encoding, bench_merkle, bench_signed_tx);
criterion_main!(benches);

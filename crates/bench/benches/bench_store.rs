//! Experiment `store`: the on-disk columnar artifact store.
//!
//! Three claims under test:
//!
//! 1. **Open beats rebuild.** Reopening the full serving bundle from a
//!    store directory (bulk `read_exact` of page-aligned columns + semantic
//!    validation) must be far cheaper than rebuilding it from the chain —
//!    clustering, naming, aggregation, balance series, graph build — which
//!    is what `repro serve` paid on every restart before the store existed.
//! 2. **Container encode/decode is bulk-rate.** Writing a `TxGraph` into
//!    its segment-per-CSR-array container and reading it back should move
//!    at memcpy-like rates, not per-element-loop rates.
//! 3. **Delta append is O(changes).** Diffing two adjacent snapshots and
//!    applying the delta costs proportional to what changed, not to the
//!    snapshot.
//!
//! Measured at the default and large (paper-style) simulation scales.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use fistful_bench::{serve_artifacts, Workbench};
use fistful_core::snapshot::{ClusterSnapshot, SnapshotDelta};
use fistful_flow::graph::TxGraph;
use fistful_serve::ServeArtifacts;
use fistful_sim::SimConfig;
use fistful_store::{Store, StoreWriter};
use std::path::PathBuf;
use std::sync::OnceLock;

fn default_scale() -> &'static Workbench {
    static WB: OnceLock<Workbench> = OnceLock::new();
    WB.get_or_init(|| Workbench::build(SimConfig::default()))
}

fn large_scale() -> &'static Workbench {
    static WB: OnceLock<Workbench> = OnceLock::new();
    WB.get_or_init(|| Workbench::build(SimConfig::paper_scale()))
}

fn temp_store_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("fstc-bench-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// Claim 1: the restart path. `ServeArtifacts::open_dir` (disk → validated
/// bundle) versus the full in-RAM rebuild it replaces, per scale.
fn bench_open_vs_rebuild(c: &mut Criterion) {
    for (scale, wb) in [("default", default_scale()), ("large", large_scale())] {
        let artifacts = serve_artifacts(wb);
        let dir = temp_store_dir(&format!("open-{scale}"));
        let written = artifacts.save_dir(&dir).expect("save serving bundle");

        let mut g = c.benchmark_group(format!("store/{scale}"));
        g.sample_size(10);
        g.throughput(Throughput::Bytes(written));
        g.bench_function("open_dir", |b| {
            b.iter(|| std::hint::black_box(ServeArtifacts::open_dir(&dir).unwrap()))
        });
        g.bench_function("rebuild_from_chain", |b| {
            b.iter(|| std::hint::black_box(serve_artifacts(wb)))
        });
        g.finish();
        std::fs::remove_dir_all(&dir).ok();
    }
}

/// Claim 2: raw container throughput over the largest artifact — the
/// transaction graph's CSR arrays, one segment per array.
fn bench_graph_container(c: &mut Criterion) {
    let wb = default_scale();
    let graph = TxGraph::build(wb.eco.chain.resolved());
    let mut w = StoreWriter::new();
    graph.write_store(&mut w);
    let bytes = w.to_bytes();

    let mut g = c.benchmark_group("store/graph_container");
    g.sample_size(10);
    g.throughput(Throughput::Bytes(bytes.len() as u64));
    g.bench_function("encode", |b| {
        b.iter(|| {
            let mut w = StoreWriter::new();
            graph.write_store(&mut w);
            std::hint::black_box(w.to_bytes())
        })
    });
    g.bench_function("decode", |b| {
        b.iter(|| {
            let mut store = Store::open_bytes(bytes.clone()).unwrap();
            std::hint::black_box(TxGraph::read_store(&mut store).unwrap())
        })
    });
    g.finish();
}

/// Claim 3: persisting after ingest. Diffing adjacent snapshots and
/// applying the delta, versus re-encoding the whole successor snapshot.
fn bench_delta_append(c: &mut Criterion) {
    let wb = default_scale();
    let chain = wb.eco.chain.resolved();
    let full = wb.snapshot();
    // The "stale base": the snapshot as of ~90% of the chain, so the delta
    // carries one epoch's worth of growth.
    let refined = wb.cluster_with(wb.refined_config());
    let names = fistful_core::naming::name_clusters(&refined, &wb.tagdb);
    let cut = chain.tx_count() * 9 / 10;
    let base = ClusterSnapshot::build_at(chain, cut, &refined, &names);
    let delta = SnapshotDelta::between(&base, &full);

    let mut g = c.benchmark_group("store/delta");
    g.sample_size(10);
    g.bench_function("diff", |b| {
        b.iter(|| std::hint::black_box(SnapshotDelta::between(&base, &full)))
    });
    g.bench_function("apply", |b| {
        b.iter(|| std::hint::black_box(base.apply_delta(&delta).unwrap()))
    });
    g.bench_function("full_reencode", |b| {
        b.iter(|| {
            let mut w = StoreWriter::new();
            full.write_store(&mut w);
            std::hint::black_box(w.to_bytes())
        })
    });
    g.finish();
}

criterion_group!(benches, bench_open_vs_rebuild, bench_graph_container, bench_delta_append);
criterion_main!(benches);

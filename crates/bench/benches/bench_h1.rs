//! Experiment `sec4-h1`: Heuristic 1 clustering over the simulated chain —
//! sequential vs parallel, plus the naming pass.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use fistful_bench::{build_tagdb, Workbench};
use fistful_core::heuristic1;
use fistful_core::naming::name_clusters;
use fistful_core::union_find::{AtomicUnionFind, UnionFind};
use fistful_sim::SimConfig;
use std::sync::OnceLock;

fn workbench() -> &'static Workbench {
    static WB: OnceLock<Workbench> = OnceLock::new();
    WB.get_or_init(|| Workbench::build(SimConfig::tiny()))
}

fn bench_h1(c: &mut Criterion) {
    let wb = workbench();
    let chain = wb.eco.chain.resolved();
    let mut g = c.benchmark_group("heuristic1");
    g.sample_size(30);
    g.throughput(Throughput::Elements(chain.tx_count() as u64));
    g.bench_function("sequential", |b| {
        b.iter(|| {
            let mut uf = UnionFind::new(chain.address_count());
            heuristic1::apply(chain, &mut uf);
            std::hint::black_box(uf.component_count())
        })
    });
    for threads in [2usize, 4] {
        g.bench_function(format!("parallel_{threads}"), |b| {
            b.iter(|| {
                let uf = AtomicUnionFind::new(chain.address_count());
                heuristic1::apply_parallel(chain, &uf, threads);
                std::hint::black_box(uf.find(0))
            })
        });
    }
    g.finish();
}

fn bench_naming(c: &mut Criterion) {
    let wb = workbench();
    let db = build_tagdb(&wb.eco);
    let mut g = c.benchmark_group("naming");
    g.bench_function("name_clusters", |b| {
        b.iter(|| std::hint::black_box(name_clusters(&wb.h1, &db)))
    });
    g.finish();
}

criterion_group!(benches, bench_h1, bench_naming);
criterion_main!(benches);

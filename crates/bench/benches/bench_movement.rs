//! Experiment `tab3`: theft taint walks and movement classification.

use criterion::{criterion_group, criterion_main, Criterion};
use fistful_bench::Workbench;
use fistful_core::change::{self, ChangeConfig};
use fistful_flow::{classify_movements, track_theft};
use fistful_sim::SimConfig;
use std::sync::OnceLock;

fn workbench() -> &'static Workbench {
    static WB: OnceLock<Workbench> = OnceLock::new();
    WB.get_or_init(|| Workbench::build(SimConfig::default()))
}

fn loot_outputs(wb: &Workbench) -> Vec<(u32, u32)> {
    let chain = wb.eco.chain.resolved();
    let mut loot = Vec::new();
    for theft in &wb.eco.script_report.thefts {
        let ids: Vec<u32> = theft
            .loot_addresses
            .iter()
            .filter_map(|a| chain.address_id(a))
            .collect();
        for txid in &theft.theft_txids {
            if let Some((t, rtx)) = chain.tx_by_txid(txid) {
                for (v, o) in rtx.outputs.iter().enumerate() {
                    if ids.contains(&o.address) {
                        loot.push((t, v as u32));
                    }
                }
            }
        }
    }
    loot
}

fn bench_taint(c: &mut Criterion) {
    let wb = workbench();
    let chain = wb.eco.chain.resolved();
    let labels = change::identify(chain, &ChangeConfig::naive());
    let loot = loot_outputs(wb);
    assert!(!loot.is_empty());

    let mut g = c.benchmark_group("movement");
    g.bench_function("classify_all_thefts", |b| {
        b.iter(|| std::hint::black_box(classify_movements(chain, &loot, &labels, 5_000)))
    });
    let clustering = wb.cluster_with(wb.refined_config());
    let dir = wb.directory_for(&clustering);
    g.bench_function("track_theft_full", |b| {
        b.iter(|| std::hint::black_box(track_theft(chain, &loot, &labels, &dir, 5_000)))
    });
    g.finish();
}

criterion_group!(benches, bench_taint);
criterion_main!(benches);

//! Experiment `graph`: the columnar transaction-graph index.
//!
//! Three claims under test:
//!
//! 1. **Build is a one-time chain-scan cost.** `TxGraph::build` is one
//!    pass over the resolved chain into flat arrays; it should cost on the
//!    order of a plain full scan of the same data — pay it once, then
//!    every traversal below runs on the index.
//! 2. **Indexed traversal beats per-hop resolution.** Following peeling
//!    chains over the flat arrays should beat the legacy walk that
//!    re-resolves each hop through `ResolvedChain`'s per-tx `Vec`s.
//! 3. **Batch multi-theft taint beats sequential legacy re-walks.** Batch
//!    tracking of all scripted thefts over one shared graph (sparse
//!    flat-id frontiers, per-worker reusable scratch, 1/2/4/8 worker
//!    threads) versus the legacy one-theft-at-a-time `HashSet` walk, at
//!    the default and paper scales. The single-worker number isolates the
//!    per-hop win of the index itself; the thread sweep shows how the
//!    engine scales on multi-core hosts (on a single-core container,
//!    counts above 1 only measure thread-spawn overhead — multiply the
//!    single-worker speedup by the worker count for the expected
//!    steady-state ratio on real hardware).
//!
//! The differential tests (`tests/graph.rs`, `tests/properties.rs`) prove
//! the compared paths produce byte-identical analysis output, so these
//! numbers compare like with like.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use fistful_bench::{silk_road_starts, theft_loots, Workbench};
use fistful_core::change::{self, ChangeLabels};
use fistful_flow::graph::TxGraph;
use fistful_flow::{
    follow_chain, follow_chains_indexed, track_theft, track_thefts_batch, FollowStrategy,
};
use fistful_sim::SimConfig;
use std::sync::OnceLock;

/// Everything a scale's benchmarks share, prepared once.
struct Prepared {
    wb: Workbench,
    labels: ChangeLabels,
    graph: TxGraph,
    loots: Vec<Vec<(u32, u32)>>,
}

impl Prepared {
    fn build(cfg: SimConfig) -> Prepared {
        let wb = Workbench::build(cfg);
        let chain = wb.eco.chain.resolved();
        let labels = change::identify(chain, &wb.refined_config());
        let graph = TxGraph::build(chain);
        let loots = theft_loots(chain, &wb.eco.script_report.thefts)
            .into_iter()
            .map(|(_, loot)| loot)
            .collect();
        Prepared { wb, labels, graph, loots }
    }
}

fn default_scale() -> &'static Prepared {
    static P: OnceLock<Prepared> = OnceLock::new();
    P.get_or_init(|| Prepared::build(SimConfig::default()))
}

/// The paper-style scale, where re-walk costs are unmissable.
fn paper_scale() -> &'static Prepared {
    static P: OnceLock<Prepared> = OnceLock::new();
    P.get_or_init(|| Prepared::build(SimConfig::paper_scale()))
}

/// Taint-walk bound, matching `repro tab3` / `repro taint`.
const MAX_TXS: usize = 5_000;

/// Claim 1: index construction versus a plain full scan of the same chain
/// (the cost any single uncached traversal pass already pays).
fn bench_build(c: &mut Criterion) {
    let p = default_scale();
    let chain = p.wb.eco.chain.resolved();
    let mut g = c.benchmark_group("graph/build");
    g.sample_size(10);
    g.throughput(Throughput::Elements(chain.tx_count() as u64));
    g.bench_function("chain_scan_baseline", |b| {
        b.iter(|| {
            // One pass touching every input and output, the way any
            // uncached analysis query must.
            let mut acc = 0u64;
            for tx in &chain.txs {
                for o in &tx.outputs {
                    acc = acc.wrapping_add(o.value.to_sat()).wrapping_add(o.address as u64);
                }
                for i in &tx.inputs {
                    acc = acc.wrapping_add(i.prev_tx as u64);
                }
            }
            std::hint::black_box(acc)
        })
    });
    for threads in [1usize, 4] {
        g.bench_with_input(
            BenchmarkId::new("build", threads),
            &threads,
            |b, &threads| b.iter(|| std::hint::black_box(TxGraph::build_with_threads(chain, threads))),
        );
    }
    g.finish();
}

/// Claim 2: peeling-chain traversal, legacy per-hop resolution versus the
/// flat index, over the Silk Road dissolution chains plus a stride sample
/// of start transactions.
fn bench_peel(c: &mut Criterion) {
    let p = default_scale();
    let chain = p.wb.eco.chain.resolved();
    let mut starts = p
        .wb
        .eco
        .script_report
        .silk_road
        .as_ref()
        .map(|sr| silk_road_starts(chain, sr))
        .unwrap_or_default();
    // Pad with a deterministic stride sample so the measurement covers
    // ordinary chains too, not just the scripted dissolution.
    let stride = (chain.tx_count() / 61).max(1);
    starts.extend((0..chain.tx_count() as u32).step_by(stride).take(61));
    let starts = &starts;

    let mut g = c.benchmark_group("graph/peel");
    g.sample_size(10);
    g.throughput(Throughput::Elements(starts.len() as u64));
    g.bench_function("legacy_per_hop", |b| {
        b.iter(|| {
            let total: usize = starts
                .iter()
                .map(|&s| {
                    follow_chain(chain, &p.labels, s, 100, FollowStrategy::LargestFallback)
                        .hops
                        .len()
                })
                .sum();
            std::hint::black_box(total)
        })
    });
    g.bench_function("indexed", |b| {
        b.iter(|| {
            let chains = follow_chains_indexed(
                &p.graph,
                &p.labels,
                starts,
                100,
                FollowStrategy::LargestFallback,
            );
            std::hint::black_box(chains.iter().map(|c| c.hops.len()).sum::<usize>())
        })
    });
    g.finish();
}

/// Claim 3: batch multi-theft taint over the index versus sequential
/// legacy re-walks, at the default and paper scales.
fn bench_taint(c: &mut Criterion) {
    for (scale, p) in [("default", default_scale()), ("paper", paper_scale())] {
        let chain = p.wb.eco.chain.resolved();
        let snapshot = p.wb.snapshot();
        let mut g = c.benchmark_group(format!("graph/taint/{scale}"));
        g.sample_size(10);
        g.throughput(Throughput::Elements(p.loots.len() as u64));
        g.bench_function("legacy_sequential", |b| {
            b.iter(|| {
                let traces: Vec<_> = p
                    .loots
                    .iter()
                    .map(|loot| track_theft(chain, loot, &p.labels, &snapshot, MAX_TXS))
                    .collect();
                std::hint::black_box(traces)
            })
        });
        for threads in [1usize, 2, 4, 8] {
            g.bench_with_input(
                BenchmarkId::new("batch_indexed", threads),
                &threads,
                |b, &threads| {
                    b.iter(|| {
                        std::hint::black_box(track_thefts_batch(
                            &p.graph, &p.loots, &p.labels, &snapshot, MAX_TXS, threads,
                        ))
                    })
                },
            );
        }
        g.finish();
    }
}

criterion_group!(benches, bench_build, bench_peel, bench_taint);
criterion_main!(benches);

//! Ablation `abl-crypto`: throughput of the from-scratch crypto substrate.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use fistful_crypto::keys::KeyPair;
use fistful_crypto::ripemd160::ripemd160;
use fistful_crypto::sha256::{hash160, sha256, sha256d};

fn bench_hashing(c: &mut Criterion) {
    let mut g = c.benchmark_group("hashing");
    let data = vec![0xabu8; 1024];
    g.throughput(Throughput::Bytes(1024));
    g.bench_function("sha256_1k", |b| b.iter(|| sha256(std::hint::black_box(&data))));
    g.bench_function("sha256d_1k", |b| b.iter(|| sha256d(std::hint::black_box(&data))));
    g.bench_function("ripemd160_1k", |b| b.iter(|| ripemd160(std::hint::black_box(&data))));
    g.bench_function("hash160_1k", |b| b.iter(|| hash160(std::hint::black_box(&data))));
    g.finish();
}

fn bench_ecdsa(c: &mut Criterion) {
    let mut g = c.benchmark_group("ecdsa");
    g.sample_size(20);
    let kp = KeyPair::from_seed(42);
    let msg = sha256d(b"bench message");
    let sig = kp.sign(&msg);
    g.bench_function("keypair_derive", |b| {
        let mut seed = 0u64;
        b.iter(|| {
            seed += 1;
            KeyPair::from_seed(std::hint::black_box(seed))
        })
    });
    g.bench_function("sign", |b| b.iter(|| kp.sign(std::hint::black_box(&msg))));
    g.bench_function("verify", |b| {
        b.iter(|| {
            assert!(kp
                .public()
                .verify(std::hint::black_box(&msg), std::hint::black_box(&sig)))
        })
    });
    g.finish();
}

criterion_group!(benches, bench_hashing, bench_ecdsa);
criterion_main!(benches);

//! Experiment `metrics`: what the observability layer costs.
//!
//! Three claims under test:
//!
//! 1. **The registry primitives are nanoseconds.** A counter increment is
//!    one relaxed atomic add; a histogram observation is a leading-zeros
//!    bucket pick plus three relaxed adds. Neither allocates or locks.
//! 2. **The per-request overhead is bounded.** The exact instrumentation
//!    sequence `process_request` pays per request — two counter bumps,
//!    two gauge moves, one `Instant` pair, one histogram observation —
//!    is measured alone and then inside the full socket round trip,
//!    instrumented server included. The primitive sequence costs tens of
//!    nanoseconds against a round trip of tens of microseconds, keeping
//!    the end-to-end overhead well under the 5% budget.
//! 3. **Scrapes are off the hot path.** Rendering the full Prometheus
//!    text exposition (every counter, gauge, and 26-bucket histogram)
//!    costs microseconds once per scrape interval, not per request.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use fistful_bench::{serve_artifacts, Workbench};
use fistful_chain::encode::Encodable;
use fistful_serve::{
    render_prometheus, Client, Request, ServeArtifacts, ServeConfig, ServeMetrics, Server,
};
use fistful_sim::SimConfig;
use std::sync::{Arc, OnceLock};
use std::time::{Duration, Instant};

fn artifacts() -> &'static Arc<ServeArtifacts> {
    static FIX: OnceLock<Arc<ServeArtifacts>> = OnceLock::new();
    FIX.get_or_init(|| {
        let wb = Workbench::build(SimConfig::default());
        Arc::new(serve_artifacts(&wb))
    })
}

/// Claim 1: the raw registry primitives.
fn bench_primitives(c: &mut Criterion) {
    let metrics = ServeMetrics::new();
    let mut g = c.benchmark_group("metrics/primitives");
    g.throughput(Throughput::Elements(1));
    g.bench_function("counter_inc", |b| b.iter(|| metrics.requests[0].inc()));
    g.bench_function("gauge_inc_dec", |b| {
        b.iter(|| {
            metrics.inflight.inc();
            metrics.inflight.dec();
        })
    });
    let sample = Duration::from_micros(137);
    g.bench_function("histogram_observe", |b| {
        b.iter(|| metrics.request_latency[0].observe(std::hint::black_box(sample)))
    });
    g.finish();
}

/// Claim 2a: the exact per-request instrumentation sequence the server
/// hot path pays — in isolation, so the absolute cost is visible.
fn bench_per_request_sequence(c: &mut Criterion) {
    let metrics = ServeMetrics::new();
    let mut g = c.benchmark_group("metrics/per_request");
    g.throughput(Throughput::Elements(1));
    g.bench_function("entry_exit_sequence", |b| {
        b.iter(|| {
            let started = Instant::now();
            metrics.requests[2].inc();
            metrics.inflight.inc();
            std::hint::black_box(&metrics);
            metrics.inflight.dec();
            metrics.request_latency[2].observe(started.elapsed());
        })
    });
    g.finish();
}

/// Claim 2b: the sequence in context — a full socket round trip against
/// the instrumented server. Compare `entry_exit_sequence` (tens of ns)
/// to this (tens of µs) for the overhead ratio.
fn bench_instrumented_round_trip(c: &mut Criterion) {
    let config = ServeConfig { addr: "127.0.0.1:0".to_string(), workers: 1, ..ServeConfig::default() };
    let server = Server::start(config, Arc::clone(artifacts())).expect("start bench server");
    let mut client = Client::connect(server.local_addr()).expect("connect");
    let payload = Request::AddressInfo { address: 1 }.encode_to_vec();
    client.call_raw(&payload).expect("prime");

    let mut g = c.benchmark_group("metrics/round_trip");
    g.sample_size(10);
    g.throughput(Throughput::Elements(1));
    g.bench_function("addr_instrumented", |b| {
        b.iter(|| std::hint::black_box(client.call_raw(&payload).expect("lookup")))
    });
    g.finish();
    drop(client);
    server.shutdown();
}

/// Claim 3: one full scrape — binary dump snapshot plus Prometheus text
/// render — over a registry with every request-type histogram populated.
fn bench_scrape_render(c: &mut Criterion) {
    let config = ServeConfig { addr: "127.0.0.1:0".to_string(), workers: 1, ..ServeConfig::default() };
    let server = Server::start(config, Arc::clone(artifacts())).expect("start bench server");
    let mut client = Client::connect(server.local_addr()).expect("connect");
    // Populate every scraped family a request can reach.
    client.ping().expect("ping");
    client.stats().expect("stats");
    client.address_info(1).expect("addr");
    client.cluster_summary(0).expect("cluster");
    client.balance_point(1).expect("balance");
    let dump = client.metrics_dump().expect("dump");

    let mut g = c.benchmark_group("metrics/scrape");
    g.bench_function("render_prometheus", |b| {
        b.iter(|| std::hint::black_box(render_prometheus(std::hint::black_box(&dump))))
    });
    g.bench_function("dump_over_socket", |b| {
        b.iter(|| std::hint::black_box(client.metrics_dump().expect("dump")))
    });
    g.finish();
    drop(client);
    server.shutdown();
}

criterion_group!(
    benches,
    bench_primitives,
    bench_per_request_sequence,
    bench_instrumented_round_trip,
    bench_scrape_render
);
criterion_main!(benches);

//! Experiment `fig2`: the per-category balance time series.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use fistful_bench::Workbench;
use fistful_flow::balance_series;
use fistful_sim::SimConfig;
use std::sync::OnceLock;

fn workbench() -> &'static Workbench {
    static WB: OnceLock<Workbench> = OnceLock::new();
    WB.get_or_init(|| Workbench::build(SimConfig::tiny()))
}

fn bench_series(c: &mut Criterion) {
    let wb = workbench();
    let chain = wb.eco.chain.resolved();
    let clustering = wb.cluster_with(wb.refined_config());
    let dir = wb.directory_for(&clustering);
    let mut g = c.benchmark_group("balance");
    g.throughput(Throughput::Elements(chain.tx_count() as u64));
    for every in [1u64, 24, 144] {
        g.bench_function(format!("series_every_{every}"), |b| {
            b.iter(|| std::hint::black_box(balance_series(chain, &dir, every)))
        });
    }
    g.finish();
}

criterion_group!(benches, bench_series);
criterion_main!(benches);

//! Experiment `serve`: what the query service costs per request.
//!
//! Three claims under test:
//!
//! 1. **The codec is not the bottleneck.** Request decode and response
//!    encode are a few array reads and appends — nanoseconds against the
//!    microseconds of a socket round trip.
//! 2. **The response cache pays for itself on repeated keys.** A cache hit
//!    skips decode, handling, and re-encode; for taint requests it skips
//!    an entire graph walk. Measured end-to-end through the socket with
//!    the cache on and off over a repeated-key workload.
//! 3. **Round trips scale with workers.** End-to-end socket round-trip
//!    throughput with concurrent closed-loop clients at 1/2/4/8 server
//!    workers (on a single-core container the sweep measures dispatch
//!    overhead; on multicore it spreads).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use fistful_bench::{serve_artifacts, theft_loots, Workbench};
use fistful_chain::encode::Encodable;
use fistful_serve::{Client, Request, Response, ServeArtifacts, ServeConfig, Server};
use fistful_sim::SimConfig;
use std::sync::{Arc, OnceLock};

fn artifacts() -> &'static (Workbench, Arc<ServeArtifacts>) {
    static FIX: OnceLock<(Workbench, Arc<ServeArtifacts>)> = OnceLock::new();
    FIX.get_or_init(|| {
        let wb = Workbench::build(SimConfig::default());
        let artifacts = Arc::new(serve_artifacts(&wb));
        (wb, artifacts)
    })
}

fn start_server(workers: usize, cache_entries: usize) -> Server {
    let (_, artifacts) = artifacts();
    let config = ServeConfig {
        addr: "127.0.0.1:0".to_string(),
        workers,
        cache_entries,
        ..ServeConfig::default()
    };
    Server::start(config, Arc::clone(artifacts)).expect("start bench server")
}

/// Claim 1: request decode and response encode cost, on a realistic
/// taint request (the largest request) and an address response.
fn bench_codec(c: &mut Criterion) {
    let (wb, artifacts) = artifacts();
    let loots = theft_loots(wb.eco.chain.resolved(), &wb.eco.script_report.thefts);
    let loot = loots.first().map(|(_, l)| l.clone()).unwrap_or_else(|| vec![(0, 0)]);
    let request = Request::TaintTrace { loot, max_txs: 5_000 };
    let request_payload = request.encode_to_vec();
    let probe = (artifacts.snapshot.address_count() / 2) as u32;
    let report = fistful_serve::AddressReport {
        address: probe,
        cluster: artifacts.snapshot.cluster_of(probe).expect("covered"),
        info: artifacts.snapshot.info_of_address(probe).expect("covered").clone(),
    };
    let response = Response::AddressInfo(Some(report));
    let response_payload = response.encode_to_vec();

    let mut g = c.benchmark_group("serve/codec");
    g.throughput(Throughput::Bytes(request_payload.len() as u64));
    g.bench_function("request_decode", |b| {
        b.iter(|| std::hint::black_box(Request::decode_payload(&request_payload).unwrap()))
    });
    g.throughput(Throughput::Bytes(response_payload.len() as u64));
    g.bench_function("response_encode", |b| {
        b.iter(|| std::hint::black_box(response.encode_to_vec()))
    });
    g.bench_function("response_decode", |b| {
        b.iter(|| std::hint::black_box(Response::decode_payload(&response_payload).unwrap()))
    });
    g.finish();
}

/// Claim 2: cache-on vs cache-off, end to end through the socket, over a
/// repeated-key workload (the same taint request over and over — the
/// worst case without a cache, the best case with one).
fn bench_cache_on_off(c: &mut Criterion) {
    let (wb, _) = artifacts();
    let loots = theft_loots(wb.eco.chain.resolved(), &wb.eco.script_report.thefts);
    let loot = loots.first().map(|(_, l)| l.clone()).unwrap_or_else(|| vec![(0, 0)]);
    let taint = Request::TaintTrace { loot, max_txs: 5_000 }.encode_to_vec();
    let addr = Request::AddressInfo { address: 1 }.encode_to_vec();

    let mut g = c.benchmark_group("serve/cache");
    g.sample_size(10);
    for (label, cache_entries) in [("on", 4096), ("off", 0)] {
        let server = start_server(2, cache_entries);
        let mut client = Client::connect(server.local_addr()).expect("connect");
        // Prime the cache so the measured loop is the steady state.
        client.call_raw(&taint).expect("prime taint");
        client.call_raw(&addr).expect("prime addr");
        g.bench_function(format!("taint_repeated_key_{label}"), |b| {
            b.iter(|| std::hint::black_box(client.call_raw(&taint).expect("taint")))
        });
        g.bench_function(format!("addr_repeated_key_{label}"), |b| {
            b.iter(|| std::hint::black_box(client.call_raw(&addr).expect("addr")))
        });
        drop(client);
        server.shutdown();
    }
    g.finish();
}

/// Claim 3: end-to-end round-trip throughput at 1/2/4/8 workers, with as
/// many concurrent closed-loop clients as workers.
fn bench_round_trips(c: &mut Criterion) {
    const ROUND_TRIPS_PER_CLIENT: usize = 200;
    let (_, artifacts) = artifacts();
    let n = artifacts.snapshot.address_count() as u32;

    let mut g = c.benchmark_group("serve/round_trips");
    g.sample_size(10);
    for workers in [1usize, 2, 4, 8] {
        let server = start_server(workers, 4096);
        let addr = server.local_addr();
        g.throughput(Throughput::Elements((workers * ROUND_TRIPS_PER_CLIENT) as u64));
        g.bench_with_input(BenchmarkId::from_parameter(workers), &workers, |b, &workers| {
            b.iter(|| {
                std::thread::scope(|s| {
                    for t in 0..workers {
                        s.spawn(move || {
                            let mut client = Client::connect(addr).expect("connect");
                            let mut a = (t as u32).wrapping_mul(2_654_435_761) % n;
                            for _ in 0..ROUND_TRIPS_PER_CLIENT {
                                a = a.wrapping_mul(1_664_525).wrapping_add(1_013_904_223) % n;
                                let payload =
                                    Request::AddressInfo { address: a }.encode_to_vec();
                                std::hint::black_box(
                                    client.call_raw(&payload).expect("lookup"),
                                );
                            }
                        });
                    }
                })
            })
        });
        server.shutdown();
    }
    g.finish();
}

criterion_group!(benches, bench_codec, bench_cache_on_off, bench_round_trips);
criterion_main!(benches);

//! Experiment `fig1`: gossip-network propagation at several network sizes.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use fistful_chain::address::Address;
use fistful_chain::amount::Amount;
use fistful_chain::builder::TransactionBuilder;
use fistful_chain::transaction::OutPoint;
use fistful_net::{Network, NetworkConfig};

fn tx(tag: u64) -> fistful_chain::transaction::Transaction {
    TransactionBuilder::new()
        .input(OutPoint::null())
        .output(Address::from_seed(tag), Amount::from_sat(70_000_000))
        .build_unsigned()
}

fn bench_flood(c: &mut Criterion) {
    let mut g = c.benchmark_group("propagation");
    g.sample_size(20);
    for nodes in [50usize, 200, 500] {
        g.throughput(Throughput::Elements(nodes as u64));
        g.bench_with_input(BenchmarkId::new("tx_flood", nodes), &nodes, |b, &n| {
            b.iter(|| {
                let mut net = Network::new(NetworkConfig {
                    nodes: n,
                    ..NetworkConfig::default()
                });
                let txid = net.submit_tx(0, tx(1));
                net.run_to_quiescence();
                let prop = net.propagation(&txid).unwrap();
                assert_eq!(prop.reached, n);
                std::hint::black_box(prop.full_coverage_time())
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench_flood);
criterion_main!(benches);

//! Experiment `incremental`: per-block ingest cost vs batch recompute.
//!
//! The claim under test: `IncrementalClusterer::ingest_block` has an
//! amortized cost that does not grow with total chain length — ingesting
//! the next block is as cheap at the tip of a long chain as near the
//! genesis — whereas serving a fresh partition by batch `Clusterer::run`
//! costs the whole chain again on every block.

use criterion::{criterion_group, criterion_main, BatchSize, BenchmarkId, Criterion, Throughput};
use fistful_bench::Workbench;
use fistful_core::change::ChangeConfig;
use fistful_core::cluster::Clusterer;
use fistful_core::incremental::IncrementalClusterer;
use fistful_sim::SimConfig;
use std::sync::OnceLock;

fn workbench() -> &'static Workbench {
    static WB: OnceLock<Workbench> = OnceLock::new();
    WB.get_or_init(|| Workbench::build(SimConfig::tiny()))
}

/// An incremental clusterer advanced through the first `blocks` blocks.
fn advanced(blocks: usize) -> IncrementalClusterer {
    let chain = workbench().eco.chain.resolved();
    let mut inc = IncrementalClusterer::with_h2(ChangeConfig::naive());
    for block in chain.blocks().take(blocks) {
        inc.ingest_block(&block);
    }
    inc
}

/// Full-chain costs: one batch recompute vs one complete block-by-block
/// replay (the incremental engine should pay no asymptotic penalty for
/// doing the same total work in pieces).
fn bench_full_chain(c: &mut Criterion) {
    let wb = workbench();
    let chain = wb.eco.chain.resolved();
    let mut g = c.benchmark_group("incremental/full_chain");
    g.sample_size(10);
    g.throughput(Throughput::Elements(chain.tx_count() as u64));
    g.bench_function("batch_recompute", |b| {
        b.iter(|| {
            let clustering = Clusterer::with_h2(ChangeConfig::naive()).run(chain);
            std::hint::black_box(clustering.cluster_count())
        })
    });
    g.bench_function("incremental_replay", |b| {
        b.iter(|| {
            let mut inc = IncrementalClusterer::with_h2(ChangeConfig::naive());
            for block in chain.blocks() {
                inc.ingest_block(&block);
            }
            inc.flush(chain);
            std::hint::black_box(inc.cluster_count())
        })
    });
    g.finish();
}

/// The amortized claim: ingesting the *next* block costs about the same at
/// 25%, 50% and 100% chain depth. Contrast with `batch_recompute` above,
/// which is what a batch pipeline pays per block at the tip.
fn bench_ingest_at_depth(c: &mut Criterion) {
    let wb = workbench();
    let chain = wb.eco.chain.resolved();
    let n = chain.block_count();
    let mut g = c.benchmark_group("incremental/ingest_next_block");
    g.sample_size(20);
    for (label, depth) in [("25%", n / 4), ("50%", n / 2), ("100%", n - 1)] {
        let state = advanced(depth);
        // Blocks deepen in the simulated economy as wallets fund up, so
        // normalize by the block's transaction count: flat ns/tx across
        // depths is the no-growth claim.
        g.throughput(Throughput::Elements(chain.block(depth as u32).tx_count() as u64));
        g.bench_with_input(BenchmarkId::from_parameter(label), &depth, |b, &depth| {
            b.iter_batched(
                || state.clone(),
                |mut inc| {
                    inc.ingest_block(&chain.block(depth as u32));
                    std::hint::black_box(inc.cluster_count())
                },
                BatchSize::SmallInput,
            )
        });
    }
    g.finish();
}

/// Snapshot queries served between blocks (the live-query path).
fn bench_snapshot_queries(c: &mut Criterion) {
    let wb = workbench();
    let chain = wb.eco.chain.resolved();
    let mut inc = advanced(chain.block_count());
    inc.flush(chain);
    let mut g = c.benchmark_group("incremental/queries");
    g.bench_function("cluster_of", |b| {
        let n = inc.address_count() as u32;
        let mut i = 0u32;
        b.iter(|| {
            i = (i + 7919) % n;
            std::hint::black_box(inc.cluster_of(i))
        })
    });
    g.bench_function("size_histogram", |b| {
        b.iter(|| std::hint::black_box(inc.size_histogram()))
    });
    g.finish();
}

criterion_group!(benches, bench_full_chain, bench_ingest_at_depth, bench_snapshot_queries);
criterion_main!(benches);

//! Experiments `sec4-fp` / `sec4-h2`: Heuristic 2 identification across the
//! refinement ladder, plus the false-positive estimator.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use fistful_bench::Workbench;
use fistful_core::change::{self, ChangeConfig, BLOCKS_PER_WEEK};
use fistful_core::fp;
use fistful_sim::SimConfig;
use std::sync::OnceLock;

fn workbench() -> &'static Workbench {
    static WB: OnceLock<Workbench> = OnceLock::new();
    WB.get_or_init(|| Workbench::build(SimConfig::tiny()))
}

fn bench_identify(c: &mut Criterion) {
    let wb = workbench();
    let chain = wb.eco.chain.resolved();
    let mut g = c.benchmark_group("heuristic2");
    g.sample_size(30);
    g.throughput(Throughput::Elements(chain.tx_count() as u64));
    g.bench_function("naive", |b| {
        b.iter(|| std::hint::black_box(change::identify(chain, &ChangeConfig::naive())))
    });
    let mut waiting = ChangeConfig::naive();
    waiting.wait_blocks = Some(BLOCKS_PER_WEEK);
    waiting.dice_exception = true;
    waiting.dice_addresses = wb.dice.clone();
    g.bench_function("with_wait_and_dice", |b| {
        b.iter(|| std::hint::black_box(change::identify(chain, &waiting)))
    });
    let refined = wb.refined_config();
    g.bench_function("fully_refined", |b| {
        b.iter(|| std::hint::black_box(change::identify(chain, &refined)))
    });
    g.finish();
}

fn bench_estimator(c: &mut Criterion) {
    let wb = workbench();
    let chain = wb.eco.chain.resolved();
    let labels = change::identify(chain, &ChangeConfig::naive());
    let mut dice_cfg = ChangeConfig::naive();
    dice_cfg.dice_exception = true;
    dice_cfg.dice_addresses = wb.dice.clone();
    let mut g = c.benchmark_group("fp_estimator");
    g.throughput(Throughput::Elements(labels.labels as u64));
    g.bench_function("plain", |b| {
        b.iter(|| std::hint::black_box(fp::estimate(chain, &labels, &ChangeConfig::naive())))
    });
    g.bench_function("with_dice_exception", |b| {
        b.iter(|| std::hint::black_box(fp::estimate(chain, &labels, &dice_cfg)))
    });
    g.finish();
}

criterion_group!(benches, bench_identify, bench_estimator);
criterion_main!(benches);

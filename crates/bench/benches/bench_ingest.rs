//! Experiment `ingest`: the sharded ingest sweep.
//!
//! The claim under test: the sharded pipeline does the same total work as
//! the batch clusterer — per-block cost at shard count 1 is within a small
//! constant of the batch engine's amortized per-block cost, and widening
//! the shard count changes only *where* the work happens (per-shard scans
//! plus an epoch reconcile), never *what* is computed. On a single-core
//! container the sweep therefore charts coordination overhead per shard
//! count, not speedup; the differential tests pin the output itself.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use fistful_bench::Workbench;
use fistful_core::change::ChangeConfig;
use fistful_core::cluster::Clusterer;
use fistful_core::incremental::sharded::{IngestConfig, ShardedIngest};
use fistful_core::incremental::IncrementalClusterer;
use fistful_sim::SimConfig;
use std::sync::OnceLock;

fn workbench() -> &'static Workbench {
    static WB: OnceLock<Workbench> = OnceLock::new();
    WB.get_or_init(|| Workbench::build(SimConfig::tiny()))
}

/// Full-chain replay cost per shard count, against the batch and
/// single-threaded incremental engines as baselines. Throughput is in
/// transactions, so criterion reports a comparable ns/tx for every engine.
fn bench_sharded_sweep(c: &mut Criterion) {
    let wb = workbench();
    let chain = wb.eco.chain.resolved();
    let mut g = c.benchmark_group("ingest/full_chain");
    g.sample_size(10);
    g.throughput(Throughput::Elements(chain.tx_count() as u64));
    g.bench_function("batch", |b| {
        b.iter(|| {
            let clustering = Clusterer::with_h2(ChangeConfig::naive()).run(chain);
            std::hint::black_box(clustering.cluster_count())
        })
    });
    g.bench_function("incremental", |b| {
        b.iter(|| {
            let mut inc = IncrementalClusterer::with_h2(ChangeConfig::naive());
            for block in chain.blocks() {
                inc.ingest_block(&block);
            }
            inc.flush(chain);
            std::hint::black_box(inc.cluster_count())
        })
    });
    for shards in [1usize, 2, 4, 8] {
        g.bench_with_input(BenchmarkId::new("sharded", shards), &shards, |b, &shards| {
            b.iter(|| {
                let mut pipe =
                    ShardedIngest::new(IngestConfig::with_h2(shards, 16, ChangeConfig::naive()));
                for block in chain.blocks() {
                    pipe.ingest_block(&block);
                }
                pipe.flush(chain);
                std::hint::black_box(pipe.cluster_count())
            })
        });
    }
    g.finish();
}

/// Reconcile cadence: the same 4-shard replay at epoch lengths from every
/// block to effectively-once. Short epochs reconcile often over small
/// buffers; long epochs reconcile rarely over large ones — total work
/// should stay flat, charting the cadence as a tunable, not a cost cliff.
fn bench_epoch_cadence(c: &mut Criterion) {
    let wb = workbench();
    let chain = wb.eco.chain.resolved();
    let mut g = c.benchmark_group("ingest/epoch_cadence");
    g.sample_size(10);
    g.throughput(Throughput::Elements(chain.tx_count() as u64));
    for epoch in [1usize, 4, 16, 64] {
        g.bench_with_input(BenchmarkId::from_parameter(epoch), &epoch, |b, &epoch| {
            b.iter(|| {
                let mut pipe =
                    ShardedIngest::new(IngestConfig::with_h2(4, epoch, ChangeConfig::naive()));
                for block in chain.blocks() {
                    pipe.ingest_block(&block);
                }
                pipe.flush(chain);
                std::hint::black_box(pipe.cluster_count())
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench_sharded_sweep, bench_epoch_cadence);
criterion_main!(benches);

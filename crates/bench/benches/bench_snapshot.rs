//! Experiment `snapshot`: serving from the frozen artifact.
//!
//! Two claims under test:
//!
//! 1. **Concurrent reads scale.** `ClusterSnapshot` is immutable and
//!    lock-free, so random address → `ClusterInfo` lookup throughput should
//!    grow with reader threads (1/2/4/8) instead of serializing.
//! 2. **Reload beats recompute.** Decoding a saved snapshot (including the
//!    double-SHA-256 checksum verification) must be far cheaper than
//!    re-deriving it — batch clustering + naming + aggregation — which is
//!    what a process without the artifact pays on every restart. Measured
//!    at the default and large (paper-style) simulation scales.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use fistful_bench::Workbench;
use fistful_core::naming::name_clusters;
use fistful_core::snapshot::ClusterSnapshot;
use fistful_sim::SimConfig;
use std::sync::{Arc, OnceLock};

/// Lookups per reader thread per iteration.
const LOOKUPS_PER_THREAD: usize = 100_000;

fn default_scale() -> &'static (Workbench, Arc<ClusterSnapshot>) {
    static WB: OnceLock<(Workbench, Arc<ClusterSnapshot>)> = OnceLock::new();
    WB.get_or_init(|| {
        let wb = Workbench::build(SimConfig::default());
        let snap = Arc::new(wb.snapshot());
        (wb, snap)
    })
}

/// The "large" scale: the paper-style configuration (5× the default block
/// count), big enough that recompute-vs-decode differences are unmissable.
fn large_scale() -> &'static (Workbench, Arc<ClusterSnapshot>) {
    static WB: OnceLock<(Workbench, Arc<ClusterSnapshot>)> = OnceLock::new();
    WB.get_or_init(|| {
        let wb = Workbench::build(SimConfig::paper_scale());
        let snap = Arc::new(wb.snapshot());
        (wb, snap)
    })
}

/// Claim 1: multi-threaded random-lookup throughput, 1/2/4/8 readers over
/// one shared `Arc<ClusterSnapshot>` with zero locks.
fn bench_lookup_throughput(c: &mut Criterion) {
    let (_, snap) = default_scale();
    let n = snap.address_count() as u32;
    let mut g = c.benchmark_group("snapshot/lookup_throughput");
    g.sample_size(10);
    for threads in [1usize, 2, 4, 8] {
        g.throughput(Throughput::Elements((threads * LOOKUPS_PER_THREAD) as u64));
        g.bench_with_input(BenchmarkId::from_parameter(threads), &threads, |b, &threads| {
            b.iter(|| {
                let handles: Vec<_> = (0..threads)
                    .map(|t| {
                        let snap = Arc::clone(snap);
                        std::thread::spawn(move || {
                            // Cheap deterministic stride walk, distinct per
                            // thread, covering the address space.
                            let mut addr = (t as u32).wrapping_mul(2_654_435_761) % n;
                            let mut named = 0usize;
                            for _ in 0..LOOKUPS_PER_THREAD {
                                addr = addr.wrapping_mul(1_664_525).wrapping_add(1_013_904_223) % n;
                                let info = snap.info_of_address(addr).expect("in range");
                                if info.name.is_some() {
                                    named += 1;
                                }
                            }
                            named
                        })
                    })
                    .collect();
                let named: usize = handles.into_iter().map(|h| h.join().unwrap()).sum();
                std::hint::black_box(named)
            })
        });
    }
    g.finish();
}

/// Claim 2: wire-format encode/decode cost, and the decode-vs-recluster
/// comparison, at the default and large simulation scales.
fn bench_encode_decode_vs_recluster(c: &mut Criterion) {
    for (scale, wbs) in [("default", default_scale()), ("large", large_scale())] {
        let (wb, snap) = wbs;
        let chain = wb.eco.chain.resolved();
        let bytes = snap.to_bytes();
        let mut g = c.benchmark_group(format!("snapshot/{scale}"));
        g.sample_size(10);
        g.throughput(Throughput::Bytes(bytes.len() as u64));
        g.bench_function("encode", |b| {
            b.iter(|| std::hint::black_box(snap.to_bytes()))
        });
        g.bench_function("decode", |b| {
            b.iter(|| std::hint::black_box(ClusterSnapshot::from_bytes(&bytes).unwrap()))
        });
        // What a restart without the artifact costs: batch clustering,
        // naming, and aggregation from the (already resolved) chain.
        g.bench_function("recluster_from_scratch", |b| {
            b.iter(|| {
                let refined = wb.cluster_with(wb.refined_config());
                let names = name_clusters(&refined, &wb.tagdb);
                std::hint::black_box(ClusterSnapshot::build(chain, &refined, &names))
            })
        });
        g.finish();
    }
}

criterion_group!(benches, bench_lookup_throughput, bench_encode_decode_vs_recluster);
criterion_main!(benches);

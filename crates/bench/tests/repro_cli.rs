//! CLI-level tests of the `repro` binary: argument validation exit codes
//! and the dedupe behaviour, exercised against the real executable.

use std::process::Command;

fn repro(args: &[&str]) -> std::process::Output {
    Command::new(env!("CARGO_BIN_EXE_repro"))
        .args(args)
        .output()
        .expect("spawn repro")
}

#[test]
fn help_exits_zero_with_usage() {
    let out = repro(&["--help"]);
    assert!(out.status.success());
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("usage: repro"), "{stdout}");
}

#[test]
fn help_lists_every_experiment_and_snapshot_subcommands() {
    let out = repro(&["--help"]);
    let stdout = String::from_utf8_lossy(&out.stdout);
    // The usage text must not drift from what the parser accepts: every
    // experiment name, every scale, and the snapshot subcommands.
    for exp in fistful_bench::cli::EXPERIMENTS {
        assert!(stdout.contains(exp), "--help is missing experiment `{exp}`:\n{stdout}");
    }
    for scale in fistful_bench::cli::SCALES {
        assert!(stdout.contains(scale), "--help is missing scale `{scale}`:\n{stdout}");
    }
    assert!(stdout.contains("snapshot save"), "{stdout}");
    assert!(stdout.contains("snapshot query"), "{stdout}");
}

#[test]
fn all_mixed_with_named_is_a_usage_error() {
    for mix in [&["all", "h1"][..], &["h1", "all"]] {
        let out = repro(mix);
        assert_eq!(out.status.code(), Some(2), "args {mix:?}");
        let stderr = String::from_utf8_lossy(&out.stderr);
        assert!(stderr.contains("usage: repro"), "{stderr}");
        assert!(stderr.contains("`all` cannot be combined"), "{stderr}");
    }
}

#[test]
fn unknown_experiment_is_a_usage_error() {
    let out = repro(&["tab9"]);
    assert_eq!(out.status.code(), Some(2));
    assert!(String::from_utf8_lossy(&out.stderr).contains("unknown experiment"));
}

#[test]
fn bad_scale_is_a_usage_error() {
    let out = repro(&["--scale", "enormous"]);
    assert_eq!(out.status.code(), Some(2));
    assert!(String::from_utf8_lossy(&out.stderr).contains("invalid --scale"));
}

#[test]
fn snapshot_usage_errors_exit_two() {
    for bad in [
        &["snapshot"][..],
        &["snapshot", "frobnicate"],
        &["snapshot", "save"],
        &["snapshot", "query"],
        &["snapshot", "query", "file.snap", "notanumber"],
    ] {
        let out = repro(bad);
        assert_eq!(out.status.code(), Some(2), "args {bad:?}");
        assert!(
            String::from_utf8_lossy(&out.stderr).contains("usage: repro"),
            "args {bad:?}"
        );
    }
}

#[test]
fn snapshot_query_on_missing_file_fails_cleanly() {
    let out = repro(&["snapshot", "query", "/nonexistent/no.snap"]);
    assert_eq!(out.status.code(), Some(1));
    assert!(String::from_utf8_lossy(&out.stderr).contains("cannot read"));
}

#[test]
fn snapshot_save_then_query_round_trips_through_a_file() {
    let dir = std::env::temp_dir().join(format!("repro-snap-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("tiny.snap");
    let path_s = path.to_str().unwrap();

    let out = repro(&["snapshot", "save", "--scale", "tiny", path_s]);
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("wrote"), "{stdout}");
    assert!(path.exists());

    // Query the artifact back: summary plus an address lookup.
    let out = repro(&["snapshot", "query", path_s, "0", "--top", "3"]);
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("top clusters by size"), "{stdout}");
    assert!(stdout.contains("address 0: cluster"), "{stdout}");
    // The query path must not rebuild the economy.
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(!stderr.contains("building economy"), "{stderr}");

    // A corrupted artifact is rejected with the typed error's message.
    let mut bytes = std::fs::read(&path).unwrap();
    let mid = bytes.len() / 2;
    bytes[mid] ^= 0x01;
    let bad = dir.join("bad.snap");
    std::fs::write(&bad, &bytes).unwrap();
    let out = repro(&["snapshot", "query", bad.to_str().unwrap()]);
    assert_eq!(out.status.code(), Some(1));
    assert!(
        String::from_utf8_lossy(&out.stderr).contains("not a valid snapshot"),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );

    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn taint_usage_errors_exit_two() {
    for bad in [
        &["taint", "--thefts"][..],
        &["taint", "--thefts", "all,Betcoin"],
        &["taint", "--threads", "many"],
        &["taint", "--max-txs", "0"],
        &["taint", "--bogus"],
    ] {
        let out = repro(bad);
        assert_eq!(out.status.code(), Some(2), "args {bad:?}");
        assert!(
            String::from_utf8_lossy(&out.stderr).contains("usage: repro"),
            "args {bad:?}"
        );
    }
}

#[test]
fn taint_tracks_thefts_over_the_graph_at_tiny_scale() {
    let out = repro(&["taint", "--scale", "tiny", "--threads", "2", "--max-txs", "500"]);
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    let stdout = String::from_utf8_lossy(&out.stdout);
    // The graph was built and reported.
    assert!(stdout.contains("graph:"), "{stdout}");
    // The batch ran, was timed against the legacy walk, and agreed with it
    // (the binary asserts equality before printing this line).
    assert!(stdout.contains("results identical"), "{stdout}");
    assert!(stdout.contains("batch over index (2 threads)"), "{stdout}");
}

#[test]
fn taint_rejects_unknown_theft_names() {
    let out = repro(&["taint", "--scale", "tiny", "--thefts", "NotARealCase"]);
    assert_eq!(out.status.code(), Some(2));
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("unknown theft"), "{stderr}");
    // The error names the known cases so the caller can fix the spelling.
    assert!(stderr.contains("known:"), "{stderr}");
}

/// Parses every JSON line (the `--json` output convention: one compact
/// object per line, each starting with `{`) out of a blob of mixed
/// human/machine output.
fn json_lines(stdout: &str) -> Vec<fistful_bench::json::Json> {
    stdout
        .lines()
        .filter(|l| l.starts_with('{'))
        .map(|l| fistful_bench::json::parse(l).unwrap_or_else(|e| panic!("bad JSON `{l}`: {e}")))
        .collect()
}

#[test]
fn json_flag_emits_one_parseable_timing_object_per_experiment() {
    // fig1 needs no simulated economy, so this stays fast.
    let out = repro(&["--json", "fig1"]);
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    let stdout = String::from_utf8_lossy(&out.stdout);
    let objects = json_lines(&stdout);
    assert_eq!(objects.len(), 1, "one object per experiment:\n{stdout}");
    let obj = &objects[0];
    assert_eq!(obj.get("schema").unwrap().as_str(), Some("fistful.repro.run/1"));
    assert_eq!(obj.get("experiment").unwrap().as_str(), Some("fig1"));
    assert_eq!(obj.get("scale").unwrap().as_str(), Some("default"));
    let seconds = obj.get("seconds").unwrap().as_f64().unwrap();
    assert!((0.0..600.0).contains(&seconds), "implausible timing {seconds}");
    // The human-readable output still prints.
    assert!(stdout.contains("== Figure 1"), "{stdout}");
}

#[test]
fn json_out_flag_writes_the_objects_to_a_file() {
    let dir = std::env::temp_dir().join(format!("repro-json-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("bench.json");

    let out = repro(&["--out", path.to_str().unwrap(), "fig1"]);
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    // With --out, the JSON goes to the file, not stdout.
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(json_lines(&stdout).is_empty(), "{stdout}");
    let body = std::fs::read_to_string(&path).unwrap();
    let objects = json_lines(&body);
    assert_eq!(objects.len(), 1, "{body}");
    assert_eq!(objects[0].get("experiment").unwrap().as_str(), Some("fig1"));

    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn ingest_usage_errors_exit_two() {
    // The tentpole's typed usage errors: zero shards and a zero-block
    // epoch are rejected at parse time with exit code 2 and the usage
    // text, never a panic inside the pipeline.
    for bad in [
        &["ingest", "--shards", "0"][..],
        &["ingest", "--shards", "4,0"],
        &["ingest", "--shards", "x"],
        &["ingest", "--epoch", "0"],
        &["ingest", "--epoch", "soon"],
        &["ingest", "--bogus"],
    ] {
        let out = repro(bad);
        assert_eq!(out.status.code(), Some(2), "args {bad:?}");
        assert!(
            String::from_utf8_lossy(&out.stderr).contains("usage: repro"),
            "args {bad:?}"
        );
    }
}

#[test]
fn ingest_sweeps_shard_counts_and_matches_batch_at_tiny_scale() {
    let out = repro(&[
        "ingest", "--scale", "tiny", "--shards", "1,3", "--epoch", "8", "--json",
    ]);
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    let stdout = String::from_utf8_lossy(&out.stdout);
    // The binary asserts every engine's output equals the batch clustering
    // before printing this line.
    assert!(stdout.contains("reproduced the batch clustering exactly"), "{stdout}");

    // Machine-readable: batch + incremental baselines, then one record per
    // swept shard count, all under the ingest schema.
    let objects = json_lines(&stdout);
    assert_eq!(objects.len(), 4, "{stdout}");
    for obj in &objects {
        assert_eq!(obj.get("schema").unwrap().as_str(), Some("fistful.repro.ingest/1"));
        assert_eq!(obj.get("scale").unwrap().as_str(), Some("tiny"));
        assert_eq!(obj.get("epoch_blocks").unwrap().as_f64(), Some(8.0));
        assert!(obj.get("us_per_block").unwrap().as_f64().unwrap() > 0.0);
        assert!(obj.get("clusters").unwrap().as_f64().unwrap() > 0.0);
    }
    let engines: Vec<_> =
        objects.iter().map(|o| o.get("engine").unwrap().as_str().unwrap().to_string()).collect();
    assert_eq!(engines, ["batch", "incremental", "sharded", "sharded"], "{stdout}");
    assert_eq!(objects[2].get("shards").unwrap().as_f64(), Some(1.0));
    assert_eq!(objects[3].get("shards").unwrap().as_f64(), Some(3.0));
    // Every engine computed the same partition.
    let clusters = objects[0].get("clusters").unwrap().as_f64();
    assert!(objects.iter().all(|o| o.get("clusters").unwrap().as_f64() == clusters));
}

#[test]
fn taint_json_emits_per_theft_records_and_a_summary() {
    let out = repro(&["taint", "--scale", "tiny", "--threads", "2", "--max-txs", "500", "--json"]);
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    let stdout = String::from_utf8_lossy(&out.stdout);
    let objects = json_lines(&stdout);
    assert!(objects.len() >= 2, "per-theft records plus a summary:\n{stdout}");
    for obj in &objects {
        assert_eq!(obj.get("schema").unwrap().as_str(), Some("fistful.repro.taint/1"));
    }
    let (summary, thefts) = objects.split_last().unwrap();
    for t in thefts {
        assert!(t.get("theft").unwrap().as_str().is_some());
        assert!(t.get("txs").unwrap().as_f64().unwrap() >= 0.0);
    }
    assert_eq!(summary.get("thefts").unwrap().as_f64(), Some(thefts.len() as f64));
    assert_eq!(summary.get("threads").unwrap().as_f64(), Some(2.0));
    assert!(summary.get("batch_seconds").unwrap().as_f64().unwrap() > 0.0);
}

#[test]
fn store_usage_errors_exit_two() {
    for bad in [
        &["store"][..],
        &["store", "frobnicate"],
        &["store", "save"],
        &["store", "save", "--scale", "huge", "dir"],
        &["store", "open", "dir", "--scale", "tiny"],
        &["store", "append", "dir", "--epochs", "0"],
        &["store", "append", "dir", "--shards", "0"],
        &["store", "save", "dir", "--bogus"],
    ] {
        let out = repro(bad);
        assert_eq!(out.status.code(), Some(2), "args {bad:?}");
        assert!(
            String::from_utf8_lossy(&out.stderr).contains("usage: repro"),
            "args {bad:?}"
        );
    }
}

#[test]
fn store_open_on_missing_directory_fails_cleanly() {
    let out = repro(&["store", "open", "/nonexistent/store-dir"]);
    assert_eq!(out.status.code(), Some(1));
    assert!(String::from_utf8_lossy(&out.stderr).contains("repro:"));
}

#[test]
fn store_save_open_append_round_trip_at_tiny_scale() {
    let dir = std::env::temp_dir().join(format!("repro-store-{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    let dir_s = dir.to_str().unwrap();

    // save: all four container files land on disk.
    let out = repro(&["store", "save", "--scale", "tiny", dir_s, "--json"]);
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("wrote"), "{stdout}");
    for file in ["chain.fst", "graph.fst", "snapshot.fst", "serve.fst"] {
        assert!(dir.join(file).exists(), "missing {file}:\n{stdout}");
    }
    let objects = json_lines(&stdout);
    assert_eq!(objects.len(), 1, "{stdout}");
    assert_eq!(objects[0].get("schema").unwrap().as_str(), Some("fistful.repro.store/1"));
    assert_eq!(objects[0].get("op").unwrap().as_str(), Some("save"));
    assert!(objects[0].get("total_bytes").unwrap().as_f64().unwrap() > 0.0);

    // open with differential verification: the reopened bundle must be
    // byte-identical to an in-RAM rebuild (the binary asserts before
    // printing), and opening must not replay the chain.
    let out = repro(&["store", "open", dir_s, "--verify-scale", "tiny", "--json"]);
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("verified byte-identical"), "{stdout}");
    let objects = json_lines(&stdout);
    assert_eq!(objects.len(), 1, "{stdout}");
    assert_eq!(objects[0].get("op").unwrap().as_str(), Some("open"));
    assert_eq!(objects[0].get("verified"), Some(&fistful_bench::json::Json::Bool(true)));
    assert!(objects[0].get("rebuild_seconds").unwrap().as_f64().unwrap() > 0.0);

    // append: base + per-epoch deltas, materialized byte-for-byte.
    let out = repro(&[
        "store", "append", "--scale", "tiny", dir_s, "--epochs", "3", "--json",
    ]);
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("materialize byte-for-byte"), "{stdout}");
    let objects = json_lines(&stdout);
    let (summary, deltas) = objects.split_last().unwrap();
    assert_eq!(summary.get("op").unwrap().as_str(), Some("append"));
    assert_eq!(summary.get("epochs").unwrap().as_f64(), Some(3.0));
    assert!(summary.get("base_bytes").unwrap().as_f64().unwrap() > 0.0);
    // One on-disk delta container per append-delta record, in application
    // order, with its size accounted in the summary.
    assert!(summary.get("full_export_bytes").unwrap().as_f64().unwrap() > 0.0);
    let mut delta_total = 0.0;
    for (i, d) in deltas.iter().enumerate() {
        assert_eq!(d.get("op").unwrap().as_str(), Some("append-delta"));
        let name = format!("snapshot.delta.{:06}.fst", i + 1);
        assert!(dir.join(&name).exists(), "missing {name}:\n{stdout}");
        delta_total += d.get("bytes").unwrap().as_f64().unwrap();
    }
    assert_eq!(summary.get("delta_bytes").unwrap().as_f64(), Some(delta_total), "{stdout}");

    // The refreshed snapshot + deltas still open as a serving bundle.
    let out = repro(&["store", "open", dir_s]);
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("delta(s) folded"), "{stdout}");
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(!stderr.contains("building economy"), "{stderr}");

    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn serve_bench_reports_per_type_latency_and_cache_counters() {
    let out = repro(&[
        "serve-bench",
        "--scale",
        "tiny",
        "--threads",
        "2",
        "--connections",
        "2",
        "--requests",
        "150",
        "--mix",
        "addr:3,taint:1",
        "--json",
    ]);
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    let stdout = String::from_utf8_lossy(&out.stdout);
    // Human-readable report: one run with the cache on, one with it off.
    assert!(stdout.contains("cache on"), "{stdout}");
    assert!(stdout.contains("cache off"), "{stdout}");
    assert!(stdout.contains("p50 us"), "{stdout}");

    // Machine-readable: one object per run, with per-type stats.
    let objects = json_lines(&stdout);
    assert_eq!(objects.len(), 2, "{stdout}");
    let cached = &objects[0];
    assert_eq!(
        cached.get("schema").unwrap().as_str(),
        Some("fistful.repro.serve-bench/3")
    );
    assert_eq!(cached.get("engine").unwrap().as_str(), Some("threaded"));
    assert_eq!(cached.get("idle_connections").unwrap().as_f64(), Some(0.0));
    assert_eq!(cached.get("workers").unwrap().as_f64(), Some(2.0));
    assert_eq!(cached.get("total_requests").unwrap().as_f64(), Some(300.0));
    assert!(cached.get("throughput_rps").unwrap().as_f64().unwrap() > 0.0);
    // The repeated-key workload actually hits the cache.
    assert!(cached.get("cache_hits").unwrap().as_f64().unwrap() > 0.0, "{stdout}");
    for kind in ["addr", "taint"] {
        let t = cached.get("types").unwrap().get(kind).unwrap_or_else(|| {
            panic!("missing per-type stats for `{kind}`:\n{stdout}")
        });
        assert!(t.get("count").unwrap().as_f64().unwrap() > 0.0);
        assert!(t.get("p99_us").unwrap().as_f64().unwrap() >= t.get("p50_us").unwrap().as_f64().unwrap());
        // The server's scraped per-type counter agrees exactly with the
        // load generator's issued count (requests are counted at
        // dispatch entry, before the response cache short-circuits).
        assert_eq!(
            t.get("server_count").unwrap().as_f64(),
            t.get("count").unwrap().as_f64(),
            "scraped `{kind}` counter diverges from issued count:\n{stdout}"
        );
    }
    // The cache-off run reports zero cache traffic.
    let uncached = &objects[1];
    assert_eq!(uncached.get("cache_entries").unwrap().as_f64(), Some(0.0));
    assert_eq!(uncached.get("cache_hits").unwrap().as_f64(), Some(0.0));
}

#[test]
fn serve_bench_usage_errors_exit_two() {
    for bad in [
        &["serve-bench", "--mix", "bogus:1"][..],
        &["serve-bench", "--mix", "addr"],
        &["serve-bench", "--threads", "0"],
        &["serve-bench", "--connections", "none"],
        &["serve-bench", "--bogus"],
        &["serve", "--port", "notaport"],
        &["serve", "--metrics-port", "notaport"],
        // One explicit port cannot hold both the binary and the scrape
        // listener.
        &["serve", "--port", "9000", "--metrics-port", "9000"],
    ] {
        let out = repro(bad);
        assert_eq!(out.status.code(), Some(2), "args {bad:?}");
        assert!(
            String::from_utf8_lossy(&out.stderr).contains("usage: repro"),
            "args {bad:?}"
        );
    }
}

#[test]
fn help_lists_the_serve_commands() {
    let out = repro(&["--help"]);
    let stdout = String::from_utf8_lossy(&out.stdout);
    for needle in ["repro serve", "serve-bench", "--json", "--mix"] {
        assert!(stdout.contains(needle), "--help is missing `{needle}`:\n{stdout}");
    }
}

#[test]
fn duplicated_experiment_runs_once() {
    // fig1 needs no simulated economy, so this stays fast.
    let out = repro(&["fig1", "fig1", "fig1"]);
    assert!(out.status.success());
    let stdout = String::from_utf8_lossy(&out.stdout);
    let runs = stdout.matches("== Figure 1").count();
    assert_eq!(runs, 1, "fig1 should run exactly once:\n{stdout}");
    // No economy should have been built for a fig1-only invocation.
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(!stderr.contains("building economy"), "{stderr}");
}

#[test]
fn serve_reports_the_bound_address_before_building_and_swaps_live() {
    use std::io::BufRead;
    // `--port 0` only makes sense if the bound address is reported, and
    // it is only useful if it is reported *before* the slow economy /
    // artifact build — that ordering is exactly what this test pins.
    let mut child = Command::new(env!("CARGO_BIN_EXE_repro"))
        .args(["serve", "--scale", "tiny", "--port", "0", "--workers", "2", "--cache", "64", "--live"])
        .stdout(std::process::Stdio::piped())
        .stderr(std::process::Stdio::null())
        .spawn()
        .expect("spawn repro serve");
    let stdout = child.stdout.take().expect("piped stdout");
    let mut lines = std::io::BufReader::new(stdout).lines();
    let first = lines.next().expect("a first stdout line").expect("readable line");
    let addr: std::net::SocketAddr = first
        .strip_prefix("listening on ")
        .and_then(|rest| rest.split_whitespace().next())
        .unwrap_or_else(|| panic!("first stdout line is not the bound address: {first}"))
        .parse()
        .expect("parseable socket address");

    // The listener is already bound, so connecting succeeds immediately;
    // the kernel backlog parks us until the workers start post-build.
    let mut client = fistful_serve::Client::connect(addr).expect("connect to repro serve");
    client.ping().expect("ping");
    // Under --live the background ingest publishes fresh generations into
    // the running server: wait until a swap lands with real content.
    let deadline = std::time::Instant::now() + std::time::Duration::from_secs(120);
    loop {
        let stats = client.stats().expect("stats");
        if stats.epoch >= 1 && stats.tx_count > 0 {
            break;
        }
        assert!(
            std::time::Instant::now() < deadline,
            "no live hot swap observed within the deadline"
        );
        std::thread::sleep(std::time::Duration::from_millis(50));
    }
    child.kill().expect("kill repro serve");
    child.wait().expect("wait for repro serve");
}

#[test]
fn serve_metrics_port_announces_and_answers_http_scrapes() {
    use std::io::{BufRead, Read, Write};
    // Both listeners bind (and print) before the slow artifact build:
    // the binary address first, the scrape URL second.
    let mut child = Command::new(env!("CARGO_BIN_EXE_repro"))
        .args([
            "serve",
            "--scale",
            "tiny",
            "--port",
            "0",
            "--metrics-port",
            "0",
            "--workers",
            "2",
        ])
        .stdout(std::process::Stdio::piped())
        .stderr(std::process::Stdio::null())
        .spawn()
        .expect("spawn repro serve --metrics-port");
    let stdout = child.stdout.take().expect("piped stdout");
    let mut lines = std::io::BufReader::new(stdout).lines();
    let first = lines.next().expect("a first stdout line").expect("readable line");
    let addr: std::net::SocketAddr = first
        .strip_prefix("listening on ")
        .and_then(|rest| rest.split_whitespace().next())
        .unwrap_or_else(|| panic!("first stdout line is not the bound address: {first}"))
        .parse()
        .expect("parseable socket address");
    let second = lines.next().expect("a second stdout line").expect("readable line");
    let metrics_addr: std::net::SocketAddr = second
        .strip_prefix("metrics on http://")
        .and_then(|rest| rest.strip_suffix("/metrics"))
        .unwrap_or_else(|| panic!("second stdout line is not the metrics address: {second}"))
        .parse()
        .expect("parseable metrics socket address");
    assert_ne!(addr.port(), metrics_addr.port());

    // Issue a known mix over the binary port, then scrape over HTTP and
    // check the counters moved.
    let mut client = fistful_serve::Client::connect(addr).expect("connect to repro serve");
    for _ in 0..3 {
        client.ping().expect("ping");
    }
    let mut sock = std::net::TcpStream::connect(metrics_addr).expect("connect to metrics port");
    sock.write_all(b"GET /metrics HTTP/1.1\r\nHost: repro\r\n\r\n").expect("send scrape");
    let mut response = String::new();
    sock.read_to_string(&mut response).expect("read scrape");
    assert!(response.starts_with("HTTP/1.1 200 OK\r\n"), "{response}");
    assert!(response.contains("# TYPE fistful_requests_total counter"), "{response}");
    assert!(response.contains("fistful_requests_total{type=\"ping\"} 3"), "{response}");
    assert!(response.contains("fistful_request_latency_seconds_bucket"), "{response}");
    child.kill().expect("kill repro serve");
    child.wait().expect("wait for repro serve");
}

#[test]
fn serve_event_loop_binds_first_and_answers_pipelined_batches() {
    use std::io::BufRead;
    let mut child = Command::new(env!("CARGO_BIN_EXE_repro"))
        .args(["serve", "--scale", "tiny", "--port", "0", "--workers", "2", "--event-loop"])
        .stdout(std::process::Stdio::piped())
        .stderr(std::process::Stdio::null())
        .spawn()
        .expect("spawn repro serve --event-loop");
    let stdout = child.stdout.take().expect("piped stdout");
    let mut lines = std::io::BufReader::new(stdout).lines();
    let first = lines.next().expect("a first stdout line").expect("readable line");
    let addr: std::net::SocketAddr = first
        .strip_prefix("listening on ")
        .and_then(|rest| rest.split_whitespace().next())
        .unwrap_or_else(|| panic!("first stdout line is not the bound address: {first}"))
        .parse()
        .expect("parseable socket address");

    // The event loop takes over the pre-bound listener after the build;
    // a pipelined batch comes back complete and in order.
    let mut client = fistful_serve::Client::connect(addr).expect("connect to repro serve");
    client.ping().expect("ping");
    let batch = vec![fistful_serve::Request::Ping, fistful_serve::Request::Stats];
    let responses = client.pipeline(&batch).expect("pipelined batch");
    assert_eq!(responses.len(), 2);
    assert!(matches!(responses[0], fistful_serve::Response::Pong));
    assert!(matches!(&responses[1], fistful_serve::Response::Stats(s) if s.workers == 2));
    child.kill().expect("kill repro serve");
    child.wait().expect("wait for repro serve");
}

//! CLI-level tests of the `repro` binary: argument validation exit codes
//! and the dedupe behaviour, exercised against the real executable.

use std::process::Command;

fn repro(args: &[&str]) -> std::process::Output {
    Command::new(env!("CARGO_BIN_EXE_repro"))
        .args(args)
        .output()
        .expect("spawn repro")
}

#[test]
fn help_exits_zero_with_usage() {
    let out = repro(&["--help"]);
    assert!(out.status.success());
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("usage: repro"), "{stdout}");
}

#[test]
fn all_mixed_with_named_is_a_usage_error() {
    for mix in [&["all", "h1"][..], &["h1", "all"]] {
        let out = repro(mix);
        assert_eq!(out.status.code(), Some(2), "args {mix:?}");
        let stderr = String::from_utf8_lossy(&out.stderr);
        assert!(stderr.contains("usage: repro"), "{stderr}");
        assert!(stderr.contains("`all` cannot be combined"), "{stderr}");
    }
}

#[test]
fn unknown_experiment_is_a_usage_error() {
    let out = repro(&["tab9"]);
    assert_eq!(out.status.code(), Some(2));
    assert!(String::from_utf8_lossy(&out.stderr).contains("unknown experiment"));
}

#[test]
fn bad_scale_is_a_usage_error() {
    let out = repro(&["--scale", "enormous"]);
    assert_eq!(out.status.code(), Some(2));
    assert!(String::from_utf8_lossy(&out.stderr).contains("invalid --scale"));
}

#[test]
fn duplicated_experiment_runs_once() {
    // fig1 needs no simulated economy, so this stays fast.
    let out = repro(&["fig1", "fig1", "fig1"]);
    assert!(out.status.success());
    let stdout = String::from_utf8_lossy(&out.stdout);
    let runs = stdout.matches("== Figure 1").count();
    assert_eq!(runs, 1, "fig1 should run exactly once:\n{stdout}");
    // No economy should have been built for a fig1-only invocation.
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(!stderr.contains("building economy"), "{stderr}");
}

//! Fixed-size hash digests used throughout the workspace.
//!
//! [`Hash256`] is the 32-byte output of double-SHA-256 (transaction ids,
//! block hashes); [`Hash160`] is the 20-byte output of
//! RIPEMD-160∘SHA-256 (address payloads).

use std::fmt;

/// A 32-byte digest, displayed in the conventional reversed-hex form used by
/// Bitcoin for txids and block hashes.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
pub struct Hash256(pub [u8; 32]);

impl Hash256 {
    /// The all-zero digest, used as the previous-block reference of a genesis
    /// block and as the outpoint of a coin generation.
    pub const ZERO: Hash256 = Hash256([0u8; 32]);

    /// Returns the raw bytes.
    pub fn as_bytes(&self) -> &[u8; 32] {
        &self.0
    }

    /// Builds a digest from raw bytes.
    pub fn from_bytes(b: [u8; 32]) -> Self {
        Hash256(b)
    }

    /// Interprets the digest as a big-endian 256-bit integer and compares it
    /// against `target`, as proof-of-work validation does.
    pub fn meets_target(&self, target: &Hash256) -> bool {
        // Big-endian lexicographic comparison equals numeric comparison.
        self.0 <= target.0
    }

    /// Parses from a 64-character hex string (byte order as written).
    pub fn from_hex(s: &str) -> Option<Self> {
        if s.len() != 64 {
            return None;
        }
        let mut out = [0u8; 32];
        for (i, chunk) in s.as_bytes().chunks(2).enumerate() {
            let hi = (chunk[0] as char).to_digit(16)?;
            let lo = (chunk[1] as char).to_digit(16)?;
            out[i] = ((hi << 4) | lo) as u8;
        }
        Some(Hash256(out))
    }

    /// Lower-case hex of the bytes in natural (stored) order.
    pub fn to_hex(&self) -> String {
        let mut s = String::with_capacity(64);
        for b in self.0 {
            s.push_str(&format!("{b:02x}"));
        }
        s
    }
}

impl fmt::Debug for Hash256 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Hash256({})", self.to_hex())
    }
}

impl fmt::Display for Hash256 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.to_hex())
    }
}

/// A 20-byte digest (RIPEMD-160 of SHA-256), the payload of a
/// pay-to-pubkey-hash address.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
pub struct Hash160(pub [u8; 20]);

impl Hash160 {
    /// Returns the raw bytes.
    pub fn as_bytes(&self) -> &[u8; 20] {
        &self.0
    }

    /// Builds a digest from raw bytes.
    pub fn from_bytes(b: [u8; 20]) -> Self {
        Hash160(b)
    }

    /// Lower-case hex of the bytes.
    pub fn to_hex(&self) -> String {
        let mut s = String::with_capacity(40);
        for b in self.0 {
            s.push_str(&format!("{b:02x}"));
        }
        s
    }
}

impl fmt::Debug for Hash160 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Hash160({})", self.to_hex())
    }
}

impl fmt::Display for Hash160 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.to_hex())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hex_round_trip() {
        let h = Hash256::from_hex(
            "00000000000000000000000000000000000000000000000000000000000000ff",
        )
        .unwrap();
        assert_eq!(h.0[31], 0xff);
        assert_eq!(
            h.to_hex(),
            "00000000000000000000000000000000000000000000000000000000000000ff"
        );
    }

    #[test]
    fn from_hex_rejects_bad_input() {
        assert!(Hash256::from_hex("abcd").is_none());
        assert!(Hash256::from_hex(&"zz".repeat(32)).is_none());
    }

    #[test]
    fn target_comparison_is_numeric() {
        let small = Hash256::from_hex(
            "0000000000000000000000000000000000000000000000000000000000000001",
        )
        .unwrap();
        let big = Hash256::from_hex(
            "1000000000000000000000000000000000000000000000000000000000000000",
        )
        .unwrap();
        assert!(small.meets_target(&big));
        assert!(!big.meets_target(&small));
        assert!(small.meets_target(&small));
    }

    #[test]
    fn zero_constant() {
        assert_eq!(Hash256::ZERO.0, [0u8; 32]);
    }
}

//! From-scratch cryptographic primitives for the `fistful` workspace.
//!
//! This crate implements every primitive the block-chain substrate needs,
//! with no external dependencies:
//!
//! * [`sha256`] — SHA-256 and double-SHA-256 (`sha256d`), the hash used for
//!   transaction ids, block hashes and merkle trees.
//! * [`ripemd160`] — RIPEMD-160, combined with SHA-256 into `hash160` for
//!   address derivation.
//! * [`hmac`] — HMAC-SHA-256, used for deterministic (RFC-6979 style) ECDSA
//!   nonces.
//! * [`base58`] — Base58Check encoding for human-readable addresses.
//! * [`u256`] — fixed-width 256-bit unsigned arithmetic.
//! * [`field`] — arithmetic in the secp256k1 base field GF(p).
//! * [`scalar`] — arithmetic modulo the secp256k1 group order n.
//! * [`secp256k1`] — elliptic-curve group operations and ECDSA.
//! * [`keys`] — key pairs and pay-to-pubkey-hash address derivation.
//!
//! All implementations are validated against published test vectors in the
//! unit tests of each module.
//!
//! # Example
//!
//! ```
//! use fistful_crypto::keys::KeyPair;
//!
//! let kp = KeyPair::from_seed(42);
//! let msg = fistful_crypto::sha256::sha256d(b"a fistful of bitcoins");
//! let sig = kp.sign(&msg);
//! assert!(kp.public().verify(&msg, &sig));
//! ```

#![warn(missing_docs)]

pub mod base58;
pub mod field;
pub mod hash;
pub mod hmac;
pub mod keys;
pub mod ripemd160;
pub mod scalar;
pub mod secp256k1;
pub mod sha256;
pub mod u256;

pub use hash::{Hash160, Hash256};
pub use keys::{KeyPair, PublicKey};

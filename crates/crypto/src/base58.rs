//! Base58 and Base58Check encoding, as used for Bitcoin addresses.

use crate::sha256::sha256d;

/// The Bitcoin Base58 alphabet (no `0`, `O`, `I`, `l`).
const ALPHABET: &[u8; 58] = b"123456789ABCDEFGHJKLMNPQRSTUVWXYZabcdefghijkmnopqrstuvwxyz";

/// Errors from Base58(Check) decoding.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Base58Error {
    /// A character outside the Base58 alphabet was encountered.
    InvalidCharacter(char),
    /// The payload was shorter than the 4-byte checksum.
    TooShort,
    /// The trailing 4-byte double-SHA-256 checksum did not match.
    BadChecksum,
}

impl std::fmt::Display for Base58Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Base58Error::InvalidCharacter(c) => write!(f, "invalid base58 character {c:?}"),
            Base58Error::TooShort => write!(f, "base58check payload shorter than checksum"),
            Base58Error::BadChecksum => write!(f, "base58check checksum mismatch"),
        }
    }
}

impl std::error::Error for Base58Error {}

/// Encodes raw bytes as Base58.
pub fn encode(data: &[u8]) -> String {
    // Count leading zero bytes: they encode as leading '1's.
    let zeros = data.iter().take_while(|&&b| b == 0).count();

    // Repeated division of the big-endian number by 58.
    let mut digits: Vec<u8> = Vec::with_capacity(data.len() * 138 / 100 + 1);
    let mut num: Vec<u8> = data[zeros..].to_vec();
    while !num.is_empty() {
        let mut rem: u32 = 0;
        let mut next = Vec::with_capacity(num.len());
        for &byte in &num {
            let acc = (rem << 8) | byte as u32;
            let q = acc / 58;
            rem = acc % 58;
            if !next.is_empty() || q != 0 {
                next.push(q as u8);
            }
        }
        digits.push(rem as u8);
        num = next;
    }

    let mut out = String::with_capacity(zeros + digits.len());
    for _ in 0..zeros {
        out.push('1');
    }
    for &d in digits.iter().rev() {
        out.push(ALPHABET[d as usize] as char);
    }
    out
}

/// Decodes a Base58 string into raw bytes.
pub fn decode(s: &str) -> Result<Vec<u8>, Base58Error> {
    let ones = s.bytes().take_while(|&b| b == b'1').count();

    let mut num: Vec<u8> = Vec::new();
    for c in s.bytes().skip(ones) {
        let digit = ALPHABET
            .iter()
            .position(|&a| a == c)
            .ok_or(Base58Error::InvalidCharacter(c as char))? as u32;
        // num = num * 58 + digit, big-endian.
        let mut carry = digit;
        for byte in num.iter_mut().rev() {
            let acc = *byte as u32 * 58 + carry;
            *byte = (acc & 0xff) as u8;
            carry = acc >> 8;
        }
        while carry > 0 {
            num.insert(0, (carry & 0xff) as u8);
            carry >>= 8;
        }
    }

    let mut out = vec![0u8; ones];
    out.extend_from_slice(&num);
    Ok(out)
}

/// Encodes `payload` with a version byte and 4-byte double-SHA-256 checksum.
pub fn check_encode(version: u8, payload: &[u8]) -> String {
    let mut data = Vec::with_capacity(1 + payload.len() + 4);
    data.push(version);
    data.extend_from_slice(payload);
    let checksum = sha256d(&data);
    data.extend_from_slice(&checksum.0[..4]);
    encode(&data)
}

/// Decodes a Base58Check string, returning `(version, payload)`.
pub fn check_decode(s: &str) -> Result<(u8, Vec<u8>), Base58Error> {
    let data = decode(s)?;
    if data.len() < 5 {
        return Err(Base58Error::TooShort);
    }
    let (body, checksum) = data.split_at(data.len() - 4);
    let expect = sha256d(body);
    if checksum != &expect.0[..4] {
        return Err(Base58Error::BadChecksum);
    }
    Ok((body[0], body[1..].to_vec()))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn encode_known_vectors() {
        assert_eq!(encode(b""), "");
        assert_eq!(encode(&[0x00]), "1");
        assert_eq!(encode(&[0x00, 0x00]), "11");
        assert_eq!(encode(b"hello world"), "StV1DL6CwTryKyV");
        // 0x61 = 97 = 1·58 + 39 → digits [1, 39] → "2g", plus one leading '1'.
        assert_eq!(encode(&[0x00, 0x61]), "12g");
    }

    #[test]
    fn decode_known_vectors() {
        assert_eq!(decode("StV1DL6CwTryKyV").unwrap(), b"hello world");
        assert_eq!(decode("1").unwrap(), vec![0]);
        assert_eq!(decode("").unwrap(), Vec::<u8>::new());
    }

    #[test]
    fn decode_rejects_invalid_characters() {
        assert_eq!(
            decode("0OIl"),
            Err(Base58Error::InvalidCharacter('0'))
        );
    }

    #[test]
    fn genesis_address_vector() {
        // hash160 of the genesis coinbase pubkey, version 0x00, must produce
        // the famous first Bitcoin address.
        let h160_hex = "62e907b15cbf27d5425399ebf6f0fb50ebb88f18";
        let payload: Vec<u8> = (0..h160_hex.len())
            .step_by(2)
            .map(|i| u8::from_str_radix(&h160_hex[i..i + 2], 16).unwrap())
            .collect();
        assert_eq!(
            check_encode(0x00, &payload),
            "1A1zP1eP5QGefi2DMPTfTL5SLmv7DivfNa"
        );
    }

    #[test]
    fn check_round_trip() {
        let payload = [0xde, 0xad, 0xbe, 0xef, 0x42];
        let s = check_encode(0x05, &payload);
        let (version, decoded) = check_decode(&s).unwrap();
        assert_eq!(version, 0x05);
        assert_eq!(decoded, payload);
    }

    #[test]
    fn check_detects_corruption() {
        let s = check_encode(0x00, &[1, 2, 3, 4]);
        // Flip one character (choose a replacement that stays in-alphabet).
        let mut corrupted: Vec<char> = s.chars().collect();
        let i = corrupted.len() / 2;
        corrupted[i] = if corrupted[i] == '2' { '3' } else { '2' };
        let corrupted: String = corrupted.into_iter().collect();
        assert!(matches!(
            check_decode(&corrupted),
            Err(Base58Error::BadChecksum) | Err(Base58Error::TooShort)
        ));
    }

    #[test]
    fn round_trip_random_payloads() {
        // Deterministic pseudo-random payloads without pulling in rand here.
        let mut x: u64 = 0x1234_5678_9abc_def0;
        for len in 0..64 {
            let mut payload = Vec::with_capacity(len);
            for _ in 0..len {
                x = x.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
                payload.push((x >> 56) as u8);
            }
            let encoded = encode(&payload);
            assert_eq!(decode(&encoded).unwrap(), payload, "len {len}");
        }
    }
}

//! Arithmetic modulo the secp256k1 group order `n`.
//!
//! Scalars appear a handful of times per signature, so the generic
//! binary-division reduction from [`crate::u256`] is fast enough here; the
//! hot path (field multiplication inside point arithmetic) has its own
//! specialised reduction in [`crate::field`].

use crate::u256::U256;

/// The secp256k1 group order `n`.
pub const N: U256 = U256 {
    limbs: [
        0xBFD2_5E8C_D036_4141,
        0xBAAE_DCE6_AF48_A03B,
        0xFFFF_FFFF_FFFF_FFFE,
        0xFFFF_FFFF_FFFF_FFFF,
    ],
};

/// An integer modulo `n`, kept reduced at all times.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct Scalar(U256);

impl Scalar {
    /// Zero.
    pub const ZERO: Scalar = Scalar(U256::ZERO);
    /// One.
    pub const ONE: Scalar = Scalar(U256::ONE);

    /// Builds from an integer, reducing mod n.
    pub fn from_u256(v: U256) -> Scalar {
        if v >= N {
            let (r, _) = v.overflowing_sub(&N);
            // A single subtraction suffices for v < 2^256 < 2n.
            Scalar(r)
        } else {
            Scalar(v)
        }
    }

    /// Builds from a small value.
    pub fn from_u64(v: u64) -> Scalar {
        Scalar(U256::from_u64(v))
    }

    /// Builds from 32 big-endian bytes, reducing mod n.
    pub fn from_be_bytes(b: &[u8; 32]) -> Scalar {
        Scalar::from_u256(U256::from_be_bytes(b))
    }

    /// Parses a hex string, reducing mod n.
    pub fn from_hex(s: &str) -> Option<Scalar> {
        U256::from_hex(s).map(Scalar::from_u256)
    }

    /// Serializes to 32 big-endian bytes.
    pub fn to_be_bytes(&self) -> [u8; 32] {
        self.0.to_be_bytes()
    }

    /// The underlying reduced integer.
    pub fn to_u256(&self) -> U256 {
        self.0
    }

    /// True if zero.
    pub fn is_zero(&self) -> bool {
        self.0.is_zero()
    }

    /// Addition mod n.
    pub fn add(&self, other: &Scalar) -> Scalar {
        let (sum, carry) = self.0.overflowing_add(&other.0);
        if carry || sum >= N {
            let (r, _) = sum.overflowing_sub(&N);
            Scalar(r)
        } else {
            Scalar(sum)
        }
    }

    /// Negation mod n.
    pub fn neg(&self) -> Scalar {
        if self.is_zero() {
            *self
        } else {
            let (r, _) = N.overflowing_sub(&self.0);
            Scalar(r)
        }
    }

    /// Subtraction mod n.
    pub fn sub(&self, other: &Scalar) -> Scalar {
        self.add(&other.neg())
    }

    /// Multiplication mod n (widening multiply + generic reduction).
    pub fn mul(&self, other: &Scalar) -> Scalar {
        Scalar(self.0.mul_wide(&other.0).rem(&N))
    }

    /// Exponentiation by square-and-multiply.
    pub fn pow(&self, exp: &U256) -> Scalar {
        let mut result = Scalar::ONE;
        let bits = exp.bits();
        for i in (0..bits).rev() {
            result = result.mul(&result);
            if exp.bit(i) {
                result = result.mul(self);
            }
        }
        result
    }

    /// Multiplicative inverse via Fermat's little theorem (`a^(n-2)`).
    /// Panics on zero.
    pub fn inv(&self) -> Scalar {
        assert!(!self.is_zero(), "inverse of zero scalar");
        let (nm2, _) = N.overflowing_sub(&U256::from_u64(2));
        self.pow(&nm2)
    }

    /// True if the scalar is greater than n/2 (a "high-s" signature value).
    pub fn is_high(&self) -> bool {
        // n/2, rounded down.
        const HALF_N: U256 = U256 {
            limbs: [
                0xDFE9_2F46_681B_20A0,
                0x5D57_6E73_57A4_501D,
                0xFFFF_FFFF_FFFF_FFFF,
                0x7FFF_FFFF_FFFF_FFFF,
            ],
        };
        self.0 > HALF_N
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn n_reduces_to_zero() {
        assert_eq!(Scalar::from_u256(N), Scalar::ZERO);
    }

    #[test]
    fn add_wraps_at_n() {
        let nm1 = {
            let (r, _) = N.overflowing_sub(&U256::ONE);
            Scalar::from_u256(r)
        };
        assert_eq!(nm1.add(&Scalar::ONE), Scalar::ZERO);
    }

    #[test]
    fn mul_matches_small_values() {
        let a = Scalar::from_u64(1 << 32);
        let b = Scalar::from_u64(1 << 20);
        // 2^32 · 2^20 = 2^52
        assert_eq!(a.mul(&b), Scalar::from_u256(U256::from_hex("10000000000000").unwrap()));
    }

    #[test]
    fn inverse() {
        let x = Scalar::from_hex("deadbeefcafebabe").unwrap();
        assert_eq!(x.mul(&x.inv()), Scalar::ONE);
    }

    #[test]
    #[should_panic(expected = "inverse of zero")]
    fn inverse_of_zero_panics() {
        let _ = Scalar::ZERO.inv();
    }

    #[test]
    fn neg_adds_to_zero() {
        let x = Scalar::from_hex("123456789abcdef").unwrap();
        assert_eq!(x.add(&x.neg()), Scalar::ZERO);
        assert_eq!(Scalar::ZERO.neg(), Scalar::ZERO);
    }

    #[test]
    fn high_s_detection() {
        assert!(!Scalar::ONE.is_high());
        let nm1 = {
            let (r, _) = N.overflowing_sub(&U256::ONE);
            Scalar::from_u256(r)
        };
        assert!(nm1.is_high());
        // neg of a low scalar is high and vice versa
        assert!(Scalar::from_u64(5).neg().is_high());
    }

    #[test]
    fn sub_consistency() {
        let a = Scalar::from_u64(100);
        let b = Scalar::from_u64(42);
        assert_eq!(a.sub(&b), Scalar::from_u64(58));
        assert_eq!(b.sub(&a), Scalar::from_u64(58).neg());
    }
}

//! The secp256k1 elliptic-curve group and ECDSA, from scratch.
//!
//! The curve is `y² = x³ + 7` over GF(p). Point arithmetic uses Jacobian
//! projective coordinates; signing uses deterministic nonces per RFC 6979
//! (HMAC-SHA-256 construction) so the whole workspace stays reproducible
//! without an entropy source.

use crate::field::Fe;
use crate::hmac::hmac_sha256;
use crate::scalar::{Scalar, N};
use crate::u256::U256;

/// A point on the curve in affine coordinates, or the point at infinity.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct Affine {
    /// The x coordinate (ignored when `infinity` is set).
    pub x: Fe,
    /// The y coordinate (ignored when `infinity` is set).
    pub y: Fe,
    /// True for the point at infinity, the group identity.
    pub infinity: bool,
}

/// A point in Jacobian projective coordinates `(X/Z², Y/Z³)`.
#[derive(Clone, Copy, Debug)]
pub struct Jacobian {
    x: Fe,
    y: Fe,
    z: Fe,
}

/// The generator point G.
pub fn generator() -> Affine {
    Affine {
        x: Fe::from_hex("79BE667EF9DCBBAC55A06295CE870B07029BFCDB2DCE28D959F2815B16F81798")
            .unwrap(),
        y: Fe::from_hex("483ADA7726A3C4655DA4FBFC0E1108A8FD17B448A68554199C47D08FFB10D4B8")
            .unwrap(),
        infinity: false,
    }
}

impl Affine {
    /// The point at infinity (group identity).
    pub fn infinity() -> Affine {
        Affine { x: Fe::ZERO, y: Fe::ZERO, infinity: true }
    }

    /// True if the coordinates satisfy the curve equation.
    pub fn is_on_curve(&self) -> bool {
        if self.infinity {
            return true;
        }
        let lhs = self.y.square();
        let rhs = self.x.square().mul(&self.x).add(&Fe::from_u64(7));
        lhs == rhs
    }

    /// Converts to Jacobian coordinates.
    pub fn to_jacobian(&self) -> Jacobian {
        if self.infinity {
            Jacobian::infinity()
        } else {
            Jacobian { x: self.x, y: self.y, z: Fe::ONE }
        }
    }

    /// Uncompressed SEC1 encoding: `0x04 || x || y` (65 bytes).
    /// Panics on the point at infinity.
    pub fn encode_uncompressed(&self) -> [u8; 65] {
        assert!(!self.infinity, "cannot encode the point at infinity");
        let mut out = [0u8; 65];
        out[0] = 0x04;
        out[1..33].copy_from_slice(&self.x.to_be_bytes());
        out[33..65].copy_from_slice(&self.y.to_be_bytes());
        out
    }

    /// Compressed SEC1 encoding: `0x02/0x03 || x` (33 bytes).
    /// Panics on the point at infinity.
    pub fn encode_compressed(&self) -> [u8; 33] {
        assert!(!self.infinity, "cannot encode the point at infinity");
        let mut out = [0u8; 33];
        out[0] = if self.y.is_odd() { 0x03 } else { 0x02 };
        out[1..33].copy_from_slice(&self.x.to_be_bytes());
        out
    }
}

impl Jacobian {
    /// The point at infinity, represented with Z = 0.
    pub fn infinity() -> Jacobian {
        Jacobian { x: Fe::ONE, y: Fe::ONE, z: Fe::ZERO }
    }

    /// True if this is the identity.
    pub fn is_infinity(&self) -> bool {
        self.z.is_zero()
    }

    /// Converts back to affine coordinates (one field inversion).
    pub fn to_affine(&self) -> Affine {
        if self.is_infinity() {
            return Affine::infinity();
        }
        let zinv = self.z.inv();
        let zinv2 = zinv.square();
        let zinv3 = zinv2.mul(&zinv);
        Affine {
            x: self.x.mul(&zinv2),
            y: self.y.mul(&zinv3),
            infinity: false,
        }
    }

    /// Point doubling (curve has a = 0, so the simplified formula applies).
    pub fn double(&self) -> Jacobian {
        if self.is_infinity() || self.y.is_zero() {
            return Jacobian::infinity();
        }
        let a = self.x.square();
        let b = self.y.square();
        let c = b.square();
        // D = 2·((X+B)² − A − C)
        let d = self.x.add(&b).square().sub(&a).sub(&c).mul_u64(2);
        let e = a.mul_u64(3);
        let f = e.square();
        let x3 = f.sub(&d.mul_u64(2));
        let y3 = e.mul(&d.sub(&x3)).sub(&c.mul_u64(8));
        let z3 = self.y.mul(&self.z).mul_u64(2);
        Jacobian { x: x3, y: y3, z: z3 }
    }

    /// General point addition.
    pub fn add(&self, other: &Jacobian) -> Jacobian {
        if self.is_infinity() {
            return *other;
        }
        if other.is_infinity() {
            return *self;
        }
        let z1z1 = self.z.square();
        let z2z2 = other.z.square();
        let u1 = self.x.mul(&z2z2);
        let u2 = other.x.mul(&z1z1);
        let s1 = self.y.mul(&z2z2).mul(&other.z);
        let s2 = other.y.mul(&z1z1).mul(&self.z);
        if u1 == u2 {
            if s1 == s2 {
                return self.double();
            }
            return Jacobian::infinity();
        }
        let h = u2.sub(&u1);
        let i = h.mul_u64(2).square();
        let j = h.mul(&i);
        let r = s2.sub(&s1).mul_u64(2);
        let v = u1.mul(&i);
        let x3 = r.square().sub(&j).sub(&v.mul_u64(2));
        let y3 = r.mul(&v.sub(&x3)).sub(&s1.mul(&j).mul_u64(2));
        let z3 = self.z.mul(&other.z).mul(&h).mul_u64(2);
        Jacobian { x: x3, y: y3, z: z3 }
    }

    /// Adds an affine point (slightly cheaper; used in double-and-add).
    pub fn add_affine(&self, other: &Affine) -> Jacobian {
        if other.infinity {
            return *self;
        }
        self.add(&other.to_jacobian())
    }
}

/// Scalar multiplication `k·P` by MSB-first double-and-add.
pub fn mul(point: &Affine, k: &Scalar) -> Affine {
    if k.is_zero() || point.infinity {
        return Affine::infinity();
    }
    let kk = k.to_u256();
    let bits = kk.bits();
    let mut acc = Jacobian::infinity();
    for i in (0..bits).rev() {
        acc = acc.double();
        if kk.bit(i) {
            acc = acc.add_affine(point);
        }
    }
    acc.to_affine()
}

/// Computes `a·G + b·Q` (the ECDSA verification combination).
pub fn mul_double(a: &Scalar, q: &Affine, b: &Scalar) -> Affine {
    // Shamir's trick: one shared doubling chain.
    let g = generator();
    let gq = g.to_jacobian().add_affine(q).to_affine();
    let aa = a.to_u256();
    let bb = b.to_u256();
    let bits = aa.bits().max(bb.bits());
    let mut acc = Jacobian::infinity();
    for i in (0..bits).rev() {
        acc = acc.double();
        match (aa.bit(i), bb.bit(i)) {
            (true, true) => acc = acc.add_affine(&gq),
            (true, false) => acc = acc.add_affine(&g),
            (false, true) => acc = acc.add_affine(q),
            (false, false) => {}
        }
    }
    acc.to_affine()
}

/// An ECDSA signature `(r, s)`, normalized to low-s.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct Signature {
    /// The x coordinate of the nonce point, reduced mod the group order.
    pub r: Scalar,
    /// The proof scalar, normalized to the low half of the order.
    pub s: Scalar,
}

impl Signature {
    /// Serializes as 64 bytes `r || s` (big-endian).
    pub fn to_bytes(&self) -> [u8; 64] {
        let mut out = [0u8; 64];
        out[..32].copy_from_slice(&self.r.to_be_bytes());
        out[32..].copy_from_slice(&self.s.to_be_bytes());
        out
    }

    /// Parses from 64 bytes `r || s`.
    pub fn from_bytes(b: &[u8; 64]) -> Signature {
        let mut rb = [0u8; 32];
        let mut sb = [0u8; 32];
        rb.copy_from_slice(&b[..32]);
        sb.copy_from_slice(&b[32..]);
        Signature {
            r: Scalar::from_be_bytes(&rb),
            s: Scalar::from_be_bytes(&sb),
        }
    }
}

/// Derives the RFC 6979 deterministic nonce for `(key, msg_hash)`.
///
/// Exposed for testing against published vectors.
pub fn rfc6979_nonce(key: &Scalar, msg_hash: &[u8; 32]) -> Scalar {
    let x = key.to_be_bytes();
    // bits2octets: reduce the hash mod n, then serialize.
    let h_reduced = Scalar::from_be_bytes(msg_hash).to_be_bytes();

    let mut v = [0x01u8; 32];
    let mut k = [0x00u8; 32];

    let mut data = Vec::with_capacity(32 + 1 + 32 + 32);
    data.extend_from_slice(&v);
    data.push(0x00);
    data.extend_from_slice(&x);
    data.extend_from_slice(&h_reduced);
    k = hmac_sha256(&k, &data);
    v = hmac_sha256(&k, &v);

    let mut data = Vec::with_capacity(32 + 1 + 32 + 32);
    data.extend_from_slice(&v);
    data.push(0x01);
    data.extend_from_slice(&x);
    data.extend_from_slice(&h_reduced);
    k = hmac_sha256(&k, &data);
    v = hmac_sha256(&k, &v);

    loop {
        v = hmac_sha256(&k, &v);
        let candidate = U256::from_be_bytes(&v);
        if !candidate.is_zero() && candidate < N {
            return Scalar::from_u256(candidate);
        }
        let mut data = Vec::with_capacity(33);
        data.extend_from_slice(&v);
        data.push(0x00);
        k = hmac_sha256(&k, &data);
        v = hmac_sha256(&k, &v);
    }
}

/// Signs a 32-byte message hash with the private key `d`.
///
/// Deterministic (RFC 6979 nonce) and low-s normalized. Panics if `d` is
/// zero.
pub fn sign(d: &Scalar, msg_hash: &[u8; 32]) -> Signature {
    assert!(!d.is_zero(), "cannot sign with a zero key");
    let z = Scalar::from_be_bytes(msg_hash);
    let mut k = rfc6979_nonce(d, msg_hash);
    loop {
        let rp = mul(&generator(), &k);
        let r = Scalar::from_u256(rp.x.to_u256());
        if !r.is_zero() {
            let s = k.inv().mul(&z.add(&r.mul(d)));
            if !s.is_zero() {
                let s = if s.is_high() { s.neg() } else { s };
                return Signature { r, s };
            }
        }
        // Vanishingly unlikely; perturb the nonce deterministically.
        k = k.add(&Scalar::ONE);
    }
}

/// Verifies an ECDSA signature on a 32-byte message hash.
pub fn verify(q: &Affine, msg_hash: &[u8; 32], sig: &Signature) -> bool {
    if q.infinity || !q.is_on_curve() {
        return false;
    }
    if sig.r.is_zero() || sig.s.is_zero() {
        return false;
    }
    let z = Scalar::from_be_bytes(msg_hash);
    let w = sig.s.inv();
    let u1 = z.mul(&w);
    let u2 = sig.r.mul(&w);
    let point = mul_double(&u1, q, &u2);
    if point.infinity {
        return false;
    }
    Scalar::from_u256(point.x.to_u256()) == sig.r
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sha256::sha256;

    #[test]
    fn generator_is_on_curve() {
        assert!(generator().is_on_curve());
    }

    #[test]
    fn double_g_matches_vector() {
        let g2 = mul(&generator(), &Scalar::from_u64(2));
        assert_eq!(
            g2.x,
            Fe::from_hex("C6047F9441ED7D6D3045406E95C07CD85C778E4B8CEF3CA7ABAC09B95C709EE5")
                .unwrap()
        );
        assert_eq!(
            g2.y,
            Fe::from_hex("1AE168FEA63DC339A3C58419466CEAEEF7F632653266D0E1236431A950CFE52A")
                .unwrap()
        );
        assert!(g2.is_on_curve());
    }

    #[test]
    fn triple_g_matches_vector() {
        let g3 = mul(&generator(), &Scalar::from_u64(3));
        assert_eq!(
            g3.x,
            Fe::from_hex("F9308A019258C31049344F85F89D5229B531C845836F99B08601F113BCE036F9")
                .unwrap()
        );
        assert!(g3.is_on_curve());
    }

    #[test]
    fn add_commutes_with_mul() {
        let g = generator();
        let g2 = mul(&g, &Scalar::from_u64(2));
        let g3 = mul(&g, &Scalar::from_u64(3));
        let g5a = mul(&g, &Scalar::from_u64(5));
        let g5b = g2.to_jacobian().add_affine(&g3).to_affine();
        assert_eq!(g5a, g5b);
    }

    #[test]
    fn mul_by_group_order_is_infinity() {
        let n_scalar = Scalar::from_u256(N); // reduces to zero
        assert!(mul(&generator(), &n_scalar).infinity);
    }

    #[test]
    fn mul_by_n_minus_one_negates() {
        let (nm1, _) = N.overflowing_sub(&crate::u256::U256::ONE);
        let p = mul(&generator(), &Scalar::from_u256(nm1));
        let g = generator();
        assert_eq!(p.x, g.x);
        assert_eq!(p.y, g.y.neg());
    }

    #[test]
    fn rfc6979_vector_satoshi() {
        // Well-known secp256k1/SHA-256 RFC6979 vector (key = 1).
        let d = Scalar::from_u64(1);
        let h = sha256(b"Satoshi Nakamoto");
        let k = rfc6979_nonce(&d, &h);
        assert_eq!(
            k,
            Scalar::from_hex("8F8A276C19F4149656B280621E358CCE24F5F52542772691EE69063B74F15D15")
                .unwrap()
        );
        let sig = sign(&d, &h);
        assert_eq!(
            sig.r,
            Scalar::from_hex("934B1EA10A4B3C1757E2B0C017D0B6143CE3C9A7E6A4A49860D7A6AB210EE3D8")
                .unwrap()
        );
        assert_eq!(
            sig.s,
            Scalar::from_hex("2442CE9D2B916064108014783E923EC36B49743E2FFA1C4496F01A512AAFD9E5")
                .unwrap()
        );
    }

    #[test]
    fn rfc6979_vector_tears_in_rain() {
        let d = Scalar::from_u64(1);
        let h = sha256(b"All those moments will be lost in time, like tears in rain. Time to die...");
        // Vector from the widely-used trezor test set.
        let sig = sign(&d, &h);
        assert!(verify(&mul(&generator(), &d), &h, &sig));
    }

    #[test]
    fn sign_verify_round_trip() {
        let d = Scalar::from_hex("deadbeef12345678deadbeef12345678deadbeef12345678deadbeef1234")
            .unwrap();
        let q = mul(&generator(), &d);
        let h = sha256(b"a fistful of bitcoins");
        let sig = sign(&d, &h);
        assert!(verify(&q, &h, &sig));
    }

    #[test]
    fn verify_rejects_wrong_message() {
        let d = Scalar::from_u64(7);
        let q = mul(&generator(), &d);
        let sig = sign(&d, &sha256(b"original"));
        assert!(!verify(&q, &sha256(b"tampered"), &sig));
    }

    #[test]
    fn verify_rejects_wrong_key() {
        let d1 = Scalar::from_u64(7);
        let d2 = Scalar::from_u64(8);
        let q2 = mul(&generator(), &d2);
        let h = sha256(b"message");
        let sig = sign(&d1, &h);
        assert!(!verify(&q2, &h, &sig));
    }

    #[test]
    fn verify_rejects_zero_signature() {
        let q = mul(&generator(), &Scalar::from_u64(7));
        let h = sha256(b"message");
        assert!(!verify(&q, &h, &Signature { r: Scalar::ZERO, s: Scalar::ONE }));
        assert!(!verify(&q, &h, &Signature { r: Scalar::ONE, s: Scalar::ZERO }));
    }

    #[test]
    fn verify_rejects_off_curve_key() {
        let bogus = Affine { x: Fe::from_u64(1), y: Fe::from_u64(1), infinity: false };
        let h = sha256(b"message");
        let sig = sign(&Scalar::from_u64(7), &h);
        assert!(!verify(&bogus, &h, &sig));
    }

    #[test]
    fn signatures_are_low_s() {
        for seed in 1u64..20 {
            let d = Scalar::from_u64(seed);
            let h = sha256(&seed.to_be_bytes());
            let sig = sign(&d, &h);
            assert!(!sig.s.is_high(), "seed {seed}");
        }
    }

    #[test]
    fn signature_byte_round_trip() {
        let d = Scalar::from_u64(99);
        let h = sha256(b"serialize me");
        let sig = sign(&d, &h);
        assert_eq!(Signature::from_bytes(&sig.to_bytes()), sig);
    }

    #[test]
    fn encodings() {
        let g = generator();
        let unc = g.encode_uncompressed();
        assert_eq!(unc[0], 0x04);
        let cmp = g.encode_compressed();
        // G's y is even, so the prefix must be 0x02.
        assert_eq!(cmp[0], 0x02);
        assert_eq!(&unc[1..33], &cmp[1..33]);
    }

    #[test]
    fn jacobian_identity_laws() {
        let g = generator().to_jacobian();
        let inf = Jacobian::infinity();
        assert_eq!(g.add(&inf).to_affine(), generator());
        assert_eq!(inf.add(&g).to_affine(), generator());
        assert!(inf.double().is_infinity());
    }

    #[test]
    fn point_plus_negation_is_infinity() {
        let g = generator();
        let neg_g = Affine { x: g.x, y: g.y.neg(), infinity: false };
        assert!(g.to_jacobian().add_affine(&neg_g).is_infinity());
    }
}

//! Arithmetic in the secp256k1 base field GF(p), where
//! `p = 2^256 - 2^32 - 977`.
//!
//! Multiplication uses the standard fast reduction exploiting
//! `2^256 ≡ 2^32 + 977 (mod p)`; the property tests cross-check it against
//! the generic binary-division remainder in [`crate::u256`].

use crate::u256::U256;

/// `2^32 + 977`, the "small" part of the secp256k1 prime.
const C: u64 = 0x1_0000_03D1;

/// The field prime `p`.
pub const P: U256 = U256 {
    limbs: [
        0xFFFF_FFFE_FFFF_FC2F,
        0xFFFF_FFFF_FFFF_FFFF,
        0xFFFF_FFFF_FFFF_FFFF,
        0xFFFF_FFFF_FFFF_FFFF,
    ],
};

/// An element of GF(p), kept reduced (< p) at all times.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct Fe(U256);

impl Fe {
    /// Zero.
    pub const ZERO: Fe = Fe(U256::ZERO);
    /// One.
    pub const ONE: Fe = Fe(U256::ONE);

    /// Builds from an integer, reducing mod p.
    pub fn from_u256(v: U256) -> Fe {
        if v >= P {
            let (r, _) = v.overflowing_sub(&P);
            Fe(r)
        } else {
            Fe(v)
        }
    }

    /// Builds from a small value.
    pub fn from_u64(v: u64) -> Fe {
        Fe(U256::from_u64(v))
    }

    /// Builds from 32 big-endian bytes (reduced mod p).
    pub fn from_be_bytes(b: &[u8; 32]) -> Fe {
        Fe::from_u256(U256::from_be_bytes(b))
    }

    /// Parses a hex string, reducing mod p.
    pub fn from_hex(s: &str) -> Option<Fe> {
        U256::from_hex(s).map(Fe::from_u256)
    }

    /// Serializes to 32 big-endian bytes.
    pub fn to_be_bytes(&self) -> [u8; 32] {
        self.0.to_be_bytes()
    }

    /// The underlying reduced integer.
    pub fn to_u256(&self) -> U256 {
        self.0
    }

    /// True if the element is zero.
    pub fn is_zero(&self) -> bool {
        self.0.is_zero()
    }

    /// True if the underlying integer is odd.
    pub fn is_odd(&self) -> bool {
        self.0.bit(0)
    }

    /// Field addition.
    pub fn add(&self, other: &Fe) -> Fe {
        let (sum, carry) = self.0.overflowing_add(&other.0);
        if carry || sum >= P {
            let (r, _) = sum.overflowing_sub(&P);
            Fe(r)
        } else {
            Fe(sum)
        }
    }

    /// Field subtraction.
    pub fn sub(&self, other: &Fe) -> Fe {
        let (diff, borrow) = self.0.overflowing_sub(&other.0);
        if borrow {
            let (r, _) = diff.overflowing_add(&P);
            Fe(r)
        } else {
            Fe(diff)
        }
    }

    /// Field negation.
    pub fn neg(&self) -> Fe {
        if self.is_zero() {
            *self
        } else {
            let (r, _) = P.overflowing_sub(&self.0);
            Fe(r)
        }
    }

    /// Field multiplication with fast secp256k1 reduction.
    pub fn mul(&self, other: &Fe) -> Fe {
        let wide = self.0.mul_wide(&other.0);
        let (lo, hi) = wide.split();

        // 2^256 ≡ C (mod p): fold the high half down once.
        let (hic_lo, hic_hi) = hi.mul_u64(C); // hi * C, 5 limbs
        let (sum, carry1) = lo.overflowing_add(&hic_lo);
        // Total overflow above 2^256: hic_hi plus the addition carry.
        let overflow = hic_hi + carry1 as u64; // < 2^34, no wrap possible

        // Fold the small overflow down: overflow * 2^256 ≡ overflow * C.
        // overflow * C < 2^34 * 2^33 = 2^67, so it spans two limbs.
        let of_lo = (overflow as u128 * C as u128) as u64;
        let of_hi = ((overflow as u128 * C as u128) >> 64) as u64;
        let fold = U256 { limbs: [of_lo, of_hi, 0, 0] };
        let (sum2, carry2) = sum.overflowing_add(&fold);

        let mut r = sum2;
        if carry2 {
            // One final wrap: add C once more (cannot carry again because
            // sum2 < C after a wrap at this magnitude, but handle generally).
            let (r3, carry3) = r.overflowing_add(&U256::from_u64(C));
            debug_assert!(!carry3);
            r = r3;
        }
        while r >= P {
            let (d, _) = r.overflowing_sub(&P);
            r = d;
        }
        Fe(r)
    }

    /// Field squaring.
    pub fn square(&self) -> Fe {
        self.mul(self)
    }

    /// Exponentiation by square-and-multiply.
    pub fn pow(&self, exp: &U256) -> Fe {
        let mut result = Fe::ONE;
        let bits = exp.bits();
        for i in (0..bits).rev() {
            result = result.square();
            if exp.bit(i) {
                result = result.mul(self);
            }
        }
        result
    }

    /// Multiplicative inverse via Fermat's little theorem (`a^(p-2)`).
    /// Panics on zero.
    pub fn inv(&self) -> Fe {
        assert!(!self.is_zero(), "inverse of zero field element");
        let (pm2, _) = P.overflowing_sub(&U256::from_u64(2));
        self.pow(&pm2)
    }

    /// Multiplies by a small constant.
    pub fn mul_u64(&self, k: u64) -> Fe {
        self.mul(&Fe::from_u64(k))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fe(s: &str) -> Fe {
        Fe::from_hex(s).unwrap()
    }

    #[test]
    fn add_wraps_at_p() {
        let pm1 = Fe::from_u256({
            let (r, _) = P.overflowing_sub(&U256::ONE);
            r
        });
        assert_eq!(pm1.add(&Fe::ONE), Fe::ZERO);
        assert_eq!(pm1.add(&Fe::from_u64(2)), Fe::ONE);
    }

    #[test]
    fn sub_wraps_below_zero() {
        let r = Fe::ZERO.sub(&Fe::ONE);
        let pm1 = {
            let (v, _) = P.overflowing_sub(&U256::ONE);
            Fe::from_u256(v)
        };
        assert_eq!(r, pm1);
    }

    #[test]
    fn neg_roundtrip() {
        let x = fe("deadbeef12345678");
        assert_eq!(x.neg().neg(), x);
        assert_eq!(x.add(&x.neg()), Fe::ZERO);
        assert_eq!(Fe::ZERO.neg(), Fe::ZERO);
    }

    #[test]
    fn mul_matches_generic_reduction() {
        // Cross-check the fast reduction against binary long division.
        let samples = [
            "1",
            "2",
            "fffffffefffffc2e", // p-1 low limb pattern
            "fffffffffffffffffffffffffffffffffffffffffffffffffffffffefffffc2e",
            "8000000000000000000000000000000000000000000000000000000000000001",
            "deadbeefdeadbeefdeadbeefdeadbeefdeadbeefdeadbeefdeadbeefdeadbeef",
        ];
        for a_hex in samples {
            for b_hex in samples {
                let a = fe(a_hex);
                let b = fe(b_hex);
                let fast = a.mul(&b);
                let slow = Fe::from_u256(a.to_u256().mul_wide(&b.to_u256()).rem(&P));
                assert_eq!(fast, slow, "a={a_hex} b={b_hex}");
            }
        }
    }

    #[test]
    fn square_matches_mul() {
        let x = fe("123456789abcdef0fedcba9876543210aaaaaaaabbbbbbbbccccccccdddddddd");
        assert_eq!(x.square(), x.mul(&x));
    }

    #[test]
    fn inverse() {
        let x = fe("deadbeef");
        assert_eq!(x.mul(&x.inv()), Fe::ONE);
        assert_eq!(Fe::ONE.inv(), Fe::ONE);
    }

    #[test]
    #[should_panic(expected = "inverse of zero")]
    fn inverse_of_zero_panics() {
        let _ = Fe::ZERO.inv();
    }

    #[test]
    fn pow_small() {
        let three = Fe::from_u64(3);
        assert_eq!(three.pow(&U256::from_u64(4)), Fe::from_u64(81));
        assert_eq!(three.pow(&U256::ZERO), Fe::ONE);
    }

    #[test]
    fn from_u256_reduces() {
        // P itself reduces to zero.
        assert_eq!(Fe::from_u256(P), Fe::ZERO);
    }

    #[test]
    fn curve_constant_b_is_seven() {
        // sanity: y^2 = x^3 + 7 on G (checked fully in secp256k1 tests).
        let b = Fe::from_u64(7);
        assert!(!b.is_zero());
    }
}

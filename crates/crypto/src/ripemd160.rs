//! RIPEMD-160, implemented from scratch per the original Dobbertin,
//! Bosselaers and Preneel specification.
//!
//! Bitcoin uses RIPEMD-160 composed with SHA-256 (`hash160`) to derive the
//! 20-byte payload of a pay-to-pubkey-hash address.

/// Message-word selection for the left line, 5 rounds of 16 steps.
const R_LEFT: [usize; 80] = [
    0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15, //
    7, 4, 13, 1, 10, 6, 15, 3, 12, 0, 9, 5, 2, 14, 11, 8, //
    3, 10, 14, 4, 9, 15, 8, 1, 2, 7, 0, 6, 13, 11, 5, 12, //
    1, 9, 11, 10, 0, 8, 12, 4, 13, 3, 7, 15, 14, 5, 6, 2, //
    4, 0, 5, 9, 7, 12, 2, 10, 14, 1, 3, 8, 11, 6, 15, 13,
];

/// Message-word selection for the right line.
const R_RIGHT: [usize; 80] = [
    5, 14, 7, 0, 9, 2, 11, 4, 13, 6, 15, 8, 1, 10, 3, 12, //
    6, 11, 3, 7, 0, 13, 5, 10, 14, 15, 8, 12, 4, 9, 1, 2, //
    15, 5, 1, 3, 7, 14, 6, 9, 11, 8, 12, 2, 10, 0, 4, 13, //
    8, 6, 4, 1, 3, 11, 15, 0, 5, 12, 2, 13, 9, 7, 10, 14, //
    12, 15, 10, 4, 1, 5, 8, 7, 6, 2, 13, 14, 0, 3, 9, 11,
];

/// Left-rotation amounts for the left line.
const S_LEFT: [u32; 80] = [
    11, 14, 15, 12, 5, 8, 7, 9, 11, 13, 14, 15, 6, 7, 9, 8, //
    7, 6, 8, 13, 11, 9, 7, 15, 7, 12, 15, 9, 11, 7, 13, 12, //
    11, 13, 6, 7, 14, 9, 13, 15, 14, 8, 13, 6, 5, 12, 7, 5, //
    11, 12, 14, 15, 14, 15, 9, 8, 9, 14, 5, 6, 8, 6, 5, 12, //
    9, 15, 5, 11, 6, 8, 13, 12, 5, 12, 13, 14, 11, 8, 5, 6,
];

/// Left-rotation amounts for the right line.
const S_RIGHT: [u32; 80] = [
    8, 9, 9, 11, 13, 15, 15, 5, 7, 7, 8, 11, 14, 14, 12, 6, //
    9, 13, 15, 7, 12, 8, 9, 11, 7, 7, 12, 7, 6, 15, 13, 11, //
    9, 7, 15, 11, 8, 6, 6, 14, 12, 13, 5, 14, 13, 13, 7, 5, //
    15, 5, 8, 11, 14, 14, 6, 14, 6, 9, 12, 9, 12, 5, 15, 8, //
    8, 5, 12, 9, 12, 5, 14, 6, 8, 13, 6, 5, 15, 13, 11, 11,
];

/// Round constants for the left line (one per 16-step round).
const K_LEFT: [u32; 5] = [0x00000000, 0x5a827999, 0x6ed9eba1, 0x8f1bbcdc, 0xa953fd4e];

/// Round constants for the right line.
const K_RIGHT: [u32; 5] = [0x50a28be6, 0x5c4dd124, 0x6d703ef3, 0x7a6d76e9, 0x00000000];

/// The five boolean step functions; `j` is the step index 0..80.
#[inline]
fn f(j: usize, x: u32, y: u32, z: u32) -> u32 {
    match j / 16 {
        0 => x ^ y ^ z,
        1 => (x & y) | (!x & z),
        2 => (x | !y) ^ z,
        3 => (x & z) | (y & !z),
        _ => x ^ (y | !z),
    }
}

/// One compression step; returns the new (a..e) tuple.
#[inline]
#[allow(clippy::too_many_arguments)]
fn step(
    a: u32,
    b: u32,
    c: u32,
    d: u32,
    e: u32,
    x: u32,
    k: u32,
    s: u32,
    fj: u32,
) -> (u32, u32, u32, u32, u32) {
    let t = a
        .wrapping_add(fj)
        .wrapping_add(x)
        .wrapping_add(k)
        .rotate_left(s)
        .wrapping_add(e);
    (e, t, b, c.rotate_left(10), d)
}

fn compress(state: &mut [u32; 5], block: &[u8; 64]) {
    let mut x = [0u32; 16];
    for (i, word) in x.iter_mut().enumerate() {
        *word = u32::from_le_bytes([
            block[i * 4],
            block[i * 4 + 1],
            block[i * 4 + 2],
            block[i * 4 + 3],
        ]);
    }

    let (mut al, mut bl, mut cl, mut dl, mut el) =
        (state[0], state[1], state[2], state[3], state[4]);
    let (mut ar, mut br, mut cr, mut dr, mut er) =
        (state[0], state[1], state[2], state[3], state[4]);

    for j in 0..80 {
        let round = j / 16;
        let (na, nb, nc, nd, ne) = step(
            al,
            bl,
            cl,
            dl,
            el,
            x[R_LEFT[j]],
            K_LEFT[round],
            S_LEFT[j],
            f(j, bl, cl, dl),
        );
        al = na;
        let t = nb; // keep names readable: t is the freshly computed word
        bl = t;
        cl = nc;
        dl = nd;
        el = ne;

        // The right line runs the step functions in reverse order.
        let (na, nb, nc, nd, ne) = step(
            ar,
            br,
            cr,
            dr,
            er,
            x[R_RIGHT[j]],
            K_RIGHT[round],
            S_RIGHT[j],
            f(79 - j, br, cr, dr),
        );
        ar = na;
        br = nb;
        cr = nc;
        dr = nd;
        er = ne;
    }

    let t = state[1].wrapping_add(cl).wrapping_add(dr);
    state[1] = state[2].wrapping_add(dl).wrapping_add(er);
    state[2] = state[3].wrapping_add(el).wrapping_add(ar);
    state[3] = state[4].wrapping_add(al).wrapping_add(br);
    state[4] = state[0].wrapping_add(bl).wrapping_add(cr);
    state[0] = t;
}

/// One-shot RIPEMD-160.
pub fn ripemd160(data: &[u8]) -> [u8; 20] {
    let mut state: [u32; 5] = [0x67452301, 0xefcdab89, 0x98badcfe, 0x10325476, 0xc3d2e1f0];

    let mut blocks = data.chunks_exact(64);
    for block in &mut blocks {
        let mut b = [0u8; 64];
        b.copy_from_slice(block);
        compress(&mut state, &b);
    }

    // MD-style padding with a little-endian 64-bit bit count.
    let rem = blocks.remainder();
    let bit_len = (data.len() as u64).wrapping_mul(8);
    let mut tail = [0u8; 128];
    tail[..rem.len()].copy_from_slice(rem);
    tail[rem.len()] = 0x80;
    let tail_blocks = if rem.len() < 56 { 1 } else { 2 };
    tail[tail_blocks * 64 - 8..tail_blocks * 64].copy_from_slice(&bit_len.to_le_bytes());
    for i in 0..tail_blocks {
        let mut b = [0u8; 64];
        b.copy_from_slice(&tail[i * 64..(i + 1) * 64]);
        compress(&mut state, &b);
    }

    let mut out = [0u8; 20];
    for (i, word) in state.iter().enumerate() {
        out[i * 4..i * 4 + 4].copy_from_slice(&word.to_le_bytes());
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hex(bytes: &[u8]) -> String {
        bytes.iter().map(|b| format!("{b:02x}")).collect()
    }

    #[test]
    fn empty_vector() {
        assert_eq!(hex(&ripemd160(b"")), "9c1185a5c5e9fc54612808977ee8f548b2258d31");
    }

    #[test]
    fn single_a_vector() {
        assert_eq!(hex(&ripemd160(b"a")), "0bdc9d2d256b3ee9daae347be6f4dc835a467ffe");
    }

    #[test]
    fn abc_vector() {
        assert_eq!(hex(&ripemd160(b"abc")), "8eb208f7e05d987a9b044a8e98c6b087f15a0bfc");
    }

    #[test]
    fn message_digest_vector() {
        assert_eq!(
            hex(&ripemd160(b"message digest")),
            "5d0689ef49d2fae572b881b123a85ffa21595f36"
        );
    }

    #[test]
    fn alphabet_vector() {
        assert_eq!(
            hex(&ripemd160(b"abcdefghijklmnopqrstuvwxyz")),
            "f71c27109c692c1b56bbdceb5b9d2865b3708dbc"
        );
    }

    #[test]
    fn long_alnum_vector() {
        assert_eq!(
            hex(&ripemd160(
                b"ABCDEFGHIJKLMNOPQRSTUVWXYZabcdefghijklmnopqrstuvwxyz0123456789"
            )),
            "b0e20b6e3116640286ed3a87a5713079b21f5189"
        );
    }

    #[test]
    fn million_a_vector() {
        let msg = vec![b'a'; 1_000_000];
        assert_eq!(hex(&ripemd160(&msg)), "52783243c1697bdbe16d37f97f68f08325dc1528");
    }

    #[test]
    fn padding_boundaries() {
        // 55, 56 and 64 byte messages exercise the one- vs two-block padding
        // paths; just check they do not panic and produce distinct digests.
        let d55 = ripemd160(&[7u8; 55]);
        let d56 = ripemd160(&[7u8; 56]);
        let d64 = ripemd160(&[7u8; 64]);
        assert_ne!(d55, d56);
        assert_ne!(d56, d64);
    }
}

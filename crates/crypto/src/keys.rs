//! Key pairs and pay-to-pubkey-hash address derivation.
//!
//! Keys are derived deterministically from 64-bit seeds so that every actor
//! in the simulated economy is reproducible. The address payload is
//! `hash160(compressed pubkey)` encoded with Base58Check version `0x00`,
//! exactly as Bitcoin mainnet does.

use crate::base58;
use crate::hash::{Hash160, Hash256};
use crate::scalar::Scalar;
use crate::secp256k1::{self, Affine, Signature};
use crate::sha256::{hash160, sha256};

/// The Base58Check version byte for pay-to-pubkey-hash addresses.
pub const ADDRESS_VERSION: u8 = 0x00;

/// A secp256k1 public key.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct PublicKey(pub Affine);

impl PublicKey {
    /// The 20-byte address payload: `hash160(compressed encoding)`.
    pub fn address_hash(&self) -> Hash160 {
        hash160(&self.0.encode_compressed())
    }

    /// The human-readable Base58Check address.
    pub fn address_string(&self) -> String {
        base58::check_encode(ADDRESS_VERSION, &self.address_hash().0)
    }

    /// Verifies a signature over a 32-byte message hash.
    pub fn verify(&self, msg_hash: &Hash256, sig: &Signature) -> bool {
        secp256k1::verify(&self.0, msg_hash.as_bytes(), sig)
    }

    /// Compressed SEC1 encoding.
    pub fn to_bytes(&self) -> [u8; 33] {
        self.0.encode_compressed()
    }
}

/// A private/public key pair.
#[derive(Clone, Copy, Debug)]
pub struct KeyPair {
    secret: Scalar,
    public: PublicKey,
}

impl KeyPair {
    /// Derives a key pair deterministically from a 64-bit seed.
    ///
    /// The secret is `sha256("fistful-key" || seed)` reduced mod n, with a
    /// deterministic nudge in the (cryptographically unreachable) zero case.
    pub fn from_seed(seed: u64) -> KeyPair {
        let mut preimage = Vec::with_capacity(19);
        preimage.extend_from_slice(b"fistful-key");
        preimage.extend_from_slice(&seed.to_be_bytes());
        let digest = sha256(&preimage);
        let mut secret = Scalar::from_be_bytes(&digest);
        if secret.is_zero() {
            secret = Scalar::ONE;
        }
        Self::from_secret(secret)
    }

    /// Builds a key pair from an explicit secret scalar. Panics on zero.
    pub fn from_secret(secret: Scalar) -> KeyPair {
        assert!(!secret.is_zero(), "zero private key");
        let public = PublicKey(secp256k1::mul(&secp256k1::generator(), &secret));
        KeyPair { secret, public }
    }

    /// The public half.
    pub fn public(&self) -> &PublicKey {
        &self.public
    }

    /// Signs a 32-byte message hash.
    pub fn sign(&self, msg_hash: &Hash256) -> Signature {
        secp256k1::sign(&self.secret, msg_hash.as_bytes())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sha256::sha256d;

    #[test]
    fn seed_determinism() {
        let a = KeyPair::from_seed(42);
        let b = KeyPair::from_seed(42);
        assert_eq!(a.public(), b.public());
        let c = KeyPair::from_seed(43);
        assert_ne!(a.public(), c.public());
    }

    #[test]
    fn address_round_trip() {
        let kp = KeyPair::from_seed(7);
        let addr = kp.public().address_string();
        let (version, payload) = base58::check_decode(&addr).unwrap();
        assert_eq!(version, ADDRESS_VERSION);
        assert_eq!(payload, kp.public().address_hash().0.to_vec());
        assert!(addr.starts_with('1'));
    }

    #[test]
    fn sign_and_verify() {
        let kp = KeyPair::from_seed(1234);
        let msg = sha256d(b"pay to the order of");
        let sig = kp.sign(&msg);
        assert!(kp.public().verify(&msg, &sig));
        let other = sha256d(b"different message");
        assert!(!kp.public().verify(&other, &sig));
    }

    #[test]
    fn distinct_seeds_distinct_addresses() {
        let mut seen = std::collections::HashSet::new();
        for seed in 0..50u64 {
            let kp = KeyPair::from_seed(seed);
            assert!(seen.insert(kp.public().address_hash()), "collision at {seed}");
        }
    }

    #[test]
    fn public_key_on_curve() {
        for seed in [0u64, 1, u64::MAX] {
            assert!(KeyPair::from_seed(seed).public().0.is_on_curve());
        }
    }
}

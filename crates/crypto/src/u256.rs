//! Fixed-width 256-bit unsigned integer arithmetic.
//!
//! [`U256`] is four little-endian `u64` limbs. It provides exactly the
//! operations the field and scalar arithmetic need: carrying add/sub,
//! widening multiply into a [`U512`], shifts, bit access, and a generic
//! 512-by-256-bit remainder used for scalar reduction.

use std::cmp::Ordering;
use std::fmt;

/// A 256-bit unsigned integer, little-endian limbs (`limbs[0]` least
/// significant).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct U256 {
    /// The four 64-bit limbs, least significant first.
    pub limbs: [u64; 4],
}

/// A 512-bit unsigned integer, the result of a widening 256×256 multiply.
#[derive(Clone, Copy, PartialEq, Eq, Default)]
pub struct U512 {
    /// The eight 64-bit limbs, least significant first.
    pub limbs: [u64; 8],
}

impl U256 {
    /// Zero.
    pub const ZERO: U256 = U256 { limbs: [0; 4] };
    /// One.
    pub const ONE: U256 = U256 { limbs: [1, 0, 0, 0] };

    /// Builds from a small value.
    pub const fn from_u64(v: u64) -> Self {
        U256 { limbs: [v, 0, 0, 0] }
    }

    /// Builds from 32 big-endian bytes.
    pub fn from_be_bytes(b: &[u8; 32]) -> Self {
        let mut limbs = [0u64; 4];
        for (i, limb) in limbs.iter_mut().enumerate() {
            let off = 32 - (i + 1) * 8;
            *limb = u64::from_be_bytes(b[off..off + 8].try_into().unwrap());
        }
        U256 { limbs }
    }

    /// Serializes to 32 big-endian bytes.
    pub fn to_be_bytes(&self) -> [u8; 32] {
        let mut out = [0u8; 32];
        for i in 0..4 {
            let off = 32 - (i + 1) * 8;
            out[off..off + 8].copy_from_slice(&self.limbs[i].to_be_bytes());
        }
        out
    }

    /// Parses a hex string of up to 64 digits (no `0x` prefix).
    pub fn from_hex(s: &str) -> Option<Self> {
        if s.is_empty() || s.len() > 64 {
            return None;
        }
        let mut padded = String::with_capacity(64);
        for _ in 0..64 - s.len() {
            padded.push('0');
        }
        padded.push_str(s);
        let mut bytes = [0u8; 32];
        for (i, chunk) in padded.as_bytes().chunks(2).enumerate() {
            let hi = (chunk[0] as char).to_digit(16)?;
            let lo = (chunk[1] as char).to_digit(16)?;
            bytes[i] = ((hi << 4) | lo) as u8;
        }
        Some(Self::from_be_bytes(&bytes))
    }

    /// True if the value is zero.
    pub fn is_zero(&self) -> bool {
        self.limbs == [0; 4]
    }

    /// Returns bit `i` (0 = least significant).
    pub fn bit(&self, i: usize) -> bool {
        debug_assert!(i < 256);
        (self.limbs[i / 64] >> (i % 64)) & 1 == 1
    }

    /// Number of significant bits.
    pub fn bits(&self) -> usize {
        for i in (0..4).rev() {
            if self.limbs[i] != 0 {
                return i * 64 + (64 - self.limbs[i].leading_zeros() as usize);
            }
        }
        0
    }

    /// Wrapping addition, returning the carry.
    pub fn overflowing_add(&self, other: &U256) -> (U256, bool) {
        let mut out = [0u64; 4];
        let mut carry = false;
        for ((o, &a), &b) in out.iter_mut().zip(&self.limbs).zip(&other.limbs) {
            let (s1, c1) = a.overflowing_add(b);
            let (s2, c2) = s1.overflowing_add(carry as u64);
            *o = s2;
            carry = c1 | c2;
        }
        (U256 { limbs: out }, carry)
    }

    /// Wrapping subtraction, returning the borrow.
    pub fn overflowing_sub(&self, other: &U256) -> (U256, bool) {
        let mut out = [0u64; 4];
        let mut borrow = false;
        for ((o, &a), &b) in out.iter_mut().zip(&self.limbs).zip(&other.limbs) {
            let (d1, b1) = a.overflowing_sub(b);
            let (d2, b2) = d1.overflowing_sub(borrow as u64);
            *o = d2;
            borrow = b1 | b2;
        }
        (U256 { limbs: out }, borrow)
    }

    /// Widening multiplication producing a full 512-bit product.
    pub fn mul_wide(&self, other: &U256) -> U512 {
        let mut out = [0u64; 8];
        for i in 0..4 {
            let mut carry: u128 = 0;
            for j in 0..4 {
                let acc = out[i + j] as u128
                    + self.limbs[i] as u128 * other.limbs[j] as u128
                    + carry;
                out[i + j] = acc as u64;
                carry = acc >> 64;
            }
            // Propagate the final carry; it always fits because the running
            // total is bounded by the 512-bit product.
            let mut k = i + 4;
            while carry > 0 {
                let acc = out[k] as u128 + carry;
                out[k] = acc as u64;
                carry = acc >> 64;
                k += 1;
            }
        }
        U512 { limbs: out }
    }

    /// Multiplies by a single 64-bit limb, producing 5 limbs
    /// `(low 4, high overflow)`.
    pub fn mul_u64(&self, m: u64) -> (U256, u64) {
        let mut out = [0u64; 4];
        let mut carry: u128 = 0;
        for (o, &a) in out.iter_mut().zip(&self.limbs) {
            let acc = a as u128 * m as u128 + carry;
            *o = acc as u64;
            carry = acc >> 64;
        }
        (U256 { limbs: out }, carry as u64)
    }
}

impl U512 {
    /// Splits into `(low 256 bits, high 256 bits)`.
    pub fn split(&self) -> (U256, U256) {
        (
            U256 { limbs: [self.limbs[0], self.limbs[1], self.limbs[2], self.limbs[3]] },
            U256 { limbs: [self.limbs[4], self.limbs[5], self.limbs[6], self.limbs[7]] },
        )
    }

    /// Returns bit `i` (0 = least significant).
    pub fn bit(&self, i: usize) -> bool {
        debug_assert!(i < 512);
        (self.limbs[i / 64] >> (i % 64)) & 1 == 1
    }

    /// Generic remainder modulo a 256-bit divisor, by binary long division.
    ///
    /// This is the slow-but-obviously-correct path: the field arithmetic uses
    /// a specialised reduction instead, and the property tests compare the
    /// two. Panics if `divisor` is zero.
    pub fn rem(&self, divisor: &U256) -> U256 {
        assert!(!divisor.is_zero(), "division by zero");
        // Remainder as 5 limbs so the pre-reduction shift cannot overflow.
        let mut r = [0u64; 5];
        let d = [
            divisor.limbs[0],
            divisor.limbs[1],
            divisor.limbs[2],
            divisor.limbs[3],
            0u64,
        ];
        for i in (0..512).rev() {
            // r <<= 1
            for k in (1..5).rev() {
                r[k] = (r[k] << 1) | (r[k - 1] >> 63);
            }
            r[0] <<= 1;
            if self.bit(i) {
                r[0] |= 1;
            }
            // if r >= d { r -= d }
            if ge5(&r, &d) {
                sub5(&mut r, &d);
            }
        }
        debug_assert_eq!(r[4], 0);
        U256 { limbs: [r[0], r[1], r[2], r[3]] }
    }
}

fn ge5(a: &[u64; 5], b: &[u64; 5]) -> bool {
    for i in (0..5).rev() {
        if a[i] != b[i] {
            return a[i] > b[i];
        }
    }
    true
}

fn sub5(a: &mut [u64; 5], b: &[u64; 5]) {
    let mut borrow = false;
    for i in 0..5 {
        let (d1, b1) = a[i].overflowing_sub(b[i]);
        let (d2, b2) = d1.overflowing_sub(borrow as u64);
        a[i] = d2;
        borrow = b1 | b2;
    }
    debug_assert!(!borrow);
}

impl Ord for U256 {
    fn cmp(&self, other: &Self) -> Ordering {
        for i in (0..4).rev() {
            match self.limbs[i].cmp(&other.limbs[i]) {
                Ordering::Equal => continue,
                ord => return ord,
            }
        }
        Ordering::Equal
    }
}

impl PartialOrd for U256 {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl fmt::Debug for U256 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "U256(0x")?;
        for b in self.to_be_bytes() {
            write!(f, "{b:02x}")?;
        }
        write!(f, ")")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn be_bytes_round_trip() {
        let mut b = [0u8; 32];
        for (i, byte) in b.iter_mut().enumerate() {
            *byte = i as u8;
        }
        let x = U256::from_be_bytes(&b);
        assert_eq!(x.to_be_bytes(), b);
    }

    #[test]
    fn hex_parsing() {
        let x = U256::from_hex("ff").unwrap();
        assert_eq!(x, U256::from_u64(0xff));
        let y = U256::from_hex("10000000000000000").unwrap(); // 2^64
        assert_eq!(y.limbs, [0, 1, 0, 0]);
        assert!(U256::from_hex("").is_none());
        assert!(U256::from_hex(&"f".repeat(65)).is_none());
    }

    #[test]
    fn add_carry_chain() {
        let max = U256 { limbs: [u64::MAX; 4] };
        let (sum, carry) = max.overflowing_add(&U256::ONE);
        assert!(carry);
        assert_eq!(sum, U256::ZERO);
    }

    #[test]
    fn sub_borrow_chain() {
        let (diff, borrow) = U256::ZERO.overflowing_sub(&U256::ONE);
        assert!(borrow);
        assert_eq!(diff, U256 { limbs: [u64::MAX; 4] });
    }

    #[test]
    fn mul_wide_small() {
        let a = U256::from_u64(0xffff_ffff_ffff_ffff);
        let p = a.mul_wide(&a);
        // (2^64-1)^2 = 2^128 - 2^65 + 1
        assert_eq!(p.limbs[0], 1);
        assert_eq!(p.limbs[1], 0xffff_ffff_ffff_fffe);
        assert_eq!(p.limbs[2..8], [0; 6]);
    }

    #[test]
    fn mul_wide_max() {
        let max = U256 { limbs: [u64::MAX; 4] };
        let p = max.mul_wide(&max);
        // (2^256-1)^2 = 2^512 - 2^257 + 1
        assert_eq!(p.limbs[0], 1);
        assert_eq!(p.limbs[1..4], [0; 3]);
        assert_eq!(p.limbs[4], 0xffff_ffff_ffff_fffe);
        assert_eq!(p.limbs[5..8], [u64::MAX; 3]);
    }

    #[test]
    fn rem_small_cases() {
        let a = U256::from_u64(100).mul_wide(&U256::ONE);
        assert_eq!(a.rem(&U256::from_u64(7)), U256::from_u64(2));
        assert_eq!(a.rem(&U256::from_u64(100)), U256::ZERO);
        assert_eq!(a.rem(&U256::from_u64(101)), U256::from_u64(100));
    }

    #[test]
    fn rem_matches_u128_arithmetic() {
        // Cross-check the binary division against native u128 math.
        let cases: [(u128, u128); 4] = [
            (0xdead_beef_dead_beef_dead_beef, 0x1234_5678_9abc),
            (u128::MAX, 0xffff_ffff_ffff_fffe),
            (12345678901234567890, 97),
            (1 << 100, (1 << 50) - 1),
        ];
        for (a, m) in cases {
            let a256 = U256 { limbs: [a as u64, (a >> 64) as u64, 0, 0] };
            let m256 = U256 { limbs: [m as u64, (m >> 64) as u64, 0, 0] };
            let wide = a256.mul_wide(&U256::ONE);
            let want = a % m;
            let got = wide.rem(&m256);
            assert_eq!(got.limbs[0] as u128 | ((got.limbs[1] as u128) << 64), want);
        }
    }

    #[test]
    fn bits_and_bit_access() {
        assert_eq!(U256::ZERO.bits(), 0);
        assert_eq!(U256::ONE.bits(), 1);
        let x = U256::from_hex("8000000000000000000000000000000000000000000000000000000000000000")
            .unwrap();
        assert_eq!(x.bits(), 256);
        assert!(x.bit(255));
        assert!(!x.bit(0));
    }

    #[test]
    fn mul_u64_overflow_limb() {
        let max = U256 { limbs: [u64::MAX; 4] };
        let (lo, hi) = max.mul_u64(2);
        assert_eq!(hi, 1);
        assert_eq!(lo.limbs, [u64::MAX - 1, u64::MAX, u64::MAX, u64::MAX]);
    }

    #[test]
    fn ordering() {
        let a = U256::from_hex("0100000000000000000000000000000000").unwrap();
        let b = U256::from_hex("ff00000000000000000000000000000000").unwrap();
        assert!(a < b);
        assert!(b > a);
        assert_eq!(a.cmp(&a), Ordering::Equal);
    }
}

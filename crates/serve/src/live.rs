//! Live ingest: a background pipeline that feeds new blocks through the
//! sharded clustering engine and hot-swaps fresh artifacts into a running
//! [`Server`](crate::server::Server).
//!
//! # Pipeline
//!
//! [`LivePipeline`] wraps a [`ShardedIngest`] plus the three derived
//! artifacts the server needs next to the snapshot (transaction graph,
//! change labels, balance series). [`LivePipeline::bootstrap`] builds the
//! initial bundle — from disk when the store directory holds a live save
//! (see below), otherwise by ingesting the configured warm-up prefix —
//! and the caller starts the server on it. [`LivePipeline::run`] (or its
//! background form, [`LivePipeline::spawn`]) then streams the remaining
//! blocks:
//!
//! ```text
//!   ingest thread                        worker pool
//!   ─────────────                        ───────────
//!   ingest_block ──┐
//!   ingest_block   ├─ epoch reconcile ─▶ Publisher::publish ──▶ Arc swap
//!   ingest_block ──┘    │                                       (workers
//!        ...            ├─ export_delta → snapshot + delta       pin the
//!                       ├─ TxGraph::extend_to (O(new blocks))    old Arc
//!                       ├─ balance_series_at                     per
//!                       └─ delta + meta appended to disk         request)
//! ```
//!
//! Each publish increments the **publish epoch** — a sequence number, not
//! the engine's epoch counter, because a terminal
//! [`flush`](ShardedIngest::flush) can resolve pending wait-to-label
//! decisions (changing taint answers) without advancing the reconciled
//! transaction watermark; such a publish must still raise the cache's
//! graph floor. The snapshot floor is left in place when the delta shows
//! the epoch was purely additive — no existing address reassigned, no
//! existing cluster's aggregates touched — so still-valid cached
//! `AddressInfo`/`ClusterSummary` entries survive non-merging epochs.
//!
//! # Persistence and resume
//!
//! With a store directory configured, the bootstrap writes a full base
//! save and every publish appends the epoch's [`SnapshotDelta`] file plus
//! a refreshed `graph.fst`/`serve.fst` carrying a [`LiveMeta`] watermark.
//! A restarted pipeline pointed at the same directory folds base + deltas
//! back ([`ServeArtifacts::open_dir`]), replays exactly the recorded
//! block prefix to rebuild its in-memory engine, and cross-checks the
//! replayed export against the disk snapshot byte-for-byte — resuming at
//! the recorded epoch on success and silently falling back to a fresh
//! build on any mismatch (a different chain, a truncated file, a stale
//! layout).
//!
//! [`SnapshotDelta`]: fistful_core::snapshot::SnapshotDelta

use crate::protocol::ServeError;
use crate::server::{Publisher, ServeArtifacts};
use crate::store::{delta_file_name, delta_files, read_live_meta, LiveMeta, SERVE_FILE};
use fistful_chain::resolve::{BlockId, ResolvedChain};
use fistful_core::change::ChangeConfig;
use fistful_core::incremental::sharded::{IngestConfig, ShardedIngest};
use fistful_core::snapshot::ClusterSnapshot;
use fistful_core::tagdb::TagDb;
use fistful_flow::balance_series_at;
use fistful_flow::graph::TxGraph;
use fistful_store::{StoreError, StoreWriter};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread;
use std::time::{Duration, Instant};

/// Persistence failures surface as serve-level I/O errors.
fn store_err(e: StoreError) -> ServeError {
    ServeError::Io(format!("artifact store: {e}"))
}

/// Configuration of a live ingest pipeline.
#[derive(Debug, Clone)]
pub struct LiveConfig {
    /// Address shards (and scan threads) of the underlying
    /// [`ShardedIngest`]. Must be `>= 1`.
    pub shards: usize,
    /// Blocks per reconcile epoch. Must be `>= 1`.
    pub epoch_blocks: usize,
    /// Blocks ingested synchronously by [`LivePipeline::bootstrap`]
    /// before the server starts — the warm-up prefix. The rest stream in
    /// from the background thread.
    pub start_blocks: usize,
    /// Balance-series sampling interval in blocks.
    pub balance_every: u64,
    /// Heuristic 2 configuration. Live serving always runs H2: taint
    /// traces need change labels.
    pub change: ChangeConfig,
    /// Store directory for the base save + per-epoch deltas; `None`
    /// serves from RAM only (no resume after restart).
    pub store_dir: Option<PathBuf>,
    /// Artificial pause after each ingested block — lets tests and demos
    /// pace the stream; `Duration::ZERO` ingests flat out.
    pub block_delay: Duration,
}

impl LiveConfig {
    /// A pipeline configuration with serving-oriented defaults (4 shards,
    /// 16-block epochs, no warm-up prefix, per-block balance samples, no
    /// persistence, no pacing).
    pub fn new(change: ChangeConfig) -> LiveConfig {
        LiveConfig {
            shards: 4,
            epoch_blocks: 16,
            start_blocks: 0,
            balance_every: 1,
            change,
            store_dir: None,
            block_delay: Duration::ZERO,
        }
    }
}

/// What a completed (or stopped) live run did.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LiveReport {
    /// The last published epoch.
    pub final_epoch: u64,
    /// Publishes performed by [`LivePipeline::run`] (excluding the
    /// bootstrap bundle the server was started on).
    pub publishes: u64,
    /// Total blocks ingested over the pipeline's lifetime, including the
    /// warm-up prefix and any resumed-from-disk prefix.
    pub blocks_ingested: u64,
    /// Whether the run reached the end of the chain and terminally
    /// flushed (false when stopped early).
    pub flushed: bool,
}

/// The live ingest pipeline: chain in, published artifact generations
/// out.
///
/// Construct with [`LivePipeline::new`], obtain the initial bundle with
/// [`LivePipeline::bootstrap`], start a server on it, then hand the
/// pipeline the server's [`Publisher`] via [`LivePipeline::run`] (same
/// thread) or [`LivePipeline::spawn`] (background thread +
/// [`LiveHandle`]).
pub struct LivePipeline {
    chain: Arc<ResolvedChain>,
    db: TagDb,
    config: LiveConfig,
    pipe: ShardedIngest,
    graph: TxGraph,
    base: ClusterSnapshot,
    current: Option<Arc<ServeArtifacts>>,
    blocks_fed: usize,
    epoch: u64,
    delta_seq: usize,
    publishes: u64,
    last_cut: usize,
}

impl LivePipeline {
    /// A pipeline over `chain` (which may keep growing behind the `Arc`
    /// is not supported — the pipeline reads a fixed chain; re-run to
    /// pick up appended blocks) with tag database `db` for cluster
    /// naming.
    pub fn new(chain: Arc<ResolvedChain>, db: TagDb, config: LiveConfig) -> LivePipeline {
        let ingest =
            IngestConfig::with_h2(config.shards, config.epoch_blocks, config.change.clone());
        LivePipeline {
            pipe: ShardedIngest::new(ingest),
            graph: TxGraph::build_at(&chain, 0),
            base: ClusterSnapshot::default(),
            current: None,
            blocks_fed: 0,
            epoch: 0,
            delta_seq: 1,
            publishes: 0,
            last_cut: 0,
            chain,
            db,
            config,
        }
    }

    /// The current publish epoch (`0` until a resume or the first
    /// publish).
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Blocks ingested so far (warm-up + resumed + streamed).
    pub fn blocks_fed(&self) -> usize {
        self.blocks_fed
    }

    /// Builds the initial artifact bundle the server should be started
    /// on.
    ///
    /// When a store directory is configured and holds a live save for
    /// this chain, the bundle is reopened from disk and the ingest engine
    /// rebuilt by replaying the recorded prefix — the pipeline resumes at
    /// the recorded epoch. Otherwise the configured warm-up prefix is
    /// ingested and exported fresh (and, with a store directory, written
    /// as the new base save).
    pub fn bootstrap(&mut self) -> Result<Arc<ServeArtifacts>, ServeError> {
        if let Some(resumed) = self.try_resume()? {
            return Ok(resumed);
        }
        let chain = Arc::clone(&self.chain);
        let take = self.config.start_blocks.min(chain.block_count());
        for i in 0..take {
            self.pipe.ingest_block(&chain.block(i as BlockId));
        }
        self.blocks_fed = take;
        let artifacts = self.build_current()?;
        if let Some(dir) = self.config.store_dir.clone() {
            artifacts.save_dir_live(&dir, &self.meta(false)).map_err(store_err)?;
            self.delta_seq = 1;
        }
        Ok(artifacts)
    }

    /// Attempts the resume-from-disk path; `Ok(None)` means "no usable
    /// live save — build fresh" (and leaves the pipeline reset).
    fn try_resume(&mut self) -> Result<Option<Arc<ServeArtifacts>>, ServeError> {
        let Some(dir) = self.config.store_dir.clone() else { return Ok(None) };
        if !dir.join(SERVE_FILE).exists() {
            return Ok(None);
        }
        // A batch save (no meta) or an unreadable bundle both mean a
        // fresh build, not a startup failure.
        let Some(meta) = read_live_meta(&dir).ok().flatten() else { return Ok(None) };
        let Ok(disk) = ServeArtifacts::open_dir(&dir) else { return Ok(None) };
        if meta.block_count as usize > self.chain.block_count() {
            return Ok(None);
        }
        for i in 0..meta.block_count as usize {
            self.pipe.ingest_block(&self.chain.block(i as BlockId));
        }
        if meta.flushed {
            self.pipe.flush(&self.chain);
        }
        // The replayed engine must land exactly where the disk bundle
        // says it did; the folded base+delta snapshot must equal a fresh
        // export. Anything else means the save belongs to another chain
        // or config.
        if u64::from(self.pipe.reconciled_txs()) != meta.tx_count
            || disk.graph.tx_count() as u64 != meta.tx_count
            || self.pipe.export_snapshot(&self.chain, &self.db) != disk.snapshot
        {
            self.reset_engine();
            return Ok(None);
        }
        self.blocks_fed = meta.block_count as usize;
        self.epoch = meta.epoch;
        self.delta_seq = delta_files(&dir).map_err(store_err)?.len() + 1;
        self.base = disk.snapshot.clone();
        self.graph = disk.graph.clone();
        self.last_cut = meta.tx_count as usize;
        let artifacts = Arc::new(disk);
        self.current = Some(Arc::clone(&artifacts));
        Ok(Some(artifacts))
    }

    /// Discards a partially-replayed engine after a failed resume.
    fn reset_engine(&mut self) {
        self.pipe = ShardedIngest::new(IngestConfig::with_h2(
            self.config.shards,
            self.config.epoch_blocks,
            self.config.change.clone(),
        ));
        self.blocks_fed = 0;
    }

    /// Exports the full bundle at the current reconciled cut (the
    /// bootstrap path — per-epoch publishes go through the delta path
    /// instead).
    fn build_current(&mut self) -> Result<Arc<ServeArtifacts>, ServeError> {
        let cut = self.pipe.reconciled_txs() as usize;
        let snapshot = self.pipe.export_snapshot(&self.chain, &self.db);
        let labels =
            self.pipe.change_labels().expect("live ingest always runs Heuristic 2").clone();
        self.graph = TxGraph::build_at(&self.chain, cut);
        let balances = balance_series_at(&self.chain, cut, &snapshot, self.config.balance_every);
        let artifacts =
            Arc::new(ServeArtifacts::new(snapshot.clone(), self.graph.clone(), labels, balances)?);
        self.base = snapshot;
        self.last_cut = cut;
        self.current = Some(Arc::clone(&artifacts));
        Ok(artifacts)
    }

    /// The resume watermark describing the pipeline's present state.
    fn meta(&self, flushed: bool) -> LiveMeta {
        LiveMeta {
            epoch: self.epoch,
            tx_count: u64::from(self.pipe.reconciled_txs()),
            block_count: self.blocks_fed as u64,
            flushed,
        }
    }

    /// Builds and publishes one fresh artifact generation at the current
    /// reconciled cut: snapshot via delta export, graph extended in
    /// place, labels cloned, balances rebuilt over the prefix; the delta
    /// and refreshed meta are appended to the store directory before the
    /// swap so a crash right after the publish still resumes here.
    fn publish_epoch(&mut self, publisher: &Publisher, flushed: bool) -> Result<(), ServeError> {
        let swap_started = Instant::now();
        let cut = self.pipe.reconciled_txs() as usize;
        let (snapshot, delta) = self.pipe.export_delta(&self.chain, &self.db, &self.base);
        // Purely additive epoch? Then every cached Some-bodied snapshot
        // answer is still byte-exact and may outlive the swap.
        let ids_stable = delta.assign.iter().all(|&(a, _)| (a as usize) >= self.base.address_count())
            && delta.clusters.iter().all(|(c, _)| self.base.info(*c).is_none());
        self.graph.extend_to(&self.chain, cut);
        let labels =
            self.pipe.change_labels().expect("live ingest always runs Heuristic 2").clone();
        let balances = balance_series_at(&self.chain, cut, &snapshot, self.config.balance_every);
        let artifacts =
            Arc::new(ServeArtifacts::new(snapshot.clone(), self.graph.clone(), labels, balances)?);
        self.epoch += 1;
        if let Some(dir) = self.config.store_dir.clone() {
            if !delta.is_empty() {
                let mut w = StoreWriter::new();
                delta.write_store(&mut w);
                w.write_to(&dir.join(delta_file_name(self.delta_seq))).map_err(store_err)?;
                self.delta_seq += 1;
            }
            artifacts.write_graph_file(&dir).map_err(store_err)?;
            artifacts.write_serve_file(&dir, Some(&self.meta(flushed))).map_err(store_err)?;
        }
        publisher.publish(Arc::clone(&artifacts), self.epoch, ids_stable);
        // The swap latency covers the whole rebuild — delta export, graph
        // extension, balance rebuild, store append — not just the pointer
        // swap, because that is the freshness lag a scraper cares about.
        publisher.core.metrics.swap_latency.observe(swap_started.elapsed());
        self.publishes += 1;
        self.base = snapshot;
        self.last_cut = cut;
        self.current = Some(artifacts);
        Ok(())
    }

    /// Streams the rest of the chain into the engine, publishing at every
    /// reconcile, then terminally flushes and publishes the final
    /// generation. Blocks the calling thread until the chain is exhausted
    /// or `stop` is raised; the server (whose [`Publisher`] is passed in,
    /// and which must have been started on [`bootstrap`]'s bundle) keeps
    /// answering throughout.
    ///
    /// [`bootstrap`]: LivePipeline::bootstrap
    pub fn run(self, publisher: &Publisher, stop: &AtomicBool) -> Result<LiveReport, ServeError> {
        let observed = AtomicU64::new(0);
        self.run_observed(publisher, stop, &observed)
    }

    fn run_observed(
        mut self,
        publisher: &Publisher,
        stop: &AtomicBool,
        observed: &AtomicU64,
    ) -> Result<LiveReport, ServeError> {
        if self.current.is_none() {
            self.bootstrap()?;
        }
        // A resumed pipeline starts above the server's epoch-0 initial
        // publication: stamp the resumed epoch before serving continues.
        // The artifacts are the ones the server was started on, so the
        // snapshot floor may stay.
        if self.epoch > publisher.current_epoch() {
            let current = Arc::clone(self.current.as_ref().expect("bootstrapped"));
            publisher.publish(current, self.epoch, true);
            self.publishes += 1;
        }
        observed.store(self.epoch, Ordering::Relaxed);
        let chain = Arc::clone(&self.chain);
        let mut flushed = false;
        while self.blocks_fed < chain.block_count() {
            if stop.load(Ordering::Relaxed) {
                break;
            }
            let next = self.blocks_fed;
            self.pipe.ingest_block(&chain.block(next as BlockId));
            self.blocks_fed += 1;
            publisher.core.metrics.ingest_blocks.inc();
            if self.pipe.reconciled_txs() as usize != self.last_cut {
                self.publish_epoch(publisher, false)?;
                observed.store(self.epoch, Ordering::Relaxed);
            }
            if !self.config.block_delay.is_zero() {
                thread::sleep(self.config.block_delay);
            }
        }
        if !stop.load(Ordering::Relaxed) {
            self.pipe.flush(&chain);
            // Always publish after the flush even when the reconciled cut
            // did not move: resolving pending wait-to-label decisions can
            // relabel already-reconciled transactions, which must raise
            // the cache's graph floor.
            self.publish_epoch(publisher, true)?;
            observed.store(self.epoch, Ordering::Relaxed);
            flushed = true;
        }
        Ok(LiveReport {
            final_epoch: self.epoch,
            publishes: self.publishes,
            blocks_ingested: self.blocks_fed as u64,
            flushed,
        })
    }

    /// [`run`](LivePipeline::run) on a named background thread. The
    /// returned handle observes published epochs, can stop the stream,
    /// and joins for the report; dropping it stops and joins implicitly.
    pub fn spawn(self, publisher: Publisher) -> LiveHandle {
        let stop = Arc::new(AtomicBool::new(false));
        let epoch = Arc::new(AtomicU64::new(self.epoch));
        let thread_stop = Arc::clone(&stop);
        let thread_epoch = Arc::clone(&epoch);
        let thread = thread::Builder::new()
            .name("live-ingest".into())
            .spawn(move || self.run_observed(&publisher, &thread_stop, &thread_epoch))
            .expect("spawn live ingest thread");
        LiveHandle { stop, epoch, thread: Some(thread) }
    }
}

/// Handle to a background live ingest thread (see
/// [`LivePipeline::spawn`]).
pub struct LiveHandle {
    stop: Arc<AtomicBool>,
    epoch: Arc<AtomicU64>,
    thread: Option<thread::JoinHandle<Result<LiveReport, ServeError>>>,
}

impl LiveHandle {
    /// The epoch of the most recent publish (the value `Stats` responses
    /// report once workers pick the generation up).
    pub fn published_epoch(&self) -> u64 {
        self.epoch.load(Ordering::Relaxed)
    }

    /// Whether the ingest thread has finished (chain exhausted, stopped,
    /// or failed).
    pub fn is_finished(&self) -> bool {
        match &self.thread {
            Some(thread) => thread.is_finished(),
            None => true,
        }
    }

    /// Asks the ingest thread to stop after the block it is on. Safe to
    /// call any number of times; [`join`](LiveHandle::join) collects the
    /// report.
    pub fn stop(&self) {
        self.stop.store(true, Ordering::Relaxed);
    }

    /// Waits for the ingest thread and returns its report.
    pub fn join(mut self) -> Result<LiveReport, ServeError> {
        let thread = self.thread.take().expect("live handle already joined");
        thread.join().map_err(|_| ServeError::Io("live ingest thread panicked".into()))?
    }
}

impl Drop for LiveHandle {
    fn drop(&mut self) {
        self.stop.store(true, Ordering::Relaxed);
        if let Some(thread) = self.thread.take() {
            let _ = thread.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::server::{ServeConfig, Server};
    use fistful_core::cluster::Clusterer;
    use fistful_core::naming::name_clusters;
    use fistful_core::testutil::TestChain;
    use std::path::Path;

    /// A small multi-block economy: six coinbases, then a run of spends
    /// with co-spending (H1) and fresh change outputs (H2). One block per
    /// transaction, 12 blocks total.
    fn economy() -> TestChain {
        let mut t = TestChain::new();
        let cbs: Vec<usize> = (1..=6).map(|u| t.coinbase(u, 50)).collect();
        let a = t.tx(&[(cbs[0], 0), (cbs[1], 0)], &[(7, 60), (8, 40)]);
        let b = t.tx(&[(cbs[2], 0)], &[(9, 30), (10, 20)]);
        let c = t.tx(&[(a, 0), (b, 0)], &[(11, 70), (12, 20)]);
        t.tx(&[(cbs[3], 0), (cbs[4], 0)], &[(9, 90), (13, 10)]);
        t.tx(&[(c, 0)], &[(14, 35), (15, 35)]);
        t.tx(&[(cbs[5], 0)], &[(1, 25), (16, 25)]);
        t
    }

    fn config(store_dir: Option<&Path>) -> LiveConfig {
        LiveConfig {
            shards: 2,
            epoch_blocks: 3,
            start_blocks: 4,
            balance_every: 1,
            change: ChangeConfig::naive(),
            store_dir: store_dir.map(Path::to_path_buf),
            block_delay: Duration::ZERO,
        }
    }

    fn temp_dir(tag: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("fistful-live-{}-{}", tag, std::process::id()));
        if dir.exists() {
            std::fs::remove_dir_all(&dir).unwrap();
        }
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    /// The batch artifacts the pipeline must converge to.
    fn batch_snapshot(t: &TestChain) -> ClusterSnapshot {
        let clustering = Clusterer::with_h2(ChangeConfig::naive()).run(&t.chain);
        let names = name_clusters(&clustering, &TagDb::new());
        ClusterSnapshot::build(&t.chain, &clustering, &names)
    }

    #[test]
    fn bootstrap_exports_a_consistent_warm_up_prefix() {
        let t = economy();
        let mut live = LivePipeline::new(Arc::new(t.chain), TagDb::new(), config(None));
        let artifacts = live.bootstrap().unwrap();
        assert_eq!(live.epoch(), 0);
        assert_eq!(live.blocks_fed(), 4);
        // 4 blocks with a 3-block epoch: one reconcile, one buffered
        // block — the bundle covers exactly the reconciled 3-tx prefix.
        assert_eq!(artifacts.graph.tx_count(), 3);
        assert_eq!(artifacts.labels.vout_of.len(), 3);
    }

    #[test]
    fn run_converges_to_the_batch_clustering() {
        let t = economy();
        let expected = batch_snapshot(&t);
        let chain = Arc::new(t.chain);
        let mut live = LivePipeline::new(Arc::clone(&chain), TagDb::new(), config(None));
        let artifacts = live.bootstrap().unwrap();
        let server = Server::start(
            ServeConfig { workers: 1, cache_entries: 64, ..ServeConfig::default() },
            artifacts,
        )
        .unwrap();
        let publisher = server.publisher();
        let report = live.run(&publisher, &AtomicBool::new(false)).unwrap();
        assert!(report.flushed);
        assert!(report.publishes >= 2, "12 blocks / 3-block epochs must publish repeatedly");
        assert_eq!(publisher.current_epoch(), report.final_epoch);
        assert_eq!(report.blocks_ingested, chain.block_count() as u64);

        let stats = server.stats();
        assert_eq!(stats.epoch, report.final_epoch);
        assert_eq!(stats.tx_count, chain.tx_count() as u64);
        assert_eq!(stats.address_count, expected.address_count() as u64);
        assert_eq!(stats.cluster_count, expected.cluster_count() as u64);
        server.shutdown();
    }

    #[test]
    fn resume_restores_the_recorded_epoch_and_serves_identical_state() {
        let t = economy();
        let expected = batch_snapshot(&t);
        let chain = Arc::new(t.chain);
        let dir = temp_dir("resume");

        let mut live = LivePipeline::new(Arc::clone(&chain), TagDb::new(), config(Some(&dir)));
        let artifacts = live.bootstrap().unwrap();
        let server = Server::start(
            ServeConfig { workers: 1, cache_entries: 0, ..ServeConfig::default() },
            artifacts,
        )
        .unwrap();
        let report = live.run(&server.publisher(), &AtomicBool::new(false)).unwrap();
        server.shutdown();
        assert!(report.flushed);

        let meta = read_live_meta(&dir).unwrap().expect("live save carries meta");
        assert_eq!(meta.epoch, report.final_epoch);
        assert_eq!(meta.block_count, chain.block_count() as u64);
        assert!(meta.flushed);

        // A fresh pipeline over the same directory resumes instead of
        // rebuilding, at the recorded epoch, with the folded disk state
        // equal to the batch artifacts.
        let mut resumed = LivePipeline::new(Arc::clone(&chain), TagDb::new(), config(Some(&dir)));
        let restored = resumed.bootstrap().unwrap();
        assert_eq!(resumed.epoch(), report.final_epoch);
        assert_eq!(resumed.blocks_fed(), chain.block_count());
        assert_eq!(restored.snapshot, expected);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn resume_falls_back_to_fresh_when_the_save_is_for_another_chain() {
        let t = economy();
        let chain = Arc::new(t.chain);
        let dir = temp_dir("mismatch");

        let mut live = LivePipeline::new(Arc::clone(&chain), TagDb::new(), config(Some(&dir)));
        let artifacts = live.bootstrap().unwrap();
        let server = Server::start(
            ServeConfig { workers: 1, cache_entries: 0, ..ServeConfig::default() },
            artifacts,
        )
        .unwrap();
        live.run(&server.publisher(), &AtomicBool::new(false)).unwrap();
        server.shutdown();

        // A different (smaller) chain cannot satisfy the recorded
        // watermark: bootstrap must rebuild from scratch at epoch 0.
        let mut other = TestChain::new();
        other.coinbase(1, 50);
        other.coinbase(2, 50);
        let mut fresh =
            LivePipeline::new(Arc::new(other.chain), TagDb::new(), config(Some(&dir)));
        let rebuilt = fresh.bootstrap().unwrap();
        assert_eq!(fresh.epoch(), 0);
        assert_eq!(fresh.blocks_fed(), 2);
        assert_eq!(rebuilt.graph.tx_count(), 0, "2 blocks never reach a 3-block epoch");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn spawned_pipeline_swaps_under_a_running_server_and_stops_on_demand() {
        let t = economy();
        let chain = Arc::new(t.chain);
        let mut live = LivePipeline::new(Arc::clone(&chain), TagDb::new(), config(None));
        let artifacts = live.bootstrap().unwrap();
        let server = Server::start(
            ServeConfig { workers: 2, cache_entries: 64, ..ServeConfig::default() },
            artifacts,
        )
        .unwrap();
        let handle = live.spawn(server.publisher());
        let report = handle.join().unwrap();
        assert!(report.flushed);
        assert_eq!(server.stats().epoch, report.final_epoch);
        assert_eq!(server.stats().swaps, report.publishes);
        server.shutdown();
    }
}

//! Persisting and reopening the serving bundle: a store *directory* of
//! columnar container files, the `repro serve` fast-restart path.
//!
//! # Directory layout
//!
//! ```text
//! <dir>/
//!   chain.fst                 resolved chain columns (written by the CLI;
//!                             not needed to serve — queries never touch it)
//!   graph.fst                 TxGraph CSR arrays, segment per array
//!   snapshot.fst              base ClusterSnapshot
//!   snapshot.delta.000001.fst per-epoch delta containers, folded onto the
//!   snapshot.delta.000002.fst base in lexical (= epoch) order on open
//!   serve.fst                 change labels + balance series
//! ```
//!
//! [`ServeArtifacts::save_dir`] writes `graph.fst`, `snapshot.fst`, and
//! `serve.fst`; [`ServeArtifacts::open_dir`] reads them back — folding any
//! `snapshot.delta.*.fst` files present — runs every artifact's semantic
//! validation, and re-runs the [`ServeArtifacts::new`] pairing checks, so
//! a server restarted from disk serves answers **byte-identical** to one
//! built from the chain in RAM (asserted over a live socket in
//! `tests/store.rs`). Opening costs bulk segment reads, not a chain
//! replay: the chain file is deliberately not required.

use crate::protocol::ServeError;
use crate::server::ServeArtifacts;
use fistful_chain::encode::{Reader, Writer};
use fistful_core::change::ChangeLabels;
use fistful_core::snapshot::{ClusterSnapshot, SnapshotDelta};
use fistful_flow::graph::TxGraph;
use fistful_flow::BalancePoint;
use fistful_store::{Store, StoreError, StoreWriter};
use std::collections::BTreeMap;
use std::path::{Path, PathBuf};

/// File name of the resolved-chain container in a store directory.
pub const CHAIN_FILE: &str = "chain.fst";

/// File name of the transaction-graph container.
pub const GRAPH_FILE: &str = "graph.fst";

/// File name of the base snapshot container.
pub const SNAPSHOT_FILE: &str = "snapshot.fst";

/// File name of the labels + balances container.
pub const SERVE_FILE: &str = "serve.fst";

/// File name of the `n`-th per-epoch snapshot delta. Zero-padded so the
/// lexical order of a directory listing is the application order.
pub fn delta_file_name(n: usize) -> String {
    format!("snapshot.delta.{n:06}.fst")
}

/// The `snapshot.delta.*.fst` files in `dir`, sorted into application
/// order. Missing directory entries are an error; an empty list is not.
pub fn delta_files(dir: &Path) -> Result<Vec<PathBuf>, StoreError> {
    let mut deltas: Vec<PathBuf> = std::fs::read_dir(dir)?
        .collect::<Result<Vec<_>, _>>()?
        .into_iter()
        .map(|e| e.path())
        .filter(|p| {
            p.file_name()
                .and_then(|n| n.to_str())
                .is_some_and(|n| n.starts_with("snapshot.delta.") && n.ends_with(".fst"))
        })
        .collect();
    deltas.sort();
    Ok(deltas)
}

/// Live-ingest resume metadata, carried as an optional `serve/live_meta`
/// segment of `serve.fst`: the publish epoch, the reconciled transaction
/// watermark, and how many blocks had been ingested when the segment was
/// written — everything a restarted live server needs to rebuild its
/// ingest state by replaying exactly the already-published prefix (see
/// [`crate::live`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LiveMeta {
    /// Publish epoch of the artifacts on disk.
    pub epoch: u64,
    /// Reconciled transaction count the artifacts were built at.
    pub tx_count: u64,
    /// Blocks ingested when this state was persisted.
    pub block_count: u64,
    /// Whether the ingest had been terminally flushed (pending
    /// wait-to-label decisions all resolved).
    pub flushed: bool,
}

impl LiveMeta {
    fn write(&self, out: &mut StoreWriter) {
        let mut w = Writer::new();
        w.u64(self.epoch);
        w.u64(self.tx_count);
        w.u64(self.block_count);
        w.u8(self.flushed as u8);
        out.segment("serve/live_meta", w.into_bytes());
    }

    fn read(store: &mut Store) -> Result<LiveMeta, StoreError> {
        let bytes = store.bytes("serve/live_meta")?;
        let mut r = Reader::new(&bytes);
        let meta = LiveMeta {
            epoch: r.u64()?,
            tx_count: r.u64()?,
            block_count: r.u64()?,
            flushed: match r.u8()? {
                0 => false,
                1 => true,
                _ => return Err(StoreError::Inconsistent("live_meta flushed flag is not 0/1")),
            },
        };
        r.finish()?;
        Ok(meta)
    }
}

/// Reads the live-ingest resume metadata from a store directory's
/// `serve.fst`, or `None` when the bundle was saved without one (a frozen
/// batch save).
pub fn read_live_meta(dir: &Path) -> Result<Option<LiveMeta>, StoreError> {
    let mut store = Store::open(&dir.join(SERVE_FILE))?;
    if !store.has("serve/live_meta") {
        return Ok(None);
    }
    LiveMeta::read(&mut store).map(Some)
}

/// Serializes the change labels into `serve/labels_*` segments: the
/// per-transaction vout column (`u32::MAX` = unlabelled) plus the counters.
fn write_labels(labels: &ChangeLabels, out: &mut StoreWriter) {
    let vout: Vec<u32> = labels.vout_of.iter().map(|v| v.unwrap_or(u32::MAX)).collect();
    let mut w = Writer::new();
    w.u32_slice(&vout);
    out.segment("serve/labels_vout", w.into_bytes());
    let mut meta = Writer::new();
    meta.u64(labels.labels as u64);
    for &c in &labels.skip_counts {
        meta.u64(c as u64);
    }
    out.segment("serve/labels_meta", meta.into_bytes());
}

fn read_labels(store: &mut Store) -> Result<ChangeLabels, StoreError> {
    let vout_of: Vec<Option<u32>> = store
        .u32s("serve/labels_vout")?
        .into_iter()
        .map(|v| if v == u32::MAX { None } else { Some(v) })
        .collect();
    let meta = store.bytes("serve/labels_meta")?;
    let mut r = Reader::new(&meta);
    let labels = r.u64()? as usize;
    let mut skip_counts = [0usize; 8];
    for slot in &mut skip_counts {
        *slot = r.u64()? as usize;
    }
    r.finish()?;
    Ok(ChangeLabels { vout_of, skip_counts, labels })
}

/// Serializes the balance series into one `serve/balances` segment.
fn write_balances(balances: &[BalancePoint], out: &mut StoreWriter) {
    let mut w = Writer::new();
    w.compact_size(balances.len() as u64);
    for p in balances {
        w.u64(p.height);
        w.u64(p.time);
        w.u64(p.supply.to_sat());
        w.u64(p.sink_held.to_sat());
        w.compact_size(p.balances.len() as u64);
        for (category, amount) in &p.balances {
            w.string(category);
            w.u64(amount.to_sat());
        }
    }
    out.segment("serve/balances", w.into_bytes());
}

fn read_balances(store: &mut Store) -> Result<Vec<BalancePoint>, StoreError> {
    use fistful_chain::amount::Amount;
    let bytes = store.bytes("serve/balances")?;
    let mut r = Reader::new(&bytes);
    let count = r.compact_size()?;
    // Each point is at least 33 bytes (4 u64s + 1 CompactSize byte).
    if count > r.remaining() as u64 / 33 {
        return Err(StoreError::Decode(
            fistful_chain::encode::DecodeError::OversizedCount(count),
        ));
    }
    let mut balances = Vec::with_capacity(count as usize);
    for _ in 0..count {
        let height = r.u64()?;
        let time = r.u64()?;
        let supply = Amount::from_sat(r.u64()?);
        let sink_held = Amount::from_sat(r.u64()?);
        let entries = r.compact_size()?;
        let mut map = BTreeMap::new();
        for _ in 0..entries {
            let category = r.string()?;
            let amount = Amount::from_sat(r.u64()?);
            if map.insert(category, amount).is_some() {
                return Err(StoreError::Inconsistent(
                    "balance point repeats a category",
                ));
            }
        }
        balances.push(BalancePoint { height, time, balances: map, supply, sink_held });
    }
    r.finish()?;
    Ok(balances)
}

impl ServeArtifacts {
    /// Writes the serving bundle into `dir` as three container files
    /// (`graph.fst`, `snapshot.fst`, `serve.fst`), creating the directory
    /// if needed. Returns total bytes written.
    ///
    /// Any existing delta files in `dir` are removed: a fresh full save
    /// resets the base the deltas were diffed against.
    pub fn save_dir(&self, dir: &Path) -> Result<u64, StoreError> {
        self.save_dir_inner(dir, None)
    }

    /// [`save_dir`](Self::save_dir) plus a `serve/live_meta` segment, the
    /// live-ingest pipeline's base save: a restarted server can resume
    /// from the resulting directory at the recorded epoch.
    pub fn save_dir_live(&self, dir: &Path, meta: &LiveMeta) -> Result<u64, StoreError> {
        self.save_dir_inner(dir, Some(meta))
    }

    fn save_dir_inner(&self, dir: &Path, meta: Option<&LiveMeta>) -> Result<u64, StoreError> {
        std::fs::create_dir_all(dir)?;
        for stale in delta_files(dir)? {
            std::fs::remove_file(stale)?;
        }
        let mut total = 0u64;
        total += self.write_graph_file(dir)?;
        let mut w = StoreWriter::new();
        self.snapshot.write_store(&mut w);
        total += w.write_to(&dir.join(SNAPSHOT_FILE))?;
        total += self.write_serve_file(dir, meta)?;
        Ok(total)
    }

    /// Rewrites just `graph.fst` — the per-epoch refresh of the one
    /// artifact that has no delta representation.
    pub(crate) fn write_graph_file(&self, dir: &Path) -> Result<u64, StoreError> {
        let mut w = StoreWriter::new();
        self.graph.write_store(&mut w);
        w.write_to(&dir.join(GRAPH_FILE))
    }

    /// Rewrites just `serve.fst` (labels + balances, plus the live resume
    /// metadata when given).
    pub(crate) fn write_serve_file(
        &self,
        dir: &Path,
        meta: Option<&LiveMeta>,
    ) -> Result<u64, StoreError> {
        let mut w = StoreWriter::new();
        write_labels(&self.labels, &mut w);
        write_balances(&self.balances, &mut w);
        if let Some(meta) = meta {
            meta.write(&mut w);
        }
        w.write_to(&dir.join(SERVE_FILE))
    }

    /// Reopens a serving bundle saved by [`save_dir`](Self::save_dir):
    /// bulk-reads `graph.fst`, folds `snapshot.fst` with any
    /// `snapshot.delta.*.fst` files in lexical order, reads `serve.fst`,
    /// and re-runs the artifact pairing checks — so a restarted server is
    /// indistinguishable from one built in RAM, without replaying the
    /// chain.
    pub fn open_dir(dir: &Path) -> Result<ServeArtifacts, StoreError> {
        let mut store = Store::open(&dir.join(GRAPH_FILE))?;
        let graph = TxGraph::read_store(&mut store)?;
        let mut store = Store::open(&dir.join(SNAPSHOT_FILE))?;
        let mut snapshot = ClusterSnapshot::read_store(&mut store)?;
        for path in delta_files(dir)? {
            let mut store = Store::open(&path)?;
            let delta = SnapshotDelta::read_store(&mut store)?;
            snapshot = snapshot.apply_delta(&delta).map_err(|e| match e {
                fistful_core::snapshot::SnapshotError::Inconsistent(what) => {
                    StoreError::Inconsistent(what)
                }
                _ => StoreError::Inconsistent("snapshot delta failed to apply"),
            })?;
        }
        let mut store = Store::open(&dir.join(SERVE_FILE))?;
        let labels = read_labels(&mut store)?;
        let balances = read_balances(&mut store)?;
        ServeArtifacts::new(snapshot, graph, labels, balances).map_err(|e| match e {
            ServeError::MismatchedArtifacts(what) => StoreError::Inconsistent(what),
            _ => StoreError::Inconsistent("artifact pairing failed"),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fistful_core::change::{self, ChangeConfig};
    use fistful_core::cluster::Clusterer;
    use fistful_core::naming::name_clusters;
    use fistful_core::tagdb::TagDb;
    use fistful_core::testutil::TestChain;
    use fistful_flow::balance_series;

    fn bundle() -> ServeArtifacts {
        let mut t = TestChain::new();
        let cb1 = t.coinbase(1, 50);
        let cb2 = t.coinbase(2, 50);
        t.tx(&[(cb1, 0), (cb2, 0)], &[(3, 70), (4, 30)]);
        let clustering = Clusterer::h1_only().run(&t.chain);
        let names = name_clusters(&clustering, &TagDb::new());
        let snapshot = ClusterSnapshot::build(&t.chain, &clustering, &names);
        let labels = change::identify(&t.chain, &ChangeConfig::naive());
        let balances = balance_series(&t.chain, &snapshot, 1);
        let graph = TxGraph::build(&t.chain);
        ServeArtifacts::new(snapshot, graph, labels, balances).unwrap()
    }

    fn temp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("fstc-serve-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn save_open_round_trips_every_artifact() {
        let a = bundle();
        let dir = temp_dir("roundtrip");
        let written = a.save_dir(&dir).unwrap();
        assert!(written > 0);
        let b = ServeArtifacts::open_dir(&dir).unwrap();
        assert_eq!(b.snapshot, a.snapshot);
        assert_eq!(b.graph, a.graph);
        assert_eq!(b.labels.vout_of, a.labels.vout_of);
        assert_eq!(b.labels.skip_counts, a.labels.skip_counts);
        assert_eq!(b.labels.labels, a.labels.labels);
        assert_eq!(b.balances, a.balances);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn open_dir_folds_deltas_in_order() {
        // Save a *stale* base plus the delta bringing it current; open_dir
        // must serve the current snapshot.
        let mut t = TestChain::new();
        let cb1 = t.coinbase(1, 50);
        let cb2 = t.coinbase(2, 50);
        t.tx(&[(cb1, 0), (cb2, 0)], &[(3, 100)]);
        let clustering = Clusterer::h1_only().run(&t.chain);
        let names = name_clusters(&clustering, &TagDb::new());
        let stale = ClusterSnapshot::build(&t.chain, &clustering, &names);

        let cb4 = t.coinbase(4, 25);
        t.tx(&[(cb4, 0)], &[(3, 25)]);
        let clustering = Clusterer::h1_only().run(&t.chain);
        let names = name_clusters(&clustering, &TagDb::new());
        let current = ClusterSnapshot::build(&t.chain, &clustering, &names);
        let delta = SnapshotDelta::between(&stale, &current);

        let labels = change::identify(&t.chain, &ChangeConfig::naive());
        let balances = balance_series(&t.chain, &current, 1);
        let graph = TxGraph::build(&t.chain);
        let live =
            ServeArtifacts::new(current.clone(), graph, labels, balances).unwrap();

        let dir = temp_dir("deltas");
        live.save_dir(&dir).unwrap();
        // Replace the saved (current) base with the stale one + its delta.
        let mut w = StoreWriter::new();
        stale.write_store(&mut w);
        w.write_to(&dir.join(SNAPSHOT_FILE)).unwrap();
        let mut w = StoreWriter::new();
        delta.write_store(&mut w);
        w.write_to(&dir.join(delta_file_name(1))).unwrap();

        let reopened = ServeArtifacts::open_dir(&dir).unwrap();
        assert_eq!(reopened.snapshot.to_bytes(), current.to_bytes());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn save_dir_clears_stale_deltas() {
        let a = bundle();
        let dir = temp_dir("stale");
        std::fs::create_dir_all(&dir).unwrap();
        // A leftover delta from an older base must not survive a full save
        // (it would corrupt the next open).
        let mut w = StoreWriter::new();
        SnapshotDelta::default().write_store(&mut w);
        w.write_to(&dir.join(delta_file_name(7))).unwrap();
        a.save_dir(&dir).unwrap();
        assert!(delta_files(&dir).unwrap().is_empty());
        assert_eq!(ServeArtifacts::open_dir(&dir).unwrap().snapshot, a.snapshot);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn open_dir_rejects_mismatched_artifacts() {
        let a = bundle();
        let dir = temp_dir("mismatch");
        a.save_dir(&dir).unwrap();
        // Overwrite the snapshot with one from a different (smaller) chain:
        // the pairing check must refuse, same as ServeArtifacts::new.
        let t = TestChain::new();
        let clustering = Clusterer::h1_only().run(&t.chain);
        let names = name_clusters(&clustering, &TagDb::new());
        let other = ClusterSnapshot::build(&t.chain, &clustering, &names);
        let mut w = StoreWriter::new();
        other.write_store(&mut w);
        w.write_to(&dir.join(SNAPSHOT_FILE)).unwrap();
        assert!(matches!(
            ServeArtifacts::open_dir(&dir),
            Err(StoreError::Inconsistent(_))
        ));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn live_meta_round_trips_and_is_absent_on_batch_saves() {
        let a = bundle();
        let dir = temp_dir("livemeta");
        a.save_dir(&dir).unwrap();
        assert_eq!(read_live_meta(&dir).unwrap(), None, "batch saves carry no live meta");

        let meta = LiveMeta { epoch: 7, tx_count: 42, block_count: 9, flushed: true };
        a.save_dir_live(&dir, &meta).unwrap();
        assert_eq!(read_live_meta(&dir).unwrap(), Some(meta));
        // The extra segment does not disturb a normal reopen.
        let b = ServeArtifacts::open_dir(&dir).unwrap();
        assert_eq!(b.snapshot, a.snapshot);

        // Rewriting serve.fst without meta (a demotion back to frozen)
        // removes it again.
        a.write_serve_file(&dir, None).unwrap();
        assert_eq!(read_live_meta(&dir).unwrap(), None);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn open_dir_reports_missing_files() {
        let dir = temp_dir("missing");
        std::fs::create_dir_all(&dir).unwrap();
        // An empty directory: the first missing container surfaces as an
        // I/O error, not a panic.
        assert!(matches!(
            ServeArtifacts::open_dir(&dir),
            Err(StoreError::Io(_))
        ));
        std::fs::remove_dir_all(&dir).unwrap();
    }
}

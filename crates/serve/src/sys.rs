//! Thin std-only shim over the platform's `poll(2)` readiness syscall.
//!
//! The event-driven serve loop ([`crate::event`]) needs exactly one OS
//! facility std does not expose: "which of these sockets are readable or
//! writable right now?". Rather than vendoring an async runtime or a
//! `libc` crate (the dependency set is closed — see `vendor/README.md`),
//! this module declares the one symbol directly: on every Unix libc,
//! `poll` takes an array of `pollfd` structs, a count, and a millisecond
//! timeout, and std already links libc. `poll` scales linearly in the
//! number of descriptors, which is the right trade at the thousands of
//! connections this server targets — the syscall cost is dwarfed by
//! request handling, and the portability/complexity cost of `epoll` or
//! `kqueue` buys nothing at this scale.
//!
//! On non-Unix targets the shim reports `Unsupported`; the event server
//! surfaces that at startup and the threaded server remains available.

use std::os::raw::c_short;

/// Readable data (or a FIN) is waiting.
pub(crate) const POLLIN: c_short = 0x001;
/// The socket can accept more bytes without blocking.
pub(crate) const POLLOUT: c_short = 0x004;
/// Error condition (delivered regardless of requested events).
pub(crate) const POLLERR: c_short = 0x008;
/// Peer hung up (delivered regardless of requested events).
pub(crate) const POLLHUP: c_short = 0x010;
/// The descriptor was not open (delivered regardless of requested events).
pub(crate) const POLLNVAL: c_short = 0x020;

/// One entry in the poll set: a descriptor, the events asked about, and
/// (after [`poll_fds`]) the events that fired. Layout-compatible with the
/// platform's `struct pollfd`.
#[repr(C)]
#[derive(Clone, Copy, Debug)]
pub(crate) struct PollFd {
    fd: std::os::raw::c_int,
    events: c_short,
    revents: c_short,
}

impl PollFd {
    /// An entry asking about `events` (a bitmask of [`POLLIN`] /
    /// [`POLLOUT`]) on `fd`.
    #[cfg(unix)]
    pub(crate) fn new(fd: std::os::fd::RawFd, events: c_short) -> PollFd {
        PollFd { fd, events, revents: 0 }
    }

    /// The descriptor is readable (data, FIN, error, or hangup — all of
    /// which a read will surface).
    pub(crate) fn readable(&self) -> bool {
        self.revents & (POLLIN | POLLERR | POLLHUP | POLLNVAL) != 0
    }

    /// The descriptor is writable (or in an error state a write will
    /// surface).
    pub(crate) fn writable(&self) -> bool {
        self.revents & (POLLOUT | POLLERR | POLLHUP | POLLNVAL) != 0
    }
}

#[cfg(unix)]
mod imp {
    use super::PollFd;
    use std::io;
    use std::os::raw::c_int;

    // POSIX nfds_t: unsigned long on Linux, unsigned int elsewhere. Both
    // are register-sized arguments, but declare the exact type anyway.
    #[cfg(target_os = "linux")]
    type NFds = std::os::raw::c_ulong;
    #[cfg(not(target_os = "linux"))]
    type NFds = std::os::raw::c_uint;

    extern "C" {
        fn poll(fds: *mut PollFd, nfds: NFds, timeout: c_int) -> c_int;
    }

    /// Blocks until at least one entry has a fired event or `timeout_ms`
    /// elapses (`0` returns immediately). Retries on `EINTR`; returns how
    /// many entries fired.
    pub(crate) fn poll_fds(fds: &mut [PollFd], timeout_ms: i32) -> io::Result<usize> {
        loop {
            let rc = unsafe { poll(fds.as_mut_ptr(), fds.len() as NFds, timeout_ms) };
            if rc >= 0 {
                return Ok(rc as usize);
            }
            let err = io::Error::last_os_error();
            if err.kind() != io::ErrorKind::Interrupted {
                return Err(err);
            }
        }
    }
}

#[cfg(not(unix))]
mod imp {
    use super::PollFd;
    use std::io;

    /// Readiness polling is not wired up on this platform; the event
    /// server refuses to start and the threaded server remains available.
    pub(crate) fn poll_fds(_fds: &mut [PollFd], _timeout_ms: i32) -> io::Result<usize> {
        Err(io::Error::new(
            io::ErrorKind::Unsupported,
            "readiness polling is only implemented for unix targets",
        ))
    }
}

pub(crate) use imp::poll_fds;

/// True when this build has a working [`poll_fds`].
pub(crate) fn supported() -> bool {
    cfg!(unix)
}

#[cfg(all(test, unix))]
mod tests {
    use super::*;
    use std::io::{Read, Write};
    use std::net::{TcpListener, TcpStream};
    use std::os::fd::AsRawFd;

    #[test]
    fn poll_reports_readability_exactly_when_bytes_wait() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let mut tx = TcpStream::connect(listener.local_addr().unwrap()).unwrap();
        let (mut rx, _) = listener.accept().unwrap();

        // Nothing written yet: a zero-timeout poll sees nothing.
        let mut fds = [PollFd::new(rx.as_raw_fd(), POLLIN)];
        assert_eq!(poll_fds(&mut fds, 0).unwrap(), 0);
        assert!(!fds[0].readable());

        tx.write_all(b"hi").unwrap();
        let mut fds = [PollFd::new(rx.as_raw_fd(), POLLIN)];
        assert_eq!(poll_fds(&mut fds, 1000).unwrap(), 1);
        assert!(fds[0].readable());

        // A fresh socket buffer is writable immediately.
        let mut fds = [PollFd::new(rx.as_raw_fd(), POLLOUT)];
        assert_eq!(poll_fds(&mut fds, 0).unwrap(), 1);
        assert!(fds[0].writable());

        // FIN also reads as readable (a read will see EOF).
        drop(tx);
        let mut fds = [PollFd::new(rx.as_raw_fd(), POLLIN)];
        assert_eq!(poll_fds(&mut fds, 1000).unwrap(), 1);
        assert!(fds[0].readable());
        let mut buf = [0u8; 8];
        assert_eq!(rx.read(&mut buf).unwrap(), 2);
        assert_eq!(rx.read(&mut buf).unwrap(), 0);
    }
}

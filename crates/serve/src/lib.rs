//! `fistful-serve` — the concurrent analytics query service over frozen
//! cluster snapshots and the transaction-graph index.
//!
//! The paper's end product is not the clustering run itself but the
//! *queries it answers*: which service owns this address, where did the
//! stolen coins go, how much has this cluster received. The workspace
//! already freezes those answers into two immutable, `Arc`-shareable
//! artifacts — [`ClusterSnapshot`](fistful_core::snapshot::ClusterSnapshot)
//! (O(1) address → cluster → aggregates) and
//! [`TxGraph`](fistful_flow::graph::TxGraph) (indexed multi-hop
//! traversals). This crate puts a network front on them:
//!
//! * [`protocol`] — the versioned, length-prefixed binary wire format
//!   (requests `Ping`/`Stats`/`AddressInfo`/`ClusterSummary`/`TaintTrace`/
//!   `BalancePoint`), built on [`fistful_chain::encode`], with strict
//!   frame limits and typed [`ServeError`]s so arbitrary bytes can never
//!   panic a decoder or balloon an allocation;
//! * [`server`] — a std-only multithreaded TCP server: one acceptor, a
//!   fixed worker pool sharing the artifacts through an
//!   [`Arc`](std::sync::Arc), a
//!   per-worker reusable [`TaintScratch`](fistful_flow::graph::TaintScratch),
//!   a sharded LRU response [`cache`] keyed by request bytes, and graceful
//!   shutdown that drains in-flight requests;
//! * [`event`] — the event-driven serve loop over the same request core:
//!   a std-only poll(2)-based readiness loop ([`conn`] holds the shared
//!   deadline bookkeeping) with nonblocking accept, request pipelining,
//!   per-connection budgets, and queue-full backpressure, so thousands of
//!   mostly-idle keep-alive connections share a fixed worker pool;
//! * [`client`] — a blocking typed client speaking the same protocol
//!   (including coalesced pipelined batches);
//! * [`live`] — the background ingest pipeline that hot-swaps fresh
//!   artifact generations into a running server at every reconcile epoch
//!   (and persists per-epoch deltas through [`store`] so a restarted
//!   server resumes where it left off);
//! * [`metrics`] — the first-party observability layer: a lock-free
//!   registry of counters, gauges, and log₂ latency histograms that both
//!   engines and the live pipeline write into (one relaxed atomic add on
//!   the hot path), snapshotted as a [`MetricsDump`] and rendered as
//!   Prometheus text;
//! * [`httpexpo`] — a tiny std-only HTTP/1.1 exporter serving that text
//!   on a separate scrape port (`repro serve --metrics-port`), while the
//!   binary [`Request::MetricsDump`] exposes the identical snapshot over
//!   the FSRV protocol.
//!
//! `repro serve` runs the server over a simulated economy from the CLI,
//! and `repro serve-bench` is the closed-loop load generator
//! (throughput + p50/p99 latency per request type); `bench_serve` measures
//! codec, cache, and end-to-end round-trip cost.
//!
//! # Example: start a server, query it, shut it down
//!
//! ```
//! use fistful_core::cluster::Clusterer;
//! use fistful_core::change::{self, ChangeConfig};
//! use fistful_core::naming::name_clusters;
//! use fistful_core::snapshot::ClusterSnapshot;
//! use fistful_core::tagdb::TagDb;
//! use fistful_core::testutil::TestChain;
//! use fistful_flow::graph::TxGraph;
//! use fistful_flow::balance_series;
//! use fistful_serve::{Client, ServeArtifacts, ServeConfig, Server};
//! use std::sync::Arc;
//!
//! // A two-user economy: addresses 1 and 2 co-spend, so Heuristic 1
//! // clusters them; address 3 stays separate.
//! let mut t = TestChain::new();
//! let cb1 = t.coinbase(1, 50);
//! let cb2 = t.coinbase(2, 50);
//! t.tx(&[(cb1, 0), (cb2, 0)], &[(3, 100)]);
//!
//! // Freeze the serving artifacts once.
//! let clustering = Clusterer::h1_only().run(&t.chain);
//! let names = name_clusters(&clustering, &TagDb::new());
//! let snapshot = ClusterSnapshot::build(&t.chain, &clustering, &names);
//! let labels = change::identify(&t.chain, &ChangeConfig::naive());
//! let balances = balance_series(&t.chain, &snapshot, 1);
//! let graph = TxGraph::build(&t.chain);
//! let artifacts = Arc::new(ServeArtifacts::new(snapshot, graph, labels, balances).unwrap());
//!
//! // Serve them on an ephemeral port and query over the socket.
//! let config = ServeConfig { workers: 2, ..ServeConfig::default() };
//! let server = Server::start(config, artifacts).unwrap();
//! let mut client = Client::connect(server.local_addr()).unwrap();
//! client.ping().unwrap();
//! let one = client.address_info(t.id(1)).unwrap().expect("covered");
//! let two = client.address_info(t.id(2)).unwrap().expect("covered");
//! assert_eq!(one.cluster, two.cluster); // co-spenders share a cluster
//! assert_eq!(one.info.size, 2);
//! server.shutdown();
//! ```

#![warn(missing_docs)]

pub mod cache;
pub mod client;
pub mod conn;
pub mod event;
pub mod httpexpo;
pub mod live;
pub mod metrics;
pub mod protocol;
pub mod server;
pub mod store;
pub(crate) mod sys;

pub use cache::{CacheClass, CacheFloors, CacheShardStats, ShardedCache};
pub use client::Client;
pub use conn::{Deadline, DeadlineVerdict};
pub use event::{EventServeConfig, EventServer};
pub use httpexpo::MetricsExporter;
pub use live::{LiveConfig, LiveHandle, LivePipeline, LiveReport};
pub use metrics::{
    render_prometheus, Counter, Gauge, HistogramDump, LatencyHistogram, MetricsDump, ServeMetrics,
};
pub use protocol::{
    AddressReport, BalanceReport, ClusterReport, ErrorCode, FramePrefix, Request, Response,
    ServeError, ServerStats, TaintReport, WireError, WireMovement, MAX_REQUEST_PAYLOAD,
    MAX_RESPONSE_PAYLOAD, PROTOCOL_MAGIC, PROTOCOL_VERSION, PROTOCOL_VERSION_V1,
};
pub use server::{MetricsHandle, Publisher, ServeArtifacts, ServeConfig, Server};

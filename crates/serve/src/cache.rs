//! A sharded LRU cache for encoded responses, keyed by request bytes.
//!
//! The serving artifacts are immutable, so every cacheable request maps to
//! exactly one response payload for the lifetime of the server — the cache
//! never needs invalidation, only bounded memory. Keys are the raw request
//! payload bytes (canonical encodings, so equal requests have equal keys);
//! values are the encoded response payloads, stored ready to write so a
//! hit skips decode, handling, *and* re-encode.
//!
//! Contention is kept off the hot path by sharding: the key is hashed
//! (FNV-1a) to one of [`ShardedCache::SHARDS`] independent mutexes, so
//! concurrent workers only collide when they touch the same shard. Each
//! shard is a classic O(1) LRU — a hash map into a slab of entries linked
//! into a recency list — evicting the least-recently-used entry when full.
//! Hit/miss counters are process-wide atomics, surfaced through the
//! `Stats` request and `repro serve-bench`.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// Shared immutable byte buffer: keys and values live in one allocation
/// each, referenced from both the map and the recency slab, and a cache
/// hit hands the caller a refcount bump instead of a copy of the
/// response body (which would otherwise be memcpy'd while holding the
/// shard lock).
type Bytes = Arc<[u8]>;

/// Slot sentinel for "no entry" in the recency links.
const NIL: usize = usize::MAX;

/// One LRU shard: a slab of entries doubly linked in recency order, plus a
/// map from key to slab slot.
struct LruShard {
    /// Maximum entries this shard may hold.
    cap: usize,
    /// Key → slab slot (the key allocation is shared with the slab entry).
    map: HashMap<Bytes, usize>,
    /// Entry slab; freed slots are recycled via `free`.
    slab: Vec<Entry>,
    /// Recycled slots.
    free: Vec<usize>,
    /// Most recently used slot, or [`NIL`].
    head: usize,
    /// Least recently used slot, or [`NIL`].
    tail: usize,
}

struct Entry {
    key: Bytes,
    value: Bytes,
    prev: usize,
    next: usize,
}

impl LruShard {
    fn new(cap: usize) -> LruShard {
        LruShard {
            cap,
            map: HashMap::with_capacity(cap),
            slab: Vec::with_capacity(cap),
            free: Vec::new(),
            head: NIL,
            tail: NIL,
        }
    }

    /// Unlinks `slot` from the recency list (it must be linked).
    fn unlink(&mut self, slot: usize) {
        let (prev, next) = (self.slab[slot].prev, self.slab[slot].next);
        match prev {
            NIL => self.head = next,
            p => self.slab[p].next = next,
        }
        match next {
            NIL => self.tail = prev,
            n => self.slab[n].prev = prev,
        }
    }

    /// Links `slot` at the head (most recently used).
    fn link_front(&mut self, slot: usize) {
        self.slab[slot].prev = NIL;
        self.slab[slot].next = self.head;
        match self.head {
            NIL => self.tail = slot,
            h => self.slab[h].prev = slot,
        }
        self.head = slot;
    }

    fn get(&mut self, key: &[u8]) -> Option<Bytes> {
        let slot = *self.map.get(key)?;
        self.unlink(slot);
        self.link_front(slot);
        Some(Arc::clone(&self.slab[slot].value))
    }

    fn insert(&mut self, key: Bytes, value: Bytes) {
        if self.cap == 0 {
            return;
        }
        if let Some(&slot) = self.map.get(&key) {
            // Same request raced in twice; refresh recency and keep the
            // (identical, both derived from immutable artifacts) value.
            self.slab[slot].value = value;
            self.unlink(slot);
            self.link_front(slot);
            return;
        }
        if self.map.len() == self.cap {
            // Evict the least recently used entry, recycling its slot.
            let victim = self.tail;
            self.unlink(victim);
            let old_key = Arc::clone(&self.slab[victim].key);
            self.map.remove(&old_key);
            self.free.push(victim);
        }
        let slot = match self.free.pop() {
            Some(slot) => {
                self.slab[slot] = Entry { key: Arc::clone(&key), value, prev: NIL, next: NIL };
                slot
            }
            None => {
                self.slab.push(Entry { key: Arc::clone(&key), value, prev: NIL, next: NIL });
                self.slab.len() - 1
            }
        };
        self.map.insert(key, slot);
        self.link_front(slot);
    }
}

/// The sharded response cache. See the [module docs](self).
pub struct ShardedCache {
    shards: Vec<Mutex<LruShard>>,
    hits: AtomicU64,
    misses: AtomicU64,
}

impl ShardedCache {
    /// Number of independent shards (and mutexes).
    pub const SHARDS: usize = 8;

    /// A cache holding at most `total_entries` responses across all
    /// shards (rounded up to a multiple of [`Self::SHARDS`]).
    pub fn new(total_entries: usize) -> ShardedCache {
        let per_shard = total_entries.div_ceil(Self::SHARDS);
        ShardedCache {
            shards: (0..Self::SHARDS).map(|_| Mutex::new(LruShard::new(per_shard))).collect(),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
        }
    }

    /// FNV-1a over the key bytes, reduced to a shard index.
    fn shard_of(&self, key: &[u8]) -> usize {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for &b in key {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        (h % Self::SHARDS as u64) as usize
    }

    /// Looks up the response for a request key, refreshing its recency and
    /// counting the hit or miss. A hit is a refcount bump, not a copy —
    /// nothing large is cloned while the shard lock is held.
    pub fn get(&self, key: &[u8]) -> Option<Bytes> {
        let found = self.shards[self.shard_of(key)].lock().expect("cache shard poisoned").get(key);
        match &found {
            Some(_) => self.hits.fetch_add(1, Ordering::Relaxed),
            None => self.misses.fetch_add(1, Ordering::Relaxed),
        };
        found
    }

    /// Stores a response, evicting the shard's least-recently-used entry
    /// when it is full.
    pub fn insert(&self, key: Vec<u8>, value: Vec<u8>) {
        let key: Bytes = key.into();
        let shard = self.shard_of(&key);
        self.shards[shard].lock().expect("cache shard poisoned").insert(key, value.into());
    }

    /// Lookups answered from the cache so far.
    pub fn hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    /// Lookups that missed so far.
    pub fn misses(&self) -> u64 {
        self.misses.load(Ordering::Relaxed)
    }

    /// Entries currently cached across all shards.
    pub fn len(&self) -> usize {
        self.shards.iter().map(|s| s.lock().expect("cache shard poisoned").map.len()).sum()
    }

    /// True when nothing is cached.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn key(n: u32) -> Vec<u8> {
        n.to_le_bytes().to_vec()
    }

    #[test]
    fn hit_and_miss_counters_track_lookups() {
        let cache = ShardedCache::new(16);
        assert_eq!(cache.get(&key(1)), None);
        cache.insert(key(1), vec![0xAA]);
        assert_eq!(cache.get(&key(1)).as_deref(), Some(&[0xAAu8][..]));
        assert_eq!(cache.hits(), 1);
        assert_eq!(cache.misses(), 1);
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn evicts_least_recently_used_per_shard() {
        // One shard so recency order is fully observable.
        let mut shard = LruShard::new(3);
        for n in 0..3u32 {
            shard.insert(key(n).into(), vec![n as u8].into());
        }
        // Touch 0 so 1 becomes the LRU victim.
        assert!(shard.get(&key(0)).is_some());
        shard.insert(key(3).into(), vec![3u8].into());
        assert_eq!(shard.get(&key(1)), None, "LRU entry evicted");
        for n in [0u32, 2, 3] {
            assert_eq!(shard.get(&key(n)).as_deref(), Some(&[n as u8][..]), "key {n} survives");
        }
        assert_eq!(shard.map.len(), 3);
    }

    #[test]
    fn eviction_churn_recycles_slots() {
        let mut shard = LruShard::new(4);
        for n in 0..100u32 {
            shard.insert(key(n).into(), vec![n as u8].into());
        }
        // Only the last 4 remain, and the slab never outgrew the capacity
        // (evicted slots are recycled, not leaked).
        assert_eq!(shard.map.len(), 4);
        assert!(shard.slab.len() <= 5, "slab grew to {}", shard.slab.len());
        for n in 96..100u32 {
            assert_eq!(shard.get(&key(n)).as_deref(), Some(&[n as u8][..]));
        }
        assert_eq!(shard.get(&key(0)), None);
    }

    #[test]
    fn reinsert_refreshes_value_and_recency() {
        let mut shard = LruShard::new(2);
        shard.insert(key(1).into(), vec![1u8].into());
        shard.insert(key(2).into(), vec![2u8].into());
        shard.insert(key(1).into(), vec![9u8].into()); // refresh: 2 is now the LRU
        shard.insert(key(3).into(), vec![3u8].into());
        assert_eq!(shard.get(&key(1)).as_deref(), Some(&[9u8][..]));
        assert_eq!(shard.get(&key(2)), None);
    }

    #[test]
    fn zero_capacity_disables_storage() {
        let cache = ShardedCache::new(0);
        cache.insert(key(1), vec![1]);
        assert_eq!(cache.get(&key(1)), None);
        assert!(cache.is_empty());
    }

    #[test]
    fn concurrent_mixed_load_is_consistent() {
        use std::sync::Arc;
        let cache = Arc::new(ShardedCache::new(64));
        std::thread::scope(|s| {
            for t in 0..4 {
                let cache = Arc::clone(&cache);
                s.spawn(move || {
                    for i in 0..1000u32 {
                        let k = key(i % 97);
                        if let Some(v) = cache.get(&k) {
                            // A hit must return what some thread inserted
                            // for this key.
                            assert_eq!(&*v, &k[..], "thread {t}");
                        } else {
                            cache.insert(k.clone(), k);
                        }
                    }
                });
            }
        });
        assert!(cache.len() <= 64 + ShardedCache::SHARDS);
        assert!(cache.hits() + cache.misses() >= 4000);
    }
}

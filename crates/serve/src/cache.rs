//! A sharded LRU cache for encoded responses, keyed by request bytes.
//!
//! With frozen artifacts every cacheable request maps to exactly one
//! response payload for the lifetime of the server. Under live ingest
//! (see [`crate::live`]) the artifacts are hot-swapped at epoch
//! boundaries, so each entry is tagged with the artifact epoch it was
//! computed at plus a *staleness class*, and lookups carry the current
//! [`CacheFloors`]: an entry answers only while its epoch is at or above
//! the floor for its class. Publishing a new artifact raises the floors
//! instead of walking the cache — stale entries die wholesale, lazily,
//! at their next lookup or eviction.
//!
//! Two classes keep still-valid entries alive across swaps:
//!
//! * [`CacheClass::Snapshot`] — answers derived from an existing cluster
//!   assignment (`AddressInfo`/`ClusterSummary` with a `Some` body).
//!   Cluster ids are stable across *non-merging* epochs (the delta only
//!   appends new addresses and new clusters), so the publisher keeps the
//!   snapshot floor unchanged for those swaps and such entries survive.
//! * [`CacheClass::Graph`] — everything whose answer can change whenever
//!   the chain merely grows: taint traces, balance points, and any
//!   `None`/not-found answer (coverage growth turns a miss into a hit).
//!   The graph floor rises on every publish, so these never outlive a
//!   swap.
//!
//! The class is chosen at *insert* time from the response content, not at
//! lookup time from the request type — a cached "address unknown" for an
//! id past the current end must not be pinned by the request's type byte.
//!
//! Keys are the raw request payload bytes (canonical encodings, so equal
//! requests have equal keys); values are the encoded response *payloads*
//! (framing is per-connection: protocol version and current epoch are
//! applied at send time), stored ready to frame so a hit skips decode,
//! handling, *and* re-encode.
//!
//! Contention is kept off the hot path by sharding: the key is hashed
//! (FNV-1a) to one of [`ShardedCache::SHARDS`] independent mutexes, so
//! concurrent workers only collide when they touch the same shard. Each
//! shard is a classic O(1) LRU — a hash map into a slab of entries linked
//! into a recency list — evicting the least-recently-used entry when full.
//! Hit/miss counters are process-wide atomics, surfaced through the
//! `Stats` request and `repro serve-bench`. Each shard additionally
//! keeps its own hit/miss/eviction tallies — plain integers bumped
//! under the shard lock the operation already holds, so they cost
//! nothing extra — surfaced per shard through the metrics layer
//! ([`ShardedCache::shard_stats`]).

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// Shared immutable byte buffer: keys and values live in one allocation
/// each, referenced from both the map and the recency slab, and a cache
/// hit hands the caller a refcount bump instead of a copy of the
/// response body (which would otherwise be memcpy'd while holding the
/// shard lock).
type Bytes = Arc<[u8]>;

/// Staleness class of a cached response, chosen at insert time from the
/// response *content*. See the [module docs](self).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CacheClass {
    /// Derived from an existing cluster assignment; survives swaps whose
    /// delta leaves existing ids untouched (non-merging epochs).
    Snapshot,
    /// Depends on the full graph/series (or is a not-found answer);
    /// invalidated by every swap.
    Graph,
}

/// Minimum entry epochs per class for a lookup to count as fresh. The
/// publisher raises these on each artifact swap; a frozen server keeps
/// the zero default, under which every entry is always fresh.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheFloors {
    /// Floor for [`CacheClass::Snapshot`] entries.
    pub snapshot: u64,
    /// Floor for [`CacheClass::Graph`] entries.
    pub graph: u64,
}

impl CacheFloors {
    /// The floor an entry of `class` must meet.
    pub fn floor(&self, class: CacheClass) -> u64 {
        match class {
            CacheClass::Snapshot => self.snapshot,
            CacheClass::Graph => self.graph,
        }
    }
}

/// Slot sentinel for "no entry" in the recency links.
const NIL: usize = usize::MAX;

/// One LRU shard: a slab of entries doubly linked in recency order, plus a
/// map from key to slab slot.
struct LruShard {
    /// Maximum entries this shard may hold.
    cap: usize,
    /// Key → slab slot (the key allocation is shared with the slab entry).
    map: HashMap<Bytes, usize>,
    /// Entry slab; freed slots are recycled via `free`.
    slab: Vec<Entry>,
    /// Recycled slots.
    free: Vec<usize>,
    /// Most recently used slot, or [`NIL`].
    head: usize,
    /// Least recently used slot, or [`NIL`].
    tail: usize,
    /// Lookups this shard answered. Bumped under the shard lock the
    /// lookup already holds (same for the two tallies below).
    hits: u64,
    /// Lookups this shard could not answer (absent or stale-reaped).
    misses: u64,
    /// Entries this shard removed: capacity evictions plus stale reaps.
    evictions: u64,
}

struct Entry {
    key: Bytes,
    value: Bytes,
    /// Artifact epoch the value was computed at.
    epoch: u64,
    /// Staleness class (see [`CacheClass`]).
    class: CacheClass,
    prev: usize,
    next: usize,
}

impl LruShard {
    fn new(cap: usize) -> LruShard {
        LruShard {
            cap,
            map: HashMap::with_capacity(cap),
            slab: Vec::with_capacity(cap),
            free: Vec::new(),
            head: NIL,
            tail: NIL,
            hits: 0,
            misses: 0,
            evictions: 0,
        }
    }

    /// Unlinks `slot` from the recency list (it must be linked).
    fn unlink(&mut self, slot: usize) {
        let (prev, next) = (self.slab[slot].prev, self.slab[slot].next);
        match prev {
            NIL => self.head = next,
            p => self.slab[p].next = next,
        }
        match next {
            NIL => self.tail = prev,
            n => self.slab[n].prev = prev,
        }
    }

    /// Links `slot` at the head (most recently used).
    fn link_front(&mut self, slot: usize) {
        self.slab[slot].prev = NIL;
        self.slab[slot].next = self.head;
        match self.head {
            NIL => self.tail = slot,
            h => self.slab[h].prev = slot,
        }
        self.head = slot;
    }

    /// Removes `slot` entirely, recycling it.
    fn remove(&mut self, slot: usize) {
        self.unlink(slot);
        let old_key = Arc::clone(&self.slab[slot].key);
        self.map.remove(&old_key);
        self.free.push(slot);
    }

    fn get(&mut self, key: &[u8], floors: &CacheFloors) -> Option<Bytes> {
        let Some(&slot) = self.map.get(key) else {
            self.misses += 1;
            return None;
        };
        if self.slab[slot].epoch < floors.floor(self.slab[slot].class) {
            // Stale under the current floors: reap it now so the slot is
            // reusable and a racing re-insert lands on an empty key.
            self.remove(slot);
            self.evictions += 1;
            self.misses += 1;
            return None;
        }
        self.unlink(slot);
        self.link_front(slot);
        self.hits += 1;
        Some(Arc::clone(&self.slab[slot].value))
    }

    fn insert(&mut self, key: Bytes, value: Bytes, epoch: u64, class: CacheClass) {
        if self.cap == 0 {
            return;
        }
        if let Some(&slot) = self.map.get(&key) {
            // Same request raced in twice (or is being refreshed after a
            // swap); keep whichever value carries the later epoch — a
            // worker still finishing on the pre-swap artifact must not
            // clobber a fresher answer.
            if epoch >= self.slab[slot].epoch {
                self.slab[slot].value = value;
                self.slab[slot].epoch = epoch;
                self.slab[slot].class = class;
            }
            self.unlink(slot);
            self.link_front(slot);
            return;
        }
        if self.map.len() == self.cap {
            // Evict the least recently used entry, recycling its slot.
            let victim = self.tail;
            self.remove(victim);
            self.evictions += 1;
        }
        let entry = Entry { key: Arc::clone(&key), value, epoch, class, prev: NIL, next: NIL };
        let slot = match self.free.pop() {
            Some(slot) => {
                self.slab[slot] = entry;
                slot
            }
            None => {
                self.slab.push(entry);
                self.slab.len() - 1
            }
        };
        self.map.insert(key, slot);
        self.link_front(slot);
    }
}

/// One shard's lookup and removal tallies ([`ShardedCache::shard_stats`]).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheShardStats {
    /// Lookups this shard answered.
    pub hits: u64,
    /// Lookups this shard could not answer (absent or stale-reaped).
    pub misses: u64,
    /// Entries this shard removed — capacity evictions plus stale reaps.
    pub evictions: u64,
}

/// The sharded response cache. See the [module docs](self).
pub struct ShardedCache {
    shards: Vec<Mutex<LruShard>>,
    hits: AtomicU64,
    misses: AtomicU64,
}

impl ShardedCache {
    /// Number of independent shards (and mutexes).
    pub const SHARDS: usize = 8;

    /// A cache holding at most `total_entries` responses across all
    /// shards (rounded up to a multiple of [`Self::SHARDS`]).
    pub fn new(total_entries: usize) -> ShardedCache {
        let per_shard = total_entries.div_ceil(Self::SHARDS);
        ShardedCache {
            shards: (0..Self::SHARDS).map(|_| Mutex::new(LruShard::new(per_shard))).collect(),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
        }
    }

    /// FNV-1a over the key bytes, reduced to a shard index.
    fn shard_of(&self, key: &[u8]) -> usize {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for &b in key {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        (h % Self::SHARDS as u64) as usize
    }

    /// Looks up the response for a request key under the current floors,
    /// refreshing its recency and counting the hit or miss. An entry
    /// whose epoch sits below its class floor is reaped and reported as
    /// a miss. A hit is a refcount bump, not a copy — nothing large is
    /// cloned while the shard lock is held.
    pub fn get(&self, key: &[u8], floors: &CacheFloors) -> Option<Bytes> {
        let found =
            self.shards[self.shard_of(key)].lock().expect("cache shard poisoned").get(key, floors);
        match &found {
            Some(_) => self.hits.fetch_add(1, Ordering::Relaxed),
            None => self.misses.fetch_add(1, Ordering::Relaxed),
        };
        found
    }

    /// Stores a response computed at `epoch` with staleness `class`,
    /// evicting the shard's least-recently-used entry when it is full.
    pub fn insert(&self, key: Vec<u8>, value: Vec<u8>, epoch: u64, class: CacheClass) {
        let key: Bytes = key.into();
        let shard = self.shard_of(&key);
        self.shards[shard].lock().expect("cache shard poisoned").insert(
            key,
            value.into(),
            epoch,
            class,
        );
    }

    /// Lookups answered from the cache so far.
    pub fn hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    /// Lookups that missed so far.
    pub fn misses(&self) -> u64 {
        self.misses.load(Ordering::Relaxed)
    }

    /// Per-shard hit/miss/eviction tallies, in shard order — the
    /// metrics layer's `{shard="i"}` series. Sum of per-shard hits and
    /// misses equals the global [`ShardedCache::hits`] and
    /// [`ShardedCache::misses`].
    pub fn shard_stats(&self) -> Vec<CacheShardStats> {
        self.shards
            .iter()
            .map(|s| {
                let shard = s.lock().expect("cache shard poisoned");
                CacheShardStats {
                    hits: shard.hits,
                    misses: shard.misses,
                    evictions: shard.evictions,
                }
            })
            .collect()
    }

    /// Entries currently cached across all shards (stale entries not yet
    /// reaped still count — they are reclaimed lazily).
    pub fn len(&self) -> usize {
        self.shards.iter().map(|s| s.lock().expect("cache shard poisoned").map.len()).sum()
    }

    /// True when nothing is cached.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn key(n: u32) -> Vec<u8> {
        n.to_le_bytes().to_vec()
    }

    /// Zero floors: the frozen-server behaviour, everything always fresh.
    const FROZEN: CacheFloors = CacheFloors { snapshot: 0, graph: 0 };

    #[test]
    fn hit_and_miss_counters_track_lookups() {
        let cache = ShardedCache::new(16);
        assert_eq!(cache.get(&key(1), &FROZEN), None);
        cache.insert(key(1), vec![0xAA], 0, CacheClass::Snapshot);
        assert_eq!(cache.get(&key(1), &FROZEN).as_deref(), Some(&[0xAAu8][..]));
        assert_eq!(cache.hits(), 1);
        assert_eq!(cache.misses(), 1);
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn evicts_least_recently_used_per_shard() {
        // One shard so recency order is fully observable.
        let mut shard = LruShard::new(3);
        for n in 0..3u32 {
            shard.insert(key(n).into(), vec![n as u8].into(), 0, CacheClass::Snapshot);
        }
        // Touch 0 so 1 becomes the LRU victim.
        assert!(shard.get(&key(0), &FROZEN).is_some());
        shard.insert(key(3).into(), vec![3u8].into(), 0, CacheClass::Snapshot);
        assert_eq!(shard.get(&key(1), &FROZEN), None, "LRU entry evicted");
        for n in [0u32, 2, 3] {
            assert_eq!(
                shard.get(&key(n), &FROZEN).as_deref(),
                Some(&[n as u8][..]),
                "key {n} survives"
            );
        }
        assert_eq!(shard.map.len(), 3);
    }

    #[test]
    fn eviction_churn_recycles_slots() {
        let mut shard = LruShard::new(4);
        for n in 0..100u32 {
            shard.insert(key(n).into(), vec![n as u8].into(), 0, CacheClass::Graph);
        }
        // Only the last 4 remain, and the slab never outgrew the capacity
        // (evicted slots are recycled, not leaked).
        assert_eq!(shard.map.len(), 4);
        assert!(shard.slab.len() <= 5, "slab grew to {}", shard.slab.len());
        for n in 96..100u32 {
            assert_eq!(shard.get(&key(n), &FROZEN).as_deref(), Some(&[n as u8][..]));
        }
        assert_eq!(shard.get(&key(0), &FROZEN), None);
    }

    #[test]
    fn reinsert_refreshes_value_and_recency() {
        let mut shard = LruShard::new(2);
        shard.insert(key(1).into(), vec![1u8].into(), 0, CacheClass::Snapshot);
        shard.insert(key(2).into(), vec![2u8].into(), 0, CacheClass::Snapshot);
        // Refresh: 2 is now the LRU.
        shard.insert(key(1).into(), vec![9u8].into(), 0, CacheClass::Snapshot);
        shard.insert(key(3).into(), vec![3u8].into(), 0, CacheClass::Snapshot);
        assert_eq!(shard.get(&key(1), &FROZEN).as_deref(), Some(&[9u8][..]));
        assert_eq!(shard.get(&key(2), &FROZEN), None);
    }

    #[test]
    fn zero_capacity_disables_storage() {
        let cache = ShardedCache::new(0);
        cache.insert(key(1), vec![1], 0, CacheClass::Snapshot);
        assert_eq!(cache.get(&key(1), &FROZEN), None);
        assert!(cache.is_empty());
    }

    #[test]
    fn floors_expire_entries_by_class() {
        let cache = ShardedCache::new(16);
        cache.insert(key(1), vec![1], 3, CacheClass::Snapshot);
        cache.insert(key(2), vec![2], 3, CacheClass::Graph);

        // A swap that only appended (non-merging): snapshot floor stays,
        // graph floor rises to the new epoch.
        let floors = CacheFloors { snapshot: 0, graph: 4 };
        assert_eq!(cache.get(&key(1), &floors).as_deref(), Some(&[1u8][..]), "snapshot survives");
        assert_eq!(cache.get(&key(2), &floors), None, "graph entry expired");
        // The stale entry was reaped, not just hidden.
        assert_eq!(cache.len(), 1);

        // A merging swap raises both floors: now the snapshot entry dies
        // too.
        let floors = CacheFloors { snapshot: 4, graph: 4 };
        assert_eq!(cache.get(&key(1), &floors), None, "merge expires snapshot entries");
        assert!(cache.is_empty());

        // Re-inserted at the new epoch, both answer again.
        cache.insert(key(1), vec![11], 4, CacheClass::Snapshot);
        cache.insert(key(2), vec![12], 4, CacheClass::Graph);
        assert_eq!(cache.get(&key(1), &floors).as_deref(), Some(&[11u8][..]));
        assert_eq!(cache.get(&key(2), &floors).as_deref(), Some(&[12u8][..]));
    }

    #[test]
    fn stale_reap_counts_as_miss_and_counters_stay_consistent() {
        let cache = ShardedCache::new(16);
        cache.insert(key(7), vec![7], 1, CacheClass::Graph);
        let floors = CacheFloors { snapshot: 0, graph: 2 };
        assert_eq!(cache.get(&key(7), &floors), None);
        assert_eq!((cache.hits(), cache.misses()), (0, 1));
        // A fresh insert after the miss hits normally.
        cache.insert(key(7), vec![8], 2, CacheClass::Graph);
        assert_eq!(cache.get(&key(7), &floors).as_deref(), Some(&[8u8][..]));
        assert_eq!((cache.hits(), cache.misses()), (1, 1));
    }

    #[test]
    fn late_worker_cannot_clobber_a_fresher_entry() {
        // A worker that started before a swap finishes after it and
        // re-inserts its pre-swap answer; the newer value must win.
        let mut shard = LruShard::new(4);
        shard.insert(key(1).into(), vec![2u8].into(), 2, CacheClass::Snapshot);
        shard.insert(key(1).into(), vec![1u8].into(), 1, CacheClass::Snapshot);
        let floors = CacheFloors { snapshot: 2, graph: 2 };
        assert_eq!(shard.get(&key(1), &floors).as_deref(), Some(&[2u8][..]));
    }

    #[test]
    fn reaped_slots_are_recycled() {
        let mut shard = LruShard::new(4);
        for n in 0..4u32 {
            shard.insert(key(n).into(), vec![n as u8].into(), 1, CacheClass::Graph);
        }
        let floors = CacheFloors { snapshot: 0, graph: 2 };
        for n in 0..4u32 {
            assert_eq!(shard.get(&key(n), &floors), None);
        }
        // All four slots came back through the free list.
        for n in 10..14u32 {
            shard.insert(key(n).into(), vec![n as u8].into(), 2, CacheClass::Graph);
        }
        assert_eq!(shard.map.len(), 4);
        assert!(shard.slab.len() <= 4, "slab grew to {}", shard.slab.len());
    }

    #[test]
    fn shard_stats_sum_to_global_counters_and_count_evictions() {
        // One entry per shard, so insert churn forces capacity evictions.
        let cache = ShardedCache::new(ShardedCache::SHARDS);
        for n in 0..32u32 {
            cache.get(&key(n), &FROZEN);
            cache.insert(key(n), vec![n as u8], 1, CacheClass::Graph);
        }
        for n in 0..32u32 {
            cache.get(&key(n), &FROZEN);
        }
        let stats = cache.shard_stats();
        assert_eq!(stats.len(), ShardedCache::SHARDS);
        assert_eq!(stats.iter().map(|s| s.hits).sum::<u64>(), cache.hits());
        assert_eq!(stats.iter().map(|s| s.misses).sum::<u64>(), cache.misses());
        let evictions: u64 = stats.iter().map(|s| s.evictions).sum();
        assert!(
            evictions >= 32 - ShardedCache::SHARDS as u64,
            "32 inserts into {} one-entry shards must evict, saw {evictions}",
            ShardedCache::SHARDS
        );
        // Stale reaps count as evictions too: every surviving Graph entry
        // dies at its next lookup under a raised floor.
        let survivors = cache.len() as u64;
        let floors = CacheFloors { snapshot: 0, graph: 2 };
        for n in 0..32u32 {
            assert_eq!(cache.get(&key(n), &floors), None);
        }
        let after: u64 = cache.shard_stats().iter().map(|s| s.evictions).sum();
        assert_eq!(after, evictions + survivors);
    }

    #[test]
    fn concurrent_mixed_load_is_consistent() {
        use std::sync::Arc;
        let cache = Arc::new(ShardedCache::new(64));
        std::thread::scope(|s| {
            for t in 0..4 {
                let cache = Arc::clone(&cache);
                s.spawn(move || {
                    for i in 0..1000u32 {
                        let k = key(i % 97);
                        if let Some(v) = cache.get(&k, &FROZEN) {
                            // A hit must return what some thread inserted
                            // for this key.
                            assert_eq!(&*v, &k[..], "thread {t}");
                        } else {
                            cache.insert(k.clone(), k, 0, CacheClass::Graph);
                        }
                    }
                });
            }
        });
        assert!(cache.len() <= 64 + ShardedCache::SHARDS);
        assert!(cache.hits() + cache.misses() >= 4000);
    }
}

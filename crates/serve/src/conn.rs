//! Per-connection deadline bookkeeping, shared by the threaded and
//! event-driven serve loops.
//!
//! Both loops measure peer silence in *ticks* of [`TICK`] (25 ms): the
//! threaded path literally sleeps that long in its idle read timeout and
//! counts wakeups, while the event loop advances a timer wheel every
//! [`TICK`] and computes how many ticks a connection has been idle. A
//! [`Deadline`] holds the count and the two limits:
//!
//! * **keep-alive** ([`KEEP_ALIVE_TICKS`], ~60 s): how long a connection
//!   may sit with *no* frame started before it is closed. Without it,
//!   idle-but-open clients would pin threaded workers (and accumulate
//!   event-loop state) forever.
//! * **mid-frame stall** ([`STALLED_READ_TICKS`], ~30 s): how long a
//!   *started* frame may sit without a new byte before the connection is
//!   abandoned with a typed error. A half-received request was never
//!   being processed, so dropping it loses nothing that was promised.
//!
//! Any byte of progress resets the count ([`Deadline::progress`]), so a
//! slow-but-live peer (one byte per tick) never expires — the deadline
//! bounds *silence*, not total transfer time.

use std::time::Duration;

/// One deadline tick: the threaded loop's idle read timeout and the event
/// loop's timer-wheel granularity.
pub const TICK: Duration = Duration::from_millis(25);

/// How many consecutive idle ticks a *started* frame may sit stalled
/// before the connection is given up on ([`TICK`] apart, so this is a
/// ~30-second mid-frame read deadline).
pub const STALLED_READ_TICKS: u32 = 1200;

/// How many consecutive idle ticks a connection may sit with *no* frame
/// started before it is closed (~60 seconds) — the keep-alive timeout.
pub const KEEP_ALIVE_TICKS: u32 = 2400;

/// What one deadline check concluded.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DeadlineVerdict {
    /// Neither limit reached; keep waiting.
    Wait,
    /// The idle keep-alive limit expired with no frame started: close the
    /// connection cleanly (nothing was promised).
    KeepAliveExpired,
    /// A started frame stalled past the read deadline: abandon the
    /// connection with a typed error.
    MidFrameStalled,
}

/// Idle-tick bookkeeping for one connection.
///
/// The threaded read loop calls [`Deadline::tick`] once per idle poll
/// wakeup; the event loop, which batches time in a timer wheel, instead
/// calls [`Deadline::advance_to`] with the ticks elapsed since the
/// connection's last activity. Both share the same limits, so the two
/// serve loops expire peers at exactly the same boundary heights.
#[derive(Debug, Clone, Copy)]
pub struct Deadline {
    idle: u32,
    stalled_limit: u32,
    keep_alive_limit: u32,
}

impl Default for Deadline {
    fn default() -> Deadline {
        Deadline::new()
    }
}

impl Deadline {
    /// A deadline with the standard limits ([`STALLED_READ_TICKS`],
    /// [`KEEP_ALIVE_TICKS`]).
    pub fn new() -> Deadline {
        Deadline::with_limits(STALLED_READ_TICKS, KEEP_ALIVE_TICKS)
    }

    /// A deadline with custom limits (both in ticks, both must be
    /// positive) — the event server exposes these so tests can observe
    /// expiry without waiting out the production timeouts.
    pub fn with_limits(stalled_limit: u32, keep_alive_limit: u32) -> Deadline {
        assert!(stalled_limit > 0 && keep_alive_limit > 0, "deadline limits must be positive");
        Deadline { idle: 0, stalled_limit, keep_alive_limit }
    }

    /// Records progress (bytes arrived): the idle count restarts from
    /// zero, so the limits bound silence, not total transfer time.
    pub fn progress(&mut self) {
        self.idle = 0;
    }

    /// Counts one idle tick and checks the applicable limit. `mid_frame`
    /// selects the clock: true once any byte of the current frame has
    /// arrived, false while the connection waits for a frame to start.
    pub fn tick(&mut self, mid_frame: bool) -> DeadlineVerdict {
        self.advance_to(self.idle.saturating_add(1), mid_frame)
    }

    /// Sets the idle count to `idle_ticks` (the event loop computes it
    /// from its tick counter and the connection's last-activity tick) and
    /// checks the applicable limit.
    pub fn advance_to(&mut self, idle_ticks: u32, mid_frame: bool) -> DeadlineVerdict {
        self.idle = idle_ticks;
        if mid_frame {
            if self.idle >= self.stalled_limit {
                return DeadlineVerdict::MidFrameStalled;
            }
        } else if self.idle >= self.keep_alive_limit {
            return DeadlineVerdict::KeepAliveExpired;
        }
        DeadlineVerdict::Wait
    }

    /// The current idle-tick count.
    pub fn idle_ticks(&self) -> u32 {
        self.idle
    }

    /// Ticks until the applicable limit would expire — what the event
    /// loop uses to schedule the connection's next timer-wheel check.
    pub fn remaining_ticks(&self, mid_frame: bool) -> u32 {
        let limit = if mid_frame { self.stalled_limit } else { self.keep_alive_limit };
        limit.saturating_sub(self.idle).max(1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mid_frame_stall_expires_at_exactly_the_boundary() {
        // The threaded loop's historical behavior: 1199 idle polls wait,
        // the 1200th gives up — these heights are load-bearing for both
        // serve paths, so they are pinned here.
        let mut d = Deadline::new();
        for _ in 0..STALLED_READ_TICKS - 1 {
            assert_eq!(d.tick(true), DeadlineVerdict::Wait);
        }
        assert_eq!(d.idle_ticks(), STALLED_READ_TICKS - 1);
        assert_eq!(d.tick(true), DeadlineVerdict::MidFrameStalled);
    }

    #[test]
    fn keep_alive_expires_at_exactly_the_boundary() {
        let mut d = Deadline::new();
        for _ in 0..KEEP_ALIVE_TICKS - 1 {
            assert_eq!(d.tick(false), DeadlineVerdict::Wait);
        }
        assert_eq!(d.tick(false), DeadlineVerdict::KeepAliveExpired);
    }

    #[test]
    fn a_started_frame_switches_clocks_without_resetting_the_count() {
        // 1200 idle ticks have passed; the keep-alive clock would wait
        // another 1200, but the moment a frame starts the (already
        // exceeded) stall clock applies.
        let mut d = Deadline::new();
        for _ in 0..STALLED_READ_TICKS {
            assert_eq!(d.tick(false), DeadlineVerdict::Wait);
        }
        assert_eq!(d.tick(true), DeadlineVerdict::MidFrameStalled);
    }

    #[test]
    fn progress_resets_both_clocks() {
        let mut d = Deadline::new();
        for _ in 0..STALLED_READ_TICKS - 1 {
            d.tick(true);
        }
        d.progress();
        assert_eq!(d.idle_ticks(), 0);
        // A slow-loris peer delivering one byte per tick never expires.
        for _ in 0..3 * STALLED_READ_TICKS {
            assert_eq!(d.tick(true), DeadlineVerdict::Wait);
            d.progress();
        }
    }

    #[test]
    fn advance_to_matches_tick_at_the_boundaries() {
        let mut ticked = Deadline::new();
        let mut jumped = Deadline::new();
        for _ in 0..KEEP_ALIVE_TICKS - 1 {
            ticked.tick(false);
        }
        assert_eq!(
            jumped.advance_to(KEEP_ALIVE_TICKS - 1, false),
            DeadlineVerdict::Wait
        );
        assert_eq!(ticked.tick(false), jumped.advance_to(KEEP_ALIVE_TICKS, false));
        let mut d = Deadline::new();
        assert_eq!(d.advance_to(STALLED_READ_TICKS, true), DeadlineVerdict::MidFrameStalled);
    }

    #[test]
    fn custom_limits_apply_and_remaining_reports_the_gap() {
        let mut d = Deadline::with_limits(4, 8);
        assert_eq!(d.remaining_ticks(true), 4);
        assert_eq!(d.remaining_ticks(false), 8);
        assert_eq!(d.advance_to(3, true), DeadlineVerdict::Wait);
        assert_eq!(d.remaining_ticks(true), 1);
        assert_eq!(d.tick(true), DeadlineVerdict::MidFrameStalled);
        let mut d = Deadline::with_limits(4, 8);
        for _ in 0..7 {
            assert_eq!(d.tick(false), DeadlineVerdict::Wait);
        }
        assert_eq!(d.tick(false), DeadlineVerdict::KeepAliveExpired);
        // Remaining never reports zero: an expired deadline still gets a
        // wheel slot so the verdict is delivered.
        assert_eq!(d.remaining_ticks(false), 1);
    }
}

//! The event-driven serve loop: one readiness thread multiplexing every
//! connection, the same worker pool answering requests.
//!
//! # Why a second loop
//!
//! The threaded server ([`crate::server`]) pins one connection to one
//! worker until it closes, so `workers` idle keep-alive clients starve
//! everyone queued behind them. An explorer-style workload is the
//! opposite shape: thousands of mostly-idle connections with occasional
//! bursts of pipelined requests. This module serves that shape with a
//! fixed thread count: a single loop thread owns **all** connection I/O
//! through the crate's thin `poll(2)` shim, and decoded requests are
//! handed to the worker pool over a bounded queue.
//!
//! ```text
//!            ┌────────────────────── loop thread ──────────────────────┐
//!            │ poll([listener, waker, conn…]) ── readiness             │
//!  accept ──▶│  listener readable → accept (cap-shed with Busy frame)  │
//!   bytes ──▶│  conn readable     → read_buf → parse_frame_prefix ──┐  │
//!            │  conn writable     → flush write_buf                 │  │
//!            │  tick (25 ms)      → timer wheel → Deadline verdicts │  │
//!            └──────────────▲───────────────────────────────────────┼──┘
//!                           │ completions (seq-ordered)             │ jobs
//!                           │   + waker byte                 bounded queue
//!                         ┌─┴─────────── worker pool ──────────────▼──┐
//!                         │ process_request(core, payload, version)   │
//!                         └───────────────────────────────────────────┘
//! ```
//!
//! # Pipelining and ordering
//!
//! A connection may have up to `max_pipelined` requests in flight;
//! workers answer them in any order, but responses are written back in
//! request order — each parsed frame gets a sequence number, completed
//! frames wait in a per-connection reorder map, and only the next
//! expected sequence is appended to the write buffer. The response byte
//! stream is therefore exactly what the threaded server would have
//! produced serving the same frames one at a time: both loops answer
//! through the shared [`crate::server`] request core.
//!
//! # Budgets and backpressure
//!
//! | pressure point            | budget                      | reaction                            |
//! |---------------------------|-----------------------------|-------------------------------------|
//! | open connections          | `max_connections`           | accept, answer typed `Busy`, close  |
//! | pipelined requests / conn | `max_pipelined`             | typed `Busy` at the offender, close |
//! | buffered bytes / conn     | `max_buffered`              | stop polling that socket readable   |
//! | dispatch queue            | `queue_depth`               | stop polling *all* sockets readable |
//! | idle connection           | keep-alive ticks (~60 s)    | close silently                      |
//! | stalled partial frame     | mid-frame ticks (~30 s)     | typed error frame, close            |
//!
//! Backpressure is admission control, not buffering: when the dispatch
//! queue is full the loop simply stops asking `poll` about readable data,
//! which leaves bytes in kernel socket buffers and ultimately closes the
//! TCP window — bounded memory no matter how many peers push.
//!
//! Deadlines ride the shared [`Deadline`] bookkeeping on a timer wheel
//! (25 ms slots): instead of one blocking read-with-timeout per thread,
//! each connection schedules its next check `remaining_ticks` ahead and
//! is re-examined only then — idle connections cost one wheel visit per
//! deadline period, not a thread.
//!
//! Everything else — epoch-pinned artifact generations per request, the
//! epoch-stamped response cache, v1/v2 negotiation, hot-swap publishes
//! via [`Publisher`], draining shutdown — is inherited from the shared
//! core, so a [`LivePipeline`](crate::live::LivePipeline) drives this
//! server exactly as it drives the threaded one.

use crate::conn::{Deadline, DeadlineVerdict, KEEP_ALIVE_TICKS, STALLED_READ_TICKS, TICK};
use crate::protocol::{
    parse_frame_prefix, FramePrefix, ServeError, ServerStats, MAX_REQUEST_PAYLOAD,
    PROTOCOL_VERSION,
};
use crate::server::{
    framing_error_frame, process_request, stalled_read_error, Core, MetricsHandle, Publisher,
    ServeArtifacts, ServeConfig,
};
use crate::sys::{self, PollFd, POLLIN, POLLOUT};
use fistful_flow::graph::TaintScratch;
use std::collections::{BTreeMap, VecDeque};
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::os::fd::AsRawFd;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::Instant;

/// How many ticks a closing connection's FIN-drain may run before the
/// socket is dropped — the event-loop twin of the threaded server's
/// 8-round graceful close.
const DRAIN_TICKS: u64 = 8;

/// Timer-wheel size in slots (of [`TICK`] each). Deadlines longer than
/// the wheel simply re-arm when their slot fires early.
const WHEEL_SLOTS: usize = 256;

/// Event-server configuration: the request-serving knobs of
/// [`ServeConfig`] plus the per-connection budgets the readiness loop
/// enforces.
#[derive(Debug, Clone)]
pub struct EventServeConfig {
    /// Address to bind, e.g. `"127.0.0.1:0"` for an ephemeral port.
    pub addr: String,
    /// Worker threads answering requests. `0` means one per core.
    pub workers: usize,
    /// Total response-cache entries across all shards; `0` disables the
    /// cache.
    pub cache_entries: usize,
    /// Server-side ceiling on a taint request's `max_txs` walk bound.
    pub max_taint_txs: usize,
    /// Open-connection cap: accepts beyond it are answered with a typed
    /// `Busy` error frame and closed.
    pub max_connections: usize,
    /// Most requests one connection may have in flight; the request that
    /// exceeds it is answered with a typed `Busy` error and the
    /// connection closes (after every in-budget response is delivered).
    pub max_pipelined: usize,
    /// Most bytes one connection may hold buffered (unparsed input plus
    /// unflushed output) before the loop stops polling it readable.
    pub max_buffered: usize,
    /// Dispatch-queue capacity. A full queue stops *all* readable
    /// polling — admission control instead of unbounded buffering.
    pub queue_depth: usize,
    /// Mid-frame stall deadline in ticks (default
    /// [`STALLED_READ_TICKS`]); tests shrink it to observe expiry fast.
    pub stalled_ticks: u32,
    /// Idle keep-alive deadline in ticks (default [`KEEP_ALIVE_TICKS`]).
    pub keep_alive_ticks: u32,
}

impl Default for EventServeConfig {
    fn default() -> EventServeConfig {
        EventServeConfig {
            addr: "127.0.0.1:0".to_string(),
            workers: 0,
            cache_entries: 4096,
            max_taint_txs: 5_000,
            max_connections: 4096,
            max_pipelined: 64,
            max_buffered: 1 << 20,
            queue_depth: 1024,
            stalled_ticks: STALLED_READ_TICKS,
            keep_alive_ticks: KEEP_ALIVE_TICKS,
        }
    }
}

impl From<ServeConfig> for EventServeConfig {
    /// The event-loop counterpart of a threaded-server configuration:
    /// same address, workers, cache, and taint ceiling; default budgets.
    fn from(c: ServeConfig) -> EventServeConfig {
        EventServeConfig {
            addr: c.addr,
            workers: c.workers,
            cache_entries: c.cache_entries,
            max_taint_txs: c.max_taint_txs,
            ..EventServeConfig::default()
        }
    }
}

/// One decoded request on its way to the worker pool.
struct Job {
    conn: usize,
    gen: u64,
    seq: u64,
    version: u8,
    payload: Vec<u8>,
    /// When the frame finished parsing — dispatch-queue wait time is
    /// measured from here to the worker's pop.
    queued: Instant,
}

/// One answered request on its way back to the loop thread.
struct Completion {
    conn: usize,
    gen: u64,
    seq: u64,
    framed: Vec<u8>,
    close_after: bool,
}

/// The bounded queue between the loop thread and the worker pool, plus
/// the completion mailbox travelling the other way.
struct Dispatch {
    jobs: Mutex<VecDeque<Job>>,
    available: Condvar,
    /// Set by the loop thread on exit; workers drain the queue, then stop.
    finished: AtomicBool,
    done: Mutex<Vec<Completion>>,
}

impl Dispatch {
    fn new() -> Dispatch {
        Dispatch {
            jobs: Mutex::new(VecDeque::new()),
            available: Condvar::new(),
            finished: AtomicBool::new(false),
            done: Mutex::new(Vec::new()),
        }
    }
}

/// One worker: pop decoded requests, answer through the shared core,
/// post the framed response back, poke the waker.
fn event_worker_loop(core: &Core, dispatch: &Dispatch, waker: &TcpStream) {
    let mut scratch = TaintScratch::for_graph(&core.current().artifacts.graph);
    loop {
        let job = {
            let mut jobs = dispatch.jobs.lock().expect("jobs poisoned");
            loop {
                if let Some(job) = jobs.pop_front() {
                    break Some(job);
                }
                if dispatch.finished.load(Ordering::SeqCst) {
                    break None;
                }
                jobs = dispatch.available.wait_timeout(jobs, TICK).expect("jobs poisoned").0;
            }
        };
        let Some(job) = job else { return };
        core.metrics.dispatch_wait.observe(job.queued.elapsed());
        let (framed, close_after) = process_request(core, job.payload, job.version, &mut scratch);
        dispatch.done.lock().expect("done poisoned").push(Completion {
            conn: job.conn,
            gen: job.gen,
            seq: job.seq,
            framed,
            close_after,
        });
        // Wake the loop thread out of poll(). A full pipe already wakes
        // it, so a failed nonblocking write is not a lost wakeup.
        let _ = (&mut { waker }).write(&[1u8]);
    }
}

/// Per-connection state owned by the loop thread.
struct Conn {
    stream: TcpStream,
    /// Generation stamp: jobs and completions carry it so answers for a
    /// closed connection can never reach a successor reusing its slot.
    gen: u64,
    /// Unparsed request bytes; `read_pos` marks how much the frame
    /// scanner has consumed (compacted after each parse pass).
    read_buf: Vec<u8>,
    read_pos: usize,
    /// Unflushed response bytes; `write_pos` marks how much the socket
    /// has taken.
    write_buf: Vec<u8>,
    write_pos: usize,
    /// The protocol version of the last parsed request — errors and
    /// responses are framed in kind (initially the current version).
    version: u8,
    /// Next sequence number to assign to a parsed request.
    next_seq: u64,
    /// The sequence whose response is next in line for the write buffer.
    next_write: u64,
    /// Parsed requests not yet promoted into the write buffer.
    outstanding: usize,
    /// Parsed but undispatched jobs, waiting for dispatch-queue space.
    held: VecDeque<Job>,
    /// Completed responses that arrived ahead of their turn.
    ready: BTreeMap<u64, (Vec<u8>, bool)>,
    deadline: Deadline,
    /// Loop tick of the last byte of socket progress (either direction).
    last_activity: u64,
    /// No more requests will be parsed (EOF, error queued, or shutdown).
    read_closed: bool,
    /// The peer half-closed (FIN seen); owed responses still go out.
    peer_eof: bool,
    /// Close once every owed response is flushed.
    close_when_flushed: bool,
    /// A close-after response was promoted: later pipelined requests are
    /// abandoned, exactly like the threaded loop closing mid-pipeline.
    closing: bool,
    /// FIN sent; discarding peer bytes until clean close or budget.
    draining: bool,
    drain_started: u64,
    drained: usize,
    /// The tick of this connection's *live* wheel entry: entries that
    /// fire at any other tick are superseded leftovers and are skipped
    /// without re-arming (the wheel cannot cancel, so re-arming earlier
    /// just strands the old entry).
    next_fire: u64,
}

impl Conn {
    fn new(stream: TcpStream, gen: u64, now: u64, cfg: &EventServeConfig) -> Conn {
        Conn {
            stream,
            gen,
            read_buf: Vec::new(),
            read_pos: 0,
            write_buf: Vec::new(),
            write_pos: 0,
            version: PROTOCOL_VERSION,
            next_seq: 0,
            next_write: 0,
            outstanding: 0,
            held: VecDeque::new(),
            ready: BTreeMap::new(),
            deadline: Deadline::with_limits(
                cfg.stalled_ticks.max(1),
                cfg.keep_alive_ticks.max(1),
            ),
            last_activity: now,
            read_closed: false,
            peer_eof: false,
            close_when_flushed: false,
            closing: false,
            draining: false,
            drain_started: 0,
            drained: 0,
            next_fire: 0,
        }
    }

    fn write_pending(&self) -> bool {
        self.write_pos < self.write_buf.len()
    }

    fn buffered(&self) -> usize {
        (self.read_buf.len() - self.read_pos) + (self.write_buf.len() - self.write_pos)
    }

    /// Fully settled: nothing owed in either direction.
    fn settled(&self) -> bool {
        !self.write_pending()
            && self.outstanding == 0
            && self.held.is_empty()
            && self.ready.is_empty()
    }
}

/// The hashed-by-time expiry structure: each slot holds the connections
/// whose next deadline check lands on that tick. Entries are lazy — a
/// fired entry re-arms from the connection's *current* deadline state, so
/// progress never has to unschedule anything.
struct Wheel {
    slots: Vec<Vec<(usize, u64)>>,
    cursor: usize,
}

impl Wheel {
    fn new() -> Wheel {
        Wheel { slots: (0..WHEEL_SLOTS).map(|_| Vec::new()).collect(), cursor: 0 }
    }

    fn schedule(&mut self, ticks_ahead: u32, conn: usize, gen: u64) {
        let ahead = (ticks_ahead.max(1) as usize).min(WHEEL_SLOTS - 1);
        let slot = (self.cursor + ahead) % WHEEL_SLOTS;
        self.slots[slot].push((conn, gen));
    }

    fn advance(&mut self) -> Vec<(usize, u64)> {
        self.cursor = (self.cursor + 1) % WHEEL_SLOTS;
        std::mem::take(&mut self.slots[self.cursor])
    }
}

/// Which poll-set entry a readiness bit belongs to.
enum Token {
    Waker,
    Listener,
    Conn(usize),
}

struct EventLoop {
    core: Arc<Core>,
    dispatch: Arc<Dispatch>,
    cfg: EventServeConfig,
    listener: Option<TcpListener>,
    waker_rx: TcpStream,
    conns: Vec<Option<Conn>>,
    free: Vec<usize>,
    active: usize,
    next_gen: u64,
    wheel: Wheel,
    tick: u64,
    shutting_down: bool,
    scratch: Vec<u8>,
}

impl EventLoop {
    fn run(mut self) {
        let started = Instant::now();
        let mut fds: Vec<PollFd> = Vec::new();
        let mut tokens: Vec<Token> = Vec::new();
        loop {
            if self.core.shutdown_requested() && !self.shutting_down {
                self.begin_shutdown();
            }
            if self.shutting_down && self.active == 0 {
                break;
            }

            fds.clear();
            tokens.clear();
            fds.push(PollFd::new(self.waker_rx.as_raw_fd(), POLLIN));
            tokens.push(Token::Waker);
            if let Some(listener) = &self.listener {
                fds.push(PollFd::new(listener.as_raw_fd(), POLLIN));
                tokens.push(Token::Listener);
            }
            let depth = self.dispatch.jobs.lock().expect("jobs poisoned").len();
            self.core.metrics.queue_depth.set(depth as u64);
            let backpressure = depth >= self.cfg.queue_depth;
            if backpressure {
                self.core.metrics.backpressure_stalls.inc();
            }
            for (idx, slot) in self.conns.iter().enumerate() {
                let Some(conn) = slot else { continue };
                let mut events = 0;
                // Draining connections always read (discarding toward
                // FIN); live ones read only while under every budget.
                let wants_read = conn.draining
                    || (!conn.read_closed
                        && !backpressure
                        && conn.held.is_empty()
                        && conn.outstanding < self.cfg.max_pipelined
                        && conn.buffered() < self.cfg.max_buffered);
                if wants_read {
                    events |= POLLIN;
                }
                if conn.write_pending() {
                    events |= POLLOUT;
                }
                if events != 0 {
                    fds.push(PollFd::new(conn.stream.as_raw_fd(), events));
                    tokens.push(Token::Conn(idx));
                }
            }

            // Sleep at most to the next tick boundary so the timer wheel
            // keeps 25 ms granularity whatever the socket activity.
            let elapsed_ms = started.elapsed().as_millis() as u64;
            let tick_ms = TICK.as_millis() as u64;
            let next_tick_ms = (self.tick + 1) * tick_ms;
            let timeout_ms = next_tick_ms.saturating_sub(elapsed_ms).min(tick_ms) as i32;
            if sys::poll_fds(&mut fds, timeout_ms).is_err() {
                // A failing poll (it should never) must not spin the CPU.
                std::thread::sleep(TICK);
            }

            let now_ticks = started.elapsed().as_millis() as u64 / tick_ms;
            while self.tick < now_ticks {
                self.tick += 1;
                for (idx, gen) in self.wheel.advance() {
                    self.check_deadline(idx, gen);
                }
            }

            for (i, token) in tokens.iter().enumerate() {
                match token {
                    Token::Waker => {
                        if fds[i].readable() {
                            // Coalesce however many wake bytes piled up.
                            let mut sink = [0u8; 64];
                            while matches!(self.waker_rx.read(&mut sink), Ok(n) if n > 0) {}
                        }
                    }
                    Token::Listener => {
                        if fds[i].readable() {
                            self.accept_ready();
                        }
                    }
                    Token::Conn(idx) => {
                        let idx = *idx;
                        if fds[i].readable() {
                            self.conn_readable(idx);
                        }
                        if fds[i].writable() {
                            self.pump_write(idx);
                        }
                    }
                }
            }

            self.apply_completions();
            self.dispatch_held();
        }
        // Loop is done: let workers drain the remaining queue and stop.
        self.dispatch.finished.store(true, Ordering::SeqCst);
        self.dispatch.available.notify_all();
    }

    /// Installs an accepted socket into the slab and arms its keep-alive.
    fn install(&mut self, stream: TcpStream) -> usize {
        let gen = self.next_gen;
        self.next_gen += 1;
        let conn = Conn::new(stream, gen, self.tick, &self.cfg);
        let remaining = conn.deadline.remaining_ticks(false);
        let idx = match self.free.pop() {
            Some(idx) => {
                self.conns[idx] = Some(conn);
                idx
            }
            None => {
                self.conns.push(Some(conn));
                self.conns.len() - 1
            }
        };
        self.active += 1;
        self.core.metrics.connections.inc();
        self.arm(idx, remaining);
        idx
    }

    /// Schedules the connection's next deadline check `ticks_ahead` out
    /// and records it as the live entry (see [`Conn::next_fire`]). The
    /// wheel clamps long horizons to its span; a clamped check simply
    /// observes nothing due and re-arms.
    fn arm(&mut self, idx: usize, ticks_ahead: u32) {
        let ahead = (ticks_ahead.max(1) as usize).min(WHEEL_SLOTS - 1);
        let Some(conn) = self.conns[idx].as_mut() else { return };
        conn.next_fire = self.tick + ahead as u64;
        let gen = conn.gen;
        self.wheel.schedule(ahead as u32, idx, gen);
    }

    fn drop_conn(&mut self, idx: usize) {
        if self.conns[idx].take().is_some() {
            self.free.push(idx);
            self.active -= 1;
            self.core.metrics.connections.dec();
        }
    }

    /// Accepts until the backlog is empty. Beyond the connection cap the
    /// socket is still accepted — leaving it in the backlog would just
    /// hide the pressure — but is answered with a typed `Busy` frame and
    /// closed instead of being served.
    fn accept_ready(&mut self) {
        loop {
            let Some(listener) = &self.listener else { return };
            match listener.accept() {
                Ok((stream, _)) => {
                    let _ = stream.set_nonblocking(true);
                    let _ = stream.set_nodelay(true);
                    let shed = self.active >= self.cfg.max_connections;
                    let idx = self.install(stream);
                    if shed {
                        self.core.metrics.busy_sheds.inc();
                        let e = ServeError::Busy(format!(
                            "connection limit of {} reached; retry later",
                            self.cfg.max_connections
                        ));
                        self.queue_error(idx, e);
                        self.pump_write(idx);
                    }
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => return,
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
                Err(_) => return,
            }
        }
    }

    /// Queues a typed error frame at the tail of the response order and
    /// stops parsing; the connection closes once it is delivered.
    fn queue_error(&mut self, idx: usize, e: ServeError) {
        let framed = {
            let Some(conn) = self.conns[idx].as_ref() else { return };
            framing_error_frame(&self.core, &e, conn.version)
        };
        let Some(conn) = self.conns[idx].as_mut() else { return };
        let seq = conn.next_seq;
        conn.next_seq += 1;
        conn.outstanding += 1;
        conn.ready.insert(seq, (framed, true));
        conn.read_closed = true;
    }

    /// Handles a readable connection: one bounded read, then the frame
    /// scanner, then dispatch.
    fn conn_readable(&mut self, idx: usize) {
        {
            let Some(conn) = self.conns[idx].as_mut() else { return };
            if conn.draining {
                // FIN already sent: discard whatever the peer still had in
                // flight, bounded in bytes here and in ticks by the wheel.
                loop {
                    match conn.stream.read(&mut self.scratch) {
                        Ok(0) => {
                            self.drop_conn(idx);
                            return;
                        }
                        Ok(n) => {
                            conn.drained += n;
                            if conn.drained > MAX_REQUEST_PAYLOAD as usize {
                                self.drop_conn(idx);
                                return;
                            }
                        }
                        Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => return,
                        Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
                        Err(_) => {
                            self.drop_conn(idx);
                            return;
                        }
                    }
                }
            }
            if conn.read_closed {
                return;
            }
            match conn.stream.read(&mut self.scratch) {
                Ok(0) => conn.peer_eof = true,
                Ok(n) => {
                    conn.read_buf.extend_from_slice(&self.scratch[..n]);
                    conn.last_activity = self.tick;
                    conn.deadline.progress();
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => return,
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => return,
                Err(_) => {
                    self.drop_conn(idx);
                    return;
                }
            }
        }
        self.parse_frames(idx);
    }

    /// Runs the frame scanner over the unparsed bytes, enforcing the
    /// pipelining budget, and queues the resulting jobs.
    fn parse_frames(&mut self, idx: usize) {
        let max_pipelined = self.cfg.max_pipelined;
        let mut jobs: Vec<Job> = Vec::new();
        let mut error: Option<ServeError> = None;
        {
            let Some(conn) = self.conns[idx].as_mut() else { return };
            loop {
                if conn.read_closed || conn.closing {
                    break;
                }
                match parse_frame_prefix(&conn.read_buf[conn.read_pos..], MAX_REQUEST_PAYLOAD) {
                    Ok(FramePrefix::Incomplete { .. }) => break,
                    Ok(FramePrefix::Complete { version, payload, consumed }) => {
                        if conn.outstanding + jobs.len() >= max_pipelined {
                            // The offending request is rejected with a
                            // typed error *after* every in-budget response.
                            self.core.metrics.busy_sheds.inc();
                            error = Some(ServeError::Busy(format!(
                                "pipelined request limit of {max_pipelined} exceeded"
                            )));
                            break;
                        }
                        conn.read_pos += consumed;
                        conn.version = version;
                        let seq = conn.next_seq;
                        conn.next_seq += 1;
                        jobs.push(Job {
                            conn: idx,
                            gen: conn.gen,
                            seq,
                            version,
                            payload,
                            queued: Instant::now(),
                        });
                    }
                    Err(e) => {
                        error = Some(e);
                        break;
                    }
                }
            }
            conn.outstanding += jobs.len();
            if conn.read_pos > 0 {
                conn.read_buf.drain(..conn.read_pos);
                conn.read_pos = 0;
            }
            if error.is_some() {
                // The stream cannot be resynced after a framing error (or
                // budget rejection); whatever else was buffered is dead.
                conn.read_buf.clear();
            } else if conn.peer_eof && !conn.read_closed {
                if conn.read_buf.is_empty() {
                    // Clean half-close: the peer FIN'd at a frame
                    // boundary; deliver every owed response, then close.
                    conn.read_closed = true;
                    conn.close_when_flushed = true;
                } else {
                    // FIN mid-frame: the partial frame can never
                    // complete.
                    error = Some(ServeError::Truncated);
                    conn.read_buf.clear();
                }
            }
        }
        self.enqueue_jobs(idx, jobs);
        if let Some(e) = error {
            self.queue_error(idx, e);
        }
        self.pump_write(idx);
        // A partial frame is now on the clock: the live wheel entry may
        // be armed for the (much longer) keep-alive horizon, so bring the
        // next check forward to the mid-frame deadline.
        let mid_frame_check = self.conns[idx].as_ref().and_then(|c| {
            (!c.draining && !c.read_closed && !c.read_buf.is_empty())
                .then(|| c.deadline.remaining_ticks(true))
        });
        if let Some(ticks) = mid_frame_check {
            self.arm(idx, ticks);
        }
    }

    /// Pushes jobs into the dispatch queue up to its depth; the rest wait
    /// on the connection (which then stops being polled readable).
    fn enqueue_jobs(&mut self, idx: usize, jobs: Vec<Job>) {
        if jobs.is_empty() {
            return;
        }
        let mut overflow: VecDeque<Job> = VecDeque::new();
        {
            let held_already = self.conns[idx].as_ref().is_some_and(|c| !c.held.is_empty());
            let mut queue = self.dispatch.jobs.lock().expect("jobs poisoned");
            for job in jobs {
                // Jobs behind an already-held one must stay behind it
                // (order!), and a full queue holds too — unless shutdown
                // is force-draining everything.
                let hold = held_already
                    || (!self.shutting_down && queue.len() >= self.cfg.queue_depth);
                if hold {
                    overflow.push_back(job);
                } else {
                    queue.push_back(job);
                    self.dispatch.available.notify_one();
                }
            }
        }
        if !overflow.is_empty() {
            if let Some(conn) = self.conns[idx].as_mut() {
                conn.held.append(&mut overflow);
            }
        }
    }

    /// Moves held jobs into the dispatch queue as space frees up.
    fn dispatch_held(&mut self) {
        let depth = self.cfg.queue_depth;
        let mut queue = self.dispatch.jobs.lock().expect("jobs poisoned");
        for slot in self.conns.iter_mut() {
            if queue.len() >= depth {
                return;
            }
            let Some(conn) = slot else { continue };
            while !conn.held.is_empty() && queue.len() < depth {
                queue.push_back(conn.held.pop_front().expect("nonempty"));
                self.dispatch.available.notify_one();
            }
        }
    }

    /// Collects worker completions into each connection's reorder map and
    /// flushes whatever became promotable.
    fn apply_completions(&mut self) {
        let done = std::mem::take(&mut *self.dispatch.done.lock().expect("done poisoned"));
        for c in done {
            let landed = match self.conns.get_mut(c.conn).and_then(Option::as_mut) {
                Some(conn) if conn.gen == c.gen && !conn.closing && !conn.draining => {
                    conn.ready.insert(c.seq, (c.framed, c.close_after));
                    true
                }
                _ => false,
            };
            if landed {
                self.pump_write(c.conn);
            }
        }
    }

    /// Promotes in-order completions into the write buffer and writes as
    /// much as the socket takes; closes when a finished connection is
    /// fully flushed.
    fn pump_write(&mut self, idx: usize) {
        let mut dead = false;
        let mut close_now = false;
        {
            let Some(conn) = self.conns[idx].as_mut() else { return };
            if conn.draining {
                return;
            }
            while !conn.closing {
                let Some((framed, close_after)) = conn.ready.remove(&conn.next_write) else {
                    break;
                };
                conn.write_buf.extend_from_slice(&framed);
                conn.next_write += 1;
                conn.outstanding = conn.outstanding.saturating_sub(1);
                if close_after {
                    // Anything pipelined behind this response is
                    // abandoned — the threaded loop closes at exactly the
                    // same point.
                    conn.closing = true;
                    conn.read_closed = true;
                    conn.close_when_flushed = true;
                    conn.held.clear();
                    conn.ready.clear();
                    conn.outstanding = 0;
                    conn.read_buf.clear();
                    conn.read_pos = 0;
                }
            }
            while conn.write_pending() {
                let span = &conn.write_buf[conn.write_pos..];
                match conn.stream.write(span) {
                    Ok(0) => {
                        dead = true;
                        break;
                    }
                    Ok(n) => {
                        conn.write_pos += n;
                        conn.last_activity = self.tick;
                        conn.deadline.progress();
                    }
                    Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => break,
                    Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
                    Err(_) => {
                        dead = true;
                        break;
                    }
                }
            }
            if !dead && !conn.write_pending() {
                conn.write_buf.clear();
                conn.write_pos = 0;
                if conn.close_when_flushed && conn.settled() {
                    close_now = true;
                }
            }
        }
        if dead {
            self.drop_conn(idx);
        } else if close_now {
            self.begin_close(idx);
        }
    }

    /// Ends a connection whose last owed byte has been flushed: if the
    /// peer already FIN'd there is nothing left to say; otherwise
    /// half-close and drain briefly so the final frame is not torn off by
    /// an RST — the event-loop twin of the threaded graceful close.
    fn begin_close(&mut self, idx: usize) {
        let start_drain = {
            let Some(conn) = self.conns[idx].as_mut() else { return };
            if conn.peer_eof {
                false
            } else {
                let _ = conn.stream.shutdown(std::net::Shutdown::Write);
                conn.draining = true;
                conn.drain_started = self.tick;
                conn.drained = 0;
                true
            }
        };
        if start_drain {
            self.arm(idx, 1);
        } else {
            self.drop_conn(idx);
        }
    }

    /// A timer-wheel slot fired for this connection: re-derive the
    /// deadline verdict from its current state and either act or re-arm.
    fn check_deadline(&mut self, idx: usize, gen: u64) {
        enum Action {
            Drop,
            Rearm(u32),
            Stalled,
        }
        let action = {
            let Some(conn) = self.conns.get_mut(idx).and_then(Option::as_mut) else { return };
            if conn.gen != gen || self.tick < conn.next_fire {
                // A different connection reused the slot, or a newer arm
                // superseded this entry — its successor will do the check.
                return;
            }
            if conn.draining {
                let since = self.tick.saturating_sub(conn.drain_started);
                if since >= DRAIN_TICKS {
                    Action::Drop
                } else {
                    Action::Rearm((DRAIN_TICKS - since) as u32)
                }
            } else {
                let idle =
                    u32::try_from(self.tick.saturating_sub(conn.last_activity)).unwrap_or(u32::MAX);
                if conn.write_pending() {
                    // Writes owed and the socket is not taking them: the
                    // stall limit bounds how long we hold the buffers.
                    if idle >= self.cfg.stalled_ticks.max(1) {
                        self.core.metrics.stall_expirations.inc();
                        Action::Drop
                    } else {
                        Action::Rearm(self.cfg.stalled_ticks.max(1) - idle)
                    }
                } else if conn.outstanding > 0 || !conn.held.is_empty() {
                    // Requests are in flight at the workers (or awaiting
                    // dispatch); the peer owes us nothing, so the clocks
                    // do not run against it.
                    conn.last_activity = self.tick;
                    conn.deadline.progress();
                    Action::Rearm(conn.deadline.remaining_ticks(false))
                } else {
                    let mid_frame = !conn.read_buf.is_empty();
                    match conn.deadline.advance_to(idle, mid_frame) {
                        DeadlineVerdict::Wait => {
                            Action::Rearm(conn.deadline.remaining_ticks(mid_frame))
                        }
                        DeadlineVerdict::KeepAliveExpired => {
                            self.core.metrics.idle_expirations.inc();
                            Action::Drop
                        }
                        DeadlineVerdict::MidFrameStalled => {
                            self.core.metrics.stall_expirations.inc();
                            conn.read_buf.clear();
                            conn.read_pos = 0;
                            Action::Stalled
                        }
                    }
                }
            }
        };
        match action {
            Action::Drop => self.drop_conn(idx),
            Action::Rearm(ticks) => self.arm(idx, ticks),
            Action::Stalled => {
                self.queue_error(idx, stalled_read_error());
                self.pump_write(idx);
                // Keep watching: the error frame's own delivery is now
                // bounded by the write-stall branch above.
                self.arm(idx, self.cfg.stalled_ticks.max(1));
            }
        }
    }

    /// Begins the draining shutdown: stop accepting, stop reading, answer
    /// everything already parsed, flush, close. Idle connections drop
    /// immediately; the loop exits when the last connection is gone.
    fn begin_shutdown(&mut self) {
        self.shutting_down = true;
        self.listener = None;
        let mut idle = Vec::new();
        for (idx, slot) in self.conns.iter_mut().enumerate() {
            let Some(conn) = slot else { continue };
            if conn.draining {
                continue;
            }
            conn.read_closed = true;
            // Unparsed bytes are requests the server never read; the
            // threaded loop drops those at shutdown too.
            conn.read_buf.clear();
            conn.read_pos = 0;
            if conn.settled() {
                idle.push(idx);
            } else {
                conn.close_when_flushed = true;
            }
        }
        for idx in idle {
            self.drop_conn(idx);
        }
        // Already-parsed requests are in-flight work and must drain:
        // force-dispatch them past the depth limit.
        let mut queue = self.dispatch.jobs.lock().expect("jobs poisoned");
        for slot in self.conns.iter_mut() {
            let Some(conn) = slot else { continue };
            while let Some(job) = conn.held.pop_front() {
                queue.push_back(job);
                self.dispatch.available.notify_one();
            }
        }
        drop(queue);
        self.dispatch.available.notify_all();
    }
}

/// Builds the self-wake channel: a loopback TCP pair whose read side sits
/// in the poll set and whose write side is cloned into every worker.
fn waker_pair() -> std::io::Result<(TcpStream, TcpStream)> {
    let listener = TcpListener::bind("127.0.0.1:0")?;
    let tx = TcpStream::connect(listener.local_addr()?)?;
    let (rx, _) = listener.accept()?;
    tx.set_nonblocking(true)?;
    tx.set_nodelay(true)?;
    rx.set_nonblocking(true)?;
    Ok((tx, rx))
}

/// A running event-driven query server. Protocol-compatible with
/// [`crate::server::Server`] — same artifacts, same cache, same epochs,
/// same bytes — but multiplexing every connection on one readiness loop.
/// Dropping the handle shuts the server down; call
/// [`EventServer::shutdown`] to do it explicitly and observe completion.
pub struct EventServer {
    core: Arc<Core>,
    local_addr: SocketAddr,
    waker: TcpStream,
    loop_handle: Option<std::thread::JoinHandle<()>>,
    workers: Vec<std::thread::JoinHandle<()>>,
}

impl EventServer {
    /// Binds the listener and spawns the loop thread and worker pool.
    pub fn start(
        config: EventServeConfig,
        artifacts: Arc<ServeArtifacts>,
    ) -> Result<EventServer, ServeError> {
        let listener = TcpListener::bind(&config.addr)?;
        EventServer::start_with_listener(listener, config, artifacts)
    }

    /// Like [`EventServer::start`], but serves on an already-bound
    /// listener (`config.addr` is ignored) — the bind-early path shared
    /// with the threaded server.
    pub fn start_with_listener(
        listener: TcpListener,
        config: EventServeConfig,
        artifacts: Arc<ServeArtifacts>,
    ) -> Result<EventServer, ServeError> {
        if !sys::supported() {
            return Err(ServeError::Io(
                "the event-driven serve loop needs poll(2); use the threaded server".into(),
            ));
        }
        listener.set_nonblocking(true)?;
        let local_addr = listener.local_addr()?;
        let workers = if config.workers == 0 {
            std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1)
        } else {
            config.workers
        };
        let core = Arc::new(Core::new(
            workers as u32,
            config.cache_entries,
            config.max_taint_txs,
            artifacts,
        ));
        let dispatch = Arc::new(Dispatch::new());
        let (waker_tx, waker_rx) = waker_pair()?;

        let worker_handles = (0..workers)
            .map(|_| {
                let core = Arc::clone(&core);
                let dispatch = Arc::clone(&dispatch);
                let waker = waker_tx.try_clone()?;
                Ok(std::thread::spawn(move || event_worker_loop(&core, &dispatch, &waker)))
            })
            .collect::<Result<Vec<_>, std::io::Error>>()?;

        let event_loop = EventLoop {
            core: Arc::clone(&core),
            dispatch,
            cfg: EventServeConfig {
                max_connections: config.max_connections.max(1),
                max_pipelined: config.max_pipelined.max(1),
                max_buffered: config.max_buffered.max(MAX_REQUEST_PAYLOAD as usize),
                queue_depth: config.queue_depth.max(1),
                ..config
            },
            listener: Some(listener),
            waker_rx,
            conns: Vec::new(),
            free: Vec::new(),
            active: 0,
            next_gen: 0,
            wheel: Wheel::new(),
            tick: 0,
            shutting_down: false,
            scratch: vec![0u8; 1 << 16],
        };
        let loop_handle = std::thread::spawn(move || event_loop.run());

        Ok(EventServer {
            core,
            local_addr,
            waker: waker_tx,
            loop_handle: Some(loop_handle),
            workers: worker_handles,
        })
    }

    /// The bound address (useful with an ephemeral port).
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// Current counters and artifact dimensions, without a socket round
    /// trip.
    pub fn stats(&self) -> ServerStats {
        self.core.stats()
    }

    /// A handle for hot-swapping the served artifacts (see
    /// [`Publisher::publish`]) — interchangeable with the threaded
    /// server's, so the live pipeline drives either loop.
    pub fn publisher(&self) -> Publisher {
        Publisher { core: Arc::clone(&self.core) }
    }

    /// A handle over the metrics registry, for scraping this server's
    /// counters without a socket round trip — interchangeable with the
    /// threaded server's, so one exporter serves either engine.
    pub fn metrics_handle(&self) -> MetricsHandle {
        MetricsHandle { core: Arc::clone(&self.core) }
    }

    /// Signals shutdown, drains in-flight requests (parsed requests are
    /// answered and flushed; unparsed bytes are dropped), and joins the
    /// loop and every worker. Idempotent through [`Drop`].
    pub fn shutdown(mut self) {
        self.shutdown_inner();
    }

    fn shutdown_inner(&mut self) {
        self.core.shutdown.store(true, Ordering::SeqCst);
        let _ = (&mut { &self.waker }).write(&[1u8]);
        if let Some(handle) = self.loop_handle.take() {
            let _ = handle.join();
        }
        for worker in self.workers.drain(..) {
            let _ = worker.join();
        }
    }
}

impl Drop for EventServer {
    fn drop(&mut self) {
        self.shutdown_inner();
    }
}

//! The multithreaded TCP query server: one acceptor thread, a fixed
//! worker pool, shared immutable artifacts, and a sharded response cache.
//!
//! # Threading model
//!
//! [`Server::start`] binds a [`TcpListener`] and spawns one acceptor
//! thread plus `workers` worker threads. The acceptor pushes accepted
//! connections onto a condvar-guarded queue; each worker pops a
//! connection and serves it to completion (many requests per connection)
//! before taking the next — a deliberately simple thread-per-active-
//! connection model with a bounded thread count, the std-only shape of a
//! serving tier (no vendored async runtime; see `vendor/README.md` for
//! why the dependency set is closed). Connections that go quiet are
//! closed after a keep-alive timeout (~60 s) and connections that stall
//! mid-frame after a read deadline (~30 s), so silent or half-open peers
//! cannot pin workers and starve the queue.
//!
//! All request handling reads from one [`Arc<ServeArtifacts>`] — the
//! frozen [`ClusterSnapshot`], the columnar [`TxGraph`], the
//! [`ChangeLabels`], and the precomputed balance series are immutable and
//! `Send + Sync`, so workers share them with zero locks. Each worker owns
//! one reusable [`TaintScratch`], so steady-state taint walks allocate
//! nothing beyond their result records — the same memory model as the
//! batch taint engine.
//!
//! # Graceful shutdown
//!
//! [`Server::shutdown`] flips the shutdown flag, wakes the acceptor with
//! a loopback connection, and joins every thread. Workers notice the flag
//! only *between* requests (reads poll with a short timeout while idle),
//! so any request already being read or handled is answered in full
//! before its connection closes — in-flight requests drain, queued-but-
//! unserved connections are dropped.

use crate::cache::ShardedCache;
use crate::protocol::{
    frame, parse_frame_header, AddressReport, BalanceReport, ClusterReport, Request, Response,
    ServeError, ServerStats, TaintReport, WireError, FRAME_HEADER_LEN, MAX_REQUEST_PAYLOAD,
};
use fistful_core::change::ChangeLabels;
use fistful_core::snapshot::ClusterSnapshot;
use fistful_flow::graph::{TaintScratch, TxGraph};
use fistful_flow::theft::track_theft_indexed;
use fistful_flow::{point_at, BalancePoint};
use std::collections::VecDeque;
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::Duration;

/// How long an idle worker read waits before re-checking the shutdown
/// flag. Bounds shutdown latency without costing anything on busy
/// connections.
const IDLE_POLL: Duration = Duration::from_millis(25);

/// Server configuration.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Address to bind, e.g. `"127.0.0.1:0"` for an ephemeral port.
    pub addr: String,
    /// Worker threads. `0` means one per available core.
    pub workers: usize,
    /// Total response-cache entries across all shards; `0` disables the
    /// cache entirely.
    pub cache_entries: usize,
    /// Server-side ceiling on a taint request's `max_txs` walk bound (the
    /// client's value is clamped to this).
    pub max_taint_txs: usize,
}

impl Default for ServeConfig {
    fn default() -> ServeConfig {
        ServeConfig {
            addr: "127.0.0.1:0".to_string(),
            workers: 0,
            cache_entries: 4096,
            max_taint_txs: 5_000,
        }
    }
}

/// Everything the handlers read: the frozen artifacts of one finished
/// clustering run over one chain.
///
/// Immutable after construction and shared across workers through an
/// [`Arc`]; [`ServeArtifacts::new`] refuses pairs that do not describe
/// the same chain (`ClusterSnapshot::pairs_with_chain` plus a labels
/// dimension check), so a server can never be started on mismatched
/// artifacts.
pub struct ServeArtifacts {
    /// The frozen clustering: address → cluster → aggregates + names.
    pub snapshot: ClusterSnapshot,
    /// The columnar transaction-graph index taint walks run on.
    pub graph: TxGraph,
    /// Heuristic-2 change labels steering peel-side taint propagation.
    pub labels: ChangeLabels,
    /// The precomputed balance series served by `BalancePoint` requests
    /// (height-sorted, as `balance_series` produces it).
    pub balances: Vec<BalancePoint>,
}

impl ServeArtifacts {
    /// Validates that the four artifacts describe the same chain and
    /// fuses them into the serving bundle.
    pub fn new(
        snapshot: ClusterSnapshot,
        graph: TxGraph,
        labels: ChangeLabels,
        balances: Vec<BalancePoint>,
    ) -> Result<ServeArtifacts, ServeError> {
        if !snapshot.pairs_with_chain(graph.address_count(), graph.tx_count() as u64) {
            return Err(ServeError::MismatchedArtifacts(
                "snapshot and graph disagree on address/transaction counts",
            ));
        }
        if labels.vout_of.len() != graph.tx_count() {
            return Err(ServeError::MismatchedArtifacts(
                "change labels and graph disagree on transaction count",
            ));
        }
        if balances.windows(2).any(|w| w[0].height > w[1].height) {
            return Err(ServeError::MismatchedArtifacts(
                "balance series is not height-sorted",
            ));
        }
        Ok(ServeArtifacts { snapshot, graph, labels, balances })
    }
}

/// State shared by the acceptor, the workers, and the [`Server`] handle.
struct Shared {
    artifacts: Arc<ServeArtifacts>,
    cache: Option<ShardedCache>,
    max_taint_txs: usize,
    workers: u32,
    shutdown: AtomicBool,
    requests: AtomicU64,
    queue: Mutex<VecDeque<TcpStream>>,
    available: Condvar,
}

impl Shared {
    /// A point-in-time copy of the served counters and artifact
    /// dimensions — the `Stats` answer.
    fn stats(&self) -> ServerStats {
        ServerStats {
            requests: self.requests.load(Ordering::Relaxed),
            cache_hits: self.cache.as_ref().map(ShardedCache::hits).unwrap_or(0),
            cache_misses: self.cache.as_ref().map(ShardedCache::misses).unwrap_or(0),
            workers: self.workers,
            address_count: self.artifacts.snapshot.address_count() as u64,
            tx_count: self.artifacts.graph.tx_count() as u64,
            cluster_count: self.artifacts.snapshot.cluster_count() as u64,
            tip_height: self.artifacts.snapshot.tip_height(),
        }
    }
}

/// A running query server. Dropping the handle shuts the server down; call
/// [`Server::shutdown`] to do it explicitly and observe completion.
pub struct Server {
    shared: Arc<Shared>,
    local_addr: SocketAddr,
    acceptor: Option<std::thread::JoinHandle<()>>,
    workers: Vec<std::thread::JoinHandle<()>>,
}

impl Server {
    /// Binds the listener and spawns the acceptor and worker threads.
    pub fn start(config: ServeConfig, artifacts: Arc<ServeArtifacts>) -> Result<Server, ServeError> {
        let workers = if config.workers == 0 {
            std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1)
        } else {
            config.workers
        };
        let listener = TcpListener::bind(&config.addr)?;
        let local_addr = listener.local_addr()?;
        let shared = Arc::new(Shared {
            artifacts,
            cache: (config.cache_entries > 0).then(|| ShardedCache::new(config.cache_entries)),
            max_taint_txs: config.max_taint_txs,
            workers: workers as u32,
            shutdown: AtomicBool::new(false),
            requests: AtomicU64::new(0),
            queue: Mutex::new(VecDeque::new()),
            available: Condvar::new(),
        });

        let acceptor = {
            let shared = Arc::clone(&shared);
            std::thread::spawn(move || {
                for conn in listener.incoming() {
                    if shared.shutdown.load(Ordering::SeqCst) {
                        break;
                    }
                    let Ok(stream) = conn else { continue };
                    shared.queue.lock().expect("queue poisoned").push_back(stream);
                    shared.available.notify_one();
                }
            })
        };
        let worker_handles = (0..workers)
            .map(|_| {
                let shared = Arc::clone(&shared);
                std::thread::spawn(move || worker_loop(&shared))
            })
            .collect();

        Ok(Server { shared, local_addr, acceptor: Some(acceptor), workers: worker_handles })
    }

    /// The bound address (useful with an ephemeral port).
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// Current counters and artifact dimensions, without a socket round
    /// trip.
    pub fn stats(&self) -> ServerStats {
        self.shared.stats()
    }

    /// Signals shutdown, drains in-flight requests, and joins every
    /// thread. Idempotent through [`Drop`].
    pub fn shutdown(mut self) {
        self.shutdown_inner();
    }

    fn shutdown_inner(&mut self) {
        self.shared.shutdown.store(true, Ordering::SeqCst);
        // Wake the acceptor out of accept(); it observes the flag first.
        let _ = TcpStream::connect(self.local_addr);
        self.shared.available.notify_all();
        if let Some(acceptor) = self.acceptor.take() {
            let _ = acceptor.join();
        }
        for worker in self.workers.drain(..) {
            let _ = worker.join();
        }
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        self.shutdown_inner();
    }
}

/// One worker: pop connections until shutdown, serving each to
/// completion with a thread-local reusable taint scratch.
fn worker_loop(shared: &Shared) {
    let mut scratch = TaintScratch::for_graph(&shared.artifacts.graph);
    loop {
        let conn = {
            let mut queue = shared.queue.lock().expect("queue poisoned");
            loop {
                if let Some(conn) = queue.pop_front() {
                    break Some(conn);
                }
                if shared.shutdown.load(Ordering::SeqCst) {
                    break None;
                }
                queue = shared
                    .available
                    .wait_timeout(queue, IDLE_POLL)
                    .expect("queue poisoned")
                    .0;
            }
        };
        match conn {
            Some(stream) => serve_connection(stream, shared, &mut scratch),
            None => return,
        }
    }
}

/// What one attempt to read a request frame produced.
enum FrameRead {
    /// A complete payload.
    Payload(Vec<u8>),
    /// The peer closed at a frame boundary.
    Eof,
    /// Shutdown was signalled while the connection sat idle.
    Shutdown,
    /// The frame was unacceptable; tell the peer and close.
    Bad(ServeError),
}

/// How many consecutive idle polls a *started* frame may sit stalled
/// before the worker gives up on the connection (`IDLE_POLL` apart, so
/// this is a ~30-second mid-frame read deadline). Without it, a peer that
/// sends half a frame and then goes silent would pin a worker forever.
const STALLED_READ_LIMIT: u32 = 1200;

/// How many consecutive idle polls a connection may sit with *no* frame
/// started before the worker closes it (~60 seconds) — the keep-alive
/// timeout. Workers serve one connection at a time, so without this,
/// `workers` idle-but-open clients would starve every queued connection.
const KEEP_ALIVE_LIMIT: u32 = 2400;

/// Reads one frame. While no byte of the frame has arrived, idle polls
/// check the shutdown flag (and the [`KEEP_ALIVE_LIMIT`] idle timeout);
/// once a frame has started, a fully delivered frame is always read to
/// completion (and later answered — that is what lets shutdown drain
/// in-flight work), but a *stalled* partial frame is abandoned on
/// shutdown, and after [`STALLED_READ_LIMIT`] idle polls even without
/// one — a half-received request was never being processed, so dropping
/// it loses nothing that was promised.
fn read_request_frame(stream: &mut TcpStream, shared: &Shared) -> FrameRead {
    let mut header = [0u8; FRAME_HEADER_LEN];
    let mut filled = 0usize;
    let mut stalled = 0u32;
    while filled < FRAME_HEADER_LEN {
        match stream.read(&mut header[filled..]) {
            Ok(0) => {
                return if filled == 0 { FrameRead::Eof } else { FrameRead::Bad(ServeError::Truncated) }
            }
            Ok(n) => {
                filled += n;
                stalled = 0;
            }
            Err(e) => match e.kind() {
                std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut => {
                    if shared.shutdown.load(Ordering::SeqCst) {
                        return FrameRead::Shutdown;
                    }
                    stalled += 1;
                    if filled == 0 && stalled >= KEEP_ALIVE_LIMIT {
                        return FrameRead::Eof; // keep-alive expired; free the worker
                    }
                    if filled > 0 && stalled >= STALLED_READ_LIMIT {
                        return FrameRead::Bad(ServeError::Io("mid-frame read stalled".into()));
                    }
                }
                std::io::ErrorKind::Interrupted => {}
                _ => return FrameRead::Bad(ServeError::Io(e.to_string())),
            },
        }
    }
    let len = match parse_frame_header(&header, MAX_REQUEST_PAYLOAD) {
        Ok(len) => len as usize,
        Err(e) => return FrameRead::Bad(e),
    };
    let mut payload = vec![0u8; len];
    let mut filled = 0usize;
    let mut stalled = 0u32;
    while filled < len {
        match stream.read(&mut payload[filled..]) {
            Ok(0) => return FrameRead::Bad(ServeError::Truncated),
            Ok(n) => {
                filled += n;
                stalled = 0;
            }
            Err(e) => match e.kind() {
                std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut => {
                    if shared.shutdown.load(Ordering::SeqCst) {
                        return FrameRead::Shutdown;
                    }
                    stalled += 1;
                    if stalled >= STALLED_READ_LIMIT {
                        return FrameRead::Bad(ServeError::Io("mid-frame read stalled".into()));
                    }
                }
                std::io::ErrorKind::Interrupted => {}
                _ => return FrameRead::Bad(ServeError::Io(e.to_string())),
            },
        }
    }
    FrameRead::Payload(payload)
}

/// Serves one connection until EOF, a protocol error, or shutdown.
fn serve_connection(mut stream: TcpStream, shared: &Shared, scratch: &mut TaintScratch) {
    let _ = stream.set_nodelay(true);
    if stream.set_read_timeout(Some(IDLE_POLL)).is_err() {
        return;
    }
    loop {
        // Between requests is the drain point: the previous request (if
        // any) was answered in full; if shutdown has been signalled, close
        // now instead of starting another read. Without this check a
        // client pumping requests back-to-back would keep the socket
        // readable forever and the idle-timeout path would never fire.
        if shared.shutdown.load(Ordering::SeqCst) {
            return;
        }
        let payload = match read_request_frame(&mut stream, shared) {
            FrameRead::Payload(payload) => payload,
            FrameRead::Eof | FrameRead::Shutdown => return,
            FrameRead::Bad(e) => {
                // Tell the peer what was wrong with its frame, then close:
                // after a framing error the stream cannot be resynced.
                let wire = WireError::from_serve_error(&e);
                let _ = stream.write_all(&Response::Error(wire).to_frame());
                close_gracefully(stream);
                return;
            }
        };
        shared.requests.fetch_add(1, Ordering::Relaxed);

        // Cache fast path: the key is the raw request payload, so a hit
        // skips decoding, handling, and re-encoding alike. Only consult it
        // for request types whose answers are pure functions of the
        // artifacts (never Ping/Stats).
        let cacheable = payload
            .first()
            .is_some_and(|&t| Request::type_byte_is_cacheable(t));
        if cacheable {
            if let Some(cached) = shared.cache.as_ref().and_then(|c| c.get(&payload)) {
                if stream.write_all(&frame(&cached)).is_err() {
                    return;
                }
                continue;
            }
        }

        let (mut response, mut close_after) = match Request::decode_payload(&payload) {
            Ok(request) => handle(&request, shared, scratch),
            Err(e) => (Response::Error(WireError::from_serve_error(&e)), true),
        };
        let mut encoded = fistful_chain::encode::Encodable::encode_to_vec(&response);
        // The client enforces MAX_RESPONSE_PAYLOAD on its side of the
        // protocol; a response beyond it (e.g. a taint trace under an
        // operator-raised `max_taint_txs` ceiling) must become a typed
        // error here, not a frame every conforming peer rejects.
        if encoded.len() > crate::protocol::MAX_RESPONSE_PAYLOAD as usize {
            let e = ServeError::InvalidRequest(format!(
                "response of {} bytes exceeds the {}-byte frame limit; lower the walk bounds",
                encoded.len(),
                crate::protocol::MAX_RESPONSE_PAYLOAD
            ));
            response = Response::Error(WireError::from_serve_error(&e));
            close_after = true;
            encoded = fistful_chain::encode::Encodable::encode_to_vec(&response);
        }
        if cacheable && !close_after {
            if let Some(cache) = shared.cache.as_ref() {
                cache.insert(payload, encoded.clone());
            }
        }
        if stream.write_all(&frame(&encoded)).is_err() {
            return;
        }
        if close_after {
            close_gracefully(stream);
            return;
        }
    }
}

/// Closes a connection without losing the response just written: half-
/// close the write side (FIN after the queued bytes) and briefly drain
/// whatever the peer still has in flight, so dropping the socket does not
/// turn into a RST that discards the error frame before the peer reads
/// it. The drain is bounded in both bytes and time, so a hostile peer
/// cannot pin the worker.
fn close_gracefully(mut stream: TcpStream) {
    let _ = stream.shutdown(std::net::Shutdown::Write);
    let mut sink = [0u8; 4096];
    let mut drained = 0usize;
    let mut idle_rounds = 0u32;
    while drained <= MAX_REQUEST_PAYLOAD as usize && idle_rounds < 8 {
        match stream.read(&mut sink) {
            Ok(0) => return, // peer finished; fully clean close
            Ok(n) => drained += n,
            Err(e) => match e.kind() {
                std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut => idle_rounds += 1,
                std::io::ErrorKind::Interrupted => {}
                _ => return,
            },
        }
    }
}

/// Answers one decoded request. Returns the response and whether the
/// connection must close afterwards (semantic errors close, like framing
/// errors do).
fn handle(request: &Request, shared: &Shared, scratch: &mut TaintScratch) -> (Response, bool) {
    let artifacts = &shared.artifacts;
    let response = match request {
        Request::Ping => Response::Pong,
        Request::Stats => Response::Stats(shared.stats()),
        Request::AddressInfo { address } => Response::AddressInfo(
            artifacts.snapshot.cluster_of(*address).map(|cluster| AddressReport {
                address: *address,
                cluster,
                info: artifacts.snapshot.info(cluster).expect("cluster_of implies info").clone(),
            }),
        ),
        Request::ClusterSummary { cluster } => Response::ClusterSummary(
            artifacts
                .snapshot
                .info(*cluster)
                .map(|info| ClusterReport { cluster: *cluster, info: info.clone() }),
        ),
        Request::TaintTrace { loot, max_txs } => {
            let graph = &artifacts.graph;
            for &(tx, vout) in loot {
                if tx as usize >= graph.tx_count() || vout as usize >= graph.num_outputs(tx) {
                    let e = ServeError::InvalidRequest(format!(
                        "loot outpoint ({tx}, {vout}) is beyond the graph"
                    ));
                    return (Response::Error(WireError::from_serve_error(&e)), true);
                }
            }
            let bound = (*max_txs as usize).min(shared.max_taint_txs);
            let trace = track_theft_indexed(
                graph,
                loot,
                &artifacts.labels,
                &artifacts.snapshot,
                bound,
                scratch,
            );
            Response::TaintTrace(TaintReport::from_trace(&trace))
        }
        Request::BalancePoint { height } => {
            Response::BalancePoint(point_at(&artifacts.balances, *height).map(BalanceReport::from))
        }
    };
    (response, false)
}

//! The multithreaded TCP query server: one acceptor thread, a fixed
//! worker pool, shared hot-swappable artifacts, and a sharded response
//! cache.
//!
//! # Threading model
//!
//! [`Server::start`] binds a [`TcpListener`] and spawns one acceptor
//! thread plus `workers` worker threads ([`Server::start_with_listener`]
//! accepts a pre-bound listener, so callers can bind — and report the
//! address — before the artifacts are even built). The acceptor pushes
//! accepted connections onto a condvar-guarded queue; each worker pops a
//! connection and serves it to completion (many requests per connection)
//! before taking the next — a deliberately simple thread-per-active-
//! connection model with a bounded thread count, the std-only shape of a
//! serving tier (no vendored async runtime; see `vendor/README.md` for
//! why the dependency set is closed). Connections that go quiet are
//! closed after a keep-alive timeout (~60 s) and connections that stall
//! mid-frame after a read deadline (~30 s), so silent or half-open peers
//! cannot pin workers and starve the queue.
//!
//! # Artifact hot swap
//!
//! Request handling reads from one *published* [`Arc<ServeArtifacts>`] —
//! the frozen [`ClusterSnapshot`], the columnar [`TxGraph`], the
//! [`ChangeLabels`], and the precomputed balance series are immutable and
//! `Send + Sync`, so workers share them with zero locks beyond a single
//! `Arc` clone per request. A live-ingest pipeline (see [`crate::live`])
//! obtains a [`Publisher`] handle and swaps in a fresh artifact bundle at
//! each epoch boundary: workers load the published pointer *once per
//! request*, so an in-flight request finishes on the artifact it started
//! with while the next request on the same connection sees the new one.
//! Each publication carries the artifact epoch — stamped into version-2
//! response frames — and raises the cache's staleness floors
//! ([`crate::cache::CacheFloors`]) instead of flushing it. Each worker
//! owns one reusable [`TaintScratch`], so steady-state taint walks
//! allocate nothing beyond their result records — the same memory model
//! as the batch taint engine.
//!
//! # Graceful shutdown
//!
//! [`Server::shutdown`] flips the shutdown flag, wakes the acceptor with
//! a loopback connection, and joins every thread. Workers notice the flag
//! only *between* requests (reads poll with a short timeout while idle),
//! so any request already being read or handled is answered in full
//! before its connection closes — in-flight requests drain, queued-but-
//! unserved connections are dropped.

use crate::cache::{CacheClass, CacheFloors, ShardedCache};
use crate::conn::{Deadline, DeadlineVerdict, TICK};
use crate::metrics::{kind_index, render_prometheus, MetricsDump, ServeMetrics, KIND_LABELS};
use crate::protocol::{
    frame_at, frame_v1, parse_frame_header, AddressReport, BalanceReport, ClusterReport, Request,
    Response, ServeError, ServerStats, TaintReport, WireError, FRAME_HEADER_LEN,
    MAX_REQUEST_PAYLOAD, PROTOCOL_VERSION,
};
use fistful_core::change::ChangeLabels;
use fistful_core::snapshot::ClusterSnapshot;
use fistful_flow::graph::{TaintScratch, TxGraph};
use fistful_flow::theft::track_theft_indexed;
use fistful_flow::{point_at, BalancePoint};
use std::collections::VecDeque;
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

/// How long an idle worker read waits before re-checking the shutdown
/// flag — one deadline tick ([`crate::conn::TICK`]). Bounds shutdown
/// latency without costing anything on busy connections.
const IDLE_POLL: Duration = TICK;

/// Server configuration.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Address to bind, e.g. `"127.0.0.1:0"` for an ephemeral port.
    pub addr: String,
    /// Worker threads. `0` means one per available core.
    pub workers: usize,
    /// Total response-cache entries across all shards; `0` disables the
    /// cache entirely.
    pub cache_entries: usize,
    /// Server-side ceiling on a taint request's `max_txs` walk bound (the
    /// client's value is clamped to this).
    pub max_taint_txs: usize,
}

impl Default for ServeConfig {
    fn default() -> ServeConfig {
        ServeConfig {
            addr: "127.0.0.1:0".to_string(),
            workers: 0,
            cache_entries: 4096,
            max_taint_txs: 5_000,
        }
    }
}

/// Everything the handlers read: the frozen artifacts of one finished
/// clustering run over one chain (or one live-ingest epoch of it).
///
/// Immutable after construction and shared across workers through an
/// [`Arc`]; [`ServeArtifacts::new`] refuses pairs that do not describe
/// the same chain (`ClusterSnapshot::pairs_with_chain` plus a labels
/// dimension check), so a server can never be started on — or hot-swapped
/// to — mismatched artifacts.
pub struct ServeArtifacts {
    /// The frozen clustering: address → cluster → aggregates + names.
    pub snapshot: ClusterSnapshot,
    /// The columnar transaction-graph index taint walks run on.
    pub graph: TxGraph,
    /// Heuristic-2 change labels steering peel-side taint propagation.
    pub labels: ChangeLabels,
    /// The precomputed balance series served by `BalancePoint` requests
    /// (height-sorted, as `balance_series` produces it).
    pub balances: Vec<BalancePoint>,
}

impl ServeArtifacts {
    /// Validates that the four artifacts describe the same chain and
    /// fuses them into the serving bundle.
    pub fn new(
        snapshot: ClusterSnapshot,
        graph: TxGraph,
        labels: ChangeLabels,
        balances: Vec<BalancePoint>,
    ) -> Result<ServeArtifacts, ServeError> {
        if !snapshot.pairs_with_chain(graph.address_count(), graph.tx_count() as u64) {
            return Err(ServeError::MismatchedArtifacts(
                "snapshot and graph disagree on address/transaction counts",
            ));
        }
        if labels.vout_of.len() != graph.tx_count() {
            return Err(ServeError::MismatchedArtifacts(
                "change labels and graph disagree on transaction count",
            ));
        }
        if balances.windows(2).any(|w| w[0].height > w[1].height) {
            return Err(ServeError::MismatchedArtifacts(
                "balance series is not height-sorted",
            ));
        }
        Ok(ServeArtifacts { snapshot, graph, labels, balances })
    }
}

/// One published artifact generation: the bundle, the epoch it was built
/// at, and the cache floors in force while it is current.
pub(crate) struct Published {
    pub(crate) epoch: u64,
    pub(crate) floors: CacheFloors,
    pub(crate) artifacts: Arc<ServeArtifacts>,
}

/// The request-serving half of a server, independent of how connections
/// are multiplexed: published artifacts, response cache, counters, and
/// the shutdown flag. Both serve loops — the threaded worker pool here
/// and the event loop in [`crate::event`] — answer requests through one
/// `Core` via [`process_request`], which is what makes their byte
/// streams identical by construction.
pub(crate) struct Core {
    /// The current artifact generation. Workers clone the inner `Arc`
    /// once per request; the mutex is held only for that pointer copy, so
    /// a publish never blocks behind a long-running handler.
    pub(crate) published: Mutex<Arc<Published>>,
    pub(crate) cache: Option<ShardedCache>,
    pub(crate) max_taint_txs: usize,
    pub(crate) workers: u32,
    pub(crate) shutdown: AtomicBool,
    pub(crate) requests: AtomicU64,
    pub(crate) swaps: AtomicU64,
    /// The full lock-free metric registry (see [`crate::metrics`]):
    /// shared by the worker pool, the event loop, the live pipeline, and
    /// both scrape paths.
    pub(crate) metrics: ServeMetrics,
    /// When this core was created — the server's monotonic uptime clock.
    pub(crate) start: Instant,
}

impl Core {
    /// Fresh serving state at epoch zero around one artifact bundle.
    pub(crate) fn new(
        workers: u32,
        cache_entries: usize,
        max_taint_txs: usize,
        artifacts: Arc<ServeArtifacts>,
    ) -> Core {
        Core {
            published: Mutex::new(Arc::new(Published {
                epoch: 0,
                floors: CacheFloors::default(),
                artifacts,
            })),
            cache: (cache_entries > 0).then(|| ShardedCache::new(cache_entries)),
            max_taint_txs,
            workers,
            shutdown: AtomicBool::new(false),
            requests: AtomicU64::new(0),
            swaps: AtomicU64::new(0),
            metrics: ServeMetrics::new(),
            start: Instant::now(),
        }
    }

    /// The current artifact generation (one lock, one refcount bump).
    pub(crate) fn current(&self) -> Arc<Published> {
        Arc::clone(&self.published.lock().expect("published poisoned"))
    }

    /// A point-in-time copy of the served counters and artifact
    /// dimensions — the `Stats` answer.
    pub(crate) fn stats(&self) -> ServerStats {
        let published = self.current();
        ServerStats {
            requests: self.requests.load(Ordering::Relaxed),
            cache_hits: self.cache.as_ref().map(ShardedCache::hits).unwrap_or(0),
            cache_misses: self.cache.as_ref().map(ShardedCache::misses).unwrap_or(0),
            workers: self.workers,
            address_count: published.artifacts.snapshot.address_count() as u64,
            tx_count: published.artifacts.graph.tx_count() as u64,
            cluster_count: published.artifacts.snapshot.cluster_count() as u64,
            tip_height: published.artifacts.snapshot.tip_height(),
            epoch: published.epoch,
            swaps: self.swaps.load(Ordering::Relaxed),
            uptime_seconds: self.start.elapsed().as_secs(),
            requests_total: self.metrics.requests.iter().map(|c| c.get()).sum(),
        }
    }

    /// Snapshots the entire metric registry into the plain value both
    /// scrape paths serve — the binary `MetricsDump` response encodes
    /// exactly this, and the HTTP exporter renders exactly this, so the
    /// two views can never disagree about a counter.
    pub(crate) fn metrics_dump(&self) -> MetricsDump {
        let m = &self.metrics;
        let mut counters = Vec::new();
        for (i, label) in KIND_LABELS.iter().enumerate() {
            counters
                .push((format!("fistful_requests_total{{type=\"{label}\"}}"), m.requests[i].get()));
        }
        counters.push(("fistful_backpressure_stalls_total".to_string(), m.backpressure_stalls.get()));
        counters.push(("fistful_busy_sheds_total".to_string(), m.busy_sheds.get()));
        counters
            .push(("fistful_timer_stall_expirations_total".to_string(), m.stall_expirations.get()));
        counters.push(("fistful_timer_idle_expirations_total".to_string(), m.idle_expirations.get()));
        counters.push(("fistful_ingest_blocks_total".to_string(), m.ingest_blocks.get()));
        counters.push(("fistful_swaps_total".to_string(), self.swaps.load(Ordering::Relaxed)));
        if let Some(cache) = &self.cache {
            for (i, s) in cache.shard_stats().iter().enumerate() {
                counters.push((format!("fistful_cache_hits_total{{shard=\"{i}\"}}"), s.hits));
                counters.push((format!("fistful_cache_misses_total{{shard=\"{i}\"}}"), s.misses));
                counters
                    .push((format!("fistful_cache_evictions_total{{shard=\"{i}\"}}"), s.evictions));
            }
        }
        let gauges = vec![
            ("fistful_inflight_requests".to_string(), m.inflight.get()),
            ("fistful_connections".to_string(), m.connections.get()),
            ("fistful_queue_depth".to_string(), m.queue_depth.get()),
            ("fistful_live_epoch".to_string(), m.live_epoch.get()),
            ("fistful_uptime_seconds".to_string(), self.start.elapsed().as_secs()),
        ];
        let mut histograms = Vec::with_capacity(KIND_LABELS.len() + 2);
        for (i, label) in KIND_LABELS.iter().enumerate() {
            histograms.push(
                m.request_latency[i]
                    .dump(&format!("fistful_request_latency_seconds{{type=\"{label}\"}}")),
            );
        }
        histograms.push(m.dispatch_wait.dump("fistful_dispatch_wait_seconds"));
        histograms.push(m.swap_latency.dump("fistful_swap_latency_seconds"));
        MetricsDump { counters, gauges, histograms }
    }

    /// Whether shutdown has been signalled.
    pub(crate) fn shutdown_requested(&self) -> bool {
        self.shutdown.load(Ordering::SeqCst)
    }
}

/// A cheap, cloneable handle onto a running server's metric registry —
/// what the HTTP exporter ([`crate::httpexpo`]) renders from, obtainable
/// from either serve engine
/// ([`Server::metrics_handle`] / [`crate::event::EventServer::metrics_handle`]).
#[derive(Clone)]
pub struct MetricsHandle {
    pub(crate) core: Arc<Core>,
}

impl MetricsHandle {
    /// Snapshots every metric into a plain [`MetricsDump`].
    pub fn dump(&self) -> MetricsDump {
        self.core.metrics_dump()
    }

    /// Renders the Prometheus text exposition of a fresh snapshot.
    pub fn render(&self) -> String {
        render_prometheus(&self.dump())
    }
}

/// State shared by the acceptor, the workers, and the [`Server`] handle.
struct Shared {
    core: Arc<Core>,
    queue: Mutex<VecDeque<TcpStream>>,
    available: Condvar,
}

/// A handle for hot-swapping the served artifacts. Cloneable and
/// independent of the [`Server`] handle's lifetime guarantees — but a
/// publish after shutdown is a harmless no-op-equivalent (no worker will
/// ever read it).
#[derive(Clone)]
pub struct Publisher {
    pub(crate) core: Arc<Core>,
}

impl Publisher {
    /// Publishes a fresh artifact generation built at `epoch`.
    ///
    /// Every subsequent request is answered from `artifacts` and stamped
    /// with `epoch`; requests already in flight finish on the generation
    /// they loaded. The cache's graph floor rises to `epoch`
    /// unconditionally; the snapshot floor rises too unless
    /// `ids_stable` — the caller attests that no *existing* address
    /// changed assignment and no existing cluster's aggregates changed
    /// (a non-merging, append-only epoch), so `Some`-bodied
    /// `AddressInfo`/`ClusterSummary` entries cached earlier are still
    /// byte-exact and survive.
    ///
    /// Epochs must be nondecreasing across publishes.
    pub fn publish(&self, artifacts: Arc<ServeArtifacts>, epoch: u64, ids_stable: bool) {
        let mut published = self.core.published.lock().expect("published poisoned");
        assert!(epoch >= published.epoch, "published epochs must be nondecreasing");
        let floors = CacheFloors {
            snapshot: if ids_stable { published.floors.snapshot } else { epoch },
            graph: epoch,
        };
        *published = Arc::new(Published { epoch, floors, artifacts });
        drop(published);
        self.core.swaps.fetch_add(1, Ordering::Relaxed);
        self.core.metrics.live_epoch.set(epoch);
    }

    /// The epoch of the currently published generation.
    pub fn current_epoch(&self) -> u64 {
        self.core.current().epoch
    }

    /// Number of publishes performed on this server so far.
    pub fn swaps(&self) -> u64 {
        self.core.swaps.load(Ordering::Relaxed)
    }
}

/// A running query server. Dropping the handle shuts the server down; call
/// [`Server::shutdown`] to do it explicitly and observe completion.
pub struct Server {
    shared: Arc<Shared>,
    local_addr: SocketAddr,
    acceptor: Option<std::thread::JoinHandle<()>>,
    workers: Vec<std::thread::JoinHandle<()>>,
}

impl Server {
    /// Binds the listener and spawns the acceptor and worker threads.
    pub fn start(config: ServeConfig, artifacts: Arc<ServeArtifacts>) -> Result<Server, ServeError> {
        let listener = TcpListener::bind(&config.addr)?;
        Server::start_with_listener(listener, config, artifacts)
    }

    /// Like [`Server::start`], but serves on an already-bound listener
    /// (`config.addr` is ignored). This is the bind-early path: callers
    /// can bind and announce the port, build the (possibly expensive)
    /// artifacts, then start serving — connections that arrive in
    /// between wait in the OS accept backlog instead of being refused.
    pub fn start_with_listener(
        listener: TcpListener,
        config: ServeConfig,
        artifacts: Arc<ServeArtifacts>,
    ) -> Result<Server, ServeError> {
        let workers = if config.workers == 0 {
            std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1)
        } else {
            config.workers
        };
        let local_addr = listener.local_addr()?;
        let shared = Arc::new(Shared {
            core: Arc::new(Core::new(
                workers as u32,
                config.cache_entries,
                config.max_taint_txs,
                artifacts,
            )),
            queue: Mutex::new(VecDeque::new()),
            available: Condvar::new(),
        });

        let acceptor = {
            let shared = Arc::clone(&shared);
            std::thread::spawn(move || {
                for conn in listener.incoming() {
                    if shared.core.shutdown_requested() {
                        break;
                    }
                    let Ok(stream) = conn else { continue };
                    shared.queue.lock().expect("queue poisoned").push_back(stream);
                    shared.available.notify_one();
                }
            })
        };
        let worker_handles = (0..workers)
            .map(|_| {
                let shared = Arc::clone(&shared);
                std::thread::spawn(move || worker_loop(&shared))
            })
            .collect();

        Ok(Server { shared, local_addr, acceptor: Some(acceptor), workers: worker_handles })
    }

    /// The bound address (useful with an ephemeral port).
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// Current counters and artifact dimensions, without a socket round
    /// trip.
    pub fn stats(&self) -> ServerStats {
        self.shared.core.stats()
    }

    /// A handle for hot-swapping the served artifacts (see
    /// [`Publisher::publish`]).
    pub fn publisher(&self) -> Publisher {
        Publisher { core: Arc::clone(&self.shared.core) }
    }

    /// A handle onto this server's metric registry, for the HTTP
    /// exporter or direct in-process scraping.
    pub fn metrics_handle(&self) -> MetricsHandle {
        MetricsHandle { core: Arc::clone(&self.shared.core) }
    }

    /// Signals shutdown, drains in-flight requests, and joins every
    /// thread. Idempotent through [`Drop`].
    pub fn shutdown(mut self) {
        self.shutdown_inner();
    }

    fn shutdown_inner(&mut self) {
        self.shared.core.shutdown.store(true, Ordering::SeqCst);
        // Wake the acceptor out of accept(); it observes the flag first.
        let _ = TcpStream::connect(self.local_addr);
        self.shared.available.notify_all();
        if let Some(acceptor) = self.acceptor.take() {
            let _ = acceptor.join();
        }
        for worker in self.workers.drain(..) {
            let _ = worker.join();
        }
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        self.shutdown_inner();
    }
}

/// One worker: pop connections until shutdown, serving each to
/// completion with a thread-local reusable taint scratch.
fn worker_loop(shared: &Shared) {
    let mut scratch = TaintScratch::for_graph(&shared.core.current().artifacts.graph);
    loop {
        let conn = {
            let mut queue = shared.queue.lock().expect("queue poisoned");
            loop {
                if let Some(conn) = queue.pop_front() {
                    break Some(conn);
                }
                if shared.core.shutdown_requested() {
                    break None;
                }
                queue = shared
                    .available
                    .wait_timeout(queue, IDLE_POLL)
                    .expect("queue poisoned")
                    .0;
            }
        };
        match conn {
            Some(stream) => {
                shared.core.metrics.connections.inc();
                serve_connection(stream, shared, &mut scratch);
                shared.core.metrics.connections.dec();
            }
            None => return,
        }
    }
}

/// What one attempt to read a request frame produced.
enum FrameRead {
    /// A complete payload, plus the protocol version the peer framed the
    /// request in (the response is framed in kind).
    Payload(Vec<u8>, u8),
    /// The peer closed at a frame boundary.
    Eof,
    /// Shutdown was signalled while the connection sat idle.
    Shutdown,
    /// The frame was unacceptable; tell the peer and close.
    Bad(ServeError),
}

/// The typed error a stalled partial frame is answered with — shared by
/// both serve loops so the byte streams match.
pub(crate) fn stalled_read_error() -> ServeError {
    ServeError::Io("mid-frame read stalled".into())
}

/// Reads one frame, with silence bounded by a [`Deadline`] (the shared
/// bookkeeping both serve loops use). While no byte of the frame has
/// arrived, idle polls check the shutdown flag (and the keep-alive
/// limit); once a frame has started, a fully delivered frame is always
/// read to completion (and later answered — that is what lets shutdown
/// drain in-flight work), but a *stalled* partial frame is abandoned on
/// shutdown, and at the mid-frame deadline even without one — a
/// half-received request was never being processed, so dropping it loses
/// nothing that was promised.
fn read_request_frame(stream: &mut TcpStream, core: &Core) -> FrameRead {
    let mut deadline = Deadline::new();
    let mut header = [0u8; FRAME_HEADER_LEN];
    let mut filled = 0usize;
    while filled < FRAME_HEADER_LEN {
        match stream.read(&mut header[filled..]) {
            Ok(0) => {
                return if filled == 0 { FrameRead::Eof } else { FrameRead::Bad(ServeError::Truncated) }
            }
            Ok(n) => {
                filled += n;
                deadline.progress();
            }
            Err(e) => match e.kind() {
                std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut => {
                    if core.shutdown_requested() {
                        return FrameRead::Shutdown;
                    }
                    match deadline.tick(filled > 0) {
                        DeadlineVerdict::Wait => {}
                        // Keep-alive expired; free the worker.
                        DeadlineVerdict::KeepAliveExpired => return FrameRead::Eof,
                        DeadlineVerdict::MidFrameStalled => {
                            return FrameRead::Bad(stalled_read_error())
                        }
                    }
                }
                std::io::ErrorKind::Interrupted => {}
                _ => return FrameRead::Bad(ServeError::Io(e.to_string())),
            },
        }
    }
    let parsed = match parse_frame_header(&header, MAX_REQUEST_PAYLOAD) {
        Ok(parsed) => parsed,
        Err(e) => return FrameRead::Bad(e),
    };
    // Version-2 request frames carry an epoch field after the header; the
    // field is reserved on requests (clients send zero), so the server
    // reads and ignores it. Reading it together with the payload keeps
    // the stall accounting in one loop.
    let epoch_bytes = parsed.epoch_bytes();
    let len = parsed.payload_len as usize;
    let mut rest = vec![0u8; epoch_bytes + len];
    let mut filled = 0usize;
    while filled < rest.len() {
        match stream.read(&mut rest[filled..]) {
            Ok(0) => return FrameRead::Bad(ServeError::Truncated),
            Ok(n) => {
                filled += n;
                deadline.progress();
            }
            Err(e) => match e.kind() {
                std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut => {
                    if core.shutdown_requested() {
                        return FrameRead::Shutdown;
                    }
                    // The body is always mid-frame: the header bytes that
                    // got us here already started the frame.
                    if deadline.tick(true) == DeadlineVerdict::MidFrameStalled {
                        return FrameRead::Bad(stalled_read_error());
                    }
                }
                std::io::ErrorKind::Interrupted => {}
                _ => return FrameRead::Bad(ServeError::Io(e.to_string())),
            },
        }
    }
    let payload = rest.split_off(epoch_bytes);
    FrameRead::Payload(payload, parsed.version)
}

/// Frames an already-encoded non-`Stats` response payload for a peer
/// speaking `version` (version-1 `Stats` bodies differ, so those take
/// the [`Response::to_frame_v1`] path instead).
pub(crate) fn frame_payload_for(payload: &[u8], version: u8, epoch: u64) -> Vec<u8> {
    if version >= PROTOCOL_VERSION {
        frame_at(payload, epoch)
    } else {
        frame_v1(payload)
    }
}

/// The staleness class a response is cached under, decided from its
/// *content*: `Some`-bodied snapshot lookups are pure functions of an
/// existing cluster assignment (stable across non-merging epochs), while
/// not-found answers, taint traces, and balance points can all change
/// when the chain merely grows.
fn cache_class_of(response: &Response) -> CacheClass {
    match response {
        Response::AddressInfo(Some(_)) | Response::ClusterSummary(Some(_)) => CacheClass::Snapshot,
        _ => CacheClass::Graph,
    }
}

/// The complete error frame answering an unacceptable request frame,
/// framed as `version` and stamped with the current epoch — shared by
/// both serve loops so a framing error's bytes are identical whichever
/// loop caught it.
pub(crate) fn framing_error_frame(core: &Core, e: &ServeError, version: u8) -> Vec<u8> {
    let wire = Response::Error(WireError::from_serve_error(e));
    let encoded = fistful_chain::encode::Encodable::encode_to_vec(&wire);
    frame_payload_for(&encoded, version, core.current().epoch)
}

/// Answers one request payload end to end: counter bump, artifact-
/// generation pin, cache consult, decode, handle, oversize demotion,
/// cache insert, and version-correct framing. Returns the complete
/// response frame and whether the connection must close after sending it.
///
/// This is the single request path both serve loops share — the threaded
/// workers call it with the socket in hand, the event loop from its
/// worker pool with the frame already parsed — which is what makes the
/// two servers' byte streams identical by construction.
pub(crate) fn process_request(
    core: &Core,
    payload: Vec<u8>,
    version: u8,
    scratch: &mut TaintScratch,
) -> (Vec<u8>, bool) {
    // Per-type count at entry, from the raw type byte — *before* the
    // cache consult, so cache hits count and a scraped per-type total
    // exactly matches what a load generator sent. Latency is observed at
    // exit, covering cache consult / decode / handle / encode / framing.
    let started = Instant::now();
    let kind = kind_index(payload.first().copied().unwrap_or(u8::MAX));
    core.metrics.requests[kind].inc();
    core.metrics.inflight.inc();
    let result = process_request_inner(core, payload, version, scratch);
    core.metrics.inflight.dec();
    core.metrics.request_latency[kind].observe(started.elapsed());
    result
}

fn process_request_inner(
    core: &Core,
    payload: Vec<u8>,
    version: u8,
    scratch: &mut TaintScratch,
) -> (Vec<u8>, bool) {
    core.requests.fetch_add(1, Ordering::Relaxed);

    // Pin the artifact generation for this request: everything below
    // — cache floors, handlers, the epoch stamped into the response
    // frame — reads this one `Published`, so a concurrent publish
    // cannot tear a request across generations.
    let published = core.current();

    // Cache fast path: the key is the raw request payload, so a hit
    // skips decoding, handling, and re-encoding alike. Only consult it
    // for request types whose answers are pure functions of the
    // artifacts (never Ping/Stats). Values are stored as payload
    // bytes; framing is per-connection (version and current epoch).
    let cacheable = payload
        .first()
        .is_some_and(|&t| Request::type_byte_is_cacheable(t));
    if cacheable {
        if let Some(cached) = core.cache.as_ref().and_then(|c| c.get(&payload, &published.floors))
        {
            return (frame_payload_for(&cached, version, published.epoch), false);
        }
    }

    let (mut response, mut close_after) = match Request::decode_payload(&payload) {
        Ok(request) => handle(&request, core, &published, scratch),
        Err(e) => (Response::Error(WireError::from_serve_error(&e)), true),
    };
    let mut encoded = fistful_chain::encode::Encodable::encode_to_vec(&response);
    // The client enforces MAX_RESPONSE_PAYLOAD on its side of the
    // protocol; a response beyond it (e.g. a taint trace under an
    // operator-raised `max_taint_txs` ceiling) must become a typed
    // error here, not a frame every conforming peer rejects.
    if encoded.len() > crate::protocol::MAX_RESPONSE_PAYLOAD as usize {
        let e = ServeError::InvalidRequest(format!(
            "response of {} bytes exceeds the {}-byte frame limit; lower the walk bounds",
            encoded.len(),
            crate::protocol::MAX_RESPONSE_PAYLOAD
        ));
        response = Response::Error(WireError::from_serve_error(&e));
        close_after = true;
        encoded = fistful_chain::encode::Encodable::encode_to_vec(&response);
    }
    if cacheable && !close_after {
        if let Some(cache) = core.cache.as_ref() {
            cache.insert(payload, encoded.clone(), published.epoch, cache_class_of(&response));
        }
    }
    // Stats responses have a distinct legacy body; everything else is
    // byte-identical across versions and only the framing differs.
    let framed = match (&response, version) {
        (Response::Stats(_), v) if v < PROTOCOL_VERSION => response.to_frame_v1(),
        _ => frame_payload_for(&encoded, version, published.epoch),
    };
    (framed, close_after)
}

/// Serves one connection until EOF, a protocol error, or shutdown.
fn serve_connection(mut stream: TcpStream, shared: &Shared, scratch: &mut TaintScratch) {
    let _ = stream.set_nodelay(true);
    if stream.set_read_timeout(Some(IDLE_POLL)).is_err() {
        return;
    }
    let core = &*shared.core;
    // Until the first request frame parses, errors are framed as the
    // current protocol version (a peer whose magic or version byte is
    // garbage has no known dialect to answer in).
    let mut version = PROTOCOL_VERSION;
    loop {
        // Between requests is the drain point: the previous request (if
        // any) was answered in full; if shutdown has been signalled, close
        // now instead of starting another read. Without this check a
        // client pumping requests back-to-back would keep the socket
        // readable forever and the idle-timeout path would never fire.
        if core.shutdown_requested() {
            return;
        }
        let payload = match read_request_frame(&mut stream, core) {
            FrameRead::Payload(payload, v) => {
                version = v;
                payload
            }
            FrameRead::Eof | FrameRead::Shutdown => return,
            FrameRead::Bad(e) => {
                // Tell the peer what was wrong with its frame, then close:
                // after a framing error the stream cannot be resynced.
                let _ = stream.write_all(&framing_error_frame(core, &e, version));
                close_gracefully(stream);
                return;
            }
        };
        let (framed, close_after) = process_request(core, payload, version, scratch);
        if stream.write_all(&framed).is_err() {
            return;
        }
        if close_after {
            close_gracefully(stream);
            return;
        }
    }
}

/// Closes a connection without losing the response just written: half-
/// close the write side (FIN after the queued bytes) and briefly drain
/// whatever the peer still has in flight, so dropping the socket does not
/// turn into a RST that discards the error frame before the peer reads
/// it. The drain is bounded in both bytes and time, so a hostile peer
/// cannot pin the worker.
fn close_gracefully(mut stream: TcpStream) {
    let _ = stream.shutdown(std::net::Shutdown::Write);
    let mut sink = [0u8; 4096];
    let mut drained = 0usize;
    let mut idle_rounds = 0u32;
    while drained <= MAX_REQUEST_PAYLOAD as usize && idle_rounds < 8 {
        match stream.read(&mut sink) {
            Ok(0) => return, // peer finished; fully clean close
            Ok(n) => drained += n,
            Err(e) => match e.kind() {
                std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut => idle_rounds += 1,
                std::io::ErrorKind::Interrupted => {}
                _ => return,
            },
        }
    }
}

/// Answers one decoded request against one pinned artifact generation.
/// Returns the response and whether the connection must close afterwards
/// (semantic errors close, like framing errors do).
fn handle(
    request: &Request,
    core: &Core,
    published: &Published,
    scratch: &mut TaintScratch,
) -> (Response, bool) {
    let artifacts = &published.artifacts;
    let response = match request {
        Request::Ping => Response::Pong,
        Request::Stats => Response::Stats(core.stats()),
        Request::AddressInfo { address } => Response::AddressInfo(
            artifacts.snapshot.cluster_of(*address).map(|cluster| AddressReport {
                address: *address,
                cluster,
                info: artifacts.snapshot.info(cluster).expect("cluster_of implies info").clone(),
            }),
        ),
        Request::ClusterSummary { cluster } => Response::ClusterSummary(
            artifacts
                .snapshot
                .info(*cluster)
                .map(|info| ClusterReport { cluster: *cluster, info: info.clone() }),
        ),
        Request::TaintTrace { loot, max_txs } => {
            let graph = &artifacts.graph;
            for &(tx, vout) in loot {
                if tx as usize >= graph.tx_count() || vout as usize >= graph.num_outputs(tx) {
                    let e = ServeError::InvalidRequest(format!(
                        "loot outpoint ({tx}, {vout}) is beyond the graph"
                    ));
                    return (Response::Error(WireError::from_serve_error(&e)), true);
                }
            }
            let bound = (*max_txs as usize).min(core.max_taint_txs);
            let trace = track_theft_indexed(
                graph,
                loot,
                &artifacts.labels,
                &artifacts.snapshot,
                bound,
                scratch,
            );
            Response::TaintTrace(TaintReport::from_trace(&trace))
        }
        Request::BalancePoint { height } => {
            Response::BalancePoint(point_at(&artifacts.balances, *height).map(BalanceReport::from))
        }
        // The binary scrape path: the same snapshot function the HTTP
        // exporter renders, so both report identical counter values for
        // identical server state. Never cached (the type byte is not
        // cacheable): a scrape must always be computed fresh.
        Request::MetricsDump => Response::MetricsDump(core.metrics_dump()),
    };
    (response, false)
}

//! A blocking client for the query service — one connection, many
//! requests, typed answers.

use crate::metrics::MetricsDump;
use crate::protocol::{
    frame, parse_frame_header, AddressReport, BalanceReport, ClusterReport, Request, Response,
    ServeError, ServerStats, TaintReport, FRAME_EPOCH_LEN, FRAME_HEADER_LEN, MAX_RESPONSE_PAYLOAD,
    PROTOCOL_VERSION_V1,
};
use fistful_chain::encode::Encodable;
use std::io::{Read, Write};
use std::net::{TcpStream, ToSocketAddrs};

/// A connected query-service client.
///
/// Wraps one [`TcpStream`]; every call writes a version-2 request frame
/// and blocks for the matching response frame (the protocol is strictly
/// request/response, so no pipelining bookkeeping is needed). Response
/// frames carry the server's artifact epoch, kept available through
/// [`Client::last_epoch`] — under live ingest it is the generation the
/// answer was computed from. Typed helpers ([`Client::address_info`],
/// [`Client::taint_trace`], ...) unwrap the response variant and surface
/// [`Response::Error`] frames as [`ServeError::Remote`].
pub struct Client {
    stream: TcpStream,
    /// Epoch field of the most recent response frame (`0` before any
    /// response, and for version-1 responses, which carry none).
    last_epoch: u64,
    /// Protocol version of the most recent response frame.
    last_version: u8,
}

impl Client {
    /// Connects to a server.
    pub fn connect<A: ToSocketAddrs>(addr: A) -> Result<Client, ServeError> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        Ok(Client { stream, last_epoch: 0, last_version: 0 })
    }

    /// The artifact epoch stamped on the most recent response frame
    /// (zero before the first response). A live server's epochs are
    /// nondecreasing over a connection's lifetime.
    pub fn last_epoch(&self) -> u64 {
        self.last_epoch
    }

    /// Sends a pre-encoded request payload and returns the raw response
    /// payload — the allocation-light path the load generator uses so
    /// that measurements cover the socket round trip, not client-side
    /// encoding.
    pub fn call_raw(&mut self, request_payload: &[u8]) -> Result<Vec<u8>, ServeError> {
        self.stream.write_all(&frame(request_payload))?;
        self.read_response_payload()
    }

    /// Reads exactly one response frame off the stream, updating
    /// [`Client::last_epoch`] and the remembered protocol version.
    fn read_response_payload(&mut self) -> Result<Vec<u8>, ServeError> {
        let mut header = [0u8; FRAME_HEADER_LEN];
        let mut filled = 0usize;
        while filled < FRAME_HEADER_LEN {
            match self.stream.read(&mut header[filled..])? {
                0 if filled == 0 => return Err(ServeError::Closed),
                0 => return Err(ServeError::Truncated),
                n => filled += n,
            }
        }
        let parsed = parse_frame_header(&header, MAX_RESPONSE_PAYLOAD)?;
        if parsed.epoch_bytes() > 0 {
            let mut epoch = [0u8; FRAME_EPOCH_LEN];
            let mut filled = 0usize;
            while filled < FRAME_EPOCH_LEN {
                match self.stream.read(&mut epoch[filled..])? {
                    0 => return Err(ServeError::Truncated),
                    n => filled += n,
                }
            }
            self.last_epoch = u64::from_le_bytes(epoch);
        } else {
            self.last_epoch = 0;
        }
        self.last_version = parsed.version;
        let len = parsed.payload_len as usize;
        let mut payload = vec![0u8; len];
        let mut filled = 0usize;
        while filled < len {
            match self.stream.read(&mut payload[filled..])? {
                0 => return Err(ServeError::Truncated),
                n => filled += n,
            }
        }
        Ok(payload)
    }

    /// Sends a request and decodes the response (in whichever protocol
    /// version the server framed it).
    pub fn call(&mut self, request: &Request) -> Result<Response, ServeError> {
        let payload = self.call_raw(&request.encode_to_vec())?;
        if self.last_version == PROTOCOL_VERSION_V1 {
            Response::decode_payload_v1(&payload)
        } else {
            Response::decode_payload(&payload)
        }
    }

    /// Sends every request as one coalesced write and reads the responses
    /// back in order — the pipelined path the event-driven serve loop is
    /// built for. Each response decodes in whichever protocol version the
    /// server framed it; [`Client::last_epoch`] ends at the final frame's
    /// epoch. Works against the threaded server too (it answers the
    /// buffered frames one at a time), which is exactly what the
    /// differential tests exploit.
    pub fn pipeline(&mut self, requests: &[Request]) -> Result<Vec<Response>, ServeError> {
        let mut blob = Vec::new();
        for request in requests {
            blob.extend_from_slice(&frame(&request.encode_to_vec()));
        }
        self.stream.write_all(&blob)?;
        let mut responses = Vec::with_capacity(requests.len());
        for _ in requests {
            let payload = self.read_response_payload()?;
            responses.push(if self.last_version == PROTOCOL_VERSION_V1 {
                Response::decode_payload_v1(&payload)?
            } else {
                Response::decode_payload(&payload)?
            });
        }
        Ok(responses)
    }

    fn expect<T>(
        &mut self,
        request: &Request,
        pick: impl FnOnce(Response) -> Option<T>,
    ) -> Result<T, ServeError> {
        match self.call(request)? {
            Response::Error(e) => Err(ServeError::Remote(e)),
            other => pick(other).ok_or(ServeError::UnexpectedResponse),
        }
    }

    /// Liveness probe.
    pub fn ping(&mut self) -> Result<(), ServeError> {
        self.expect(&Request::Ping, |r| matches!(r, Response::Pong).then_some(()))
    }

    /// Server counters and artifact dimensions.
    pub fn stats(&mut self) -> Result<ServerStats, ServeError> {
        self.expect(&Request::Stats, |r| match r {
            Response::Stats(s) => Some(s),
            _ => None,
        })
    }

    /// Cluster membership and aggregates for one address; `None` when the
    /// snapshot does not cover it.
    pub fn address_info(&mut self, address: u32) -> Result<Option<AddressReport>, ServeError> {
        self.expect(&Request::AddressInfo { address }, |r| match r {
            Response::AddressInfo(v) => Some(v),
            _ => None,
        })
    }

    /// Aggregates of one cluster; `None` for an unknown id.
    pub fn cluster_summary(&mut self, cluster: u32) -> Result<Option<ClusterReport>, ServeError> {
        self.expect(&Request::ClusterSummary { cluster }, |r| match r {
            Response::ClusterSummary(v) => Some(v),
            _ => None,
        })
    }

    /// A bounded taint walk from the given loot outpoints.
    pub fn taint_trace(
        &mut self,
        loot: &[(u32, u32)],
        max_txs: u32,
    ) -> Result<TaintReport, ServeError> {
        let request = Request::TaintTrace { loot: loot.to_vec(), max_txs };
        self.expect(&request, |r| match r {
            Response::TaintTrace(t) => Some(t),
            _ => None,
        })
    }

    /// A full snapshot of the server's metrics registry over the binary
    /// protocol — the same counters, gauges, and histograms the HTTP
    /// `/metrics` endpoint renders, without needing a second port.
    pub fn metrics_dump(&mut self) -> Result<MetricsDump, ServeError> {
        self.expect(&Request::MetricsDump, |r| match r {
            Response::MetricsDump(d) => Some(d),
            _ => None,
        })
    }

    /// The balance-series sample at or before `height`; `None` when the
    /// height precedes the first sample.
    pub fn balance_point(&mut self, height: u64) -> Result<Option<BalanceReport>, ServeError> {
        self.expect(&Request::BalancePoint { height }, |r| match r {
            Response::BalancePoint(v) => Some(v),
            _ => None,
        })
    }
}

//! First-party metrics: a std-only, lock-free registry for the serve
//! stack, plus the Prometheus text-format renderer.
//!
//! # Design
//!
//! Every primitive is a thin wrapper over [`AtomicU64`] updated with
//! [`Ordering::Relaxed`], so the request hot path pays one relaxed
//! atomic add per event — no locks, no allocation, no dynamic
//! registration. The full metric set is a plain struct
//! ([`ServeMetrics`]) built once per server core; "registration" is the
//! struct definition itself, which keeps lookup at field-offset cost
//! and makes the inventory auditable at a glance.
//!
//! Latencies go into a [`LatencyHistogram`]: a fixed array of log₂
//! buckets spanning 1 µs to ~16.8 s (bucket `i` counts observations at
//! most `2^i` µs; one final bucket catches everything beyond), plus a
//! running sum and count for averages. Buckets are stored
//! *non-cumulative* (each `fetch_add` touches exactly one slot) and
//! rendered cumulative at scrape time, the way Prometheus expects.
//!
//! # Exposure
//!
//! Scrapes never walk the live atomics twice: a server snapshots
//! everything into a [`MetricsDump`] — a plain, encodable value — and
//! both exposition paths consume *that*. The binary `MetricsDump`
//! request returns it over the wire for the typed client; the HTTP
//! exporter (see [`crate::httpexpo`]) feeds it through
//! [`render_prometheus`]. Both views of one snapshot function is what
//! makes the differential test ("binary scrape equals HTTP scrape")
//! hold by construction.
//!
//! ```
//! use fistful_serve::metrics::{LatencyHistogram, MetricsDump, render_prometheus};
//! use std::time::Duration;
//!
//! let h = LatencyHistogram::new();
//! h.observe(Duration::from_micros(120));
//! let dump = MetricsDump {
//!     counters: vec![("demo_total".to_string(), 1)],
//!     gauges: Vec::new(),
//!     histograms: vec![h.dump("demo_latency_seconds")],
//! };
//! let text = render_prometheus(&dump);
//! assert!(text.contains("# TYPE demo_total counter"));
//! assert!(text.contains("demo_latency_seconds_bucket{le=\"+Inf\"} 1"));
//! ```

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

/// Number of finite log₂ buckets: bounds `2^0 .. 2^24` µs, i.e. 1 µs up
/// to 16.777216 s.
pub const FINITE_BUCKETS: usize = 25;

/// Total buckets including the overflow bucket (`+Inf`).
pub const HISTOGRAM_BUCKETS: usize = FINITE_BUCKETS + 1;

/// Number of request-type slots in the per-type counter and histogram
/// arrays: the six typed requests, the metrics dump, and a catch-all
/// for unknown type bytes.
pub const REQUEST_KINDS: usize = 8;

/// Prometheus `type` label values for each request-kind slot, indexed
/// by [`kind_index`].
pub const KIND_LABELS: [&str; REQUEST_KINDS] =
    ["ping", "stats", "addr", "cluster", "taint", "balance", "metrics", "other"];

/// Maps a wire-protocol request type byte to its slot in the per-type
/// arrays. Type bytes `0..=6` map directly; anything else (including
/// garbage that will fail to decode) lands in the trailing `other`
/// slot.
pub fn kind_index(type_byte: u8) -> usize {
    if (type_byte as usize) < REQUEST_KINDS - 1 {
        type_byte as usize
    } else {
        REQUEST_KINDS - 1
    }
}

/// A monotonically increasing event count. One relaxed atomic add per
/// increment; reads are relaxed loads.
#[derive(Debug, Default)]
pub struct Counter(AtomicU64);

impl Counter {
    /// A counter starting at zero.
    pub const fn new() -> Counter {
        Counter(AtomicU64::new(0))
    }

    /// Adds one.
    pub fn inc(&self) {
        self.0.fetch_add(1, Ordering::Relaxed);
    }

    /// Adds `n`.
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// An instantaneous level (in-flight requests, open connections, queue
/// depth). Same storage as [`Counter`] but may go down as well as up.
#[derive(Debug, Default)]
pub struct Gauge(AtomicU64);

impl Gauge {
    /// A gauge starting at zero.
    pub const fn new() -> Gauge {
        Gauge(AtomicU64::new(0))
    }

    /// Adds one.
    pub fn inc(&self) {
        self.0.fetch_add(1, Ordering::Relaxed);
    }

    /// Subtracts one (saturating at zero via wrapping discipline: every
    /// `dec` pairs with a prior `inc`).
    pub fn dec(&self) {
        self.0.fetch_sub(1, Ordering::Relaxed);
    }

    /// Sets the level outright.
    pub fn set(&self, v: u64) {
        self.0.store(v, Ordering::Relaxed);
    }

    /// Current level.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A fixed-bucket log₂ latency histogram.
///
/// Bucket `i < FINITE_BUCKETS` counts observations of at most `2^i` µs;
/// the final bucket counts everything larger. `observe` is three
/// relaxed atomic adds (bucket, sum, count) and never allocates.
#[derive(Debug)]
pub struct LatencyHistogram {
    buckets: [AtomicU64; HISTOGRAM_BUCKETS],
    sum_micros: AtomicU64,
    count: AtomicU64,
}

impl Default for LatencyHistogram {
    fn default() -> LatencyHistogram {
        LatencyHistogram::new()
    }
}

impl LatencyHistogram {
    /// An empty histogram.
    pub fn new() -> LatencyHistogram {
        LatencyHistogram {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            sum_micros: AtomicU64::new(0),
            count: AtomicU64::new(0),
        }
    }

    /// The upper bound of finite bucket `i`, in microseconds.
    pub fn bound_micros(i: usize) -> u64 {
        1u64 << i
    }

    /// Records one observation.
    pub fn observe(&self, d: Duration) {
        let micros = u64::try_from(d.as_micros()).unwrap_or(u64::MAX);
        let idx = if micros <= 1 {
            0
        } else {
            // Smallest i with 2^i >= micros, clamped into the overflow
            // bucket past the finite range.
            ((64 - (micros - 1).leading_zeros()) as usize).min(FINITE_BUCKETS)
        };
        self.buckets[idx].fetch_add(1, Ordering::Relaxed);
        self.sum_micros.fetch_add(micros, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
    }

    /// Total observations.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Sum of all observed latencies, in microseconds.
    pub fn sum_micros(&self) -> u64 {
        self.sum_micros.load(Ordering::Relaxed)
    }

    /// Snapshots this histogram into a named, plain-value
    /// [`HistogramDump`] (non-cumulative buckets; the renderer
    /// accumulates).
    pub fn dump(&self, name: &str) -> HistogramDump {
        HistogramDump {
            name: name.to_string(),
            buckets: self.buckets.iter().map(|b| b.load(Ordering::Relaxed)).collect(),
            sum_micros: self.sum_micros(),
            count: self.count(),
        }
    }
}

/// The full serve-stack metric registry: one instance per server core,
/// shared by every worker thread, the event loop, and the live
/// pipeline. Fields are the registration — adding a metric means adding
/// a field here and a line in the core's dump.
#[derive(Debug, Default)]
pub struct ServeMetrics {
    /// Requests processed, by request type, counted at dispatch entry
    /// (cache hits included) so scraped totals match what a load
    /// generator sent.
    pub requests: [Counter; REQUEST_KINDS],
    /// End-to-end request latency (decode, handle, encode, frame) by
    /// request type.
    pub request_latency: [LatencyHistogram; REQUEST_KINDS],
    /// Requests currently inside the request core.
    pub inflight: Gauge,
    /// Open client connections (both engines).
    pub connections: Gauge,
    /// Event-loop dispatch-queue depth, sampled each loop iteration.
    pub queue_depth: Gauge,
    /// Event-loop iterations that ran with the dispatch queue full
    /// (readable polling suppressed — admission control engaged).
    pub backpressure_stalls: Counter,
    /// Typed `Busy` rejections: connection-cap sheds plus per-connection
    /// pipelining-budget rejections.
    pub busy_sheds: Counter,
    /// Timer-wheel expirations that killed a stalled connection
    /// (mid-frame read stall or write stall).
    pub stall_expirations: Counter,
    /// Timer-wheel expirations that closed an idle keep-alive
    /// connection.
    pub idle_expirations: Counter,
    /// Time a decoded request waited in the event-loop dispatch queue
    /// before a worker picked it up.
    pub dispatch_wait: LatencyHistogram,
    /// Epoch of the most recently published artifact generation.
    pub live_epoch: Gauge,
    /// Wall time of one live-pipeline epoch publish: delta export,
    /// graph extension, artifact rebuild, and the hot swap itself.
    pub swap_latency: LatencyHistogram,
    /// Blocks fed through the live ingest pipeline.
    pub ingest_blocks: Counter,
}

impl ServeMetrics {
    /// A zeroed registry.
    pub fn new() -> ServeMetrics {
        ServeMetrics::default()
    }
}

/// One snapshotted histogram inside a [`MetricsDump`]. `name` may carry
/// Prometheus labels (e.g. `foo_seconds{type="addr"}`); buckets are
/// non-cumulative and ordered by [`LatencyHistogram::bound_micros`].
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct HistogramDump {
    /// Series name, optionally with a `{label="value"}` suffix.
    pub name: String,
    /// Per-bucket observation counts (not cumulative), the last bucket
    /// being the overflow (`+Inf`) bucket.
    pub buckets: Vec<u64>,
    /// Sum of observed values in microseconds.
    pub sum_micros: u64,
    /// Total observations.
    pub count: u64,
}

/// A point-in-time snapshot of every metric a server exposes. This is
/// the single source both exposition paths render from: the binary
/// `MetricsDump` response encodes it verbatim, and the HTTP exporter
/// formats it with [`render_prometheus`].
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct MetricsDump {
    /// Monotonic counters as `(series name, value)` pairs.
    pub counters: Vec<(String, u64)>,
    /// Instantaneous gauges as `(series name, value)` pairs.
    pub gauges: Vec<(String, u64)>,
    /// Latency histograms.
    pub histograms: Vec<HistogramDump>,
}

impl MetricsDump {
    /// Looks up a counter by its full series name (including labels).
    pub fn counter(&self, name: &str) -> Option<u64> {
        self.counters.iter().find(|(n, _)| n == name).map(|&(_, v)| v)
    }

    /// Looks up a gauge by its full series name.
    pub fn gauge(&self, name: &str) -> Option<u64> {
        self.gauges.iter().find(|(n, _)| n == name).map(|&(_, v)| v)
    }
}

/// Splits `foo_total{type="addr"}` into `("foo_total", `{type="addr"}`)`;
/// the label part is empty when the name carries none.
fn split_labels(name: &str) -> (&str, &str) {
    match name.find('{') {
        Some(at) => (&name[..at], &name[at..]),
        None => (name, ""),
    }
}

/// Help text for a metric family. Every family the serve stack emits
/// has an entry; unknown families get a generic line so renders of
/// hand-built dumps stay valid.
fn family_help(family: &str) -> &'static str {
    match family {
        "fistful_requests_total" => "Requests processed, by request type (cache hits included).",
        "fistful_request_latency_seconds" => {
            "End-to-end request latency inside the request core, by request type."
        }
        "fistful_inflight_requests" => "Requests currently being processed.",
        "fistful_connections" => "Open client connections.",
        "fistful_queue_depth" => "Event-loop dispatch-queue depth at the last loop iteration.",
        "fistful_backpressure_stalls_total" => {
            "Event-loop iterations that suppressed readable polling because the dispatch queue was full."
        }
        "fistful_busy_sheds_total" => {
            "Typed Busy rejections (connection-cap sheds and pipelining-budget rejections)."
        }
        "fistful_timer_stall_expirations_total" => {
            "Connections closed by the timer wheel for a mid-frame read stall or write stall."
        }
        "fistful_timer_idle_expirations_total" => {
            "Idle keep-alive connections closed by the timer wheel."
        }
        "fistful_dispatch_wait_seconds" => {
            "Time a decoded request waited in the event-loop dispatch queue."
        }
        "fistful_live_epoch" => "Epoch of the most recently published artifact generation.",
        "fistful_swaps_total" => "Artifact hot swaps published to this server.",
        "fistful_swap_latency_seconds" => "Wall time of one live-pipeline epoch publish.",
        "fistful_ingest_blocks_total" => "Blocks fed through the live ingest pipeline.",
        "fistful_cache_hits_total" => "Response-cache hits, by shard.",
        "fistful_cache_misses_total" => "Response-cache misses, by shard.",
        "fistful_cache_evictions_total" => {
            "Response-cache entries removed, by shard (capacity evictions and stale reaps)."
        }
        "fistful_uptime_seconds" => "Seconds since the server core was created.",
        _ => "(no help recorded for this series)",
    }
}

fn push_header(out: &mut String, emitted: &mut Vec<String>, family: &str, kind: &str) {
    if emitted.iter().any(|f| f == family) {
        return;
    }
    emitted.push(family.to_string());
    out.push_str("# HELP ");
    out.push_str(family);
    out.push(' ');
    out.push_str(family_help(family));
    out.push('\n');
    out.push_str("# TYPE ");
    out.push_str(family);
    out.push(' ');
    out.push_str(kind);
    out.push('\n');
}

/// Formats microseconds as decimal seconds without float rounding
/// noise: `1` µs renders as `0.000001`.
fn micros_as_seconds(micros: u64) -> String {
    format!("{}.{:06}", micros / 1_000_000, micros % 1_000_000)
}

/// Renders a snapshot in the Prometheus text exposition format
/// (version 0.0.4): one `# HELP`/`# TYPE` pair per family, histogram
/// buckets cumulative with a closing `+Inf` bucket, `le` bounds and
/// sums in seconds.
pub fn render_prometheus(dump: &MetricsDump) -> String {
    let mut out = String::new();
    let mut emitted: Vec<String> = Vec::new();
    for (name, value) in &dump.counters {
        let (family, labels) = split_labels(name);
        push_header(&mut out, &mut emitted, family, "counter");
        out.push_str(family);
        out.push_str(labels);
        out.push(' ');
        out.push_str(&value.to_string());
        out.push('\n');
    }
    for (name, value) in &dump.gauges {
        let (family, labels) = split_labels(name);
        push_header(&mut out, &mut emitted, family, "gauge");
        out.push_str(family);
        out.push_str(labels);
        out.push(' ');
        out.push_str(&value.to_string());
        out.push('\n');
    }
    for h in &dump.histograms {
        let (family, labels) = split_labels(&h.name);
        push_header(&mut out, &mut emitted, family, "histogram");
        // `le` joins any existing labels inside one brace set.
        let le_prefix = if labels.is_empty() {
            "{".to_string()
        } else {
            format!("{},", &labels[..labels.len() - 1])
        };
        let mut cumulative = 0u64;
        for (i, bucket) in h.buckets.iter().enumerate() {
            cumulative += bucket;
            let le = if i < h.buckets.len().saturating_sub(1) {
                micros_as_seconds(LatencyHistogram::bound_micros(i))
            } else {
                "+Inf".to_string()
            };
            out.push_str(&format!("{family}_bucket{le_prefix}le=\"{le}\"}} {cumulative}\n"));
        }
        out.push_str(&format!("{family}_sum{labels} {}\n", micros_as_seconds(h.sum_micros)));
        out.push_str(&format!("{family}_count{labels} {}\n", h.count));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn counter_and_gauge_basics() {
        let c = Counter::new();
        c.inc();
        c.add(4);
        assert_eq!(c.get(), 5);
        let g = Gauge::new();
        g.inc();
        g.inc();
        g.dec();
        assert_eq!(g.get(), 1);
        g.set(42);
        assert_eq!(g.get(), 42);
    }

    #[test]
    fn histogram_buckets_are_log2_with_overflow() {
        let h = LatencyHistogram::new();
        h.observe(Duration::from_micros(0));
        h.observe(Duration::from_micros(1));
        h.observe(Duration::from_micros(2));
        h.observe(Duration::from_micros(3));
        h.observe(Duration::from_micros(1 << 24));
        h.observe(Duration::from_secs(120)); // way past the finite range
        let d = h.dump("t");
        assert_eq!(d.buckets.len(), HISTOGRAM_BUCKETS);
        assert_eq!(d.buckets[0], 2, "0 and 1 us share the first bucket");
        assert_eq!(d.buckets[1], 1, "2 us lands at bound 2^1");
        assert_eq!(d.buckets[2], 1, "3 us lands at bound 2^2");
        assert_eq!(d.buckets[FINITE_BUCKETS - 1], 1, "2^24 us is the last finite bound");
        assert_eq!(d.buckets[FINITE_BUCKETS], 1, "120 s overflows");
        assert_eq!(d.count, 6);
        assert_eq!(d.sum_micros, 1 + 2 + 3 + (1 << 24) + 120_000_000);
    }

    #[test]
    fn kind_index_maps_type_bytes() {
        assert_eq!(kind_index(0), 0);
        assert_eq!(kind_index(6), 6);
        assert_eq!(kind_index(7), 7);
        assert_eq!(kind_index(0xEE), 7);
        for b in 0..=u8::MAX {
            assert!(kind_index(b) < REQUEST_KINDS);
        }
    }

    fn sample_dump() -> MetricsDump {
        let h = LatencyHistogram::new();
        h.observe(Duration::from_micros(5));
        h.observe(Duration::from_micros(900));
        let empty = LatencyHistogram::new();
        MetricsDump {
            counters: vec![
                ("fistful_requests_total{type=\"ping\"}".to_string(), 7),
                ("fistful_requests_total{type=\"addr\"}".to_string(), 3),
                ("fistful_busy_sheds_total".to_string(), 0),
            ],
            gauges: vec![("fistful_connections".to_string(), 2)],
            histograms: vec![
                h.dump("fistful_request_latency_seconds{type=\"ping\"}"),
                empty.dump("fistful_dispatch_wait_seconds"),
            ],
        }
    }

    /// The golden exposition-validity test: every series is preceded by
    /// a `# TYPE` for its family, histogram buckets are cumulative and
    /// end with `+Inf`, and no series line repeats.
    #[test]
    fn rendered_exposition_is_valid_prometheus_text() {
        let text = render_prometheus(&sample_dump());
        let mut typed: HashSet<&str> = HashSet::new();
        let mut seen_series: HashSet<&str> = HashSet::new();
        let mut last_bucket: Option<(String, u64)> = None;
        for line in text.lines() {
            assert!(!line.is_empty());
            if let Some(rest) = line.strip_prefix("# TYPE ") {
                let mut parts = rest.split(' ');
                let family = parts.next().unwrap();
                let kind = parts.next().unwrap();
                assert!(matches!(kind, "counter" | "gauge" | "histogram"), "kind: {kind}");
                assert!(typed.insert(family), "duplicate # TYPE for {family}");
                continue;
            }
            if line.starts_with("# HELP ") {
                continue;
            }
            let (series, value) = line.rsplit_once(' ').expect("series line");
            assert!(seen_series.insert(series), "duplicate series {series}");
            let (name, _) = split_labels(series);
            let family = name
                .strip_suffix("_bucket")
                .or_else(|| name.strip_suffix("_sum"))
                .or_else(|| name.strip_suffix("_count"))
                .filter(|f| typed.contains(f))
                .unwrap_or(name);
            assert!(typed.contains(family), "series {series} has no # TYPE");
            if name.ends_with("_bucket") {
                let v: u64 = value.parse().expect("bucket count");
                let key = series.split("le=").next().unwrap().to_string();
                if let Some((prev_key, prev)) = &last_bucket {
                    if *prev_key == key {
                        assert!(v >= *prev, "buckets must be cumulative: {series}");
                    }
                }
                last_bucket = Some((key, v));
                if series.contains("le=\"+Inf\"") {
                    last_bucket = None;
                }
            }
        }
        // Every histogram's +Inf bucket equals its _count.
        assert!(text.contains(
            "fistful_request_latency_seconds_bucket{type=\"ping\",le=\"+Inf\"} 2"
        ));
        assert!(text.contains("fistful_request_latency_seconds_count{type=\"ping\"} 2"));
        assert!(text.contains("fistful_dispatch_wait_seconds_bucket{le=\"+Inf\"} 0"));
        assert!(text.contains("fistful_dispatch_wait_seconds_count 0"));
        // `le` bounds and sums are rendered in seconds.
        assert!(text.contains("le=\"0.000001\""));
        assert!(text.contains("fistful_request_latency_seconds_sum{type=\"ping\"} 0.000905"));
    }

    #[test]
    fn dump_lookup_helpers_find_series() {
        let dump = sample_dump();
        assert_eq!(dump.counter("fistful_requests_total{type=\"ping\"}"), Some(7));
        assert_eq!(dump.counter("nope"), None);
        assert_eq!(dump.gauge("fistful_connections"), Some(2));
    }
}

//! The query service's wire protocol: framing, requests, responses, and
//! typed errors.
//!
//! # Frame format (versions 1 and 2)
//!
//! Every message — request or response — travels in one frame built on the
//! consensus-style primitives of [`fistful_chain::encode`] (little-endian
//! fixed-width integers, canonical `CompactSize` counts, length-prefixed
//! UTF-8 strings):
//!
//! | field    | bytes | contents                                          |
//! |----------|-------|---------------------------------------------------|
//! | magic    | 4     | `"FSRV"` ([`PROTOCOL_MAGIC`])                     |
//! | version  | 1     | `1` or `2` ([`PROTOCOL_VERSION`] is `2`)          |
//! | length   | 4     | payload byte length, u32 little-endian            |
//! | epoch    | 8     | **v2 only**: artifact epoch, u64 little-endian    |
//! | payload  | *n*   | the message body, exactly `length` bytes          |
//!
//! Version 2 (the live hot-swap protocol) inserts an 8-byte artifact
//! epoch between the fixed header and the payload; `length` counts the
//! payload only, so a v1 parser that knows both versions skips exactly
//! [`FRAME_EPOCH_LEN`] extra bytes. On responses the epoch names the
//! published artifact generation that answered; on requests it is
//! reserved (clients send `0`, servers ignore it). Both sides still speak
//! version 1 — a server answers each connection in the version its
//! request arrived with, and v1 frames carry no epoch — so old clients
//! keep decoding across the bump.
//!
//! The first payload byte is the message type. Request payloads are capped
//! at [`MAX_REQUEST_PAYLOAD`] and response payloads at
//! [`MAX_RESPONSE_PAYLOAD`]; both sides check the declared length against
//! their cap *before* allocating anything, so an adversarial length field
//! cannot cause an allocation blowup. A frame whose magic, version, or
//! length is unacceptable is answered with a [`Response::Error`] frame and
//! the connection is closed.
//!
//! # Request payloads
//!
//! | type | request                          | body after the type byte     |
//! |------|----------------------------------|------------------------------|
//! | 0    | [`Request::Ping`]                | (empty)                      |
//! | 1    | [`Request::Stats`]               | (empty)                      |
//! | 2    | [`Request::AddressInfo`]         | address (u32)                |
//! | 3    | [`Request::ClusterSummary`]      | cluster (u32)                |
//! | 4    | [`Request::TaintTrace`]          | `CompactSize` loot count, then (tx u32, vout u32) per outpoint; max_txs (u32) |
//! | 5    | [`Request::BalancePoint`]        | height (u64)                 |
//! | 6    | [`Request::MetricsDump`]         | (empty)                      |
//!
//! # Response payloads
//!
//! Responses reuse the request's type byte (`0`–`6`); `0xEE` is
//! [`Response::Error`]. Optional bodies (an address the snapshot does not
//! cover, a height before the first sample) are a `0`/`1` presence byte
//! followed, when present, by the record. Amounts are u64 satoshis.
//! Cluster records are the [`ClusterInfo`] encoding already specified in
//! [`fistful_core::snapshot`].
//!
//! Decoding is total: arbitrary bytes produce a typed [`ServeError`],
//! never a panic (the wire proptests in the root `tests/properties.rs`
//! fuzz both directions).

use crate::metrics::{HistogramDump, MetricsDump};
use fistful_chain::amount::Amount;
use fistful_chain::encode::{Decodable, DecodeError, Encodable, Reader, Writer};
use fistful_core::snapshot::ClusterInfo;
use fistful_flow::movement::{MovementKind, TaintedTx};
use fistful_flow::theft::TheftTrace;
use fistful_flow::BalancePoint;

/// The four magic bytes opening every frame.
pub const PROTOCOL_MAGIC: [u8; 4] = *b"FSRV";

/// The current protocol version: epoch-stamped frames.
pub const PROTOCOL_VERSION: u8 = 2;

/// The legacy protocol version: identical frames without the epoch field.
/// Servers still answer it so pre-hot-swap clients keep working.
pub const PROTOCOL_VERSION_V1: u8 = 1;

/// Byte length of the fixed frame header (magic + version + payload
/// length) — common to both versions; v2 frames follow it with
/// [`FRAME_EPOCH_LEN`] epoch bytes.
pub const FRAME_HEADER_LEN: usize = 4 + 1 + 4;

/// Byte length of the v2 epoch field that sits between the fixed header
/// and the payload.
pub const FRAME_EPOCH_LEN: usize = 8;

/// Largest request payload a server accepts (a taint request with a few
/// thousand loot outpoints fits comfortably).
pub const MAX_REQUEST_PAYLOAD: u32 = 1 << 16;

/// Largest response payload a client accepts (a deep taint trace with all
/// its movement records fits comfortably).
pub const MAX_RESPONSE_PAYLOAD: u32 = 1 << 22;

/// Everything that can go wrong speaking the protocol, on either side.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ServeError {
    /// An underlying socket operation failed (message of the `io::Error`).
    Io(String),
    /// The first four bytes of a frame were not [`PROTOCOL_MAGIC`].
    BadMagic([u8; 4]),
    /// The version byte named a protocol this build does not speak.
    UnsupportedVersion(u8),
    /// The declared payload length exceeded the receiver's cap.
    FrameTooLarge {
        /// Declared payload length.
        len: u32,
        /// The receiver's cap ([`MAX_REQUEST_PAYLOAD`] or
        /// [`MAX_RESPONSE_PAYLOAD`]).
        limit: u32,
    },
    /// The peer closed the connection mid-frame.
    Truncated,
    /// The peer closed the connection at a frame boundary when a message
    /// was still expected.
    Closed,
    /// The payload failed structural decoding.
    Decode(DecodeError),
    /// The payload's type byte named no known message.
    UnknownMessage(u8),
    /// A structurally valid request violated a semantic invariant (e.g. a
    /// loot outpoint beyond the graph).
    InvalidRequest(String),
    /// The server shed load: the connection cap or a per-connection
    /// pipelining budget was exceeded (the message says which).
    Busy(String),
    /// The server answered with an error frame.
    Remote(WireError),
    /// The server answered with a well-formed response of the wrong type.
    UnexpectedResponse,
    /// The artifacts handed to the server do not describe the same chain.
    MismatchedArtifacts(&'static str),
}

impl std::fmt::Display for ServeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServeError::Io(msg) => write!(f, "i/o error: {msg}"),
            ServeError::BadMagic(m) => write!(f, "bad frame magic {m:02x?}"),
            ServeError::UnsupportedVersion(v) => {
                write!(
                    f,
                    "unsupported protocol version {v} (supported: \
                     {PROTOCOL_VERSION_V1}-{PROTOCOL_VERSION})"
                )
            }
            ServeError::FrameTooLarge { len, limit } => {
                write!(f, "frame payload of {len} bytes exceeds the {limit}-byte limit")
            }
            ServeError::Truncated => write!(f, "connection closed mid-frame"),
            ServeError::Closed => write!(f, "connection closed"),
            ServeError::Decode(e) => write!(f, "payload decode: {e}"),
            ServeError::UnknownMessage(t) => write!(f, "unknown message type {t:#x}"),
            ServeError::InvalidRequest(msg) => write!(f, "invalid request: {msg}"),
            ServeError::Busy(msg) => write!(f, "server busy: {msg}"),
            ServeError::Remote(e) => write!(f, "server error: {e}"),
            ServeError::UnexpectedResponse => write!(f, "response type does not match request"),
            ServeError::MismatchedArtifacts(what) => {
                write!(f, "mismatched serving artifacts: {what}")
            }
        }
    }
}

impl std::error::Error for ServeError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ServeError::Decode(e) => Some(e),
            _ => None,
        }
    }
}

impl From<DecodeError> for ServeError {
    fn from(e: DecodeError) -> ServeError {
        ServeError::Decode(e)
    }
}

impl From<std::io::Error> for ServeError {
    fn from(e: std::io::Error) -> ServeError {
        ServeError::Io(e.to_string())
    }
}

/// The error codes a server can put on the wire.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u8)]
pub enum ErrorCode {
    /// The request frame's magic was wrong.
    BadMagic = 1,
    /// The request frame's version byte was wrong.
    UnsupportedVersion = 2,
    /// The request frame declared an oversized payload.
    FrameTooLarge = 3,
    /// The request payload failed structural decoding.
    Malformed = 4,
    /// The request payload's type byte named no known request.
    UnknownRequest = 5,
    /// A structurally valid request violated a semantic invariant.
    InvalidRequest = 6,
    /// The server shed load (connection cap or pipelining budget); retry
    /// later or on a fresh connection.
    Busy = 7,
}

impl ErrorCode {
    fn from_byte(b: u8) -> Result<ErrorCode, DecodeError> {
        Ok(match b {
            1 => ErrorCode::BadMagic,
            2 => ErrorCode::UnsupportedVersion,
            3 => ErrorCode::FrameTooLarge,
            4 => ErrorCode::Malformed,
            5 => ErrorCode::UnknownRequest,
            6 => ErrorCode::InvalidRequest,
            7 => ErrorCode::Busy,
            other => return Err(DecodeError::InvalidValue(other)),
        })
    }
}

/// An error as carried by a [`Response::Error`] frame.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WireError {
    /// What class of failure the server saw.
    pub code: ErrorCode,
    /// A human-readable description.
    pub message: String,
}

impl std::fmt::Display for WireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{:?}: {}", self.code, self.message)
    }
}

impl WireError {
    /// Maps a server-side [`ServeError`] onto its wire representation —
    /// what the peer is told before the connection closes.
    pub fn from_serve_error(e: &ServeError) -> WireError {
        let (code, message) = match e {
            ServeError::BadMagic(_) => (ErrorCode::BadMagic, e.to_string()),
            ServeError::UnsupportedVersion(_) => (ErrorCode::UnsupportedVersion, e.to_string()),
            ServeError::FrameTooLarge { .. } => (ErrorCode::FrameTooLarge, e.to_string()),
            ServeError::UnknownMessage(_) => (ErrorCode::UnknownRequest, e.to_string()),
            ServeError::InvalidRequest(_) => (ErrorCode::InvalidRequest, e.to_string()),
            ServeError::Busy(_) => (ErrorCode::Busy, e.to_string()),
            other => (ErrorCode::Malformed, other.to_string()),
        };
        WireError { code, message }
    }
}

// ----- framing -----

/// Wraps a payload in a complete current-version frame stamped with epoch
/// `0` — what clients send (the request epoch is reserved) and what a
/// frozen-artifact server answers with.
pub fn frame(payload: &[u8]) -> Vec<u8> {
    frame_at(payload, 0)
}

/// Wraps a payload in a complete v2 frame (magic, version, length, epoch,
/// payload) stamped with the given artifact epoch.
pub fn frame_at(payload: &[u8], epoch: u64) -> Vec<u8> {
    let mut out = Vec::with_capacity(FRAME_HEADER_LEN + FRAME_EPOCH_LEN + payload.len());
    out.extend_from_slice(&PROTOCOL_MAGIC);
    out.push(PROTOCOL_VERSION);
    out.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    out.extend_from_slice(&epoch.to_le_bytes());
    out.extend_from_slice(payload);
    out
}

/// Wraps a payload in a complete legacy v1 frame (no epoch field) — what
/// the server answers v1 connections with.
pub fn frame_v1(payload: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(FRAME_HEADER_LEN + payload.len());
    out.extend_from_slice(&PROTOCOL_MAGIC);
    out.push(PROTOCOL_VERSION_V1);
    out.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    out.extend_from_slice(payload);
    out
}

/// A validated frame header: which protocol version the frame speaks and
/// how many payload bytes follow. For a v2 frame, [`FRAME_EPOCH_LEN`]
/// epoch bytes sit between the fixed header and the payload
/// ([`FrameHeader::epoch_bytes`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FrameHeader {
    /// The frame's protocol version ([`PROTOCOL_VERSION_V1`] or
    /// [`PROTOCOL_VERSION`]).
    pub version: u8,
    /// Declared payload byte length (excluding the epoch field).
    pub payload_len: u32,
}

impl FrameHeader {
    /// How many epoch bytes follow the fixed header before the payload:
    /// [`FRAME_EPOCH_LEN`] for v2, zero for v1.
    pub fn epoch_bytes(&self) -> usize {
        if self.version >= PROTOCOL_VERSION {
            FRAME_EPOCH_LEN
        } else {
            0
        }
    }
}

/// Validates a frame header, accepting both protocol versions, and
/// returns the declared version and payload length.
///
/// `limit` is the receiver's payload cap; the check happens here, before
/// any allocation, so a lying length field cannot balloon memory.
pub fn parse_frame_header(
    header: &[u8; FRAME_HEADER_LEN],
    limit: u32,
) -> Result<FrameHeader, ServeError> {
    let magic: [u8; 4] = header[..4].try_into().expect("4 bytes");
    if magic != PROTOCOL_MAGIC {
        return Err(ServeError::BadMagic(magic));
    }
    let version = header[4];
    if version != PROTOCOL_VERSION && version != PROTOCOL_VERSION_V1 {
        return Err(ServeError::UnsupportedVersion(version));
    }
    let payload_len = u32::from_le_bytes(header[5..].try_into().expect("4 bytes"));
    if payload_len > limit {
        return Err(ServeError::FrameTooLarge { len: payload_len, limit });
    }
    Ok(FrameHeader { version, payload_len })
}

/// What scanning a byte buffer's prefix for one frame concluded
/// ([`parse_frame_prefix`]).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FramePrefix {
    /// The buffer does not yet hold a complete frame; at least `needed`
    /// more bytes must arrive (a lower bound — the header may reveal a
    /// larger payload once complete).
    Incomplete {
        /// Minimum additional bytes before the scan can conclude.
        needed: usize,
    },
    /// One complete frame sits at the front of the buffer.
    Complete {
        /// The frame's protocol version.
        version: u8,
        /// The payload bytes (epoch field, if any, already skipped).
        payload: Vec<u8>,
        /// Total frame length: drain this many bytes before rescanning.
        consumed: usize,
    },
}

/// Scans the front of an accumulation buffer for one complete frame —
/// the event loop's incremental decoder, fed by whatever byte slices the
/// socket happened to deliver.
///
/// Header validation (magic, version, length-vs-`limit`) happens as soon
/// as [`FRAME_HEADER_LEN`] bytes are present, so a garbage or oversized
/// frame is rejected without waiting for (or buffering) its body — the
/// same early-check order as the blocking reader. The returned payload
/// excludes the v2 epoch field, which on requests is reserved anyway.
pub fn parse_frame_prefix(buf: &[u8], limit: u32) -> Result<FramePrefix, ServeError> {
    if buf.len() < FRAME_HEADER_LEN {
        return Ok(FramePrefix::Incomplete { needed: FRAME_HEADER_LEN - buf.len() });
    }
    let header: [u8; FRAME_HEADER_LEN] = buf[..FRAME_HEADER_LEN].try_into().expect("9 bytes");
    let parsed = parse_frame_header(&header, limit)?;
    let body_start = FRAME_HEADER_LEN + parsed.epoch_bytes();
    let total = body_start + parsed.payload_len as usize;
    if buf.len() < total {
        return Ok(FramePrefix::Incomplete { needed: total - buf.len() });
    }
    Ok(FramePrefix::Complete {
        version: parsed.version,
        payload: buf[body_start..total].to_vec(),
        consumed: total,
    })
}

// ----- requests -----

/// Request type byte values.
const T_PING: u8 = 0;
const T_STATS: u8 = 1;
const T_ADDRESS_INFO: u8 = 2;
const T_CLUSTER_SUMMARY: u8 = 3;
const T_TAINT_TRACE: u8 = 4;
const T_BALANCE_POINT: u8 = 5;
const T_METRICS_DUMP: u8 = 6;
/// Response-only error type byte.
const T_ERROR: u8 = 0xEE;

/// Every question the query service answers.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Request {
    /// Liveness probe; answered with [`Response::Pong`].
    Ping,
    /// Server counters and artifact dimensions.
    Stats,
    /// Which cluster owns this address, and that cluster's aggregates.
    AddressInfo {
        /// The dense address id to look up.
        address: u32,
    },
    /// Aggregates of one cluster by id.
    ClusterSummary {
        /// The canonical cluster id.
        cluster: u32,
    },
    /// A bounded taint walk from the given loot outpoints
    /// (`track_theft_indexed` over the server's graph).
    TaintTrace {
        /// Loot outpoints as `(tx, vout)` pairs.
        loot: Vec<(u32, u32)>,
        /// Caller-supplied walk bound: maximum transactions the taint walk
        /// may visit. The server additionally clamps this to its own
        /// configured ceiling.
        max_txs: u32,
    },
    /// The balance-series sample at or before the given height.
    BalancePoint {
        /// Block height to sample at.
        height: u64,
    },
    /// A snapshot of the server's full metric registry — the binary
    /// scrape path, so `serve-bench` and the typed client read the same
    /// counters the HTTP `/metrics` exporter renders, without HTTP.
    MetricsDump,
}

impl Request {
    /// Decodes a request payload; total on arbitrary bytes.
    pub fn decode_payload(payload: &[u8]) -> Result<Request, ServeError> {
        let mut r = Reader::new(payload);
        let req = match r.u8()? {
            T_PING => Request::Ping,
            T_STATS => Request::Stats,
            T_ADDRESS_INFO => Request::AddressInfo { address: r.u32()? },
            T_CLUSTER_SUMMARY => Request::ClusterSummary { cluster: r.u32()? },
            T_TAINT_TRACE => {
                // Each outpoint is exactly 8 bytes; bound the count by what
                // the remaining input could possibly hold.
                let k = r.compact_size()?;
                if k > r.remaining() as u64 / 8 {
                    return Err(DecodeError::OversizedCount(k).into());
                }
                let mut loot = Vec::with_capacity(k as usize);
                for _ in 0..k {
                    loot.push((r.u32()?, r.u32()?));
                }
                Request::TaintTrace { loot, max_txs: r.u32()? }
            }
            T_BALANCE_POINT => Request::BalancePoint { height: r.u64()? },
            T_METRICS_DUMP => Request::MetricsDump,
            other => return Err(ServeError::UnknownMessage(other)),
        };
        r.finish()?;
        Ok(req)
    }

    /// The complete frame for this request.
    pub fn to_frame(&self) -> Vec<u8> {
        frame(&self.encode_to_vec())
    }

    /// True for requests whose answer is a pure function of the frozen
    /// artifacts — the ones the response cache may serve.
    pub fn type_byte_is_cacheable(type_byte: u8) -> bool {
        matches!(
            type_byte,
            T_ADDRESS_INFO | T_CLUSTER_SUMMARY | T_TAINT_TRACE | T_BALANCE_POINT
        )
    }
}

impl Encodable for Request {
    fn encode(&self, w: &mut Writer) {
        match self {
            Request::Ping => w.u8(T_PING),
            Request::Stats => w.u8(T_STATS),
            Request::AddressInfo { address } => {
                w.u8(T_ADDRESS_INFO);
                w.u32(*address);
            }
            Request::ClusterSummary { cluster } => {
                w.u8(T_CLUSTER_SUMMARY);
                w.u32(*cluster);
            }
            Request::TaintTrace { loot, max_txs } => {
                w.u8(T_TAINT_TRACE);
                w.compact_size(loot.len() as u64);
                for &(tx, vout) in loot {
                    w.u32(tx);
                    w.u32(vout);
                }
                w.u32(*max_txs);
            }
            Request::BalancePoint { height } => {
                w.u8(T_BALANCE_POINT);
                w.u64(*height);
            }
            Request::MetricsDump => w.u8(T_METRICS_DUMP),
        }
    }
}

// ----- response records -----

/// Server counters and artifact dimensions ([`Response::Stats`]).
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct ServerStats {
    /// Request frames handled since the server started.
    pub requests: u64,
    /// Response-cache hits.
    pub cache_hits: u64,
    /// Response-cache misses. With the cache disabled no lookups happen,
    /// so both counters stay zero.
    pub cache_misses: u64,
    /// Worker threads serving requests.
    pub workers: u32,
    /// Addresses covered by the snapshot.
    pub address_count: u64,
    /// Transactions in the graph index.
    pub tx_count: u64,
    /// Clusters in the snapshot.
    pub cluster_count: u64,
    /// Height of the last block the clustering saw.
    pub tip_height: u64,
    /// The currently published artifact epoch (`0` on a frozen-artifact
    /// server that never swaps).
    pub epoch: u64,
    /// How many artifact publishes this server has performed since start.
    pub swaps: u64,
    /// Whole seconds since the server core was created, from the
    /// server's monotonic clock (`0` when decoded from a v1 body).
    pub uptime_seconds: u64,
    /// Request frames handled since start, read from the metrics
    /// registry's per-type counters (`0` when decoded from a v1 body).
    pub requests_total: u64,
}

impl Encodable for ServerStats {
    /// The full v2 body — twelve fields. v1 connections get the legacy
    /// 8-field body via [`ServerStats::encode_v1`] instead; keeping the
    /// `Encodable` impl single-layout preserves the canonical-decode
    /// property (decode ok ⟹ re-encode byte-identical) the wire
    /// proptests assert.
    fn encode(&self, w: &mut Writer) {
        w.u64(self.requests);
        w.u64(self.cache_hits);
        w.u64(self.cache_misses);
        w.u32(self.workers);
        w.u64(self.address_count);
        w.u64(self.tx_count);
        w.u64(self.cluster_count);
        w.u64(self.tip_height);
        w.u64(self.epoch);
        w.u64(self.swaps);
        w.u64(self.uptime_seconds);
        w.u64(self.requests_total);
    }
}

impl ServerStats {
    /// Writes the legacy v1 8-field body (everything up to `tip_height`)
    /// — what pre-hot-swap clients decode.
    pub fn encode_v1(&self, w: &mut Writer) {
        w.u64(self.requests);
        w.u64(self.cache_hits);
        w.u64(self.cache_misses);
        w.u32(self.workers);
        w.u64(self.address_count);
        w.u64(self.tx_count);
        w.u64(self.cluster_count);
        w.u64(self.tip_height);
    }

    /// Reads the legacy v1 8-field body; `epoch`, `swaps`,
    /// `uptime_seconds`, and `requests_total` come back zero (v1
    /// predates the live pipeline and the metrics layer).
    pub fn decode_v1(r: &mut Reader<'_>) -> Result<Self, DecodeError> {
        Ok(ServerStats {
            requests: r.u64()?,
            cache_hits: r.u64()?,
            cache_misses: r.u64()?,
            workers: r.u32()?,
            address_count: r.u64()?,
            tx_count: r.u64()?,
            cluster_count: r.u64()?,
            tip_height: r.u64()?,
            epoch: 0,
            swaps: 0,
            uptime_seconds: 0,
            requests_total: 0,
        })
    }
}

impl Decodable for ServerStats {
    fn decode(r: &mut Reader<'_>) -> Result<Self, DecodeError> {
        let mut stats = ServerStats::decode_v1(r)?;
        stats.epoch = r.u64()?;
        stats.swaps = r.u64()?;
        stats.uptime_seconds = r.u64()?;
        stats.requests_total = r.u64()?;
        Ok(stats)
    }
}

impl Encodable for HistogramDump {
    fn encode(&self, w: &mut Writer) {
        w.string(&self.name);
        w.compact_size(self.buckets.len() as u64);
        for &b in &self.buckets {
            w.u64(b);
        }
        w.u64(self.sum_micros);
        w.u64(self.count);
    }
}

impl Decodable for HistogramDump {
    fn decode(r: &mut Reader<'_>) -> Result<Self, DecodeError> {
        let name = r.string()?;
        // Each bucket is exactly 8 bytes.
        let k = r.compact_size()?;
        if k > r.remaining() as u64 / 8 {
            return Err(DecodeError::OversizedCount(k));
        }
        let mut buckets = Vec::with_capacity(k as usize);
        for _ in 0..k {
            buckets.push(r.u64()?);
        }
        Ok(HistogramDump { name, buckets, sum_micros: r.u64()?, count: r.u64()? })
    }
}

/// Reads a `(name, value)` series list, bounding the declared count by
/// what the remaining input could possibly hold (each entry is at least
/// 9 bytes: an empty-string length plus a u64).
fn decode_series(r: &mut Reader<'_>) -> Result<Vec<(String, u64)>, DecodeError> {
    let k = r.compact_size()?;
    if k > r.remaining() as u64 / 9 {
        return Err(DecodeError::OversizedCount(k));
    }
    let mut series = Vec::with_capacity(k as usize);
    for _ in 0..k {
        series.push((r.string()?, r.u64()?));
    }
    Ok(series)
}

impl Encodable for MetricsDump {
    fn encode(&self, w: &mut Writer) {
        w.compact_size(self.counters.len() as u64);
        for (name, value) in &self.counters {
            w.string(name);
            w.u64(*value);
        }
        w.compact_size(self.gauges.len() as u64);
        for (name, value) in &self.gauges {
            w.string(name);
            w.u64(*value);
        }
        fistful_chain::encode::encode_vec(w, &self.histograms);
    }
}

impl Decodable for MetricsDump {
    fn decode(r: &mut Reader<'_>) -> Result<Self, DecodeError> {
        let counters = decode_series(r)?;
        let gauges = decode_series(r)?;
        // A HistogramDump is at least 18 bytes (name + count + sum + count).
        let k = r.compact_size()?;
        if k > r.remaining() as u64 / 18 {
            return Err(DecodeError::OversizedCount(k));
        }
        let mut histograms = Vec::with_capacity(k as usize);
        for _ in 0..k {
            histograms.push(HistogramDump::decode(r)?);
        }
        Ok(MetricsDump { counters, gauges, histograms })
    }
}

/// An address lookup's answer ([`Response::AddressInfo`]).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AddressReport {
    /// The address asked about.
    pub address: u32,
    /// The cluster owning it.
    pub cluster: u32,
    /// The owning cluster's aggregates.
    pub info: ClusterInfo,
}

impl Encodable for AddressReport {
    fn encode(&self, w: &mut Writer) {
        w.u32(self.address);
        w.u32(self.cluster);
        self.info.encode(w);
    }
}

impl Decodable for AddressReport {
    fn decode(r: &mut Reader<'_>) -> Result<Self, DecodeError> {
        Ok(AddressReport {
            address: r.u32()?,
            cluster: r.u32()?,
            info: ClusterInfo::decode(r)?,
        })
    }
}

/// A cluster lookup's answer ([`Response::ClusterSummary`]).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ClusterReport {
    /// The cluster asked about.
    pub cluster: u32,
    /// Its aggregates.
    pub info: ClusterInfo,
}

impl Encodable for ClusterReport {
    fn encode(&self, w: &mut Writer) {
        w.u32(self.cluster);
        self.info.encode(w);
    }
}

impl Decodable for ClusterReport {
    fn decode(r: &mut Reader<'_>) -> Result<Self, DecodeError> {
        Ok(ClusterReport { cluster: r.u32()?, info: ClusterInfo::decode(r)? })
    }
}

/// One classified movement of a taint walk, as carried on the wire — the
/// [`TaintedTx`] record with amounts flattened to satoshis.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WireMovement {
    /// The transaction visited.
    pub tx: u32,
    /// Its A/P/S/F/T classification.
    pub kind: MovementKind,
    /// How many of its inputs were tainted.
    pub tainted_inputs: u32,
    /// Its total input count.
    pub total_inputs: u32,
    /// Value that left the thief's control here, as `(address, value)`.
    pub departures: Vec<(u32, Amount)>,
}

impl From<&TaintedTx> for WireMovement {
    fn from(m: &TaintedTx) -> WireMovement {
        WireMovement {
            tx: m.tx,
            kind: m.kind,
            tainted_inputs: m.tainted_inputs as u32,
            total_inputs: m.total_inputs as u32,
            departures: m.departures.clone(),
        }
    }
}

fn kind_byte(kind: MovementKind) -> u8 {
    match kind {
        MovementKind::Aggregation => 0,
        MovementKind::Peel => 1,
        MovementKind::Split => 2,
        MovementKind::Fold => 3,
        MovementKind::Transfer => 4,
    }
}

fn kind_from_byte(b: u8) -> Result<MovementKind, DecodeError> {
    Ok(match b {
        0 => MovementKind::Aggregation,
        1 => MovementKind::Peel,
        2 => MovementKind::Split,
        3 => MovementKind::Fold,
        4 => MovementKind::Transfer,
        other => return Err(DecodeError::InvalidValue(other)),
    })
}

impl Encodable for WireMovement {
    fn encode(&self, w: &mut Writer) {
        w.u32(self.tx);
        w.u8(kind_byte(self.kind));
        w.u32(self.tainted_inputs);
        w.u32(self.total_inputs);
        w.compact_size(self.departures.len() as u64);
        for &(addr, value) in &self.departures {
            w.u32(addr);
            w.u64(value.to_sat());
        }
    }
}

impl Decodable for WireMovement {
    fn decode(r: &mut Reader<'_>) -> Result<Self, DecodeError> {
        let tx = r.u32()?;
        let kind = kind_from_byte(r.u8()?)?;
        let tainted_inputs = r.u32()?;
        let total_inputs = r.u32()?;
        // Each departure is exactly 12 bytes.
        let k = r.compact_size()?;
        if k > r.remaining() as u64 / 12 {
            return Err(DecodeError::OversizedCount(k));
        }
        let mut departures = Vec::with_capacity(k as usize);
        for _ in 0..k {
            departures.push((r.u32()?, Amount::from_sat(r.u64()?)));
        }
        Ok(WireMovement { tx, kind, tainted_inputs, total_inputs, departures })
    }
}

/// A taint walk's answer ([`Response::TaintTrace`]) — the full
/// [`TheftTrace`] as the server derived it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TaintReport {
    /// Every transaction the walk visited, classified, in visit order.
    pub movements: Vec<WireMovement>,
    /// The paper-style pattern string, e.g. `"A/P/S"`.
    pub pattern: String,
    /// Total value that departed to exchange-category addresses.
    pub to_exchanges: Amount,
    /// Number of distinct exchange services reached.
    pub exchanges_reached: u32,
    /// Loot value that never moved.
    pub dormant: Amount,
}

impl TaintReport {
    /// The wire form of a locally computed [`TheftTrace`] — what the
    /// socket path must answer byte-for-byte (the equivalence the
    /// integration suite checks).
    pub fn from_trace(trace: &TheftTrace) -> TaintReport {
        TaintReport {
            movements: trace.movements.iter().map(WireMovement::from).collect(),
            pattern: trace.pattern.clone(),
            to_exchanges: trace.to_exchanges,
            exchanges_reached: trace.exchanges_reached as u32,
            dormant: trace.dormant,
        }
    }

    /// Whether any loot reached an exchange.
    pub fn reached_exchange(&self) -> bool {
        self.exchanges_reached > 0
    }
}

impl Encodable for TaintReport {
    fn encode(&self, w: &mut Writer) {
        fistful_chain::encode::encode_vec(w, &self.movements);
        w.string(&self.pattern);
        w.u64(self.to_exchanges.to_sat());
        w.u32(self.exchanges_reached);
        w.u64(self.dormant.to_sat());
    }
}

impl Decodable for TaintReport {
    fn decode(r: &mut Reader<'_>) -> Result<Self, DecodeError> {
        // A WireMovement is at least 14 bytes (u32 + u8 + 2×u32 + count).
        let k = r.compact_size()?;
        if k > r.remaining() as u64 / 14 {
            return Err(DecodeError::OversizedCount(k));
        }
        let mut movements = Vec::with_capacity(k as usize);
        for _ in 0..k {
            movements.push(WireMovement::decode(r)?);
        }
        Ok(TaintReport {
            movements,
            pattern: r.string()?,
            to_exchanges: Amount::from_sat(r.u64()?),
            exchanges_reached: r.u32()?,
            dormant: Amount::from_sat(r.u64()?),
        })
    }
}

/// A balance-series sample ([`Response::BalancePoint`]).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BalanceReport {
    /// Block height of the sample.
    pub height: u64,
    /// Unix time of the sample.
    pub time: u64,
    /// Total supply at the sample.
    pub supply: Amount,
    /// Supply held by sink addresses at the sample.
    pub sink_held: Amount,
    /// Balance per category, sorted by category name.
    pub balances: Vec<(String, Amount)>,
}

impl BalanceReport {
    /// Active supply: total minus sink-held.
    pub fn active(&self) -> Amount {
        self.supply.saturating_sub(self.sink_held)
    }
}

impl From<&BalancePoint> for BalanceReport {
    fn from(p: &BalancePoint) -> BalanceReport {
        BalanceReport {
            height: p.height,
            time: p.time,
            supply: p.supply,
            sink_held: p.sink_held,
            // BTreeMap iteration is already name-sorted, so the wire bytes
            // are deterministic.
            balances: p.balances.iter().map(|(k, &v)| (k.clone(), v)).collect(),
        }
    }
}

impl Encodable for BalanceReport {
    fn encode(&self, w: &mut Writer) {
        w.u64(self.height);
        w.u64(self.time);
        w.u64(self.supply.to_sat());
        w.u64(self.sink_held.to_sat());
        w.compact_size(self.balances.len() as u64);
        for (category, value) in &self.balances {
            w.string(category);
            w.u64(value.to_sat());
        }
    }
}

impl Decodable for BalanceReport {
    fn decode(r: &mut Reader<'_>) -> Result<Self, DecodeError> {
        let height = r.u64()?;
        let time = r.u64()?;
        let supply = Amount::from_sat(r.u64()?);
        let sink_held = Amount::from_sat(r.u64()?);
        // Each entry is at least 9 bytes (empty-string length + u64).
        let k = r.compact_size()?;
        if k > r.remaining() as u64 / 9 {
            return Err(DecodeError::OversizedCount(k));
        }
        let mut balances = Vec::with_capacity(k as usize);
        for _ in 0..k {
            balances.push((r.string()?, Amount::from_sat(r.u64()?)));
        }
        Ok(BalanceReport { height, time, supply, sink_held, balances })
    }
}

// ----- responses -----

/// Every answer the query service gives.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Response {
    /// Answer to [`Request::Ping`].
    Pong,
    /// Answer to [`Request::Stats`].
    Stats(ServerStats),
    /// Answer to [`Request::AddressInfo`]; `None` when the snapshot does
    /// not cover the address.
    AddressInfo(Option<AddressReport>),
    /// Answer to [`Request::ClusterSummary`]; `None` for an unknown id.
    ClusterSummary(Option<ClusterReport>),
    /// Answer to [`Request::TaintTrace`].
    TaintTrace(TaintReport),
    /// Answer to [`Request::BalancePoint`]; `None` when the height
    /// precedes the first sample.
    BalancePoint(Option<BalanceReport>),
    /// Answer to [`Request::MetricsDump`]: the full metric snapshot.
    MetricsDump(MetricsDump),
    /// The request could not be served; the connection closes after this.
    Error(WireError),
}

fn encode_opt<T: Encodable>(w: &mut Writer, v: &Option<T>) {
    match v {
        None => w.u8(0),
        Some(v) => {
            w.u8(1);
            v.encode(w);
        }
    }
}

fn decode_opt<T: Decodable>(r: &mut Reader<'_>) -> Result<Option<T>, DecodeError> {
    match r.u8()? {
        0 => Ok(None),
        1 => Ok(Some(T::decode(r)?)),
        other => Err(DecodeError::InvalidValue(other)),
    }
}

impl Response {
    /// Decodes a response payload; total on arbitrary bytes.
    pub fn decode_payload(payload: &[u8]) -> Result<Response, ServeError> {
        let mut r = Reader::new(payload);
        let resp = match r.u8()? {
            T_PING => Response::Pong,
            T_STATS => Response::Stats(ServerStats::decode(&mut r)?),
            T_ADDRESS_INFO => Response::AddressInfo(decode_opt(&mut r)?),
            T_CLUSTER_SUMMARY => Response::ClusterSummary(decode_opt(&mut r)?),
            T_TAINT_TRACE => Response::TaintTrace(TaintReport::decode(&mut r)?),
            T_BALANCE_POINT => Response::BalancePoint(decode_opt(&mut r)?),
            T_METRICS_DUMP => Response::MetricsDump(MetricsDump::decode(&mut r)?),
            T_ERROR => {
                let code = ErrorCode::from_byte(r.u8()?)?;
                Response::Error(WireError { code, message: r.string()? })
            }
            other => return Err(ServeError::UnknownMessage(other)),
        };
        r.finish()?;
        Ok(resp)
    }

    /// Decodes a *v1* response payload: identical to
    /// [`Response::decode_payload`] except that `Stats` carries the
    /// legacy 8-field body — what a pre-hot-swap client would parse.
    pub fn decode_payload_v1(payload: &[u8]) -> Result<Response, ServeError> {
        if payload.first() == Some(&T_STATS) {
            let mut r = Reader::new(payload);
            r.u8()?;
            let stats = ServerStats::decode_v1(&mut r)?;
            r.finish()?;
            return Ok(Response::Stats(stats));
        }
        Response::decode_payload(payload)
    }

    /// The complete frame for this response, stamped with epoch `0` —
    /// the frozen-artifact framing.
    pub fn to_frame(&self) -> Vec<u8> {
        self.to_frame_at(0)
    }

    /// The complete v2 frame for this response, stamped with the
    /// publishing artifact's epoch.
    pub fn to_frame_at(&self, epoch: u64) -> Vec<u8> {
        frame_at(&self.encode_to_vec(), epoch)
    }

    /// The complete legacy v1 frame for this response: no epoch field,
    /// and `Stats` in its 8-field v1 body — what the server answers v1
    /// connections with.
    pub fn to_frame_v1(&self) -> Vec<u8> {
        match self {
            Response::Stats(s) => {
                let mut w = Writer::new();
                w.u8(T_STATS);
                s.encode_v1(&mut w);
                frame_v1(&w.into_bytes())
            }
            _ => frame_v1(&self.encode_to_vec()),
        }
    }
}

impl Encodable for Response {
    fn encode(&self, w: &mut Writer) {
        match self {
            Response::Pong => w.u8(T_PING),
            Response::Stats(s) => {
                w.u8(T_STATS);
                s.encode(w);
            }
            Response::AddressInfo(v) => {
                w.u8(T_ADDRESS_INFO);
                encode_opt(w, v);
            }
            Response::ClusterSummary(v) => {
                w.u8(T_CLUSTER_SUMMARY);
                encode_opt(w, v);
            }
            Response::TaintTrace(t) => {
                w.u8(T_TAINT_TRACE);
                t.encode(w);
            }
            Response::BalancePoint(v) => {
                w.u8(T_BALANCE_POINT);
                encode_opt(w, v);
            }
            Response::MetricsDump(d) => {
                w.u8(T_METRICS_DUMP);
                d.encode(w);
            }
            Response::Error(e) => {
                w.u8(T_ERROR);
                w.u8(e.code as u8);
                w.string(&e.message);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_requests() -> Vec<Request> {
        vec![
            Request::Ping,
            Request::Stats,
            Request::AddressInfo { address: 42 },
            Request::ClusterSummary { cluster: 7 },
            Request::TaintTrace { loot: vec![(3, 0), (9, 2)], max_txs: 500 },
            Request::BalancePoint { height: 1234 },
            Request::MetricsDump,
        ]
    }

    fn sample_responses() -> Vec<Response> {
        let info = ClusterInfo {
            size: 3,
            received: Amount::from_sat(130),
            spent: Amount::from_sat(100),
            name: Some("Mt. Gox".into()),
            category: Some("exchange".into()),
        };
        vec![
            Response::Pong,
            Response::Stats(ServerStats {
                requests: 10,
                cache_hits: 4,
                cache_misses: 6,
                workers: 2,
                address_count: 100,
                tx_count: 50,
                cluster_count: 20,
                tip_height: 49,
                epoch: 3,
                swaps: 2,
                uptime_seconds: 86_400,
                requests_total: 10,
            }),
            Response::AddressInfo(None),
            Response::AddressInfo(Some(AddressReport { address: 1, cluster: 0, info: info.clone() })),
            Response::ClusterSummary(Some(ClusterReport { cluster: 0, info })),
            Response::TaintTrace(TaintReport {
                movements: vec![WireMovement {
                    tx: 5,
                    kind: MovementKind::Peel,
                    tainted_inputs: 1,
                    total_inputs: 1,
                    departures: vec![(8, Amount::from_sat(30))],
                }],
                pattern: "P".into(),
                to_exchanges: Amount::from_sat(30),
                exchanges_reached: 1,
                dormant: Amount::ZERO,
            }),
            Response::BalancePoint(Some(BalanceReport {
                height: 10,
                time: 6000,
                supply: Amount::from_sat(100),
                sink_held: Amount::from_sat(25),
                balances: vec![("exchange".into(), Amount::from_sat(40))],
            })),
            Response::BalancePoint(None),
            Response::MetricsDump(MetricsDump {
                counters: vec![
                    ("fistful_requests_total{type=\"ping\"}".into(), 9),
                    ("fistful_busy_sheds_total".into(), 0),
                ],
                gauges: vec![("fistful_connections".into(), 3)],
                histograms: vec![HistogramDump {
                    name: "fistful_request_latency_seconds{type=\"ping\"}".into(),
                    buckets: vec![4, 3, 2, 0],
                    sum_micros: 77,
                    count: 9,
                }],
            }),
            Response::Error(WireError { code: ErrorCode::Malformed, message: "nope".into() }),
            Response::Error(WireError { code: ErrorCode::Busy, message: "shed".into() }),
        ]
    }

    #[test]
    fn every_request_round_trips() {
        for req in sample_requests() {
            let payload = req.encode_to_vec();
            assert_eq!(Request::decode_payload(&payload).unwrap(), req);
            // And the v2 frame wraps the same payload after a zero epoch.
            let f = req.to_frame();
            let header = parse_frame_header(
                &f[..FRAME_HEADER_LEN].try_into().unwrap(),
                MAX_REQUEST_PAYLOAD,
            )
            .unwrap();
            assert_eq!(header.version, PROTOCOL_VERSION);
            assert_eq!(header.payload_len as usize, payload.len());
            assert_eq!(header.epoch_bytes(), FRAME_EPOCH_LEN);
            assert_eq!(
                &f[FRAME_HEADER_LEN..FRAME_HEADER_LEN + FRAME_EPOCH_LEN],
                &[0u8; FRAME_EPOCH_LEN]
            );
            assert_eq!(&f[FRAME_HEADER_LEN + FRAME_EPOCH_LEN..], &payload[..]);
        }
    }

    #[test]
    fn v2_frames_carry_the_epoch_and_v1_frames_do_not() {
        let payload = Request::Ping.encode_to_vec();
        let f2 = frame_at(&payload, 0xDEAD_BEEF_0123_4567);
        let header = parse_frame_header(
            &f2[..FRAME_HEADER_LEN].try_into().unwrap(),
            MAX_REQUEST_PAYLOAD,
        )
        .unwrap();
        assert_eq!(header, FrameHeader { version: PROTOCOL_VERSION, payload_len: 1 });
        let epoch_bytes: [u8; FRAME_EPOCH_LEN] =
            f2[FRAME_HEADER_LEN..FRAME_HEADER_LEN + FRAME_EPOCH_LEN].try_into().unwrap();
        assert_eq!(u64::from_le_bytes(epoch_bytes), 0xDEAD_BEEF_0123_4567);
        assert_eq!(&f2[FRAME_HEADER_LEN + FRAME_EPOCH_LEN..], &payload[..]);

        let f1 = frame_v1(&payload);
        let header = parse_frame_header(
            &f1[..FRAME_HEADER_LEN].try_into().unwrap(),
            MAX_REQUEST_PAYLOAD,
        )
        .unwrap();
        assert_eq!(header, FrameHeader { version: PROTOCOL_VERSION_V1, payload_len: 1 });
        assert_eq!(header.epoch_bytes(), 0);
        assert_eq!(&f1[FRAME_HEADER_LEN..], &payload[..]);
        // Same payload, different framing: v2 is exactly the epoch wider.
        assert_eq!(f2.len(), f1.len() + FRAME_EPOCH_LEN);
    }

    #[test]
    fn v1_stats_body_is_the_legacy_prefix() {
        let Response::Stats(stats) = sample_responses().remove(1) else {
            panic!("sample 1 is Stats")
        };
        let resp = Response::Stats(stats.clone());
        let v2 = resp.encode_to_vec();
        let f1 = resp.to_frame_v1();
        let v1_payload = &f1[FRAME_HEADER_LEN..];
        // The v1 body is the v2 body minus the trailing epoch + swaps +
        // uptime + requests_total.
        assert_eq!(v1_payload, &v2[..v2.len() - 32]);
        // A v1 decode recovers everything except the live fields.
        let decoded = Response::decode_payload_v1(v1_payload).unwrap();
        let expect = ServerStats { epoch: 0, swaps: 0, uptime_seconds: 0, requests_total: 0, ..stats };
        assert_eq!(decoded, Response::Stats(expect));
        // Non-stats payloads decode identically through the v1 path.
        for resp in sample_responses() {
            if matches!(resp, Response::Stats(_)) {
                continue;
            }
            let payload = resp.encode_to_vec();
            assert_eq!(Response::decode_payload_v1(&payload).unwrap(), resp);
        }
    }

    #[test]
    fn every_response_round_trips() {
        for resp in sample_responses() {
            let payload = resp.encode_to_vec();
            assert_eq!(Response::decode_payload(&payload).unwrap(), resp, "{resp:?}");
        }
    }

    #[test]
    fn request_decoder_rejects_trailing_and_unknown() {
        let mut payload = Request::Ping.encode_to_vec();
        payload.push(0);
        assert_eq!(
            Request::decode_payload(&payload),
            Err(ServeError::Decode(DecodeError::TrailingBytes))
        );
        assert_eq!(Request::decode_payload(&[0x77]), Err(ServeError::UnknownMessage(0x77)));
        assert_eq!(
            Request::decode_payload(&[]),
            Err(ServeError::Decode(DecodeError::UnexpectedEnd))
        );
    }

    #[test]
    fn taint_loot_count_is_bounded_by_input() {
        // Declares 2^40 outpoints in a 20-byte payload.
        let mut w = Writer::new();
        w.u8(super::T_TAINT_TRACE);
        w.compact_size(1 << 40);
        let payload = w.into_bytes();
        assert!(matches!(
            Request::decode_payload(&payload),
            Err(ServeError::Decode(DecodeError::OversizedCount(_)))
        ));
    }

    #[test]
    fn frame_header_checks_in_order() {
        let bad_magic = *b"XSRV\x01\x00\x00\x00\x00";
        assert!(matches!(
            parse_frame_header(&bad_magic, MAX_REQUEST_PAYLOAD),
            Err(ServeError::BadMagic(_))
        ));
        let bad_version = *b"FSRV\x09\x00\x00\x00\x00";
        assert_eq!(
            parse_frame_header(&bad_version, MAX_REQUEST_PAYLOAD),
            Err(ServeError::UnsupportedVersion(9))
        );
        // Version 0 and the version after the current one are both out.
        for v in [0u8, PROTOCOL_VERSION + 1] {
            let mut h = *b"FSRV\x00\x00\x00\x00\x00";
            h[4] = v;
            assert_eq!(
                parse_frame_header(&h, MAX_REQUEST_PAYLOAD),
                Err(ServeError::UnsupportedVersion(v))
            );
        }
        let mut oversized = *b"FSRV\x02\x00\x00\x00\x00";
        oversized[5..].copy_from_slice(&u32::MAX.to_le_bytes());
        assert_eq!(
            parse_frame_header(&oversized, MAX_REQUEST_PAYLOAD),
            Err(ServeError::FrameTooLarge { len: u32::MAX, limit: MAX_REQUEST_PAYLOAD })
        );
        // Both live versions parse.
        let good_v2 = *b"FSRV\x02\x05\x00\x00\x00";
        assert_eq!(
            parse_frame_header(&good_v2, MAX_REQUEST_PAYLOAD),
            Ok(FrameHeader { version: 2, payload_len: 5 })
        );
        let good_v1 = *b"FSRV\x01\x05\x00\x00\x00";
        assert_eq!(
            parse_frame_header(&good_v1, MAX_REQUEST_PAYLOAD),
            Ok(FrameHeader { version: 1, payload_len: 5 })
        );
    }

    #[test]
    fn frame_prefix_scans_at_every_split_point() {
        // A v2 and a v1 frame back to back; the scanner must report the
        // exact shortfall at every possible prefix length, then yield the
        // first frame without touching the second.
        let req = Request::TaintTrace { loot: vec![(3, 0), (9, 2)], max_txs: 500 };
        let payload = req.encode_to_vec();
        let f2 = frame_at(&payload, 7);
        let f1 = frame_v1(&payload);
        let mut blob = f2.clone();
        blob.extend_from_slice(&f1);
        for cut in 0..f2.len() {
            let got = parse_frame_prefix(&blob[..cut], MAX_REQUEST_PAYLOAD).unwrap();
            let expect_needed = if cut < FRAME_HEADER_LEN {
                FRAME_HEADER_LEN - cut
            } else {
                f2.len() - cut
            };
            assert_eq!(got, FramePrefix::Incomplete { needed: expect_needed }, "cut {cut}");
        }
        // Any prefix holding the whole first frame yields it, whatever
        // fraction of the second frame rode along.
        for cut in f2.len()..=blob.len() {
            let got = parse_frame_prefix(&blob[..cut], MAX_REQUEST_PAYLOAD).unwrap();
            assert_eq!(
                got,
                FramePrefix::Complete {
                    version: PROTOCOL_VERSION,
                    payload: payload.clone(),
                    consumed: f2.len(),
                },
                "cut {cut}"
            );
        }
        // After draining the first frame, the v1 frame parses too (and its
        // total length differs by exactly the epoch field).
        let got = parse_frame_prefix(&blob[f2.len()..], MAX_REQUEST_PAYLOAD).unwrap();
        assert_eq!(
            got,
            FramePrefix::Complete {
                version: PROTOCOL_VERSION_V1,
                payload,
                consumed: f1.len(),
            }
        );
        assert_eq!(f2.len(), f1.len() + FRAME_EPOCH_LEN);
    }

    #[test]
    fn frame_prefix_rejects_bad_headers_without_the_body() {
        // Garbage magic fails as soon as the 9 header bytes are in, even
        // though the declared body never arrives.
        let bad_magic = b"XSRV\x02\x10\x00\x00\x00";
        assert!(matches!(
            parse_frame_prefix(&bad_magic[..], MAX_REQUEST_PAYLOAD),
            Err(ServeError::BadMagic(_))
        ));
        let bad_version = b"FSRV\x09\x00\x00\x00\x00";
        assert_eq!(
            parse_frame_prefix(&bad_version[..], MAX_REQUEST_PAYLOAD),
            Err(ServeError::UnsupportedVersion(9))
        );
        let mut oversized = *b"FSRV\x02\x00\x00\x00\x00";
        oversized[5..].copy_from_slice(&u32::MAX.to_le_bytes());
        assert_eq!(
            parse_frame_prefix(&oversized[..], MAX_REQUEST_PAYLOAD),
            Err(ServeError::FrameTooLarge { len: u32::MAX, limit: MAX_REQUEST_PAYLOAD })
        );
        // ...but an 8-byte prefix of the same garbage is still just
        // incomplete: rejection never happens before the header is whole.
        assert_eq!(
            parse_frame_prefix(&oversized[..8], MAX_REQUEST_PAYLOAD).unwrap(),
            FramePrefix::Incomplete { needed: 1 }
        );
        assert_eq!(
            parse_frame_prefix(&[], MAX_REQUEST_PAYLOAD).unwrap(),
            FramePrefix::Incomplete { needed: FRAME_HEADER_LEN }
        );
    }

    #[test]
    fn cacheability_is_by_type_byte() {
        for req in sample_requests() {
            let payload = req.encode_to_vec();
            let cacheable = Request::type_byte_is_cacheable(payload[0]);
            match req {
                // Ping and Stats are trivial; MetricsDump must always be
                // computed fresh (a cached scrape would freeze every
                // counter at its insert-time value).
                Request::Ping | Request::Stats | Request::MetricsDump => assert!(!cacheable),
                _ => assert!(cacheable, "{req:?}"),
            }
        }
    }

    #[test]
    fn wire_error_mapping_covers_framing_errors() {
        let cases = [
            (ServeError::BadMagic(*b"XXXX"), ErrorCode::BadMagic),
            (ServeError::UnsupportedVersion(9), ErrorCode::UnsupportedVersion),
            (ServeError::FrameTooLarge { len: 1, limit: 0 }, ErrorCode::FrameTooLarge),
            (ServeError::UnknownMessage(0x77), ErrorCode::UnknownRequest),
            (ServeError::InvalidRequest("x".into()), ErrorCode::InvalidRequest),
            (ServeError::Busy("cap".into()), ErrorCode::Busy),
            (ServeError::Decode(DecodeError::UnexpectedEnd), ErrorCode::Malformed),
        ];
        for (err, code) in cases {
            assert_eq!(WireError::from_serve_error(&err).code, code, "{err:?}");
        }
    }

    #[test]
    fn display_messages_are_distinct() {
        let errors = [
            ServeError::Io("broken pipe".into()),
            ServeError::BadMagic(*b"XXXX"),
            ServeError::UnsupportedVersion(9),
            ServeError::FrameTooLarge { len: 1, limit: 0 },
            ServeError::Truncated,
            ServeError::Closed,
            ServeError::Decode(DecodeError::UnexpectedEnd),
            ServeError::UnknownMessage(0x77),
            ServeError::InvalidRequest("x".into()),
            ServeError::Busy("x".into()),
            ServeError::Remote(WireError { code: ErrorCode::Malformed, message: "x".into() }),
            ServeError::UnexpectedResponse,
            ServeError::MismatchedArtifacts("x"),
        ];
        let mut seen = std::collections::HashSet::new();
        for e in errors {
            assert!(seen.insert(e.to_string()), "duplicate message for {e:?}");
        }
    }
}

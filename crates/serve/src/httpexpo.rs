//! A minimal HTTP/1.1 exporter for the Prometheus text exposition.
//!
//! Prometheus scrapes over HTTP, not over the FSRV binary protocol, so
//! each serve engine can stand up one [`MetricsExporter`] on a separate
//! listener (the `--metrics-port` of `repro serve`). The exporter is
//! deliberately tiny and std-only: a single accept thread, one request
//! per connection (`Connection: close` always), `GET /metrics` answered
//! with [`render_prometheus`](crate::metrics::render_prometheus) output
//! as `text/plain; version=0.0.4`, and a `404` for every other path or
//! method. It is not a general HTTP server — headers beyond the request
//! line are read and discarded, bodies are not accepted, and the request
//! head is capped at 8 KiB.
//!
//! The exporter holds a [`MetricsHandle`] cloned from either engine, so
//! every scrape renders a fresh snapshot of the same registry the binary
//! [`Request::MetricsDump`](crate::protocol::Request::MetricsDump) path
//! serializes — the two exposures can never drift.
//!
//! ```
//! use fistful_core::change::{self, ChangeConfig};
//! use fistful_core::cluster::Clusterer;
//! use fistful_core::naming::name_clusters;
//! use fistful_core::snapshot::ClusterSnapshot;
//! use fistful_core::tagdb::TagDb;
//! use fistful_core::testutil::TestChain;
//! use fistful_flow::balance_series;
//! use fistful_flow::graph::TxGraph;
//! use fistful_serve::httpexpo::MetricsExporter;
//! use fistful_serve::{ServeArtifacts, ServeConfig, Server};
//! use std::io::{Read, Write};
//! use std::net::{TcpListener, TcpStream};
//! use std::sync::Arc;
//!
//! let mut t = TestChain::new();
//! let cb1 = t.coinbase(1, 50);
//! let cb2 = t.coinbase(2, 50);
//! t.tx(&[(cb1, 0), (cb2, 0)], &[(3, 100)]);
//! let clustering = Clusterer::h1_only().run(&t.chain);
//! let names = name_clusters(&clustering, &TagDb::new());
//! let snapshot = ClusterSnapshot::build(&t.chain, &clustering, &names);
//! let labels = change::identify(&t.chain, &ChangeConfig::naive());
//! let balances = balance_series(&t.chain, &snapshot, 1);
//! let graph = TxGraph::build(&t.chain);
//! let artifacts = Arc::new(ServeArtifacts::new(snapshot, graph, labels, balances).unwrap());
//!
//! let server = Server::start(ServeConfig::default(), artifacts).unwrap();
//! let listener = TcpListener::bind("127.0.0.1:0").unwrap();
//! let addr = listener.local_addr().unwrap();
//! let exporter = MetricsExporter::start_with_listener(listener, server.metrics_handle()).unwrap();
//!
//! let mut sock = TcpStream::connect(addr).unwrap();
//! sock.write_all(b"GET /metrics HTTP/1.1\r\nHost: x\r\n\r\n").unwrap();
//! let mut body = String::new();
//! sock.read_to_string(&mut body).unwrap();
//! assert!(body.starts_with("HTTP/1.1 200 OK\r\n"));
//! assert!(body.contains("fistful_requests_total"));
//! exporter.shutdown();
//! server.shutdown();
//! ```

use crate::server::MetricsHandle;
use std::io::{self, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::{self, JoinHandle};
use std::time::Duration;

/// Largest request head (request line plus headers) the exporter reads
/// before giving up on a connection.
const MAX_HEAD: usize = 8 * 1024;

/// How long a scrape socket may sit idle mid-request before the exporter
/// abandons it; keeps a stuck scraper from wedging the accept thread.
const SOCKET_TIMEOUT: Duration = Duration::from_secs(5);

/// A background thread serving `GET /metrics` as Prometheus text.
///
/// Start it on a pre-bound listener (bind first, so the scrape address
/// can be printed before slow artifact builds) with a [`MetricsHandle`]
/// from either serve engine. Shutdown is explicit via
/// [`shutdown`](MetricsExporter::shutdown) or implicit through [`Drop`].
#[derive(Debug)]
pub struct MetricsExporter {
    local_addr: SocketAddr,
    stop: Arc<AtomicBool>,
    accept_thread: Option<JoinHandle<()>>,
}

impl MetricsExporter {
    /// Serves scrapes on an already-bound listener. The thread answers
    /// one request per connection until [`shutdown`] is called.
    ///
    /// [`shutdown`]: MetricsExporter::shutdown
    pub fn start_with_listener(
        listener: TcpListener,
        handle: MetricsHandle,
    ) -> io::Result<MetricsExporter> {
        let local_addr = listener.local_addr()?;
        let stop = Arc::new(AtomicBool::new(false));
        let thread_stop = Arc::clone(&stop);
        let accept_thread = thread::Builder::new()
            .name("metrics-expo".into())
            .spawn(move || accept_loop(&listener, &handle, &thread_stop))?;
        Ok(MetricsExporter { local_addr, stop, accept_thread: Some(accept_thread) })
    }

    /// The address scrapers should point at.
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// Stops accepting and joins the accept thread. Idempotent through
    /// [`Drop`].
    pub fn shutdown(mut self) {
        self.shutdown_inner();
    }

    fn shutdown_inner(&mut self) {
        let Some(accept_thread) = self.accept_thread.take() else { return };
        self.stop.store(true, Ordering::SeqCst);
        // The accept loop blocks in accept(2); a throwaway local connect
        // wakes it so it can observe the flag. Failure is fine — the
        // listener may already be gone.
        let _ = TcpStream::connect(self.local_addr);
        let _ = accept_thread.join();
    }
}

impl Drop for MetricsExporter {
    fn drop(&mut self) {
        self.shutdown_inner();
    }
}

fn accept_loop(listener: &TcpListener, handle: &MetricsHandle, stop: &AtomicBool) {
    loop {
        let Ok((sock, _)) = listener.accept() else {
            if stop.load(Ordering::SeqCst) {
                return;
            }
            continue;
        };
        if stop.load(Ordering::SeqCst) {
            return;
        }
        // Scrapes are rare (seconds apart) and small; serving them inline
        // on the accept thread keeps the exporter to a single thread.
        let _ = serve_scrape(sock, handle);
    }
}

/// Reads one request head, answers it, and closes. Any I/O error simply
/// abandons the connection — the scraper retries on its own schedule.
fn serve_scrape(mut sock: TcpStream, handle: &MetricsHandle) -> io::Result<()> {
    sock.set_read_timeout(Some(SOCKET_TIMEOUT))?;
    sock.set_write_timeout(Some(SOCKET_TIMEOUT))?;
    let head = read_head(&mut sock)?;
    let response = match parse_request_line(&head) {
        Some(("GET", "/metrics")) => ok_response(&handle.render()),
        _ => not_found_response(),
    };
    sock.write_all(response.as_bytes())
}

/// Reads until the blank line ending the request head, or until
/// [`MAX_HEAD`] bytes have arrived, whichever is first.
fn read_head(sock: &mut TcpStream) -> io::Result<Vec<u8>> {
    let mut head = Vec::new();
    let mut chunk = [0u8; 512];
    while head.len() < MAX_HEAD {
        let n = sock.read(&mut chunk)?;
        if n == 0 {
            break;
        }
        head.extend_from_slice(&chunk[..n]);
        if head.windows(4).any(|w| w == b"\r\n\r\n") {
            break;
        }
    }
    Ok(head)
}

/// Extracts `(method, path)` from the request line; `None` on anything
/// that does not look like `METHOD SP PATH SP HTTP/...`.
fn parse_request_line(head: &[u8]) -> Option<(&str, &str)> {
    let head = std::str::from_utf8(head).ok()?;
    let line = head.split("\r\n").next()?;
    let mut parts = line.split(' ');
    let method = parts.next()?;
    let path = parts.next()?;
    let version = parts.next()?;
    if !version.starts_with("HTTP/") {
        return None;
    }
    // Scrapers may append query parameters; the exporter ignores them.
    let path = path.split('?').next().unwrap_or(path);
    Some((method, path))
}

fn ok_response(body: &str) -> String {
    format!(
        "HTTP/1.1 200 OK\r\nContent-Type: text/plain; version=0.0.4\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{}",
        body.len(),
        body
    )
}

fn not_found_response() -> String {
    let body = "not found\n";
    format!(
        "HTTP/1.1 404 Not Found\r\nContent-Type: text/plain\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{}",
        body.len(),
        body
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::server::{ServeArtifacts, ServeConfig, Server};
    use fistful_core::change::{self, ChangeConfig};
    use fistful_core::cluster::Clusterer;
    use fistful_core::naming::name_clusters;
    use fistful_core::snapshot::ClusterSnapshot;
    use fistful_core::tagdb::TagDb;
    use fistful_core::testutil::TestChain;
    use fistful_flow::balance_series;
    use fistful_flow::graph::TxGraph;

    fn bundle() -> Arc<ServeArtifacts> {
        let mut t = TestChain::new();
        let cb1 = t.coinbase(1, 50);
        let cb2 = t.coinbase(2, 50);
        t.tx(&[(cb1, 0), (cb2, 0)], &[(3, 70), (4, 30)]);
        let clustering = Clusterer::h1_only().run(&t.chain);
        let names = name_clusters(&clustering, &TagDb::new());
        let snapshot = ClusterSnapshot::build(&t.chain, &clustering, &names);
        let labels = change::identify(&t.chain, &ChangeConfig::naive());
        let balances = balance_series(&t.chain, &snapshot, 1);
        let graph = TxGraph::build(&t.chain);
        Arc::new(ServeArtifacts::new(snapshot, graph, labels, balances).unwrap())
    }

    fn scrape_server() -> (Server, MetricsExporter) {
        let server = Server::start(ServeConfig::default(), bundle()).expect("server");
        let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
        let exporter =
            MetricsExporter::start_with_listener(listener, server.metrics_handle()).expect("start");
        (server, exporter)
    }

    fn raw_request(addr: SocketAddr, request: &str) -> String {
        let mut sock = TcpStream::connect(addr).expect("connect");
        sock.write_all(request.as_bytes()).expect("send");
        let mut response = String::new();
        sock.read_to_string(&mut response).expect("recv");
        response
    }

    #[test]
    fn get_metrics_returns_prometheus_text() {
        let (server, exporter) = scrape_server();
        let response =
            raw_request(exporter.local_addr(), "GET /metrics HTTP/1.1\r\nHost: t\r\n\r\n");
        assert!(response.starts_with("HTTP/1.1 200 OK\r\n"), "{response}");
        assert!(response.contains("Content-Type: text/plain; version=0.0.4\r\n"));
        assert!(response.contains("Connection: close\r\n"));
        assert!(response.contains("# TYPE fistful_requests_total counter"));
        assert!(response.contains("fistful_request_latency_seconds_bucket"));
        // Content-Length matches the body exactly.
        let (head, body) = response.split_once("\r\n\r\n").expect("head/body split");
        let len: usize = head
            .lines()
            .find_map(|l| l.strip_prefix("Content-Length: "))
            .expect("length header")
            .parse()
            .expect("numeric length");
        assert_eq!(len, body.len());
        exporter.shutdown();
        server.shutdown();
    }

    #[test]
    fn other_paths_and_methods_get_404() {
        let (server, exporter) = scrape_server();
        let addr = exporter.local_addr();
        for request in [
            "GET /other HTTP/1.1\r\nHost: t\r\n\r\n",
            "POST /metrics HTTP/1.1\r\nHost: t\r\nContent-Length: 0\r\n\r\n",
            "garbage\r\n\r\n",
        ] {
            let response = raw_request(addr, request);
            assert!(response.starts_with("HTTP/1.1 404 Not Found\r\n"), "{request:?}: {response}");
        }
        // The exporter survives bad requests and still answers scrapes.
        let response = raw_request(addr, "GET /metrics?x=1 HTTP/1.1\r\nHost: t\r\n\r\n");
        assert!(response.starts_with("HTTP/1.1 200 OK\r\n"));
        exporter.shutdown();
        server.shutdown();
    }

    #[test]
    fn scrape_reflects_served_requests() {
        use crate::client::Client;
        let (server, exporter) = scrape_server();
        let mut client = Client::connect(server.local_addr()).expect("client");
        for _ in 0..3 {
            client.ping().expect("ping");
        }
        let _ = client.stats().expect("stats");
        let response =
            raw_request(exporter.local_addr(), "GET /metrics HTTP/1.1\r\nHost: t\r\n\r\n");
        assert!(response.contains("fistful_requests_total{type=\"ping\"} 3"), "{response}");
        assert!(response.contains("fistful_requests_total{type=\"stats\"} 1"), "{response}");
        assert!(response.contains("fistful_request_latency_seconds_count{type=\"ping\"} 3"));
        exporter.shutdown();
        server.shutdown();
    }

    #[test]
    fn shutdown_is_idempotent_and_drop_cleans_up() {
        let (server, exporter) = scrape_server();
        let addr = exporter.local_addr();
        exporter.shutdown();
        // The port no longer answers scrapes once the exporter is gone.
        let answered = TcpStream::connect(addr)
            .and_then(|mut sock| {
                sock.set_read_timeout(Some(Duration::from_millis(500)))?;
                sock.write_all(b"GET /metrics HTTP/1.1\r\nHost: t\r\n\r\n")?;
                let mut buf = String::new();
                sock.read_to_string(&mut buf)?;
                Ok(buf)
            })
            .map(|buf| buf.starts_with("HTTP/1.1 200"))
            .unwrap_or(false);
        assert!(!answered, "exporter kept serving after shutdown");
        server.shutdown();
    }
}

//! Cluster naming: propagating tags to whole clusters.
//!
//! Tagging one address names the entire cluster containing it — the
//! amplification at the heart of the paper (1,070 hand-tagged addresses
//! named clusters covering 1.8 M addresses, a ~1,600× gain). Naming also
//! reveals two phenomena the paper reports:
//!
//! * **collapse** — one service may span several Heuristic-1 clusters
//!   (Mt. Gox spanned ~20), which shared names re-merge;
//! * **super-clusters** — an over-eager Heuristic 2 can weld *different*
//!   services into one giant cluster (the paper's 1.6 M-address
//!   Mt. Gox + Instawallet + BitPay + Silk Road cluster), which
//!   [`NamingReport::super_clusters`] detects.

use crate::cluster::Clustering;
use crate::tagdb::{TagDb, TagSource};
use std::collections::{HashMap, HashSet};

/// A cluster identified as containing several distinct first-party-tagged
/// services — the paper's super-cluster failure mode.
#[derive(Debug, Clone, PartialEq)]
pub struct SuperCluster {
    /// The cluster id.
    pub cluster: u32,
    /// Addresses in the cluster.
    pub size: u32,
    /// The distinct services welded together.
    pub services: Vec<String>,
}

/// The outcome of naming every cluster that contains tagged addresses.
#[derive(Debug, Clone, Default)]
pub struct NamingReport {
    /// Winning name per cluster id.
    pub names: HashMap<u32, String>,
    /// Category of the winning name per cluster id.
    pub categories: HashMap<u32, String>,
    /// Clusters that received a name.
    pub named_clusters: usize,
    /// Total addresses covered by named clusters.
    pub named_addresses: u64,
    /// Distinct service names applied.
    pub distinct_services: usize,
    /// How many cluster merges shared names imply (service spanning k
    /// clusters contributes k−1). The paper's "collapsed slightly".
    pub collapsed_by_names: usize,
    /// Clusters containing ≥ 2 distinct own-transaction services.
    pub super_clusters: Vec<SuperCluster>,
}

impl NamingReport {
    /// The name of the cluster containing `addr`, if any.
    pub fn name_of_cluster(&self, cluster: u32) -> Option<&str> {
        self.names.get(&cluster).map(String::as_str)
    }

    /// Cluster ids carrying a given service name.
    pub fn clusters_of_service(&self, service: &str) -> Vec<u32> {
        let mut ids: Vec<u32> = self
            .names
            .iter()
            .filter(|(_, n)| n.as_str() == service)
            .map(|(&c, _)| c)
            .collect();
        ids.sort_unstable();
        ids
    }

    /// The effective user count after collapsing same-named clusters
    /// (the paper's 3,384,179 → 3,383,904 step).
    pub fn collapsed_cluster_count(&self, total_clusters: usize) -> usize {
        total_clusters - self.collapsed_by_names
    }
}

/// Names clusters by reliability-weighted tag vote.
pub fn name_clusters(clustering: &Clustering, tags: &TagDb) -> NamingReport {
    // Accumulate votes per (cluster, service).
    let mut votes: HashMap<u32, HashMap<&str, f64>> = HashMap::new();
    let mut categories: HashMap<&str, &str> = HashMap::new();
    let mut own_services: HashMap<u32, HashSet<&str>> = HashMap::new();

    for tag in tags.tags() {
        if tag.address as usize >= clustering.assignment.len() {
            continue; // tag for an address outside this chain view
        }
        let cluster = clustering.cluster_of(tag.address);
        *votes
            .entry(cluster)
            .or_default()
            .entry(tag.service.as_str())
            .or_default() += tag.source.reliability();
        categories.insert(tag.service.as_str(), tag.category.as_str());
        if tag.source == TagSource::OwnTransaction {
            own_services
                .entry(cluster)
                .or_default()
                .insert(tag.service.as_str());
        }
    }

    let mut report = NamingReport::default();
    let mut clusters_per_service: HashMap<&str, usize> = HashMap::new();

    for (cluster, tally) in &votes {
        // Winner by weight, ties broken by name for determinism.
        let winner = tally
            .iter()
            .max_by(|a, b| a.1.partial_cmp(b.1).unwrap().then(b.0.cmp(a.0)))
            .map(|(name, _)| *name)
            .expect("non-empty tally");
        report.names.insert(*cluster, winner.to_string());
        report
            .categories
            .insert(*cluster, categories[winner].to_string());
        *clusters_per_service.entry(winner).or_default() += 1;
        report.named_addresses += clustering.sizes[*cluster as usize] as u64;
    }

    report.named_clusters = report.names.len();
    report.distinct_services = clusters_per_service.len();
    report.collapsed_by_names = clusters_per_service.values().map(|k| k - 1).sum();

    // Super-cluster detection: ≥2 distinct services with substantial vote
    // weight (an own-transaction tag, or several public tags) in one
    // cluster is strong evidence of a false merge.
    for (cluster, tally) in &votes {
        let mut strong: Vec<&str> = tally
            .iter()
            .filter(|(_, &w)| w >= 1.0)
            .map(|(name, _)| *name)
            .collect();
        // Own-transaction evidence always counts.
        if let Some(own) = own_services.get(cluster) {
            for s in own {
                if !strong.contains(s) {
                    strong.push(s);
                }
            }
        }
        if strong.len() >= 2 {
            let mut names: Vec<String> = strong.into_iter().map(String::from).collect();
            names.sort();
            report.super_clusters.push(SuperCluster {
                cluster: *cluster,
                size: clustering.sizes[*cluster as usize],
                services: names,
            });
        }
    }
    report.super_clusters.sort_by_key(|s| std::cmp::Reverse(s.size));
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::change::ChangeConfig;
    use crate::cluster::Clusterer;
    use crate::tagdb::Tag;
    use crate::testutil::TestChain;

    fn tag(addr: u32, service: &str, source: TagSource) -> Tag {
        Tag {
            address: addr,
            service: service.into(),
            category: "exchange".into(),
            source,
        }
    }

    /// Two disjoint co-spend clusters {1,2} and {3,4}; address 5 alone.
    fn two_cluster_chain() -> TestChain {
        let mut t = TestChain::new();
        let cb1 = t.coinbase(1, 50);
        let cb2 = t.coinbase(2, 50);
        let cb3 = t.coinbase(3, 50);
        let cb4 = t.coinbase(4, 50);
        let _cb5 = t.coinbase(5, 50);
        t.tx(&[(cb1, 0), (cb2, 0)], &[(5, 100)]);
        t.tx(&[(cb3, 0), (cb4, 0)], &[(5, 100)]);
        t
    }

    #[test]
    fn tags_name_whole_clusters() {
        let t = two_cluster_chain();
        let clustering = Clusterer::h1_only().run(&t.chain);
        let mut db = TagDb::new();
        db.add(tag(t.id(1), "Mt. Gox", TagSource::OwnTransaction));
        let report = name_clusters(&clustering, &db);
        assert_eq!(report.named_clusters, 1);
        let c = clustering.cluster_of(t.id(2));
        assert_eq!(report.name_of_cluster(c), Some("Mt. Gox"));
        // Cluster {1,2} has 2 addresses.
        assert_eq!(report.named_addresses, 2);
    }

    #[test]
    fn same_service_spanning_clusters_collapses() {
        let t = two_cluster_chain();
        let clustering = Clusterer::h1_only().run(&t.chain);
        let mut db = TagDb::new();
        db.add(tag(t.id(1), "Mt. Gox", TagSource::OwnTransaction));
        db.add(tag(t.id(3), "Mt. Gox", TagSource::OwnTransaction));
        let report = name_clusters(&clustering, &db);
        assert_eq!(report.named_clusters, 2);
        assert_eq!(report.collapsed_by_names, 1);
        assert_eq!(
            report.collapsed_cluster_count(clustering.cluster_count()),
            clustering.cluster_count() - 1
        );
        assert_eq!(report.clusters_of_service("Mt. Gox").len(), 2);
    }

    #[test]
    fn reliability_weighting_beats_count() {
        let t = two_cluster_chain();
        let clustering = Clusterer::h1_only().run(&t.chain);
        let mut db = TagDb::new();
        // Two low-reliability forum tags vs one own-transaction tag.
        db.add(tag(t.id(1), "Imposter Exchange", TagSource::Forum));
        db.add(tag(t.id(2), "Imposter Exchange", TagSource::Forum));
        db.add(tag(t.id(1), "Mt. Gox", TagSource::OwnTransaction));
        let report = name_clusters(&clustering, &db);
        let c = clustering.cluster_of(t.id(1));
        assert_eq!(report.name_of_cluster(c), Some("Mt. Gox"));
    }

    #[test]
    fn super_cluster_detected_when_h2_over_merges() {
        // Build the paper's failure: service A's change-address reuse makes
        // naive H2 label service B's fresh deposit address as A's change.
        let mut t = TestChain::new();
        let cb1 = t.coinbase(1, 50); // A's funds
        let cb2 = t.coinbase(2, 50); // A's funds
        let _cb5 = t.coinbase(5, 50);
        // A: tx1 pays seen 5, change to fresh 4 (legit label).
        let _tx1 = t.tx(&[(cb1, 0)], &[(5, 30), (4, 20)]);
        // A: tx2 REUSES change address 4; other output 6 is B's fresh
        // deposit address → naive H2 labels 6 as A's change.
        let tx2 = t.tx(&[(cb2, 0)], &[(6, 30), (4, 20)]);
        // B sweeps its deposit 6 together with its other address 7.
        let cb7 = t.coinbase(7, 50);
        let _sweep = t.tx(&[(tx2, 0), (cb7, 0)], &[(8, 80)]);

        let naive = Clusterer::with_h2(ChangeConfig::naive()).run(&t.chain);
        let mut db = TagDb::new();
        db.add(tag(t.id(1), "Service A", TagSource::OwnTransaction));
        db.add(tag(t.id(2), "Service A", TagSource::OwnTransaction));
        db.add(tag(t.id(7), "Service B", TagSource::OwnTransaction));
        let report = name_clusters(&naive, &db);
        assert_eq!(report.super_clusters.len(), 1, "naive H2 welds A and B");
        assert_eq!(
            report.super_clusters[0].services,
            vec!["Service A".to_string(), "Service B".to_string()]
        );

        // The refined heuristic (reuse exclusion) avoids the merge.
        let mut cfg = ChangeConfig::naive();
        cfg.skip_reused_change = true;
        let refined = Clusterer::with_h2(cfg).run(&t.chain);
        let report = name_clusters(&refined, &db);
        assert!(report.super_clusters.is_empty(), "refined H2 keeps A and B apart");
    }

    #[test]
    fn empty_tagdb_names_nothing() {
        let t = two_cluster_chain();
        let clustering = Clusterer::h1_only().run(&t.chain);
        let report = name_clusters(&clustering, &TagDb::new());
        assert_eq!(report.named_clusters, 0);
        assert_eq!(report.named_addresses, 0);
        assert!(report.super_clusters.is_empty());
    }

    #[test]
    fn out_of_range_tags_ignored() {
        let t = two_cluster_chain();
        let clustering = Clusterer::h1_only().run(&t.chain);
        let mut db = TagDb::new();
        db.add(tag(10_000, "Ghost", TagSource::OwnTransaction));
        let report = name_clusters(&clustering, &db);
        assert_eq!(report.named_clusters, 0);
    }
}
